// Package privstats_bench holds one testing.B benchmark per table/figure of
// the paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// benchmark drives the same harness as cmd/psbench and reports the figure's
// headline quantity as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in abbreviated form. For the paper's
// full 1k-100k sweep use `go run ./cmd/psbench -full`.
package privstats_bench

import (
	"testing"
	"time"

	"privstats/internal/bench"
	"privstats/internal/netsim"
)

// benchConfig returns the shared configuration: the paper's 512-bit keys
// with a sweep sized so the whole suite finishes in a few minutes. The
// -short flag shrinks it further.
func benchConfig(b *testing.B) bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Sizes = []int{1000, 5000}
	if testing.Short() {
		cfg.KeyBits = 128
		cfg.Sizes = []int{200}
	}
	return cfg
}

// reportComponents converts the largest-n component row into benchmark
// metrics (milliseconds, matching the figures' y-axis).
func reportComponents(b *testing.B, rows []bench.ComponentRow) {
	r := rows[len(rows)-1]
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	b.ReportMetric(ms(r.ClientEncrypt), "client-enc-ms")
	b.ReportMetric(ms(r.ServerCompute), "server-ms")
	b.ReportMetric(ms(r.Communication), "comm-ms")
	b.ReportMetric(ms(r.ClientDecrypt), "decrypt-ms")
	b.ReportMetric(ms(r.Total), "total-ms")
	b.ReportMetric(float64(r.BytesUp), "bytes-up")
}

func reportComparison(b *testing.B, rows []bench.ComparisonRow) {
	r := rows[len(rows)-1]
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	b.ReportMetric(ms(r.Baseline), "baseline-ms")
	b.ReportMetric(ms(r.Variant), "variant-ms")
	b.ReportMetric(100*r.Reduction(), "reduction-%")
	b.ReportMetric(r.Speedup(), "speedup-x")
}

// BenchmarkFig2_ComponentsShortDistance reproduces Figure 2: runtime
// components of the unoptimized protocol over the cluster-switch link.
// Expected shape: client encryption ≫ server ≫ communication ≫ decryption,
// all linear in n.
func BenchmarkFig2_ComponentsShortDistance(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComponents(b, rows)
		}
	}
}

// BenchmarkFig3_ComponentsLongDistance reproduces Figure 3: the same
// protocol over the 56 Kbps dial-up link. Expected shape: communication
// grows to a substantial share, but computation still dominates.
func BenchmarkFig3_ComponentsLongDistance(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComponents(b, rows)
		}
	}
}

// BenchmarkFig4_Batching reproduces Figure 4: overall runtime with and
// without batching of the index vector (batch size 100). Expected shape:
// a modest constant-fraction reduction from pipeline overlap.
func BenchmarkFig4_Batching(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComparison(b, rows)
		}
	}
}

// BenchmarkFig5_PreprocessedShortDistance reproduces Figure 5: components
// after index-vector preprocessing over the fast link. Expected shape:
// client online time collapses; the server becomes the dominant component;
// overall reduction ≈ 80%+.
func BenchmarkFig5_PreprocessedShortDistance(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComponents(b, rows)
			b.ReportMetric(float64(rows[len(rows)-1].Preprocess)/float64(time.Millisecond), "offline-preproc-ms")
		}
	}
}

// BenchmarkFig6_PreprocessedLongDistance reproduces Figure 6: preprocessing
// over the modem link. Expected shape: communication becomes the dominant
// component.
func BenchmarkFig6_PreprocessedLongDistance(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComponents(b, rows)
		}
	}
}

// BenchmarkFig7_CombinedOptimizations reproduces Figure 7: preprocessing
// plus batching versus the plain protocol. Expected shape: ≈90%+ online
// reduction (paper: ≈94%).
func BenchmarkFig7_CombinedOptimizations(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComparison(b, rows)
		}
	}
}

// BenchmarkFig9_MultiClient reproduces Figure 9: three cooperating clients
// with secret-shared blinding versus a single client. Expected shape:
// ≈k-fold speedup minus combining overhead (paper: ≈2.99x for k=3).
func BenchmarkFig9_MultiClient(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComparison(b, rows)
		}
	}
}

// BenchmarkYaoComparison reproduces the Section 2 general-SMC comparison:
// the selected-sum protocol versus a calibrated Yao/Fairplay cost model at
// n=1,000. Expected shape: the Yao estimate exceeds the private protocol by
// orders of magnitude (the paper quotes ≥15 minutes vs ≈2 minutes at 2004
// constants).
func BenchmarkYaoComparison(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Sizes = []int{1000}
	if testing.Short() {
		cfg.Sizes = []int{200}
	}
	for i := 0; i < b.N; i++ {
		rows, err := cfg.YaoComparison()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			r := rows[len(rows)-1]
			b.ReportMetric(float64(r.Private)/float64(time.Millisecond), "private-ms")
			b.ReportMetric(float64(r.YaoEstimate)/float64(time.Millisecond), "yao-ms")
			b.ReportMetric(float64(r.YaoEstimate)/float64(r.Private), "yao-over-private-x")
			b.ReportMetric(float64(r.YaoGates), "yao-gates")
		}
	}
}

// BenchmarkAblationSchemes reproduces experiment E9a: the identical
// workload over Paillier, Damgård–Jurik (s=2), and exponential ElGamal —
// the implementation-constant comparison motivated by the paper's
// Java-vs-C++ observation.
func BenchmarkAblationSchemes(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Sizes = []int{cfg.Sizes[0]}
	for i := 0; i < b.N; i++ {
		rows, err := cfg.SchemeAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Client+r.Server+r.Decrypt)/float64(time.Millisecond), r.Variant+"-ms")
			}
		}
	}
}

// BenchmarkAblationDecrypt reproduces experiment E9b: CRT versus textbook
// Paillier decryption.
func BenchmarkAblationDecrypt(b *testing.B) {
	cfg := benchConfig(b)
	cfg.KeyBits = 512
	for i := 0; i < b.N; i++ {
		d, err := cfg.DecryptComparison(50)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(d.CRT)/float64(d.Iterations)/float64(time.Microsecond), "crt-us-per-op")
			b.ReportMetric(float64(d.Naive)/float64(d.Iterations)/float64(time.Microsecond), "naive-us-per-op")
			b.ReportMetric(float64(d.Naive)/float64(d.CRT), "crt-speedup-x")
		}
	}
}

// BenchmarkChunkSize reproduces experiment E10: sensitivity of the batched
// protocol to the chunk size (paper §3.2: "the optimal chunk size will
// depend on the relative communication and computation speeds").
func BenchmarkChunkSize(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Sizes = []int{cfg.Sizes[0]}
	sweep := []int{10, 100, 1000}
	for i := 0; i < b.N; i++ {
		rows, err := cfg.ChunkSweep(sweep, netsim.ShortDistance)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Total)/float64(time.Millisecond),
					"chunk"+itoa(r.ChunkSize)+"-ms")
			}
		}
	}
}

// BenchmarkFoldMultiExp ablates the server's fold: the naive ScalarMul+Add
// loop versus bucket multi-exponentiation (sequential, several window
// widths, and parallel) across chunk sizes. Expected shape: the bucket fold
// cuts per-row time by ≥3x at 4096 rows, with wider windows winning as the
// chunk grows; reference numbers live in results/multiexp.txt.
func BenchmarkFoldMultiExp(b *testing.B) {
	cfg := benchConfig(b)
	sizes := []int{256, 1024, 4096}
	if testing.Short() {
		sizes = []int{256}
	}
	for i := 0; i < b.N; i++ {
		rows, err := cfg.FoldAblation(sizes, []uint{4, 6, 8}, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			naive := map[int]time.Duration{}
			for _, r := range rows {
				if r.Variant == "naive" {
					naive[r.Rows] = r.Time
				}
			}
			for _, r := range rows {
				b.ReportMetric(float64(r.PerRow()), "n"+itoa(r.Rows)+"-"+r.Variant+"-ns/row")
			}
			big := sizes[len(sizes)-1]
			for _, r := range rows {
				if r.Rows == big && r.Variant == "bucket-auto" {
					b.ReportMetric(float64(naive[big])/float64(r.Time), "speedup-x")
				}
			}
		}
	}
}

// BenchmarkBaselines places the private protocol next to the two trivial
// non-private protocols of Section 2.
func BenchmarkBaselines(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Sizes = []int{cfg.Sizes[0]}
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Baselines(netsim.ShortDistance)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			r := rows[len(rows)-1]
			b.ReportMetric(float64(r.Private)/float64(time.Millisecond), "private-ms")
			b.ReportMetric(float64(r.SendIdx)/float64(time.Microsecond), "send-indices-us")
			b.ReportMetric(float64(r.Download)/float64(time.Microsecond), "download-db-us")
		}
	}
}

// itoa avoids importing strconv for a metric label.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
