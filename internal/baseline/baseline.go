// Package baseline implements the two trivial, non-private protocols the
// paper describes in Section 2 to motivate the problem, plus the exact
// accounting needed to place them on the benchmark charts next to the
// private protocol.
//
// Neither baseline is private:
//
//   - SendIndices reveals the client's selection to the server (no client
//     privacy);
//   - DownloadDatabase reveals the whole database to the client (no
//     database privacy).
//
// They exist so the evaluation can report what privacy costs: the private
// protocol's overhead is measured against these.
package baseline

import (
	"fmt"
	"math/big"
	"time"

	"privstats/internal/database"
	"privstats/internal/netsim"
)

// Result mirrors selectedsum.Result for the trivial protocols.
type Result struct {
	// Sum is the computed selected sum.
	Sum *big.Int
	// Compute is the measured local computation time (all parties).
	Compute time.Duration
	// Communication is the link-model time for the exchanged bytes.
	Communication time.Duration
	// Total is Compute + Communication.
	Total time.Duration
	// BytesUp and BytesDown are the exact application byte counts.
	BytesUp, BytesDown int64
}

// SendIndices runs the "client sends its m indices, server sums" protocol.
// Wire cost: 4 bytes per selected index up, 8 bytes of sum down (values are
// 32-bit, so any selected sum fits 64 bits for n < 2^32).
func SendIndices(table *database.Table, sel *database.Selection, link netsim.Link) (*Result, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	if sel.Len() != table.Len() {
		return nil, fmt.Errorf("baseline: selection length %d != table length %d", sel.Len(), table.Len())
	}
	start := time.Now()
	indices := sel.Indices()
	var sum uint64
	for _, i := range indices {
		sum += uint64(table.Value(i))
	}
	compute := time.Since(start)

	res := &Result{
		Sum:       new(big.Int).SetUint64(sum),
		Compute:   compute,
		BytesUp:   int64(4 * len(indices)),
		BytesDown: 8,
	}
	res.Communication = link.RoundTripTime(res.BytesUp, res.BytesDown)
	res.Total = res.Compute + res.Communication
	return res, nil
}

// DownloadDatabase runs the "server ships everything, client sums locally"
// protocol. Wire cost: a tiny request up, 4 bytes per row down.
func DownloadDatabase(table *database.Table, sel *database.Selection, link netsim.Link) (*Result, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	if sel.Len() != table.Len() {
		return nil, fmt.Errorf("baseline: selection length %d != table length %d", sel.Len(), table.Len())
	}
	start := time.Now()
	var sum uint64
	for i := 0; i < table.Len(); i++ {
		if sel.Bit(i) == 1 {
			sum += uint64(table.Value(i))
		}
	}
	compute := time.Since(start)

	res := &Result{
		Sum:       new(big.Int).SetUint64(sum),
		Compute:   compute,
		BytesUp:   16, // request header
		BytesDown: int64(4 * table.Len()),
	}
	res.Communication = link.RoundTripTime(res.BytesUp, res.BytesDown)
	res.Total = res.Compute + res.Communication
	return res, nil
}
