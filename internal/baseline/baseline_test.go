package baseline

import (
	"testing"

	"privstats/internal/database"
	"privstats/internal/netsim"
)

func fixture(t *testing.T, n, m int) (*database.Table, *database.Selection, uint64) {
	t.Helper()
	table, err := database.Generate(n, database.DistSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := database.GenerateSelection(n, m, database.PatternRandom, 13)
	if err != nil {
		t.Fatal(err)
	}
	want, err := table.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}
	return table, sel, want.Uint64()
}

func TestSendIndicesCorrectness(t *testing.T) {
	table, sel, want := fixture(t, 500, 123)
	res, err := SendIndices(table, sel, netsim.ShortDistance)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Uint64() != want {
		t.Errorf("sum = %v, want %d", res.Sum, want)
	}
	if res.BytesUp != 4*123 || res.BytesDown != 8 {
		t.Errorf("bytes = (%d, %d)", res.BytesUp, res.BytesDown)
	}
	if res.Total != res.Compute+res.Communication {
		t.Error("Total != Compute + Communication")
	}
}

func TestDownloadDatabaseCorrectness(t *testing.T) {
	table, sel, want := fixture(t, 500, 123)
	res, err := DownloadDatabase(table, sel, netsim.ShortDistance)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Uint64() != want {
		t.Errorf("sum = %v, want %d", res.Sum, want)
	}
	if res.BytesDown != 4*500 {
		t.Errorf("BytesDown = %d, want 2000", res.BytesDown)
	}
}

func TestBaselinesAgree(t *testing.T) {
	table, sel, _ := fixture(t, 777, 400)
	a, err := SendIndices(table, sel, netsim.LongDistance)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DownloadDatabase(table, sel, netsim.LongDistance)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sum.Cmp(b.Sum) != 0 {
		t.Errorf("baselines disagree: %v vs %v", a.Sum, b.Sum)
	}
}

func TestBaselineValidation(t *testing.T) {
	table, _ := database.Generate(10, database.DistSmall, 1)
	sel, _ := database.NewSelection(9)
	if _, err := SendIndices(table, sel, netsim.ShortDistance); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := DownloadDatabase(table, sel, netsim.ShortDistance); err == nil {
		t.Error("length mismatch should fail")
	}
	sel10, _ := database.NewSelection(10)
	if _, err := SendIndices(table, sel10, netsim.Link{}); err == nil {
		t.Error("bad link should fail")
	}
	if _, err := DownloadDatabase(table, sel10, netsim.Link{}); err == nil {
		t.Error("bad link should fail")
	}
}

func TestEmptySelection(t *testing.T) {
	table, _ := database.Generate(10, database.DistUniform, 1)
	sel, _ := database.NewSelection(10)
	res, err := SendIndices(table, sel, netsim.ShortDistance)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Sign() != 0 || res.BytesUp != 0 {
		t.Errorf("empty selection: sum=%v bytes=%d", res.Sum, res.BytesUp)
	}
}
