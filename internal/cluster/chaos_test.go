package cluster

import (
	"context"
	"errors"
	"math/big"
	"net"
	"testing"
	"time"

	"privstats/internal/database"
	"privstats/internal/faultnet"
	"privstats/internal/server"
	"privstats/internal/testutil"
	"privstats/internal/wire"
)

// Chaos end-to-end suite: a loopback cluster whose backend links run
// through faultnet under seeded fault plans. The contract under test is the
// paper's correctness-or-nothing guarantee extended to partial failures:
// every query either returns the exact oracle sum or a CLASSIFIED error —
// never a wrong sum, never a partial sum, never an unexplained hang — and
// the injectors' accounting reconciles, and nothing leaks goroutines.
//
// All plans are seeded, so a failing run reproduces with the same seed.

// classified reports whether err is one of the typed verdicts the failure
// model promises: a coded peer error, a retry-exhaustion report, or a
// transport-level error the retry taxonomy recognizes. Free-floating prose
// is NOT classified.
func classified(err error) bool {
	var pe *wire.PeerError
	var ex *ExhaustedError
	var ne net.Error
	return errors.As(err, &pe) || errors.As(err, &ex) || errors.As(err, &ne) ||
		errors.Is(err, context.DeadlineExceeded)
}

// startFaultBackend serves shard through the stock server runtime behind a
// fault-injecting listener and returns its address plus the injector.
func startFaultBackend(t *testing.T, shard *database.Table, plan faultnet.Plan) (string, *faultnet.Listener) {
	t.Helper()
	srv, err := server.New(shard, server.Config{Logf: discardLogf, IdleTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultnet.Listen(ln, plan)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(fl) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		select {
		case <-errc:
		case <-time.After(5 * time.Second):
			t.Error("backend Serve did not return after Shutdown")
		}
	})
	return ln.Addr().String(), fl
}

// chaosCluster is a k-shard, r-replica loopback cluster whose every
// backend link is fault-wrapped.
type chaosCluster struct {
	addr      string         // the proxy clients talk to
	fanout    *Client        // the proxy's backend client (metrics)
	proxy     *server.Server // the hosting runtime (/stats)
	listeners []*faultnet.Listener
}

// injected sums fault accounting across every backend injector.
func (cc *chaosCluster) injected() faultnet.StatsSnapshot {
	var total faultnet.StatsSnapshot
	for _, fl := range cc.listeners {
		total = total.Add(fl.Stats())
	}
	return total
}

// reconcile checks each listener's aggregate equals the sum of its
// per-connection counters plus its own refusals — injections are neither
// lost nor double-counted.
func (cc *chaosCluster) reconcile(t *testing.T) {
	t.Helper()
	for i, fl := range cc.listeners {
		var perConn faultnet.StatsSnapshot
		for _, s := range fl.ConnStats() {
			perConn = perConn.Add(s)
		}
		agg := fl.Stats()
		perConn.Refusals = agg.Refusals // refusals live on the listener, not a conn
		if perConn != agg {
			t.Errorf("listener %d accounting mismatch: conns+refusals=%+v aggregate=%+v", i, perConn, agg)
		}
	}
}

// startChaosCluster shards table over k shards with r replicated backends
// each, every backend behind planFor(shard, replica), and an aggregator
// with acfg in front fanning out through a client built from ccfg.
func startChaosCluster(t *testing.T, table *database.Table, k, r int, planFor func(shard, replica int) faultnet.Plan, ccfg ClientConfig, acfg AggregatorConfig) *chaosCluster {
	t.Helper()
	cc := &chaosCluster{}
	ranges := make([]Shard, k)
	lo := 0
	for i := 0; i < k; i++ {
		rows := table.Len() / k
		if i < table.Len()%k {
			rows++
		}
		ranges[i] = Shard{Lo: lo, Hi: lo + rows}
		lo += rows
	}
	for i := range ranges {
		shardTable, err := table.Shard(ranges[i].Lo, ranges[i].Hi)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < r; rep++ {
			addr, fl := startFaultBackend(t, shardTable, planFor(i, rep))
			ranges[i].Backends = append(ranges[i].Backends, addr)
			cc.listeners = append(cc.listeners, fl)
		}
	}
	sm, err := NewShardMap(ranges)
	if err != nil {
		t.Fatal(err)
	}
	cc.fanout = NewClient(ccfg)
	agg, err := NewAggregatorWithConfig(sm, cc.fanout, acfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewHandler(agg, server.Config{Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	cc.proxy = srv
	cc.addr = serveOn(t, srv)
	return cc
}

// chaosFixture pins one deterministic table + selection + oracle for the
// whole suite: fixture() is seeded, so every call returns identical data.
func chaosFixture(t *testing.T) (*database.Table, *database.Selection, *big.Int) {
	return fixture(t, 32, 13, 424242)
}

// runChaosQueries fires n sequential queries and tallies the outcomes.
// An incorrect or unclassified result fails the test immediately: those
// are the two outcomes the failure model forbids outright.
func runChaosQueries(t *testing.T, cc *chaosCluster, outer ClientConfig, n int) (correct, failed int) {
	t.Helper()
	sk := testKey(t)
	_, sel, want := chaosFixture(t)
	client := NewClient(outer)
	for q := 0; q < n; q++ {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		got, err := client.Query(ctx, []string{cc.addr}, sk, sel, 8, nil)
		cancel()
		if err != nil {
			if !classified(err) {
				t.Fatalf("query %d: unclassified error: %v", q, err)
			}
			t.Logf("query %d: classified failure: %v", q, err)
			failed++
			continue
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("query %d: WRONG SUM %v, want %v (partial or corrupted sum escaped)", q, got, want)
		}
		correct++
	}
	return correct, failed
}

// chaosFanoutConfig is the proxy→backend client policy shared by the chaos
// tests: enough retries to ride out per-connection faults, a short IO
// deadline so stalls convert to timeouts quickly, CRC trailers on so
// corruption converts to retries instead of wrong sums, and a health
// window long enough that a once-failed backend is skipped rather than
// re-probed on every query.
func chaosFanoutConfig() ClientConfig {
	return ClientConfig{
		Retries:    3,
		Backoff:    2 * time.Millisecond,
		IOTimeout:  300 * time.Millisecond,
		ProbeAfter: 500 * time.Millisecond,
		UseCRC:     true,
	}
}

// chaosOuterConfig is the querying client's policy. The client→proxy link
// is clean in these tests; retries here absorb the proxy's classified
// transient verdicts (busy, timeout) but not fatal ones (shard
// unavailable, protocol).
func chaosOuterConfig() ClientConfig {
	return ClientConfig{
		Retries:    2,
		Backoff:    5 * time.Millisecond,
		IOTimeout:  10 * time.Second,
		ProbeAfter: 10 * time.Millisecond,
		UseCRC:     true,
	}
}

// TestChaosResets: 5% of backend connections (each direction) take a
// connection reset at a random operation. Every query must still resolve
// to the oracle sum (via retry/failover) or a classified error.
func TestChaosResets(t *testing.T) {
	testutil.GuardGoroutines(t)
	table, _, _ := chaosFixture(t)
	plan := func(shard, rep int) faultnet.Plan {
		return faultnet.Plan{
			Seed:  int64(9000 + shard*10 + rep),
			Read:  faultnet.Spec{Reset: 0.05},
			Write: faultnet.Spec{Reset: 0.05},
		}
	}
	cc := startChaosCluster(t, table, 2, 2, plan, chaosFanoutConfig(), AggregatorConfig{ShardTimeout: 5 * time.Second})
	correct, failed := runChaosQueries(t, cc, chaosOuterConfig(), 40)
	t.Logf("resets: %d correct, %d classified failures, injected %+v", correct, failed, cc.injected())
	if correct == 0 {
		t.Fatal("no query succeeded under 5% resets")
	}
	if inj := cc.injected(); inj.Resets == 0 {
		t.Error("fault plan injected no resets — test is vacuous, adjust seed or rates")
	}
	cc.reconcile(t)
}

// TestChaosCorruptionCRC: 8% of backend connections flip one byte in each
// direction, with CRC trailers negotiated end to end. The headline
// assertion lives in runChaosQueries: a flipped ciphertext byte must NEVER
// surface as a wrong sum — CRC converts it to a classified retryable
// error, and the retry produces the oracle sum.
func TestChaosCorruptionCRC(t *testing.T) {
	testutil.GuardGoroutines(t)
	table, _, _ := chaosFixture(t)
	plan := func(shard, rep int) faultnet.Plan {
		return faultnet.Plan{
			Seed:  int64(7100 + shard*10 + rep),
			Read:  faultnet.Spec{Corrupt: 0.08},
			Write: faultnet.Spec{Corrupt: 0.08},
		}
	}
	cc := startChaosCluster(t, table, 2, 2, plan, chaosFanoutConfig(), AggregatorConfig{ShardTimeout: 5 * time.Second})
	correct, failed := runChaosQueries(t, cc, chaosOuterConfig(), 40)
	t.Logf("corruption: %d correct, %d classified failures, injected %+v", correct, failed, cc.injected())
	if correct == 0 {
		t.Fatal("no query succeeded under corruption")
	}
	if inj := cc.injected(); inj.Corruptions == 0 {
		t.Error("fault plan injected no corruptions — test is vacuous, adjust seed or rates")
	}
	cc.reconcile(t)
}

// TestChaosStragglersAcceptance is the issue's acceptance point: k=4 with
// one replica per shard, 5% resets + 5% corruption on every backend link,
// and two whole backends (the primaries of shards 0 and 1) stalled past
// the fan-out IO deadline on every connection. With retries, failover,
// hedged re-dispatch, and CRC, at least 99% of queries must complete with
// the exact oracle sum; the remainder must fail classified; zero wrong or
// partial sums (runChaosQueries enforces that unconditionally).
func TestChaosStragglersAcceptance(t *testing.T) {
	testutil.GuardGoroutines(t)
	table, _, _ := chaosFixture(t)
	plan := func(shard, rep int) faultnet.Plan {
		p := faultnet.Plan{
			Seed:  int64(3300 + shard*10 + rep),
			Read:  faultnet.Spec{Reset: 0.05, Corrupt: 0.05},
			Write: faultnet.Spec{Corrupt: 0.05},
		}
		if rep == 0 && shard < 2 {
			// Two stalled backends: every connection to them sleeps far
			// past the fan-out IO deadline at some operation — the
			// slow-loris case that only hedging/deadlines can catch.
			p.Read = faultnet.Spec{Stall: 1, StallFor: 800 * time.Millisecond}
			p.Write = faultnet.Spec{}
		}
		return p
	}
	acfg := AggregatorConfig{ShardTimeout: 5 * time.Second, HedgeAfter: 100 * time.Millisecond}
	cc := startChaosCluster(t, table, 4, 2, plan, chaosFanoutConfig(), acfg)

	const n = 100
	correct, failed := runChaosQueries(t, cc, chaosOuterConfig(), n)
	inj := cc.injected()
	cs := cc.fanout.Metrics().Snapshot()
	t.Logf("acceptance: %d/%d correct, %d classified failures", correct, n, failed)
	t.Logf("injected: %+v", inj)
	t.Logf("fanout: retries=%d failovers=%d hedges=%d hedge_wins=%d corrupt_frames=%d",
		cs.Retries, cs.Failovers, cs.ShardHedges, cs.ShardHedgeWins, cs.CorruptFrames)

	if correct < n*99/100 {
		t.Errorf("%d/%d correct, want >= 99%%", correct, n)
	}
	if correct+failed != n {
		t.Errorf("outcomes do not add up: %d correct + %d failed != %d", correct, failed, n)
	}
	// The run must actually have exercised the machinery it claims to:
	// faults fired, stalls fired, and the resilience paths reacted.
	if inj.Stalls == 0 {
		t.Error("stalled backends never stalled a connection")
	}
	if inj.Resets == 0 && inj.Corruptions == 0 {
		t.Error("no resets or corruptions fired — rates/seed make this vacuous")
	}
	if cs.Retries+cs.Failovers+cs.ShardHedges == 0 {
		t.Error("no retries, failovers, or hedges recorded despite injected faults")
	}
	cc.reconcile(t)
}

// TestChaosMidFrameKill: the next backend connection dies after exactly 40
// bytes — mid-frame. The fan-out client must classify the truncation as
// retryable and the replayed session must produce the oracle sum.
func TestChaosMidFrameKill(t *testing.T) {
	testutil.GuardGoroutines(t)
	table, _, _ := chaosFixture(t)
	clean := func(shard, rep int) faultnet.Plan { return faultnet.Plan{Seed: int64(100 + shard + rep)} }
	cc := startChaosCluster(t, table, 1, 1, clean, chaosFanoutConfig(), AggregatorConfig{})
	cc.listeners[0].ScheduleKill(40)

	correct, failed := runChaosQueries(t, cc, chaosOuterConfig(), 1)
	if correct != 1 || failed != 0 {
		t.Fatalf("query did not survive a mid-frame kill: %d correct, %d failed", correct, failed)
	}
	if k := cc.listeners[0].Stats().Kills; k != 1 {
		t.Errorf("kills = %d, want 1", k)
	}
	cc.reconcile(t)
}

// TestChaosDialRefusals routes the proxy's fan-out through a
// faultnet.Dialer that refuses 10% of dials: refusals must convert to
// retries/failovers, never to wrong answers or unclassified errors.
func TestChaosDialRefusals(t *testing.T) {
	testutil.GuardGoroutines(t)
	table, _, _ := chaosFixture(t)
	clean := func(shard, rep int) faultnet.Plan { return faultnet.Plan{Seed: int64(200 + shard + rep)} }
	d := &faultnet.Dialer{Plan: faultnet.Plan{Seed: 77, Refuse: 0.10}}
	ccfg := chaosFanoutConfig()
	ccfg.Dial = d.DialContext
	cc := startChaosCluster(t, table, 2, 2, clean, ccfg, AggregatorConfig{ShardTimeout: 5 * time.Second})

	correct, failed := runChaosQueries(t, cc, chaosOuterConfig(), 40)
	t.Logf("refusals: %d correct, %d classified failures, dialer %+v", correct, failed, d.Stats())
	if correct == 0 {
		t.Fatal("no query succeeded under 10% dial refusals")
	}
	if d.Stats().Refusals == 0 {
		t.Error("dialer refused nothing — test is vacuous, adjust seed or rate")
	}
}
