package cluster

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privstats/internal/database"
	"privstats/internal/metrics"
	"privstats/internal/selectedsum"
	"privstats/internal/server"
	"privstats/internal/testutil"
	"privstats/internal/trace"
)

// End-to-end trace propagation: one client-minted trace ID rides the hello
// trailer through the aggregator's fan-out into every backend shard, so the
// aggregator's /traces and each shard's /traces hold the same ID — the
// "follow one query through the whole cluster" workflow. The privacy test
// at the bottom is the counterpart contract: those traces (and the logs)
// carry timings and topology only, never ciphertext or selection material.

// startTracedCluster is startCluster with a trace recorder on every node.
func startTracedCluster(t *testing.T, table *database.Table, k int, logf func(string, ...any)) (string, *server.Server, *Client, *trace.Recorder, []*trace.Recorder) {
	t.Helper()
	ranges := make([]Shard, k)
	lo := 0
	for i := 0; i < k; i++ {
		rows := table.Len() / k
		if i < table.Len()%k {
			rows++
		}
		ranges[i] = Shard{Lo: lo, Hi: lo + rows}
		lo += rows
	}
	shardRecs := make([]*trace.Recorder, k)
	for i, r := range ranges {
		shardTable, err := table.Shard(r.Lo, r.Hi)
		if err != nil {
			t.Fatal(err)
		}
		shardRecs[i] = trace.NewRecorder(8)
		srv, err := server.New(shardTable, server.Config{Logf: logf, Traces: shardRecs[i]})
		if err != nil {
			t.Fatal(err)
		}
		ranges[i].Backends = []string{serveOn(t, srv)}
	}
	sm, err := NewShardMap(ranges)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ClientConfig{Retries: 2, Backoff: 5 * time.Millisecond, ProbeAfter: 50 * time.Millisecond})
	agg, err := NewAggregator(sm, client)
	if err != nil {
		t.Fatal(err)
	}
	aggRec := trace.NewRecorder(8)
	srv, err := server.NewHandler(agg, server.Config{Logf: logf, Traces: aggRec})
	if err != nil {
		t.Fatal(err)
	}
	return serveOn(t, srv), srv, client, aggRec, shardRecs
}

// spanSum adds up the named (sequential, compute-only) phase spans of a
// snapshot; concurrent fan-out spans are deliberately not in the list.
func spanSum(snap trace.Snapshot, phases ...string) time.Duration {
	var sum time.Duration
	for _, sp := range snap.Spans {
		for _, p := range phases {
			if sp.Name == p {
				sum += time.Duration(sp.DurNanos)
			}
		}
	}
	return sum
}

func TestTracePropagationEndToEnd(t *testing.T) {
	testutil.GuardGoroutines(t)
	sk := testKey(t)
	const k = 2
	table, sel, want := fixture(t, 48, 20, 71)
	addr, srv, aggClient, aggRec, shardRecs := startTracedCluster(t, table, k, discardLogf)

	id := trace.NewID()
	cl := NewClient(ClientConfig{Retries: 1, Backoff: 5 * time.Millisecond})
	start := time.Now()
	var sum fmt.Stringer
	_, err := cl.Do(context.Background(), []string{addr}, func(s *Session) error {
		s.Conn.SetTraceID(id)
		got, err := selectedsum.Query(s.Conn, sk, sel, 9, nil)
		if err != nil {
			return err
		}
		sum = got
		return nil
	})
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if sum.String() != want.String() {
		t.Errorf("sum = %v, want %v", sum, want)
	}

	// The aggregator finishes its trace after replying, so give the rings a
	// settle window before asserting.
	waitRings := func() bool {
		if len(aggRec.Find(id)) != 1 {
			return false
		}
		for _, r := range shardRecs {
			if len(r.Find(id)) != 1 {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(2 * time.Second)
	for !waitRings() {
		if time.Now().After(deadline) {
			t.Fatalf("trace %s not present in every ring: agg=%d shards=%d,%d",
				id, len(aggRec.Find(id)), len(shardRecs[0].Find(id)), len(shardRecs[1].Find(id)))
		}
		time.Sleep(5 * time.Millisecond)
	}

	agg := aggRec.Find(id)[0]
	if agg.Role != "aggregator" {
		t.Errorf("aggregator trace role = %q", agg.Role)
	}
	if got := spanSum(agg, "hello", "split", "combine"); got > wall {
		t.Errorf("aggregator phase spans sum to %v > client wall-clock %v", got, wall)
	}
	// Each shard dispatch produced a span naming the backend it landed on.
	spanNames := map[string]map[string]string{}
	for _, sp := range agg.Spans {
		spanNames[sp.Name] = sp.Attrs
	}
	for i := 0; i < k; i++ {
		attrs, ok := spanNames[fmt.Sprintf("shard%d", i)]
		if !ok {
			t.Fatalf("aggregator trace missing shard%d span (have %v)", i, agg.Spans)
		}
		if attrs["backend"] == "" || attrs["attempts"] != "1" {
			t.Errorf("shard%d span attrs = %v, want backend set and attempts=1", i, attrs)
		}
	}
	for i, rec := range shardRecs {
		snap := rec.Find(id)[0]
		if snap.Role != "server" {
			t.Errorf("shard%d trace role = %q", i, snap.Role)
		}
		if got := spanSum(snap, "hello", "absorb", "finalize"); got > wall {
			t.Errorf("shard%d phase spans sum to %v > client wall-clock %v", i, got, wall)
		}
	}

	// The /traces HTTP surface serves the same trace by ?id=.
	rr := httptest.NewRecorder()
	aggRec.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/traces?id="+id.String(), nil))
	var doc struct {
		Traces []trace.Snapshot `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/traces JSON: %v", err)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].ID != id.String() {
		t.Errorf("/traces?id= returned %d traces, want the one", len(doc.Traces))
	}

	// /metrics and /stats must tell the same story: scrape both off the
	// proxy's metric sets and compare the shared counters.
	for time.Now().Before(deadline) && srv.Metrics().SessionsCompleted.Value() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	prr := httptest.NewRecorder()
	metrics.PromHandler(srv.Metrics(), aggClient.Metrics()).ServeHTTP(prr, httptest.NewRequest("GET", "/metrics", nil))
	vals, err := testutil.ParseProm(prr.Body.String())
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	srr := httptest.NewRecorder()
	metrics.ClusterStatsHandler(srv.Metrics(), aggClient.Metrics()).ServeHTTP(srr, httptest.NewRequest("GET", "/stats", nil))
	var stats struct {
		Server struct {
			Sessions struct {
				Started   int64 `json:"started"`
				Completed int64 `json:"completed"`
				Failed    int64 `json:"failed"`
			} `json:"sessions"`
			Bytes struct {
				In  int64 `json:"in"`
				Out int64 `json:"out"`
			} `json:"bytes"`
		} `json:"server"`
		Cluster struct {
			Queries   int64 `json:"queries"`
			Failovers int64 `json:"failovers"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(srr.Body.Bytes(), &stats); err != nil {
		t.Fatalf("/stats JSON: %v", err)
	}
	for key, want := range map[string]int64{
		`privstats_sessions_total{state="started"}`:        stats.Server.Sessions.Started,
		`privstats_sessions_total{state="completed"}`:      stats.Server.Sessions.Completed,
		`privstats_sessions_total{state="failed"}`:         stats.Server.Sessions.Failed,
		`privstats_transport_bytes_total{direction="in"}`:  stats.Server.Bytes.In,
		`privstats_transport_bytes_total{direction="out"}`: stats.Server.Bytes.Out,
		"privstats_cluster_queries_total":                  stats.Cluster.Queries,
		"privstats_cluster_failovers_total":                stats.Cluster.Failovers,
	} {
		if got, ok := vals[key]; !ok || got != float64(want) {
			t.Errorf("/metrics %s = %v (present=%v), /stats says %d", key, got, ok, want)
		}
	}
	if stats.Server.Sessions.Started == 0 {
		t.Error("stats show zero sessions — comparison was vacuous")
	}
}

// TestUntracedQueryLeavesRingsEmpty is the no-trailer⇒no-trace half of the
// interop contract, through the full cluster: an old-style client (no trace
// ID) completes fine and NO node retains a trace.
func TestUntracedQueryLeavesRingsEmpty(t *testing.T) {
	testutil.GuardGoroutines(t)
	sk := testKey(t)
	table, sel, want := fixture(t, 30, 12, 73)
	addr, _, _, aggRec, shardRecs := startTracedCluster(t, table, 2, discardLogf)

	cl := NewClient(ClientConfig{Retries: 1, Backoff: 5 * time.Millisecond})
	got, err := cl.Query(context.Background(), []string{addr}, sk, sel, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Settle: session teardown (where Add happens) races the client reply.
	time.Sleep(50 * time.Millisecond)
	if n := aggRec.Len(); n != 0 {
		t.Errorf("aggregator ring holds %d traces from an untraced query", n)
	}
	for i, r := range shardRecs {
		if n := r.Len(); n != 0 {
			t.Errorf("shard%d ring holds %d traces from an untraced query", i, n)
		}
	}
}

// tapConn copies both directions of a connection into shared buffers — the
// privacy test's wiretap on what the client actually uploads/downloads.
type tapConn struct {
	net.Conn
	mu       *sync.Mutex
	up, down *bytes.Buffer
}

func (c tapConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.mu.Lock()
		c.up.Write(p[:n])
		c.mu.Unlock()
	}
	return n, err
}

func (c tapConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.mu.Lock()
		c.down.Write(p[:n])
		c.mu.Unlock()
	}
	return n, err
}

// TestTracesAndLogsCarryNoCiphertext is DESIGN.md §12's enforcement: tap the
// actual wire bytes of a traced query (encrypted index vector up, encrypted
// sums down), then prove no window of that material — raw or hex — appears
// in any node's trace JSON or log output. Structural backstop: every span
// attribute is bounded far below one ciphertext.
func TestTracesAndLogsCarryNoCiphertext(t *testing.T) {
	testutil.GuardGoroutines(t)
	sk := testKey(t)
	table, sel, _ := fixture(t, 32, 14, 77)

	var logMu sync.Mutex
	var logBuf bytes.Buffer
	logf := func(format string, args ...any) {
		logMu.Lock()
		fmt.Fprintf(&logBuf, format+"\n", args...)
		logMu.Unlock()
	}
	addr, _, _, aggRec, shardRecs := startTracedCluster(t, table, 2, logf)

	var tapMu sync.Mutex
	var up, down bytes.Buffer
	cl := NewClient(ClientConfig{
		Retries: 1,
		Backoff: 5 * time.Millisecond,
		Dial: func(ctx context.Context, network, dialAddr string) (net.Conn, error) {
			var d net.Dialer
			c, err := d.DialContext(ctx, network, dialAddr)
			if err != nil {
				return nil, err
			}
			return tapConn{Conn: c, mu: &tapMu, up: &up, down: &down}, nil
		},
	})

	id := trace.NewID()
	_, err := cl.Do(context.Background(), []string{addr}, func(s *Session) error {
		s.Conn.SetTraceID(id)
		_, qerr := selectedsum.Query(s.Conn, sk, sel, 8, nil)
		return qerr
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(aggRec.Find(id)) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Collect every observability surface: all trace JSON plus the logs.
	var surfaces []byte
	for _, rec := range append([]*trace.Recorder{aggRec}, shardRecs...) {
		rr := httptest.NewRecorder()
		rec.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/traces", nil))
		surfaces = append(surfaces, rr.Body.Bytes()...)
	}
	logMu.Lock()
	surfaces = append(surfaces, logBuf.Bytes()...)
	logMu.Unlock()

	// The uploaded stream past the hello is ciphertext (the encrypted index
	// vector); the downloaded stream carries the encrypted sum. Sample
	// 16-byte windows across both and require each to be absent — raw and
	// hex — from every surface.
	tapMu.Lock()
	streams := [][]byte{append([]byte(nil), up.Bytes()...), append([]byte(nil), down.Bytes()...)}
	tapMu.Unlock()
	const win = 16
	checked := 0
	for si, stream := range streams {
		if len(stream) < win {
			t.Fatalf("stream %d too short (%d bytes) — tap broken", si, len(stream))
		}
		for off := 0; off+win <= len(stream); off += 256 {
			w := stream[off : off+win]
			if bytes.Contains(surfaces, w) {
				t.Errorf("raw wire bytes at stream %d offset %d appear in traces/logs", si, off)
			}
			hexW := hex.EncodeToString(w)
			if strings.Contains(strings.ToLower(string(surfaces)), hexW) {
				t.Errorf("hex of wire bytes at stream %d offset %d appears in traces/logs: %s", si, off, hexW)
			}
			checked++
		}
	}
	if checked < 8 {
		t.Fatalf("only %d windows checked — streams unexpectedly small", checked)
	}

	// Structural backstop: no attribute value is big enough to smuggle a
	// ciphertext (the key's ciphertexts are hundreds of hex chars).
	for _, rec := range append([]*trace.Recorder{aggRec}, shardRecs...) {
		for _, snap := range rec.Recent(8) {
			for k, v := range snap.Attrs {
				if len(v) > 128 {
					t.Errorf("trace attr %q is %d bytes — exceeds the privacy bound", k, len(v))
				}
			}
			for _, sp := range snap.Spans {
				for k, v := range sp.Attrs {
					if len(v) > 128 {
						t.Errorf("span %s attr %q is %d bytes — exceeds the privacy bound", sp.Name, k, len(v))
					}
				}
			}
		}
	}
}
