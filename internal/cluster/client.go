package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/metrics"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// Defaults for zero ClientConfig fields.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultIOTimeout   = 30 * time.Second
	DefaultRetries     = 2
	DefaultBackoff     = 50 * time.Millisecond
	DefaultMaxBackoff  = 2 * time.Second
	DefaultMaxConns    = 8
	DefaultProbeAfter  = 2 * time.Second
)

// ClientConfig tunes the production client runtime. The zero value gets
// the defaults above.
type ClientConfig struct {
	// DialTimeout bounds each TCP connect.
	DialTimeout time.Duration
	// IOTimeout is the per-frame idle/write deadline on backend sessions:
	// a backend that stalls longer than this mid-session fails the attempt
	// (and the attempt fails over).
	IOTimeout time.Duration
	// Retries is the extra attempts after the first, spread across the
	// candidate backends. Negative means no retries at all.
	Retries int
	// Backoff is the sleep before retry attempt k, doubled each time
	// (Backoff, 2·Backoff, 4·Backoff, ...) and jittered ±50%.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// MaxConnsPerBackend bounds concurrent sessions per backend. The
	// protocol is one session per connection (the server closes the
	// connection after the sum), so the pool manages connection slots, not
	// idle sockets: holding warm idle connections would pin server
	// admission slots and be reaped by its idle timeout.
	MaxConnsPerBackend int
	// ProbeAfter is how long a backend marked down is skipped before one
	// attempt is let through as a probe; the penalty doubles (capped at
	// 16× ProbeAfter) while probes keep failing.
	ProbeAfter time.Duration
	// DialHedgeAfter, when positive, launches a second dial to the same
	// address if the first has not connected within this delay; the first
	// connection to complete wins and the loser is closed. It bounds the
	// tail a half-open SYN blackhole adds to the attempt, without burning a
	// retry.
	DialHedgeAfter time.Duration
	// Dial overrides the transport dialer — the seam internal/faultnet (and
	// any proxy-aware deployment) plugs into. Nil uses net.Dialer with
	// DialTimeout.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// UseCRC requests CRC32 frame trailers from backends that understand
	// the HelloFlagFrameCRC negotiation. Old servers ignore the flag and
	// the session degrades to plain frames.
	UseCRC bool
	// Metrics receives retry/failover counters and per-backend fan-out
	// histograms; nil allocates a private set.
	Metrics *metrics.ClusterMetrics
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = DefaultIOTimeout
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.MaxConnsPerBackend <= 0 {
		c.MaxConnsPerBackend = DefaultMaxConns
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = DefaultProbeAfter
	}
	return c
}

// Client is the production client runtime: per-backend connection slots,
// dial/IO timeouts, bounded retry with exponential backoff and jitter, and
// failover across a candidate list steered by per-backend health. One
// Client is meant to be shared: the aggregator uses one for all shards,
// and cmd/sumclient builds one from its flags. All methods are safe for
// concurrent use.
type Client struct {
	cfg ClientConfig
	m   *metrics.ClusterMetrics

	mu     sync.Mutex
	health map[string]*backendHealth
	slots  map[string]chan struct{}

	// now and sleep are stubbed in tests.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient builds a Client; zero config fields get defaults.
func NewClient(cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	m := cfg.Metrics
	if m == nil {
		m = &metrics.ClusterMetrics{}
	}
	return &Client{
		cfg:    cfg,
		m:      m,
		health: make(map[string]*backendHealth),
		slots:  make(map[string]chan struct{}),
		now:    time.Now,
		sleep:  sleepCtx,
	}
}

// Metrics returns the client's metrics set.
func (c *Client) Metrics() *metrics.ClusterMetrics { return c.m }

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backendHealth is the circuit state for one backend.
type backendHealth struct {
	mu          sync.Mutex
	consecFails int
	downUntil   time.Time
}

func (c *Client) healthOf(addr string) *backendHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[addr]
	if h == nil {
		h = &backendHealth{}
		c.health[addr] = h
	}
	return h
}

// available reports whether addr should be attempted now. A backend is
// down after a failure until its penalty window passes; the first attempt
// after the window is the probe.
func (c *Client) available(addr string) bool {
	h := c.healthOf(addr)
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.consecFails == 0 || c.now().After(h.downUntil)
}

// noteFailure records a failed attempt and (re)arms the down window with
// doubling penalty.
func (c *Client) noteFailure(addr string) {
	h := c.healthOf(addr)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails++
	penalty := c.cfg.ProbeAfter
	for i := 1; i < h.consecFails && penalty < 16*c.cfg.ProbeAfter; i++ {
		penalty *= 2
	}
	if penalty > 16*c.cfg.ProbeAfter {
		penalty = 16 * c.cfg.ProbeAfter
	}
	h.downUntil = c.now().Add(penalty)
}

// noteSuccess resets the backend's circuit.
func (c *Client) noteSuccess(addr string) {
	h := c.healthOf(addr)
	h.mu.Lock()
	h.consecFails = 0
	h.downUntil = time.Time{}
	h.mu.Unlock()
}

// slot acquires a connection slot for addr, waiting if the per-backend cap
// is saturated. The returned release must be called exactly once.
func (c *Client) slot(ctx context.Context, addr string) (release func(), err error) {
	c.mu.Lock()
	sem := c.slots[addr]
	if sem == nil {
		sem = make(chan struct{}, c.cfg.MaxConnsPerBackend)
		c.slots[addr] = sem
	}
	c.mu.Unlock()
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// pick chooses the next backend to attempt: the first available candidate
// in order (primary preference), or — when every candidate is down — the
// one whose down window expires soonest, so a fully dark group still gets
// probed instead of failing without an attempt.
func (c *Client) pick(backends []string) string {
	for _, b := range backends {
		if c.available(b) {
			return b
		}
	}
	best := backends[0]
	bestUntil := time.Time{}
	for i, b := range backends {
		h := c.healthOf(b)
		h.mu.Lock()
		until := h.downUntil
		h.mu.Unlock()
		if i == 0 || until.Before(bestUntil) {
			best, bestUntil = b, until
		}
	}
	return best
}

// rawDial resolves the configured dialer.
func (c *Client) rawDial(ctx context.Context, addr string) (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial(ctx, "tcp", addr)
	}
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	return d.DialContext(ctx, "tcp", addr)
}

// hedgedDial connects to addr, optionally racing a second dial launched
// DialHedgeAfter into the first. First connection wins; the loser (if it
// ever completes) is closed.
func (c *Client) hedgedDial(ctx context.Context, addr string) (net.Conn, error) {
	if c.cfg.DialHedgeAfter <= 0 {
		return c.rawDial(ctx, addr)
	}
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		conn net.Conn
		err  error
	}
	// Cap 2: at most the primary and one hedge, so sends never block and
	// the reaper below can drain stragglers after a winner is picked.
	results := make(chan res, 2)
	launch := func() {
		conn, err := c.rawDial(dctx, addr)
		results <- res{conn, err}
	}
	reap := func(n int) {
		for i := 0; i < n; i++ {
			if r := <-results; r.conn != nil {
				r.conn.Close()
			}
		}
	}
	go launch()
	timer := time.NewTimer(c.cfg.DialHedgeAfter)
	defer timer.Stop()
	launched, received := 1, 0
	var lastErr error
	for {
		select {
		case r := <-results:
			received++
			if r.err == nil {
				if launched > received {
					go reap(launched - received)
				}
				return r.conn, nil
			}
			lastErr = r.err
			if received == launched {
				return nil, lastErr
			}
		case <-timer.C:
			c.m.HedgedDials.Inc()
			launched++
			go launch()
		case <-dctx.Done():
			if launched > received {
				go reap(launched - received)
			}
			return nil, dctx.Err()
		}
	}
}

// dial opens a framed session to addr with deadlines armed. It consumes a
// connection slot; Close the session to release it.
func (c *Client) dial(ctx context.Context, addr string) (*Session, error) {
	release, err := c.slot(ctx, addr)
	if err != nil {
		return nil, err
	}
	conn, err := c.hedgedDial(ctx, addr)
	if err != nil {
		release()
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	wc := wire.NewConn(conn)
	wc.SetIdleTimeout(c.cfg.IOTimeout)
	wc.SetWriteTimeout(c.cfg.IOTimeout)
	if c.cfg.UseCRC {
		wc.EnableCRC()
	}
	return &Session{Addr: addr, Conn: wc, raw: conn, release: release}, nil
}

// Session is one framed backend connection plus its pool slot.
type Session struct {
	Addr string
	Conn *wire.Conn

	raw       net.Conn
	release   func()
	closeOnce sync.Once
}

// Close closes the connection and releases the pool slot. Safe to call
// more than once.
func (s *Session) Close() {
	s.closeOnce.Do(func() {
		s.raw.Close()
		s.release()
	})
}

// IsBusy reports whether err is a server admission-control busy rejection
// — worth retrying elsewhere (or later), unlike a protocol error. New
// servers classify the rejection with wire.CodeBusy; the string check keeps
// pre-code peers working.
func IsBusy(err error) bool {
	if err == nil {
		return false
	}
	if wire.ErrorCodeOf(err) == wire.CodeBusy {
		return true
	}
	return strings.Contains(err.Error(), "busy")
}

// retryable classifies errors worth another attempt: connection-level
// failures, timeouts, busy rejections, and — critically for the chaos
// model — frame corruption (a flipped byte on one attempt says nothing
// about the next) and short writes. Protocol-level rejections (bad vector
// length, unknown scheme, ...) are deterministic and fail fast, as is a
// peer-reported shard-unavailable: the backend already exhausted its own
// candidates, so hammering it from here only stacks retry pyramids.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if IsBusy(err) || wire.IsTimeout(err) {
		return true
	}
	if errors.Is(err, wire.ErrFrameCorrupt) || errors.Is(err, io.ErrShortWrite) {
		return true
	}
	// A declared length past the frame ceiling mid-session is a corrupted
	// (or hostile) header, not a deterministic peer decision: the next
	// attempt's stream is independent, so it gets the corruption verdict.
	if errors.Is(err, wire.ErrFrameTooLarge) {
		return true
	}
	switch wire.ErrorCodeOf(err) {
	case wire.CodeTimeout, wire.CodeCorruptFrame:
		return true
	case wire.CodeShardUnavailable:
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) {
		return true
	}
	var ne *net.OpError
	return errors.As(err, &ne)
}

// isCorruption reports frame-level corruption, locally detected or
// peer-reported.
func isCorruption(err error) bool {
	return errors.Is(err, wire.ErrFrameCorrupt) || wire.ErrorCodeOf(err) == wire.CodeCorruptFrame
}

// ExhaustedError is returned by Do when every attempt failed: the caller
// (the aggregator's shard fan-out) uses it to classify the shard as
// unavailable rather than the query as malformed.
type ExhaustedError struct {
	Attempts int
	Last     error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("cluster: all %d attempts failed: %v", e.Attempts, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// backoff returns the jittered sleep before retry attempt k (k = 1 for the
// first retry): Backoff·2^(k-1), capped at MaxBackoff, jittered ±50% so a
// burst of failed fan-outs does not re-converge on the struggling backend
// in lockstep.
func (c *Client) backoff(k int) time.Duration {
	d := c.cfg.Backoff
	for i := 1; i < k && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	if d <= 0 {
		// A zero-valued config (constructed without withDefaults) would
		// make rand.Int63n(0) panic; retry immediately instead.
		return 0
	}
	// Jitter in [0.5d, 1.5d).
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// DoStats reports how hard one Do call had to work — the per-request
// counterpart of the aggregate ClusterMetrics, recorded into request
// traces so a slow query can be attributed to its retries.
type DoStats struct {
	// Attempts is the total number of attempts made (1 = first try won).
	Attempts int
	// Retries counts re-attempts against the same backend.
	Retries int
	// Failovers counts switches to a different candidate backend.
	Failovers int
}

// Do runs fn against the candidate backends (primary first) with bounded
// retry, backoff, and failover. fn receives a fresh session and must
// complete one protocol exchange on it; Do closes the session afterwards.
// It returns the address that served the successful attempt.
func (c *Client) Do(ctx context.Context, backends []string, fn func(s *Session) error) (string, error) {
	addr, _, err := c.DoStats(ctx, backends, fn)
	return addr, err
}

// DoStats is Do, additionally reporting the per-call attempt accounting.
func (c *Client) DoStats(ctx context.Context, backends []string, fn func(s *Session) error) (string, DoStats, error) {
	var st DoStats
	if len(backends) == 0 {
		return "", st, errors.New("cluster: no backends to try")
	}
	attempts := c.cfg.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	lastAddr := ""
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt)); err != nil {
				return "", st, err
			}
		}
		addr := c.pick(backends)
		if attempt > 0 {
			if addr == lastAddr {
				c.m.Retries.Inc()
				st.Retries++
			} else {
				c.m.Failovers.Inc()
				st.Failovers++
			}
		}
		lastAddr = addr
		st.Attempts++
		err := c.attempt(ctx, addr, fn)
		if err == nil {
			return addr, st, nil
		}
		lastErr = fmt.Errorf("backend %s: %w", addr, err)
		if !retryable(err) {
			return "", st, lastErr
		}
		if ctx.Err() != nil {
			return "", st, ctx.Err()
		}
	}
	c.m.ShardFailures.Inc()
	return "", st, &ExhaustedError{Attempts: attempts, Last: lastErr}
}

// attempt runs one dial + fn cycle against addr with metrics and health
// bookkeeping.
func (c *Client) attempt(ctx context.Context, addr string, fn func(s *Session) error) error {
	bm := c.m.Backend(addr)
	bm.Sessions.Inc()
	start := c.now()
	s, err := c.dial(ctx, addr)
	if err == nil {
		err = fn(s)
		s.Close()
	}
	if err != nil {
		bm.Errors.Inc()
		if IsBusy(err) {
			bm.Busy.Inc()
		}
		if isCorruption(err) {
			c.m.CorruptFrames.Inc()
		}
		c.noteFailure(addr)
		return err
	}
	bm.FanoutNanos.ObserveDuration(c.now().Sub(start))
	c.noteSuccess(addr)
	return nil
}

// Query runs one selected-sum query with the runtime's full retry/failover
// policy: it encrypts the selection, streams it to a backend in chunks of
// chunkSize, and returns the decrypted sum. backends is the failover list
// (a single address for the classic one-server setup). pool, when non-nil,
// supplies preprocessed bit encryptions; a retried attempt falls back to
// online encryption for whatever the pool has already handed out.
func (c *Client) Query(ctx context.Context, backends []string, sk homomorphic.PrivateKey, sel *database.Selection, chunkSize int, pool homomorphic.EncryptorPool) (*big.Int, error) {
	c.m.Queries.Inc()
	var sum *big.Int
	_, err := c.Do(ctx, backends, func(s *Session) error {
		got, err := selectedsum.Query(s.Conn, sk, sel, chunkSize, pool)
		if err != nil {
			return err
		}
		sum = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sum, nil
}

// QuerySpec describes one multi-column query for QueryColumns.
type QuerySpec struct {
	// Sel is the secret selection (required).
	Sel *database.Selection
	// ChunkSize batches the index stream; 0 sends one chunk.
	ChunkSize int
	// Pool supplies preprocessed bit encryptions; nil encrypts online.
	Pool homomorphic.EncryptorPool
	// Columns selects the server-side folds (zero means value only).
	Columns wire.ColumnSet
	// TraceID, when non-zero, tags every attempt of the query so one ID
	// stitches the client, aggregator, and shard records together.
	TraceID [16]byte
}

// QueryColumns runs one multi-column selected-sum query with the runtime's
// full retry/failover policy: one uplink of the encrypted selection, one
// decrypted sum per column in spec.Columns (ascending bit order).
func (c *Client) QueryColumns(ctx context.Context, backends []string, sk homomorphic.PrivateKey, spec QuerySpec) ([]*big.Int, error) {
	c.m.Queries.Inc()
	var sums []*big.Int
	_, err := c.Do(ctx, backends, func(s *Session) error {
		s.Conn.SetTraceID(spec.TraceID)
		got, err := selectedsum.QueryColumns(s.Conn, sk, spec.Sel, spec.ChunkSize, spec.Pool, spec.Columns)
		if err != nil {
			return err
		}
		sums = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sums, nil
}
