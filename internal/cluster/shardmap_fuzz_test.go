package cluster

import (
	"testing"
)

// FuzzParseShardMapSpec fuzzes the sumproxy -shards parser: arbitrary input
// must never panic, and any spec that parses must round-trip through
// String() to an equivalent map (parse → String → parse is identity).
func FuzzParseShardMapSpec(f *testing.F) {
	f.Add("0-5000=db1:7001;5000-10000=db2:7001")
	f.Add("0-5000=db1:7001|db1b:7001;5000-10000=db2:7001")
	f.Add("0-1=a")
	f.Add("")
	f.Add(";;;")
	f.Add("0-0=a")
	f.Add("5-0=a")
	f.Add("0-5=a;3-9=b")
	f.Add("-1-5=a")
	f.Add("0-99999999999999999999=a")
	f.Add("0-5=|||")
	f.Add("0-5=a=b")
	f.Add("0-5= a ; 5-9= b ")
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseShardMap(spec)
		if err != nil {
			return
		}
		// Structural invariants of anything that parsed.
		if m.Rows() <= 0 || m.Len() <= 0 {
			t.Fatalf("parsed map has rows=%d len=%d", m.Rows(), m.Len())
		}
		next := 0
		for i, s := range m.Shards() {
			if s.Lo != next || s.Hi <= s.Lo || len(s.Backends) == 0 {
				t.Fatalf("shard %d = %+v violates tiling", i, s)
			}
			next = s.Hi
		}
		// Round trip: parse(String(m)) must reproduce m exactly.
		again, err := ParseShardMap(m.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", m.String(), err)
		}
		if again.Rows() != m.Rows() || again.Len() != m.Len() {
			t.Fatalf("round trip changed shape: %q vs %q", m.String(), again.String())
		}
		for i := range m.Shards() {
			a, b := m.Shards()[i], again.Shards()[i]
			if a.Lo != b.Lo || a.Hi != b.Hi || len(a.Backends) != len(b.Backends) {
				t.Fatalf("shard %d changed: %+v vs %+v", i, a, b)
			}
			for j := range a.Backends {
				if a.Backends[j] != b.Backends[j] {
					t.Fatalf("shard %d backend %d changed: %q vs %q", i, j, a.Backends[j], b.Backends[j])
				}
			}
		}
		if m.String() != again.String() {
			t.Fatalf("String not a fixed point: %q vs %q", m.String(), again.String())
		}
	})
}
