package cluster

import (
	"context"
	"crypto/rand"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/metrics"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
	"privstats/internal/server"
	"privstats/internal/wire"
)

var (
	tkOnce sync.Once
	tkKey  *paillier.PrivateKey
	tkErr  error
)

// testKey returns a shared 256-bit test key. Importing paillier also
// registers the scheme with the hello parser.
func testKey(t testing.TB) homomorphic.PrivateKey {
	t.Helper()
	tkOnce.Do(func() { tkKey, tkErr = paillier.KeyGen(rand.Reader, 256) })
	if tkErr != nil {
		t.Fatalf("KeyGen: %v", tkErr)
	}
	return paillier.SchemeKey{SK: tkKey}
}

func discardLogf(string, ...any) {}

// fixture builds a deterministic random table + selection and the
// cleartext oracle sum.
func fixture(t testing.TB, n, m int, seed int64) (*database.Table, *database.Selection, *big.Int) {
	t.Helper()
	table, err := database.Generate(n, database.DistUniform, seed)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := database.GenerateSelection(n, m, database.PatternRandom, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := table.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}
	return table, sel, want
}

// startBackend serves one shard table on loopback TCP through the stock
// server runtime and returns its address.
func startBackend(t *testing.T, shard *database.Table) string {
	t.Helper()
	srv, err := server.New(shard, server.Config{Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	return serveOn(t, srv)
}

// startProxy hosts an aggregator over sm on the server runtime and returns
// its address plus the hosting server (for /stats assertions).
func startProxy(t *testing.T, sm *ShardMap, client *Client) (string, *server.Server) {
	t.Helper()
	agg, err := NewAggregator(sm, client)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewHandler(agg, server.Config{Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	return serveOn(t, srv), srv
}

func serveOn(t *testing.T, srv *server.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		select {
		case <-errc:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return ln.Addr().String()
}

// startCluster shards table over k backends (1 node per shard) and starts
// an aggregator in front; it returns the proxy address, the hosting
// server, and the fan-out client.
func startCluster(t *testing.T, table *database.Table, k int) (string, *server.Server, *Client) {
	t.Helper()
	groups := make([][]string, k)
	// Compute the ranges first, then start one backend per range.
	ranges := make([]Shard, k)
	lo := 0
	for i := 0; i < k; i++ {
		rows := table.Len() / k
		if i < table.Len()%k {
			rows++
		}
		ranges[i] = Shard{Lo: lo, Hi: lo + rows}
		lo += rows
	}
	for i, r := range ranges {
		shardTable, err := table.Shard(r.Lo, r.Hi)
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = []string{startBackend(t, shardTable)}
		ranges[i].Backends = groups[i]
	}
	sm, err := NewShardMap(ranges)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ClientConfig{Retries: 2, Backoff: 5 * time.Millisecond, ProbeAfter: 50 * time.Millisecond})
	addr, srv := startProxy(t, sm, client)
	return addr, srv, client
}

// TestClusterEndToEnd is the headline acceptance test: k ∈ {1,2,4} shards
// over real TCP loopback, random database and selection, decrypted total
// equals the cleartext oracle for every k.
func TestClusterEndToEnd(t *testing.T) {
	sk := testKey(t)
	for _, k := range []int{1, 2, 4} {
		table, sel, want := fixture(t, 48, 20, int64(100+k))
		addr, _, client := startCluster(t, table, k)
		got, err := client.Query(context.Background(), []string{addr}, sk, sel, 7, nil)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got.Cmp(want) != 0 {
			t.Errorf("k=%d: sum = %v, want %v", k, got, want)
		}
	}
}

// TestClusterSingleChunk exercises the no-batching path (whole vector in
// one chunk spanning every shard).
func TestClusterSingleChunk(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 30, 11, 7)
	addr, _, client := startCluster(t, table, 3)
	got, err := client.Query(context.Background(), []string{addr}, sk, sel, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

// TestClusterRejectsWrongVectorLen: a client announcing the wrong logical
// size gets a protocol error, not a hang or a wrong answer.
func TestClusterRejectsWrongVectorLen(t *testing.T) {
	sk := testKey(t)
	table, _, _ := fixture(t, 24, 10, 9)
	addr, _, _ := startCluster(t, table, 2)

	badSel, err := database.GenerateSelection(10, 4, database.PatternRandom, 3)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = selectedsum.Query(wire.NewConn(conn), sk, badSel, 0, nil)
	if err == nil {
		t.Fatal("wrong vector length accepted")
	}
}

// dyingBackend accepts connections, reads a little, then drops them — a
// backend killed mid-session. Returns its address and a stop func.
func dyingBackend(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 512)
				_, _ = c.Read(buf) // let the session start, then die
				c.Close()
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestClusterFailover kills a shard's primary mid-run: the query must
// complete via the replica, and the failover must be visible in the
// aggregator's /stats counters.
func TestClusterFailover(t *testing.T) {
	sk := testKey(t)
	table, sel, want := fixture(t, 40, 17, 31)

	half := table.Len() / 2
	shard0, err := table.Shard(0, half)
	if err != nil {
		t.Fatal(err)
	}
	shard1, err := table.Shard(half, table.Len())
	if err != nil {
		t.Fatal(err)
	}
	dead := dyingBackend(t) // primary of shard 1: dies mid-session
	live := startBackend(t, shard1)
	sm, err := NewShardMap([]Shard{
		{Lo: 0, Hi: half, Backends: []string{startBackend(t, shard0)}},
		{Lo: half, Hi: table.Len(), Backends: []string{dead, live}},
	})
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ClientConfig{Retries: 3, Backoff: 5 * time.Millisecond, ProbeAfter: time.Minute})
	addr, srv := startProxy(t, sm, client)

	got, err := client.Query(context.Background(), []string{addr}, sk, sel, 5, nil)
	if err != nil {
		t.Fatalf("query did not survive backend death: %v", err)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", got, want)
	}

	cs := client.Metrics().Snapshot()
	if cs.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", cs.Failovers)
	}
	if bs := cs.Backends[dead]; bs.Errors < 1 {
		t.Errorf("dead backend errors = %d, want >= 1", bs.Errors)
	}
	if bs := cs.Backends[live]; bs.Sessions < 1 {
		t.Errorf("live replica sessions = %d, want >= 1", bs.Sessions)
	}
	// The hosting runtime completed the session despite the mid-run death.
	if srv.Metrics().SessionsCompleted.Value() != 1 {
		t.Errorf("proxy completed = %d, want 1", srv.Metrics().SessionsCompleted.Value())
	}

	// A second query skips the dead primary without burning an attempt on
	// it (health window is a minute): no new errors against it.
	before := client.Metrics().Snapshot().Backends[dead].Sessions
	if _, err := client.Query(context.Background(), []string{addr}, sk, sel, 5, nil); err != nil {
		t.Fatalf("second query: %v", err)
	}
	after := client.Metrics().Snapshot().Backends[dead].Sessions
	if after != before {
		t.Errorf("dead backend was attempted again while down: %d -> %d sessions", before, after)
	}
}

// recorder captures the frames a tap forwarded, per direction.
type recorder struct {
	mu   sync.Mutex
	up   []wire.Frame // client-of-tap → target
	down []wire.Frame // target → client-of-tap
}

func (r *recorder) add(up bool, f wire.Frame) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := append([]byte(nil), f.Payload...)
	if up {
		r.up = append(r.up, wire.Frame{Type: f.Type, Payload: p})
	} else {
		r.down = append(r.down, wire.Frame{Type: f.Type, Payload: p})
	}
}

func (r *recorder) snapshot() (up, down []wire.Frame) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]wire.Frame(nil), r.up...), append([]wire.Frame(nil), r.down...)
}

// startTap forwards loopback TCP to target, recording every frame.
func startTap(t *testing.T, target string, rec *recorder) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	pump := func(src, dst net.Conn, up bool) {
		defer dst.Close()
		defer src.Close()
		for {
			f, _, err := wire.ReadFrame(src)
			if err != nil {
				return
			}
			rec.add(up, f)
			if _, err := wire.WriteFrame(dst, f.Type, f.Payload); err != nil {
				return
			}
		}
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				b, err := net.Dial("tcp", target)
				if err != nil {
					c.Close()
					return
				}
				go pump(c, b, true)
				pump(b, c, false)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestClusterPrivacyInvariants checks, on the wire, the three properties
// the trust argument rests on: each backend receives only ciphertexts
// covering its own row range; the aggregator's reply is rerandomized (it
// differs from the raw homomorphic product of the partials); and the
// client observes exactly one ciphertext — no per-shard partials.
func TestClusterPrivacyInvariants(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	width := pk.CiphertextSize()
	table, sel, want := fixture(t, 36, 15, 77)
	half := table.Len() / 2

	shard0, err := table.Shard(0, half)
	if err != nil {
		t.Fatal(err)
	}
	shard1, err := table.Shard(half, table.Len())
	if err != nil {
		t.Fatal(err)
	}
	recs := []*recorder{{}, {}}
	tap0 := startTap(t, startBackend(t, shard0), recs[0])
	tap1 := startTap(t, startBackend(t, shard1), recs[1])
	sm, err := NewShardMap([]Shard{
		{Lo: 0, Hi: half, Backends: []string{tap0}},
		{Lo: half, Hi: table.Len(), Backends: []string{tap1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ClientConfig{})
	addr, _ := startProxy(t, sm, client)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	got, err := selectedsum.Query(wc, sk, sel, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("sum = %v, want %v", got, want)
	}

	// Invariant 3: the client saw exactly one inbound frame — the sum.
	_, _, _, framesIn := wc.Meter.Snapshot()
	if framesIn != 1 {
		t.Errorf("client received %d frames, want exactly 1 (the sum)", framesIn)
	}

	// Invariant 1: each backend saw a hello scoped to its own range and
	// chunks covering exactly [Lo, Hi) — nothing outside it.
	bounds := [][2]uint64{{0, uint64(half)}, {uint64(half), uint64(table.Len())}}
	var partials []homomorphic.Ciphertext
	for i, rec := range recs {
		up, down := rec.snapshot()
		lo, hi := bounds[i][0], bounds[i][1]
		var covered uint64
		for _, f := range up {
			switch f.Type {
			case wire.MsgHello:
				h, err := wire.DecodeHello(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if h.RowOffset != lo || h.VectorLen != hi-lo {
					t.Errorf("backend %d hello scoped [%d,%d), want [%d,%d)", i, h.RowOffset, h.RowOffset+h.VectorLen, lo, hi)
				}
			case wire.MsgIndexChunk:
				c, err := wire.DecodeIndexChunk(f.Payload, width)
				if err != nil {
					t.Fatal(err)
				}
				end := c.Offset + uint64(c.Count())
				if c.Offset < lo || end > hi {
					t.Errorf("backend %d received chunk [%d,%d) outside its range [%d,%d)", i, c.Offset, end, lo, hi)
				}
				covered += uint64(c.Count())
			}
		}
		if covered != hi-lo {
			t.Errorf("backend %d received %d ciphertexts, want %d", i, covered, hi-lo)
		}
		sums := 0
		for _, f := range down {
			if f.Type == wire.MsgSum {
				sums++
				ct, err := pk.ParseCiphertext(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				partials = append(partials, ct)
			}
		}
		if sums != 1 {
			t.Errorf("backend %d sent %d sums, want 1", i, sums)
		}
	}

	// Invariant 2: the reply is not the raw homomorphic product of the
	// partials the aggregator received (rerandomization happened), while
	// still decrypting to the same total.
	if len(partials) == 2 {
		product, err := pk.Add(partials[0], partials[1])
		if err != nil {
			t.Fatal(err)
		}
		reply := queryRawReply(t, addr, sk, sel)
		if string(reply) == string(product.Bytes()) {
			t.Error("aggregator reply equals the raw homomorphic product: not rerandomized")
		}
		ct, err := pk.ParseCiphertext(reply)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Cmp(want) != 0 {
			t.Errorf("rerandomized reply decrypts to %v, want %v", dec, want)
		}
	}
}

// queryRawReply runs a session and returns the reply ciphertext bytes.
func queryRawReply(t *testing.T, addr string, sk homomorphic.PrivateKey, sel *database.Selection) []byte {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	wc := wire.NewConn(conn)
	pk := sk.PublicKey()
	keyBytes, err := pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	n := sel.Len()
	hello := wire.Hello{Version: wire.Version, Scheme: pk.SchemeName(), PublicKey: keyBytes, VectorLen: uint64(n), ChunkLen: 0}
	if err := wc.Send(wire.MsgHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	body, err := selectedsum.EncryptRange(selectedsum.Online{PK: pk}, sel, 0, n, pk.CiphertextSize())
	if err != nil {
		t.Fatal(err)
	}
	chunk := wire.IndexChunk{Offset: 0, Ciphertexts: body, Width: pk.CiphertextSize()}
	if err := wc.Send(wire.MsgIndexChunk, chunk.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.MsgDone, nil); err != nil {
		t.Fatal(err)
	}
	f, err := wc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.MsgSum {
		t.Fatalf("expected sum, got %#x", byte(f.Type))
	}
	return f.Payload
}

// TestShardSessionGlobalOffsets exercises the selectedsum shard session
// directly: a sub-range fold addressed in global row coordinates.
func TestShardSessionGlobalOffsets(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table, sel, _ := fixture(t, 20, 8, 5)
	shard, err := table.Shard(12, 20)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := selectedsum.NewShardSession(pk, shard.Column(), 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	width := pk.CiphertextSize()
	body, err := selectedsum.EncryptRange(selectedsum.Online{PK: pk}, sel, 12, 20, width)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Absorb(&wire.IndexChunk{Offset: 12, Ciphertexts: body, Width: width}); err != nil {
		t.Fatal(err)
	}
	ct, err := sess.Finalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	subSel, err := sel.Slice(12, 20)
	if err != nil {
		t.Fatal(err)
	}
	want, err := shard.SelectedSum(subSel)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("shard fold = %v, want %v", got, want)
	}

	// A chunk below the shard's base must be rejected, not wrap around.
	sess2, err := selectedsum.NewShardSession(pk, shard.Column(), 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess2.Absorb(&wire.IndexChunk{Offset: 0, Ciphertexts: body, Width: width}); err == nil {
		t.Error("chunk below shard base accepted")
	}
}

var _ = metrics.ClusterSnapshot{} // keep the import in smoke builds
