package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"privstats/internal/selectedsum"
	"privstats/internal/server"
	"privstats/internal/testutil"
	"privstats/internal/trace"
	"privstats/internal/wire"
)

// mustMap builds a shard map from 'lo-hi=backend;...' or dies.
func mustMap(t *testing.T, spec string) *ShardMap {
	t.Helper()
	m, err := ParseShardMap(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEpochsAdvance(t *testing.T) {
	e, err := NewEpochs(mustMap(t, "0-100=a"))
	if err != nil {
		t.Fatal(err)
	}
	epoch, m := e.Current()
	if epoch != 1 || m.Rows() != 100 {
		t.Fatalf("initial epoch = %d over %d rows, want 1 over 100", epoch, m.Rows())
	}

	// A pinned session holds the old map across an Advance.
	pinnedEpoch, pinnedMap := e.Current()

	next := mustMap(t, "0-50=a;50-100=b")
	got, err := e.Advance(next)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("Advance = epoch %d, want 2", got)
	}
	if epoch, m = e.Current(); epoch != 2 || m.Len() != 2 {
		t.Errorf("current = epoch %d with %d shards, want 2 with 2", epoch, m.Len())
	}
	if pinnedEpoch != 1 || pinnedMap.Len() != 1 || pinnedMap.Rows() != 100 {
		t.Errorf("pinned view changed under Advance: epoch %d, %d shards", pinnedEpoch, pinnedMap.Len())
	}

	// A successor map serving a different row count is a config error, not
	// a cut-over: resharding never grows the logical table.
	if _, err := e.Advance(mustMap(t, "0-101=a")); err == nil {
		t.Error("row-count-changing map accepted")
	}
	if epoch, _ = e.Current(); epoch != 2 {
		t.Errorf("failed Advance moved the epoch to %d", epoch)
	}
	if _, err := e.Advance(nil); err == nil {
		t.Error("nil map accepted")
	}
}

func TestRebalancerProvisionsAndRetires(t *testing.T) {
	e, err := NewEpochs(mustMap(t, "0-40=old0;40-80=old1"))
	if err != nil {
		t.Fatal(err)
	}
	var provisioned [][2]int
	var retired []Shard
	rb, err := NewRebalancer(RebalancerConfig{
		Epochs: e,
		Provision: func(_ context.Context, lo, hi int) ([]string, error) {
			provisioned = append(provisioned, [2]int{lo, hi})
			return []string{fmt.Sprintf("new-%d-%d", lo, hi)}, nil
		},
		Retire: func(old Shard) { retired = append(retired, old) },
		Logf:   discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Shard 0 is carried verbatim; the old shard 1 range splits in two
	// provisioned halves.
	epoch, nm, err := rb.Reshard(context.Background(), []Target{
		{Lo: 0, Hi: 40, Backends: []string{"old0"}},
		{Lo: 40, Hi: 60},
		{Lo: 60, Hi: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || nm.Len() != 3 {
		t.Errorf("reshard -> epoch %d with %d shards, want 2 with 3", epoch, nm.Len())
	}
	if len(provisioned) != 2 || provisioned[0] != [2]int{40, 60} || provisioned[1] != [2]int{60, 80} {
		t.Errorf("provisioned ranges %v, want [40,60) and [60,80)", provisioned)
	}
	// Only the replaced shard retires; the carried one keeps serving.
	if len(retired) != 1 || retired[0].Lo != 40 || retired[0].Hi != 80 {
		t.Errorf("retired %v, want only [40,80)", retired)
	}
	st := rb.Status()
	if st.Phase != "done" || st.Epoch != 2 || st.Provisioned != 2 || st.ToProvision != 2 {
		t.Errorf("status = %+v", st)
	}
	if liveEpoch, lm := e.Current(); liveEpoch != 2 || lm != nm {
		t.Errorf("register not on the new map: epoch %d", liveEpoch)
	}
}

func TestRebalancerFailureLeavesEpochUntouched(t *testing.T) {
	e, err := NewEpochs(mustMap(t, "0-80=old"))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("copy failed")
	retireCalled := false
	rb, err := NewRebalancer(RebalancerConfig{
		Epochs: e,
		Provision: func(_ context.Context, lo, hi int) ([]string, error) {
			if lo == 40 {
				return nil, boom
			}
			return []string{"new"}, nil
		},
		Retire: func(Shard) { retireCalled = true },
		Logf:   discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = rb.Reshard(context.Background(), []Target{{Lo: 0, Hi: 40}, {Lo: 40, Hi: 80}})
	if !errors.Is(err, boom) {
		t.Fatalf("reshard error = %v, want the provision failure", err)
	}
	if epoch, m := e.Current(); epoch != 1 || m.Len() != 1 {
		t.Errorf("failed reshard moved the register: epoch %d, %d shards", epoch, m.Len())
	}
	if retireCalled {
		t.Error("retire ran after a pre-cutover failure")
	}
	if st := rb.Status(); st.Phase != "failed" {
		t.Errorf("status phase = %q, want failed", st.Phase)
	}

	// A bad target tiling (gap) must also die before cut-over.
	_, _, err = rb.Reshard(context.Background(), []Target{
		{Lo: 0, Hi: 30, Backends: []string{"a"}},
		{Lo: 35, Hi: 80, Backends: []string{"b"}},
	})
	if err == nil {
		t.Fatal("gapped target layout accepted")
	}
	if epoch, _ := e.Current(); epoch != 1 {
		t.Errorf("bad layout moved the register to epoch %d", epoch)
	}
}

func TestRebalancerSingleFlight(t *testing.T) {
	e, err := NewEpochs(mustMap(t, "0-10=a"))
	if err != nil {
		t.Fatal(err)
	}
	inProvision := make(chan struct{})
	release := make(chan struct{})
	rb, err := NewRebalancer(RebalancerConfig{
		Epochs: e,
		Provision: func(context.Context, int, int) ([]string, error) {
			close(inProvision)
			<-release
			return []string{"b"}, nil
		},
		Logf: discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := rb.Reshard(context.Background(), []Target{{Lo: 0, Hi: 10}})
		done <- err
	}()
	<-inProvision
	if _, _, err := rb.Reshard(context.Background(), nil); err == nil {
		t.Error("concurrent reshard accepted")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first reshard: %v", err)
	}
}

// TestEpochPinningEndToEnd is the live-resharding acceptance test: a k=2
// cluster takes continuous traced queries while a Rebalancer splits it to
// k=4. Every reply must be exact, every session must run entirely under a
// single epoch (its trace carries one epoch attr and exactly that epoch's
// shard fan-out), and the new backends' wiretaps must show only ciphertexts
// scoped to their own row ranges — privacy survives the migration.
func TestEpochPinningEndToEnd(t *testing.T) {
	testutil.GuardGoroutines(t)
	sk := testKey(t)
	const n = 48
	table, sel, want := fixture(t, n, 20, 91)

	// Old layout: two halves. New layout: four quarters, each behind a
	// wiretap so the privacy assertion sees exactly what they see.
	halves := [][2]int{{0, n / 2}, {n / 2, n}}
	quarters := [][2]int{{0, 12}, {12, 24}, {24, 36}, {36, 48}}
	oldShards := make([]Shard, len(halves))
	for i, r := range halves {
		st, err := table.Shard(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		oldShards[i] = Shard{Lo: r[0], Hi: r[1], Backends: []string{startBackend(t, st)}}
	}
	recs := make([]*recorder, len(quarters))
	newAddr := make(map[[2]int]string, len(quarters))
	for i, r := range quarters {
		st, err := table.Shard(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = &recorder{}
		newAddr[r] = startTap(t, startBackend(t, st), recs[i])
	}

	sm, err := NewShardMap(oldShards)
	if err != nil {
		t.Fatal(err)
	}
	epochs, err := NewEpochs(sm)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ClientConfig{Retries: 2, Backoff: 5 * time.Millisecond})
	agg, err := NewEpochAggregator(epochs, client, AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aggRec := trace.NewRecorder(64)
	srv, err := server.NewHandler(agg, server.Config{Logf: discardLogf, Traces: aggRec})
	if err != nil {
		t.Fatal(err)
	}
	addr := serveOn(t, srv)

	// query runs one traced session straight over a fresh conn and returns
	// the trace ID; every reply is checked exact on the spot.
	query := func() trace.ID {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Error(err)
			return trace.ID{}
		}
		defer c.Close()
		wc := wire.NewConn(c)
		id := trace.NewID()
		wc.SetTraceID(id)
		got, err := selectedsum.Query(wc, sk, sel, 9, nil)
		if err != nil {
			t.Errorf("query: %v", err)
			return trace.ID{}
		}
		if got.Cmp(want) != 0 {
			t.Errorf("sum = %v, want %v", got, want)
		}
		// Privacy: the client sees one inbound frame — the combined sum,
		// never per-shard partials, under either epoch.
		_, _, _, framesIn := wc.Meter.Snapshot()
		if framesIn != 1 {
			t.Errorf("client received %d frames, want 1", framesIn)
		}
		return id
	}

	// Live load: a background goroutine queries continuously across the
	// cut-over while the foreground drives the reshard.
	var bg []trace.ID
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				bg = append(bg, query())
			}
		}
	}()

	var ids []trace.ID
	ids = append(ids, query(), query()) // pinned to epoch 1

	var retired []Shard
	var retireMu sync.Mutex
	rb, err := NewRebalancer(RebalancerConfig{
		Epochs: epochs,
		Provision: func(_ context.Context, lo, hi int) ([]string, error) {
			a, ok := newAddr[[2]int{lo, hi}]
			if !ok {
				return nil, fmt.Errorf("no provisioned backend for [%d,%d)", lo, hi)
			}
			return []string{a}, nil
		},
		Retire: func(old Shard) {
			retireMu.Lock()
			retired = append(retired, old)
			retireMu.Unlock()
		},
		Metrics: client.Metrics(),
		Logf:    discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]Target, len(quarters))
	for i, r := range quarters {
		targets[i] = Target{Lo: r[0], Hi: r[1]}
	}
	epoch, nm, err := rb.Reshard(context.Background(), targets)
	if err != nil {
		t.Fatalf("reshard: %v", err)
	}
	if epoch != 2 || nm.Len() != 4 {
		t.Fatalf("reshard -> epoch %d with %d shards, want 2 with 4", epoch, nm.Len())
	}

	ids = append(ids, query(), query()) // pinned to epoch 2
	close(stop)
	wg.Wait()
	ids = append(ids, bg...)

	retireMu.Lock()
	if len(retired) != 2 {
		t.Errorf("retired %d shards, want both old halves", len(retired))
	}
	retireMu.Unlock()
	if client.Metrics().Snapshot().Reshards != 1 {
		t.Errorf("reshards counter = %d, want 1", client.Metrics().Snapshot().Reshards)
	}

	// Every session ran under exactly one epoch: its trace names that epoch
	// and fans out to exactly that epoch's shard count.
	sawEpoch := map[string]int{}
	deadline := time.Now().Add(2 * time.Second)
	for _, id := range ids {
		if id == (trace.ID{}) {
			continue
		}
		var snaps []trace.Snapshot
		for len(snaps) == 0 && time.Now().Before(deadline) {
			if snaps = aggRec.Find(id); len(snaps) == 0 {
				time.Sleep(5 * time.Millisecond)
			}
		}
		if len(snaps) != 1 {
			t.Fatalf("trace %s: %d snapshots in the ring", id, len(snaps))
		}
		snap := snaps[0]
		ep := snap.Attrs["epoch"]
		if ep != "1" && ep != "2" {
			t.Fatalf("trace %s: epoch attr = %q, want 1 or 2", id, ep)
		}
		sawEpoch[ep]++
		wantShards := 2
		if ep == "2" {
			wantShards = 4
		}
		if got := snap.Attrs["shards"]; got != strconv.Itoa(wantShards) {
			t.Errorf("trace %s: epoch %s session fanned to %s shards, want %d", id, ep, got, wantShards)
		}
		shardSpans := 0
		for _, sp := range snap.Spans {
			if strings.HasPrefix(sp.Name, "shard") {
				shardSpans++
			}
		}
		if shardSpans != wantShards {
			t.Errorf("trace %s: epoch %s session has %d shard spans, want %d", id, ep, shardSpans, wantShards)
		}
	}
	if sawEpoch["1"] == 0 || sawEpoch["2"] == 0 {
		t.Fatalf("load did not straddle the cut-over: %v", sawEpoch)
	}

	// Wiretap invariant on the post-reshard backends: every chunk a quarter
	// backend received is scoped inside its own row range, and each of its
	// sessions covered that range exactly once.
	for i, r := range quarters {
		lo, hi := uint64(r[0]), uint64(r[1])
		up, _ := recs[i].snapshot()
		var covered uint64
		sessions := 0
		width := sk.PublicKey().CiphertextSize()
		for _, f := range up {
			switch f.Type {
			case wire.MsgHello:
				h, err := wire.DecodeHello(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if h.RowOffset != lo || h.VectorLen != hi-lo {
					t.Errorf("quarter %d hello scoped [%d,%d), want [%d,%d)", i, h.RowOffset, h.RowOffset+h.VectorLen, lo, hi)
				}
				sessions++
			case wire.MsgIndexChunk:
				c, err := wire.DecodeIndexChunk(f.Payload, width)
				if err != nil {
					t.Fatal(err)
				}
				if c.Offset < lo || c.Offset+uint64(c.Count()) > hi {
					t.Errorf("quarter %d received chunk [%d,%d) outside [%d,%d)", i, c.Offset, c.Offset+uint64(c.Count()), lo, hi)
				}
				covered += uint64(c.Count())
			}
		}
		if sessions == 0 {
			t.Errorf("quarter %d served no sessions after cut-over", i)
		}
		if covered != uint64(sessions)*(hi-lo) {
			t.Errorf("quarter %d: %d ciphertexts over %d sessions, want %d per session", i, covered, sessions, hi-lo)
		}
	}
}
