package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"privstats/internal/homomorphic"
	"privstats/internal/metrics"
	"privstats/internal/selectedsum"
	"privstats/internal/server"
	"privstats/internal/trace"
	"privstats/internal/wire"
)

// errAborted marks a shard attempt cancelled because the client session
// died; it is deliberately not retryable.
var errAborted = errors.New("cluster: client session aborted")

// ErrShardUnavailable is the classified partial-failure verdict: a shard
// exhausted every candidate backend (or its deadline), so the whole query
// fails. It is reported to the client as wire.CodeShardUnavailable and
// NEVER as a partial sum — a sum over a subset of shards would both be
// wrong and leak which rows were reachable, violating the privacy contract
// (the client must learn exactly the selected total or nothing).
var ErrShardUnavailable = errors.New("cluster: shard unavailable")

// AggregatorConfig tunes the fan-out's failure policy. The zero value
// disables both knobs (no per-shard deadline, no hedging).
type AggregatorConfig struct {
	// ShardTimeout bounds one shard's whole fan-out (dial through partial
	// sum, across retries). A shard past its deadline is classified
	// unavailable. Zero means no deadline beyond the client runtime's
	// per-frame IO timeouts.
	ShardTimeout time.Duration
	// HedgeAfter, when positive and the shard has a replica, launches a
	// second full shard session against the rotated backend list if the
	// primary has not delivered a partial sum within HedgeAfter of the
	// upload completing. First success wins; the loser is cancelled. This
	// is straggler detection: a stalled-but-alive backend (slow-loris)
	// never trips the dial or busy paths, only this one.
	HedgeAfter time.Duration
}

// Aggregator answers one logical selected-sum session by fanning the
// client's encrypted index vector out to sharded backends and combining
// their encrypted partial sums. It implements server.Handler, so it hosts
// on the PR-1 production runtime and inherits admission control, deadlines,
// panic isolation, graceful shutdown, and /stats.
//
// The aggregator is untrusted for privacy: every byte it touches is a
// ciphertext under the client's key. It learns the shard topology (which
// it already knows) and traffic shape — never the selection, the partials,
// or the total.
type Aggregator struct {
	epochs *Epochs
	client *Client
	cfg    AggregatorConfig
	m      *metrics.ClusterMetrics
}

// NewAggregator builds an aggregator over the shard map, fanning out
// through client (which owns the retry/failover policy and the metrics).
func NewAggregator(shards *ShardMap, client *Client) (*Aggregator, error) {
	return NewAggregatorWithConfig(shards, client, AggregatorConfig{})
}

// NewAggregatorWithConfig is NewAggregator with the failure policy knobs.
// The map is wrapped in a single-epoch register; use NewEpochAggregator to
// share the register with a Rebalancer for live resharding.
func NewAggregatorWithConfig(shards *ShardMap, client *Client, cfg AggregatorConfig) (*Aggregator, error) {
	epochs, err := NewEpochs(shards)
	if err != nil {
		return nil, err
	}
	return NewEpochAggregator(epochs, client, cfg)
}

// NewEpochAggregator builds an aggregator over a shard-map epoch register.
// Each session pins the epoch current at its hello and runs entirely under
// that map; an Advance mid-session affects only later sessions.
func NewEpochAggregator(epochs *Epochs, client *Client, cfg AggregatorConfig) (*Aggregator, error) {
	if epochs == nil {
		return nil, errors.New("cluster: nil epoch register")
	}
	if client == nil {
		return nil, errors.New("cluster: nil client")
	}
	return &Aggregator{epochs: epochs, client: client, cfg: cfg, m: client.Metrics()}, nil
}

// Epochs returns the aggregator's shard-map register, for wiring into a
// Rebalancer or an admin reshard endpoint.
func (a *Aggregator) Epochs() *Epochs { return a.epochs }

var _ server.Handler = (*Aggregator)(nil)

// shardChunk is one shard-local slice of a client index chunk, still in
// global row coordinates.
type shardChunk struct {
	offset uint64
	body   []byte
}

// shardBuffer hands a shard's chunk slices to its fan-out worker. It
// retains everything so a failed backend attempt can be replayed against a
// replica from the start: the first attempt streams through the buffer as
// it fills (pipelining with the client upload), a failover replays it.
type shardBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	chunks []shardChunk
	closed bool
	abort  error
	// done is closed when the upload completes — the hedge timer's start
	// signal (hedging before the buffer is replayable would be wasted work).
	done chan struct{}
}

func newShardBuffer() *shardBuffer {
	b := &shardBuffer{done: make(chan struct{})}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *shardBuffer) append(c shardChunk) {
	b.mu.Lock()
	b.chunks = append(b.chunks, c)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// close marks the upload complete (the client sent MsgDone).
func (b *shardBuffer) close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if !already {
		close(b.done)
	}
	b.cond.Broadcast()
}

// abortWith wakes any waiting worker with a terminal error.
func (b *shardBuffer) abortWith(err error) {
	b.mu.Lock()
	if b.abort == nil {
		b.abort = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// next returns chunk i, blocking until it exists. ok=false means the
// upload completed before chunk i (end of stream).
func (b *shardBuffer) next(i int) (shardChunk, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.abort != nil {
			return shardChunk{}, false, b.abort
		}
		if i < len(b.chunks) {
			return b.chunks[i], true, nil
		}
		if b.closed {
			return shardChunk{}, false, nil
		}
		b.cond.Wait()
	}
}

// ServeSession implements server.Handler: one aggregated selected-sum
// session. Phase timings map naturally: Hello is parse + fan-out setup,
// Absorb is the split-and-forward work, Finalize is the homomorphic
// combine + rerandomize.
func (a *Aggregator) ServeSession(conn *wire.Conn, timings *selectedsum.PhaseTimings) error {
	if timings == nil {
		timings = &selectedsum.PhaseTimings{}
	}
	a.m.Queries.Inc()

	// Pin this session to the shard-map epoch current now. Every row-range
	// decision below — length validation, chunk splitting, fan-out, combine
	// — uses this one map, even if a rebalance advances the register
	// mid-session: mixing maps could double-count or drop rows.
	epoch, smap := a.epochs.Current()
	a.m.Epoch.Set(int64(epoch))

	// fail mirrors selectedsum.ServeTimed's error path: report to the
	// possibly-still-uploading client while draining its frames, so the
	// explanation survives instead of being destroyed by a RST. The report
	// carries the classified code so the client's retry policy can react
	// without parsing prose.
	fail := func(err error) error {
		code := wire.ErrorCodeFor(err)
		if errors.Is(err, ErrShardUnavailable) {
			code = wire.CodeShardUnavailable
		}
		sent := make(chan struct{})
		go func() {
			defer close(sent)
			_ = conn.SendErrorCode(code, err.Error())
		}()
		go func() {
			for {
				f, rerr := conn.Recv()
				if rerr != nil || f.Type == wire.MsgDone || f.Type == wire.MsgError {
					return
				}
			}
		}()
		<-sent
		return err
	}

	f, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("cluster: reading hello: %w", err)
	}
	helloStart := time.Now()
	if f.Type != wire.MsgHello {
		return fail(fmt.Errorf("cluster: expected hello, got message type %#x", byte(f.Type)))
	}
	hello, err := wire.DecodeHello(f.Payload)
	if err != nil {
		return fail(err)
	}
	if hello.Version != wire.Version {
		return fail(fmt.Errorf("cluster: unsupported protocol version %d", hello.Version))
	}
	if hello.Flags&wire.HelloFlagFrameCRC != 0 {
		// Mirror the client's CRC opt-in on our replies; inbound frames
		// carry self-describing trailers and are verified regardless.
		conn.EnableCRC()
	}
	if hello.RowOffset != 0 {
		return fail(fmt.Errorf("cluster: aggregator serves the whole logical database, got row offset %d", hello.RowOffset))
	}
	if hello.VectorLen != uint64(smap.Rows()) {
		return fail(fmt.Errorf("cluster: client announces %d rows, cluster serves %d", hello.VectorLen, smap.Rows()))
	}
	pk, err := homomorphic.ParsePublicKey(hello.Scheme, hello.PublicKey)
	if err != nil {
		return fail(err)
	}
	if !hello.Columns.Valid() {
		return fail(fmt.Errorf("cluster: unknown column bits in set %s", hello.Columns))
	}
	// The column set is forwarded verbatim to every shard; each backend
	// replies with ncols partials and the combine runs column-wise.
	ncols := hello.EffectiveColumns().Count()
	width := pk.CiphertextSize()

	// Trace the fan-out under the client's ID (zero = no trace): the
	// aggregator's trace carries one span per shard dispatch with backend,
	// attempt, and hedge annotations — the "why was THIS query slow"
	// record. Only timings and topology are recorded, never ciphertexts.
	tr := timings.Trace
	tr.SetID(trace.ID(hello.TraceID))
	tr.SetRole("aggregator")
	tr.Annotate("scheme", hello.Scheme)
	tr.Annotate("rows", strconv.FormatUint(hello.VectorLen, 10))
	tr.Annotate("shards", strconv.Itoa(smap.Len()))
	tr.Annotate("epoch", strconv.FormatUint(epoch, 10))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	shards := smap.Shards()
	type shardResult struct {
		i    int
		cts  []homomorphic.Ciphertext
		addr string
		err  error
	}
	bufs := make([]*shardBuffer, len(shards))
	results := make(chan shardResult, len(shards))
	for i := range shards {
		bufs[i] = newShardBuffer()
		go func(i int) {
			cts, addr, err := a.queryShard(ctx, i, shards[i], hello, pk, bufs[i], tr)
			results <- shardResult{i: i, cts: cts, addr: addr, err: err}
		}(i)
	}
	abortWorkers := func(err error) {
		for _, b := range bufs {
			b.abortWith(err)
		}
		cancel()
	}
	timings.Hello = time.Since(helloStart)
	tr.Observe("hello", helloStart, timings.Hello, nil)

	// shardErr labels and classifies a worker failure: an exhausted
	// candidate list or a blown shard deadline means the shard (not the
	// query) is the problem, and the client hears shard-unavailable.
	shardErr := func(i int, err error) error {
		var ex *ExhaustedError
		if errors.As(err, &ex) || errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("%w: %v", ErrShardUnavailable, err)
		}
		return fmt.Errorf("cluster: shard %d [%d,%d): %w", i, shards[i].Lo, shards[i].Hi, err)
	}

	// failed drains a worker failure noticed mid-upload without blocking.
	pending := len(shards)
	partials := make([][]homomorphic.Ciphertext, len(shards))
	checkWorkers := func() error {
		for {
			select {
			case r := <-results:
				pending--
				if r.err != nil {
					return shardErr(r.i, r.err)
				}
				partials[r.i] = r.cts
			default:
				return nil
			}
		}
	}

	total := uint64(smap.Rows())
	var next uint64
	var splitFirst time.Time
	chunksSeen := 0
recvLoop:
	for {
		f, err := conn.Recv()
		if err != nil {
			abortWorkers(errAborted)
			return fmt.Errorf("cluster: reading chunk: %w", err)
		}
		// Post-negotiation, every client frame is CRC-trailed; a plain one
		// is a corrupted header and gets the (retryable) corruption
		// verdict rather than a protocol rejection.
		if conn.CRCEnabled() && !f.CRC {
			abortWorkers(errAborted)
			return fail(fmt.Errorf("cluster: plain frame type %#x in a CRC session: %w", byte(f.Type), wire.ErrFrameCorrupt))
		}
		switch f.Type {
		case wire.MsgIndexChunk:
			// A shard already known dead fails the session now, not after
			// the client uploads the rest of the vector.
			if err := checkWorkers(); err != nil {
				abortWorkers(errAborted)
				return fail(err)
			}
			splitStart := time.Now()
			if chunksSeen == 0 {
				splitFirst = splitStart
			}
			chunksSeen++
			chunk, err := wire.DecodeIndexChunk(f.Payload, width)
			if err != nil {
				abortWorkers(errAborted)
				return fail(err)
			}
			count := uint64(chunk.Count())
			if chunk.Offset != next {
				abortWorkers(errAborted)
				return fail(fmt.Errorf("%w: got offset %d, want %d", selectedsum.ErrChunkOutOfOrder, chunk.Offset, next))
			}
			if next+count > total {
				abortWorkers(errAborted)
				return fail(fmt.Errorf("%w: chunk [%d,%d) exceeds %d rows", selectedsum.ErrVectorLength, next, next+count, total))
			}
			for i, s := range shards {
				lo, hi := uint64(s.Lo), uint64(s.Hi)
				if hi <= chunk.Offset || lo >= chunk.Offset+count {
					continue
				}
				if lo < chunk.Offset {
					lo = chunk.Offset
				}
				if hi > chunk.Offset+count {
					hi = chunk.Offset + count
				}
				body := chunk.Ciphertexts[(lo-chunk.Offset)*uint64(width) : (hi-chunk.Offset)*uint64(width)]
				bufs[i].append(shardChunk{offset: lo, body: body})
			}
			next += count
			timings.Absorb += time.Since(splitStart)
		case wire.MsgDone:
			if next != total {
				abortWorkers(errAborted)
				return fail(fmt.Errorf("%w: folded %d of %d positions", selectedsum.ErrIncomplete, next, total))
			}
			if chunksSeen > 0 {
				// Split is CPU time only (Recv waits excluded), so a
				// trace's phase durations sum to at most the wall clock.
				tr.Observe("split", splitFirst, timings.Absorb, map[string]string{"chunks": strconv.Itoa(chunksSeen)})
			}
			break recvLoop
		case wire.MsgError:
			abortWorkers(errAborted)
			return wire.DecodeError(f.Payload)
		default:
			abortWorkers(errAborted)
			return fail(fmt.Errorf("cluster: unexpected message type %#x mid-session", byte(f.Type)))
		}
	}

	for _, b := range bufs {
		b.close()
	}
	var workerErr error
	for pending > 0 {
		r := <-results
		pending--
		if r.err != nil && workerErr == nil {
			workerErr = shardErr(r.i, r.err)
			abortWorkers(errAborted)
		}
		if r.err == nil {
			partials[r.i] = r.cts
		}
	}
	if workerErr != nil {
		return fail(workerErr)
	}

	// Combine column-wise: Π_s partials[s][c] = E(Σ shard sums of column c)
	// = E(total of column c), then rerandomize so each reply is unlinkable
	// to the product the aggregator computed — the client must not be able
	// to reconstruct per-shard partials even if it later compromises a
	// backend. Replies go out in the same ascending-bit order the backends
	// used, so the aggregator is column-order transparent.
	finStart := time.Now()
	replies := make([]homomorphic.Ciphertext, ncols)
	for c := 0; c < ncols; c++ {
		acc := partials[0][c]
		for _, p := range partials[1:] {
			acc, err = pk.Add(acc, p[c])
			if err != nil {
				return fail(fmt.Errorf("cluster: combining partials: %w", err))
			}
		}
		if replies[c], err = pk.Rerandomize(acc); err != nil {
			return fail(fmt.Errorf("cluster: rerandomizing total: %w", err))
		}
	}
	timings.Finalize = time.Since(finStart)
	tr.Observe("combine", finStart, timings.Finalize, nil)
	a.m.CombineNanos.ObserveDuration(timings.Finalize)
	for _, reply := range replies {
		if err := conn.Send(wire.MsgSum, reply.Bytes()); err != nil {
			return fmt.Errorf("cluster: sending sum: %w", err)
		}
	}
	return nil
}

// queryShard runs one shard's fan-out: per-shard deadline, the client
// runtime's retry/failover inside each dispatch, and — when configured and
// a replica exists — a hedged re-dispatch against the rotated backend list
// if the primary is still silent HedgeAfter past upload completion. The
// shard buffer retains everything and hands out chunks by index, so two
// dispatches can replay it concurrently.
func (a *Aggregator) queryShard(ctx context.Context, idx int, s Shard, clientHello *wire.Hello, pk homomorphic.PublicKey, buf *shardBuffer, tr *trace.Trace) ([]homomorphic.Ciphertext, string, error) {
	if a.cfg.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.cfg.ShardTimeout)
		defer cancel()
	}
	if a.cfg.HedgeAfter <= 0 || len(s.Backends) < 2 {
		return a.dispatchShard(ctx, idx, s, s.Backends, clientHello, pk, buf, tr, false)
	}

	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	type outcome struct {
		cts   []homomorphic.Ciphertext
		addr  string
		err   error
		hedge bool
	}
	outc := make(chan outcome, 2)
	launch := func(backends []string, hedge bool) {
		cts, addr, err := a.dispatchShard(rctx, idx, s, backends, clientHello, pk, buf, tr, hedge)
		outc <- outcome{cts, addr, err, hedge}
	}
	go launch(s.Backends, false)

	// The hedge clock starts when the upload completes: before that the
	// primary is throughput-bound on the client, and a hedge would just
	// double the fan-out bytes for nothing.
	hedgec := make(chan struct{}, 1)
	go func() {
		select {
		case <-buf.done:
		case <-rctx.Done():
			return
		}
		t := time.NewTimer(a.cfg.HedgeAfter)
		defer t.Stop()
		select {
		case <-t.C:
			hedgec <- struct{}{}
		case <-rctx.Done():
		}
	}()

	rotated := append(append([]string{}, s.Backends[1:]...), s.Backends[0])
	launched, received := 1, 0
	var lastErr error
	for {
		select {
		case o := <-outc:
			received++
			if o.err == nil {
				if o.hedge {
					a.m.ShardHedgeWins.Inc()
				}
				rcancel()
				if launched > received {
					go func(n int) { // drain the loser so launch never blocks
						for i := 0; i < n; i++ {
							<-outc
						}
					}(launched - received)
				}
				return o.cts, o.addr, nil
			}
			lastErr = o.err
			if received == launched {
				return nil, "", lastErr
			}
		case <-hedgec:
			a.m.ShardHedges.Inc()
			launched++
			go launch(rotated, true)
		}
	}
}

// dispatchShard is one full shard session with the client runtime's retry
// and failover policy. The attempt function replays the shard buffer from
// the start; on the first attempt the buffer is still filling, so the
// replay degenerates into streaming through — pipelined with the client
// upload.
func (a *Aggregator) dispatchShard(ctx context.Context, idx int, s Shard, backends []string, clientHello *wire.Hello, pk homomorphic.PublicKey, buf *shardBuffer, tr *trace.Trace, hedge bool) ([]homomorphic.Ciphertext, string, error) {
	width := pk.CiphertextSize()
	ncols := clientHello.EffectiveColumns().Count()
	var partials []homomorphic.Ciphertext
	dispatchStart := time.Now()
	var uploadDur, replyDur time.Duration
	addr, st, err := a.client.DoStats(ctx, backends, func(sess *Session) error {
		attemptStart := time.Now()
		hello := wire.Hello{
			Version:   wire.Version,
			Scheme:    clientHello.Scheme,
			PublicKey: clientHello.PublicKey,
			VectorLen: uint64(s.Rows()),
			ChunkLen:  clientHello.ChunkLen,
			RowOffset: uint64(s.Lo),
			TraceID:   clientHello.TraceID,
			Columns:   clientHello.Columns,
		}
		if sess.Conn.CRCEnabled() {
			// Ask the backend to trail its partial sum with a CRC too:
			// without this the reply direction is unprotected and a
			// flipped ciphertext byte would silently poison the total.
			hello.Flags |= wire.HelloFlagFrameCRC
		}
		if err := sess.Conn.Send(wire.MsgHello, hello.Encode()); err != nil {
			return err
		}

		// Watch for an early backend reply (busy rejection, protocol
		// error) concurrently with the forwarding, mirroring the
		// 100-continue pattern of selectedsum.QueryVector.
		type response struct {
			f   wire.Frame
			err error
		}
		respc := make(chan response, 1)
		go func() {
			f, err := sess.Conn.Recv()
			respc <- response{f, err}
		}()
		early := func() error {
			select {
			case r := <-respc:
				switch {
				case r.err != nil:
					return fmt.Errorf("cluster: reading early backend reply: %w", r.err)
				case r.f.Type == wire.MsgError:
					return wire.DecodeError(r.f.Payload)
				case sess.Conn.CRCEnabled() && !r.f.CRC:
					// A plain frame of impossible type in a CRC session
					// is a corrupted header: retryable, not protocol.
					return fmt.Errorf("cluster: plain frame type %#x in a CRC session: %w", byte(r.f.Type), wire.ErrFrameCorrupt)
				default:
					return fmt.Errorf("cluster: unexpected backend message %#x mid-upload", byte(r.f.Type))
				}
			default:
				return nil
			}
		}

		for i := 0; ; i++ {
			c, ok, err := buf.next(i)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if err := early(); err != nil {
				return err
			}
			chunk := wire.IndexChunk{Offset: c.offset, Ciphertexts: c.body, Width: width}
			if err := sess.Conn.Send(wire.MsgIndexChunk, chunk.Encode()); err != nil {
				return err
			}
		}
		if err := sess.Conn.Send(wire.MsgDone, nil); err != nil {
			return err
		}
		uploadDur = time.Since(attemptStart)
		// One partial per requested column, first frame via the watcher,
		// the rest read inline — they arrive strictly after it.
		got := make([]homomorphic.Ciphertext, 0, ncols)
		for i := 0; i < ncols; i++ {
			var r response
			if i == 0 {
				r = <-respc
			} else {
				r.f, r.err = sess.Conn.Recv()
			}
			if r.err != nil {
				return fmt.Errorf("cluster: reading partial sum %d/%d: %w", i+1, ncols, r.err)
			}
			switch r.f.Type {
			case wire.MsgSum:
				if sess.Conn.CRCEnabled() && !r.f.CRC {
					return fmt.Errorf("cluster: plain frame type %#x in a CRC session: %w", byte(r.f.Type), wire.ErrFrameCorrupt)
				}
				ct, err := pk.ParseCiphertext(r.f.Payload)
				if err != nil {
					return fmt.Errorf("cluster: parsing partial sum: %w", err)
				}
				got = append(got, ct)
			case wire.MsgError:
				return wire.DecodeError(r.f.Payload)
			default:
				if sess.Conn.CRCEnabled() && !r.f.CRC {
					return fmt.Errorf("cluster: plain frame type %#x in a CRC session: %w", byte(r.f.Type), wire.ErrFrameCorrupt)
				}
				return fmt.Errorf("cluster: expected partial sum, got message type %#x", byte(r.f.Type))
			}
		}
		replyDur = time.Since(attemptStart) - uploadDur
		partials = got
		return nil
	})

	// One span per dispatch (a hedged shard gets two), annotated with the
	// retry/failover story. The durations come from the LAST attempt, the
	// one whose outcome this span reports. Shard spans run concurrently, so
	// they deliberately do NOT participate in the phase-sum invariant.
	attrs := map[string]string{
		"shard":    strconv.Itoa(idx),
		"attempts": strconv.Itoa(st.Attempts),
	}
	if addr != "" {
		attrs["backend"] = addr
	}
	if st.Retries > 0 {
		attrs["retries"] = strconv.Itoa(st.Retries)
	}
	if st.Failovers > 0 {
		attrs["failovers"] = strconv.Itoa(st.Failovers)
	}
	if hedge {
		attrs["hedge"] = "true"
	}
	if uploadDur > 0 {
		attrs["upload_ns"] = strconv.FormatInt(int64(uploadDur), 10)
	}
	if replyDur > 0 {
		attrs["reply_ns"] = strconv.FormatInt(int64(replyDur), 10)
	}
	if err != nil {
		attrs["error"] = err.Error()
	}
	tr.Observe("shard"+strconv.Itoa(idx), dispatchStart, time.Since(dispatchStart), attrs)

	if err != nil {
		return nil, "", err
	}
	return partials, addr, nil
}
