package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// fakeClock drives the client's health windows without real sleeps.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time                { return f.t }
func (f *fakeClock) advance(d time.Duration)       { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock                     { return &fakeClock{t: time.Unix(1000, 0)} }
func noSleep(context.Context, time.Duration) error { return nil }

func TestBackoffBounds(t *testing.T) {
	c := NewClient(ClientConfig{Backoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond})
	for k := 1; k <= 6; k++ {
		base := 100 * time.Millisecond << (k - 1)
		if base > 400*time.Millisecond {
			base = 400 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(k)
			if d < base/2 || d >= base+base/2 {
				t.Fatalf("backoff(%d) = %v outside [%v, %v)", k, d, base/2, base+base/2)
			}
		}
	}
}

func TestBackoffZeroConfigDoesNotPanic(t *testing.T) {
	// A Client built without withDefaults (zero Backoff/MaxBackoff) must not
	// reach rand.Int63n(0), which panics.
	c := &Client{cfg: ClientConfig{}}
	for k := 1; k <= 3; k++ {
		if d := c.backoff(k); d != 0 {
			t.Fatalf("backoff(%d) with zero config = %v, want 0", k, d)
		}
	}
	// Negative values (misconfiguration) are clamped the same way.
	c = &Client{cfg: ClientConfig{Backoff: -time.Second, MaxBackoff: time.Second}}
	if d := c.backoff(1); d != 0 {
		t.Fatalf("backoff(1) with negative base = %v, want 0", d)
	}
}

func TestHealthWindowAndProbe(t *testing.T) {
	clk := newFakeClock()
	c := NewClient(ClientConfig{ProbeAfter: time.Second})
	c.now = clk.now

	const addr = "db1:7001"
	if !c.available(addr) {
		t.Fatal("fresh backend not available")
	}
	c.noteFailure(addr)
	if c.available(addr) {
		t.Fatal("backend available immediately after failure")
	}
	clk.advance(1100 * time.Millisecond)
	if !c.available(addr) {
		t.Fatal("backend not offered as probe after window")
	}
	// A failing probe doubles the penalty: 2s now.
	c.noteFailure(addr)
	clk.advance(1100 * time.Millisecond)
	if c.available(addr) {
		t.Fatal("penalty did not double after failed probe")
	}
	clk.advance(1 * time.Second)
	if !c.available(addr) {
		t.Fatal("backend not probed after doubled window")
	}
	// Success closes the circuit entirely.
	c.noteSuccess(addr)
	if !c.available(addr) {
		t.Fatal("backend not available after success")
	}
}

func TestHealthPenaltyCapped(t *testing.T) {
	clk := newFakeClock()
	c := NewClient(ClientConfig{ProbeAfter: time.Second})
	c.now = clk.now
	const addr = "db1:7001"
	for i := 0; i < 30; i++ {
		c.noteFailure(addr)
	}
	// Penalty is capped at 16× ProbeAfter: after 17s the probe must come.
	clk.advance(17 * time.Second)
	if !c.available(addr) {
		t.Fatal("penalty exceeded the 16x cap")
	}
}

func TestPickPrefersPrimary(t *testing.T) {
	clk := newFakeClock()
	c := NewClient(ClientConfig{ProbeAfter: time.Second})
	c.now = clk.now
	backends := []string{"primary:1", "replica:1", "replica:2"}

	if got := c.pick(backends); got != "primary:1" {
		t.Fatalf("pick = %q, want primary", got)
	}
	c.noteFailure("primary:1")
	if got := c.pick(backends); got != "replica:1" {
		t.Fatalf("pick with primary down = %q, want first replica", got)
	}
	c.noteFailure("replica:1")
	if got := c.pick(backends); got != "replica:2" {
		t.Fatalf("pick = %q, want second replica", got)
	}
	// All down: the candidate whose window expires soonest gets the probe.
	c.noteFailure("replica:2")
	c.noteFailure("replica:2") // replica:2 now has the longest window
	got := c.pick(backends)
	if got != "primary:1" && got != "replica:1" {
		t.Fatalf("pick with all down = %q, want a soonest-expiring candidate", got)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("server busy: admission limit reached"), true},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{io.ErrClosedPipe, true},
		{&net.OpError{Op: "read", Err: errors.New("connection reset by peer")}, true},
		{fmt.Errorf("wrapped: %w", io.EOF), true},
		{errors.New("vector length mismatch"), false},
		{errors.New("unknown scheme"), false},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestDoFailsFastOnProtocolError: a deterministic rejection must not burn
// retries or mark replicas down.
func TestDoFailsFastOnProtocolError(t *testing.T) {
	c := NewClient(ClientConfig{Retries: 5, Backoff: time.Millisecond})
	c.sleep = noSleep
	// Point at a listener that accepts, so dial succeeds and fn runs.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) { io.Copy(io.Discard, conn); conn.Close() }(conn)
		}
	}()

	calls := 0
	_, err = c.Do(context.Background(), []string{ln.Addr().String()}, func(s *Session) error {
		calls++
		return errors.New("protocol: bad vector length")
	})
	if err == nil {
		t.Fatal("protocol error swallowed")
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (fail fast)", calls)
	}
}

// TestDoRetriesAndCounts: retryable failures consume attempts, bump the
// retry counter when the same backend is re-picked, and surface the last
// error after exhaustion.
func TestDoRetriesAndCounts(t *testing.T) {
	c := NewClient(ClientConfig{Retries: 2, Backoff: time.Millisecond, ProbeAfter: time.Nanosecond})
	c.sleep = noSleep
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) { io.Copy(io.Discard, conn); conn.Close() }(conn)
		}
	}()

	calls := 0
	_, err = c.Do(context.Background(), []string{ln.Addr().String()}, func(s *Session) error {
		calls++
		return io.EOF
	})
	if err == nil {
		t.Fatal("exhausted attempts reported success")
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3 (1 + 2 retries)", calls)
	}
	s := c.Metrics().Snapshot()
	if s.Retries != 2 {
		t.Errorf("retries counter = %d, want 2", s.Retries)
	}
	if s.ShardFailures != 1 {
		t.Errorf("shard failures = %d, want 1", s.ShardFailures)
	}
}

// TestDoFailsOverToReplica: a dead primary (nothing listening) falls over
// to the live replica within the attempt budget.
func TestDoFailsOverToReplica(t *testing.T) {
	c := NewClient(ClientConfig{Retries: 2, Backoff: time.Millisecond, DialTimeout: 200 * time.Millisecond})
	c.sleep = noSleep
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close() // nothing listening: connect refused

	live, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	go func() {
		for {
			conn, err := live.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) { io.Copy(io.Discard, conn); conn.Close() }(conn)
		}
	}()

	served, err := c.Do(context.Background(), []string{dead, live.Addr().String()}, func(s *Session) error {
		return nil
	})
	if err != nil {
		t.Fatalf("failover did not recover: %v", err)
	}
	if served != live.Addr().String() {
		t.Fatalf("served by %q, want the live replica", served)
	}
	if fo := c.Metrics().Snapshot().Failovers; fo < 1 {
		t.Errorf("failovers = %d, want >= 1", fo)
	}
}

func TestDoNoBackends(t *testing.T) {
	c := NewClient(ClientConfig{})
	if _, err := c.Do(context.Background(), nil, func(*Session) error { return nil }); err == nil {
		t.Fatal("empty backend list accepted")
	}
}

func TestSlotCapBlocksAndReleases(t *testing.T) {
	c := NewClient(ClientConfig{MaxConnsPerBackend: 1})
	rel1, err := c.slot(context.Background(), "db:1")
	if err != nil {
		t.Fatal(err)
	}
	// Second slot must block until the first releases: prove it via a
	// short-deadline context.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.slot(ctx, "db:1"); err == nil {
		t.Fatal("slot cap not enforced")
	}
	rel1()
	rel2, err := c.slot(context.Background(), "db:1")
	if err != nil {
		t.Fatalf("slot not released: %v", err)
	}
	rel2()
}

func TestIsBusy(t *testing.T) {
	if !IsBusy(errors.New("server busy, try again")) {
		t.Error("busy not recognized")
	}
	if IsBusy(errors.New("vector length mismatch")) || IsBusy(nil) {
		t.Error("false positive")
	}
}
