package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// Epochs is a versioned shard-map register: the aggregator pins each query
// to the map current at its hello and serves the whole session under it,
// while a rebalance installs successor maps with Advance. Pinning is what
// makes live resharding safe — a query never sees half an old map and half
// a new one, so its shard partials always tile the row space exactly once
// and the combined sum is exact under either epoch.
type Epochs struct {
	mu    sync.RWMutex
	epoch uint64
	m     *ShardMap
}

// NewEpochs starts the register at epoch 1 with the given map.
func NewEpochs(m *ShardMap) (*Epochs, error) {
	if m == nil {
		return nil, errors.New("cluster: nil shard map")
	}
	return &Epochs{epoch: 1, m: m}, nil
}

// Current returns the live epoch and its map. The map is immutable; callers
// may hold it for a whole session.
func (e *Epochs) Current() (uint64, *ShardMap) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epoch, e.m
}

// Advance installs m as the next epoch and returns its number. The new map
// must tile the same row count: resharding moves rows between backends, it
// never grows or shrinks the logical database mid-flight (ingest changes
// length on the storage layer, below this register). Sessions already
// pinned to the old epoch keep using it untouched.
func (e *Epochs) Advance(m *ShardMap) (uint64, error) {
	if m == nil {
		return 0, errors.New("cluster: nil shard map")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if m.Rows() != e.m.Rows() {
		return 0, fmt.Errorf("cluster: epoch %d serves %d rows, successor map serves %d",
			e.epoch, e.m.Rows(), m.Rows())
	}
	e.epoch++
	e.m = m
	return e.epoch, nil
}
