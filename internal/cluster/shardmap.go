// Package cluster is the horizontal deployment of the private selected-sum
// protocol: a shard map assigns contiguous row ranges of one logical
// database to backend groups (each a stock internal/server runtime), an
// untrusted aggregator fans a client's encrypted index vector out to the
// shards and homomorphically combines the partial sums, and a production
// client runtime gives every backend hop pooling, timeouts, bounded retry,
// and replica failover.
//
// The trust argument (DESIGN.md §9): the aggregator only ever handles
// ciphertexts under the client's key — it cannot learn the selection, the
// per-shard partials, or the total. Backends see exactly the slice of the
// encrypted index vector covering their own rows, which is precisely what
// they would see as standalone servers of a smaller database. The client
// receives a single rerandomized ciphertext and cannot tell how many
// shards (or which) served it. This is the paper's "multiple distributed
// databases" extension (§2) made operational.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Shard is one contiguous row range [Lo, Hi) of the logical database and
// the backends that can serve it: Backends[0] is the primary, the rest are
// replicas holding the same rows.
type Shard struct {
	Lo, Hi   int
	Backends []string
}

// Rows returns the shard's row count.
func (s Shard) Rows() int { return s.Hi - s.Lo }

// ShardMap is a validated, ordered, gap-free cover of [0, Rows()) by
// shards. It is immutable after construction and safe for concurrent use.
type ShardMap struct {
	shards []Shard
	rows   int
}

// NewShardMap validates and freezes a shard list: shards must be given in
// row order, start at row 0, tile the space without gaps or overlaps, be
// non-empty, and each name at least one backend.
func NewShardMap(shards []Shard) (*ShardMap, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: empty shard map")
	}
	next := 0
	out := make([]Shard, len(shards))
	for i, s := range shards {
		if s.Lo != next {
			return nil, fmt.Errorf("cluster: shard %d starts at row %d, want %d (shards must tile [0,n) in order)", i, s.Lo, next)
		}
		if s.Hi <= s.Lo {
			return nil, fmt.Errorf("cluster: shard %d has empty range [%d,%d)", i, s.Lo, s.Hi)
		}
		if len(s.Backends) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no backends", i)
		}
		for _, b := range s.Backends {
			if strings.TrimSpace(b) == "" {
				return nil, fmt.Errorf("cluster: shard %d has an empty backend address", i)
			}
		}
		out[i] = Shard{Lo: s.Lo, Hi: s.Hi, Backends: append([]string(nil), s.Backends...)}
		next = s.Hi
	}
	return &ShardMap{shards: out, rows: next}, nil
}

// UniformShardMap splits n rows as evenly as possible over the given
// backend groups, in order (the first groups get the remainder rows).
func UniformShardMap(n int, groups [][]string) (*ShardMap, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: non-positive row count %d", n)
	}
	k := len(groups)
	if k == 0 {
		return nil, errors.New("cluster: no backend groups")
	}
	if k > n {
		return nil, fmt.Errorf("cluster: %d shards for %d rows", k, n)
	}
	shards := make([]Shard, k)
	lo := 0
	for i, g := range groups {
		rows := n / k
		if i < n%k {
			rows++
		}
		shards[i] = Shard{Lo: lo, Hi: lo + rows, Backends: g}
		lo += rows
	}
	return NewShardMap(shards)
}

// ParseShardMap parses the sumproxy -shards syntax: semicolon-separated
// shard specs, each "lo-hi=primary[|replica...]" with hi exclusive, e.g.
//
//	0-5000=db1:7001|db1b:7001;5000-10000=db2:7001
func ParseShardMap(spec string) (*ShardMap, error) {
	var shards []Shard
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rangeSpec, backendSpec, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: shard %q: want lo-hi=backend[|backend...]", part)
		}
		loStr, hiStr, ok := strings.Cut(rangeSpec, "-")
		if !ok {
			return nil, fmt.Errorf("cluster: shard range %q: want lo-hi", rangeSpec)
		}
		lo, err := strconv.Atoi(strings.TrimSpace(loStr))
		if err != nil {
			return nil, fmt.Errorf("cluster: shard range %q: %w", rangeSpec, err)
		}
		hi, err := strconv.Atoi(strings.TrimSpace(hiStr))
		if err != nil {
			return nil, fmt.Errorf("cluster: shard range %q: %w", rangeSpec, err)
		}
		var backends []string
		for _, b := range strings.Split(backendSpec, "|") {
			b = strings.TrimSpace(b)
			if b != "" {
				backends = append(backends, b)
			}
		}
		shards = append(shards, Shard{Lo: lo, Hi: hi, Backends: backends})
	}
	return NewShardMap(shards)
}

// Rows returns the logical database size the map covers.
func (m *ShardMap) Rows() int { return m.rows }

// Shards returns the ordered shard list (callers must not mutate it).
func (m *ShardMap) Shards() []Shard { return m.shards }

// Len returns the shard count.
func (m *ShardMap) Len() int { return len(m.shards) }

// String renders the map in the -shards syntax.
func (m *ShardMap) String() string {
	parts := make([]string, len(m.shards))
	for i, s := range m.shards {
		parts[i] = fmt.Sprintf("%d-%d=%s", s.Lo, s.Hi, strings.Join(s.Backends, "|"))
	}
	return strings.Join(parts, ";")
}
