package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"privstats/internal/metrics"
)

// Target is one shard of a desired post-reshard map. Backends may be left
// empty, in which case the rebalancer provisions the shard: copies its row
// range onto fresh storage, starts (or adopts) backends there, and learns
// their addresses from the Provision hook.
type Target struct {
	// Lo and Hi bound the shard's global row range [Lo, Hi).
	Lo, Hi int
	// Backends are the serving addresses, primary first. Empty means
	// "provision this range".
	Backends []string
}

// RebalancerConfig wires a Rebalancer. Provision is required; the rest is
// optional.
type RebalancerConfig struct {
	// Epochs is the register shared with the serving aggregator.
	Epochs *Epochs
	// Provision materialises rows [lo, hi) on new storage and returns the
	// backend addresses now serving that range. The hook owns the actual
	// data movement (e.g. colstore.ExtractShard block copy + CRC verify)
	// and the backend lifecycle; keeping it out of this package keeps the
	// cluster layer storage-agnostic.
	Provision func(ctx context.Context, lo, hi int) ([]string, error)
	// Retire, when non-nil, is called once per old shard that is no longer
	// part of the advanced map (after the drain grace), so its backends can
	// be decommissioned and their storage released.
	Retire func(old Shard)
	// DrainGrace is how long to wait between advancing the epoch and
	// retiring old shards: sessions pinned to the previous epoch are still
	// folding on the old backends. Zero retires immediately (tests).
	DrainGrace time.Duration
	// Metrics, when non-nil, has Reshards incremented per completed
	// cut-over.
	Metrics *metrics.ClusterMetrics
	// Logf, when non-nil, narrates the phases.
	Logf func(format string, args ...any)
}

// Rebalancer drives a live reshard through its state machine:
//
//	planning → copying → cutover → draining → retiring → done
//
// Copying provisions every target range that needs new backends (block
// copy + verify happen inside the Provision hook); cutover atomically
// advances the shared epoch register so new sessions use the new map while
// pinned sessions finish under the old one; draining waits out those
// sessions; retiring releases the replaced shards. A failure before
// cutover leaves the cluster exactly on the old epoch with the old
// backends untouched — the new copies are garbage to be collected, never
// a half-installed map.
type Rebalancer struct {
	cfg RebalancerConfig

	mu     sync.Mutex
	status RebalanceStatus
	busy   bool
}

// RebalanceStatus is a snapshot of the state machine for logs and tests.
type RebalanceStatus struct {
	// Phase is one of idle, planning, copying, cutover, draining,
	// retiring, done, failed.
	Phase string
	// Provisioned and ToProvision count target ranges through the copying
	// phase.
	Provisioned, ToProvision int
	// Epoch is the epoch installed by the last successful cut-over.
	Epoch uint64
}

// NewRebalancer validates the wiring.
func NewRebalancer(cfg RebalancerConfig) (*Rebalancer, error) {
	if cfg.Epochs == nil {
		return nil, errors.New("cluster: rebalancer needs an epoch register")
	}
	if cfg.Provision == nil {
		return nil, errors.New("cluster: rebalancer needs a Provision hook")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Rebalancer{cfg: cfg, status: RebalanceStatus{Phase: "idle"}}, nil
}

// Status returns the current state-machine snapshot.
func (r *Rebalancer) Status() RebalanceStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

func (r *Rebalancer) setPhase(phase string, mut func(*RebalanceStatus)) {
	r.mu.Lock()
	r.status.Phase = phase
	if mut != nil {
		mut(&r.status)
	}
	r.mu.Unlock()
	r.cfg.Logf("rebalance: %s", phase)
}

// Reshard drives one reshard to the target layout and returns the new
// epoch and its map. Only one reshard may run at a time.
func (r *Rebalancer) Reshard(ctx context.Context, targets []Target) (uint64, *ShardMap, error) {
	r.mu.Lock()
	if r.busy {
		r.mu.Unlock()
		return 0, nil, errors.New("cluster: reshard already in progress")
	}
	r.busy = true
	r.status = RebalanceStatus{Phase: "planning"}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.busy = false
		r.mu.Unlock()
	}()

	epoch, nm, err := r.reshard(ctx, targets)
	if err != nil {
		r.setPhase("failed", nil)
		return 0, nil, err
	}
	r.setPhase("done", nil)
	return epoch, nm, nil
}

func (r *Rebalancer) reshard(ctx context.Context, targets []Target) (uint64, *ShardMap, error) {
	oldEpoch, oldMap := r.cfg.Epochs.Current()
	toProvision := 0
	for _, t := range targets {
		if len(t.Backends) == 0 {
			toProvision++
		}
	}
	r.setPhase("copying", func(s *RebalanceStatus) { s.ToProvision = toProvision })

	// Copy phase: provision every backend-less target. Sequential and
	// resumable-by-retry — the Provision hook is expected to redo a range
	// from scratch (ExtractShard clears stale copies), so a crash or error
	// here never taints the serving epoch.
	shards := make([]Shard, len(targets))
	for i, t := range targets {
		backends := t.Backends
		if len(backends) == 0 {
			if err := ctx.Err(); err != nil {
				return 0, nil, err
			}
			r.cfg.Logf("rebalance: provisioning rows [%d,%d)", t.Lo, t.Hi)
			var err error
			backends, err = r.cfg.Provision(ctx, t.Lo, t.Hi)
			if err != nil {
				return 0, nil, fmt.Errorf("cluster: provisioning rows [%d,%d): %w", t.Lo, t.Hi, err)
			}
			if len(backends) == 0 {
				return 0, nil, fmt.Errorf("cluster: provisioning rows [%d,%d): no backends", t.Lo, t.Hi)
			}
			r.mu.Lock()
			r.status.Provisioned++
			r.mu.Unlock()
		}
		shards[i] = Shard{Lo: t.Lo, Hi: t.Hi, Backends: backends}
	}

	// The map constructor re-validates the tiling (gap-free, in-order,
	// non-overlapping) and Advance re-validates the row count against the
	// serving epoch — a bad target layout dies here, before cut-over.
	nm, err := NewShardMap(shards)
	if err != nil {
		return 0, nil, err
	}
	r.setPhase("cutover", nil)
	epoch, err := r.cfg.Epochs.Advance(nm)
	if err != nil {
		return 0, nil, err
	}
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.Reshards.Inc()
	}
	r.mu.Lock()
	r.status.Epoch = epoch
	r.mu.Unlock()
	r.cfg.Logf("rebalance: epoch %d -> %d (%d shards)", oldEpoch, epoch, nm.Len())

	// Drain: sessions pinned to the old epoch are still mid-fold against
	// the old backends; give them their grace before anything is retired.
	// Retirement proceeds even if ctx was cancelled mid-grace — stopping
	// here would leak the old backends forever.
	if r.cfg.DrainGrace > 0 {
		r.setPhase("draining", nil)
		t := time.NewTimer(r.cfg.DrainGrace)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}

	// Retire every old shard not carried verbatim into the new map.
	if r.cfg.Retire != nil {
		r.setPhase("retiring", nil)
		for _, old := range oldMap.Shards() {
			if !containsShard(nm, old) {
				r.cfg.Logf("rebalance: retiring shard [%d,%d)", old.Lo, old.Hi)
				r.cfg.Retire(old)
			}
		}
	}
	return epoch, nm, nil
}

// containsShard reports whether m carries s verbatim: same range, same
// backends in the same order.
func containsShard(m *ShardMap, s Shard) bool {
	for _, t := range m.Shards() {
		if t.Lo != s.Lo || t.Hi != s.Hi || len(t.Backends) != len(s.Backends) {
			continue
		}
		same := true
		for i := range t.Backends {
			if t.Backends[i] != s.Backends[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
