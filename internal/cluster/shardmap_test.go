package cluster

import (
	"strings"
	"testing"
)

func TestNewShardMapValid(t *testing.T) {
	m, err := NewShardMap([]Shard{
		{Lo: 0, Hi: 5, Backends: []string{"a:1", "a:2"}},
		{Lo: 5, Hi: 9, Backends: []string{"b:1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 9 || m.Len() != 2 {
		t.Fatalf("rows=%d len=%d", m.Rows(), m.Len())
	}
	if got := m.Shards()[0].Rows(); got != 5 {
		t.Errorf("shard 0 rows = %d", got)
	}
}

func TestNewShardMapRejects(t *testing.T) {
	cases := []struct {
		name   string
		shards []Shard
	}{
		{"empty", nil},
		{"not starting at zero", []Shard{{Lo: 1, Hi: 5, Backends: []string{"a"}}}},
		{"gap", []Shard{
			{Lo: 0, Hi: 3, Backends: []string{"a"}},
			{Lo: 4, Hi: 8, Backends: []string{"b"}},
		}},
		{"overlap", []Shard{
			{Lo: 0, Hi: 5, Backends: []string{"a"}},
			{Lo: 4, Hi: 8, Backends: []string{"b"}},
		}},
		{"empty range", []Shard{{Lo: 0, Hi: 0, Backends: []string{"a"}}}},
		{"inverted range", []Shard{{Lo: 0, Hi: -2, Backends: []string{"a"}}}},
		{"no backends", []Shard{{Lo: 0, Hi: 5}}},
		{"blank backend", []Shard{{Lo: 0, Hi: 5, Backends: []string{"  "}}}},
	}
	for _, tc := range cases {
		if _, err := NewShardMap(tc.shards); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestNewShardMapCopiesInput(t *testing.T) {
	backends := []string{"a:1"}
	shards := []Shard{{Lo: 0, Hi: 3, Backends: backends}}
	m, err := NewShardMap(shards)
	if err != nil {
		t.Fatal(err)
	}
	backends[0] = "mutated"
	if m.Shards()[0].Backends[0] != "a:1" {
		t.Error("shard map aliases caller's backend slice")
	}
}

func TestUniformShardMap(t *testing.T) {
	m, err := UniformShardMap(10, [][]string{{"a"}, {"b"}, {"c"}})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, m.Len())
	for i, s := range m.Shards() {
		got[i] = s.Rows()
	}
	// Remainder rows go to the first groups: 4, 3, 3.
	if got[0] != 4 || got[1] != 3 || got[2] != 3 {
		t.Errorf("rows per shard = %v, want [4 3 3]", got)
	}
	if m.Rows() != 10 {
		t.Errorf("rows = %d", m.Rows())
	}
}

func TestUniformShardMapErrors(t *testing.T) {
	if _, err := UniformShardMap(0, [][]string{{"a"}}); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := UniformShardMap(10, nil); err == nil {
		t.Error("no groups accepted")
	}
	if _, err := UniformShardMap(2, [][]string{{"a"}, {"b"}, {"c"}}); err == nil {
		t.Error("more shards than rows accepted")
	}
}

func TestParseShardMapRoundTrip(t *testing.T) {
	spec := "0-5000=db1:7001|db1b:7001;5000-10000=db2:7001"
	m, err := ParseShardMap(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != spec {
		t.Errorf("round trip: %q != %q", m.String(), spec)
	}
	if m.Rows() != 10000 || m.Len() != 2 {
		t.Errorf("rows=%d len=%d", m.Rows(), m.Len())
	}
	if got := m.Shards()[0].Backends; len(got) != 2 || got[0] != "db1:7001" {
		t.Errorf("shard 0 backends = %v", got)
	}
}

func TestParseShardMapWhitespaceAndEmptySegments(t *testing.T) {
	m, err := ParseShardMap(" 0-3 = a:1 | b:1 ; ; 3-6 = c:1 ")
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 6 || m.Len() != 2 {
		t.Errorf("rows=%d len=%d", m.Rows(), m.Len())
	}
}

func TestParseShardMapErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"0-5000",          // missing backends
		"x-10=a:1",        // bad lo
		"0-y=a:1",         // bad hi
		"0:10=a:1",        // wrong range separator
		"0-10=",           // blank backend list
		"5-10=a:1",        // does not start at 0
		"0-5=a:1;6-9=b:1", // gap
	} {
		if _, err := ParseShardMap(spec); err == nil {
			t.Errorf("ParseShardMap(%q) accepted", spec)
		}
	}
}

func TestShardMapStringUsable(t *testing.T) {
	m, err := UniformShardMap(7, [][]string{{"a:1"}, {"b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	if !strings.Contains(s, "0-4=a:1") || !strings.Contains(s, "4-7=b:1") {
		t.Errorf("String() = %q", s)
	}
	back, err := ParseShardMap(s)
	if err != nil {
		t.Fatalf("String() not reparseable: %v", err)
	}
	if back.Rows() != 7 {
		t.Errorf("reparsed rows = %d", back.Rows())
	}
}
