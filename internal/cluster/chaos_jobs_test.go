// Job-level chaos: the stats-job gateway's all-or-nothing contract under
// injected backend faults. Lives in package cluster_test (not cluster)
// because it imports internal/jobs, which itself imports cluster.
package cluster_test

import (
	"context"
	"crypto/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/database"
	"privstats/internal/faultnet"
	"privstats/internal/homomorphic"
	"privstats/internal/jobs"
	"privstats/internal/paillier"
	"privstats/internal/server"
	"privstats/internal/testutil"
)

var (
	cjOnce sync.Once
	cjKey  *paillier.PrivateKey
	cjErr  error
)

func chaosJobKey(t testing.TB) homomorphic.PrivateKey {
	t.Helper()
	cjOnce.Do(func() { cjKey, cjErr = paillier.KeyGen(rand.Reader, 256) })
	if cjErr != nil {
		t.Fatalf("KeyGen: %v", cjErr)
	}
	return paillier.SchemeKey{SK: cjKey}
}

func chaosJobServe(t *testing.T, srv *server.Server, ln net.Listener) {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		select {
		case <-errc:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
}

// startChaosJobCluster shards table over k backends, each behind
// planFor(shard), with an aggregator in front, and returns the proxy
// address.
func startChaosJobCluster(t *testing.T, table *database.Table, k int, planFor func(shard int) faultnet.Plan) string {
	t.Helper()
	nop := func(string, ...any) {}
	ranges := make([]cluster.Shard, k)
	lo := 0
	for i := 0; i < k; i++ {
		rows := table.Len() / k
		if i < table.Len()%k {
			rows++
		}
		ranges[i] = cluster.Shard{Lo: lo, Hi: lo + rows}
		lo += rows
	}
	for i := range ranges {
		shardTable, err := table.Shard(ranges[i].Lo, ranges[i].Hi)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(shardTable, server.Config{Logf: nop, IdleTimeout: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		chaosJobServe(t, srv, faultnet.Listen(ln, planFor(i)))
		ranges[i].Backends = []string{ln.Addr().String()}
	}
	sm, err := cluster.NewShardMap(ranges)
	if err != nil {
		t.Fatal(err)
	}
	fanout := cluster.NewClient(cluster.ClientConfig{
		Retries:    3,
		Backoff:    2 * time.Millisecond,
		IOTimeout:  300 * time.Millisecond,
		ProbeAfter: 10 * time.Millisecond,
	})
	agg, err := cluster.NewAggregatorWithConfig(sm, fanout, cluster.AggregatorConfig{ShardTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewHandler(agg, server.Config{Logf: nop})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chaosJobServe(t, srv, ln)
	return ln.Addr().String()
}

func chaosJobGateway(t *testing.T, addr string, rows int) *jobs.Gateway {
	t.Helper()
	g, err := jobs.NewGateway(jobs.GatewayConfig{
		Schema: jobs.Schema{Rows: rows, Columns: []string{"value"}},
		Exec: &jobs.Executor{
			Client:    cluster.NewClient(cluster.ClientConfig{Retries: 2, Backoff: 5 * time.Millisecond, ProbeAfter: 10 * time.Millisecond}),
			Backends:  []string{addr},
			Key:       chaosJobKey(t),
			ChunkSize: 4, // many uplink frames per session, so armed faults fire mid-job
		},
		Tenants: []jobs.Tenant{{Name: "acme", Weight: 1, Rate: 1000, Burst: 1000, MaxQueued: 64}},
		Slots:   2,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func chaosWaitJob(t *testing.T, g *jobs.Gateway, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		job, ok := g.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if job.State == jobs.StateDone || job.State == jobs.StateFailed {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, job.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosJobShardKill: every connection to shard 1 is reset at a random
// early operation — the shard dies mid-job on every attempt, including
// retries. The job must fail with the classified shard-unavailable verdict
// and carry NO result: a dead shard can never surface as a partial sum.
func TestChaosJobShardKill(t *testing.T) {
	testutil.GuardGoroutines(t)
	const n = 32
	table, err := database.Generate(n, database.DistUniform, 515151)
	if err != nil {
		t.Fatal(err)
	}
	addr := startChaosJobCluster(t, table, 2, func(shard int) faultnet.Plan {
		if shard != 1 {
			return faultnet.Plan{Seed: 1}
		}
		return faultnet.Plan{
			Seed:  61,
			Read:  faultnet.Spec{Reset: 1},
			Write: faultnet.Spec{Reset: 1},
		}
	})
	g := chaosJobGateway(t, addr, n)

	job, err := g.Submit("acme", &jobs.JobSpec{Op: jobs.OpVariance, Selection: jobs.SelectionSpec{All: true}})
	if err != nil {
		t.Fatal(err)
	}
	job = chaosWaitJob(t, g, job.ID)
	if job.State != jobs.StateFailed {
		t.Fatalf("job over a dead shard finished %s: %+v", job.State, job.Result)
	}
	if job.Result != nil {
		t.Fatalf("failed job carries a result (partial escape): %+v", job.Result)
	}
	if !strings.Contains(job.Error, "shard-unavailable") && !strings.Contains(job.Error, "shard unavailable") {
		t.Fatalf("job error %q is not the classified shard-unavailable verdict", job.Error)
	}
	if f := g.Metrics().Tenant("acme").Failed.Value(); f != 1 {
		t.Fatalf("failed counter %d, want 1", f)
	}
}

// TestChaosJobRetriedResets: 5% of backend connections (each direction)
// take a seeded reset. With the fan-out and gateway retry budgets, jobs
// must resolve to the exact plaintext oracle or a classified failure —
// never a wrong statistic.
func TestChaosJobRetriedResets(t *testing.T) {
	testutil.GuardGoroutines(t)
	const n = 32
	table, err := database.Generate(n, database.DistUniform, 626262)
	if err != nil {
		t.Fatal(err)
	}
	addr := startChaosJobCluster(t, table, 2, func(shard int) faultnet.Plan {
		return faultnet.Plan{
			Seed:  int64(8800 + shard),
			Read:  faultnet.Spec{Reset: 0.05},
			Write: faultnet.Spec{Reset: 0.05},
		}
	})
	g := chaosJobGateway(t, addr, n)

	selSpec := jobs.SelectionSpec{Ranges: [][2]int{{5, 27}}}
	sel, err := (&selSpec).Build(n)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := table.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}

	done, failed := 0, 0
	for i := 0; i < 10; i++ {
		job, err := g.Submit("acme", &jobs.JobSpec{Op: jobs.OpSum, Selection: selSpec})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		job = chaosWaitJob(t, g, job.ID)
		if job.State == jobs.StateFailed {
			// A failed job must carry a classified code, and no result.
			if job.Result != nil {
				t.Fatalf("failed job %d carries a result: %+v", i, job.Result)
			}
			if !strings.Contains(job.Error, "[") {
				t.Fatalf("job %d failure %q is unclassified", i, job.Error)
			}
			t.Logf("job %d: classified failure: %s", i, job.Error)
			failed++
			continue
		}
		if job.Result.Sum != oracle.String() {
			t.Fatalf("job %d: WRONG SUM %s, oracle %s (reset escaped as a wrong statistic)", i, job.Result.Sum, oracle)
		}
		done++
	}
	t.Logf("resets: %d correct, %d classified failures", done, failed)
	if done == 0 {
		t.Fatal("no job succeeded under 5% resets")
	}
}
