package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"privstats/internal/faultnet"
	"privstats/internal/wire"
)

// TestFaultKindClassification is the contract between faultnet's fault
// vocabulary and the client's retry policy: for every fault kind the
// injector can produce, the error it surfaces in the client must carry the
// intended verdict — transient faults retry (with backoff), deterministic
// rejections fail fast.
func TestFaultKindClassification(t *testing.T) {
	cases := []struct {
		kind      string
		err       error
		retryable bool
	}{
		// Reset (local RST): exactly what faultnet's reset fault returns.
		{"reset", &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}, true},
		// Dial refusal: faultnet.Dialer's synthesized ECONNREFUSED.
		{"refusal", &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}, true},
		// Stall past the IO deadline: surfaces as a net timeout.
		{"stall-timeout", &net.OpError{Op: "read", Net: "tcp", Err: timeoutErr{}}, true},
		// Peer-reported timeout (server idle deadline fired first).
		{"stall-peer-timeout", &wire.PeerError{Code: wire.CodeTimeout, Msg: "session timed out"}, true},
		// Corruption detected locally by the CRC check.
		{"corrupt-local", fmt.Errorf("recv: %w", wire.ErrFrameCorrupt), true},
		// Corruption detected by the peer and reported back.
		{"corrupt-peer", &wire.PeerError{Code: wire.CodeCorruptFrame, Msg: "frame corrupt"}, true},
		// A corrupted length field declares an absurd frame size.
		{"corrupt-length", fmt.Errorf("recv: %w", wire.ErrFrameTooLarge), true},
		// A corrupted type byte makes a CRC frame look plain; the peer
		// classifies it as corruption on the wire.
		{"corrupt-type-byte", fmt.Errorf("plain frame type 0x27 in a CRC session: %w", wire.ErrFrameCorrupt), true},
		// Short write from the fault injector.
		{"short-write", fmt.Errorf("send: %w", io.ErrShortWrite), true},
		// Mid-frame kill: the reader sees a truncated frame.
		{"kill-truncated", fmt.Errorf("reading frame: %w", io.ErrUnexpectedEOF), true},
		// Clean hangup (refused-after-accept looks like this client-side).
		{"hangup-eof", io.EOF, true},
		// Busy rejection, coded and legacy.
		{"busy-coded", &wire.PeerError{Code: wire.CodeBusy, Msg: "server busy"}, true},
		{"busy-legacy", errors.New("server busy: all session slots in use"), true},
		// Deterministic protocol rejections must NOT burn retries.
		{"protocol-coded", &wire.PeerError{Code: wire.CodeProtocol, Msg: "bad vector length"}, false},
		{"protocol-legacy", &wire.PeerError{Msg: "unknown scheme"}, false},
		// A relayed shard-unavailable already exhausted the far side's
		// candidates; hammering it again from here is amplification.
		{"shard-unavailable", &wire.PeerError{Code: wire.CodeShardUnavailable, Msg: "shard 1 dark"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			if got := retryable(tc.err); got != tc.retryable {
				t.Errorf("retryable(%v) = %v, want %v", tc.err, got, tc.retryable)
			}
			// Wrapping (as Do and the protocol layers do) must not change
			// the verdict.
			wrapped := fmt.Errorf("backend 127.0.0.1:1: %w", tc.err)
			if got := retryable(wrapped); got != tc.retryable {
				t.Errorf("retryable(wrapped %v) = %v, want %v", tc.err, got, tc.retryable)
			}
		})
	}
}

// timeoutErr implements net.Error's timeout contract.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestFaultVerdictDrivesBackoff checks the behavioral half of the
// contract: a retryable fault consumes retries WITH backoff sleeps between
// attempts, while a fatal fault returns after one attempt and zero sleeps.
func TestFaultVerdictDrivesBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) { io.Copy(io.Discard, conn); conn.Close() }(conn)
		}
	}()
	addr := ln.Addr().String()

	run := func(injected error) (attempts, sleeps int) {
		c := NewClient(ClientConfig{Retries: 2, Backoff: time.Millisecond, ProbeAfter: time.Nanosecond})
		c.sleep = func(context.Context, time.Duration) error { sleeps++; return nil }
		_, _ = c.Do(context.Background(), []string{addr}, func(s *Session) error {
			attempts++
			return injected
		})
		return
	}

	if attempts, sleeps := run(&net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}); attempts != 3 || sleeps != 2 {
		t.Errorf("reset: %d attempts, %d sleeps; want 3 attempts with 2 backoff sleeps", attempts, sleeps)
	}
	if attempts, sleeps := run(fmt.Errorf("recv: %w", wire.ErrFrameCorrupt)); attempts != 3 || sleeps != 2 {
		t.Errorf("corrupt: %d attempts, %d sleeps; want 3 attempts with 2 backoff sleeps", attempts, sleeps)
	}
	if attempts, sleeps := run(&wire.PeerError{Code: wire.CodeProtocol, Msg: "bad length"}); attempts != 1 || sleeps != 0 {
		t.Errorf("protocol: %d attempts, %d sleeps; want fail-fast (1 attempt, 0 sleeps)", attempts, sleeps)
	}
	if attempts, sleeps := run(&wire.PeerError{Code: wire.CodeShardUnavailable, Msg: "dark"}); attempts != 1 || sleeps != 0 {
		t.Errorf("shard-unavailable: %d attempts, %d sleeps; want fail-fast", attempts, sleeps)
	}
}

// TestDialRefusalsRetryThroughFaultnet wires a faultnet.Dialer into the
// client and confirms an injected dial refusal is retried end to end (not
// just classified in the abstract).
func TestDialRefusalsRetryThroughFaultnet(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) { io.Copy(io.Discard, conn); conn.Close() }(conn)
		}
	}()

	// Refuse=1 with a dialer whose stats we watch: every dial is refused,
	// so Do must burn every attempt on ECONNREFUSED and report exhaustion.
	d := &faultnet.Dialer{Plan: faultnet.Plan{Seed: 5, Refuse: 1}}
	c := NewClient(ClientConfig{Retries: 2, Backoff: time.Millisecond, Dial: d.DialContext})
	c.sleep = noSleep
	_, err = c.Do(context.Background(), []string{ln.Addr().String()}, func(s *Session) error {
		t.Error("fn ran despite refused dial")
		return nil
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want ExhaustedError", err)
	}
	if ex.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", ex.Attempts)
	}
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Errorf("cause lost: %v", err)
	}
	if s := d.Stats(); s.Refusals != 3 {
		t.Errorf("dialer refusals = %d, want 3 (one per attempt)", s.Refusals)
	}
}

// TestExhaustedErrorShape: Do's terminal error exposes attempts and cause.
func TestExhaustedErrorShape(t *testing.T) {
	inner := io.EOF
	ex := &ExhaustedError{Attempts: 4, Last: fmt.Errorf("backend x: %w", inner)}
	if !errors.Is(ex, io.EOF) {
		t.Error("Unwrap chain broken")
	}
	if msg := ex.Error(); msg == "" {
		t.Error("empty message")
	}
}
