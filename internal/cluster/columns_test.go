package cluster

import (
	"context"
	"math/big"
	"strings"
	"testing"

	"privstats/internal/wire"
)

// Multi-column fan-out: the aggregator forwards the hello's column set to
// every shard, reads one partial per column from each, and combines
// column-wise — so a variance (value+square) or count (ones) query costs one
// uplink across the whole cluster, exactly like the single-server fold.

func TestClusterQueryColumnsMatchesOracle(t *testing.T) {
	table, sel, wantSum := fixture(t, 60, 31, 777)
	wantSq, err := table.SelectedSumOfSquares(sel)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, client := startCluster(t, table, 3)
	sk := testKey(t)

	sums, err := client.QueryColumns(context.Background(), []string{addr}, sk, QuerySpec{
		Sel:       sel,
		ChunkSize: 7,
		Columns:   wire.ColValue | wire.ColSquare | wire.ColOnes,
	})
	if err != nil {
		t.Fatalf("QueryColumns: %v", err)
	}
	if len(sums) != 3 {
		t.Fatalf("got %d sums, want 3", len(sums))
	}
	if sums[0].Cmp(wantSum) != 0 {
		t.Errorf("value sum = %v, want %v", sums[0], wantSum)
	}
	if sums[1].Cmp(wantSq) != 0 {
		t.Errorf("square sum = %v, want %v", sums[1], wantSq)
	}
	if wantCount := big.NewInt(int64(sel.Count())); sums[2].Cmp(wantCount) != 0 {
		t.Errorf("ones sum = %v, want %v", sums[2], wantCount)
	}
}

func TestClusterQueryColumnsDefaultMatchesQuery(t *testing.T) {
	table, sel, want := fixture(t, 30, 12, 778)
	addr, _, client := startCluster(t, table, 2)
	sk := testKey(t)

	sums, err := client.QueryColumns(context.Background(), []string{addr}, sk, QuerySpec{Sel: sel})
	if err != nil {
		t.Fatalf("QueryColumns: %v", err)
	}
	if len(sums) != 1 || sums[0].Cmp(want) != 0 {
		t.Errorf("sums = %v, want [%v]", sums, want)
	}
}

func TestAggregatorRejectsUnknownColumnBits(t *testing.T) {
	table, _, _ := fixture(t, 20, 5, 779)
	addr, _, client := startCluster(t, table, 2)
	sk := testKey(t)

	keyBytes, err := sk.PublicKey().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Do(context.Background(), []string{addr}, func(s *Session) error {
		hello := wire.Hello{
			Version:   wire.Version,
			Scheme:    sk.PublicKey().SchemeName(),
			PublicKey: keyBytes,
			VectorLen: uint64(table.Len()),
			Columns:   1 << 11,
		}
		if err := s.Conn.Send(wire.MsgHello, hello.Encode()); err != nil {
			return err
		}
		f, err := s.Conn.Recv()
		if err != nil {
			return err
		}
		if f.Type != wire.MsgError {
			t.Errorf("expected MsgError, got %#x", byte(f.Type))
			return nil
		}
		perr := wire.DecodeError(f.Payload)
		if !strings.Contains(perr.Error(), "unknown column") {
			t.Errorf("error should name the unknown column bits: %v", perr)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
}
