package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"privstats/internal/durable"
	"privstats/internal/trace"
)

// Job journal: every lifecycle transition of every job is appended (and
// fsynced) to a write-ahead journal under the gateway's store directory
// BEFORE it is acknowledged, so a SIGKILL never silently drops a job the
// client was told about. On restart the journal is replayed to rebuild the
// store: finished jobs are restored verbatim, jobs caught mid-execution are
// re-planned and re-executed (queries are read-only, so re-execution is
// idempotent) or classified "[interrupted]" when past their deadline —
// never a partial or wrong statistic. After replay the journal is compacted
// to the retained jobs, so it cannot grow without bound across restarts.

// Journal record types.
const (
	recSubmitted byte = 1 // job admitted: identity + the spec to re-plan from
	recStarted   byte = 2 // job took an execution slot
	recStep      byte = 3 // one plan step (cluster query) completed
	recFinished  byte = 4 // terminal: result (done) or classified error (failed)
)

// journalName is the journal file under the store directory.
const journalName = "jobs.wal"

// CodeInterrupted classifies a job that was mid-execution at a crash and
// could not be transparently re-executed after restart. It joins the wire
// layer's "[code] message" convention so clients can classify without
// parsing prose.
const CodeInterrupted = "[interrupted]"

// submittedRec journals an admitted job. Spec carries the original JobSpec
// JSON so a restart can re-plan it.
type submittedRec struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant"`
	Op        string          `json:"op"`
	Submitted time.Time       `json:"submitted"`
	Spec      json.RawMessage `json:"spec"`
}

// startedRec journals a job entering execution.
type startedRec struct {
	ID      string    `json:"id"`
	Started time.Time `json:"started"`
}

// stepRec journals one completed plan step — a checkpoint. Replay does not
// need it to decide anything (re-execution is idempotent end to end); it
// exists so operators can see how far a crashed job had progressed.
type stepRec struct {
	ID   string `json:"id"`
	Step string `json:"step"`
}

// finishedRec journals a terminal state: exactly one of Result or Error.
type finishedRec struct {
	ID       string    `json:"id"`
	Finished time.Time `json:"finished"`
	Result   *Result   `json:"result,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// replayedJob accumulates one job's records during replay.
type replayedJob struct {
	job   Job
	spec  json.RawMessage
	steps int
}

// replayState rebuilds the job table from a journal stream.
type replayState struct {
	jobs map[string]*replayedJob
}

// apply consumes one journal record. Unknown types and records for unknown
// IDs are tolerated (skipped): the journal outlives code versions, and a
// best-effort replay that recovers every intact job beats a brittle one.
func (s *replayState) apply(typ byte, payload []byte) error {
	switch typ {
	case recSubmitted:
		var r submittedRec
		if err := json.Unmarshal(payload, &r); err != nil || r.ID == "" {
			return nil
		}
		s.jobs[r.ID] = &replayedJob{
			job: Job{
				ID:        r.ID,
				Tenant:    r.Tenant,
				Op:        r.Op,
				State:     StateQueued,
				Submitted: r.Submitted,
			},
			spec: r.Spec,
		}
	case recStarted:
		var r startedRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return nil
		}
		if j := s.jobs[r.ID]; j != nil && j.job.State == StateQueued {
			j.job.State = StateRunning
			j.job.Started = r.Started
		}
	case recStep:
		var r stepRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return nil
		}
		if j := s.jobs[r.ID]; j != nil {
			j.steps++
		}
	case recFinished:
		var r finishedRec
		if err := json.Unmarshal(payload, &r); err != nil {
			return nil
		}
		if j := s.jobs[r.ID]; j != nil {
			j.job.Finished = r.Finished
			if r.Error != "" {
				j.job.State = StateFailed
				j.job.Error = r.Error
			} else {
				j.job.State = StateDone
				j.job.Result = r.Result
			}
		}
	}
	return nil
}

// sortedJobs returns the replayed jobs in submission order, so the rebuilt
// store preserves the original insertion (and eviction) order.
func (s *replayState) sortedJobs() []*replayedJob {
	out := make([]*replayedJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].job.Submitted.Equal(out[k].job.Submitted) {
			return out[i].job.Submitted.Before(out[k].job.Submitted)
		}
		return out[i].job.ID < out[k].job.ID
	})
	return out
}

// recoveredPending is one mid-flight job queued for re-execution after
// replay.
type recoveredPending struct {
	job  *Job
	plan *Plan
	id   trace.ID
}

// openStore validates the store directory, replays the journal into the
// gateway's job table, classifies mid-flight jobs, compacts the journal to
// the retained set, and leaves the gateway's journal open for appending.
// Every failure here is an operator-facing error surfaced before any socket
// opens: an unwritable directory or a corrupt (non-journal) file must stop
// the daemon, not silently serve an empty store.
func (g *Gateway) openStore(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("jobs: store dir: %w", err)
	}
	path := filepath.Join(dir, journalName)

	state := &replayState{jobs: make(map[string]*replayedJob)}
	wal, stats, err := durable.Open(path, state.apply)
	if err != nil {
		return fmt.Errorf("jobs: store journal: %w", err)
	}
	// Replay is done; the compaction below rewrites the file, so release
	// this handle first.
	if err := wal.Close(); err != nil {
		return fmt.Errorf("jobs: store journal: %w", err)
	}

	g.m.ReplayedBytes.Add(stats.Bytes)
	if stats.TornTail {
		g.m.TornTail.Inc()
	}

	now := g.now()
	var finished, reexec, interrupted int
	for _, rj := range state.sortedJobs() {
		job := rj.job // copy
		switch job.State {
		case StateDone, StateFailed:
			finished++
			g.storeLocked(&job)
		default:
			// Mid-flight at the crash. Queries are read-only, so re-running
			// the whole plan is safe and yields the exact statistic — unless
			// the job is already past its deadline or its spec no longer
			// plans against the served schema, in which case it is classified
			// [interrupted]: a clean failure, never a partial result.
			if reason := g.classifyInterrupted(&job, rj, now); reason != "" {
				interrupted++
				job.State = StateFailed
				job.Error = fmt.Sprintf("%s %s", CodeInterrupted, reason)
				job.Finished = now
				g.storeLocked(&job)
				continue
			}
			spec, perr := DecodeJobSpec(rj.spec)
			var plan *Plan
			if perr == nil {
				plan, perr = BuildPlan(spec, g.cfg.Schema)
			}
			if perr != nil {
				interrupted++
				job.State = StateFailed
				job.Error = fmt.Sprintf("%s spec no longer plannable after restart: %v", CodeInterrupted, perr)
				job.Finished = now
				g.storeLocked(&job)
				continue
			}
			id, perr := trace.ParseID(job.ID)
			if perr != nil {
				id = trace.NewID()
			}
			reexec++
			job.State = StateQueued
			job.Started = time.Time{}
			g.storeLocked(&job)
			g.specs[job.ID] = rj.raw()
			g.queued[job.Tenant]++
			g.pending = append(g.pending, recoveredPending{job: &job, plan: plan, id: id})
			if rj.steps > 0 {
				g.logf("jobs: re-executing %s (%s/%s): crashed %d steps in", job.ID, job.Tenant, job.Op, rj.steps)
			}
		}
	}
	recovered := finished + reexec + interrupted
	g.m.Recovered.Add(int64(recovered))

	// Compact: rewrite the retained jobs (and only them) so the journal
	// stays proportional to the store, then reopen for appending.
	if err := g.compactJournal(path); err != nil {
		return err
	}
	wal, _, err = durable.Open(path, nil)
	if err != nil {
		return fmt.Errorf("jobs: reopening compacted journal: %w", err)
	}
	g.wal = wal

	if recovered > 0 || stats.TornTail {
		tail := ""
		if stats.TornTail {
			tail = ", torn tail dropped"
		}
		g.logf("jobs: recovered %d jobs from %s (%d finished, %d re-executed, %d interrupted, %d bytes replayed%s)",
			recovered, path, finished, reexec, interrupted, stats.Bytes, tail)
	}
	return nil
}

// raw returns the job's spec bytes, or an empty JSON object when the
// journal predates them (replay keeps whatever it can).
func (rj *replayedJob) raw() json.RawMessage {
	if len(rj.spec) == 0 {
		return json.RawMessage("{}")
	}
	return rj.spec
}

// classifyInterrupted decides whether a mid-flight job should be classified
// instead of re-executed. Returns the reason, or "" to re-execute.
func (g *Gateway) classifyInterrupted(job *Job, rj *replayedJob, now time.Time) string {
	if g.cfg.JobTimeout > 0 && now.Sub(job.Submitted) > g.cfg.JobTimeout {
		return fmt.Sprintf("mid-execution at crash and past its %v deadline", g.cfg.JobTimeout)
	}
	if len(rj.spec) == 0 {
		return "journal holds no spec to re-plan"
	}
	if _, ok := g.tenants.lookup(job.Tenant); !ok {
		return fmt.Sprintf("tenant %q no longer configured", job.Tenant)
	}
	return ""
}

// launchRecovered starts the re-execution workers for jobs recovered
// mid-flight. Called once, after the gateway is fully constructed; the jobs
// are already stored, counted in queued, and journaled.
func (g *Gateway) launchRecovered() {
	for _, p := range g.pending {
		tm := g.m.Tenant(p.job.Tenant)
		tm.Queued.Inc()
		weight := 1
		if ts, ok := g.tenants.lookup(p.job.Tenant); ok {
			weight = ts.cfg.Weight
		}
		p := p
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.run(p.job, p.plan, p.id, weight, tm, g.now())
		}()
	}
	g.pending = nil
}

// journalSubmitted durably records an admitted job; failure rejects the
// submission (the gateway must never acknowledge a job it could lose).
// Callers hold walMu.
func (g *Gateway) journalSubmitted(job *Job, spec json.RawMessage) error {
	if !g.journaling {
		return nil
	}
	if g.wal == nil {
		// The journal died under us (disk error on a compaction reopen);
		// refusing beats acknowledging jobs that cannot survive a crash.
		return errors.New("jobs: store journal unavailable after disk error")
	}
	payload, err := json.Marshal(submittedRec{
		ID: job.ID, Tenant: job.Tenant, Op: job.Op, Submitted: job.Submitted, Spec: spec,
	})
	if err != nil {
		return fmt.Errorf("jobs: encoding journal record: %w", err)
	}
	if err := g.wal.Append(recSubmitted, payload); err != nil {
		return fmt.Errorf("jobs: journaling submission: %w", err)
	}
	return nil
}

// journalAppend best-effort-appends a non-acknowledgment record (started,
// step, finished). A failure here is logged, not fatal: the job's outcome
// is still correct in memory, and replay treats a missing transition as
// mid-flight, which re-executes idempotently.
func (g *Gateway) journalAppend(typ byte, v any) {
	if !g.journaling {
		return
	}
	payload, err := json.Marshal(v)
	if err != nil {
		g.logf("jobs: encoding journal record: %v", err)
		return
	}
	g.walMu.Lock()
	defer g.walMu.Unlock()
	if g.wal == nil {
		return
	}
	if err := g.wal.Append(typ, payload); err != nil {
		g.logf("jobs: journal append: %v", err)
	}
}

// compactThreshold is how many evictions accumulate before the journal is
// rewritten to the retained set; amortizes compaction to O(1) per job.
const compactThreshold = 256

// compactJournal rewrites the journal to exactly the retained jobs. Callers
// must guarantee no concurrent appends (startup, or holding walMu).
func (g *Gateway) compactJournal(path string) error {
	g.mu.Lock()
	type kept struct {
		sub submittedRec
		fin *finishedRec
	}
	rows := make([]kept, 0, len(g.order))
	for _, id := range g.order {
		j := g.jobs[id]
		if j == nil {
			continue
		}
		row := kept{sub: submittedRec{
			ID: j.ID, Tenant: j.Tenant, Op: j.Op, Submitted: j.Submitted, Spec: g.specs[j.ID],
		}}
		if j.State == StateDone || j.State == StateFailed {
			row.fin = &finishedRec{ID: j.ID, Finished: j.Finished, Result: j.Result, Error: j.Error}
			if j.State == StateFailed && row.fin.Error == "" {
				row.fin.Error = "[protocol] failed with no recorded error"
			}
		}
		rows = append(rows, row)
	}
	g.evictions = 0
	g.mu.Unlock()

	err := durable.Rewrite(path, func(j *durable.Journal) error {
		for _, row := range rows {
			payload, err := json.Marshal(row.sub)
			if err != nil {
				return err
			}
			if err := j.Append(recSubmitted, payload); err != nil {
				return err
			}
			if row.fin == nil {
				continue
			}
			payload, err = json.Marshal(row.fin)
			if err != nil {
				return err
			}
			if err := j.Append(recFinished, payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	return nil
}

// maybeCompactLocked rewrites and reopens the journal once enough evicted
// jobs have accumulated as dead records. Callers hold walMu.
func (g *Gateway) maybeCompactLocked() {
	g.mu.Lock()
	due := g.evictions >= compactThreshold
	g.mu.Unlock()
	if !due || g.wal == nil {
		return
	}
	path := g.wal.Path()
	if err := g.wal.Close(); err != nil {
		g.logf("jobs: closing journal for compaction: %v", err)
	}
	if err := g.compactJournal(path); err != nil {
		g.logf("jobs: %v", err)
	}
	wal, _, err := durable.Open(path, nil)
	if err != nil {
		// Disk just failed under us; keep serving from memory.
		g.logf("jobs: reopening compacted journal: %v", err)
		g.wal = nil
		return
	}
	g.wal = wal
}
