package jobs

import (
	"context"
	"errors"
	"sync"
)

// FairSemaphore is a weighted fair-share admission gate over a fixed number
// of execution slots — the PR-1 admission semaphore with start-time fair
// queueing in front of it. A plain FIFO semaphore lets one saturating
// tenant enqueue a hundred jobs and make everyone else wait behind all of
// them; here each grant advances the tenant's virtual "pass" by 1/weight,
// and the waiter with the smallest pass goes next. A tenant that was idle
// re-enters at the current virtual time (not at zero), so sparse tenants
// interleave with a saturating one instead of queueing behind it, and
// bandwidth under saturation converges to the weight ratio.
type FairSemaphore struct {
	mu      sync.Mutex
	slots   int
	inuse   int
	vtime   float64
	pass    map[string]float64
	waiters []*fairWaiter
	seq     uint64 // FIFO tiebreak for equal passes
}

type fairWaiter struct {
	tenant string
	weight int
	tag    float64
	seq    uint64
	ready  chan struct{}
}

// NewFairSemaphore builds a gate with the given number of execution slots.
func NewFairSemaphore(slots int) (*FairSemaphore, error) {
	if slots <= 0 {
		return nil, errors.New("jobs: fair semaphore needs a positive slot count")
	}
	return &FairSemaphore{slots: slots, pass: make(map[string]float64)}, nil
}

// charge advances tenant's pass for one grant and returns the virtual start
// time of that grant.
func (f *FairSemaphore) charge(tenant string, weight int) float64 {
	start := f.pass[tenant]
	if start < f.vtime {
		start = f.vtime
	}
	f.pass[tenant] = start + 1/float64(weight)
	return start
}

// Acquire blocks until the tenant is granted a slot or ctx is cancelled.
// Weight must be positive.
func (f *FairSemaphore) Acquire(ctx context.Context, tenant string, weight int) error {
	if weight <= 0 {
		return errors.New("jobs: non-positive fair-share weight")
	}
	f.mu.Lock()
	if f.inuse < f.slots && len(f.waiters) == 0 {
		f.inuse++
		f.vtime = f.charge(tenant, weight)
		f.mu.Unlock()
		return nil
	}
	w := &fairWaiter{
		tenant: tenant,
		weight: weight,
		tag:    f.charge(tenant, weight),
		seq:    f.seq,
		ready:  make(chan struct{}),
	}
	f.seq++
	f.waiters = append(f.waiters, w)
	f.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		f.mu.Lock()
		for i, q := range f.waiters {
			if q == w {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				f.mu.Unlock()
				return ctx.Err()
			}
		}
		f.mu.Unlock()
		// Lost the race: the grant already happened, hand the slot back.
		<-w.ready
		f.Release()
		return ctx.Err()
	}
}

// Release returns a slot and grants it to the waiter with the smallest
// virtual start (FIFO among equals).
func (f *FairSemaphore) Release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.inuse == 0 {
		panic("jobs: FairSemaphore.Release without Acquire")
	}
	f.inuse--
	if len(f.waiters) == 0 || f.inuse >= f.slots {
		return
	}
	best := 0
	for i, w := range f.waiters[1:] {
		if w.tag < f.waiters[best].tag ||
			(w.tag == f.waiters[best].tag && w.seq < f.waiters[best].seq) {
			best = i + 1
		}
	}
	w := f.waiters[best]
	f.waiters = append(f.waiters[:best], f.waiters[best+1:]...)
	f.inuse++
	if w.tag > f.vtime {
		f.vtime = w.tag
	}
	close(w.ready)
}

// Queued returns the number of waiters (for tests and introspection).
func (f *FairSemaphore) Queued() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}
