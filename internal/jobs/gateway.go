package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"privstats/internal/durable"
	"privstats/internal/metrics"
	"privstats/internal/trace"
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// ErrUnknownTenant rejects a submission from an unconfigured identity.
var ErrUnknownTenant = errors.New("jobs: unknown tenant")

// QuotaError is a policy rejection (token bucket or queue cap), rendered
// with the "[quota]" code so clients can back off without parsing prose.
type QuotaError struct {
	Tenant string
	Reason string
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("[quota] tenant %s: %s", e.Tenant, e.Reason)
}

// Job is one submission's status. It carries only plaintext the submitting
// analyst is entitled to — the spec's shape, the job's lifecycle, and (when
// done) the decrypted result. Never ciphertext.
type Job struct {
	// ID is the job identifier — the hex form of the trace ID every hop of
	// the fan-out records under, so one string joins gateway, aggregator,
	// and shard views.
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Op     string `json:"op"`
	State  string `json:"state"`
	// Error carries the failure (with its classified "[code]" intact) for
	// failed jobs.
	Error     string    `json:"error,omitempty"`
	Result    *Result   `json:"result,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
}

// GatewayConfig wires a Gateway.
type GatewayConfig struct {
	// Schema describes the served table (required).
	Schema Schema
	// Exec runs plans (required).
	Exec *Executor
	// Tenants is the admission policy (required, at least one).
	Tenants []Tenant
	// Slots is the number of concurrently executing jobs; 0 means 2.
	Slots int
	// MaxJobs bounds retained job statuses; 0 means 1024. When full, the
	// oldest finished job is evicted.
	MaxJobs int
	// JobTimeout bounds one job's execution; 0 means no deadline.
	JobTimeout time.Duration
	// StoreDir, when set, makes the job store crash-safe: every lifecycle
	// transition is journaled (and fsynced) under this directory before it
	// is acknowledged, and a restart replays the journal — finished jobs
	// come back verbatim, mid-flight jobs are re-executed or classified
	// "[interrupted]". Empty keeps the store memory-only.
	StoreDir string
	// Metrics receives per-tenant counters; nil allocates a private one.
	Metrics *metrics.JobMetrics
	// Logf is the gateway log sink; nil discards.
	Logf func(string, ...any)
}

// Gateway is the multi-tenant job front end: Submit validates, plans, and
// queues; a fair-share semaphore admits queued jobs to execution slots;
// Status (and the HTTP handler) expose lifecycle and results.
type Gateway struct {
	cfg     GatewayConfig
	tenants *tenantSet
	sem     *FairSemaphore
	m       *metrics.JobMetrics
	logf    func(string, ...any)
	now     func() time.Time

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string                   // insertion order, for bounded eviction
	queued map[string]int             // per-tenant admitted-but-unfinished jobs
	specs  map[string]json.RawMessage // spec JSON of unfinished jobs, for journal compaction
	// evictions counts jobs dropped from the store since the last journal
	// compaction; the journal still carries their dead records.
	evictions int

	// journaling is true when a StoreDir was configured; immutable after
	// construction, so it is the lock-free fast-path check.
	journaling bool
	walMu      sync.Mutex // serializes journal appends with compaction swaps; taken before mu
	wal        *durable.Journal
	pending    []recoveredPending // mid-flight jobs replayed at startup, launched once
}

// NewGateway builds a gateway; it validates the whole configuration before
// accepting anything.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Schema.Rows <= 0 || len(cfg.Schema.Columns) == 0 {
		return nil, errors.New("jobs: gateway needs a schema with rows and columns")
	}
	if cfg.Exec == nil {
		return nil, errors.New("jobs: gateway needs an executor")
	}
	if err := cfg.Exec.validate(); err != nil {
		return nil, err
	}
	set, err := newTenantSet(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	if cfg.Slots == 0 {
		cfg.Slots = 2
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.Slots < 0 || cfg.MaxJobs < 0 || cfg.JobTimeout < 0 {
		return nil, errors.New("jobs: negative gateway knob")
	}
	sem, err := NewFairSemaphore(cfg.Slots)
	if err != nil {
		return nil, err
	}
	m := cfg.Metrics
	if m == nil {
		m = &metrics.JobMetrics{}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gateway{
		cfg:        cfg,
		tenants:    set,
		sem:        sem,
		m:          m,
		logf:       logf,
		now:        time.Now,
		ctx:        ctx,
		cancel:     cancel,
		jobs:       make(map[string]*Job),
		queued:     make(map[string]int),
		specs:      make(map[string]json.RawMessage),
		journaling: cfg.StoreDir != "",
	}
	if g.journaling {
		if err := g.openStore(cfg.StoreDir); err != nil {
			cancel()
			return nil, err
		}
		g.launchRecovered()
	}
	return g, nil
}

// Metrics returns the per-tenant counter registry (for /metrics mounting).
func (g *Gateway) Metrics() *metrics.JobMetrics { return g.m }

// Close stops accepting, cancels running jobs, waits for workers, and
// closes the store journal.
func (g *Gateway) Close() {
	g.cancel()
	g.wg.Wait()
	g.walMu.Lock()
	if g.wal != nil {
		if err := g.wal.Close(); err != nil {
			g.logf("jobs: closing store journal: %v", err)
		}
		g.wal = nil
	}
	g.walMu.Unlock()
}

// Submit admits one job for tenant. On success the returned snapshot is in
// the queued state; poll Status with its ID. Rejections are classified:
// ErrUnknownTenant, *QuotaError ("[quota]"), or *BadJobError ("[bad-job]").
func (g *Gateway) Submit(tenant string, spec *JobSpec) (Job, error) {
	ts, ok := g.tenants.lookup(tenant)
	if !ok {
		// Deliberately NOT counted in per-tenant metrics: an unknown name
		// would let a client mint unbounded label cardinality.
		return Job{}, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	tm := g.m.Tenant(tenant)
	tm.Submitted.Inc()

	if !ts.takeToken(g.now()) {
		tm.Rejected.Inc()
		return Job{}, &QuotaError{Tenant: tenant, Reason: "submission rate exceeded"}
	}
	if spec == nil {
		tm.Rejected.Inc()
		return Job{}, badJob("spec", "missing")
	}
	plan, err := BuildPlan(spec, g.cfg.Schema)
	if err != nil {
		tm.Rejected.Inc()
		return Job{}, err
	}

	id := trace.NewID()
	job := &Job{
		ID:        id.String(),
		Tenant:    tenant,
		Op:        plan.Op,
		State:     StateQueued,
		Submitted: g.now(),
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		tm.Rejected.Inc()
		return Job{}, fmt.Errorf("jobs: encoding spec: %w", err)
	}

	// Admission is journal-then-store under walMu: the submitted record is
	// fsynced BEFORE the job becomes visible, so every acknowledged job ID
	// exists after a kill, and compaction (which snapshots the store while
	// holding walMu) can never drop a record journaled but not yet stored.
	g.walMu.Lock()
	g.mu.Lock()
	if g.queued[tenant] >= ts.cfg.MaxQueued {
		g.mu.Unlock()
		g.walMu.Unlock()
		tm.Rejected.Inc()
		return Job{}, &QuotaError{Tenant: tenant, Reason: fmt.Sprintf("%d jobs already queued (cap %d)", ts.cfg.MaxQueued, ts.cfg.MaxQueued)}
	}
	g.queued[tenant]++
	g.mu.Unlock()
	if err := g.journalSubmitted(job, raw); err != nil {
		g.mu.Lock()
		g.queued[tenant]--
		g.mu.Unlock()
		g.walMu.Unlock()
		tm.Rejected.Inc()
		return Job{}, err
	}
	g.mu.Lock()
	g.storeLocked(job)
	g.specs[job.ID] = raw
	snapshot := *job
	g.mu.Unlock()
	g.maybeCompactLocked()
	g.walMu.Unlock()

	tm.Admitted.Inc()
	tm.Queued.Inc()
	admitted := g.now()

	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.run(job, plan, id, ts.cfg.Weight, tm, admitted)
	}()
	return snapshot, nil
}

// run is one job's worker: fair-share admission, execution, bookkeeping.
func (g *Gateway) run(job *Job, plan *Plan, id trace.ID, weight int, tm *metrics.TenantJobs, admitted time.Time) {
	finish := func(res *Result, err error) {
		now := g.now()
		g.mu.Lock()
		job.Finished = now
		if err != nil {
			job.State = StateFailed
			job.Error = err.Error()
		} else {
			job.State = StateDone
			job.Result = res
		}
		g.queued[job.Tenant]--
		delete(g.specs, job.ID)
		rec := finishedRec{ID: job.ID, Finished: now, Result: job.Result, Error: job.Error}
		g.mu.Unlock()
		g.journalAppend(recFinished, rec)
		tm.Queued.Dec()
		tm.JobNanos.ObserveDuration(now.Sub(admitted))
		if err != nil {
			tm.Failed.Inc()
			g.logf("jobs: %s (%s/%s) failed: %v", job.ID, job.Tenant, job.Op, err)
		} else {
			tm.Completed.Inc()
		}
	}

	if err := g.sem.Acquire(g.ctx, job.Tenant, weight); err != nil {
		finish(nil, fmt.Errorf("jobs: admission: %w", err))
		return
	}
	defer g.sem.Release()

	now := g.now()
	g.mu.Lock()
	job.State = StateRunning
	job.Started = now
	g.mu.Unlock()
	g.journalAppend(recStarted, startedRec{ID: job.ID, Started: now})
	if g.journaling {
		plan.Checkpoint = func(step string) {
			g.journalAppend(recStep, stepRec{ID: job.ID, Step: step})
		}
	}

	ctx := g.ctx
	if g.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.JobTimeout)
		defer cancel()
	}
	res, err := g.cfg.Exec.Run(ctx, plan, id)
	finish(res, err)
}

// storeLocked inserts a job, evicting the oldest finished jobs when over
// the cap. The insertion-order slice is compacted in the same pass, so its
// length tracks the live job count instead of growing with every submission.
// Running jobs are never evicted: the store exceeds the cap only while more
// than MaxJobs jobs are genuinely unfinished.
func (g *Gateway) storeLocked(job *Job) {
	g.jobs[job.ID] = job
	g.order = append(g.order, job.ID)
	if len(g.jobs) <= g.cfg.MaxJobs {
		return
	}
	kept := g.order[:0]
	for _, id := range g.order {
		j := g.jobs[id]
		if j == nil {
			g.evictions++
			continue
		}
		if len(g.jobs) > g.cfg.MaxJobs && (j.State == StateDone || j.State == StateFailed) {
			delete(g.jobs, id)
			delete(g.specs, id)
			g.evictions++
			continue
		}
		kept = append(kept, id)
	}
	g.order = kept
}

// Status returns a snapshot of the job, if it is still retained.
func (g *Gateway) Status(id string) (Job, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// jobsDoc is the list-response envelope: lifecycle only, no results — a
// result belongs to the job's own status document.
type jobsDoc struct {
	Jobs []jobListEntry `json:"jobs"`
}

type jobListEntry struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Op     string `json:"op"`
	State  string `json:"state"`
}

// TenantHeader names the submit identity header.
const TenantHeader = "X-Tenant"

// Handler serves the gateway's HTTP surface, rooted at the mount point:
//
//	POST {root}           submit (X-Tenant header, JSON JobSpec body) → 202
//	GET  {root}           list retained jobs (lifecycle only)
//	GET  {root}/{id}      one job's status and result
//
// Mount under server.StatsMux via its Jobs field, which strips the /jobs
// prefix.
func (g *Gateway) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := strings.Trim(r.URL.Path, "/")
		switch {
		case path == "" && r.Method == http.MethodPost:
			g.handleSubmit(w, r)
		case path == "" && r.Method == http.MethodGet:
			g.handleList(w)
		case path != "" && r.Method == http.MethodGet:
			g.handleStatus(w, path)
		default:
			httpError(w, http.StatusMethodNotAllowed, "method not allowed")
		}
	})
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		httpError(w, http.StatusBadRequest, "missing "+TenantHeader+" header")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	spec, err := DecodeJobSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := g.Submit(tenant, spec)
	if err != nil {
		var quota *QuotaError
		var bad *BadJobError
		switch {
		case errors.Is(err, ErrUnknownTenant):
			httpError(w, http.StatusForbidden, err.Error())
		case errors.As(err, &quota):
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.As(err, &bad):
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, job)
}

func (g *Gateway) handleList(w http.ResponseWriter) {
	g.mu.Lock()
	doc := jobsDoc{Jobs: make([]jobListEntry, 0, len(g.order))}
	for _, id := range g.order {
		if j := g.jobs[id]; j != nil {
			doc.Jobs = append(doc.Jobs, jobListEntry{ID: j.ID, Tenant: j.Tenant, Op: j.Op, State: j.State})
		}
	}
	g.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, doc)
}

func (g *Gateway) handleStatus(w http.ResponseWriter, id string) {
	job, ok := g.Status(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, job)
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, map[string]string{"error": msg})
}
