package jobs

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"math/big"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/paillier"
	"privstats/internal/server"
	"privstats/internal/trace"
)

var (
	jkOnce sync.Once
	jkKey  *paillier.PrivateKey
	jkErr  error
)

// jobTestKey returns a shared 256-bit test key. Importing paillier also
// registers the scheme with the hello parser.
func jobTestKey(t testing.TB) homomorphic.PrivateKey {
	t.Helper()
	jkOnce.Do(func() { jkKey, jkErr = paillier.KeyGen(rand.Reader, 256) })
	if jkErr != nil {
		t.Fatalf("KeyGen: %v", jkErr)
	}
	return paillier.SchemeKey{SK: jkKey}
}

func discardLogf(string, ...any) {}

func serveOn(t *testing.T, srv *server.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		select {
		case <-errc:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return ln.Addr().String()
}

// startJobCluster shards table over k traced backends behind a traced
// aggregator and returns the proxy address plus every trace ring, so tests
// can assert one job ID is visible at every hop.
func startJobCluster(t *testing.T, table *database.Table, k int) (string, *trace.Recorder, []*trace.Recorder) {
	t.Helper()
	shardRecs := make([]*trace.Recorder, k)
	ranges := make([]cluster.Shard, k)
	lo := 0
	for i := 0; i < k; i++ {
		rows := table.Len() / k
		if i < table.Len()%k {
			rows++
		}
		ranges[i] = cluster.Shard{Lo: lo, Hi: lo + rows}
		lo += rows
	}
	for i, r := range ranges {
		shardTable, err := table.Shard(r.Lo, r.Hi)
		if err != nil {
			t.Fatal(err)
		}
		shardRecs[i] = trace.NewRecorder(64)
		srv, err := server.New(shardTable, server.Config{Logf: discardLogf, Traces: shardRecs[i]})
		if err != nil {
			t.Fatal(err)
		}
		ranges[i].Backends = []string{serveOn(t, srv)}
	}
	sm, err := cluster.NewShardMap(ranges)
	if err != nil {
		t.Fatal(err)
	}
	fanout := cluster.NewClient(cluster.ClientConfig{Retries: 2, Backoff: 5 * time.Millisecond})
	agg, err := cluster.NewAggregator(sm, fanout)
	if err != nil {
		t.Fatal(err)
	}
	aggRec := trace.NewRecorder(64)
	srv, err := server.NewHandler(agg, server.Config{Logf: discardLogf, Traces: aggRec})
	if err != nil {
		t.Fatal(err)
	}
	return serveOn(t, srv), aggRec, shardRecs
}

func testExecutor(t *testing.T, addr string) *Executor {
	t.Helper()
	return &Executor{
		Client:    cluster.NewClient(cluster.ClientConfig{Retries: 2, Backoff: 5 * time.Millisecond}),
		Backends:  []string{addr},
		Key:       jobTestKey(t),
		ChunkSize: 32,
		Traces:    trace.NewRecorder(64),
	}
}

func oneTenant() []Tenant {
	return []Tenant{{Name: "acme", Weight: 1, Rate: 1000, Burst: 1000, MaxQueued: 64}}
}

// waitJob polls until the job leaves the queue and returns its final state.
func waitJob(t *testing.T, g *Gateway, id string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		job, ok := g.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if job.State == StateDone || job.State == StateFailed {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, job.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGatewayEndToEnd is the headline acceptance test: JobSpecs for sum,
// mean, variance, and groupby submitted to a gateway over a live k=2
// cluster match the plaintext oracle, and one job's trace ID is visible in
// the gateway, aggregator, AND both shard trace rings.
func TestGatewayEndToEnd(t *testing.T) {
	const n = 40
	table, err := database.Generate(n, database.DistUniform, 4242)
	if err != nil {
		t.Fatal(err)
	}
	addr, aggRec, shardRecs := startJobCluster(t, table, 2)
	exec := testExecutor(t, addr)
	g, err := NewGateway(GatewayConfig{
		Schema:  Schema{Rows: n, Columns: []string{"value"}},
		Exec:    exec,
		Tenants: oneTenant(),
		Slots:   2,
		Logf:    discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	submit := func(spec *JobSpec) Job {
		t.Helper()
		job, err := g.Submit("acme", spec)
		if err != nil {
			t.Fatalf("Submit(%s): %v", spec.Op, err)
		}
		job = waitJob(t, g, job.ID)
		if job.State != StateDone {
			t.Fatalf("%s job failed: %s", spec.Op, job.Error)
		}
		return job
	}

	// Oracle selection: rows 3..31 — straddles the k=2 shard boundary.
	selSpec := SelectionSpec{Ranges: [][2]int{{3, 31}}}
	sel, err := (&selSpec).Build(n)
	if err != nil {
		t.Fatal(err)
	}
	m := int64(sel.Count())
	S, err := table.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}
	Q, err := table.SelectedSumOfSquares(sel)
	if err != nil {
		t.Fatal(err)
	}

	job := submit(&JobSpec{Op: OpSum, Selection: selSpec})
	if job.Result.Sum != S.String() {
		t.Fatalf("sum %s, oracle %s", job.Result.Sum, S)
	}

	job = submit(&JobSpec{Op: OpMean, Columns: []string{"value"}, Selection: selSpec})
	wantMean := new(big.Rat).SetFrac(S, big.NewInt(m)).RatString()
	if job.Result.Mean != wantMean {
		t.Fatalf("mean %s, oracle %s", job.Result.Mean, wantMean)
	}

	varJob := submit(&JobSpec{Op: OpVariance, Selection: selSpec})
	num := new(big.Int).Mul(big.NewInt(m), Q)
	num.Sub(num, new(big.Int).Mul(S, S))
	wantVar := new(big.Rat).SetFrac(num, big.NewInt(m*m)).RatString()
	if varJob.Result.Variance != wantVar {
		t.Fatalf("variance %s, oracle %s", varJob.Result.Variance, wantVar)
	}
	if varJob.Result.SumSquares != Q.String() {
		t.Fatalf("sum of squares %s, oracle %s", varJob.Result.SumSquares, Q)
	}

	cov := submit(&JobSpec{Op: OpCovariance, Columns: []string{"value", "value"}, Selection: selSpec})
	if cov.Result.Covariance != wantVar {
		t.Fatalf("self-covariance %s, want variance %s", cov.Result.Covariance, wantVar)
	}

	// Group-by: rows mod 3, selection = all rows.
	labels := make([]int, n)
	wantGroup := make([]*big.Int, 3)
	counts := make([]int, 3)
	for i := range wantGroup {
		wantGroup[i] = new(big.Int)
	}
	for i := 0; i < n; i++ {
		labels[i] = i % 3
		wantGroup[i%3].Add(wantGroup[i%3], big.NewInt(int64(table.Value(i))))
		counts[i%3]++
	}
	job = submit(&JobSpec{
		Op:        OpGroupBy,
		Selection: SelectionSpec{All: true},
		Params:    &GroupByParams{Labels: labels, Groups: 3},
	})
	if len(job.Result.Groups) != 3 {
		t.Fatalf("groups: %+v", job.Result.Groups)
	}
	for gi, row := range job.Result.Groups {
		if row.Sum != wantGroup[gi].String() || row.Count != counts[gi] {
			t.Fatalf("group %d: got %+v, want sum %s count %d", gi, row, wantGroup[gi], counts[gi])
		}
	}

	// One trace ID, every hop: the variance job (a single two-column query
	// over both shards) must appear in the gateway's, the aggregator's, and
	// BOTH shards' trace rings under the same ID.
	id, err := trace.ParseID(varJob.ID)
	if err != nil {
		t.Fatalf("job ID %q is not a trace ID: %v", varJob.ID, err)
	}
	rings := map[string]*trace.Recorder{
		"gateway": exec.Traces, "aggregator": aggRec,
		"shard0": shardRecs[0], "shard1": shardRecs[1],
	}
	deadline := time.Now().Add(10 * time.Second)
	for name, rec := range rings {
		for len(rec.Find(id)) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("trace %s not visible in %s ring", varJob.ID, name)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Counters: all five jobs admitted and completed, none failed.
	snap := g.Metrics().Tenant("acme")
	if snap.Submitted.Value() != 5 || snap.Completed.Value() != 5 || snap.Failed.Value() != 0 {
		t.Fatalf("acme counters: submitted %d completed %d failed %d",
			snap.Submitted.Value(), snap.Completed.Value(), snap.Failed.Value())
	}
	if snap.Queued.Value() != 0 {
		t.Fatalf("queue gauge %d after drain", snap.Queued.Value())
	}
}

// TestGatewayFairShare saturates one tenant and checks the other still
// completes, with the quota policy visible in the counters.
func TestGatewayFairShare(t *testing.T) {
	const n = 256
	table, err := database.Generate(n, database.DistUniform, 99)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startJobCluster(t, table, 2)
	g, err := NewGateway(GatewayConfig{
		Schema: Schema{Rows: n, Columns: []string{"value"}},
		Exec:   testExecutor(t, addr),
		Tenants: []Tenant{
			{Name: "hog", Weight: 1, Rate: 1000, Burst: 1000, MaxQueued: 2},
			{Name: "mouse", Weight: 1, Rate: 1000, Burst: 1000, MaxQueued: 8},
		},
		Slots: 1,
		Logf:  discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	spec := func() *JobSpec { return &JobSpec{Op: OpSum, Selection: SelectionSpec{All: true}} }

	// The hog floods five submissions: its queue cap admits two, rejects
	// three with the [quota] code.
	var hogJobs []string
	rejected := 0
	for i := 0; i < 5; i++ {
		job, err := g.Submit("hog", spec())
		if err != nil {
			var quota *QuotaError
			if !errors.As(err, &quota) {
				t.Fatalf("hog submit %d: %v", i, err)
			}
			if !strings.HasPrefix(err.Error(), "[quota] ") {
				t.Fatalf("quota error %q lacks code", err)
			}
			rejected++
			continue
		}
		hogJobs = append(hogJobs, job.ID)
	}
	if rejected != 3 {
		t.Fatalf("hog rejected %d of 5, want 3 (cap 2)", rejected)
	}

	// The mouse's jobs complete despite the saturated slot.
	oracle, err := table.SelectedSum(mustAll(t, n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		job, err := g.Submit("mouse", spec())
		if err != nil {
			t.Fatalf("mouse submit: %v", err)
		}
		done := waitJob(t, g, job.ID)
		if done.State != StateDone {
			t.Fatalf("mouse job failed: %s", done.Error)
		}
		if done.Result.Sum != oracle.String() {
			t.Fatalf("mouse sum %s, oracle %s", done.Result.Sum, oracle)
		}
	}
	for _, id := range hogJobs {
		if job := waitJob(t, g, id); job.State != StateDone {
			t.Fatalf("hog job failed: %s", job.Error)
		}
	}

	hog := g.Metrics().Tenant("hog")
	mouse := g.Metrics().Tenant("mouse")
	if hog.Submitted.Value() != 5 || hog.Admitted.Value() != 2 || hog.Rejected.Value() != 3 {
		t.Fatalf("hog counters: submitted %d admitted %d rejected %d",
			hog.Submitted.Value(), hog.Admitted.Value(), hog.Rejected.Value())
	}
	if mouse.Completed.Value() != 2 || mouse.Rejected.Value() != 0 {
		t.Fatalf("mouse counters: completed %d rejected %d",
			mouse.Completed.Value(), mouse.Rejected.Value())
	}
}

func mustAll(t *testing.T, n int) *database.Selection {
	t.Helper()
	sel, err := (&SelectionSpec{All: true}).Build(n)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestGatewaySubmitRejections(t *testing.T) {
	exec := &Executor{
		// A dead backend: admitted jobs fail fast, rejections never dial.
		Client:   cluster.NewClient(cluster.ClientConfig{Retries: 0, Backoff: time.Millisecond}),
		Backends: []string{"127.0.0.1:1"},
		Key:      jobTestKey(t),
	}
	g, err := NewGateway(GatewayConfig{
		Schema:  Schema{Rows: 10, Columns: []string{"value"}},
		Exec:    exec,
		Tenants: []Tenant{{Name: "acme", Weight: 1, Rate: 0.001, Burst: 2, MaxQueued: 8}},
		Slots:   1,
		Logf:    discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if _, err := g.Submit("nobody", &JobSpec{Op: OpSum, Selection: SelectionSpec{All: true}}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}

	var bad *BadJobError
	if _, err := g.Submit("acme", &JobSpec{Op: "median", Selection: SelectionSpec{All: true}}); !errors.As(err, &bad) {
		t.Fatalf("bad spec: %v", err)
	}

	// Burst 2 with a ~zero refill rate: the bad job above consumed one
	// token, one more submission passes, then the bucket is empty.
	if _, err := g.Submit("acme", &JobSpec{Op: OpSum, Selection: SelectionSpec{All: true}}); err != nil {
		t.Fatalf("submit within burst: %v", err)
	}
	var quota *QuotaError
	if _, err := g.Submit("acme", &JobSpec{Op: OpSum, Selection: SelectionSpec{All: true}}); !errors.As(err, &quota) {
		t.Fatalf("over-burst submit: %v", err)
	}

	m := g.Metrics().Tenant("acme")
	if m.Submitted.Value() != 3 || m.Rejected.Value() != 2 || m.Admitted.Value() != 1 {
		t.Fatalf("counters: submitted %d admitted %d rejected %d",
			m.Submitted.Value(), m.Admitted.Value(), m.Rejected.Value())
	}

	// The admitted job fails against the dead backend — failed, never stuck.
	job := waitJob(t, g, func() string {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.order[0]
	}())
	if job.State != StateFailed || job.Error == "" {
		t.Fatalf("dead-backend job: %+v", job)
	}
}

func TestGatewayConfigValidation(t *testing.T) {
	exec := &Executor{
		Client:   cluster.NewClient(cluster.ClientConfig{}),
		Backends: []string{"127.0.0.1:1"},
		Key:      jobTestKey(t),
	}
	schema := Schema{Rows: 10, Columns: []string{"value"}}
	cases := []GatewayConfig{
		{},                                  // no schema
		{Schema: schema},                    // no executor
		{Schema: schema, Exec: &Executor{}}, // unwired executor
		{Schema: schema, Exec: exec},        // no tenants
		{Schema: schema, Exec: exec, Tenants: []Tenant{{Name: "a"}}},    // zero policy knobs
		{Schema: schema, Exec: exec, Tenants: oneTenant(), Slots: -1},   // negative slots
		{Schema: schema, Exec: exec, Tenants: oneTenant(), MaxJobs: -1}, // negative cap
	}
	for i, cfg := range cases {
		if _, err := NewGateway(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGatewayHTTP(t *testing.T) {
	const n = 24
	table, err := database.Generate(n, database.DistUniform, 7)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startJobCluster(t, table, 2)
	g, err := NewGateway(GatewayConfig{
		Schema:  Schema{Rows: n, Columns: []string{"value"}},
		Exec:    testExecutor(t, addr),
		Tenants: oneTenant(),
		Logf:    discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	post := func(tenant, body string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	// Submit a sum job over HTTP and poll its status to completion.
	resp, body := post("acme", `{"op":"sum","selection":{"all":true}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatalf("submit body: %v", err)
	}
	if job.State != StateQueued || job.Tenant != "acme" || job.Op != OpSum {
		t.Fatalf("submitted job %+v", job)
	}

	oracle, err := table.SelectedSum(mustAll(t, n))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got Job
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.State == StateFailed {
			t.Fatalf("job failed: %s", got.Error)
		}
		if got.State == StateDone {
			if got.Result.Sum != oracle.String() {
				t.Fatalf("HTTP sum %s, oracle %s", got.Result.Sum, oracle)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Rejections map onto HTTP statuses.
	if resp, _ := post("", `{"op":"sum","selection":{"all":true}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing tenant header: %d", resp.StatusCode)
	}
	if resp, _ := post("nobody", `{"op":"sum","selection":{"all":true}}`); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown tenant: %d", resp.StatusCode)
	}
	resp, body = post("acme", `{"op":"median","selection":{"all":true}}`)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(body, []byte("[bad-job]")) {
		t.Fatalf("bad op: %d %s", resp.StatusCode, body)
	}
	if resp, _ := post("acme", `{"op":`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}

	// Status of an unknown job is a 404; the list shows the finished job.
	if resp, err := http.Get(ts.URL + "/no-such-job"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var list jobsDoc
	err = json.NewDecoder(resp2.Body).Decode(&list)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) == 0 || list.Jobs[0].ID != job.ID {
		t.Fatalf("job list: %+v", list.Jobs)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
}

func TestGatewayJobStoreEviction(t *testing.T) {
	exec := &Executor{
		Client:   cluster.NewClient(cluster.ClientConfig{Retries: 0, Backoff: time.Millisecond}),
		Backends: []string{"127.0.0.1:1"},
		Key:      jobTestKey(t),
	}
	g, err := NewGateway(GatewayConfig{
		Schema:  Schema{Rows: 10, Columns: []string{"value"}},
		Exec:    exec,
		Tenants: oneTenant(),
		MaxJobs: 3,
		Logf:    discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var ids []string
	for i := 0; i < 6; i++ {
		job, err := g.Submit("acme", &JobSpec{Op: OpSum, Selection: SelectionSpec{All: true}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waitJob(t, g, job.ID) // finish (fails fast on the dead backend)
		ids = append(ids, job.ID)
	}
	g.mu.Lock()
	stored := len(g.jobs)
	g.mu.Unlock()
	if stored > 3 {
		t.Fatalf("store holds %d jobs, cap 3", stored)
	}
	// The newest job is always retained.
	if _, ok := g.Status(ids[len(ids)-1]); !ok {
		t.Fatal("newest job evicted")
	}
}
