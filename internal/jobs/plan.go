package jobs

import (
	"fmt"
	"math/big"

	"privstats/internal/database"
	"privstats/internal/wire"
)

// Step is one cluster query of a plan: fold the (secret) selection against
// the requested column set in a single uplink.
type Step struct {
	// Label names the step in traces ("sum", "moments", "group3").
	Label string
	// Sel is the selection this step's uplink encrypts.
	Sel *database.Selection
	// Columns is the server-side fold set for the step.
	Columns wire.ColumnSet
	// Group is the group index for per-group steps, -1 otherwise.
	Group int
}

// Plan maps a validated JobSpec onto selected-sum queries plus a local
// finishing computation. Every op costs the fewest uplinks its statistic
// allows: sum/mean/variance/covariance are ONE query each (variance rides
// the paper's one-round two-column fold), groupby is one query per
// non-empty group.
type Plan struct {
	// Op echoes the spec's operation.
	Op string
	// Steps are the cluster queries, run in order.
	Steps []Step
	// Checkpoint, when non-nil, is called with the step label after each
	// successful step — the gateway's journal hook. Steps are read-only
	// against the cluster, so checkpoints gate nothing; they record progress.
	Checkpoint func(step string)
	// finish combines the decrypted per-step sums (sums[i][j] is step i's
	// j'th column, in ascending ColumnSet bit order) into the result.
	finish func(sums [][]*big.Int) (*Result, error)
}

// Result is a job's plaintext outcome. Exact values only: integers are
// decimal strings, ratio statistics are exact rationals rendered as "p/q"
// (big.Rat.RatString), so nothing is rounded before the analyst sees it.
type Result struct {
	Op    string `json:"op"`
	Count int    `json:"count"`
	// Sum is Σx over the selection (sum/mean/variance).
	Sum string `json:"sum,omitempty"`
	// SumSquares is Σx² (variance).
	SumSquares string `json:"sum_squares,omitempty"`
	// Mean is the exact mean (mean/variance).
	Mean string `json:"mean,omitempty"`
	// Variance is the exact population variance (m·Q − S²)/m².
	Variance string `json:"variance,omitempty"`
	// Covariance is the exact population covariance (m·Σxy − Σx·Σy)/m².
	Covariance string `json:"covariance,omitempty"`
	// Groups holds per-group rows for groupby, indexed by group.
	Groups []GroupResult `json:"groups,omitempty"`
}

// GroupResult is one group's row in a groupby result.
type GroupResult struct {
	Group int    `json:"group"`
	Count int    `json:"count"`
	Sum   string `json:"sum"`
	// Mean is empty for groups with no selected rows.
	Mean string `json:"mean,omitempty"`
}

// BuildPlan validates spec against schema and maps it onto steps. The
// returned plan is self-contained: it holds materialized selections and the
// finish arithmetic, so executing it needs only a query runner.
func BuildPlan(spec *JobSpec, schema Schema) (*Plan, error) {
	if err := spec.Validate(schema); err != nil {
		return nil, err
	}
	sel, err := spec.Selection.Build(schema.Rows)
	if err != nil {
		return nil, err
	}
	m := sel.Count()
	bm := big.NewInt(int64(m))

	switch spec.Op {
	case OpSum:
		return &Plan{
			Op:    OpSum,
			Steps: []Step{{Label: "sum", Sel: sel, Columns: wire.ColValue, Group: -1}},
			finish: func(sums [][]*big.Int) (*Result, error) {
				return &Result{Op: OpSum, Count: m, Sum: sums[0][0].String()}, nil
			},
		}, nil

	case OpMean:
		return &Plan{
			Op:    OpMean,
			Steps: []Step{{Label: "mean", Sel: sel, Columns: wire.ColValue, Group: -1}},
			finish: func(sums [][]*big.Int) (*Result, error) {
				s := sums[0][0]
				return &Result{
					Op:    OpMean,
					Count: m,
					Sum:   s.String(),
					Mean:  new(big.Rat).SetFrac(s, bm).RatString(),
				}, nil
			},
		}, nil

	case OpVariance, OpCovariance:
		// One query, two folds: the encrypted selection feeds the value and
		// square columns in a single round. Covariance on this repo's
		// single-column tables is the self-covariance cov(x, x): Σxy = Σx²,
		// so the same step serves both and the identity
		// (m·Σxy − Σx·Σy)/m² degenerates to the variance.
		return &Plan{
			Op:    spec.Op,
			Steps: []Step{{Label: "moments", Sel: sel, Columns: wire.ColValue | wire.ColSquare, Group: -1}},
			finish: func(sums [][]*big.Int) (*Result, error) {
				s, q := sums[0][0], sums[0][1]
				// (m·Q − S²) / m²
				num := new(big.Int).Mul(bm, q)
				num.Sub(num, new(big.Int).Mul(s, s))
				ratio := new(big.Rat).SetFrac(num, new(big.Int).Mul(bm, bm)).RatString()
				res := &Result{Op: spec.Op, Count: m, Sum: s.String(), SumSquares: q.String()}
				if spec.Op == OpVariance {
					res.Mean = new(big.Rat).SetFrac(s, bm).RatString()
					res.Variance = ratio
				} else {
					res.Covariance = ratio
				}
				return res, nil
			},
		}, nil

	case OpGroupBy:
		// One selected-sum query per non-empty group: the secret selection
		// intersected with the (public) group labels. Counts are local
		// knowledge — the gateway authored the selection — so only the sums
		// touch the protocol, mirroring GroupByQuery's per-stratum
		// semantics. Empty groups are filled in at finish time for free.
		p := spec.Params
		groupSels := make([]*database.Selection, p.Groups)
		counts := make([]int, p.Groups)
		for g := range groupSels {
			gs, err := database.NewSelection(schema.Rows)
			if err != nil {
				return nil, err
			}
			groupSels[g] = gs
		}
		for i, g := range p.Labels {
			if sel.Bit(i) == 1 {
				groupSels[g].Set(i)
				counts[g]++
			}
		}
		var steps []Step
		stepGroup := make([]int, 0, p.Groups)
		for g := 0; g < p.Groups; g++ {
			if counts[g] == 0 {
				continue
			}
			steps = append(steps, Step{
				Label:   fmt.Sprintf("group%d", g),
				Sel:     groupSels[g],
				Columns: wire.ColValue,
				Group:   g,
			})
			stepGroup = append(stepGroup, g)
		}
		groups := p.Groups
		return &Plan{
			Op:    OpGroupBy,
			Steps: steps,
			finish: func(sums [][]*big.Int) (*Result, error) {
				res := &Result{Op: OpGroupBy, Count: m, Groups: make([]GroupResult, groups)}
				for g := range res.Groups {
					res.Groups[g] = GroupResult{Group: g, Count: counts[g], Sum: "0"}
				}
				for i, g := range stepGroup {
					s := sums[i][0]
					row := &res.Groups[g]
					row.Sum = s.String()
					row.Mean = new(big.Rat).SetFrac(s, big.NewInt(int64(counts[g]))).RatString()
				}
				return res, nil
			},
		}, nil
	}
	return nil, badJob("op", "unknown op %q", spec.Op)
}
