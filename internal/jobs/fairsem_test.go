package jobs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestFairSemaphoreInterleavesTenants(t *testing.T) {
	f, err := NewFairSemaphore(1)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only slot so every later Acquire queues.
	if err := f.Acquire(context.Background(), "hog", 1); err != nil {
		t.Fatal(err)
	}

	grants := make(chan string, 8)
	var wg sync.WaitGroup
	// The hog floods four waiters first; the mouse arrives last with two.
	// A FIFO semaphore would run all four hog jobs before the mouse; fair
	// queueing starts the mouse's backlog at the current virtual time, so it
	// interleaves ahead of the hog's later grants.
	for i := 0; i < 4; i++ {
		parkOne(t, f, "hog", 1, grants, &wg)
	}
	parkOne(t, f, "mouse", 1, grants, &wg)
	parkOne(t, f, "mouse", 1, grants, &wg)

	var order []string
	for i := 0; i < 6; i++ {
		f.Release()
		order = append(order, <-grants)
	}
	f.Release() // the last grant's slot
	wg.Wait()

	// Tags: hog 1,2,3,4; mouse 0,1 → mouse first, then strict alternation
	// until the mouse drains.
	want := []string{"mouse", "hog", "mouse", "hog", "hog", "hog"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

// parkOne enqueues a waiter and blocks until it is parked in the queue.
func parkOne(t *testing.T, f *FairSemaphore, tenant string, weight int, ch chan string, wg *sync.WaitGroup) {
	t.Helper()
	before := f.Queued()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := f.Acquire(context.Background(), tenant, weight); err != nil {
			t.Errorf("Acquire(%s): %v", tenant, err)
			return
		}
		ch <- tenant
	}()
	deadline := time.Now().Add(2 * time.Second)
	for f.Queued() <= before {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFairSemaphoreWeights(t *testing.T) {
	f, err := NewFairSemaphore(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Acquire(context.Background(), "seed", 1); err != nil {
		t.Fatal(err)
	}
	grants := make(chan string, 8)
	var wg sync.WaitGroup
	// heavy (weight 2) parks four waiters, light (weight 1) two: under
	// saturation heavy should receive grants at twice light's rate.
	for i := 0; i < 4; i++ {
		parkOne(t, f, "heavy", 2, grants, &wg)
	}
	parkOne(t, f, "light", 1, grants, &wg)
	parkOne(t, f, "light", 1, grants, &wg)

	var order []string
	for i := 0; i < 6; i++ {
		f.Release()
		order = append(order, <-grants)
	}
	f.Release()
	wg.Wait()

	// heavy tags: 0, 0.5, 1, 1.5; light tags: 0, 1. Arrival order breaks the
	// ties at 0 and 1 in heavy's favour — heavy gets 2 of every 3 grants.
	want := []string{"heavy", "light", "heavy", "heavy", "light", "heavy"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestFairSemaphoreCancel(t *testing.T) {
	f, err := NewFairSemaphore(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Acquire(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- f.Acquire(ctx, "b", 1) }()
	deadline := time.Now().Add(2 * time.Second)
	for f.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Acquire returned %v", err)
	}
	if f.Queued() != 0 {
		t.Fatalf("cancelled waiter still queued")
	}
	// The slot is still usable.
	f.Release()
	if err := f.Acquire(context.Background(), "c", 1); err != nil {
		t.Fatal(err)
	}
	f.Release()
}

func TestFairSemaphoreValidation(t *testing.T) {
	if _, err := NewFairSemaphore(0); err == nil {
		t.Fatal("zero slots accepted")
	}
	f, _ := NewFairSemaphore(1)
	if err := f.Acquire(context.Background(), "a", 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	f.Release()
}
