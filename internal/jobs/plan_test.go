package jobs

import (
	"math/big"
	"testing"

	"privstats/internal/wire"
)

func sums(vals ...int64) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = big.NewInt(v)
	}
	return out
}

func TestBuildPlanSumAndMean(t *testing.T) {
	spec := &JobSpec{Op: OpSum, Selection: SelectionSpec{Rows: []int{0, 2, 4}}}
	plan, err := BuildPlan(spec, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Columns != wire.ColValue {
		t.Fatalf("sum plan steps %+v", plan.Steps)
	}
	res, err := plan.finish([][]*big.Int{sums(42)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != "42" || res.Count != 3 {
		t.Fatalf("sum result %+v", res)
	}

	spec.Op = OpMean
	plan, err = BuildPlan(spec, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	res, err = plan.finish([][]*big.Int{sums(10)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != "10/3" {
		t.Fatalf("mean %q, want 10/3", res.Mean)
	}
}

func TestBuildPlanVariance(t *testing.T) {
	// Rows {0,1,2,3}: one query folding value AND square columns.
	spec := &JobSpec{Op: OpVariance, Selection: SelectionSpec{Ranges: [][2]int{{0, 4}}}}
	plan, err := BuildPlan(spec, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 {
		t.Fatalf("variance wants ONE query, got %d", len(plan.Steps))
	}
	if plan.Steps[0].Columns != wire.ColValue|wire.ColSquare {
		t.Fatalf("variance columns %v", plan.Steps[0].Columns)
	}
	// Values 1,2,3,4: S=10, Q=30, var = (4·30 − 100)/16 = 20/16 = 5/4.
	res, err := plan.finish([][]*big.Int{sums(10, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variance != "5/4" || res.Mean != "5/2" || res.SumSquares != "30" {
		t.Fatalf("variance result %+v", res)
	}

	// Self-covariance degenerates to the same identity.
	spec.Op = OpCovariance
	spec.Columns = []string{"value", "value"}
	plan, err = BuildPlan(spec, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	res, err = plan.finish([][]*big.Int{sums(10, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covariance != "5/4" {
		t.Fatalf("covariance %q, want 5/4", res.Covariance)
	}
}

func TestBuildPlanGroupBy(t *testing.T) {
	// 10 rows, labels alternate 0/1/2; select rows 0..5. Group 2 gets rows
	// {2, 5}, group 0 {0, 3}, group 1 {1, 4}. Then restrict the selection so
	// one group is empty.
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	spec := &JobSpec{
		Op:        OpGroupBy,
		Selection: SelectionSpec{Ranges: [][2]int{{0, 2}}}, // rows 0,1 → groups 0,1
		Params:    &GroupByParams{Labels: labels, Groups: 3},
	}
	plan, err := BuildPlan(spec, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("expected 2 non-empty groups, got %d steps", len(plan.Steps))
	}
	for _, st := range plan.Steps {
		if st.Columns != wire.ColValue || st.Group < 0 {
			t.Fatalf("step %+v", st)
		}
	}
	res, err := plan.finish([][]*big.Int{sums(7), sums(9)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("groups %+v", res.Groups)
	}
	if res.Groups[0].Sum != "7" || res.Groups[0].Count != 1 || res.Groups[0].Mean != "7" {
		t.Fatalf("group 0: %+v", res.Groups[0])
	}
	if res.Groups[1].Sum != "9" {
		t.Fatalf("group 1: %+v", res.Groups[1])
	}
	if res.Groups[2].Sum != "0" || res.Groups[2].Count != 0 || res.Groups[2].Mean != "" {
		t.Fatalf("empty group 2: %+v", res.Groups[2])
	}
}

func TestBuildPlanRejectsBadSpec(t *testing.T) {
	if _, err := BuildPlan(&JobSpec{Op: "median", Selection: SelectionSpec{All: true}}, testSchema()); err == nil {
		t.Fatal("BuildPlan accepted an invalid spec")
	}
}
