package jobs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func testSchema() Schema {
	return Schema{Rows: 10, Columns: []string{"value"}}
}

func TestDecodeJobSpec(t *testing.T) {
	spec, err := DecodeJobSpec([]byte(`{"op":"sum","selection":{"all":true}}`))
	if err != nil {
		t.Fatalf("DecodeJobSpec: %v", err)
	}
	if spec.Op != OpSum || !spec.Selection.All {
		t.Fatalf("decoded %+v", spec)
	}

	cases := []struct {
		name string
		in   string
	}{
		{"empty", ``},
		{"not json", `{"op":`},
		{"unknown field", `{"op":"sum","bogus":1}`},
		{"trailing data", `{"op":"sum"}{"op":"sum"}`},
		{"wrong type", `{"op":42}`},
	}
	for _, tc := range cases {
		if _, err := DecodeJobSpec([]byte(tc.in)); err == nil {
			t.Errorf("%s: DecodeJobSpec accepted %q", tc.name, tc.in)
		}
	}
}

func TestDecodeJobSpecSizeCap(t *testing.T) {
	huge := `{"op":"sum","selection":{"rows":[` + strings.Repeat("1,", MaxSpecBytes/2) + `1]}}`
	if _, err := DecodeJobSpec([]byte(huge)); err == nil {
		t.Fatal("oversized spec accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	all := SelectionSpec{All: true}
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	cases := []struct {
		name  string
		spec  JobSpec
		field string
	}{
		{"unknown op", JobSpec{Op: "median", Selection: all}, "op"},
		{"empty op", JobSpec{Selection: all}, "op"},
		{"unknown column", JobSpec{Op: OpSum, Columns: []string{"zip"}, Selection: all}, "columns[0]"},
		{"too many columns", JobSpec{Op: OpSum, Columns: []string{"value", "value"}, Selection: all}, "columns"},
		{"covariance one column", JobSpec{Op: OpCovariance, Columns: []string{"value"}, Selection: all}, "columns"},
		{"no selection", JobSpec{Op: OpSum}, "selection"},
		{"two selection forms", JobSpec{Op: OpSum, Selection: SelectionSpec{All: true, Rows: []int{1}}}, "selection"},
		{"row out of range", JobSpec{Op: OpSum, Selection: SelectionSpec{Rows: []int{10}}}, "selection.rows[0]"},
		{"negative row", JobSpec{Op: OpSum, Selection: SelectionSpec{Rows: []int{-1}}}, "selection.rows[0]"},
		{"inverted range", JobSpec{Op: OpSum, Selection: SelectionSpec{Ranges: [][2]int{{5, 3}}}}, "selection.ranges[0]"},
		{"range past end", JobSpec{Op: OpSum, Selection: SelectionSpec{Ranges: [][2]int{{0, 11}}}}, "selection.ranges[0]"},
		{"mean of nothing", JobSpec{Op: OpMean, Selection: SelectionSpec{Ranges: [][2]int{{3, 3}}}}, "selection"},
		{"variance of nothing", JobSpec{Op: OpVariance, Selection: SelectionSpec{Ranges: [][2]int{{3, 3}}}}, "selection"},
		{"groupby no params", JobSpec{Op: OpGroupBy, Selection: all}, "params"},
		{"groupby zero groups", JobSpec{Op: OpGroupBy, Selection: all, Params: &GroupByParams{Labels: labels}}, "params.groups"},
		{"groupby too many groups", JobSpec{Op: OpGroupBy, Selection: all, Params: &GroupByParams{Labels: labels, Groups: MaxGroups + 1}}, "params.groups"},
		{"groupby short labels", JobSpec{Op: OpGroupBy, Selection: all, Params: &GroupByParams{Labels: []int{0, 1}, Groups: 2}}, "params.labels"},
		{"groupby label out of range", JobSpec{Op: OpGroupBy, Selection: all, Params: &GroupByParams{Labels: labels, Groups: 1}}, "params.labels"},
		{"params on sum", JobSpec{Op: OpSum, Selection: all, Params: &GroupByParams{Labels: labels, Groups: 2}}, "params"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate(testSchema())
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.spec)
			continue
		}
		var bad *BadJobError
		if !errors.As(err, &bad) {
			t.Errorf("%s: error %v is not a BadJobError", tc.name, err)
			continue
		}
		if bad.Field != tc.field {
			t.Errorf("%s: field %q, want %q (%v)", tc.name, bad.Field, tc.field, err)
		}
		if !strings.HasPrefix(err.Error(), "[bad-job] ") {
			t.Errorf("%s: error %q lacks [bad-job] code", tc.name, err)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	good := []JobSpec{
		{Op: OpSum, Selection: SelectionSpec{All: true}},
		{Op: OpSum, Columns: []string{"value"}, Selection: SelectionSpec{Rows: []int{0, 9}}},
		{Op: OpSum, Selection: SelectionSpec{Ranges: [][2]int{{3, 3}}}}, // empty sum is 0
		{Op: OpMean, Selection: SelectionSpec{Ranges: [][2]int{{0, 5}}}},
		{Op: OpVariance, Selection: SelectionSpec{Ranges: [][2]int{{0, 5}, {7, 10}}}},
		{Op: OpCovariance, Columns: []string{"value", "value"}, Selection: SelectionSpec{All: true}},
		{Op: OpGroupBy, Selection: SelectionSpec{All: true}, Params: &GroupByParams{Labels: labels, Groups: 2}},
	}
	for i, spec := range good {
		if err := spec.Validate(testSchema()); err != nil {
			t.Errorf("spec %d: Validate rejected: %v", i, err)
		}
	}
}

func TestSelectionBuild(t *testing.T) {
	sel, err := (&SelectionSpec{Rows: []int{1, 3, 3, 5}}).Build(8)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count() != 3 {
		t.Fatalf("count %d, want 3 (duplicates are idempotent)", sel.Count())
	}
	sel, err = (&SelectionSpec{Ranges: [][2]int{{0, 4}, {2, 6}}}).Build(8)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count() != 6 {
		t.Fatalf("count %d, want 6 (overlap is idempotent)", sel.Count())
	}
	sel, err = (&SelectionSpec{All: true}).Build(8)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count() != 8 {
		t.Fatalf("count %d, want 8", sel.Count())
	}
}

// FuzzDecodeJobSpec asserts the decode → validate → re-encode path never
// panics and that accepted specs survive a JSON round trip.
func FuzzDecodeJobSpec(f *testing.F) {
	f.Add([]byte(`{"op":"sum","selection":{"all":true}}`))
	f.Add([]byte(`{"op":"mean","columns":["value"],"selection":{"rows":[0,1,2]}}`))
	f.Add([]byte(`{"op":"variance","selection":{"ranges":[[0,5]]}}`))
	f.Add([]byte(`{"op":"groupby","selection":{"all":true},"params":{"labels":[0,1,0,1,0,1,0,1,0,1],"groups":2}}`))
	f.Add([]byte(`{"op":"covariance","columns":["value","value"],"selection":{"all":true}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"op":"sum","selection":{"rows":[-1]}}`))

	schema := Schema{Rows: 10, Columns: []string{"value"}}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(data)
		if err != nil {
			return
		}
		verr := spec.Validate(schema) // must not panic
		blob, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := DecodeJobSpec(blob)
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if verr == nil {
			if err := again.Validate(schema); err != nil {
				t.Fatalf("round trip changed validity: %v", err)
			}
			if _, err := BuildPlan(spec, schema); err != nil {
				t.Fatalf("valid spec failed to plan: %v", err)
			}
		}
	})
}
