package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/database"
	"privstats/internal/durable"
	"privstats/internal/trace"
)

// journalRecs writes a hand-crafted journal under dir, simulating the state
// a killed gateway leaves behind.
func journalRecs(t *testing.T, dir string, recs ...any) {
	t.Helper()
	j, _, err := durable.Open(filepath.Join(dir, journalName), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, r := range recs {
		var typ byte
		switch r.(type) {
		case submittedRec:
			typ = recSubmitted
		case startedRec:
			typ = recStarted
		case stepRec:
			typ = recStep
		case finishedRec:
			typ = recFinished
		default:
			t.Fatalf("unknown record %T", r)
		}
		payload, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(typ, payload); err != nil {
			t.Fatal(err)
		}
	}
}

func recoveryGateway(t *testing.T, dir, addr string, n int, timeout time.Duration) (*Gateway, error) {
	t.Helper()
	return NewGateway(GatewayConfig{
		Schema:     Schema{Rows: n, Columns: []string{"value"}},
		Exec:       testExecutor(t, addr),
		Tenants:    oneTenant(),
		Slots:      2,
		JobTimeout: timeout,
		StoreDir:   dir,
		Logf:       discardLogf,
	})
}

// TestGatewayRecoveryFinishedVerbatim: jobs that completed before the
// restart come back from the journal exactly as they finished — same ID,
// state, and result — across two consecutive restarts (the second exercises
// the compacted journal).
func TestGatewayRecoveryFinishedVerbatim(t *testing.T) {
	const n = 24
	table, err := database.Generate(n, database.DistUniform, 11)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startJobCluster(t, table, 2)
	dir := t.TempDir()

	g, err := recoveryGateway(t, dir, addr, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	job, err := g.Submit("acme", &JobSpec{Op: OpSum, Selection: SelectionSpec{All: true}})
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, g, job.ID)
	if done.State != StateDone {
		t.Fatalf("job failed before restart: %s", done.Error)
	}
	g.Close()

	for restart := 1; restart <= 2; restart++ {
		g, err = recoveryGateway(t, dir, addr, n, 0)
		if err != nil {
			t.Fatalf("restart %d: %v", restart, err)
		}
		got, ok := g.Status(job.ID)
		if !ok {
			t.Fatalf("restart %d: finished job not restored", restart)
		}
		if got.State != StateDone || got.Result == nil || got.Result.Sum != done.Result.Sum {
			t.Fatalf("restart %d: restored job %+v, want verbatim %+v", restart, got, done)
		}
		if !got.Finished.Equal(done.Finished) {
			t.Fatalf("restart %d: finished time %v, want %v", restart, got.Finished, done.Finished)
		}
		m := g.Metrics()
		if m.Recovered.Value() != 1 || m.ReplayedBytes.Value() == 0 {
			t.Fatalf("restart %d: recovered=%d replayed=%d", restart, m.Recovered.Value(), m.ReplayedBytes.Value())
		}
		if m.TornTail.Value() != 0 {
			t.Fatalf("restart %d: clean journal reported torn tail", restart)
		}
		g.Close()
	}
}

// TestGatewayRecoveryReexecutesMidFlight: a job journaled as submitted (and
// even started, steps in) but never finished is re-planned and re-executed
// after restart, ending with the exact oracle statistic — never a partial
// result.
func TestGatewayRecoveryReexecutesMidFlight(t *testing.T) {
	const n = 30
	table, err := database.Generate(n, database.DistUniform, 23)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startJobCluster(t, table, 2)
	dir := t.TempDir()

	spec := JobSpec{Op: OpSum, Selection: SelectionSpec{Ranges: [][2]int{{2, 19}}}}
	raw, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	id := trace.NewID().String()
	now := time.Now()
	journalRecs(t, dir,
		submittedRec{ID: id, Tenant: "acme", Op: OpSum, Submitted: now, Spec: raw},
		startedRec{ID: id, Started: now},
		stepRec{ID: id, Step: "sum"},
	)

	g, err := recoveryGateway(t, dir, addr, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	done := waitJob(t, g, id)
	if done.State != StateDone {
		t.Fatalf("re-executed job failed: %s", done.Error)
	}
	sel, err := (&spec.Selection).Build(n)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := table.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}
	if done.Result.Sum != oracle.String() {
		t.Fatalf("re-executed sum %s, oracle %s", done.Result.Sum, oracle)
	}
	if g.Metrics().Recovered.Value() != 1 {
		t.Fatalf("recovered counter %d", g.Metrics().Recovered.Value())
	}
}

// TestGatewayRecoveryClassifiesInterrupted: mid-flight jobs that cannot be
// safely re-executed — past their deadline, unknown tenant, unplannable
// spec — fail cleanly with the [interrupted] code instead of resurrecting
// as wrong or immortal work.
func TestGatewayRecoveryClassifiesInterrupted(t *testing.T) {
	const n = 10
	addr := "127.0.0.1:1" // never dialed: every recovered job is classified
	raw := json.RawMessage(`{"op":"sum","selection":{"all":true}}`)
	old := time.Now().Add(-time.Hour)

	cases := []struct {
		name string
		rec  submittedRec
	}{
		{"past-deadline", submittedRec{ID: trace.NewID().String(), Tenant: "acme", Op: OpSum, Submitted: old, Spec: raw}},
		{"unknown-tenant", submittedRec{ID: trace.NewID().String(), Tenant: "ghost", Op: OpSum, Submitted: time.Now(), Spec: raw}},
		{"unplannable", submittedRec{ID: trace.NewID().String(), Tenant: "acme", Op: OpSum, Submitted: time.Now(),
			Spec: json.RawMessage(`{"op":"sum","selection":{"ranges":[[0,99]]}}`)}},
		{"no-spec", submittedRec{ID: trace.NewID().String(), Tenant: "acme", Op: OpSum, Submitted: time.Now()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			journalRecs(t, dir, tc.rec, startedRec{ID: tc.rec.ID, Started: tc.rec.Submitted})
			g, err := recoveryGateway(t, dir, addr, n, time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			got, ok := g.Status(tc.rec.ID)
			if !ok {
				t.Fatal("job not restored")
			}
			if got.State != StateFailed || !strings.HasPrefix(got.Error, CodeInterrupted) {
				t.Fatalf("job %+v, want failed with %s code", got, CodeInterrupted)
			}
			// The classification is itself durable: a second restart restores
			// the same failure instead of re-classifying.
			g.Close()
			g2, err := recoveryGateway(t, dir, addr, n, time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			defer g2.Close()
			again, ok := g2.Status(tc.rec.ID)
			if !ok || again.State != StateFailed || again.Error != got.Error {
				t.Fatalf("reclassified across restarts: %+v vs %+v", again, got)
			}
		})
	}
}

// TestGatewayRecoveryTornTail: a journal cut mid-record restores every job
// before the cut and surfaces the torn tail in the counters.
func TestGatewayRecoveryTornTail(t *testing.T) {
	const n = 10
	dir := t.TempDir()
	raw := json.RawMessage(`{"op":"sum","selection":{"all":true}}`)
	old := time.Now().Add(-time.Hour)
	idA := trace.NewID().String()
	idB := trace.NewID().String()
	journalRecs(t, dir,
		submittedRec{ID: idA, Tenant: "acme", Op: OpSum, Submitted: old, Spec: raw},
		submittedRec{ID: idB, Tenant: "acme", Op: OpSum, Submitted: old, Spec: raw},
	)
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the second record: job A survives, job B's
	// half-written acknowledgment is dropped, and the tail is counted.
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	g, err := recoveryGateway(t, dir, "127.0.0.1:1", n, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, ok := g.Status(idA); !ok {
		t.Fatal("job before the tear not restored")
	}
	if _, ok := g.Status(idB); ok {
		t.Fatal("half-written job resurrected from the torn tail")
	}
	m := g.Metrics()
	if m.TornTail.Value() != 1 || m.Recovered.Value() != 1 {
		t.Fatalf("torn=%d recovered=%d", m.TornTail.Value(), m.Recovered.Value())
	}
}

// TestGatewayRejectsBadStore: an unusable store directory or a corrupt
// journal header stops gateway construction — the operator finds out before
// any socket opens, not after jobs silently land in a black hole.
func TestGatewayRejectsBadStore(t *testing.T) {
	const n = 10
	addr := "127.0.0.1:1"

	// Store path is an existing file, not a directory.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := recoveryGateway(t, file, addr, n, 0); err == nil {
		t.Fatal("file-as-store-dir accepted")
	}

	// Journal file exists but was never a journal of ours.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte("hello, I am a text file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := recoveryGateway(t, dir, addr, n, 0); err == nil {
		t.Fatal("corrupt journal accepted")
	}
}

// TestGatewayOrderCompaction is the regression test for the insertion-order
// slice: under sustained submit-and-finish load with a small store cap, the
// order slice must track the live job count instead of growing without
// bound.
func TestGatewayOrderCompaction(t *testing.T) {
	exec := &Executor{
		Client:   cluster.NewClient(cluster.ClientConfig{Retries: 0, Backoff: time.Millisecond}),
		Backends: []string{"127.0.0.1:1"},
		Key:      jobTestKey(t),
	}
	g, err := NewGateway(GatewayConfig{
		Schema:  Schema{Rows: 10, Columns: []string{"value"}},
		Exec:    exec,
		Tenants: oneTenant(),
		MaxJobs: 3,
		Logf:    discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for i := 0; i < 50; i++ {
		job, err := g.Submit("acme", &JobSpec{Op: OpSum, Selection: SelectionSpec{All: true}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waitJob(t, g, job.ID)
		g.mu.Lock()
		orderLen, jobsLen, specsLen := len(g.order), len(g.jobs), len(g.specs)
		g.mu.Unlock()
		if orderLen != jobsLen {
			t.Fatalf("submit %d: order slice %d entries, %d live jobs", i, orderLen, jobsLen)
		}
		if jobsLen > 3 {
			t.Fatalf("submit %d: store holds %d jobs, cap 3", i, jobsLen)
		}
		if specsLen > jobsLen {
			t.Fatalf("submit %d: %d retained specs for %d jobs", i, specsLen, jobsLen)
		}
	}
}

// TestGatewayJournalCompaction: evicted jobs' journal records are dropped
// once enough accumulate, so the on-disk journal stays proportional to the
// store instead of growing with total job throughput.
func TestGatewayJournalCompaction(t *testing.T) {
	exec := &Executor{
		Client:   cluster.NewClient(cluster.ClientConfig{Retries: 0, Backoff: time.Millisecond}),
		Backends: []string{"127.0.0.1:1"},
		Key:      jobTestKey(t),
	}
	dir := t.TempDir()
	g, err := NewGateway(GatewayConfig{
		Schema:   Schema{Rows: 10, Columns: []string{"value"}},
		Exec:     exec,
		Tenants:  oneTenant(),
		MaxJobs:  4,
		StoreDir: dir,
		Logf:     discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Enough finished-then-evicted jobs to cross the compaction threshold.
	for i := 0; i < compactThreshold+20; i++ {
		job, err := g.Submit("acme", &JobSpec{Op: OpSum, Selection: SelectionSpec{All: true}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waitJob(t, g, job.ID)
	}
	// Replaying the journal now must see roughly the retained store, not the
	// full submission history.
	var recs int
	g.walMu.Lock()
	path := g.wal.Path()
	g.walMu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := durable.Replay(f, func(byte, []byte) error { recs++; return nil }); err != nil {
		t.Fatal(err)
	}
	// 4 retained jobs × ≤2 records each, plus up to one uncompacted
	// threshold's worth of fresh records.
	if recs > 3*compactThreshold {
		t.Fatalf("journal holds %d records after compaction, want bounded", recs)
	}
	if recs < 4 {
		t.Fatalf("journal holds only %d records, retained jobs missing", recs)
	}
}
