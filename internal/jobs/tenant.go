package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Tenant is one analyst identity's admission policy, operator-configured.
type Tenant struct {
	// Name identifies the tenant (the X-Tenant submit header).
	Name string `json:"name"`
	// Weight is the fair-share weight: with the gateway saturated, tenants
	// get execution slots in proportion to their weights.
	Weight int `json:"weight"`
	// Rate is the token-bucket refill in submissions per second.
	Rate float64 `json:"rate"`
	// Burst is the bucket capacity: how many submissions can arrive
	// back-to-back before the rate limit bites.
	Burst float64 `json:"burst"`
	// MaxQueued caps the tenant's admitted-but-unfinished jobs; past it,
	// submissions are rejected instead of queued without bound.
	MaxQueued int `json:"max_queued"`
}

// Validate rejects non-positive policy knobs — the zero value is an
// operator mistake, never a default.
func (t Tenant) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("jobs: tenant with empty name")
	}
	if t.Weight <= 0 {
		return fmt.Errorf("jobs: tenant %s: weight %d must be positive", t.Name, t.Weight)
	}
	if t.Rate <= 0 {
		return fmt.Errorf("jobs: tenant %s: rate %g must be positive", t.Name, t.Rate)
	}
	if t.Burst <= 0 {
		return fmt.Errorf("jobs: tenant %s: burst %g must be positive", t.Name, t.Burst)
	}
	if t.MaxQueued <= 0 {
		return fmt.Errorf("jobs: tenant %s: max_queued %d must be positive", t.Name, t.MaxQueued)
	}
	return nil
}

// LoadTenants reads a tenant config file: a JSON array of Tenant objects.
// Every entry is validated; duplicates are rejected.
func LoadTenants(path string) ([]Tenant, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("jobs: reading tenant config: %w", err)
	}
	var tenants []Tenant
	if err := json.Unmarshal(data, &tenants); err != nil {
		return nil, fmt.Errorf("jobs: parsing tenant config %s: %w", path, err)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("jobs: tenant config %s declares no tenants", path)
	}
	seen := make(map[string]bool, len(tenants))
	for _, t := range tenants {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("jobs: duplicate tenant %s", t.Name)
		}
		seen[t.Name] = true
	}
	return tenants, nil
}

// tenantState is one tenant's runtime admission state: config plus the
// token bucket.
type tenantState struct {
	cfg Tenant

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// takeToken refills by elapsed wall time and consumes one token, reporting
// whether the submission is within quota.
func (s *tenantState) takeToken(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last.IsZero() {
		s.tokens = s.cfg.Burst
	} else if dt := now.Sub(s.last).Seconds(); dt > 0 {
		s.tokens += dt * s.cfg.Rate
		if s.tokens > s.cfg.Burst {
			s.tokens = s.cfg.Burst
		}
	}
	s.last = now
	if s.tokens < 1 {
		return false
	}
	s.tokens--
	return true
}

// tenantSet indexes tenant runtime state by name.
type tenantSet struct {
	m map[string]*tenantState
}

func newTenantSet(tenants []Tenant) (*tenantSet, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("jobs: no tenants configured")
	}
	set := &tenantSet{m: make(map[string]*tenantState, len(tenants))}
	for _, t := range tenants {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if _, dup := set.m[t.Name]; dup {
			return nil, fmt.Errorf("jobs: duplicate tenant %s", t.Name)
		}
		set.m[t.Name] = &tenantState{cfg: t}
	}
	return set, nil
}

func (s *tenantSet) lookup(name string) (*tenantState, bool) {
	t, ok := s.m[name]
	return t, ok
}
