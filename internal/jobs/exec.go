package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strconv"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/homomorphic"
	"privstats/internal/trace"
	"privstats/internal/wire"
)

// Executor runs plans against a cluster (or single-server) endpoint through
// the fan-out client, so every step inherits its retry, failover, and hedge
// policy. The executor is the analyst side: it holds the private key,
// encrypts selections on the way out, and decrypts sums on the way in —
// ciphertext never appears in a job result.
type Executor struct {
	// Client is the fan-out client (required).
	Client *cluster.Client
	// Backends is the failover list of aggregator (or server) addresses.
	Backends []string
	// Key is the analyst key pair (required).
	Key homomorphic.PrivateKey
	// ChunkSize batches the index stream; 0 sends one chunk.
	ChunkSize int
	// Pool supplies preprocessed bit encryptions; nil encrypts online.
	Pool homomorphic.EncryptorPool
	// Traces, when non-nil, records one gateway-side trace per job under
	// the job's ID — the same ID every hop of the fan-out records under.
	Traces *trace.Recorder
}

// validate checks the executor's wiring at construction time.
func (e *Executor) validate() error {
	if e == nil {
		return errors.New("jobs: nil executor")
	}
	if e.Client == nil {
		return errors.New("jobs: executor needs a cluster client")
	}
	if len(e.Backends) == 0 {
		return errors.New("jobs: executor needs at least one backend")
	}
	if e.Key == nil {
		return errors.New("jobs: executor needs a private key")
	}
	return nil
}

// Run executes the plan's steps in order, tagging every query with id, and
// finishes the result locally. A failed step fails the whole job — never a
// partial result, mirroring the aggregator's all-or-nothing contract.
func (e *Executor) Run(ctx context.Context, plan *Plan, id trace.ID) (res *Result, err error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	if plan == nil {
		return nil, errors.New("jobs: nil plan")
	}
	tr := trace.New("")
	tr.SetID(id)
	tr.SetRole("gateway")
	tr.Annotate("op", plan.Op)
	tr.Annotate("steps", strconv.Itoa(len(plan.Steps)))
	defer func() {
		tr.Finish(err)
		e.Traces.Add(tr)
	}()

	// A variance fold needs the plaintext space to hold Σx² ≈ n·2⁶⁴; guard
	// before querying so a too-small key fails loudly instead of wrapping
	// mod N into a silently wrong statistic.
	pk := e.Key.PublicKey()
	for _, st := range plan.Steps {
		if st.Columns.Has(wire.ColSquare) {
			bound := new(big.Int).Lsh(big.NewInt(int64(st.Sel.Len())), 64)
			if bound.Cmp(pk.PlaintextSpace()) >= 0 {
				return nil, fmt.Errorf("jobs: plaintext space too small for Σx² over %d rows", st.Sel.Len())
			}
		}
	}

	sums := make([][]*big.Int, len(plan.Steps))
	for i, st := range plan.Steps {
		start := time.Now()
		got, qerr := e.Client.QueryColumns(ctx, e.Backends, e.Key, cluster.QuerySpec{
			Sel:       st.Sel,
			ChunkSize: e.ChunkSize,
			Pool:      e.Pool,
			Columns:   st.Columns,
			TraceID:   [16]byte(id),
		})
		attrs := map[string]string{
			"columns":  st.Columns.String(),
			"selected": strconv.Itoa(st.Sel.Count()),
		}
		if qerr != nil {
			attrs["error"] = qerr.Error()
		}
		tr.Observe(st.Label, start, time.Since(start), attrs)
		if qerr != nil {
			return nil, fmt.Errorf("jobs: step %s: %w", st.Label, qerr)
		}
		sums[i] = got
		if plan.Checkpoint != nil {
			plan.Checkpoint(st.Label)
		}
	}
	return plan.finish(sums)
}
