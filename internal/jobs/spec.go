// Package jobs is the declarative stats-job gateway: a JSON JobSpec names a
// statistic (the paper's "means, variances, and weighted averages" made
// concrete), Validate checks it against the served table's schema, Plan maps
// it onto one or more multi-column selected-sum queries, and Execute runs
// the plan against the cluster client under one trace ID. A tenant layer —
// token-bucket submission quotas plus weighted fair-share admission to the
// execution slots — keeps one saturating analyst from starving the rest.
//
// Privacy contract: a JobSpec carries the analyst's op and selection in the
// clear because the gateway IS the analyst side — it holds the private key
// and encrypts the selection before anything leaves the process. Job
// statuses carry only plaintext aggregates the analyst is entitled to;
// neither specs nor statuses ever carry ciphertext.
package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"privstats/internal/database"
)

// MaxSpecBytes bounds an encoded JobSpec. A million-row explicit row list is
// ~8 MB of JSON; 16 MB leaves headroom while rejecting absurd submissions
// before they are parsed.
const MaxSpecBytes = 16 << 20

// Job operations.
const (
	OpSum        = "sum"
	OpMean       = "mean"
	OpVariance   = "variance"
	OpCovariance = "covariance"
	OpGroupBy    = "groupby"
)

// BadJobError is a structured validation rejection: Field names the spec
// path that failed, Reason says why. It renders with the "[bad-job]" code so
// clients can classify without parsing prose.
type BadJobError struct {
	Field  string
	Reason string
}

func (e *BadJobError) Error() string {
	return fmt.Sprintf("[bad-job] %s: %s", e.Field, e.Reason)
}

func badJob(field, format string, args ...any) error {
	return &BadJobError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Schema describes the table a gateway serves, for validation: the row
// count and the column names selectable in a spec. The single-column tables
// of this repo publish Columns = ["value"].
type Schema struct {
	Rows    int
	Columns []string
}

// HasColumn reports whether name is a served column.
func (s Schema) HasColumn(name string) bool {
	for _, c := range s.Columns {
		if c == name {
			return true
		}
	}
	return false
}

// JobSpec is one declarative statistics job.
type JobSpec struct {
	// Op is one of sum, mean, variance, covariance, groupby.
	Op string `json:"op"`
	// Columns names the value columns the op reads. Empty defaults to the
	// schema's first column; covariance takes two names (a pair naming the
	// same column computes the self-covariance, i.e. the variance).
	Columns []string `json:"columns,omitempty"`
	// Selection picks the rows the statistic ranges over.
	Selection SelectionSpec `json:"selection"`
	// Params carries op-specific parameters (group-by labels).
	Params *GroupByParams `json:"params,omitempty"`
}

// SelectionSpec picks rows: exactly one of All, Rows, or Ranges must be set.
type SelectionSpec struct {
	// All selects every row.
	All bool `json:"all,omitempty"`
	// Rows lists selected row indices.
	Rows []int `json:"rows,omitempty"`
	// Ranges lists half-open [lo, hi) index ranges.
	Ranges [][2]int `json:"ranges,omitempty"`
}

// GroupByParams parameterizes the groupby op. The labels are public schema
// (the server-side strata); only the selection is secret.
type GroupByParams struct {
	// Labels assigns row i to group Labels[i] in [0, Groups).
	Labels []int `json:"labels"`
	// Groups is the number of groups.
	Groups int `json:"groups"`
}

// MaxGroups bounds a groupby fan-out: each non-empty group costs one
// cluster query, so the cap keeps one spec from launching an unbounded
// query storm.
const MaxGroups = 256

// DecodeJobSpec parses a JSON JobSpec, rejecting unknown fields, trailing
// data, and oversized payloads. Every failure is a *BadJobError.
func DecodeJobSpec(data []byte) (*JobSpec, error) {
	if len(data) > MaxSpecBytes {
		return nil, badJob("spec", "encoded spec is %d bytes (limit %d)", len(data), MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, badJob("spec", "bad JSON: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return nil, badJob("spec", "trailing data after spec")
	}
	return &spec, nil
}

// Validate checks the spec against the schema. It returns nil or a
// *BadJobError naming the offending field.
func (s *JobSpec) Validate(schema Schema) error {
	if schema.Rows <= 0 || len(schema.Columns) == 0 {
		return badJob("schema", "gateway serves no table")
	}
	switch s.Op {
	case OpSum, OpMean, OpVariance, OpCovariance, OpGroupBy:
	case "":
		return badJob("op", "missing")
	default:
		return badJob("op", "unknown op %q", s.Op)
	}

	for i, c := range s.Columns {
		if !schema.HasColumn(c) {
			return badJob(fmt.Sprintf("columns[%d]", i), "unknown column %q", c)
		}
	}
	if s.Op == OpCovariance {
		if len(s.Columns) != 0 && len(s.Columns) != 2 {
			return badJob("columns", "covariance takes two columns, got %d", len(s.Columns))
		}
	} else if len(s.Columns) > 1 {
		return badJob("columns", "%s takes one column, got %d", s.Op, len(s.Columns))
	}

	if err := s.Selection.validate(schema.Rows); err != nil {
		return err
	}
	m := s.Selection.count(schema.Rows)
	if m == 0 && s.Op != OpSum && s.Op != OpGroupBy {
		// Sum over nothing is 0 and a group-by reports empty groups; the
		// ratio statistics are undefined on zero rows.
		return badJob("selection", "%s is undefined on an empty selection", s.Op)
	}

	if s.Op == OpGroupBy {
		p := s.Params
		if p == nil {
			return badJob("params", "groupby requires labels and groups")
		}
		if p.Groups <= 0 {
			return badJob("params.groups", "must be positive, got %d", p.Groups)
		}
		if p.Groups > MaxGroups {
			return badJob("params.groups", "%d exceeds the %d-group cap", p.Groups, MaxGroups)
		}
		if len(p.Labels) != schema.Rows {
			return badJob("params.labels", "%d labels for a %d-row table", len(p.Labels), schema.Rows)
		}
		for i, l := range p.Labels {
			if l < 0 || l >= p.Groups {
				return badJob("params.labels", "labels[%d] = %d outside [0, %d)", i, l, p.Groups)
			}
		}
	} else if s.Params != nil {
		return badJob("params", "%s takes no params", s.Op)
	}
	return nil
}

// validate checks the selection's shape and bounds.
func (sel *SelectionSpec) validate(rows int) error {
	forms := 0
	if sel.All {
		forms++
	}
	if len(sel.Rows) > 0 {
		forms++
	}
	if len(sel.Ranges) > 0 {
		forms++
	}
	if forms != 1 {
		return badJob("selection", "exactly one of all, rows, ranges must be set")
	}
	for i, r := range sel.Rows {
		if r < 0 || r >= rows {
			return badJob(fmt.Sprintf("selection.rows[%d]", i), "row %d outside [0, %d)", r, rows)
		}
	}
	for i, rg := range sel.Ranges {
		if rg[0] < 0 || rg[1] < rg[0] || rg[1] > rows {
			return badJob(fmt.Sprintf("selection.ranges[%d]", i), "bad range [%d, %d) over %d rows", rg[0], rg[1], rows)
		}
	}
	return nil
}

// Build materializes the selection over an n-row table. Duplicate rows and
// overlapping ranges are idempotent (a selection bit is set once).
func (sel *SelectionSpec) Build(n int) (*database.Selection, error) {
	if err := sel.validate(n); err != nil {
		return nil, err
	}
	out, err := database.NewSelection(n)
	if err != nil {
		return nil, err
	}
	switch {
	case sel.All:
		for i := 0; i < n; i++ {
			out.Set(i)
		}
	case len(sel.Rows) > 0:
		for _, r := range sel.Rows {
			out.Set(r)
		}
	default:
		for _, rg := range sel.Ranges {
			for i := rg[0]; i < rg[1]; i++ {
				out.Set(i)
			}
		}
	}
	return out, nil
}

// count returns the number of selected rows without allocating the bit
// vector (validation-time emptiness check).
func (sel *SelectionSpec) count(n int) int {
	switch {
	case sel.All:
		return n
	case len(sel.Rows) > 0:
		seen := make(map[int]struct{}, len(sel.Rows))
		for _, r := range sel.Rows {
			seen[r] = struct{}{}
		}
		return len(seen)
	default:
		// Ranges may overlap; mark them. Selections are table-sized, so the
		// scratch vector is bounded by the schema, not the spec.
		marked := make([]bool, n)
		c := 0
		for _, rg := range sel.Ranges {
			for i := rg[0]; i < rg[1] && i < n; i++ {
				if i >= 0 && !marked[i] {
					marked[i] = true
					c++
				}
			}
		}
		return c
	}
}
