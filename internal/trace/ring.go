package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
)

// DefaultRingSize is the Recorder capacity when NewRecorder is given a
// non-positive one. 256 recent traces at a handful of spans each is a few
// hundred KB — cheap enough to leave on in production, deep enough to
// catch "that query a minute ago was slow".
const DefaultRingSize = 256

// Recorder keeps the most recent finished traces in a fixed-size ring and
// serves them as JSON. Add is O(1) and lock-brief, so recording on the
// session hot path costs a snapshot copy and nothing else. The zero value
// is not usable; create with NewRecorder.
type Recorder struct {
	mu    sync.Mutex
	ring  []Snapshot
	next  int
	count uint64 // total traces ever added
}

// NewRecorder builds a ring holding the last capacity traces.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Recorder{ring: make([]Snapshot, 0, capacity)}
}

// Add snapshots t into the ring, evicting the oldest entry when full.
// Traces without an ID are ignored: no trace trailer means no trace.
func (r *Recorder) Add(t *Trace) {
	if r == nil || !t.HasID() {
		return
	}
	s := t.Snapshot()
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.next] = s
	}
	r.next = (r.next + 1) % cap(r.ring)
	r.count++
	r.mu.Unlock()
}

// Len returns the number of traces currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Total returns the number of traces ever added (including evicted ones).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Recent returns up to n traces, newest first (n <= 0 means all held).
func (r *Recorder) Recent(n int) []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	held := len(r.ring)
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Snapshot, 0, n)
	// r.next is the slot the NEXT Add will use, so the newest entry sits
	// just behind it; walk backwards.
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + held) % held
		out = append(out, r.ring[idx])
	}
	return out
}

// Find returns every held trace with the given ID, newest first. Multiple
// hits happen when one component served the same traced query twice (e.g.
// a client-level retry).
func (r *Recorder) Find(id ID) []Snapshot {
	want := id.String()
	var out []Snapshot
	for _, s := range r.Recent(0) {
		if s.ID == want {
			out = append(out, s)
		}
	}
	return out
}

// tracesDoc is the /traces response envelope.
type tracesDoc struct {
	Total  uint64     `json:"total"`
	Held   int        `json:"held"`
	Traces []Snapshot `json:"traces"`
}

// Handler serves the recent-trace dump as JSON. Query parameters:
// ?id=<32 hex chars> filters to one trace ID, ?n=<count> limits how many
// of the newest traces are returned.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		doc := tracesDoc{Total: r.Total(), Held: r.Len()}
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := ParseID(idStr)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			doc.Traces = r.Find(id)
		} else {
			n := 0
			if nStr := req.URL.Query().Get("n"); nStr != "" {
				v, err := strconv.Atoi(nStr)
				if err != nil || v < 0 {
					http.Error(w, "trace: bad n", http.StatusBadRequest)
					return
				}
				n = v
			}
			doc.Traces = r.Recent(n)
		}
		if doc.Traces == nil {
			doc.Traces = []Snapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
