package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	id := NewID()
	if id.IsZero() {
		t.Fatal("NewID returned the zero ID")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("id string %q has length %d, want 32", s, len(s))
	}
	back, err := ParseID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip: %v != %v", back, id)
	}
	for _, bad := range []string{"", "xyz", "00", strings.Repeat("0", 34)} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
	if !(ID{}).IsZero() {
		t.Error("zero ID not IsZero")
	}
}

func TestNewIDsDiffer(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 64; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.SetID(NewID())
	tr.SetRole("server")
	tr.Annotate("k", "v")
	tr.Observe("phase", time.Now(), time.Millisecond, nil)
	tr.Finish(errors.New("boom"))
	if tr.HasID() {
		t.Error("nil trace has an ID")
	}
	if s := tr.Snapshot(); len(s.Spans) != 0 {
		t.Errorf("nil trace snapshot: %+v", s)
	}
	// A nil recorder also swallows adds.
	var rec *Recorder
	rec.Add(New("peer"))
}

func TestTraceSnapshot(t *testing.T) {
	tr := New("127.0.0.1:1234")
	id := NewID()
	tr.SetID(id)
	tr.SetRole("aggregator")
	tr.Annotate("shards", "2")
	base := time.Now()
	tr.Observe("hello", base, 2*time.Millisecond, nil)
	tr.Observe("shard1", base.Add(3*time.Millisecond), 5*time.Millisecond,
		map[string]string{"backend": "db1:7001"})
	tr.Observe("shard0", base.Add(2*time.Millisecond), 4*time.Millisecond, nil)
	tr.Finish(nil)

	s := tr.Snapshot()
	if s.ID != id.String() || s.Role != "aggregator" || s.Peer != "127.0.0.1:1234" {
		t.Fatalf("snapshot header: %+v", s)
	}
	if s.Err != "" {
		t.Fatalf("unexpected err %q", s.Err)
	}
	if len(s.Spans) != 3 {
		t.Fatalf("got %d spans", len(s.Spans))
	}
	// Spans come back ordered by start offset.
	for i := 1; i < len(s.Spans); i++ {
		if s.Spans[i-1].StartNanos > s.Spans[i].StartNanos {
			t.Fatalf("spans out of order: %+v", s.Spans)
		}
	}
	if s.Spans[2].Attrs["backend"] != "db1:7001" {
		t.Fatalf("span attrs lost: %+v", s.Spans[2])
	}
	if s.Attrs["shards"] != "2" {
		t.Fatalf("trace attrs lost: %+v", s.Attrs)
	}
	if s.DurSpan <= 0 {
		t.Fatalf("non-positive trace duration %d", s.DurSpan)
	}
}

func TestFinishRecordsBoundedError(t *testing.T) {
	tr := New("")
	tr.SetID(NewID())
	tr.Finish(errors.New(strings.Repeat("x", 10*maxAttrValue)))
	if s := tr.Snapshot(); len(s.Err) > maxAttrValue {
		t.Fatalf("error not bounded: %d bytes", len(s.Err))
	}
}

func TestAttrValuesAreBounded(t *testing.T) {
	tr := New("")
	big := strings.Repeat("A", 10*maxAttrValue)
	tr.Annotate("k", big)
	tr.Observe("s", time.Now(), 0, map[string]string{"v": big})
	s := tr.Snapshot()
	if len(s.Attrs["k"]) > maxAttrValue || len(s.Spans[0].Attrs["v"]) > maxAttrValue {
		t.Fatalf("attr values not bounded: %d / %d", len(s.Attrs["k"]), len(s.Spans[0].Attrs["v"]))
	}
}

func TestSpanCapDropsAndCounts(t *testing.T) {
	tr := New("")
	for i := 0; i < maxSpans+10; i++ {
		tr.Observe("s", time.Now(), 0, nil)
	}
	s := tr.Snapshot()
	if len(s.Spans) != maxSpans {
		t.Fatalf("held %d spans, want %d", len(s.Spans), maxSpans)
	}
	if s.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", s.Dropped)
	}
}

func TestConcurrentObserve(t *testing.T) {
	tr := New("")
	tr.SetID(NewID())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				tr.Observe(fmt.Sprintf("w%d", i), time.Now(), time.Microsecond, nil)
				tr.Annotate(fmt.Sprintf("a%d", i), "v")
			}
		}(i)
	}
	wg.Wait()
	if got := len(tr.Snapshot().Spans); got != 160 {
		t.Fatalf("got %d spans, want 160", got)
	}
}

func TestRecorderRingEvictsOldest(t *testing.T) {
	rec := NewRecorder(4)
	var ids []ID
	for i := 0; i < 6; i++ {
		tr := New("")
		id := NewID()
		ids = append(ids, id)
		tr.SetID(id)
		tr.Finish(nil)
		rec.Add(tr)
	}
	if rec.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", rec.Len())
	}
	if rec.Total() != 6 {
		t.Fatalf("total = %d, want 6", rec.Total())
	}
	recent := rec.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent(0) returned %d", len(recent))
	}
	// Newest first: ids[5], ids[4], ids[3], ids[2].
	for i, want := range []ID{ids[5], ids[4], ids[3], ids[2]} {
		if recent[i].ID != want.String() {
			t.Fatalf("recent[%d] = %s, want %s", i, recent[i].ID, want)
		}
	}
	// The evicted ones are gone.
	if got := rec.Find(ids[0]); len(got) != 0 {
		t.Fatalf("evicted trace still found: %+v", got)
	}
	if got := rec.Find(ids[5]); len(got) != 1 {
		t.Fatalf("Find newest: %+v", got)
	}
	// Recent with a limit.
	if got := rec.Recent(2); len(got) != 2 || got[0].ID != ids[5].String() {
		t.Fatalf("Recent(2): %+v", got)
	}
}

func TestRecorderIgnoresIDlessTraces(t *testing.T) {
	rec := NewRecorder(4)
	tr := New("peer")
	tr.Observe("hello", time.Now(), time.Millisecond, nil)
	tr.Finish(nil)
	rec.Add(tr)
	if rec.Len() != 0 {
		t.Fatal("ID-less trace was recorded")
	}
}

func TestTracesHandler(t *testing.T) {
	rec := NewRecorder(8)
	var last ID
	for i := 0; i < 3; i++ {
		tr := New("p")
		last = NewID()
		tr.SetID(last)
		tr.SetRole("server")
		tr.Observe("hello", time.Now(), time.Millisecond, nil)
		tr.Finish(nil)
		rec.Add(tr)
	}

	get := func(url string) (int, tracesDoc) {
		t.Helper()
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		rec.Handler().ServeHTTP(w, req)
		var doc tracesDoc
		if w.Code == 200 {
			if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
				t.Fatalf("bad JSON from %s: %v", url, err)
			}
		}
		return w.Code, doc
	}

	code, doc := get("/traces")
	if code != 200 || len(doc.Traces) != 3 || doc.Total != 3 {
		t.Fatalf("dump: code %d, %+v", code, doc)
	}
	if doc.Traces[0].ID != last.String() {
		t.Fatalf("newest first violated: %+v", doc.Traces[0])
	}
	code, doc = get("/traces?n=1")
	if code != 200 || len(doc.Traces) != 1 {
		t.Fatalf("n=1: code %d, %d traces", code, len(doc.Traces))
	}
	code, doc = get("/traces?id=" + last.String())
	if code != 200 || len(doc.Traces) != 1 || doc.Traces[0].ID != last.String() {
		t.Fatalf("id filter: code %d, %+v", code, doc)
	}
	code, doc = get("/traces?id=" + NewID().String())
	if code != 200 || len(doc.Traces) != 0 {
		t.Fatalf("miss filter: code %d, %+v", code, doc)
	}
	if code, _ = get("/traces?id=nothex"); code != 400 {
		t.Fatalf("bad id: code %d", code)
	}
	if code, _ = get("/traces?n=-1"); code != 400 {
		t.Fatalf("bad n: code %d", code)
	}
}
