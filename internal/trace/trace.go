// Package trace is the per-request observability layer: where
// internal/metrics answers "how is the fleet doing in aggregate", this
// package answers "why was THIS query slow". A client that opts in mints a
// 16-byte trace ID and sends it in its Hello; every component the query
// touches — the cluster aggregator, each backend shard — records a Trace
// under that same ID with named spans (phase start + duration) and
// annotations (shard index, backend address, retry and hedge counts), and
// keeps it in a bounded in-memory ring served as JSON from /traces. One ID
// then stitches the whole fan-out back together: the aggregator's trace
// shows per-shard upload/fold/reply timings for the exact request, and each
// shard's trace breaks its own cost into the paper's hello/absorb/finalize
// phases.
//
// Privacy contract (DESIGN.md §12): traces carry timings, counts, byte
// totals, and addresses — never index-vector ciphertexts, partial sums, or
// anything derived from them. The trace of a query reveals nothing about
// WHAT was selected, only how long the machinery took, which the serving
// side observes anyway.
//
// All Trace methods are safe on a nil receiver, so the protocol layers can
// record unconditionally and pay nothing when tracing is off.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ID is a 16-byte request identifier, rendered as 32 hex characters. The
// zero ID means "no trace requested".
type ID [16]byte

// NewID mints a random trace ID.
func NewID() ID {
	var id ID
	if _, err := rand.Read(id[:]); err != nil {
		// crypto/rand failing is unrecoverable for key material, but a
		// trace ID only needs uniqueness; fall back to the clock.
		now := time.Now().UnixNano()
		for i := 0; i < 8; i++ {
			id[i] = byte(now >> (8 * i))
		}
	}
	return id
}

// ParseID parses the 32-hex-character form.
func ParseID(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(id) {
		return ID{}, fmt.Errorf("trace: bad id %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// IsZero reports whether the ID is unset.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the hex form.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// maxSpans bounds one trace's span list so a pathological session (or a
// bug) cannot grow a trace without limit; overflow is counted, not stored.
const maxSpans = 256

// maxAttrValue bounds one annotation value. Ciphertexts at the smallest
// supported key size are well past this, so the cap doubles as a backstop
// for the privacy contract: nothing ciphertext-sized fits in a trace.
const maxAttrValue = 128

// Span is one completed, named phase of a trace.
type Span struct {
	// Name identifies the phase ("hello", "absorb", "shard0", ...).
	Name string `json:"name"`
	// StartNanos is the span's start as an offset from the trace's begin.
	StartNanos int64 `json:"start_ns"`
	// DurNanos is the span's duration.
	DurNanos int64 `json:"dur_ns"`
	// Attrs are optional span-scoped annotations (backend address, attempt
	// counts, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace is one component's record of one request. Create with New, fill
// via SetID/SetRole/Annotate/Observe, seal with Finish, and hand to a
// Recorder. All methods are safe for concurrent use and on a nil receiver
// (they become no-ops), so recording call sites need no tracing-enabled
// guards.
type Trace struct {
	mu      sync.Mutex
	id      ID
	role    string
	peer    string
	begin   time.Time
	end     time.Time
	err     string
	spans   []Span
	dropped int
	attrs   map[string]string
}

// New starts a trace observed from the given peer (the remote address of
// the connection that carried the request). The ID arrives later, parsed
// from the Hello, via SetID.
func New(peer string) *Trace {
	return &Trace{peer: peer, begin: time.Now()}
}

// SetID installs the request's trace ID (from the Hello trailer).
func (t *Trace) SetID(id ID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the installed trace ID (zero until SetID).
func (t *Trace) ID() ID {
	if t == nil {
		return ID{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// HasID reports whether the request opted into tracing. A Recorder only
// keeps traces with an ID: no trace trailer in the Hello means no trace.
func (t *Trace) HasID() bool { return !t.ID().IsZero() }

// SetRole names the component recording this trace ("server",
// "aggregator").
func (t *Trace) SetRole(role string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.role = role
	t.mu.Unlock()
}

// Annotate attaches a trace-scoped key/value annotation. Values are
// truncated to a short bound — annotations are for counts, addresses, and
// verdicts, never payload material.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	if len(value) > maxAttrValue {
		value = value[:maxAttrValue]
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// Observe appends a completed span. attrs may be nil; values are truncated
// like Annotate's. Spans past the per-trace cap are dropped and counted.
func (t *Trace) Observe(name string, start time.Time, d time.Duration, attrs map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	s := Span{Name: name, StartNanos: start.Sub(t.begin).Nanoseconds(), DurNanos: d.Nanoseconds()}
	if len(attrs) > 0 {
		s.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			if len(v) > maxAttrValue {
				v = v[:maxAttrValue]
			}
			s.Attrs[k] = v
		}
	}
	t.spans = append(t.spans, s)
}

// Finish seals the trace with the session's outcome. A nil err marks
// success; a non-nil one is recorded as prose (protocol errors are already
// sanitized and bounded at the wire layer).
func (t *Trace) Finish(err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.end = time.Now()
	if err != nil {
		msg := err.Error()
		if len(msg) > maxAttrValue {
			msg = msg[:maxAttrValue]
		}
		t.err = msg
	}
	t.mu.Unlock()
}

// Snapshot is the JSON-ready, immutable form of a Trace.
type Snapshot struct {
	ID      string            `json:"id"`
	Role    string            `json:"role"`
	Peer    string            `json:"peer,omitempty"`
	Begin   time.Time         `json:"begin"`
	DurSpan int64             `json:"dur_ns"`
	Err     string            `json:"err,omitempty"`
	Spans   []Span            `json:"spans"`
	Dropped int               `json:"spans_dropped,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Snapshot copies the trace's current state. Spans are ordered by start
// offset so concurrent fan-out spans read chronologically.
func (t *Trace) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		ID:      t.id.String(),
		Role:    t.role,
		Peer:    t.peer,
		Begin:   t.begin,
		Err:     t.err,
		Dropped: t.dropped,
		Spans:   make([]Span, len(t.spans)),
	}
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	s.DurSpan = end.Sub(t.begin).Nanoseconds()
	copy(s.Spans, t.spans)
	sort.SliceStable(s.Spans, func(i, j int) bool { return s.Spans[i].StartNanos < s.Spans[j].StartNanos })
	if len(t.attrs) > 0 {
		s.Attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			s.Attrs[k] = v
		}
	}
	return s
}
