package database

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Binary persistence for tables. Format:
//
//	"PSDB"            magic
//	uint32            version
//	uint64            row count
//	rows × uint32     values (big-endian)
//	uint32            CRC-32 (IEEE) of everything above
//
// The checksum means a truncated or bit-rotted file is rejected rather than
// silently producing wrong sums.

const (
	tableMagic   = "PSDB"
	tableVersion = 1
)

// ErrCorruptTable is returned when a table file fails validation.
var ErrCorruptTable = errors.New("database: corrupt table file")

// WriteTo streams the table to w in the binary format.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	var written int64
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, tableMagic...)
	hdr = binary.BigEndian.AppendUint32(hdr, tableVersion)
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(t.values)))
	n, err := mw.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("database: writing table header: %w", err)
	}

	buf := make([]byte, 4)
	for _, v := range t.values {
		binary.BigEndian.PutUint32(buf, v)
		n, err := mw.Write(buf)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("database: writing table rows: %w", err)
		}
	}

	binary.BigEndian.PutUint32(buf, crc.Sum32())
	n, err = w.Write(buf)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("database: writing table checksum: %w", err)
	}
	return written, nil
}

// ReadTable parses a table from r, validating magic, version, and checksum.
func ReadTable(r io.Reader) (*Table, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	hdr := make([]byte, 16)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorruptTable, err)
	}
	if string(hdr[:4]) != tableMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptTable, hdr[:4])
	}
	if v := binary.BigEndian.Uint32(hdr[4:]); v != tableVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptTable, v)
	}
	count := binary.BigEndian.Uint64(hdr[8:])
	const maxRows = 1 << 31
	if count > maxRows {
		return nil, fmt.Errorf("%w: absurd row count %d", ErrCorruptTable, count)
	}

	values := make([]uint32, count)
	buf := make([]byte, 4)
	for i := range values {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrCorruptTable, i, err)
		}
		values[i] = binary.BigEndian.Uint32(buf)
	}

	wantSum := crc.Sum32()
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrCorruptTable, err)
	}
	if got := binary.BigEndian.Uint32(buf); got != wantSum {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorruptTable, got, wantSum)
	}
	return &Table{values: values}, nil
}

// SaveFile writes the table to path atomically (write temp, rename).
func (t *Table) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("database: creating %s: %w", tmp, err)
	}
	bw := bufio.NewWriter(f)
	if _, err := t.WriteTo(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("database: flushing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("database: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("database: renaming into place: %w", err)
	}
	return nil
}

// LoadFile reads a table saved by SaveFile.
func LoadFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("database: opening %s: %w", path, err)
	}
	defer f.Close()
	t, err := ReadTable(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("database: reading %s: %w", path, err)
	}
	return t, nil
}
