package database

import (
	"bytes"
	"testing"
)

// FuzzReadTable: arbitrary bytes must never panic the table parser, and
// any table that parses must survive a write/read round trip.
func FuzzReadTable(f *testing.F) {
	var seed bytes.Buffer
	if _, err := New([]uint32{1, 2, 3}).WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PSDB garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := ReadTable(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := tab.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadTable(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != tab.Len() {
			t.Fatal("round trip changed length")
		}
	})
}
