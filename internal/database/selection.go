package database

import (
	"errors"
	"fmt"
	"math/rand"
)

// Selection is the client-side index vector I_1..I_n of the paper: bit i is
// set when x_i participates in the sum. It is stored as a packed bitset;
// the protocol layer reads it bit by bit while streaming encryptions.
type Selection struct {
	n     int
	words []uint64
	count int // number of set bits, maintained incrementally
}

// NewSelection returns an empty selection over n positions.
func NewSelection(n int) (*Selection, error) {
	if n < 0 {
		return nil, errors.New("database: negative selection length")
	}
	return &Selection{n: n, words: make([]uint64, (n+63)/64)}, nil
}

// Len returns the vector length n.
func (s *Selection) Len() int { return s.n }

// Count returns the number of selected positions m.
func (s *Selection) Count() int { return s.count }

// Bit returns 1 when position i is selected, else 0. It panics on
// out-of-range i, matching slice semantics.
func (s *Selection) Bit(i int) uint {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("database: selection index %d out of range [0,%d)", i, s.n))
	}
	return uint(s.words[i/64]>>(i%64)) & 1
}

// Set marks position i as selected.
func (s *Selection) Set(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("database: selection index %d out of range [0,%d)", i, s.n))
	}
	w, b := i/64, uint(i%64)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.count++
	}
}

// Clear unmarks position i.
func (s *Selection) Clear(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("database: selection index %d out of range [0,%d)", i, s.n))
	}
	w, b := i/64, uint(i%64)
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.count--
	}
}

// Indices returns the selected positions in increasing order.
func (s *Selection) Indices() []int {
	out := make([]int, 0, s.count)
	for i := 0; i < s.n; i++ {
		if s.Bit(i) == 1 {
			out = append(out, i)
		}
	}
	return out
}

// Slice returns the sub-selection covering positions [lo, hi), reindexed to
// start at 0 — the shard a single client handles in the multi-client
// protocol (§3.5).
func (s *Selection) Slice(lo, hi int) (*Selection, error) {
	if lo < 0 || hi < lo || hi > s.n {
		return nil, fmt.Errorf("database: bad selection slice [%d,%d) of %d", lo, hi, s.n)
	}
	sub, err := NewSelection(hi - lo)
	if err != nil {
		return nil, err
	}
	for i := lo; i < hi; i++ {
		if s.Bit(i) == 1 {
			sub.Set(i - lo)
		}
	}
	return sub, nil
}

// SelectionPattern names a synthetic selection shape.
type SelectionPattern int

// Supported selection patterns for workload generation.
const (
	// PatternRandom selects m positions uniformly without replacement —
	// the paper's generic "m selected numbers".
	PatternRandom SelectionPattern = iota
	// PatternPrefix selects the first m positions: a contiguous range
	// query (e.g. a date range over time-ordered rows).
	PatternPrefix
	// PatternStride selects every (n/m)'th position: a maximally spread
	// selection, the adversarial case for locality-based optimizations.
	PatternStride
)

// String implements fmt.Stringer.
func (p SelectionPattern) String() string {
	switch p {
	case PatternRandom:
		return "random"
	case PatternPrefix:
		return "prefix"
	case PatternStride:
		return "stride"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// GenerateSelection builds a deterministic selection of exactly m of n
// positions in the given pattern.
func GenerateSelection(n, m int, pattern SelectionPattern, seed int64) (*Selection, error) {
	if m < 0 || m > n {
		return nil, fmt.Errorf("database: cannot select %d of %d positions", m, n)
	}
	s, err := NewSelection(n)
	if err != nil {
		return nil, err
	}
	switch pattern {
	case PatternRandom:
		rng := rand.New(rand.NewSource(seed))
		for _, i := range rng.Perm(n)[:m] {
			s.Set(i)
		}
	case PatternPrefix:
		for i := 0; i < m; i++ {
			s.Set(i)
		}
	case PatternStride:
		if m > 0 {
			stride := n / m
			if stride == 0 {
				stride = 1
			}
			for i := 0; i < n && s.Count() < m; i += stride {
				s.Set(i)
			}
			// Stride rounding can leave a shortfall; top up from the end.
			for i := n - 1; i >= 0 && s.Count() < m; i-- {
				s.Set(i)
			}
		}
	default:
		return nil, fmt.Errorf("database: unknown selection pattern %d", int(pattern))
	}
	if s.Count() != m {
		return nil, fmt.Errorf("database: pattern %v produced %d of %d requested positions", pattern, s.Count(), m)
	}
	return s, nil
}
