// Package database provides the server-side data substrate for the
// selected-sum experiments: a store of 32-bit values (the paper's databases
// hold "numbers of 32 bits each"), synthetic workload generators for the
// evaluation sweeps, and selection-vector utilities for the client side.
//
// All generators are deterministic given a seed, so every experiment in the
// bench harness is reproducible run to run.
package database

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
)

// Table is an immutable-after-construction column of 32-bit values, plus a
// lazily built column of squares used by the private-variance statistic
// (variance needs Σx² as well as Σx; the server exposes both columns to the
// homomorphic fold, never to the client).
type Table struct {
	values []uint32

	squaresOnce sync.Once
	squares     []uint64 // squares[i] = values[i]^2, built on demand
}

// New builds a table over the given values. The slice is copied.
func New(values []uint32) *Table {
	t := &Table{values: make([]uint32, len(values))}
	copy(t.values, values)
	return t
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.values) }

// Value returns row i.
func (t *Table) Value(i int) uint32 { return t.values[i] }

// Values returns the backing column. Callers must not modify it.
func (t *Table) Values() []uint32 { return t.values }

// Squares returns the column of squared values, building it on first use.
// Safe for concurrent sessions folding against the same table.
func (t *Table) Squares() []uint64 {
	t.squaresOnce.Do(func() {
		sq := make([]uint64, len(t.values))
		for i, v := range t.values {
			sq[i] = uint64(v) * uint64(v)
		}
		t.squares = sq
	})
	return t.squares
}

// Column is a read-only numeric column the protocol server folds against.
// Table exposes its values and their squares through it; the stats layer
// folds one encrypted index vector against both to get Σx and Σx² in a
// single protocol round.
type Column interface {
	// Len returns the number of rows.
	Len() int
	// At returns row i as an unsigned 64-bit value.
	At(i int) uint64
}

type valueColumn struct{ t *Table }

func (c valueColumn) Len() int        { return len(c.t.values) }
func (c valueColumn) At(i int) uint64 { return uint64(c.t.values[i]) }

type squareColumn struct{ sq []uint64 }

func (c squareColumn) Len() int        { return len(c.sq) }
func (c squareColumn) At(i int) uint64 { return c.sq[i] }

// Column returns the table's value column.
func (t *Table) Column() Column { return valueColumn{t} }

// Source is any table substrate the protocol server can fold against: the
// in-memory Table, a disk-backed colstore.Store, or a sub-range view of
// either. The server only ever needs the row count and the two statistic
// columns (the ones column is derived from Len), so swapping substrates is
// invisible to the wire protocol and to clients.
type Source interface {
	// Len returns the number of rows.
	Len() int
	// Column returns the value column.
	Column() Column
	// SquareColumn returns the column of squared values.
	SquareColumn() Column
}

var _ Source = (*Table)(nil)

// ProductColumn returns the element-wise product of two equal-length value
// columns: row i is a[i]·b[i], exact in uint64 since both factors are
// 32-bit. The private-covariance statistic folds the client's encrypted
// index vector against it to learn Σ x_i·y_i.
func ProductColumn(a, b *Table) (Column, error) {
	if a.Len() != b.Len() {
		return nil, fmt.Errorf("database: product of %d-row and %d-row tables", a.Len(), b.Len())
	}
	prod := make([]uint64, a.Len())
	for i := range prod {
		prod[i] = uint64(a.values[i]) * uint64(b.values[i])
	}
	return squareColumn{sq: prod}, nil
}

// SquareColumn returns the column of squared values.
func (t *Table) SquareColumn() Column { return squareColumn{sq: t.Squares()} }

type onesColumn struct{ n int }

func (c onesColumn) Len() int    { return c.n }
func (onesColumn) At(int) uint64 { return 1 }

// Ones returns the constant-1 column of length n. Folding the encrypted
// index vector against it yields the selected count m without revealing
// which rows were selected — the count leg of group-by and count queries.
func Ones(n int) Column { return onesColumn{n: n} }

// Shard returns a view of rows [lo, hi) sharing the backing storage — the
// slice of the database one client covers in the multi-client protocol.
func (t *Table) Shard(lo, hi int) (*Table, error) {
	if lo < 0 || hi < lo || hi > len(t.values) {
		return nil, fmt.Errorf("database: bad shard [%d,%d) of %d rows", lo, hi, len(t.values))
	}
	return &Table{values: t.values[lo:hi]}, nil
}

// SelectedSum returns the cleartext Σ_{i: sel[i]} values[i]. It is the
// correctness oracle every private-protocol test compares against. The
// result is exact (big.Int), since 100,000 values of 2³²-1 exceed uint64
// only at ~4 billion rows but the weighted variants can overflow sooner.
func (t *Table) SelectedSum(sel *Selection) (*big.Int, error) {
	if sel.Len() != t.Len() {
		return nil, fmt.Errorf("database: selection length %d != table length %d", sel.Len(), t.Len())
	}
	sum := new(big.Int)
	tmp := new(big.Int)
	for _, i := range sel.Indices() {
		sum.Add(sum, tmp.SetUint64(uint64(t.values[i])))
	}
	return sum, nil
}

// SelectedSumOfSquares returns the cleartext Σ_{i: sel[i]} values[i]².
func (t *Table) SelectedSumOfSquares(sel *Selection) (*big.Int, error) {
	if sel.Len() != t.Len() {
		return nil, fmt.Errorf("database: selection length %d != table length %d", sel.Len(), t.Len())
	}
	sq := t.Squares()
	sum := new(big.Int)
	tmp := new(big.Int)
	for _, i := range sel.Indices() {
		sum.Add(sum, tmp.SetUint64(sq[i]))
	}
	return sum, nil
}

// Distribution selects a synthetic value distribution.
type Distribution int

// Supported distributions. Uniform matches the paper's generic "numbers";
// the others exercise value-dependent server cost (the exponent bit length
// varies with the value) in the ablation benches.
const (
	// DistUniform draws uniformly from [0, 2^32).
	DistUniform Distribution = iota
	// DistSmall draws uniformly from [0, 1000): e.g. ages, counts.
	DistSmall
	// DistZipf draws from a Zipf(1.1) distribution capped at 2^32-1:
	// heavy-tailed values such as incomes or transaction amounts.
	DistZipf
	// DistConstant sets every value to 1: turns the selected sum into a
	// selected count, a useful protocol-level degenerate case.
	DistConstant
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case DistUniform:
		return "uniform32"
	case DistSmall:
		return "small(<1000)"
	case DistZipf:
		return "zipf(1.1)"
	case DistConstant:
		return "constant(1)"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// ParseDistribution maps the CLI names to distributions.
func ParseDistribution(name string) (Distribution, error) {
	switch name {
	case "uniform":
		return DistUniform, nil
	case "small":
		return DistSmall, nil
	case "zipf":
		return DistZipf, nil
	case "constant":
		return DistConstant, nil
	default:
		return 0, fmt.Errorf("database: unknown distribution %q (want uniform, small, zipf, or constant)", name)
	}
}

// ValueStream yields the exact value sequence of Generate one row at a
// time — the out-of-core ingest path for tables too large to materialize.
// Generate is implemented on top of it, so the two can never drift: a
// streamed 10^8-row store and an in-memory oracle over the same seed hold
// identical rows.
type ValueStream struct {
	dist Distribution
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewValueStream starts the deterministic row sequence for (dist, seed).
func NewValueStream(dist Distribution, seed int64) (*ValueStream, error) {
	rng := rand.New(rand.NewSource(seed))
	s := &ValueStream{dist: dist, rng: rng}
	switch dist {
	case DistUniform, DistSmall, DistConstant:
	case DistZipf:
		s.zipf = rand.NewZipf(rng, 1.1, 1, 1<<32-1)
	default:
		return nil, fmt.Errorf("database: unknown distribution %d", int(dist))
	}
	return s, nil
}

// Next returns the next row.
func (s *ValueStream) Next() uint32 {
	switch s.dist {
	case DistUniform:
		return s.rng.Uint32()
	case DistSmall:
		return uint32(s.rng.Intn(1000))
	case DistZipf:
		return uint32(s.zipf.Uint64())
	default: // DistConstant
		return 1
	}
}

// Fill overwrites vals with the next len(vals) rows.
func (s *ValueStream) Fill(vals []uint32) {
	for i := range vals {
		vals[i] = s.Next()
	}
}

// Generate builds a deterministic synthetic table of n rows drawn from the
// distribution with the given seed.
func Generate(n int, dist Distribution, seed int64) (*Table, error) {
	if n < 0 {
		return nil, errors.New("database: negative table size")
	}
	stream, err := NewValueStream(dist, seed)
	if err != nil {
		return nil, err
	}
	values := make([]uint32, n)
	stream.Fill(values)
	return &Table{values: values}, nil
}
