package database

import (
	"bytes"
	"errors"
	"math/big"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestNewCopiesInput(t *testing.T) {
	src := []uint32{1, 2, 3}
	tab := New(src)
	src[0] = 99
	if tab.Value(0) != 1 {
		t.Error("New aliased the caller's slice")
	}
	if tab.Len() != 3 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestSquares(t *testing.T) {
	tab := New([]uint32{0, 1, 2, 65535, 1<<32 - 1})
	sq := tab.Squares()
	want := []uint64{0, 1, 4, 65535 * 65535, (1<<32 - 1) * (1<<32 - 1)}
	for i := range want {
		if sq[i] != want[i] {
			t.Errorf("squares[%d] = %d, want %d", i, sq[i], want[i])
		}
	}
}

func TestSelectedSum(t *testing.T) {
	tab := New([]uint32{10, 20, 30, 40, 50})
	sel, err := NewSelection(5)
	if err != nil {
		t.Fatal(err)
	}
	sel.Set(0)
	sel.Set(2)
	sel.Set(4)
	sum, err := tab.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 90 {
		t.Errorf("sum = %v, want 90", sum)
	}
	sq, err := tab.SelectedSumOfSquares(sel)
	if err != nil {
		t.Fatal(err)
	}
	if sq.Int64() != 100+900+2500 {
		t.Errorf("sum of squares = %v, want 3500", sq)
	}
}

func TestSelectedSumLengthMismatch(t *testing.T) {
	tab := New([]uint32{1, 2})
	sel, _ := NewSelection(3)
	if _, err := tab.SelectedSum(sel); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := tab.SelectedSumOfSquares(sel); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestSelectedSumNoOverflow(t *testing.T) {
	// Max values everywhere: sum must be exact in big.Int.
	n := 1000
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = 1<<32 - 1
	}
	tab := New(vals)
	sel, _ := NewSelection(n)
	for i := 0; i < n; i++ {
		sel.Set(i)
	}
	sum, err := tab.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Mul(big.NewInt(1<<32-1), big.NewInt(int64(n)))
	if sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(100, DistUniform, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(100, DistUniform, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Value(i) != b.Value(i) {
			t.Fatal("same seed produced different tables")
		}
	}
	c, err := Generate(100, DistUniform, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 100; i++ {
		if a.Value(i) != c.Value(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tables")
	}
}

func TestGenerateDistributions(t *testing.T) {
	small, err := Generate(500, DistSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < small.Len(); i++ {
		if small.Value(i) >= 1000 {
			t.Fatalf("DistSmall produced %d", small.Value(i))
		}
	}
	konst, err := Generate(10, DistConstant, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if konst.Value(i) != 1 {
			t.Fatal("DistConstant produced non-1")
		}
	}
	if _, err := Generate(10, DistZipf, 7); err != nil {
		t.Fatalf("DistZipf: %v", err)
	}
	if _, err := Generate(-1, DistUniform, 0); err == nil {
		t.Error("negative size should fail")
	}
	if _, err := Generate(10, Distribution(99), 0); err == nil {
		t.Error("unknown distribution should fail")
	}
}

func TestDistributionString(t *testing.T) {
	for d, want := range map[Distribution]string{
		DistUniform: "uniform32", DistSmall: "small(<1000)",
		DistZipf: "zipf(1.1)", DistConstant: "constant(1)",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", int(d), d.String())
		}
	}
}

func TestSelectionSetClearCount(t *testing.T) {
	s, err := NewSelection(130) // spans three words
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Set(i)
	}
	if s.Count() != 5 {
		t.Errorf("count = %d, want 5", s.Count())
	}
	s.Set(0) // idempotent
	if s.Count() != 5 {
		t.Errorf("double set changed count to %d", s.Count())
	}
	s.Clear(63)
	s.Clear(63) // idempotent
	if s.Count() != 4 || s.Bit(63) != 0 {
		t.Errorf("after clear: count=%d bit=%d", s.Count(), s.Bit(63))
	}
	want := []int{0, 64, 127, 129}
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("indices = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("indices = %v, want %v", got, want)
		}
	}
}

func TestSelectionBoundsPanic(t *testing.T) {
	s, _ := NewSelection(10)
	for _, f := range []func(){
		func() { s.Bit(-1) },
		func() { s.Bit(10) },
		func() { s.Set(10) },
		func() { s.Clear(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access should panic")
				}
			}()
			f()
		}()
	}
}

func TestSelectionSlice(t *testing.T) {
	s, _ := NewSelection(10)
	for _, i := range []int{1, 4, 5, 9} {
		s.Set(i)
	}
	sub, err := s.Slice(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 4 || sub.Count() != 2 {
		t.Fatalf("sub len=%d count=%d", sub.Len(), sub.Count())
	}
	if sub.Bit(0) != 1 || sub.Bit(1) != 1 || sub.Bit(2) != 0 || sub.Bit(3) != 0 {
		t.Errorf("sub bits = %d%d%d%d", sub.Bit(0), sub.Bit(1), sub.Bit(2), sub.Bit(3))
	}
	if _, err := s.Slice(5, 3); err == nil {
		t.Error("inverted slice should fail")
	}
	if _, err := s.Slice(0, 11); err == nil {
		t.Error("overlong slice should fail")
	}
}

func TestSelectionSlicesPartitionCount(t *testing.T) {
	prop := func(bits []bool, cut uint8) bool {
		n := len(bits)
		s, err := NewSelection(n)
		if err != nil {
			return false
		}
		for i, b := range bits {
			if b {
				s.Set(i)
			}
		}
		lo := 0
		if n > 0 {
			lo = int(cut) % (n + 1)
		}
		left, err := s.Slice(0, lo)
		if err != nil {
			return false
		}
		right, err := s.Slice(lo, n)
		if err != nil {
			return false
		}
		return left.Count()+right.Count() == s.Count()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateSelectionPatterns(t *testing.T) {
	for _, p := range []SelectionPattern{PatternRandom, PatternPrefix, PatternStride} {
		for _, m := range []int{0, 1, 50, 100} {
			s, err := GenerateSelection(100, m, p, 7)
			if err != nil {
				t.Fatalf("%v m=%d: %v", p, m, err)
			}
			if s.Count() != m {
				t.Errorf("%v m=%d: count=%d", p, m, s.Count())
			}
		}
	}
	// Prefix is exactly the first m.
	s, _ := GenerateSelection(10, 3, PatternPrefix, 0)
	for i := 0; i < 10; i++ {
		want := uint(0)
		if i < 3 {
			want = 1
		}
		if s.Bit(i) != want {
			t.Errorf("prefix bit %d = %d", i, s.Bit(i))
		}
	}
	if _, err := GenerateSelection(10, 11, PatternRandom, 0); err == nil {
		t.Error("m > n should fail")
	}
	if _, err := GenerateSelection(10, -1, PatternRandom, 0); err == nil {
		t.Error("negative m should fail")
	}
	if _, err := GenerateSelection(10, 5, SelectionPattern(99), 0); err == nil {
		t.Error("unknown pattern should fail")
	}
}

func TestGenerateSelectionDeterministic(t *testing.T) {
	a, _ := GenerateSelection(1000, 500, PatternRandom, 11)
	b, _ := GenerateSelection(1000, 500, PatternRandom, 11)
	for i := 0; i < 1000; i++ {
		if a.Bit(i) != b.Bit(i) {
			t.Fatal("same seed produced different selections")
		}
	}
}

func TestTablePersistRoundTrip(t *testing.T) {
	tab, err := Generate(1234, DistUniform, 99)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("len = %d", back.Len())
	}
	for i := 0; i < tab.Len(); i++ {
		if back.Value(i) != tab.Value(i) {
			t.Fatalf("row %d: %d != %d", i, back.Value(i), tab.Value(i))
		}
	}
}

func TestReadTableRejectsCorruption(t *testing.T) {
	tab := New([]uint32{1, 2, 3})
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bit flip anywhere must be caught (magic, version, count, data, crc).
	for _, pos := range []int{0, 5, 10, 17, len(good) - 1} {
		bad := append([]byte{}, good...)
		bad[pos] ^= 0x40
		if _, err := ReadTable(bytes.NewReader(bad)); err == nil {
			t.Errorf("bit flip at %d accepted", pos)
		}
	}
	// Truncation must be caught.
	for _, cut := range []int{0, 4, 15, len(good) - 2} {
		if _, err := ReadTable(bytes.NewReader(good[:cut])); !errors.Is(err, ErrCorruptTable) {
			t.Errorf("truncation at %d: err = %v", cut, err)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.psdb")
	tab, err := Generate(500, DistSmall, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if back.Value(i) != tab.Value(i) {
			t.Fatal("file round trip corrupted data")
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.psdb")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestEmptyTablePersistence(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New(nil).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("len = %d", back.Len())
	}
}
