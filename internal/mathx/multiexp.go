package mathx

import (
	"fmt"
	"math/big"
	"math/bits"
	"sync"
)

// This file implements Pippenger-style bucket multi-exponentiation: the
// simultaneous product Π bases[i]^{exps[i]} mod m for many distinct bases
// with short (machine-word) exponents. That is exactly the selected-sum
// server's workload — every incoming ciphertext is a fresh base, every
// database value a ≤64-bit exponent — where per-element square-and-multiply
// costs ~1.5·bits multiplications per row. The bucket method instead pays,
// per w-bit window of the exponents, one multiplication per row (bucket
// accumulation) plus ~2^(w+1) multiplications to fold the buckets with the
// running-sum trick, for a total of roughly
//
//	ceil(maxBits/w) · (count + 2^(w+1)) + maxBits
//
// multiplications: at count=4096 rows of 32-bit exponents this is ~5
// multiplications per row against ~48 for the naive loop.

// MaxMultiExpWindow bounds the bucket window width: 2^16 buckets is already
// megabytes of pointers and past the point of diminishing returns for any
// realistic chunk size.
const MaxMultiExpWindow = 16

// PickMultiExpWindow returns the window width minimizing the bucket-method
// cost model above for the given operand count and maximum exponent bit
// length. It is exported so benchmarks can sweep widths around the chosen
// one.
func PickMultiExpWindow(count, maxBits int) uint {
	if count < 1 {
		count = 1
	}
	if maxBits < 1 {
		maxBits = 1
	}
	best, bestCost := uint(1), int64(-1)
	for w := uint(1); w <= MaxMultiExpWindow; w++ {
		windows := int64((maxBits + int(w) - 1) / int(w))
		cost := windows * (int64(count) + int64(2)<<w)
		if bestCost < 0 || cost < bestCost {
			best, bestCost = w, cost
		}
	}
	return best
}

// MultiExp returns Π bases[i]^{exps[i]} mod m via bucket
// multi-exponentiation. window selects the bucket width in bits; 0 picks
// the cost-model optimum for the operand count. Bases may be any integers
// (they are reduced mod m); m must be positive. Zero exponents contribute
// nothing and are skipped for free.
func MultiExp(bases []*big.Int, exps []uint64, m *big.Int, window uint) (*big.Int, error) {
	w, maxBits, err := multiExpSetup(bases, exps, m, window)
	if err != nil {
		return nil, err
	}
	if maxBits == 0 {
		// Every exponent is zero: the empty product, 1 mod m.
		return new(big.Int).Mod(One, m), nil
	}
	windows := (maxBits + int(w) - 1) / int(w)
	result := multiExpWindows(bases, exps, m, w, 0, windows)
	return result.Mod(result, m), nil
}

// MultiExpParallel is MultiExp with the work split across workers
// goroutines. The split dimension follows the larger extent: with more rows
// than exponent windows (the common case) each worker computes a partial
// product over a row slice; with more windows than rows (very few operands
// with long exponents) each worker takes a window range and shifts its
// partial into place. Both splits recombine with plain modular
// multiplication, so the result is identical to MultiExp.
func MultiExpParallel(bases []*big.Int, exps []uint64, m *big.Int, window uint, workers int) (*big.Int, error) {
	w, maxBits, err := multiExpSetup(bases, exps, m, window)
	if err != nil {
		return nil, err
	}
	if maxBits == 0 {
		return new(big.Int).Mod(One, m), nil
	}
	windows := (maxBits + int(w) - 1) / int(w)
	count := len(bases)
	if workers < 1 {
		workers = 1
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		result := multiExpWindows(bases, exps, m, w, 0, windows)
		return result.Mod(result, m), nil
	}

	partials := make([]*big.Int, workers)
	var wg sync.WaitGroup
	if count >= windows {
		// Row split: each worker buckets a contiguous slice of the rows.
		for k := 0; k < workers; k++ {
			lo := k * count / workers
			hi := (k + 1) * count / workers
			wg.Add(1)
			go func(k, lo, hi int) {
				defer wg.Done()
				partials[k] = multiExpWindows(bases[lo:hi], exps[lo:hi], m, w, 0, windows)
			}(k, lo, hi)
		}
	} else {
		// Window split: each worker folds a range of exponent windows and
		// shifts its partial up by w·jLo squarings.
		if workers > windows {
			workers = windows
			partials = partials[:workers]
		}
		for k := 0; k < workers; k++ {
			jLo := k * windows / workers
			jHi := (k + 1) * windows / workers
			wg.Add(1)
			go func(k, jLo, jHi int) {
				defer wg.Done()
				p := multiExpWindows(bases, exps, m, w, jLo, jHi)
				for s := 0; s < jLo*int(w); s++ {
					p.Mul(p, p)
					p.Mod(p, m)
				}
				partials[k] = p
			}(k, jLo, jHi)
		}
	}
	wg.Wait()
	result := big.NewInt(1)
	for _, p := range partials {
		result.Mul(result, p)
		result.Mod(result, m)
	}
	return result, nil
}

// multiExpSetup validates the operands and resolves the window width and
// maximum exponent bit length.
func multiExpSetup(bases []*big.Int, exps []uint64, m *big.Int, window uint) (uint, int, error) {
	if m == nil || m.Sign() <= 0 {
		return 0, 0, ErrBadModulus
	}
	if len(bases) != len(exps) {
		return 0, 0, fmt.Errorf("mathx: %d bases vs %d exponents", len(bases), len(exps))
	}
	if window > MaxMultiExpWindow {
		return 0, 0, fmt.Errorf("mathx: multi-exp window must be in [0,%d], got %d", MaxMultiExpWindow, window)
	}
	maxBits := 0
	for i, b := range bases {
		if b == nil {
			return 0, 0, fmt.Errorf("mathx: base %d is nil", i)
		}
		if n := bits.Len64(exps[i]); n > maxBits {
			maxBits = n
		}
	}
	if window == 0 {
		window = PickMultiExpWindow(len(bases), maxBits)
	}
	return window, maxBits, nil
}

// multiExpWindows folds the w-bit exponent windows [jLo, jHi), returning
//
//	Π_i bases[i]^{D_i}  with  D_i = Σ_{j=jLo}^{jHi-1} d_{i,j}·2^{w·(j-jLo)}
//
// where d_{i,j} is the j'th w-bit digit of exps[i]. With jLo = 0 and jHi
// covering every digit this is the full product; callers splitting the
// window range shift the partial up by w·jLo squarings afterwards.
func multiExpWindows(bases []*big.Int, exps []uint64, m *big.Int, w uint, jLo, jHi int) *big.Int {
	mask := uint64(1)<<w - 1
	buckets := make([]*big.Int, uint64(1)<<w)
	result := big.NewInt(1)
	running := new(big.Int)
	winAcc := new(big.Int)
	for j := jHi - 1; j >= jLo; j-- {
		if result.Cmp(One) != 0 {
			// Shift the higher windows' product up by one window.
			for s := uint(0); s < w; s++ {
				result.Mul(result, result)
				result.Mod(result, m)
			}
		}
		shift := uint(j) * w
		used := false
		for i, b := range bases {
			d := (exps[i] >> shift) & mask
			if d == 0 {
				continue
			}
			used = true
			if buckets[d] == nil {
				buckets[d] = new(big.Int).Mod(b, m)
			} else {
				buckets[d].Mul(buckets[d], b)
				buckets[d].Mod(buckets[d], m)
			}
		}
		if !used {
			continue
		}
		// Running-sum fold: winAcc = Π_d buckets[d]^d with ≤2·2^w
		// multiplications, scanning from the top bucket down.
		running.SetInt64(1)
		winAcc.SetInt64(1)
		for d := len(buckets) - 1; d >= 1; d-- {
			if buckets[d] != nil {
				running.Mul(running, buckets[d])
				running.Mod(running, m)
				buckets[d] = nil
			}
			if running.Cmp(One) != 0 {
				winAcc.Mul(winAcc, running)
				winAcc.Mod(winAcc, m)
			}
		}
		result.Mul(result, winAcc)
		result.Mod(result, m)
	}
	return result
}
