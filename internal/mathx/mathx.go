// Package mathx provides the modular-arithmetic substrate used by the
// homomorphic cryptosystems in this repository.
//
// Everything here is built on math/big from the standard library. The
// package adds the handful of number-theoretic operations the cryptosystems
// need but the standard library does not expose directly: sampling uniform
// residues and units, CRT recombination, L-function evaluation for Paillier,
// fixed-base windowed exponentiation for hot exponentiation paths, and
// prime-pair generation for RSA-style moduli.
//
// None of the routines in this package are constant-time; like the systems
// measured in the paper this code targets the semi-honest model and
// benchmarking, not side-channel resistance.
package mathx

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Common small constants. These are shared read-only values; callers must
// not mutate them.
var (
	Zero  = big.NewInt(0)
	One   = big.NewInt(1)
	Two   = big.NewInt(2)
	Three = big.NewInt(3)
	Four  = big.NewInt(4)
)

// ErrNotInvertible is returned when a modular inverse does not exist.
var ErrNotInvertible = errors.New("mathx: element is not invertible")

// ErrBadModulus is returned when a modulus is nil, zero, or negative.
var ErrBadModulus = errors.New("mathx: modulus must be a positive integer")

// RandInt returns a uniform random integer in [0, max). It panics if
// max <= 0; crypto/rand failures are returned as errors.
func RandInt(r io.Reader, max *big.Int) (*big.Int, error) {
	if max == nil || max.Sign() <= 0 {
		return nil, fmt.Errorf("mathx: RandInt upper bound must be positive, got %v", max)
	}
	v, err := rand.Int(r, max)
	if err != nil {
		return nil, fmt.Errorf("mathx: sampling random integer: %w", err)
	}
	return v, nil
}

// RandUnit returns a uniform random element of the multiplicative group
// Z*_n, i.e. a value in [1, n) with gcd(v, n) = 1.
//
// For an RSA-style modulus n = p·q with large prime factors, rejection is
// astronomically rare, so the loop almost always runs once.
func RandUnit(r io.Reader, n *big.Int) (*big.Int, error) {
	if n == nil || n.Sign() <= 0 {
		return nil, ErrBadModulus
	}
	if n.Cmp(One) == 0 {
		return nil, fmt.Errorf("mathx: Z*_1 is empty: %w", ErrBadModulus)
	}
	gcd := new(big.Int)
	for i := 0; i < 1000; i++ {
		v, err := RandInt(r, n)
		if err != nil {
			return nil, err
		}
		if v.Sign() == 0 {
			continue
		}
		gcd.GCD(nil, nil, v, n)
		if gcd.Cmp(One) == 0 {
			return v, nil
		}
	}
	return nil, errors.New("mathx: could not sample a unit after 1000 attempts (modulus is overly smooth)")
}

// RandBits returns a uniform random integer with exactly bits bits, i.e. in
// [2^(bits-1), 2^bits). bits must be at least 2.
func RandBits(r io.Reader, bits int) (*big.Int, error) {
	if bits < 2 {
		return nil, fmt.Errorf("mathx: RandBits needs bits >= 2, got %d", bits)
	}
	// Sample bits-1 random bits and set the top bit.
	limit := new(big.Int).Lsh(One, uint(bits-1))
	v, err := RandInt(r, limit)
	if err != nil {
		return nil, err
	}
	return v.Or(v, limit), nil
}

// ModInverse returns a^-1 mod n, or ErrNotInvertible if gcd(a, n) != 1.
func ModInverse(a, n *big.Int) (*big.Int, error) {
	if n == nil || n.Sign() <= 0 {
		return nil, ErrBadModulus
	}
	inv := new(big.Int).ModInverse(a, n)
	if inv == nil {
		return nil, fmt.Errorf("mathx: inverse of %v mod %v: %w", a, n, ErrNotInvertible)
	}
	return inv, nil
}

// Lcm returns the least common multiple of a and b.
func Lcm(a, b *big.Int) *big.Int {
	if a.Sign() == 0 || b.Sign() == 0 {
		return new(big.Int)
	}
	gcd := new(big.Int).GCD(nil, nil, a, b)
	out := new(big.Int).Div(a, gcd)
	out.Mul(out, b)
	return out.Abs(out)
}

// L is Paillier's L-function: L(u) = (u - 1) / n. The function requires
// u ≡ 1 (mod n); it returns an error otherwise, because a non-exact
// division here always indicates key or ciphertext corruption.
func L(u, n *big.Int) (*big.Int, error) {
	num := new(big.Int).Sub(u, One)
	quo, rem := new(big.Int).QuoRem(num, n, new(big.Int))
	if rem.Sign() != 0 {
		return nil, fmt.Errorf("mathx: L(u): u-1 is not divisible by n (corrupt ciphertext or wrong key)")
	}
	return quo, nil
}

// CRT holds precomputed values for recombining residues mod p and mod q into
// a residue mod p·q via the Chinese Remainder Theorem.
type CRT struct {
	p, q *big.Int
	// qInvP = q^-1 mod p
	qInvP *big.Int
	n     *big.Int
}

// NewCRT prepares CRT recombination for the coprime moduli p and q.
func NewCRT(p, q *big.Int) (*CRT, error) {
	if p == nil || q == nil || p.Sign() <= 0 || q.Sign() <= 0 {
		return nil, ErrBadModulus
	}
	qInvP, err := ModInverse(q, p)
	if err != nil {
		return nil, fmt.Errorf("mathx: CRT moduli are not coprime: %w", err)
	}
	return &CRT{
		p:     new(big.Int).Set(p),
		q:     new(big.Int).Set(q),
		qInvP: qInvP,
		n:     new(big.Int).Mul(p, q),
	}, nil
}

// N returns p·q.
func (c *CRT) N() *big.Int { return new(big.Int).Set(c.n) }

// Combine returns the unique x in [0, p·q) with x ≡ ap (mod p) and
// x ≡ aq (mod q), using Garner's formula:
//
//	x = aq + q · ((ap - aq) · q^-1 mod p)
func (c *CRT) Combine(ap, aq *big.Int) *big.Int {
	h := new(big.Int).Sub(ap, aq)
	h.Mul(h, c.qInvP)
	h.Mod(h, c.p)
	h.Mul(h, c.q)
	h.Add(h, aq)
	return h.Mod(h, c.n)
}

// ExpCRT computes base^exp mod p·q by exponentiating separately mod p and
// mod q and recombining. For a 2k-bit modulus this is roughly 3-4x faster
// than a direct Exp, which is the classic RSA/Paillier decryption speedup.
func (c *CRT) ExpCRT(base, exp *big.Int) *big.Int {
	bp := new(big.Int).Mod(base, c.p)
	bq := new(big.Int).Mod(base, c.q)
	// Reduce the exponent mod p-1 and q-1 (Fermat) when base is coprime to
	// the prime modulus; when it is not (base ≡ 0 mod p), the power is 0 and
	// the reduction is still harmless for exp > 0.
	pm1 := new(big.Int).Sub(c.p, One)
	qm1 := new(big.Int).Sub(c.q, One)
	ep := new(big.Int).Mod(exp, pm1)
	eq := new(big.Int).Mod(exp, qm1)
	if exp.Sign() > 0 {
		if ep.Sign() == 0 && bp.Sign() != 0 {
			// base^k(p-1) ≡ 1; keep it explicit rather than computing Exp(.., 0).
			bp.SetInt64(1)
			ep.SetInt64(0)
		}
		if eq.Sign() == 0 && bq.Sign() != 0 {
			bq.SetInt64(1)
			eq.SetInt64(0)
		}
	}
	ap := new(big.Int).Exp(bp, ep, c.p)
	aq := new(big.Int).Exp(bq, eq, c.q)
	return c.Combine(ap, aq)
}

// GeneratePrime returns a random prime with exactly bits bits. It retries
// until crypto/rand yields a prime, mirroring crypto/rand.Prime but keeping
// an explicit error path.
func GeneratePrime(r io.Reader, bits int) (*big.Int, error) {
	if bits < 16 {
		return nil, fmt.Errorf("mathx: refusing to generate a %d-bit prime (minimum 16)", bits)
	}
	p, err := rand.Prime(r, bits)
	if err != nil {
		return nil, fmt.Errorf("mathx: generating %d-bit prime: %w", bits, err)
	}
	return p, nil
}

// GeneratePrimePair returns two distinct primes p, q of bits bits each whose
// product has exactly 2·bits bits, suitable as an RSA/Paillier modulus.
// For Paillier with g = n+1 we additionally need gcd(n, φ(n)) = 1, which
// holds whenever p and q are distinct primes of the same bit length greater
// than 2; the check is performed explicitly anyway.
func GeneratePrimePair(r io.Reader, bits int) (p, q *big.Int, err error) {
	if bits < 16 {
		return nil, nil, fmt.Errorf("mathx: refusing %d-bit prime pair (minimum 16)", bits)
	}
	n := new(big.Int)
	phi := new(big.Int)
	gcd := new(big.Int)
	pm1 := new(big.Int)
	qm1 := new(big.Int)
	for attempt := 0; attempt < 1000; attempt++ {
		p, err = GeneratePrime(r, bits)
		if err != nil {
			return nil, nil, err
		}
		q, err = GeneratePrime(r, bits)
		if err != nil {
			return nil, nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n.Mul(p, q)
		if n.BitLen() != 2*bits {
			continue
		}
		pm1.Sub(p, One)
		qm1.Sub(q, One)
		phi.Mul(pm1, qm1)
		if gcd.GCD(nil, nil, n, phi).Cmp(One) != 0 {
			continue
		}
		return p, q, nil
	}
	return nil, nil, errors.New("mathx: failed to generate a usable prime pair after 1000 attempts")
}

// Jacobi returns the Jacobi symbol (a/n) for odd n > 0. It is a thin wrapper
// over math/big with an explicit error instead of a panic for even moduli,
// used by the Goldwasser-Micali scheme.
func Jacobi(a, n *big.Int) (int, error) {
	if n.Sign() <= 0 || n.Bit(0) == 0 {
		return 0, fmt.Errorf("mathx: Jacobi symbol requires odd positive n, got %v", n)
	}
	return big.Jacobi(a, n), nil
}

// CeilDiv returns ceil(a/b) for positive int64 operands.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("mathx: CeilDiv divisor must be positive")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
