package mathx

import (
	"math/big"
	"sync"
)

// scratchPool recycles big.Int values for the hot arithmetic paths. A
// Paillier encryption's intermediate product grows to four times the key
// size before reduction; without recycling, every encryption reallocates
// that buffer, which dominates allocation churn at high session counts.
var scratchPool = sync.Pool{New: func() any { return new(big.Int) }}

// GetScratch returns a big.Int for temporary use. The value carries
// whatever magnitude its previous user left; callers must fully overwrite
// it (Set, Mul into it, …) before reading.
func GetScratch() *big.Int {
	return scratchPool.Get().(*big.Int)
}

// PutScratch returns x to the pool. The caller must not retain any
// reference to x (or aliases of its backing storage) after the call;
// long-lived results should be copied out with new(big.Int).Set first.
func PutScratch(x *big.Int) {
	if x == nil {
		return
	}
	scratchPool.Put(x)
}
