package mathx

import (
	"fmt"
	"math/big"
	"math/bits"
)

// FixedBaseExp accelerates repeated exponentiations g^e mod m that share the
// same base g, using a precomputed radix-2^w table of g^(2^(w·i)).
//
// The client in the selected-sum protocol performs n encryptions; with the
// random-r Paillier path each encryption is an exponentiation with a fresh
// base, but the scheme's generator path (and the Damgård–Jurik and ElGamal
// schemes) exponentiate one fixed generator with fresh exponents, which is
// exactly the workload this table serves. For a 512-bit exponent and w = 6
// the table replaces ~768 multiplications of square-and-multiply with ~86
// table multiplications.
type FixedBaseExp struct {
	m       *big.Int
	window  uint
	maxBits int
	// table[i][d] = g^(d << (window*i)) mod m for d in [0, 2^window).
	table [][]*big.Int
}

// NewFixedBaseExp precomputes powers of base modulo m for exponents of up to
// maxBits bits using the given window width (1..16; 6 is a good default for
// 512-1024 bit exponents).
func NewFixedBaseExp(base, m *big.Int, maxBits int, window uint) (*FixedBaseExp, error) {
	if m == nil || m.Sign() <= 0 {
		return nil, ErrBadModulus
	}
	if window < 1 || window > 16 {
		return nil, fmt.Errorf("mathx: fixed-base window must be in [1,16], got %d", window)
	}
	if maxBits < 1 {
		return nil, fmt.Errorf("mathx: fixed-base maxBits must be positive, got %d", maxBits)
	}
	digits := (maxBits + int(window) - 1) / int(window)
	radix := 1 << window
	f := &FixedBaseExp{
		m:       new(big.Int).Set(m),
		window:  window,
		maxBits: maxBits,
		table:   make([][]*big.Int, digits),
	}
	// g_i = base^(2^(w·i)); row i holds g_i^d for all digits d.
	gi := new(big.Int).Mod(base, m)
	for i := 0; i < digits; i++ {
		row := make([]*big.Int, radix)
		row[0] = big.NewInt(1)
		acc := big.NewInt(1)
		for d := 1; d < radix; d++ {
			acc = new(big.Int).Mul(acc, gi)
			acc.Mod(acc, m)
			row[d] = acc
			acc = new(big.Int).Set(acc)
		}
		f.table[i] = row
		// Advance g_{i+1} = g_i^(2^w).
		next := new(big.Int).Set(gi)
		for s := uint(0); s < window; s++ {
			next.Mul(next, next)
			next.Mod(next, m)
		}
		gi = next
	}
	return f, nil
}

// MaxBits reports the largest exponent bit-length the table supports.
func (f *FixedBaseExp) MaxBits() int { return f.maxBits }

// Exp returns base^e mod m using the precomputed table. e must be
// non-negative and at most MaxBits() bits.
func (f *FixedBaseExp) Exp(e *big.Int) (*big.Int, error) {
	if e.Sign() < 0 {
		return nil, fmt.Errorf("mathx: fixed-base exponent must be non-negative")
	}
	if e.BitLen() > f.maxBits {
		return nil, fmt.Errorf("mathx: exponent has %d bits, table supports %d", e.BitLen(), f.maxBits)
	}
	result := big.NewInt(1)
	mask := uint64(1<<f.window - 1)
	// Walk the exponent window by window from the least significant end;
	// row i already encodes the 2^(w·i) shift, so the product of the
	// selected row entries is the full power.
	words := e.Bits()
	bitLen := e.BitLen()
	for i := 0; i*int(f.window) < bitLen; i++ {
		d := extractWindow(words, uint(i)*f.window, f.window, mask)
		if d == 0 {
			continue
		}
		result.Mul(result, f.table[i][d])
		result.Mod(result, f.m)
	}
	return result, nil
}

// extractWindow returns the w-bit digit starting at bit position pos of the
// exponent whose little-endian words are given. Reading one word (two when
// the digit straddles a word boundary) replaces the w sequential big.Int.Bit
// calls of the earlier implementation, which made Exp quadratic in the
// exponent bit length.
func extractWindow(words []big.Word, pos, w uint, mask uint64) uint64 {
	const wordBits = uint(bits.UintSize)
	i := pos / wordBits
	if i >= uint(len(words)) {
		return 0
	}
	off := pos % wordBits
	d := uint64(words[i] >> off)
	if off+w > wordBits && i+1 < uint(len(words)) {
		d |= uint64(words[i+1]) << (wordBits - off)
	}
	return d & mask
}
