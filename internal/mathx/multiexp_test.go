package mathx

import (
	"math/big"
	"math/rand"
	"testing"
)

// naiveMultiExp is the big.Int.Exp oracle: Π bases[i]^{exps[i]} mod m one
// exponentiation at a time.
func naiveMultiExp(bases []*big.Int, exps []uint64, m *big.Int) *big.Int {
	acc := new(big.Int).Mod(One, m)
	e := new(big.Int)
	for i, b := range bases {
		e.SetUint64(exps[i])
		p := new(big.Int).Exp(b, e, m)
		acc.Mul(acc, p)
		acc.Mod(acc, m)
	}
	return acc
}

func randOperands(rng *rand.Rand, count, baseBits int, expMask uint64) ([]*big.Int, []uint64) {
	bases := make([]*big.Int, count)
	exps := make([]uint64, count)
	for i := range bases {
		b := new(big.Int).Rand(rng, new(big.Int).Lsh(One, uint(baseBits)))
		bases[i] = b
		exps[i] = rng.Uint64() & expMask
	}
	return bases, exps
}

func TestMultiExpMatchesExp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := new(big.Int).SetUint64(0xfffffffb_00000001) // any positive modulus works
	for _, count := range []int{1, 2, 7, 33, 100} {
		for _, mask := range []uint64{0, 1, 0xff, 0xffffffff, ^uint64(0)} {
			bases, exps := randOperands(rng, count, 80, mask)
			want := naiveMultiExp(bases, exps, m)
			for _, w := range []uint{0, 1, 3, 5, 8} {
				got, err := MultiExp(bases, exps, m, w)
				if err != nil {
					t.Fatalf("MultiExp(count=%d mask=%#x w=%d): %v", count, mask, w, err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("MultiExp(count=%d mask=%#x w=%d) = %v, want %v", count, mask, w, got, want)
				}
			}
		}
	}
}

func TestMultiExpParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := new(big.Int).SetString("c90fdaa22168c234c4c6628b80dc1cd1", 16)
	for _, count := range []int{1, 2, 3, 16, 257} {
		bases, exps := randOperands(rng, count, 120, ^uint64(0))
		want := naiveMultiExp(bases, exps, m)
		for _, workers := range []int{1, 2, 4, 9} {
			got, err := MultiExpParallel(bases, exps, m, 0, workers)
			if err != nil {
				t.Fatalf("MultiExpParallel(count=%d workers=%d): %v", count, workers, err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("MultiExpParallel(count=%d workers=%d) = %v, want %v", count, workers, got, want)
			}
		}
	}
}

// TestMultiExpWindowSplit forces the window-split parallel path: fewer rows
// than exponent windows (2 rows of 64-bit exponents at window 2 = 32
// windows).
func TestMultiExpWindowSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := new(big.Int).SetString("e95e4a5f737059dc60dfc7ad95b3d8139515620f", 16)
	bases, exps := randOperands(rng, 2, 100, ^uint64(0))
	want := naiveMultiExp(bases, exps, m)
	for _, workers := range []int{2, 5, 64} {
		got, err := MultiExpParallel(bases, exps, m, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("window-split workers=%d = %v, want %v", workers, got, want)
		}
	}
}

func TestMultiExpEdgeCases(t *testing.T) {
	m := big.NewInt(97)

	// Empty operands: the empty product.
	got, err := MultiExp(nil, nil, m, 0)
	if err != nil || got.Cmp(One) != 0 {
		t.Errorf("empty product = %v, %v; want 1", got, err)
	}

	// All-zero exponents: also the empty product, at any worker count.
	bases := []*big.Int{big.NewInt(5), big.NewInt(7)}
	got, err = MultiExpParallel(bases, []uint64{0, 0}, m, 0, 4)
	if err != nil || got.Cmp(One) != 0 {
		t.Errorf("zero exponents = %v, %v; want 1", got, err)
	}

	// Modulus 1: everything is 0.
	got, err = MultiExp(bases, []uint64{3, 4}, big.NewInt(1), 0)
	if err != nil || got.Sign() != 0 {
		t.Errorf("mod 1 = %v, %v; want 0", got, err)
	}

	// Negative bases reduce like big.Int.Exp.
	neg := []*big.Int{big.NewInt(-6)}
	want := new(big.Int).Exp(neg[0], big.NewInt(13), m)
	got, err = MultiExp(neg, []uint64{13}, m, 3)
	if err != nil || got.Cmp(want) != 0 {
		t.Errorf("negative base = %v, %v; want %v", got, err, want)
	}
}

func TestMultiExpValidation(t *testing.T) {
	m := big.NewInt(97)
	if _, err := MultiExp([]*big.Int{One}, []uint64{1}, nil, 0); err == nil {
		t.Error("nil modulus should fail")
	}
	if _, err := MultiExp([]*big.Int{One}, []uint64{1}, big.NewInt(-5), 0); err == nil {
		t.Error("negative modulus should fail")
	}
	if _, err := MultiExp([]*big.Int{One}, []uint64{1, 2}, m, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := MultiExp([]*big.Int{nil}, []uint64{1}, m, 0); err == nil {
		t.Error("nil base should fail")
	}
	if _, err := MultiExp([]*big.Int{One}, []uint64{1}, m, MaxMultiExpWindow+1); err == nil {
		t.Error("oversized window should fail")
	}
}

func TestPickMultiExpWindowMonotone(t *testing.T) {
	// Wider chunks should never pick a narrower window, and every pick must
	// be in range.
	prev := uint(0)
	for _, count := range []int{1, 16, 256, 4096, 65536} {
		w := PickMultiExpWindow(count, 32)
		if w < 1 || w > MaxMultiExpWindow {
			t.Fatalf("window %d out of range for count %d", w, count)
		}
		if w < prev {
			t.Errorf("window shrank from %d to %d at count %d", prev, w, count)
		}
		prev = w
	}
}

func BenchmarkMultiExp4096x32(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m, _ := new(big.Int).SetString("e95e4a5f737059dc60dfc7ad95b3d8139515620f45434c1c8e84a01d4a3c62bb", 16)
	bases, exps := randOperands(rng, 4096, 256, 0xffffffff)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MultiExp(bases, exps, m, 0); err != nil {
			b.Fatal(err)
		}
	}
}
