package mathx

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func TestRandIntRange(t *testing.T) {
	max := big.NewInt(1000)
	for i := 0; i < 200; i++ {
		v, err := RandInt(rand.Reader, max)
		if err != nil {
			t.Fatalf("RandInt: %v", err)
		}
		if v.Sign() < 0 || v.Cmp(max) >= 0 {
			t.Fatalf("RandInt out of range: %v", v)
		}
	}
}

func TestRandIntRejectsBadBounds(t *testing.T) {
	for _, max := range []*big.Int{nil, big.NewInt(0), big.NewInt(-5)} {
		if _, err := RandInt(rand.Reader, max); err == nil {
			t.Errorf("RandInt(%v) should fail", max)
		}
	}
}

func TestRandUnitIsUnit(t *testing.T) {
	n := big.NewInt(35) // 5*7
	gcd := new(big.Int)
	for i := 0; i < 100; i++ {
		v, err := RandUnit(rand.Reader, n)
		if err != nil {
			t.Fatalf("RandUnit: %v", err)
		}
		if v.Sign() <= 0 || v.Cmp(n) >= 0 {
			t.Fatalf("unit out of range: %v", v)
		}
		if gcd.GCD(nil, nil, v, n).Cmp(One) != 0 {
			t.Fatalf("not a unit: %v", v)
		}
	}
}

func TestRandUnitRejectsTrivialModulus(t *testing.T) {
	if _, err := RandUnit(rand.Reader, big.NewInt(1)); err == nil {
		t.Error("RandUnit(1) should fail: group is empty")
	}
	if _, err := RandUnit(rand.Reader, big.NewInt(0)); err == nil {
		t.Error("RandUnit(0) should fail")
	}
}

func TestRandBits(t *testing.T) {
	for _, bits := range []int{2, 8, 64, 512} {
		v, err := RandBits(rand.Reader, bits)
		if err != nil {
			t.Fatalf("RandBits(%d): %v", bits, err)
		}
		if v.BitLen() != bits {
			t.Errorf("RandBits(%d) returned %d-bit value", bits, v.BitLen())
		}
	}
	if _, err := RandBits(rand.Reader, 1); err == nil {
		t.Error("RandBits(1) should fail")
	}
}

func TestModInverse(t *testing.T) {
	n := big.NewInt(101) // prime
	for a := int64(1); a < 101; a++ {
		inv, err := ModInverse(big.NewInt(a), n)
		if err != nil {
			t.Fatalf("inverse of %d mod 101: %v", a, err)
		}
		prod := new(big.Int).Mul(big.NewInt(a), inv)
		prod.Mod(prod, n)
		if prod.Cmp(One) != 0 {
			t.Fatalf("a·a^-1 != 1 for a=%d", a)
		}
	}
}

func TestModInverseNotInvertible(t *testing.T) {
	_, err := ModInverse(big.NewInt(7), big.NewInt(35))
	if err == nil {
		t.Fatal("7 shares factor 7 with 35; inverse must not exist")
	}
}

func TestLcm(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{4, 6, 12},
		{5, 7, 35},
		{0, 9, 0},
		{12, 12, 12},
		{21, 6, 42},
	}
	for _, c := range cases {
		got := Lcm(big.NewInt(c.a), big.NewInt(c.b))
		if got.Int64() != c.want {
			t.Errorf("Lcm(%d,%d) = %v, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLcmProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		if a == 0 || b == 0 {
			return true
		}
		ba, bb := big.NewInt(int64(a)), big.NewInt(int64(b))
		l := Lcm(ba, bb)
		// lcm divisible by both, and lcm*gcd = a*b.
		if new(big.Int).Mod(l, ba).Sign() != 0 || new(big.Int).Mod(l, bb).Sign() != 0 {
			return false
		}
		gcd := new(big.Int).GCD(nil, nil, ba, bb)
		return new(big.Int).Mul(l, gcd).Cmp(new(big.Int).Mul(ba, bb)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLFunction(t *testing.T) {
	n := big.NewInt(15)
	u := big.NewInt(46) // 46 - 1 = 45 = 3·15
	got, err := L(u, n)
	if err != nil {
		t.Fatalf("L: %v", err)
	}
	if got.Int64() != 3 {
		t.Errorf("L(46,15) = %v, want 3", got)
	}
	if _, err := L(big.NewInt(47), n); err == nil {
		t.Error("L should reject u with u-1 not divisible by n")
	}
}

func TestCRTCombine(t *testing.T) {
	p, q := big.NewInt(11), big.NewInt(13)
	crt, err := NewCRT(p, q)
	if err != nil {
		t.Fatalf("NewCRT: %v", err)
	}
	for x := int64(0); x < 143; x++ {
		bx := big.NewInt(x)
		ap := new(big.Int).Mod(bx, p)
		aq := new(big.Int).Mod(bx, q)
		got := crt.Combine(ap, aq)
		if got.Int64() != x {
			t.Fatalf("Combine(%v,%v) = %v, want %d", ap, aq, got, x)
		}
	}
}

func TestCRTRejectsNonCoprime(t *testing.T) {
	if _, err := NewCRT(big.NewInt(6), big.NewInt(9)); err == nil {
		t.Fatal("NewCRT(6,9) should fail: not coprime")
	}
}

func TestExpCRTMatchesDirect(t *testing.T) {
	p, err := GeneratePrime(rand.Reader, 64)
	if err != nil {
		t.Fatal(err)
	}
	q, err := GeneratePrime(rand.Reader, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(q) == 0 {
		t.Skip("astronomically unlikely: p == q")
	}
	crt, err := NewCRT(p, q)
	if err != nil {
		t.Fatal(err)
	}
	n := crt.N()
	for i := 0; i < 50; i++ {
		base, _ := RandInt(rand.Reader, n)
		exp, _ := RandInt(rand.Reader, n)
		want := new(big.Int).Exp(base, exp, n)
		got := crt.ExpCRT(base, exp)
		if got.Cmp(want) != 0 {
			t.Fatalf("ExpCRT mismatch: base=%v exp=%v got=%v want=%v", base, exp, got, want)
		}
	}
}

func TestExpCRTZeroBase(t *testing.T) {
	crt, err := NewCRT(big.NewInt(11), big.NewInt(13))
	if err != nil {
		t.Fatal(err)
	}
	got := crt.ExpCRT(big.NewInt(0), big.NewInt(5))
	if got.Sign() != 0 {
		t.Errorf("0^5 = %v, want 0", got)
	}
	// base divisible by p but not q
	got = crt.ExpCRT(big.NewInt(11), big.NewInt(3))
	want := new(big.Int).Exp(big.NewInt(11), big.NewInt(3), big.NewInt(143))
	if got.Cmp(want) != 0 {
		t.Errorf("11^3 mod 143 = %v, want %v", got, want)
	}
}

func TestExpCRTExponentMultipleOfOrder(t *testing.T) {
	crt, err := NewCRT(big.NewInt(11), big.NewInt(13))
	if err != nil {
		t.Fatal(err)
	}
	n := big.NewInt(143)
	// exponent = lcm(10,12) = 60: reduces to 0 mod both p-1 and q-1.
	exp := big.NewInt(60)
	for _, base := range []int64{2, 3, 7, 142} {
		got := crt.ExpCRT(big.NewInt(base), exp)
		want := new(big.Int).Exp(big.NewInt(base), exp, n)
		if got.Cmp(want) != 0 {
			t.Errorf("base %d: got %v want %v", base, got, want)
		}
	}
}

func TestGeneratePrimePair(t *testing.T) {
	p, q, err := GeneratePrimePair(rand.Reader, 64)
	if err != nil {
		t.Fatalf("GeneratePrimePair: %v", err)
	}
	if !p.ProbablyPrime(20) || !q.ProbablyPrime(20) {
		t.Fatal("non-prime output")
	}
	if p.Cmp(q) == 0 {
		t.Fatal("p == q")
	}
	n := new(big.Int).Mul(p, q)
	if n.BitLen() != 128 {
		t.Fatalf("modulus has %d bits, want 128", n.BitLen())
	}
	phi := new(big.Int).Mul(new(big.Int).Sub(p, One), new(big.Int).Sub(q, One))
	if new(big.Int).GCD(nil, nil, n, phi).Cmp(One) != 0 {
		t.Fatal("gcd(n, phi) != 1")
	}
}

func TestGeneratePrimePairRejectsTinyBits(t *testing.T) {
	if _, _, err := GeneratePrimePair(rand.Reader, 8); err == nil {
		t.Fatal("should reject 8-bit request")
	}
}

func TestJacobi(t *testing.T) {
	// (a/7) for quadratic residues 1,2,4 is +1; for 3,5,6 is -1.
	n := big.NewInt(7)
	for a, want := range map[int64]int{1: 1, 2: 1, 3: -1, 4: 1, 5: -1, 6: -1} {
		got, err := Jacobi(big.NewInt(a), n)
		if err != nil {
			t.Fatalf("Jacobi(%d,7): %v", a, err)
		}
		if got != want {
			t.Errorf("Jacobi(%d,7) = %d, want %d", a, got, want)
		}
	}
	if _, err := Jacobi(big.NewInt(3), big.NewInt(8)); err == nil {
		t.Error("Jacobi with even modulus should error")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0}, {1, 5, 1}, {5, 5, 1}, {6, 5, 2}, {10, 3, 4}, {-3, 5, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnBadDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(1,0) should panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestFixedBaseExpMatchesDirect(t *testing.T) {
	m := big.NewInt(1000003)
	base := big.NewInt(7919)
	f, err := NewFixedBaseExp(base, m, 64, 4)
	if err != nil {
		t.Fatalf("NewFixedBaseExp: %v", err)
	}
	for i := 0; i < 200; i++ {
		e, _ := RandInt(rand.Reader, new(big.Int).Lsh(One, 64))
		got, err := f.Exp(e)
		if err != nil {
			t.Fatalf("Exp: %v", err)
		}
		want := new(big.Int).Exp(base, e, m)
		if got.Cmp(want) != 0 {
			t.Fatalf("fixed-base mismatch for e=%v: got %v want %v", e, got, want)
		}
	}
}

func TestFixedBaseExpEdgeCases(t *testing.T) {
	m := big.NewInt(97)
	f, err := NewFixedBaseExp(big.NewInt(5), m, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Exp(Zero)
	if err != nil || got.Cmp(One) != 0 {
		t.Errorf("g^0 = %v (err %v), want 1", got, err)
	}
	if _, err := f.Exp(big.NewInt(-1)); err == nil {
		t.Error("negative exponent should error")
	}
	if _, err := f.Exp(new(big.Int).Lsh(One, 17)); err == nil {
		t.Error("oversized exponent should error")
	}
}

func TestFixedBaseExpRejectsBadParams(t *testing.T) {
	if _, err := NewFixedBaseExp(Two, big.NewInt(97), 16, 0); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := NewFixedBaseExp(Two, big.NewInt(97), 0, 4); err == nil {
		t.Error("maxBits 0 should fail")
	}
	if _, err := NewFixedBaseExp(Two, Zero, 16, 4); err == nil {
		t.Error("zero modulus should fail")
	}
}

func TestFixedBaseExpProperty(t *testing.T) {
	m := big.NewInt(65537)
	f, err := NewFixedBaseExp(Three, m, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(e uint32) bool {
		be := new(big.Int).SetUint64(uint64(e))
		got, err := f.Exp(be)
		if err != nil {
			return false
		}
		return got.Cmp(new(big.Int).Exp(Three, be, m)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkExpDirect(b *testing.B) {
	p, q, err := GeneratePrimePair(rand.Reader, 256)
	if err != nil {
		b.Fatal(err)
	}
	n := new(big.Int).Mul(p, q)
	base, _ := RandUnit(rand.Reader, n)
	exp, _ := RandInt(rand.Reader, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(big.Int).Exp(base, exp, n)
	}
}

func BenchmarkExpCRT(b *testing.B) {
	p, q, err := GeneratePrimePair(rand.Reader, 256)
	if err != nil {
		b.Fatal(err)
	}
	crt, err := NewCRT(p, q)
	if err != nil {
		b.Fatal(err)
	}
	n := crt.N()
	base, _ := RandUnit(rand.Reader, n)
	exp, _ := RandInt(rand.Reader, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crt.ExpCRT(base, exp)
	}
}

func BenchmarkFixedBaseExp(b *testing.B) {
	p, q, err := GeneratePrimePair(rand.Reader, 256)
	if err != nil {
		b.Fatal(err)
	}
	n := new(big.Int).Mul(p, q)
	base, _ := RandUnit(rand.Reader, n)
	f, err := NewFixedBaseExp(base, n, 512, 6)
	if err != nil {
		b.Fatal(err)
	}
	exp, _ := RandInt(rand.Reader, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Exp(exp); err != nil {
			b.Fatal(err)
		}
	}
}
