package mathx

import (
	"crypto/rand"
	"math/big"
	"math/bits"
	"sync"
	"testing"
)

// Differential coverage for the word-extracting digit scan: every window
// width the constructor accepts, against big.Int.Exp, over exponents chosen
// to straddle word boundaries in every alignment.

func fbTestModulus(t *testing.T) *big.Int {
	t.Helper()
	p, err := GeneratePrime(rand.Reader, 128)
	if err != nil {
		t.Fatalf("GeneratePrime: %v", err)
	}
	return p
}

func TestFixedBaseExpAllWindowsMatchExp(t *testing.T) {
	m := fbTestModulus(t)
	base := big.NewInt(0xA5A5A5)
	const maxBits = 200
	for w := uint(1); w <= 16; w++ {
		f, err := NewFixedBaseExp(base, m, maxBits, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for trial := 0; trial < 8; trial++ {
			e, err := RandInt(rand.Reader, new(big.Int).Lsh(One, maxBits))
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.Exp(e)
			if err != nil {
				t.Fatalf("w=%d Exp: %v", w, err)
			}
			want := new(big.Int).Exp(base, e, m)
			if got.Cmp(want) != 0 {
				t.Fatalf("w=%d e=%v: got %v want %v", w, e, got, want)
			}
		}
	}
}

func TestFixedBaseExpWordBoundaryDigits(t *testing.T) {
	m := fbTestModulus(t)
	base := big.NewInt(3)
	const maxBits = 3 * bits.UintSize
	// Exponents with runs of ones centered on every word boundary, so a
	// digit extraction that drops or duplicates the carry bits across words
	// cannot pass.
	var exps []*big.Int
	for _, boundary := range []int{bits.UintSize, 2 * bits.UintSize} {
		for span := 1; span <= 17; span++ {
			e := new(big.Int)
			for b := boundary - span; b < boundary+span; b++ {
				if b >= 0 && b < maxBits {
					e.SetBit(e, b, 1)
				}
			}
			exps = append(exps, e)
		}
	}
	// And the all-ones exponent, where every digit is the full mask.
	allOnes := new(big.Int).Lsh(One, maxBits)
	allOnes.Sub(allOnes, One)
	exps = append(exps, allOnes)

	for w := uint(1); w <= 16; w++ {
		f, err := NewFixedBaseExp(base, m, maxBits, w)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for _, e := range exps {
			got, err := f.Exp(e)
			if err != nil {
				t.Fatalf("w=%d e=%x: %v", w, e, err)
			}
			want := new(big.Int).Exp(base, e, m)
			if got.Cmp(want) != 0 {
				t.Fatalf("w=%d e=%x: got %v want %v", w, e, got, want)
			}
		}
	}
}

func TestFixedBaseExpZeroExponent(t *testing.T) {
	m := fbTestModulus(t)
	f, err := NewFixedBaseExp(big.NewInt(7), m, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Exp(new(big.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(One) != 0 {
		t.Fatalf("x^0 = %v, want 1", got)
	}
}

func TestFixedBaseExpExactMaxBits(t *testing.T) {
	m := fbTestModulus(t)
	base := big.NewInt(11)
	for _, maxBits := range []int{64, 65, 100} {
		for _, w := range []uint{4, 6, 7} { // 7 never divides these maxBits
			f, err := NewFixedBaseExp(base, m, maxBits, w)
			if err != nil {
				t.Fatal(err)
			}
			// Exponent of exactly maxBits bits: top bit set, rest ones —
			// exercises the final (possibly partial) window row.
			e := new(big.Int).Lsh(One, uint(maxBits))
			e.Sub(e, One)
			got, err := f.Exp(e)
			if err != nil {
				t.Fatalf("maxBits=%d w=%d: %v", maxBits, w, err)
			}
			want := new(big.Int).Exp(base, e, m)
			if got.Cmp(want) != 0 {
				t.Fatalf("maxBits=%d w=%d: got %v want %v", maxBits, w, got, want)
			}
			// One bit past the table must be rejected, not truncated.
			over := new(big.Int).Lsh(One, uint(maxBits))
			if _, err := f.Exp(over); err == nil {
				t.Fatalf("maxBits=%d w=%d: accepted %d-bit exponent", maxBits, w, maxBits+1)
			}
		}
	}
}

func TestFixedBaseExpBaseAboveModulus(t *testing.T) {
	m := big.NewInt(1009)
	base := new(big.Int).Add(new(big.Int).Mul(m, big.NewInt(5)), big.NewInt(123)) // ≡ 123 mod m
	f, err := NewFixedBaseExp(base, m, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := big.NewInt(987654321)
	got, err := f.Exp(e)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Exp(big.NewInt(123), e, m)
	if got.Cmp(want) != 0 {
		t.Fatalf("base >= m: got %v want %v", got, want)
	}
}

// TestFixedBaseExpConcurrent drives one shared table from many goroutines;
// the table is read-only after construction, so this must be race-clean
// (run under -race via make check).
func TestFixedBaseExpConcurrent(t *testing.T) {
	m := fbTestModulus(t)
	base := big.NewInt(65537)
	const maxBits = 160
	f, err := NewFixedBaseExp(base, m, maxBits, 6)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := big.NewInt(int64(g + 1))
			for i := 0; i < 50; i++ {
				e.Mul(e, big.NewInt(1000003))
				e.SetBit(e, i%maxBits, 1)
				ered := new(big.Int).Mod(e, new(big.Int).Lsh(One, maxBits))
				got, err := f.Exp(ered)
				if err != nil {
					errs <- err
					return
				}
				if want := new(big.Int).Exp(base, ered, m); got.Cmp(want) != 0 {
					t.Errorf("goroutine %d iter %d: mismatch", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
