package yao

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Classic point-and-permute garbling. Each wire w gets two random labels
// L_w^0, L_w^1 with a permute bit in the label's last byte. Each gate's
// truth table is four encryptions of the output label under the two input
// labels, ordered by the inputs' permute bits, so the evaluator decrypts
// exactly one row without trial decryption.
//
// Deliberately NOT implemented: free-XOR, row reduction, half-gates. The
// 2004 Fairplay system this package stands in for predates them all, so the
// plain scheme gives the more faithful per-gate constant for the E8
// comparison.

// labelSize is the wire-label width in bytes (128-bit labels plus the
// permute bit stored in the low bit of the final byte).
const labelSize = 16

// label is one wire label.
type label [labelSize]byte

func (l label) permuteBit() uint8 { return l[labelSize-1] & 1 }

// wireLabels holds both labels of a wire.
type wireLabels struct {
	l0, l1 label
}

func (w wireLabels) pick(bit uint8) label {
	if bit == 0 {
		return w.l0
	}
	return w.l1
}

// GarbledGate is the four-row encrypted truth table.
type GarbledGate struct {
	Rows [4][labelSize]byte
}

// GarbledCircuit is what the generator ships to the evaluator: the circuit
// topology, the garbled tables, and the decoding information for outputs.
type GarbledCircuit struct {
	Circuit *Circuit
	Tables  []GarbledGate
	// OutputPerm maps each output wire's permute bit to the cleartext bit:
	// bit value = permute bit XOR OutputPerm[i].
	OutputPerm []uint8

	wires []wireLabels // generator-side secret; nil on the evaluator
}

// Garble garbles the circuit, returning the garbled form plus the
// generator's secret wire labels (needed to encode inputs).
func Garble(c *Circuit) (*GarbledCircuit, error) {
	if c == nil || len(c.Outputs) == 0 {
		return nil, errors.New("yao: cannot garble an empty circuit")
	}
	wires := make([]wireLabels, c.NumWires())
	for i := range wires {
		if _, err := rand.Read(wires[i].l0[:]); err != nil {
			return nil, fmt.Errorf("yao: sampling labels: %w", err)
		}
		if _, err := rand.Read(wires[i].l1[:]); err != nil {
			return nil, fmt.Errorf("yao: sampling labels: %w", err)
		}
		// Opposite permute bits so the evaluator's row choice is uniform.
		wires[i].l1[labelSize-1] = wires[i].l0[labelSize-1] ^ 1
	}

	gc := &GarbledCircuit{
		Circuit: c,
		Tables:  make([]GarbledGate, len(c.Gates)),
		wires:   wires,
	}
	for gi, g := range c.Gates {
		var table GarbledGate
		for va := uint8(0); va <= 1; va++ {
			for vb := uint8(0); vb <= 1; vb++ {
				la := wires[g.A].pick(va)
				lb := wires[g.B].pick(vb)
				out := wires[g.Out].pick(g.Op.Eval(va, vb))
				row := int(la.permuteBit())<<1 | int(lb.permuteBit())
				pad := rowKey(la, lb, gi)
				for i := 0; i < labelSize; i++ {
					table.Rows[row][i] = out[i] ^ pad[i]
				}
			}
		}
		gc.Tables[gi] = table
	}
	gc.OutputPerm = make([]uint8, len(c.Outputs))
	for i, w := range c.Outputs {
		// permute bit of the 0-label reveals the decoding.
		gc.OutputPerm[i] = wires[w].l0.permuteBit()
	}
	return gc, nil
}

// rowKey derives the one-time pad for a table row from the two input
// labels and the gate index.
func rowKey(la, lb label, gate int) [labelSize]byte {
	h := sha256.New()
	h.Write(la[:])
	h.Write(lb[:])
	var gid [8]byte
	binary.BigEndian.PutUint64(gid[:], uint64(gate))
	h.Write(gid[:])
	var out [labelSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// EncodeInputs maps cleartext input bits to their wire labels. In a real
// deployment the evaluator's share of these travels via oblivious transfer;
// the cost model accounts for OT separately (see CostModel.OTPerBit).
func (gc *GarbledCircuit) EncodeInputs(inputs []uint8) ([]label, error) {
	if gc.wires == nil {
		return nil, errors.New("yao: only the generator can encode inputs")
	}
	if len(inputs) != gc.Circuit.NumInputs {
		return nil, fmt.Errorf("yao: %d inputs for %d input wires", len(inputs), gc.Circuit.NumInputs)
	}
	out := make([]label, len(inputs))
	for i, b := range inputs {
		if b > 1 {
			return nil, fmt.Errorf("yao: input %d is not a bit", i)
		}
		out[i] = gc.wires[i].pick(b)
	}
	return out, nil
}

// Evaluate runs the garbled circuit on encoded inputs and decodes the
// output bits. It uses only public information plus the input labels —
// the evaluator's view.
func (gc *GarbledCircuit) Evaluate(inputLabels []label) ([]uint8, error) {
	c := gc.Circuit
	if len(inputLabels) != c.NumInputs {
		return nil, fmt.Errorf("yao: %d labels for %d input wires", len(inputLabels), c.NumInputs)
	}
	wires := make([]label, c.NumWires())
	copy(wires, inputLabels)
	for gi, g := range c.Gates {
		la, lb := wires[g.A], wires[g.B]
		row := int(la.permuteBit())<<1 | int(lb.permuteBit())
		pad := rowKey(la, lb, gi)
		var out label
		for i := 0; i < labelSize; i++ {
			out[i] = gc.Tables[gi].Rows[row][i] ^ pad[i]
		}
		wires[g.Out] = out
	}
	bits := make([]uint8, len(c.Outputs))
	for i, w := range c.Outputs {
		bits[i] = wires[w].permuteBit() ^ gc.OutputPerm[i]
	}
	return bits, nil
}

// GarbledSize returns the bytes a garbled circuit occupies on the wire:
// four label-sized rows per gate plus topology overhead.
func (gc *GarbledCircuit) GarbledSize() int64 {
	const perGateTopology = 13 // op byte + three uint32 wire ids
	return int64(len(gc.Tables)) * (4*labelSize + perGateTopology)
}
