package yao

import (
	"crypto/rand"
	"testing"
	"time"
)

func otSender(t testing.TB) *OTSender {
	t.Helper()
	s, err := NewOTSender(512)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOTTransfersChosenMessage(t *testing.T) {
	s := otSender(t)
	var m0, m1 [OTMessageSize]byte
	if _, err := rand.Read(m0[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := rand.Read(m1[:]); err != nil {
		t.Fatal(err)
	}
	n, e, x0, x1 := s.PublicParams()
	for choice := uint(0); choice <= 1; choice++ {
		recv, req, err := NewOTRequest(n, e, x0, x1, choice)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := s.Respond(req, m0, m1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recv.Open(resp)
		if err != nil {
			t.Fatal(err)
		}
		want := m0
		if choice == 1 {
			want = m1
		}
		if got != want {
			t.Fatalf("choice %d: recovered wrong message", choice)
		}
		// The other branch must NOT be recoverable with the receiver's key:
		// opening the wrong slot yields garbage.
		other := m1
		if choice == 1 {
			other = m0
		}
		wrong := &OTResponse{M0: resp.M1, M1: resp.M0}
		leak, err := recv.Open(wrong)
		if err != nil {
			t.Fatal(err)
		}
		if leak == other {
			t.Fatal("receiver recovered the unchosen message: OT security broken")
		}
	}
}

func TestOTRequestsHideChoice(t *testing.T) {
	// The sender's view v is uniform regardless of the choice bit; at
	// minimum two requests for the same bit must differ (fresh randomness).
	s := otSender(t)
	n, e, x0, x1 := s.PublicParams()
	_, r1, err := NewOTRequest(n, e, x0, x1, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := NewOTRequest(n, e, x0, x1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.V.Cmp(r2.V) == 0 {
		t.Fatal("two OT requests identical: choice would be linkable")
	}
}

func TestOTValidation(t *testing.T) {
	s := otSender(t)
	n, e, x0, x1 := s.PublicParams()
	if _, _, err := NewOTRequest(n, e, x0, x1, 2); err == nil {
		t.Error("choice 2 should fail")
	}
	if _, err := s.Respond(nil, [OTMessageSize]byte{}, [OTMessageSize]byte{}); err == nil {
		t.Error("nil request should fail")
	}
	if _, err := s.Respond(&OTRequest{V: n}, [OTMessageSize]byte{}, [OTMessageSize]byte{}); err == nil {
		t.Error("out-of-range request should fail")
	}
	recv, _, err := NewOTRequest(n, e, x0, x1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recv.Open(nil); err == nil {
		t.Error("nil response should fail")
	}
	if _, err := NewOTSender(16); err == nil {
		t.Error("tiny modulus should fail")
	}
}

func TestFullTwoPartyComputation(t *testing.T) {
	// End to end: generator garbles the selected-sum circuit and inputs its
	// database values directly; the evaluator's selector bits arrive ONLY
	// via oblivious transfer; evaluation recovers the right sum.
	const n, vb = 4, 6
	values := []uint64{9, 25, 3, 41}
	selector := []uint8{1, 0, 1, 1} // sum = 9 + 3 + 41 = 53

	c, err := SelectedSumCircuit(n, vb)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := Garble(c)
	if err != nil {
		t.Fatal(err)
	}
	// Generator encodes its own (server) value wires.
	inputs := make([]uint8, c.NumInputs)
	for i, v := range values {
		for b := 0; b < vb; b++ {
			inputs[n+i*vb+b] = uint8(v >> b & 1)
		}
	}
	allLabels, err := gc.EncodeInputs(inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluator's selector labels come through real OTs (wires 0..n-1).
	sender := otSender(t)
	selLabels, err := TransferInputs(sender, gc, selector, 0)
	if err != nil {
		t.Fatal(err)
	}
	copy(allLabels[:n], selLabels)

	out, err := gc.Evaluate(allLabels)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	for b, bit := range out {
		got |= uint64(bit) << b
	}
	if got != 53 {
		t.Fatalf("2PC selected sum = %d, want 53", got)
	}
}

func TestTransferInputsValidation(t *testing.T) {
	c, err := SelectedSumCircuit(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := Garble(c)
	if err != nil {
		t.Fatal(err)
	}
	s := otSender(t)
	if _, err := TransferInputs(s, gc, []uint8{0, 1, 0, 1, 0, 1, 0}, 0); err == nil {
		t.Error("too many evaluator bits should fail")
	}
	if _, err := TransferInputs(s, gc, []uint8{2}, 0); err == nil {
		t.Error("non-bit input should fail")
	}
	eval := &GarbledCircuit{Circuit: c, Tables: gc.Tables, OutputPerm: gc.OutputPerm}
	if _, err := TransferInputs(s, eval, []uint8{1}, 0); err == nil {
		t.Error("evaluator-side transfer should fail")
	}
}

func BenchmarkOTPerBit(b *testing.B) {
	// The measured constant behind the cost model's OTPerBit.
	s, err := NewOTSender(512)
	if err != nil {
		b.Fatal(err)
	}
	n, e, x0, x1 := s.PublicParams()
	var m0, m1 [OTMessageSize]byte
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		recv, req, err := NewOTRequest(n, e, x0, x1, uint(i%2))
		if err != nil {
			b.Fatal(err)
		}
		resp, err := s.Respond(req, m0, m1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := recv.Open(resp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(b.N)/1000, "us/ot")
}
