// Package yao implements a miniature Yao garbled-circuit system and a cost
// model for the paper's general-SMC comparison.
//
// Section 2 of the paper dismisses generic secure multiparty computation
// for the selected-sum problem by citing the Fairplay implementation of
// Yao's protocol: "an execution time of at least 15 minutes for a database
// of only 1,000 elements". We cannot rerun 2004's Fairplay, so this package
// reproduces the comparison from first principles (DESIGN.md §2):
//
//   - a real, executable garbled-circuit generator/evaluator
//     (point-and-permute, SHA-256 tables) over boolean circuits;
//   - a circuit builder for the n-element selected sum;
//   - a cost model that extrapolates the measured per-gate constants to
//     database sizes where actually garbling the circuit would be absurd —
//     which is precisely the paper's point.
package yao

import (
	"errors"
	"fmt"
)

// GateOp is a two-input boolean gate type.
type GateOp uint8

// Supported gate operations.
const (
	OpAND GateOp = iota
	OpXOR
	OpOR
	// OpNOTA outputs ¬a, ignoring the b input (wired to a).
	OpNOTA
)

// String implements fmt.Stringer.
func (op GateOp) String() string {
	switch op {
	case OpAND:
		return "AND"
	case OpXOR:
		return "XOR"
	case OpOR:
		return "OR"
	case OpNOTA:
		return "NOT"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Eval computes the gate on cleartext bits.
func (op GateOp) Eval(a, b uint8) uint8 {
	switch op {
	case OpAND:
		return a & b
	case OpXOR:
		return a ^ b
	case OpOR:
		return a | b
	case OpNOTA:
		return a ^ 1
	default:
		panic("yao: unknown gate op")
	}
}

// Gate connects two input wires to one output wire.
type Gate struct {
	Op   GateOp
	A, B int // input wire ids
	Out  int // output wire id
}

// Circuit is a boolean circuit in topological order: gate inputs are either
// circuit inputs or outputs of earlier gates.
type Circuit struct {
	// NumInputs is the count of input wires; wires [0, NumInputs) are
	// inputs, gate outputs follow.
	NumInputs int
	Gates     []Gate
	// Outputs lists the wire ids holding the circuit result.
	Outputs []int

	numWires   int
	cachedZero int // shared constant-0 wire id, 0 when not yet built
}

// NewCircuit starts a circuit with the given number of input wires.
func NewCircuit(numInputs int) (*Circuit, error) {
	if numInputs < 1 {
		return nil, errors.New("yao: circuit needs at least one input")
	}
	return &Circuit{NumInputs: numInputs, numWires: numInputs}, nil
}

// AddGate appends a gate reading wires a and b and returns its output wire.
func (c *Circuit) AddGate(op GateOp, a, b int) (int, error) {
	if a < 0 || a >= c.numWires || b < 0 || b >= c.numWires {
		return 0, fmt.Errorf("yao: gate inputs (%d,%d) out of range [0,%d)", a, b, c.numWires)
	}
	out := c.numWires
	c.numWires++
	c.Gates = append(c.Gates, Gate{Op: op, A: a, B: b, Out: out})
	return out, nil
}

// NumWires returns the total wire count.
func (c *Circuit) NumWires() int { return c.numWires }

// EvalClear evaluates the circuit on cleartext input bits — the correctness
// oracle for the garbled evaluation.
func (c *Circuit) EvalClear(inputs []uint8) ([]uint8, error) {
	if len(inputs) != c.NumInputs {
		return nil, fmt.Errorf("yao: %d inputs for %d input wires", len(inputs), c.NumInputs)
	}
	wires := make([]uint8, c.numWires)
	copy(wires, inputs)
	for _, g := range c.Gates {
		wires[g.Out] = g.Op.Eval(wires[g.A], wires[g.B])
	}
	out := make([]uint8, len(c.Outputs))
	for i, w := range c.Outputs {
		if w < 0 || w >= c.numWires {
			return nil, fmt.Errorf("yao: output wire %d out of range", w)
		}
		out[i] = wires[w]
	}
	return out, nil
}

// addRippleAdder wires an accWidth-bit ripple-carry adder adding the
// addend wires into the accumulator wires, returning the new accumulator
// wires (the carry out is dropped: the accumulator is sized to never
// overflow). addend may be narrower than acc; missing high bits are zero
// and their full-adder reduces to a half-adder.
func (c *Circuit) addRippleAdder(acc, addend []int) ([]int, error) {
	out := make([]int, len(acc))
	carry := -1 // no carry into bit 0
	for i := range acc {
		var a, b = acc[i], -1
		if i < len(addend) {
			b = addend[i]
		}
		switch {
		case b == -1 && carry == -1:
			out[i] = a
		case b == -1:
			// half adder with carry: s = a^c, c' = a&c
			s, err := c.AddGate(OpXOR, a, carry)
			if err != nil {
				return nil, err
			}
			nc, err := c.AddGate(OpAND, a, carry)
			if err != nil {
				return nil, err
			}
			out[i], carry = s, nc
		case carry == -1:
			s, err := c.AddGate(OpXOR, a, b)
			if err != nil {
				return nil, err
			}
			nc, err := c.AddGate(OpAND, a, b)
			if err != nil {
				return nil, err
			}
			out[i], carry = s, nc
		default:
			// full adder: s = a^b^c; c' = (a&b) | (c & (a^b))
			axb, err := c.AddGate(OpXOR, a, b)
			if err != nil {
				return nil, err
			}
			s, err := c.AddGate(OpXOR, axb, carry)
			if err != nil {
				return nil, err
			}
			ab, err := c.AddGate(OpAND, a, b)
			if err != nil {
				return nil, err
			}
			cx, err := c.AddGate(OpAND, carry, axb)
			if err != nil {
				return nil, err
			}
			nc, err := c.AddGate(OpOR, ab, cx)
			if err != nil {
				return nil, err
			}
			out[i], carry = s, nc
		}
	}
	return out, nil
}

// SelectedSumCircuit builds the boolean circuit computing
// Σ I_i·x_i for n database elements of valueBits bits each. Inputs are laid
// out as: n client selector bits, then n·valueBits server value bits
// (little-endian per value). The output is the sum, sumBits(n, valueBits)
// wide. This is the circuit Fairplay would have to garble for the paper's
// comparison.
func SelectedSumCircuit(n, valueBits int) (*Circuit, error) {
	if n < 1 || valueBits < 1 || valueBits > 64 {
		return nil, fmt.Errorf("yao: bad circuit parameters n=%d valueBits=%d", n, valueBits)
	}
	width := sumBits(n, valueBits)
	c, err := NewCircuit(n + n*valueBits)
	if err != nil {
		return nil, err
	}
	// Accumulator starts as the first masked value; acc wires below width
	// are filled in lazily as -1 (constant zero) to avoid constant wires.
	var acc []int
	for i := 0; i < n; i++ {
		sel := i
		valBase := n + i*valueBits
		masked := make([]int, valueBits)
		for b := 0; b < valueBits; b++ {
			w, err := c.AddGate(OpAND, sel, valBase+b)
			if err != nil {
				return nil, err
			}
			masked[b] = w
		}
		if acc == nil {
			acc = make([]int, width)
			for b := range acc {
				if b < valueBits {
					acc[b] = masked[b]
				} else {
					// Zero-extend: reuse (sel AND NOT sel) = 0? Cheaper: a
					// single shared zero wire built once from input 0.
					zero, err := c.zeroWire()
					if err != nil {
						return nil, err
					}
					acc[b] = zero
				}
			}
			continue
		}
		acc, err = c.addRippleAdder(acc, masked)
		if err != nil {
			return nil, err
		}
	}
	c.Outputs = acc
	return c, nil
}

// zeroWire returns a wire that always carries 0, built once as
// input0 XOR input0... which is not expressible with distinct wires; use
// AND(x, NOT x).
func (c *Circuit) zeroWire() (int, error) {
	if c.cachedZero != 0 {
		return c.cachedZero, nil
	}
	notx, err := c.AddGate(OpNOTA, 0, 0)
	if err != nil {
		return 0, err
	}
	z, err := c.AddGate(OpAND, 0, notx)
	if err != nil {
		return 0, err
	}
	c.cachedZero = z
	return z, nil
}

// sumBits returns the width needed for a sum of n valueBits-bit values.
func sumBits(n, valueBits int) int {
	extra := 0
	for v := n - 1; v > 0; v >>= 1 {
		extra++
	}
	return valueBits + extra
}
