package yao

import (
	"errors"
	"fmt"
	"time"

	"privstats/internal/netsim"
)

// CostModel extrapolates the measured per-gate constants of the mini
// garbled-circuit system to database sizes where materializing the circuit
// would be absurd. The E8 experiment calibrates one from a real garbling
// run and uses it to place "Yao/Fairplay" on the same chart as the
// selected-sum protocol, reproducing the paper's Section 2 comparison.
type CostModel struct {
	// GarblePerGate and EvalPerGate are the measured constants.
	GarblePerGate, EvalPerGate time.Duration
	// OTPerBit approximates one oblivious transfer for one evaluator input
	// bit. Fairplay-era OT needed public-key operations per selection bit;
	// a Paillier-era modular exponentiation is the right order of
	// magnitude, so CalibrateOT measures one.
	OTPerBit time.Duration
	// BytesPerGate is the garbled-table plus topology wire size.
	BytesPerGate int64
	// BytesPerOT approximates the OT wire traffic per input bit.
	BytesPerOT int64
}

// GateCount breaks down the selected-sum circuit size without building it.
type GateCount struct {
	// Mask is the n·valueBits selector AND gates; Adder covers the ripple
	// accumulation; Total is their sum plus the constant-zero helper.
	Mask, Adder, Total int64
}

// CountSelectedSumGates computes the exact gate counts of
// SelectedSumCircuit(n, valueBits) analytically. It is validated against
// the real builder in tests and lets the model scale to n = 10^6.
func CountSelectedSumGates(n, valueBits int) (GateCount, error) {
	if n < 1 || valueBits < 1 || valueBits > 64 {
		return GateCount{}, fmt.Errorf("yao: bad parameters n=%d valueBits=%d", n, valueBits)
	}
	width := int64(sumBits(n, valueBits))
	vb := int64(valueBits)
	gc := GateCount{Mask: int64(n) * vb}
	if n > 1 {
		gc.Total += 2 // the shared zero wire (NOT + AND), built with the first accumulator
	}
	// Each of the n-1 additions: valueBits full/half adders on the low
	// bits, carry propagation above. The exact shape depends on when the
	// carry chain starts; mirror addRippleAdder's structure:
	//   bit 0: half adder (2 gates: XOR+AND)
	//   bits 1..valueBits-1: full adders (5 gates)
	//   bits valueBits..width-1: carry-only half adders (2 gates)
	if n > 1 {
		perAdd := int64(2) + (vb-1)*5 + (width-vb)*2
		gc.Adder = int64(n-1) * perAdd
	}
	gc.Total += gc.Mask + gc.Adder
	return gc, nil
}

// Estimate is the modelled cost of one Yao execution of the selected sum.
type Estimate struct {
	Gates      int64
	GarbleTime time.Duration
	EvalTime   time.Duration
	OTTime     time.Duration
	CommTime   time.Duration
	Total      time.Duration
	WireBytes  int64
}

// SelectedSum estimates a full Yao run of the n-element selected sum over
// the given link. The evaluator holds the n selector bits, so n OTs are
// needed; the generator's value bits travel as labels (free of OT).
func (m CostModel) SelectedSum(n, valueBits int, link netsim.Link) (Estimate, error) {
	if m.GarblePerGate <= 0 || m.EvalPerGate <= 0 {
		return Estimate{}, errors.New("yao: cost model not calibrated")
	}
	if err := link.Validate(); err != nil {
		return Estimate{}, err
	}
	gc, err := CountSelectedSumGates(n, valueBits)
	if err != nil {
		return Estimate{}, err
	}
	e := Estimate{Gates: gc.Total}
	e.GarbleTime = time.Duration(gc.Total) * m.GarblePerGate
	e.EvalTime = time.Duration(gc.Total) * m.EvalPerGate
	e.OTTime = time.Duration(n) * m.OTPerBit
	e.WireBytes = gc.Total*m.BytesPerGate + int64(n)*m.BytesPerOT +
		int64(n*valueBits)*labelSize // generator input labels
	e.CommTime = link.OneWayTime(e.WireBytes)
	e.Total = e.GarbleTime + e.EvalTime + e.OTTime + e.CommTime
	return e, nil
}

// FairplayEra returns a cost model with 2004 Fairplay constants, derived
// from the paper's own data point: "at least 15 minutes for a database of
// only 1,000 elements". The n=1,000 selected-sum circuit has ≈208k gates
// (CountSelectedSumGates), so Fairplay's aggregate throughput — SFDL
// interpretation, Java crypto, per-row hashing, network — was about 230
// gates/second, ≈4.3 ms/gate split here between garbling and evaluation,
// plus tens of milliseconds per oblivious transfer. Use this model to
// reproduce the paper's Section 2 comparison at 2004 constants; use
// Calibrate for matched modern constants.
func FairplayEra() CostModel {
	return CostModel{
		GarblePerGate: 2150 * time.Microsecond,
		EvalPerGate:   2150 * time.Microsecond,
		OTPerBit:      30 * time.Millisecond,
		BytesPerGate:  4*labelSize + 13,
		BytesPerOT:    3 * 128,
	}
}

// Calibrate measures the per-gate garble and eval constants by running the
// real garbled-circuit system on a selected-sum instance of calibration
// size (n=32, 16-bit values ≈ 3.6k gates), and fills in the wire constants.
// otSample, when positive, sets OTPerBit directly (callers measure one
// public-key operation); otherwise a conservative Fairplay-era 10ms is
// assumed.
func Calibrate(otSample time.Duration) (CostModel, error) {
	const calN, calBits = 32, 16
	c, err := SelectedSumCircuit(calN, calBits)
	if err != nil {
		return CostModel{}, err
	}
	gates := int64(len(c.Gates))

	start := time.Now()
	gc, err := Garble(c)
	if err != nil {
		return CostModel{}, err
	}
	garble := time.Since(start)

	inputs := make([]uint8, c.NumInputs)
	for i := range inputs {
		inputs[i] = uint8(i % 2)
	}
	labels, err := gc.EncodeInputs(inputs)
	if err != nil {
		return CostModel{}, err
	}
	start = time.Now()
	if _, err := gc.Evaluate(labels); err != nil {
		return CostModel{}, err
	}
	eval := time.Since(start)

	m := CostModel{
		GarblePerGate: garble / time.Duration(gates),
		EvalPerGate:   eval / time.Duration(gates),
		OTPerBit:      otSample,
		BytesPerGate:  4*labelSize + 13,
		BytesPerOT:    3 * 128, // three ~1024-bit group elements per 1-of-2 OT
	}
	if m.OTPerBit <= 0 {
		m.OTPerBit = 10 * time.Millisecond
	}
	if m.GarblePerGate <= 0 {
		m.GarblePerGate = time.Nanosecond
	}
	if m.EvalPerGate <= 0 {
		m.EvalPerGate = time.Nanosecond
	}
	return m, nil
}
