package yao

import (
	"testing"
	"testing/quick"
	"time"

	"privstats/internal/netsim"
)

func TestGateOpEval(t *testing.T) {
	cases := []struct {
		op      GateOp
		a, b, w uint8
	}{
		{OpAND, 1, 1, 1}, {OpAND, 1, 0, 0}, {OpAND, 0, 0, 0},
		{OpXOR, 1, 1, 0}, {OpXOR, 1, 0, 1}, {OpXOR, 0, 0, 0},
		{OpOR, 0, 0, 0}, {OpOR, 1, 0, 1}, {OpOR, 1, 1, 1},
		{OpNOTA, 0, 0, 1}, {OpNOTA, 1, 1, 0},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.w {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.w)
		}
	}
}

func TestCircuitValidation(t *testing.T) {
	if _, err := NewCircuit(0); err == nil {
		t.Error("zero inputs should fail")
	}
	c, err := NewCircuit(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate(OpAND, 0, 5); err == nil {
		t.Error("dangling input should fail")
	}
	if _, err := c.EvalClear([]uint8{1}); err == nil {
		t.Error("wrong input count should fail")
	}
}

func TestSelectedSumCircuitClear(t *testing.T) {
	// n=4, 4-bit values: verify against direct arithmetic for all
	// selector patterns on fixed values.
	const n, vb = 4, 4
	values := []uint64{5, 12, 7, 15}
	c, err := SelectedSumCircuit(n, vb)
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 1<<n; mask++ {
		inputs := make([]uint8, c.NumInputs)
		var want uint64
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				inputs[i] = 1
				want += values[i]
			}
			for b := 0; b < vb; b++ {
				inputs[n+i*vb+b] = uint8(values[i] >> b & 1)
			}
		}
		out, err := c.EvalClear(inputs)
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for b, bit := range out {
			got |= uint64(bit) << b
		}
		if got != want {
			t.Fatalf("mask %04b: circuit says %d, want %d", mask, got, want)
		}
	}
}

func TestGarbledEvaluationMatchesClear(t *testing.T) {
	const n, vb = 6, 8
	c, err := SelectedSumCircuit(n, vb)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := Garble(c)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint64) bool {
		inputs := make([]uint8, c.NumInputs)
		s := seed
		for i := range inputs {
			s = s*6364136223846793005 + 1442695040888963407
			inputs[i] = uint8(s >> 63)
		}
		want, err := c.EvalClear(inputs)
		if err != nil {
			return false
		}
		labels, err := gc.EncodeInputs(inputs)
		if err != nil {
			return false
		}
		got, err := gc.Evaluate(labels)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGarbleValidation(t *testing.T) {
	if _, err := Garble(nil); err == nil {
		t.Error("nil circuit should fail")
	}
	c, _ := NewCircuit(2)
	if _, err := Garble(c); err == nil {
		t.Error("no-output circuit should fail")
	}
	cc, _ := SelectedSumCircuit(2, 2)
	gc, err := Garble(cc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gc.EncodeInputs([]uint8{1}); err == nil {
		t.Error("wrong input count should fail")
	}
	if _, err := gc.EncodeInputs(make([]uint8, cc.NumInputs+1)); err == nil {
		t.Error("long input should fail")
	}
	bad := make([]uint8, cc.NumInputs)
	bad[0] = 2
	if _, err := gc.EncodeInputs(bad); err == nil {
		t.Error("non-bit input should fail")
	}
	if _, err := gc.Evaluate(nil); err == nil {
		t.Error("missing labels should fail")
	}
	// Evaluator cannot encode inputs.
	eval := &GarbledCircuit{Circuit: cc, Tables: gc.Tables, OutputPerm: gc.OutputPerm}
	if _, err := eval.EncodeInputs(make([]uint8, cc.NumInputs)); err == nil {
		t.Error("evaluator-side encode should fail")
	}
}

func TestCountSelectedSumGatesMatchesBuilder(t *testing.T) {
	for _, tc := range []struct{ n, vb int }{
		{1, 1}, {1, 8}, {2, 4}, {3, 5}, {7, 8}, {16, 16}, {33, 32},
	} {
		c, err := SelectedSumCircuit(tc.n, tc.vb)
		if err != nil {
			t.Fatalf("n=%d vb=%d: %v", tc.n, tc.vb, err)
		}
		gc, err := CountSelectedSumGates(tc.n, tc.vb)
		if err != nil {
			t.Fatal(err)
		}
		if gc.Total != int64(len(c.Gates)) {
			t.Errorf("n=%d vb=%d: analytic %d gates, builder %d", tc.n, tc.vb, gc.Total, len(c.Gates))
		}
	}
}

func TestCountValidation(t *testing.T) {
	if _, err := CountSelectedSumGates(0, 8); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := CountSelectedSumGates(4, 65); err == nil {
		t.Error("vb>64 should fail")
	}
	if _, err := SelectedSumCircuit(0, 8); err == nil {
		t.Error("builder n=0 should fail")
	}
}

func TestCalibrateAndEstimate(t *testing.T) {
	m, err := Calibrate(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if m.GarblePerGate <= 0 || m.EvalPerGate <= 0 {
		t.Fatalf("calibration produced %+v", m)
	}
	est, err := m.SelectedSum(1000, 32, netsim.ShortDistance)
	if err != nil {
		t.Fatal(err)
	}
	if est.Gates < 100_000 {
		t.Errorf("1000-element circuit has %d gates, expected > 100k", est.Gates)
	}
	if est.Total <= 0 || est.WireBytes <= 0 {
		t.Errorf("degenerate estimate %+v", est)
	}
	// OT for 1000 selection bits at 1ms each is already a second.
	if est.OTTime != time.Second {
		t.Errorf("OT time = %v, want 1s", est.OTTime)
	}
	// Uncalibrated model must refuse.
	if _, err := (CostModel{}).SelectedSum(10, 8, netsim.ShortDistance); err == nil {
		t.Error("uncalibrated model should fail")
	}
	if _, err := m.SelectedSum(10, 8, netsim.Link{}); err == nil {
		t.Error("bad link should fail")
	}
}

func TestEstimateScalesLinearly(t *testing.T) {
	m := CostModel{
		GarblePerGate: time.Microsecond,
		EvalPerGate:   time.Microsecond,
		OTPerBit:      time.Millisecond,
		BytesPerGate:  77,
		BytesPerOT:    384,
	}
	e1, err := m.SelectedSum(1000, 32, netsim.ShortDistance)
	if err != nil {
		t.Fatal(err)
	}
	e10, err := m.SelectedSum(10000, 32, netsim.ShortDistance)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(e10.Gates) / float64(e1.Gates)
	if ratio < 9 || ratio > 11.5 {
		t.Errorf("gate count should scale ~linearly, got ratio %.2f", ratio)
	}
}

func BenchmarkGarblePerGate(b *testing.B) {
	c, err := SelectedSumCircuit(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Garble(c); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(c.Gates)), "gates/op")
}

func BenchmarkEvaluatePerGate(b *testing.B) {
	c, err := SelectedSumCircuit(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	gc, err := Garble(c)
	if err != nil {
		b.Fatal(err)
	}
	labels, err := gc.EncodeInputs(make([]uint8, c.NumInputs))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gc.Evaluate(labels); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(c.Gates)), "gates/op")
}
