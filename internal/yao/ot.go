package yao

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"

	"privstats/internal/mathx"
)

// A real 1-of-2 oblivious transfer in the Even–Goldreich–Lempel style over
// RSA, used to hand the garbled-circuit evaluator its input-wire labels:
// the receiver learns exactly one of the sender's two messages and the
// sender cannot tell which. This grounds the cost model's OTPerBit constant
// with a measured protocol instead of a proxy, and together with Garble and
// Evaluate makes the package a complete (toy, semi-honest) two-party
// computation system.
//
// Protocol: the sender publishes an RSA key (n, e) and two random values
// x0, x1. The receiver picks a random k, sets v = x_b + k^e mod n for its
// choice bit b, and sends v. The sender computes k_i = (v − x_i)^d for both
// i and replies with m_i ⊕ H(k_i). The receiver can strip the mask only on
// its chosen branch — the other k is an RSA preimage it cannot compute.

// OTSender holds the sender's RSA key and offers.
type OTSender struct {
	n, e, d  *big.Int
	x0, x1   *big.Int
	byteLen  int
	msgBytes int
}

// OTMessageSize is the fixed message width transferred by this OT — one
// wire label.
const OTMessageSize = labelSize

// NewOTSender generates a fresh RSA instance of modulusBits and the two
// public random offers.
func NewOTSender(modulusBits int) (*OTSender, error) {
	if modulusBits < 64 {
		return nil, fmt.Errorf("yao: OT modulus must be >= 64 bits, got %d", modulusBits)
	}
	p, q, err := mathx.GeneratePrimePair(rand.Reader, modulusBits/2)
	if err != nil {
		return nil, fmt.Errorf("yao: OT key generation: %w", err)
	}
	n := new(big.Int).Mul(p, q)
	phi := new(big.Int).Mul(new(big.Int).Sub(p, mathx.One), new(big.Int).Sub(q, mathx.One))
	e := big.NewInt(65537)
	d, err := mathx.ModInverse(e, phi)
	if err != nil {
		// gcd(65537, φ) ≠ 1 — retry with fresh primes.
		return NewOTSender(modulusBits)
	}
	x0, err := mathx.RandInt(rand.Reader, n)
	if err != nil {
		return nil, err
	}
	x1, err := mathx.RandInt(rand.Reader, n)
	if err != nil {
		return nil, err
	}
	return &OTSender{
		n: n, e: e, d: d, x0: x0, x1: x1,
		byteLen: (n.BitLen() + 7) / 8,
	}, nil
}

// PublicParams returns what the receiver needs: n, e, x0, x1.
func (s *OTSender) PublicParams() (n, e, x0, x1 *big.Int) {
	return new(big.Int).Set(s.n), new(big.Int).Set(s.e), new(big.Int).Set(s.x0), new(big.Int).Set(s.x1)
}

// OTRequest is the receiver's blinded choice.
type OTRequest struct {
	V *big.Int
}

// OTReceiver holds the receiver's secret k until the response arrives.
type OTReceiver struct {
	n, k   *big.Int
	choice uint
}

// NewOTRequest blinds the receiver's choice bit against the sender's
// public parameters.
func NewOTRequest(n, e, x0, x1 *big.Int, choice uint) (*OTReceiver, *OTRequest, error) {
	if choice > 1 {
		return nil, nil, fmt.Errorf("yao: OT choice must be 0 or 1, got %d", choice)
	}
	k, err := mathx.RandInt(rand.Reader, n)
	if err != nil {
		return nil, nil, err
	}
	ke := new(big.Int).Exp(k, e, n)
	x := x0
	if choice == 1 {
		x = x1
	}
	v := new(big.Int).Add(x, ke)
	v.Mod(v, n)
	return &OTReceiver{n: n, k: k, choice: choice}, &OTRequest{V: v}, nil
}

// OTResponse carries both masked messages.
type OTResponse struct {
	M0, M1 [OTMessageSize]byte
}

// Respond answers a request with both messages masked under the respective
// derived keys. The sender learns nothing about the receiver's choice: v is
// uniformly distributed either way.
func (s *OTSender) Respond(req *OTRequest, m0, m1 [OTMessageSize]byte) (*OTResponse, error) {
	if req == nil || req.V == nil || req.V.Sign() < 0 || req.V.Cmp(s.n) >= 0 {
		return nil, errors.New("yao: malformed OT request")
	}
	k0 := new(big.Int).Sub(req.V, s.x0)
	k0.Mod(k0, s.n)
	k0.Exp(k0, s.d, s.n)
	k1 := new(big.Int).Sub(req.V, s.x1)
	k1.Mod(k1, s.n)
	k1.Exp(k1, s.d, s.n)

	var resp OTResponse
	mask0 := otMask(k0, 0)
	mask1 := otMask(k1, 1)
	for i := 0; i < OTMessageSize; i++ {
		resp.M0[i] = m0[i] ^ mask0[i]
		resp.M1[i] = m1[i] ^ mask1[i]
	}
	return &resp, nil
}

// Open recovers the chosen message from the response.
func (r *OTReceiver) Open(resp *OTResponse) ([OTMessageSize]byte, error) {
	var out [OTMessageSize]byte
	if resp == nil {
		return out, errors.New("yao: nil OT response")
	}
	mask := otMask(r.k, r.choice)
	src := resp.M0
	if r.choice == 1 {
		src = resp.M1
	}
	for i := 0; i < OTMessageSize; i++ {
		out[i] = src[i] ^ mask[i]
	}
	return out, nil
}

// otMask derives a message mask from an OT key and the branch index.
func otMask(k *big.Int, branch uint) [OTMessageSize]byte {
	h := sha256.New()
	h.Write(k.Bytes())
	h.Write([]byte{byte(branch)})
	var out [OTMessageSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// TransferInputs runs one OT per evaluator input bit, handing the evaluator
// the labels for its private inputs without the generator learning them.
// It returns the labels plus the number of OTs performed; the cost model's
// calibration divides the measured wall time by that count.
func TransferInputs(sender *OTSender, gc *GarbledCircuit, evaluatorBits []uint8, firstWire int) ([]label, error) {
	if gc.wires == nil {
		return nil, errors.New("yao: only the generator side can run input transfer")
	}
	if firstWire < 0 || firstWire+len(evaluatorBits) > gc.Circuit.NumInputs {
		return nil, fmt.Errorf("yao: evaluator wires [%d,%d) outside circuit inputs", firstWire, firstWire+len(evaluatorBits))
	}
	n, e, x0, x1 := sender.PublicParams()
	out := make([]label, len(evaluatorBits))
	for i, b := range evaluatorBits {
		if b > 1 {
			return nil, fmt.Errorf("yao: evaluator input %d is not a bit", i)
		}
		w := gc.wires[firstWire+i]
		// Receiver side: blind the choice.
		recv, req, err := NewOTRequest(n, e, x0, x1, uint(b))
		if err != nil {
			return nil, err
		}
		// Sender side: mask both labels.
		resp, err := sender.Respond(req, w.l0, w.l1)
		if err != nil {
			return nil, err
		}
		// Receiver side: open the chosen one.
		lbl, err := recv.Open(resp)
		if err != nil {
			return nil, err
		}
		out[i] = lbl
	}
	return out, nil
}
