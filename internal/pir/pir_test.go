package pir

import (
	"crypto/rand"
	"sync"
	"testing"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/paillier"
)

var (
	tkOnce sync.Once
	tkKey  *paillier.PrivateKey
	tkErr  error
)

func testKey(t testing.TB) homomorphic.PrivateKey {
	t.Helper()
	tkOnce.Do(func() { tkKey, tkErr = paillier.KeyGen(rand.Reader, 256) })
	if tkErr != nil {
		t.Fatalf("KeyGen: %v", tkErr)
	}
	return paillier.SchemeKey{SK: tkKey}
}

func TestLayout(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{1, 1, 1}, {4, 2, 2}, {5, 2, 3}, {9, 3, 3}, {10, 3, 4}, {100, 10, 10},
	}
	for _, c := range cases {
		l, err := NewLayout(c.n)
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if l.Rows != c.rows || l.Cols != c.cols {
			t.Errorf("n=%d: layout %dx%d, want %dx%d", c.n, l.Rows, l.Cols, c.rows, c.cols)
		}
		if l.Rows*l.Cols < c.n {
			t.Errorf("n=%d: matrix too small", c.n)
		}
	}
	if _, err := NewLayout(0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestLayoutPosition(t *testing.T) {
	l, _ := NewLayout(10) // 3x4
	row, col, err := l.Position(7)
	if err != nil || row != 1 || col != 3 {
		t.Errorf("Position(7) = (%d,%d,%v)", row, col, err)
	}
	if _, _, err := l.Position(10); err == nil {
		t.Error("out of range index should fail")
	}
	if _, _, err := l.Position(-1); err == nil {
		t.Error("negative index should fail")
	}
}

func TestRetrieveEveryElement(t *testing.T) {
	sk := testKey(t)
	table, err := database.Generate(23, database.DistUniform, 77) // ragged 5x5
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 23; i++ {
		got, err := Retrieve(sk, table, i)
		if err != nil {
			t.Fatalf("Retrieve(%d): %v", i, err)
		}
		if got != table.Value(i) {
			t.Errorf("element %d: got %d, want %d", i, got, table.Value(i))
		}
	}
}

func TestRetrieveZeroValues(t *testing.T) {
	sk := testKey(t)
	table := database.New(make([]uint32, 9)) // all zeros
	got, err := Retrieve(sk, table, 4)
	if err != nil || got != 0 {
		t.Errorf("zero retrieval = %d (err %v)", got, err)
	}
}

func TestRetrieveSingleElement(t *testing.T) {
	sk := testKey(t)
	table := database.New([]uint32{0xCAFEBABE})
	got, err := Retrieve(sk, table, 0)
	if err != nil || got != 0xCAFEBABE {
		t.Errorf("got %x (err %v)", got, err)
	}
}

func TestSublinearCommunication(t *testing.T) {
	// The point of PIR: wire bytes grow as √n, far below the selected-sum
	// protocol's n ciphertexts.
	sk := testKey(t)
	pk := sk.PublicKey()
	n := 400 // 20x20
	layout, err := NewLayout(n)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(pk, layout, 123)
	if err != nil {
		t.Fatal(err)
	}
	table, _ := database.Generate(n, database.DistSmall, 5)
	ans, err := Process(pk, table, q)
	if err != nil {
		t.Fatal(err)
	}
	up := q.UplinkBytes(pk)
	down := ans.DownlinkBytes(pk)
	linear := int64(n) * int64(pk.CiphertextSize())
	if up+down >= linear/4 {
		t.Errorf("PIR moved %d bytes, linear protocol %d — not sublinear enough", up+down, linear)
	}
	got, err := Extract(sk, layout, q, ans, 123)
	if err != nil || got != table.Value(123) {
		t.Errorf("retrieved %d (err %v), want %d", got, err, table.Value(123))
	}
}

func TestQueriesAreIndistinguishable(t *testing.T) {
	// Two queries for different columns must not share any ciphertext
	// bytes (randomized encryption); the server sees only ciphertexts.
	sk := testKey(t)
	pk := sk.PublicKey()
	layout, _ := NewLayout(16)
	q1, err := NewQuery(pk, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := NewQuery(pk, layout, 0) // same element, fresh randomness
	if err != nil {
		t.Fatal(err)
	}
	for j := range q1.Selectors {
		if string(q1.Selectors[j].Bytes()) == string(q2.Selectors[j].Bytes()) {
			t.Fatalf("selector %d repeated across queries", j)
		}
	}
}

func TestProcessValidation(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table, _ := database.Generate(9, database.DistSmall, 1)
	layout, _ := NewLayout(9)
	q, err := NewQuery(pk, layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	wrongTable, _ := database.Generate(10, database.DistSmall, 1)
	if _, err := Process(pk, wrongTable, q); err == nil {
		t.Error("layout/table mismatch should fail")
	}
	if _, err := Process(nil, table, q); err == nil {
		t.Error("nil key should fail")
	}
	if _, err := Process(pk, nil, q); err == nil {
		t.Error("nil table should fail")
	}
	short := &Query{Layout: layout, Selectors: q.Selectors[:1]}
	if _, err := Process(pk, table, short); err == nil {
		t.Error("short selector vector should fail")
	}
	// Extract with a truncated answer.
	ans, err := Process(pk, table, q)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Answer{Rows: ans.Rows[:1]}
	if _, err := Extract(sk, layout, q, bad, 2); err == nil {
		t.Error("short answer should fail")
	}
	if _, err := NewQuery(pk, layout, 9); err == nil {
		t.Error("out-of-range query index should fail")
	}
	if _, err := NewQuery(nil, layout, 0); err == nil {
		t.Error("nil key query should fail")
	}
	if _, err := Retrieve(nil, table, 0); err == nil {
		t.Error("nil key retrieve should fail")
	}
}
