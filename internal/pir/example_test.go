package pir_test

import (
	"crypto/rand"
	"fmt"
	"log"

	"privstats/internal/database"
	"privstats/internal/paillier"
	"privstats/internal/pir"
)

// ExampleRetrieve fetches one database element without revealing which,
// with O(√n) communication.
func ExampleRetrieve() {
	table := database.New([]uint32{11, 22, 33, 44, 55, 66, 77, 88, 99})
	key, err := paillier.KeyGen(rand.Reader, 128)
	if err != nil {
		log.Fatal(err)
	}
	v, err := pir.Retrieve(paillier.SchemeKey{SK: key}, table, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("element 4:", v)
	// Output: element 4: 55
}
