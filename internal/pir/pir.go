// Package pir implements single-server computational private information
// retrieval with O(√n) communication, built on the same additively
// homomorphic machinery as the selected-sum protocol.
//
// The paper's protocol has linear communication; Canetti et al. (its
// reference [5]) also present sublinear-communication solutions built from
// PIR. This package supplies that building block in the classic
// Kushilevitz–Ostrovsky square-root layout: the server arranges its n
// values in a rows×cols matrix; the client sends one encrypted selector per
// column (E(1) for the wanted column, E(0) elsewhere); the server returns,
// for every row i, Π_j E(s_j)^{x_ij} = E(x_{i,j*}). The client keeps the
// row it wants and discards the rest.
//
// Communication: cols ciphertexts up, rows ciphertexts down — Θ(√n) when
// rows ≈ cols ≈ √n, against the selected-sum protocol's Θ(n) uplink. The
// client learns one full row's worth of entries (rows values), which is the
// standard PIR guarantee: stronger than nothing, weaker than the
// selected-sum's "only the aggregate"; the quantitative comparison is the
// point of the PIRComparison benchmark.
package pir

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
)

// Layout fixes the matrix arrangement of an n-element database.
type Layout struct {
	Rows, Cols int
	N          int
}

// NewLayout returns the near-square layout for n elements.
func NewLayout(n int) (Layout, error) {
	if n < 1 {
		return Layout{}, fmt.Errorf("pir: database size %d must be positive", n)
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	return Layout{Rows: rows, Cols: cols, N: n}, nil
}

// Position returns the (row, col) cell of element index i.
func (l Layout) Position(i int) (int, int, error) {
	if i < 0 || i >= l.N {
		return 0, 0, fmt.Errorf("pir: index %d outside [0,%d)", i, l.N)
	}
	return i / l.Cols, i % l.Cols, nil
}

// Query is the client's encrypted column selector.
type Query struct {
	Layout    Layout
	Selectors []homomorphic.Ciphertext // Cols entries, E(0)/E(1)
	// col is remembered client-side to pick the answer cell; it never
	// travels.
	col int
}

// NewQuery builds the encrypted selector for element index under pk.
func NewQuery(pk homomorphic.PublicKey, layout Layout, index int) (*Query, error) {
	if pk == nil {
		return nil, errors.New("pir: nil public key")
	}
	_, col, err := layout.Position(index)
	if err != nil {
		return nil, err
	}
	sel := make([]homomorphic.Ciphertext, layout.Cols)
	for j := range sel {
		bit := big.NewInt(0)
		if j == col {
			bit.SetInt64(1)
		}
		ct, err := pk.Encrypt(bit)
		if err != nil {
			return nil, fmt.Errorf("pir: encrypting selector %d: %w", j, err)
		}
		sel[j] = ct
	}
	return &Query{Layout: layout, Selectors: sel, col: col}, nil
}

// UplinkBytes returns the query's wire size.
func (q *Query) UplinkBytes(pk homomorphic.PublicKey) int64 {
	return int64(len(q.Selectors)) * int64(pk.CiphertextSize())
}

// Answer is the server's per-row response.
type Answer struct {
	Rows []homomorphic.Ciphertext
}

// DownlinkBytes returns the answer's wire size.
func (a *Answer) DownlinkBytes(pk homomorphic.PublicKey) int64 {
	return int64(len(a.Rows)) * int64(pk.CiphertextSize())
}

// Process is the server side: for each matrix row it folds the encrypted
// selectors against the row's values. Cells beyond the database's tail are
// treated as zero. The server never decrypts anything and cannot tell which
// column the selectors pick (semantic security).
func Process(pk homomorphic.PublicKey, table *database.Table, q *Query) (*Answer, error) {
	if pk == nil {
		return nil, errors.New("pir: nil public key")
	}
	if table == nil {
		return nil, errors.New("pir: nil table")
	}
	l := q.Layout
	if l.N != table.Len() {
		return nil, fmt.Errorf("pir: layout is for %d elements, table has %d", l.N, table.Len())
	}
	if len(q.Selectors) != l.Cols {
		return nil, fmt.Errorf("pir: %d selectors for %d columns", len(q.Selectors), l.Cols)
	}
	scalar := new(big.Int)
	out := make([]homomorphic.Ciphertext, l.Rows)
	for i := 0; i < l.Rows; i++ {
		var acc homomorphic.Ciphertext
		for j := 0; j < l.Cols; j++ {
			idx := i*l.Cols + j
			if idx >= l.N {
				break
			}
			x := table.Value(idx)
			if x == 0 {
				continue
			}
			scalar.SetUint64(uint64(x))
			term, err := pk.ScalarMul(q.Selectors[j], scalar)
			if err != nil {
				return nil, fmt.Errorf("pir: row %d col %d: %w", i, j, err)
			}
			if acc == nil {
				acc = term
				continue
			}
			acc, err = pk.Add(acc, term)
			if err != nil {
				return nil, fmt.Errorf("pir: row %d fold: %w", i, err)
			}
		}
		if acc == nil {
			zero, err := pk.Encrypt(new(big.Int))
			if err != nil {
				return nil, fmt.Errorf("pir: row %d empty: %w", i, err)
			}
			acc = zero
		} else {
			fresh, err := pk.Rerandomize(acc)
			if err != nil {
				return nil, fmt.Errorf("pir: row %d rerandomize: %w", i, err)
			}
			acc = fresh
		}
		out[i] = acc
	}
	return &Answer{Rows: out}, nil
}

// Retrieve runs a full PIR round in process and returns element index.
func Retrieve(sk homomorphic.PrivateKey, table *database.Table, index int) (uint32, error) {
	if sk == nil {
		return 0, errors.New("pir: nil private key")
	}
	layout, err := NewLayout(table.Len())
	if err != nil {
		return 0, err
	}
	pk := sk.PublicKey()
	q, err := NewQuery(pk, layout, index)
	if err != nil {
		return 0, err
	}
	ans, err := Process(pk, table, q)
	if err != nil {
		return 0, err
	}
	return Extract(sk, layout, q, ans, index)
}

// Extract decrypts the answer cell for element index. The client decrypts
// only the row it needs; the other rows are padding required by privacy.
func Extract(sk homomorphic.PrivateKey, layout Layout, q *Query, ans *Answer, index int) (uint32, error) {
	row, _, err := layout.Position(index)
	if err != nil {
		return 0, err
	}
	if len(ans.Rows) != layout.Rows {
		return 0, fmt.Errorf("pir: answer has %d rows, layout %d", len(ans.Rows), layout.Rows)
	}
	v, err := sk.Decrypt(ans.Rows[row])
	if err != nil {
		return 0, fmt.Errorf("pir: decrypting answer row: %w", err)
	}
	if !v.IsUint64() || v.Uint64() > math.MaxUint32 {
		return 0, fmt.Errorf("pir: retrieved value %v exceeds 32 bits", v)
	}
	return uint32(v.Uint64()), nil
}
