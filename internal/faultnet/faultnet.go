// Package faultnet is the adversarial counterpart of internal/netsim: where
// netsim models *slow* links (the paper's 56 Kbps modem), faultnet models
// *broken* ones. It wraps net.Conn, net.Listener, and dialing with a
// deterministic, seedable fault plan — connection resets, read/write stalls
// (slow-loris), short writes, byte corruption, dial/accept refusals, and
// scheduled mid-frame kills — so the retry, failover, hedging, and
// corruption-detection paths of the cluster can be exercised under load
// instead of trusted on inspection.
//
// Determinism: every random draw comes from a mutex-guarded PRNG seeded by
// Plan.Seed; each accepted or dialed connection derives its own PRNG from
// the seed and a monotonically assigned connection index, so a fixed seed
// produces the same per-connection fault schedule regardless of goroutine
// interleaving.
//
// Faults are armed per connection, not rolled per byte: a Spec probability
// of 0.05 means one connection in twenty is doomed to that fault, fired at
// a pseudo-random operation index in the matching direction. That keeps the
// chaos-suite arithmetic honest ("5% reset rate" composes predictably with
// retry budgets) while still spreading faults across a session's lifetime.
//
// Composability: Conn implements net.Conn, so a netsim.Throttle can wrap a
// faultnet.Conn to model a link that is both slow and unreliable, and the
// wire/server deadline plumbing passes straight through.
package faultnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// maxFaultOp bounds the operation index at which an armed fault fires: ops
// 0..maxFaultOp-1 are eligible, so faults land anywhere from the first
// frame of a session to well into its upload.
const maxFaultOp = 8

// Spec arms per-direction faults. Each probability is rolled once per
// connection; an armed fault fires at a pseudo-random operation (Read or
// Write call) in that direction.
type Spec struct {
	// Reset closes the connection hard at the chosen operation, surfacing
	// ECONNRESET to the local caller and an EOF/RST to the peer.
	Reset float64
	// Stall sleeps StallFor before the chosen operation proceeds — the
	// slow-loris fault. With StallFor above the peer's IO deadline this is
	// a straggler; below it, jitter.
	Stall float64
	// StallFor is the stall duration (default 250ms when Stall is armed).
	StallFor time.Duration
	// Corrupt flips one pseudo-random byte of the buffer at the chosen
	// operation (after reading / before writing).
	Corrupt float64
	// ShortWrite makes the chosen Write deliver only a prefix and return
	// io.ErrShortWrite via a net.OpError. Write-direction only.
	ShortWrite float64
}

// Plan is one connection population's fault policy.
type Plan struct {
	// Seed drives every random draw. Two wrappers with the same Plan
	// produce the same per-connection schedules.
	Seed int64
	// Read and Write arm direction-specific faults.
	Read, Write Spec
	// Refuse is the probability an Accept (or Dial) is refused: the
	// connection is closed before any byte moves, as a crashed or
	// firewalled peer would.
	Refuse float64
}

// Stats is the fault accounting a wrapper (and each connection) keeps.
// Counters only ever record faults actually injected, so a chaos suite can
// reconcile them against observed session failures.
type Stats struct {
	resets      atomic.Int64
	stalls      atomic.Int64
	corruptions atomic.Int64
	shortWrites atomic.Int64
	refusals    atomic.Int64
	kills       atomic.Int64
}

// StatsSnapshot is the plain-value form of Stats.
type StatsSnapshot struct {
	Resets      int64 `json:"resets"`
	Stalls      int64 `json:"stalls"`
	Corruptions int64 `json:"corruptions"`
	ShortWrites int64 `json:"short_writes"`
	Refusals    int64 `json:"refusals"`
	Kills       int64 `json:"kills"`
}

// Snapshot returns the current counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Resets:      s.resets.Load(),
		Stalls:      s.stalls.Load(),
		Corruptions: s.corruptions.Load(),
		ShortWrites: s.shortWrites.Load(),
		Refusals:    s.refusals.Load(),
		Kills:       s.kills.Load(),
	}
}

// Total returns the sum of every injected fault.
func (s StatsSnapshot) Total() int64 {
	return s.Resets + s.Stalls + s.Corruptions + s.ShortWrites + s.Refusals + s.Kills
}

// Add returns the componentwise sum of two snapshots.
func (s StatsSnapshot) Add(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Resets:      s.Resets + o.Resets,
		Stalls:      s.Stalls + o.Stalls,
		Corruptions: s.Corruptions + o.Corruptions,
		ShortWrites: s.ShortWrites + o.ShortWrites,
		Refusals:    s.Refusals + o.Refusals,
		Kills:       s.Kills + o.Kills,
	}
}

// armed is one scheduled fault on one direction of one connection.
type armed struct {
	kind string // "reset", "stall", "corrupt", "short"
	op   int    // fires at the op'th Read/Write in its direction
}

// schedule rolls spec once against rng and returns the armed faults.
func schedule(spec Spec, rng *rand.Rand) []armed {
	var out []armed
	roll := func(p float64, kind string) {
		if p > 0 && rng.Float64() < p {
			out = append(out, armed{kind: kind, op: rng.Intn(maxFaultOp)})
		}
	}
	roll(spec.Reset, "reset")
	roll(spec.Stall, "stall")
	roll(spec.Corrupt, "corrupt")
	roll(spec.ShortWrite, "short")
	return out
}

// Conn is a net.Conn with an armed fault schedule and per-conn accounting.
type Conn struct {
	net.Conn

	readSpec, writeSpec Spec
	mu                  sync.Mutex
	readFaults          []armed
	writeFaults         []armed
	readOps, writeOps   int
	rng                 *rand.Rand

	killAfter int64 // total bytes (both directions) before a hard close; 0 = off
	bytes     atomic.Int64
	closed    atomic.Bool

	local  Stats  // this connection's injections
	shared *Stats // the owning wrapper's aggregate (may be nil)
}

// WrapConn arms plan's faults on conn with the given seed. Standalone use;
// Listener and Dialer derive seeds automatically.
func WrapConn(conn net.Conn, plan Plan, seed int64) *Conn {
	rng := rand.New(rand.NewSource(seed))
	c := &Conn{
		Conn:      conn,
		readSpec:  plan.Read,
		writeSpec: plan.Write,
		rng:       rng,
	}
	c.readFaults = schedule(plan.Read, rng)
	c.writeFaults = schedule(plan.Write, rng)
	return c
}

// Stats returns this connection's fault accounting.
func (c *Conn) Stats() StatsSnapshot { return c.local.Snapshot() }

// ScheduleKill arms a hard close after n more total bytes (both directions
// combined) have crossed the connection — the mid-frame kill: the closing
// write delivers only the bytes up to the boundary.
func (c *Conn) ScheduleKill(n int64) {
	atomic.StoreInt64(&c.killAfter, c.bytes.Load()+n)
}

func (c *Conn) count(kind string) {
	var fields = map[string]func(*Stats){
		"reset":   func(s *Stats) { s.resets.Add(1) },
		"stall":   func(s *Stats) { s.stalls.Add(1) },
		"corrupt": func(s *Stats) { s.corruptions.Add(1) },
		"short":   func(s *Stats) { s.shortWrites.Add(1) },
		"kill":    func(s *Stats) { s.kills.Add(1) },
	}
	f := fields[kind]
	f(&c.local)
	if c.shared != nil {
		f(c.shared)
	}
}

// due pops the armed faults firing at the current op in one direction.
func (c *Conn) due(write bool) []armed {
	c.mu.Lock()
	defer c.mu.Unlock()
	faults, op := &c.readFaults, c.readOps
	if write {
		faults, op = &c.writeFaults, c.writeOps
	}
	var fire []armed
	keep := (*faults)[:0]
	for _, a := range *faults {
		if a.op <= op {
			fire = append(fire, a)
		} else {
			keep = append(keep, a)
		}
	}
	*faults = keep
	if write {
		c.writeOps++
	} else {
		c.readOps++
	}
	return fire
}

// resetErr is what a reset fault surfaces locally: the same shape a kernel
// RST produces, so classification code sees realistic errors.
func (c *Conn) resetErr(op string) error {
	c.closed.Store(true)
	_ = c.Conn.Close()
	return &net.OpError{Op: op, Net: "tcp", Err: syscall.ECONNRESET}
}

// stallFor returns the effective stall duration for spec.
func stallFor(spec Spec) time.Duration {
	if spec.StallFor > 0 {
		return spec.StallFor
	}
	return 250 * time.Millisecond
}

// Read injects read-direction faults, then forwards.
func (c *Conn) Read(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	corrupt := false
	for _, a := range c.due(false) {
		switch a.kind {
		case "reset":
			c.count("reset")
			return 0, c.resetErr("read")
		case "stall":
			c.count("stall")
			time.Sleep(stallFor(c.readSpec))
		case "corrupt":
			corrupt = true
		}
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		if c.crossedKill(int64(n)) {
			c.count("kill")
			return n, c.resetErr("read")
		}
		if corrupt {
			c.count("corrupt")
			c.flip(p[:n])
		}
	}
	return n, err
}

// Write injects write-direction faults, then forwards.
func (c *Conn) Write(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: syscall.ECONNRESET}
	}
	short := false
	buf := p
	for _, a := range c.due(true) {
		switch a.kind {
		case "reset":
			c.count("reset")
			return 0, c.resetErr("write")
		case "stall":
			c.count("stall")
			time.Sleep(stallFor(c.writeSpec))
		case "corrupt":
			if len(p) > 0 {
				c.count("corrupt")
				buf = append([]byte(nil), p...)
				c.flip(buf)
			}
		case "short":
			if len(p) > 1 {
				short = true
			}
		}
	}
	if kill := atomic.LoadInt64(&c.killAfter); kill > 0 {
		// Mid-frame kill: deliver exactly the bytes up to the boundary,
		// then close, leaving the peer a truncated frame.
		if remain := kill - c.bytes.Load(); remain < int64(len(buf)) {
			if remain < 0 {
				remain = 0
			}
			n, _ := c.Conn.Write(buf[:remain])
			c.bytes.Add(int64(n))
			c.count("kill")
			return n, c.resetErr("write")
		}
	}
	if short {
		c.count("short")
		n, err := c.Conn.Write(buf[:len(buf)/2])
		c.bytes.Add(int64(n))
		if err != nil {
			return n, err
		}
		return n, &net.OpError{Op: "write", Net: "tcp", Err: syscall.EPIPE}
	}
	n, err := c.Conn.Write(buf)
	c.bytes.Add(int64(n))
	return n, err
}

// crossedKill records n read bytes and reports whether the kill boundary
// was crossed by them.
func (c *Conn) crossedKill(n int64) bool {
	kill := atomic.LoadInt64(&c.killAfter)
	total := c.bytes.Add(n)
	return kill > 0 && total >= kill
}

// flip corrupts one pseudo-random byte of b in place.
func (c *Conn) flip(b []byte) {
	if len(b) == 0 {
		return
	}
	c.mu.Lock()
	i := c.rng.Intn(len(b))
	c.mu.Unlock()
	b[i] ^= 0xA5
}

// Close forwards to the wrapped connection.
func (c *Conn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

// Listener wraps a net.Listener: accepted connections get fault schedules
// derived from the plan, and a configurable fraction are refused outright.
type Listener struct {
	net.Listener
	plan Plan

	mu      sync.Mutex
	rng     *rand.Rand
	connIdx int64
	conns   []*Conn
	kills   []int64 // pending one-shot ScheduleKill byte counts

	stats Stats
}

// Listen wraps ln with plan.
func Listen(ln net.Listener, plan Plan) *Listener {
	return &Listener{
		Listener: ln,
		plan:     plan,
		rng:      rand.New(rand.NewSource(plan.Seed)),
	}
}

// Accept returns the next (possibly fault-armed) connection. Refused
// connections are closed immediately and the accept loop moves on, exactly
// as a listener whose host dropped the SYN-ACK would look to the server.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		refuse := l.plan.Refuse > 0 && l.rng.Float64() < l.plan.Refuse
		idx := l.connIdx
		l.connIdx++
		var kill int64
		if !refuse && len(l.kills) > 0 {
			kill, l.kills = l.kills[0], l.kills[1:]
		}
		l.mu.Unlock()
		if refuse {
			l.stats.refusals.Add(1)
			conn.Close()
			continue
		}
		fc := WrapConn(conn, l.plan, l.plan.Seed^(idx+1)*0x9E3779B9)
		fc.shared = &l.stats
		if kill > 0 {
			fc.ScheduleKill(kill)
		}
		l.mu.Lock()
		l.conns = append(l.conns, fc)
		l.mu.Unlock()
		return fc, nil
	}
}

// ScheduleKill arms a one-shot mid-frame kill: the next accepted connection
// dies after n total bytes. Multiple calls queue up, one per connection.
func (l *Listener) ScheduleKill(n int64) {
	l.mu.Lock()
	l.kills = append(l.kills, n)
	l.mu.Unlock()
}

// Stats returns the aggregate fault accounting across every connection this
// listener produced (plus its own refusals).
func (l *Listener) Stats() StatsSnapshot { return l.stats.Snapshot() }

// ConnStats returns the per-connection accounting, in accept order. The
// chaos suite reconciles the sum of these (plus refusals) against Stats.
func (l *Listener) ConnStats() []StatsSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]StatsSnapshot, len(l.conns))
	for i, c := range l.conns {
		out[i] = c.Stats()
	}
	return out
}

// Dialer produces fault-armed outbound connections: refusals surface as
// ECONNREFUSED dial errors, everything else as faults on the returned conn.
type Dialer struct {
	Plan Plan
	// Timeout bounds each dial (default 5s).
	Timeout time.Duration

	mu      sync.Mutex
	rng     *rand.Rand
	rngInit sync.Once
	connIdx int64

	stats Stats
}

// Stats returns the dialer's aggregate fault accounting.
func (d *Dialer) Stats() StatsSnapshot { return d.stats.Snapshot() }

// DialContext dials addr, injecting dial refusals and arming per-connection
// faults. It matches the cluster client's pluggable dialer signature.
func (d *Dialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d.rngInit.Do(func() { d.rng = rand.New(rand.NewSource(d.Plan.Seed)) })
	d.mu.Lock()
	refuse := d.Plan.Refuse > 0 && d.rng.Float64() < d.Plan.Refuse
	idx := d.connIdx
	d.connIdx++
	d.mu.Unlock()
	if refuse {
		d.stats.refusals.Add(1)
		return nil, &net.OpError{Op: "dial", Net: network, Addr: fakeAddr(addr), Err: syscall.ECONNREFUSED}
	}
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nd := net.Dialer{Timeout: timeout}
	conn, err := nd.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	fc := WrapConn(conn, d.Plan, d.Plan.Seed^(idx+1)*0x9E3779B9)
	fc.shared = &d.stats
	return fc, nil
}

// fakeAddr lets the synthesized refusal error carry the target address.
type fakeAddr string

func (a fakeAddr) Network() string { return "tcp" }
func (a fakeAddr) String() string  { return string(a) }

var _ net.Conn = (*Conn)(nil)
var _ net.Listener = (*Listener)(nil)
var _ fmt.Stringer = fakeAddr("")
