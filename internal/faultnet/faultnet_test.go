package faultnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"syscall"
	"testing"
	"time"

	"privstats/internal/netsim"
)

// pipePair returns two ends of a loopback TCP connection (net.Pipe has no
// buffering, which deadlocks single-goroutine write-then-read tests).
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { a.Close(); r.c.Close() })
	return a, r.c
}

func TestCleanPlanIsTransparent(t *testing.T) {
	a, b := pipePair(t)
	fa := WrapConn(a, Plan{Seed: 1}, 1)
	msg := []byte("no faults armed means no faults fired")
	if _, err := fa.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
	if total := fa.Stats().Total(); total != 0 {
		t.Errorf("injected %d faults on a clean plan", total)
	}
}

func TestResetFaultFires(t *testing.T) {
	a, _ := pipePair(t)
	// Probability 1 arms the reset on every connection; drive ops until the
	// armed op index is reached.
	fa := WrapConn(a, Plan{Write: Spec{Reset: 1}}, 7)
	var err error
	for i := 0; i < maxFaultOp+1; i++ {
		_, err = fa.Write([]byte("x"))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("err = %v, want ECONNRESET", err)
	}
	if s := fa.Stats(); s.Resets != 1 {
		t.Errorf("stats = %+v, want one reset", s)
	}
	// The connection stays dead afterwards.
	if _, err := fa.Write([]byte("y")); !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("post-reset write err = %v", err)
	}
}

func TestCorruptFaultFlipsOneByte(t *testing.T) {
	a, b := pipePair(t)
	fa := WrapConn(a, Plan{Write: Spec{Corrupt: 1}}, 3)
	orig := bytes.Repeat([]byte{0x00}, 64)
	done := make(chan []byte, 1)
	go func() {
		got := make([]byte, len(orig)*(maxFaultOp+1))
		n, _ := io.ReadFull(b, got)
		done <- got[:n]
	}()
	for i := 0; i < maxFaultOp+1; i++ {
		if _, err := fa.Write(orig); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	got := <-done
	diff := 0
	for _, x := range got {
		if x != 0 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
	if s := fa.Stats(); s.Corruptions != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Caller's buffer must not be mutated (corruption is on-wire only).
	for _, x := range orig {
		if x != 0 {
			t.Fatal("writer's buffer was mutated")
		}
	}
}

func TestShortWriteFault(t *testing.T) {
	a, b := pipePair(t)
	go io.Copy(io.Discard, b)
	fa := WrapConn(a, Plan{Write: Spec{ShortWrite: 1}}, 11)
	buf := bytes.Repeat([]byte("z"), 100)
	var short bool
	for i := 0; i < maxFaultOp+1; i++ {
		n, err := fa.Write(buf)
		if err != nil && n < len(buf) {
			short = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !short {
		t.Fatal("short write never fired")
	}
	if s := fa.Stats(); s.ShortWrites != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStallFaultDelays(t *testing.T) {
	a, b := pipePair(t)
	go io.Copy(io.Discard, b)
	fa := WrapConn(a, Plan{Write: Spec{Stall: 1, StallFor: 50 * time.Millisecond}}, 5)
	start := time.Now()
	for i := 0; i < maxFaultOp+1; i++ {
		if _, err := fa.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("writes took %v, want >= 50ms stall", d)
	}
	if s := fa.Stats(); s.Stalls != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestScheduleKillMidFrame(t *testing.T) {
	a, b := pipePair(t)
	fa := WrapConn(a, Plan{}, 9)
	fa.ScheduleKill(10)
	done := make(chan int, 1)
	go func() {
		got, _ := io.ReadAll(b)
		done <- len(got)
	}()
	n, err := fa.Write(bytes.Repeat([]byte("k"), 64))
	if n != 10 {
		t.Errorf("delivered %d bytes, want 10", n)
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("err = %v, want ECONNRESET", err)
	}
	if got := <-done; got != 10 {
		t.Errorf("peer read %d bytes, want 10", got)
	}
	if s := fa.Stats(); s.Kills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestListenerRefusalAndAccounting(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := Listen(ln, Plan{Seed: 42, Refuse: 0.5})
	defer fl.Close()

	// Server: echo everything on each accepted conn.
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()

	const dials = 40
	served := 0
	for i := 0; i < dials; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c.SetDeadline(time.Now().Add(2 * time.Second))
		// A refused conn is closed server-side before any echo: the write
		// may succeed (buffered) but the read sees EOF.
		if _, err := c.Write([]byte("ping")); err == nil {
			buf := make([]byte, 4)
			if _, err := io.ReadFull(c, buf); err == nil && string(buf) == "ping" {
				served++
			}
		}
		c.Close()
	}
	st := fl.Stats()
	if int(st.Refusals)+served != dials {
		t.Errorf("refusals %d + served %d != dials %d", st.Refusals, served, dials)
	}
	if st.Refusals == 0 || served == 0 {
		t.Errorf("want a mix at 50%%: refusals=%d served=%d", st.Refusals, served)
	}
}

func TestListenerDeterministicAcrossSeeds(t *testing.T) {
	// The same seed must refuse the same accept indices.
	pattern := func(seed int64) []bool {
		rng := rand.New(rand.NewSource(seed))
		out := make([]bool, 64)
		for i := range out {
			out[i] = rng.Float64() < 0.3
		}
		return out
	}
	a, b := pattern(99), pattern(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if c := pattern(100); func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Error("different seeds produced identical refusal patterns")
	}
}

func TestDialerRefusal(t *testing.T) {
	d := &Dialer{Plan: Plan{Seed: 4, Refuse: 1}}
	_, err := d.DialContext(context.Background(), "tcp", "127.0.0.1:1")
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("err = %v, want ECONNREFUSED", err)
	}
	if s := d.Stats(); s.Refusals != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDialerCleanPassThrough(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c)
	}()
	d := &Dialer{Plan: Plan{Seed: 8}}
	c, err := d.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("echo")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "echo" {
		t.Fatalf("echo failed: %q %v", buf, err)
	}
	if _, ok := c.(*Conn); !ok {
		t.Errorf("dialer returned %T, want *faultnet.Conn", c)
	}
}

// Composition: a netsim.Throttle over a faultnet.Conn still paces bytes and
// still surfaces injected faults — the slow-AND-unreliable modem link.
func TestComposesWithNetsimThrottle(t *testing.T) {
	a, b := pipePair(t)
	go io.Copy(io.Discard, b)
	fa := WrapConn(a, Plan{Write: Spec{Reset: 1}}, 13)
	th, err := netsim.NewThrottle(fa, netsim.ShortDistance)
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	for i := 0; i < maxFaultOp+1; i++ {
		if _, werr = th.Write([]byte("paced")); werr != nil {
			break
		}
	}
	if !errors.Is(werr, syscall.ECONNRESET) {
		t.Fatalf("err through throttle = %v, want ECONNRESET", werr)
	}
	if s := fa.Stats(); s.Resets != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStatsAddAndTotal(t *testing.T) {
	a := StatsSnapshot{Resets: 1, Corruptions: 2}
	b := StatsSnapshot{Stalls: 3, Kills: 4, Refusals: 5, ShortWrites: 6}
	sum := a.Add(b)
	if sum.Total() != 21 {
		t.Errorf("total = %d, want 21", sum.Total())
	}
	if sum.Resets != 1 || sum.Stalls != 3 || sum.Corruptions != 2 ||
		sum.ShortWrites != 6 || sum.Refusals != 5 || sum.Kills != 4 {
		t.Errorf("sum = %+v", sum)
	}
}

// Per-conn stats must reconcile with the listener aggregate.
func TestListenerConnStatsReconcile(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := Listen(ln, Plan{Seed: 21, Read: Spec{Reset: 0.5}, Write: Spec{Corrupt: 0.5}})
	defer fl.Close()
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 16)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					if _, err := c.Write(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	for i := 0; i < 20; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c.SetDeadline(time.Now().Add(time.Second))
		for j := 0; j < maxFaultOp+1; j++ {
			if _, err := c.Write(bytes.Repeat([]byte("r"), 16)); err != nil {
				break
			}
			if _, err := io.ReadFull(c, make([]byte, 16)); err != nil {
				break
			}
		}
		c.Close()
	}
	// Let server goroutines observe their resets.
	time.Sleep(50 * time.Millisecond)
	agg := fl.Stats()
	var sum StatsSnapshot
	for _, s := range fl.ConnStats() {
		sum = sum.Add(s)
	}
	sum.Refusals += agg.Refusals // refusals are listener-level, not per-conn
	if sum != agg {
		t.Errorf("per-conn sum %+v != aggregate %+v", sum, agg)
	}
}
