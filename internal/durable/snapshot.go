package durable

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file via a same-directory temp file, fsync, and
// rename, then fsyncs the directory: a crash at any point leaves either the
// old complete file or the new complete file at path, never a truncated
// hybrid. This is the snapshot discipline behind every persisted store in
// the repo (PSBS/PSRP stock files, compacted job journals).
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: creating %s: %w", tmp, err)
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: flushing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: renaming %s into place: %w", tmp, err)
	}
	return syncDir(path)
}

// syncDir fsyncs path's parent directory so the rename that landed path is
// itself durable. Filesystems that refuse directory fsync (some network
// mounts) are tolerated: the rename still happened, only its durability
// window widens.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
