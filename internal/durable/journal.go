// Package durable is the crash-safety toolkit shared by the daemons: a
// small append-only, CRC-framed write-ahead journal for state that must
// survive a SIGKILL, and an atomic-rename snapshot helper for state that is
// cheap to rewrite whole. It follows the same envelope discipline as the
// PSBS/PSRP store files in internal/paillier (magic, version, CRC-32 IEEE):
// a reader can always tell a file that was never ours from one of ours that
// a crash tore mid-write.
//
// Journal durability contract: a record handed to Append has been written
// and fsynced when Append returns, so anything acknowledged to a client
// after its Append survives a process kill. Replay tolerates a torn tail —
// the partial record a crash mid-Append leaves behind — by stopping at the
// last intact record; it never invents, truncates-to-garbage, or resurrects
// half a record.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

const (
	// journalMagic opens every journal file, versioned separately from the
	// record framing so the format can evolve.
	journalMagic   = "PSWJ"
	journalVersion = 1

	// headerLen is the file header: magic + version.
	headerLen = 4 + 4

	// frameOverhead is the per-record framing cost: type byte, payload
	// length, CRC-32 trailer.
	frameOverhead = 1 + 4 + 4

	// MaxRecord bounds one record's payload, rejecting absurd lengths from a
	// corrupt frame before any allocation (mirrors jobs.MaxSpecBytes).
	MaxRecord = 16 << 20
)

// ErrCorruptJournal is returned when a journal file's header fails
// validation — the file is not (or is no longer) a journal of ours. Torn or
// corrupt record tails are NOT this error; they are tolerated and reported
// via Stats.
var ErrCorruptJournal = errors.New("durable: corrupt journal")

// Stats summarizes one replay: how much was recovered and whether the file
// ended in a torn or corrupt tail that was dropped.
type Stats struct {
	// Records is the number of intact records replayed.
	Records int
	// Bytes is the byte offset of the end of the last intact record
	// (including the file header) — the truncation point after a torn tail.
	Bytes int64
	// TornTail is true when trailing bytes after the last intact record were
	// dropped: a crash mid-append, a truncated copy, or tail rot.
	TornTail bool
}

// Journal is an append-only record log. Append is safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Open opens (creating if absent) the journal at path, replays every intact
// existing record through fn, truncates any torn tail, and positions the
// file for appending. fn may be nil to skip replay consumption; a non-nil
// fn error aborts the open.
//
// A file that exists but does not start with a valid journal header is
// rejected with ErrCorruptJournal rather than silently overwritten: the
// operator pointed the daemon at something that is not its journal.
func Open(path string, fn func(typ byte, payload []byte) error) (*Journal, Stats, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("durable: opening journal %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, Stats{}, fmt.Errorf("durable: stat %s: %w", path, err)
	}

	var stats Stats
	if info.Size() == 0 {
		// Fresh journal: write the header now so a crash before the first
		// record still leaves a well-formed (empty) journal behind.
		hdr := make([]byte, 0, headerLen)
		hdr = append(hdr, journalMagic...)
		hdr = binary.BigEndian.AppendUint32(hdr, journalVersion)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, Stats{}, fmt.Errorf("durable: writing journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, Stats{}, fmt.Errorf("durable: syncing journal header: %w", err)
		}
		stats.Bytes = headerLen
	} else {
		stats, err = Replay(f, fn)
		if err != nil {
			f.Close()
			return nil, stats, err
		}
		if stats.TornTail {
			// Drop the tail so new appends continue from the last intact
			// record instead of burying it under unreadable garbage.
			if err := f.Truncate(stats.Bytes); err != nil {
				f.Close()
				return nil, stats, fmt.Errorf("durable: truncating torn tail of %s: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, stats, fmt.Errorf("durable: syncing truncated %s: %w", path, err)
			}
		}
		if _, err := f.Seek(stats.Bytes, io.SeekStart); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("durable: seeking to journal end: %w", err)
		}
	}
	return &Journal{f: f, path: path}, stats, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append frames one record (type, length, payload, CRC-32 over all three)
// and fsyncs it: when Append returns nil, the record survives a kill.
func (j *Journal) Append(typ byte, payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("durable: record payload %d exceeds %d-byte cap", len(payload), MaxRecord)
	}
	buf := make([]byte, 0, frameOverhead+len(payload))
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[:len(buf)]))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("durable: append to closed journal")
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("durable: appending record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("durable: syncing record: %w", err)
	}
	return nil
}

// Close closes the journal file. Append after Close errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Replay reads a journal stream: header, then records until EOF or the
// first frame that fails validation (short read, absurd length, CRC
// mismatch). Everything after the first bad frame is unreachable — the
// framing is lost — so replay stops there and reports TornTail; it never
// panics and never delivers a partial record to fn.
//
// A bad HEADER is different: that file was never a journal of ours (or rot
// reached the very front), and replaying nothing from it silently would
// masquerade as an empty store, so it is an error.
func Replay(r io.Reader, fn func(typ byte, payload []byte) error) (Stats, error) {
	var stats Stats
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return stats, fmt.Errorf("%w: header: %v", ErrCorruptJournal, err)
	}
	if string(hdr[:4]) != journalMagic {
		return stats, fmt.Errorf("%w: bad magic %q", ErrCorruptJournal, hdr[:4])
	}
	if v := binary.BigEndian.Uint32(hdr[4:]); v != journalVersion {
		return stats, fmt.Errorf("%w: unsupported version %d", ErrCorruptJournal, v)
	}
	stats.Bytes = headerLen

	frame := make([]byte, 1+4)
	for {
		if _, err := io.ReadFull(r, frame[:1]); err != nil {
			if errors.Is(err, io.EOF) {
				return stats, nil // clean end: no tail at all
			}
			stats.TornTail = true
			return stats, nil
		}
		if _, err := io.ReadFull(r, frame[1:]); err != nil {
			stats.TornTail = true
			return stats, nil
		}
		length := binary.BigEndian.Uint32(frame[1:])
		if length > MaxRecord {
			stats.TornTail = true
			return stats, nil
		}
		body := make([]byte, length+4) // payload + CRC trailer
		if _, err := io.ReadFull(r, body); err != nil {
			stats.TornTail = true
			return stats, nil
		}
		crc := crc32.NewIEEE()
		crc.Write(frame)
		crc.Write(body[:length])
		if binary.BigEndian.Uint32(body[length:]) != crc.Sum32() {
			stats.TornTail = true
			return stats, nil
		}
		if fn != nil {
			if err := fn(frame[0], body[:length]); err != nil {
				return stats, err
			}
		}
		stats.Records++
		stats.Bytes += int64(frameOverhead) + int64(length)
	}
}

// Rewrite atomically replaces the journal at path with the records write
// appends — the compaction half of a replay-then-compact startup: rebuild
// in-memory state from the old journal, Rewrite the retained subset, then
// Open the result for appending. A crash anywhere leaves either the old
// complete journal or the new complete journal, never a mix.
func Rewrite(path string, write func(j *Journal) error) error {
	tmp := path + ".tmp"
	os.Remove(tmp) // a previous crashed Rewrite's leftovers
	j, _, err := Open(tmp, nil)
	if err != nil {
		return err
	}
	if err := write(j); err != nil {
		j.Close()
		os.Remove(tmp)
		return err
	}
	if err := j.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: closing rewritten journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: renaming rewritten journal into place: %w", err)
	}
	return syncDir(path)
}
