package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// fuzzJournal frames records the way Append does, without touching disk.
func fuzzJournal(recs []rec) []byte {
	var b bytes.Buffer
	b.WriteString(journalMagic)
	binary.Write(&b, binary.BigEndian, uint32(journalVersion))
	for _, r := range recs {
		frame := make([]byte, 0, frameOverhead+len(r.payload))
		frame = append(frame, r.typ)
		frame = binary.BigEndian.AppendUint32(frame, uint32(len(r.payload)))
		frame = append(frame, r.payload...)
		frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))
		b.Write(frame)
	}
	return b.Bytes()
}

// FuzzReplayJournal feeds arbitrary bytes to Replay: it must never panic,
// never allocate absurdly, and every record it DOES deliver must re-frame to
// a byte-identical prefix of the input — i.e. replay only ever surfaces data
// that was genuinely framed in the stream.
func FuzzReplayJournal(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzJournal(nil))
	f.Add(fuzzJournal([]rec{{1, []byte("hello")}, {2, nil}}))
	whole := fuzzJournal([]rec{{3, bytes.Repeat([]byte{0x5A}, 100)}, {4, []byte("tail")}})
	f.Add(whole)
	f.Add(whole[:len(whole)-3])            // torn tail
	f.Add(append(whole, 0xFF, 0x00, 0x01)) // trailing garbage
	big := fuzzJournal(nil)
	big = append(big, 9, 0xFF, 0xFF, 0xFF, 0xFF) // absurd declared length
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []rec
		stats, err := Replay(bytes.NewReader(data), func(typ byte, payload []byte) error {
			got = append(got, rec{typ, append([]byte(nil), payload...)})
			return nil
		})
		if err != nil {
			if len(got) != 0 {
				t.Fatalf("header error after delivering %d records", len(got))
			}
			return
		}
		if stats.Records != len(got) {
			t.Fatalf("stats.Records=%d, delivered %d", stats.Records, len(got))
		}
		if stats.Bytes < headerLen || stats.Bytes > int64(len(data)) {
			t.Fatalf("stats.Bytes=%d outside [header, len=%d]", stats.Bytes, len(data))
		}
		// Re-framing the delivered records must reproduce the input prefix
		// exactly: replay is lossless over the intact region.
		if !bytes.Equal(fuzzJournal(got), data[:stats.Bytes]) {
			t.Fatal("replayed records do not re-frame to the input prefix")
		}
		if !stats.TornTail && stats.Bytes != int64(len(data)) {
			t.Fatal("clean replay ended before the end of input")
		}
	})
}
