package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

type rec struct {
	typ     byte
	payload []byte
}

// appendAll opens (or reopens) the journal at path and appends every record.
func appendAll(t *testing.T, path string, recs []rec) {
	t.Helper()
	j, _, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.Append(r.typ, r.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayAll opens the journal collecting every replayed record.
func replayAll(t *testing.T, path string) ([]rec, Stats) {
	t.Helper()
	var got []rec
	j, stats, err := Open(path, func(typ byte, payload []byte) error {
		got = append(got, rec{typ, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func sampleRecords() []rec {
	return []rec{
		{1, []byte(`{"id":"a","op":"sum"}`)},
		{2, nil}, // empty payloads are legal
		{3, bytes.Repeat([]byte{0xAB}, 300)},
		{4, []byte("final record")},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	want := sampleRecords()
	appendAll(t, path, want)

	got, stats := replayAll(t, path)
	if stats.TornTail {
		t.Error("clean journal reported a torn tail")
	}
	if stats.Records != len(want) {
		t.Fatalf("replayed %d records, want %d", stats.Records, len(want))
	}
	for i := range want {
		if got[i].typ != want[i].typ || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Errorf("record %d: got (%d, %q), want (%d, %q)",
				i, got[i].typ, got[i].payload, want[i].typ, want[i].payload)
		}
	}

	// Reopen-and-append continues the same journal.
	appendAll(t, path, []rec{{9, []byte("appended after reopen")}})
	got, _ = replayAll(t, path)
	if len(got) != len(want)+1 || got[len(got)-1].typ != 9 {
		t.Fatalf("after reopen-append: %d records, last type %d", len(got), got[len(got)-1].typ)
	}
}

// TestJournalTruncationSweep cuts a multi-record journal at EVERY byte
// boundary: replay must never error, never panic, and must recover exactly
// the records whose frames survived intact.
func TestJournalTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	recs := sampleRecords()
	appendAll(t, full, recs)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Record the intact-prefix byte offsets: after the header, after each
	// record. A cut at exactly offsets[i] recovers i records with no torn
	// tail; any other cut beyond the header recovers the records that fit
	// and reports the tail.
	offsets := []int64{headerLen}
	for _, r := range recs {
		offsets = append(offsets, offsets[len(offsets)-1]+int64(frameOverhead)+int64(len(r.payload)))
	}
	if offsets[len(offsets)-1] != int64(len(data)) {
		t.Fatalf("offset arithmetic: computed end %d, file is %d bytes", offsets[len(offsets)-1], len(data))
	}

	for cut := 0; cut <= len(data); cut++ {
		var n int
		stats, err := Replay(bytes.NewReader(data[:cut]), func(byte, []byte) error { n++; return nil })
		if cut < headerLen {
			// Not even a header: this file cannot be trusted as an empty
			// journal, so it must be rejected loudly.
			if !errors.Is(err, ErrCorruptJournal) {
				t.Fatalf("cut %d: want ErrCorruptJournal, got %v", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		wantRecs := 0
		for _, off := range offsets {
			if int64(cut) >= off {
				wantRecs++
			}
		}
		wantRecs-- // offsets[0] is the bare header
		if n != wantRecs || stats.Records != wantRecs {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, n, wantRecs)
		}
		wantTorn := int64(cut) != offsets[wantRecs]
		if stats.TornTail != wantTorn {
			t.Fatalf("cut %d: TornTail=%v, want %v", cut, stats.TornTail, wantTorn)
		}
		if stats.Bytes != offsets[wantRecs] {
			t.Fatalf("cut %d: Bytes=%d, want %d", cut, stats.Bytes, offsets[wantRecs])
		}
	}
}

// TestJournalBitFlip flips a single bit in a mid-journal record body: replay
// must stop at the last record BEFORE the flip — no panic, and nothing after
// the corruption resurrected (the framing downstream of a bad CRC cannot be
// trusted).
func TestJournalBitFlip(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	recs := sampleRecords()
	appendAll(t, full, recs)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one bit inside record 1's payload region... which is empty, so
	// use record 2's (offset: header + rec0 frame + rec1 frame + type+len).
	off := headerLen + (frameOverhead + len(recs[0].payload)) + (frameOverhead + 0) + 5
	corrupt := append([]byte(nil), data...)
	corrupt[off] ^= 0x10

	var n int
	stats, err := Replay(bytes.NewReader(corrupt), func(byte, []byte) error { n++; return nil })
	if err != nil {
		t.Fatalf("bit flip must not error replay: %v", err)
	}
	if n != 2 || stats.Records != 2 {
		t.Fatalf("replayed %d records past a flipped bit in record 2, want 2", n)
	}
	if !stats.TornTail {
		t.Error("bit flip not reported as a dropped tail")
	}

	// Opening the corrupt journal truncates at the last good record, and a
	// subsequent append + replay yields records 0,1 + the new one.
	path := filepath.Join(dir, "reopen.wal")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	j, stats, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TornTail || stats.Records != 2 {
		t.Fatalf("open on corrupt journal: %+v", stats)
	}
	if err := j.Append(7, []byte("after repair")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got, stats := replayAll(t, path)
	if stats.TornTail || len(got) != 3 || got[2].typ != 7 {
		t.Fatalf("post-repair replay: %d records, stats %+v", len(got), stats)
	}
}

func TestJournalRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"nonsense.wal": []byte("this is not a journal, it is a text file"),
		"psbs.wal":     append([]byte("PSBS"), bytes.Repeat([]byte{0}, 64)...),
		"badver.wal":   {'P', 'S', 'W', 'J', 0xFF, 0xFF, 0xFF, 0xFF},
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(path, nil); !errors.Is(err, ErrCorruptJournal) {
			t.Errorf("%s: want ErrCorruptJournal, got %v", name, err)
		}
	}
}

func TestJournalAppendLimits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "limits.wal")
	j, _, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, make([]byte, MaxRecord+1)); err == nil {
		t.Error("oversized payload accepted")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, []byte("x")); err == nil {
		t.Error("append after close accepted")
	}
	if err := j.Close(); err != nil {
		t.Error("double close should be a no-op:", err)
	}
}

func TestJournalReplayFnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fnerr.wal")
	appendAll(t, path, sampleRecords())
	boom := errors.New("boom")
	if _, _, err := Open(path, func(byte, []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("fn error not propagated: %v", err)
	}
}

func TestRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	appendAll(t, path, sampleRecords())

	// Compact down to one surviving record.
	if err := Rewrite(path, func(j *Journal) error {
		return j.Append(42, []byte("survivor"))
	}); err != nil {
		t.Fatal(err)
	}
	got, stats := replayAll(t, path)
	if len(got) != 1 || got[0].typ != 42 || stats.TornTail {
		t.Fatalf("after rewrite: %d records (%+v)", len(got), stats)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("rewrite left its temp file behind")
	}

	// A failing write callback leaves the original journal untouched.
	if err := Rewrite(path, func(j *Journal) error {
		_ = j.Append(1, []byte("doomed"))
		return fmt.Errorf("abort")
	}); err == nil {
		t.Fatal("failing rewrite reported success")
	}
	got, _ = replayAll(t, path)
	if len(got) != 1 || got[0].typ != 42 {
		t.Fatalf("failed rewrite corrupted the journal: %d records", len(got))
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("snapshot content %q", b)
	}
	// A failing writer leaves the previous snapshot in place and no temp.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		return errors.New("mid-write crash")
	}); err == nil {
		t.Fatal("failing snapshot reported success")
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("failed snapshot clobbered previous content: %q", b)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("failed snapshot left its temp file behind")
	}
}
