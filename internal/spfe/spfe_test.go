package spfe

import (
	"crypto/rand"
	"math/big"
	"strings"
	"sync"
	"testing"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/paillier"
)

var (
	tkOnce sync.Once
	tkKey  *paillier.PrivateKey
	tkErr  error
)

func testKey(t testing.TB) homomorphic.PrivateKey {
	t.Helper()
	tkOnce.Do(func() { tkKey, tkErr = paillier.KeyGen(rand.Reader, 256) })
	if tkErr != nil {
		t.Fatalf("KeyGen: %v", tkErr)
	}
	return paillier.SchemeKey{SK: tkKey}
}

func TestWeightedSumExact(t *testing.T) {
	sk := testKey(t)
	table := database.New([]uint32{10, 20, 30, 40})
	w, err := NewWeights([]*big.Int{
		big.NewInt(1), big.NewInt(0), big.NewInt(3), big.NewInt(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := WeightedSum(sk, table.Column(), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10 + 0 + 90 + 200)
	if got.Int64() != want {
		t.Errorf("weighted sum = %v, want %d", got, want)
	}
}

func TestWeightedSumChunked(t *testing.T) {
	sk := testKey(t)
	n := 57
	table, _ := database.Generate(n, database.DistSmall, 17)
	ws := make([]*big.Int, n)
	want := new(big.Int)
	for i := range ws {
		ws[i] = big.NewInt(int64(i % 7))
		want.Add(want, new(big.Int).Mul(ws[i], big.NewInt(int64(table.Value(i)))))
	}
	w, err := NewWeights(ws)
	if err != nil {
		t.Fatal(err)
	}
	got, err := WeightedSum(sk, table.Column(), w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("weighted sum = %v, want %v", got, want)
	}
}

func TestWeightedSumDegeneratesToSelectedSum(t *testing.T) {
	sk := testKey(t)
	table, _ := database.Generate(40, database.DistSmall, 4)
	sel, _ := database.GenerateSelection(40, 15, database.PatternRandom, 8)
	w := UniformFromSelection(sel)
	got, err := WeightedSum(sk, table.Column(), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := table.SelectedSum(sel)
	if got.Cmp(want) != 0 {
		t.Errorf("0/1-weighted sum = %v, selected sum = %v", got, want)
	}
}

func TestWeightedAverage(t *testing.T) {
	sk := testKey(t)
	table := database.New([]uint32{100, 200})
	w, _ := NewWeights([]*big.Int{big.NewInt(1), big.NewInt(3)})
	avg, err := WeightedAverage(sk, table.Column(), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	// (100 + 600)/4 = 175
	if avg.Cmp(big.NewRat(175, 1)) != 0 {
		t.Errorf("weighted average = %v, want 175", avg)
	}
}

func TestWeightedAverageZeroWeights(t *testing.T) {
	sk := testKey(t)
	table := database.New([]uint32{1})
	w, _ := NewWeights([]*big.Int{big.NewInt(0)})
	if _, err := WeightedAverage(sk, table.Column(), w, 0); err == nil {
		t.Error("all-zero weights should fail")
	}
}

func TestWeightsValidation(t *testing.T) {
	if _, err := NewWeights([]*big.Int{nil}); err == nil {
		t.Error("nil weight should fail")
	}
	if _, err := NewWeights([]*big.Int{big.NewInt(-1)}); err == nil {
		t.Error("negative weight should fail")
	}
	sk := testKey(t)
	table := database.New([]uint32{1, 2})
	w, _ := NewWeights([]*big.Int{big.NewInt(1)})
	if _, err := WeightedSum(sk, table.Column(), w, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	// Weight >= plaintext space must be rejected.
	huge := new(big.Int).Lsh(big.NewInt(1), 300) // exceeds 256-bit modulus
	wBig, _ := NewWeights([]*big.Int{huge, big.NewInt(0)})
	if _, err := WeightedSum(sk, table.Column(), wBig, 0); err == nil {
		t.Error("oversized weight should fail")
	}
	if _, err := WeightedSum(nil, table.Column(), w, 0); err == nil {
		t.Error("nil key should fail")
	}
}

func TestPowerColumn(t *testing.T) {
	table := database.New([]uint32{0, 1, 2, 10})
	pc, err := NewPowerColumn(table.Column(), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 8, 1000}
	for i, v := range want {
		if pc.At(i) != v {
			t.Errorf("pow[%d] = %d, want %d", i, pc.At(i), v)
		}
	}
	if pc.Len() != 4 {
		t.Errorf("len = %d", pc.Len())
	}
}

func TestPowerColumnOverflow(t *testing.T) {
	table := database.New([]uint32{1 << 31})
	// (2^31)^3 = 2^93 overflows uint64.
	if _, err := NewPowerColumn(table.Column(), 3); err == nil {
		t.Error("overflow should be detected")
	}
	// (2^31)^2 = 2^62 fits.
	if _, err := NewPowerColumn(table.Column(), 2); err != nil {
		t.Errorf("2^62 fits: %v", err)
	}
	if _, err := NewPowerColumn(table.Column(), 0); err == nil {
		t.Error("power 0 should fail")
	}
}

func TestPolynomialSumQuadratic(t *testing.T) {
	sk := testKey(t)
	// p(x) = 2 - 3x + x²; selection {3, 5}: p(3)=2, p(5)=12; total 14.
	table := database.New([]uint32{3, 4, 5})
	sel, _ := database.NewSelection(3)
	sel.Set(0)
	sel.Set(2)
	coeffs := []*big.Int{big.NewInt(2), big.NewInt(-3), big.NewInt(1)}
	got, err := PolynomialSum(sk, table.Column(), sel, coeffs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 14 {
		t.Errorf("polynomial sum = %v, want 14", got)
	}
}

func TestPolynomialSumConstant(t *testing.T) {
	sk := testKey(t)
	table := database.New([]uint32{7, 8, 9})
	sel, _ := database.NewSelection(3)
	sel.Set(1)
	sel.Set(2)
	// p(x) = 5: total = 5·m = 10 with no protocol rounds at all.
	got, err := PolynomialSum(sk, table.Column(), sel, []*big.Int{big.NewInt(5)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 10 {
		t.Errorf("constant polynomial sum = %v, want 10", got)
	}
}

func TestPolynomialSumMatchesOracle(t *testing.T) {
	sk := testKey(t)
	table, _ := database.Generate(30, database.DistSmall, 23)
	sel, _ := database.GenerateSelection(30, 12, database.PatternRandom, 24)
	coeffs := []*big.Int{big.NewInt(-7), big.NewInt(4), big.NewInt(0), big.NewInt(2)}
	got, err := PolynomialSum(sk, table.Column(), sel, coeffs, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int)
	for _, i := range sel.Indices() {
		x := big.NewInt(int64(table.Value(i)))
		px := new(big.Int).Set(coeffs[0])
		xp := new(big.Int).SetInt64(1)
		for j := 1; j < len(coeffs); j++ {
			xp.Mul(xp, x)
			px.Add(px, new(big.Int).Mul(coeffs[j], xp))
		}
		want.Add(want, px)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("polynomial sum = %v, want %v", got, want)
	}
}

func TestPolynomialSumValidation(t *testing.T) {
	sk := testKey(t)
	table := database.New([]uint32{1, 2})
	sel, _ := database.NewSelection(2)
	if _, err := PolynomialSum(sk, table.Column(), sel, nil, 0); err == nil {
		t.Error("empty coefficients should fail")
	}
	if _, err := PolynomialSum(sk, table.Column(), sel, []*big.Int{big.NewInt(1), nil}, 0); err == nil {
		t.Error("nil coefficient should fail")
	}
	badSel, _ := database.NewSelection(3)
	if _, err := PolynomialSum(sk, table.Column(), badSel, []*big.Int{big.NewInt(1)}, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := PolynomialSum(nil, table.Column(), sel, []*big.Int{big.NewInt(1)}, 0); err == nil {
		t.Error("nil key should fail")
	}
}

func TestMultiDatabaseSum(t *testing.T) {
	sk := testKey(t)
	t1 := database.New([]uint32{1, 2, 3})
	t2 := database.New([]uint32{10, 20})
	t3 := database.New([]uint32{100, 200, 300, 400})
	sel, _ := database.NewSelection(9)
	for _, i := range []int{0, 2, 3, 8} { // rows 1, 3 | 10 | 400
		sel.Set(i)
	}
	res, err := MultiDatabaseSum(sk, []*database.Table{t1, t2, t3}, sel, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Int64() != 1+3+10+400 {
		t.Errorf("sum = %v, want 414", res.Sum)
	}
	if len(res.PerServerRows) != 3 || res.PerServerRows[2] != 4 {
		t.Errorf("per-server rows = %v", res.PerServerRows)
	}
	if res.ChainBytes <= 0 {
		t.Error("chain traffic unaccounted")
	}
}

func TestMultiDatabaseSumSingleDB(t *testing.T) {
	sk := testKey(t)
	table, _ := database.Generate(25, database.DistSmall, 2)
	sel, _ := database.GenerateSelection(25, 10, database.PatternRandom, 3)
	res, err := MultiDatabaseSum(sk, []*database.Table{table}, sel, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := table.SelectedSum(sel)
	if res.Sum.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", res.Sum, want)
	}
	if res.ChainBytes != 0 {
		t.Errorf("single DB should have no chain traffic, got %d", res.ChainBytes)
	}
}

func TestMultiDatabaseSumValidation(t *testing.T) {
	sk := testKey(t)
	table := database.New([]uint32{1})
	sel, _ := database.NewSelection(1)
	if _, err := MultiDatabaseSum(sk, nil, sel, 0); err == nil {
		t.Error("no databases should fail")
	}
	if _, err := MultiDatabaseSum(sk, []*database.Table{nil}, sel, 0); err == nil {
		t.Error("nil table should fail")
	}
	sel2, _ := database.NewSelection(2)
	if _, err := MultiDatabaseSum(sk, []*database.Table{table}, sel2, 0); err == nil {
		t.Error("selection length mismatch should fail")
	}
	if _, err := MultiDatabaseSum(nil, []*database.Table{table}, sel, 0); err == nil {
		t.Error("nil key should fail")
	}
}

func TestWeightsTotal(t *testing.T) {
	w, _ := NewWeights([]*big.Int{big.NewInt(2), big.NewInt(5), big.NewInt(0)})
	if w.Total().Int64() != 7 {
		t.Errorf("total = %v", w.Total())
	}
	if w.Len() != 3 || w.At(1).Int64() != 5 {
		t.Errorf("accessors broken")
	}
}

// Error paths required for the multi-database extension: each invalid
// input must fail up front with a descriptive error, not mid-protocol.
func TestMultiDatabaseSumErrorPaths(t *testing.T) {
	sk := testKey(t)
	table := database.New([]uint32{1, 2, 3})

	// Mismatched selection length: both too short and too long.
	for _, n := range []int{2, 4} {
		sel, err := database.NewSelection(n)
		if err != nil {
			t.Fatal(err)
		}
		_, err = MultiDatabaseSum(sk, []*database.Table{table}, sel, 0)
		if err == nil {
			t.Fatalf("selection of %d over 3 rows accepted", n)
		}
		if !strings.Contains(err.Error(), "selection covers") {
			t.Errorf("unhelpful mismatch error: %v", err)
		}
	}

	sel, err := database.NewSelection(3)
	if err != nil {
		t.Fatal(err)
	}

	// Empty table list (empty slice, not just nil).
	if _, err := MultiDatabaseSum(sk, []*database.Table{}, sel, 0); err == nil {
		t.Error("empty table list accepted")
	}

	// Negative chunk size must be rejected before any crypto runs; zero
	// stays the documented single-chunk convention.
	if _, err := MultiDatabaseSum(sk, []*database.Table{table}, sel, -1); err == nil {
		t.Error("negative chunk size accepted")
	}
	if _, err := MultiDatabaseSum(sk, []*database.Table{table}, sel, 0); err != nil {
		t.Errorf("zero chunk size (single chunk) rejected: %v", err)
	}
}
