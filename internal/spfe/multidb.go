package spfe

import (
	"errors"
	"fmt"
	"math/big"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// Multi-database extension: the client's data of interest is spread over
// several independently operated databases (the paper: "this protocol, as
// well as some of the others of Canetti et al., can easily be extended to
// work for multiple distributed databases").
//
// The client views the union as one logical vector and prepares one
// selection over the concatenation. Each server folds its shard of the
// encrypted index vector against its own data. The encrypted partial sums
// are then chained server to server — server s homomorphically adds its
// partial onto the running ciphertext — so the client receives ONE
// ciphertext and never sees any per-database partial sum, and no server
// sees anything but ciphertexts under the client's key.

// MultiDBResult reports a multi-database query.
type MultiDBResult struct {
	// Sum is the total over all databases.
	Sum *big.Int
	// PerServerRows records each database's size (for reporting).
	PerServerRows []int
	// BytesUp is the total encrypted-index traffic to all servers;
	// ChainBytes is the server-to-server ciphertext chain traffic.
	BytesUp, ChainBytes int64
}

// MultiDatabaseSum privately sums the selected rows across the given
// tables. sel covers the concatenation of all tables in order. chunkSize 0
// sends each database its slice in a single chunk; negative values are
// rejected.
func MultiDatabaseSum(sk homomorphic.PrivateKey, tables []*database.Table, sel *database.Selection, chunkSize int) (*MultiDBResult, error) {
	if sk == nil {
		return nil, errors.New("spfe: nil private key")
	}
	if chunkSize < 0 {
		return nil, fmt.Errorf("spfe: negative chunk size %d", chunkSize)
	}
	if len(tables) == 0 {
		return nil, errors.New("spfe: no databases")
	}
	total := 0
	for i, t := range tables {
		if t == nil {
			return nil, fmt.Errorf("spfe: table %d is nil", i)
		}
		total += t.Len()
	}
	if sel.Len() != total {
		return nil, fmt.Errorf("spfe: selection covers %d rows, databases hold %d", sel.Len(), total)
	}
	pk := sk.PublicKey()
	width := pk.CiphertextSize()
	enc := selectedsum.Online{PK: pk}

	res := &MultiDBResult{PerServerRows: make([]int, len(tables))}

	// chain is the running encrypted total passed server to server.
	var chain homomorphic.Ciphertext
	offset := 0
	for s, t := range tables {
		res.PerServerRows[s] = t.Len()
		n := t.Len()
		session, err := selectedsum.NewServerSession(pk, t, uint64(n))
		if err != nil {
			return nil, fmt.Errorf("spfe: server %d session: %w", s, err)
		}
		cs := chunkSize
		if cs <= 0 || cs > n {
			cs = n
		}
		for lo := 0; lo < n; lo += cs {
			hi := lo + cs
			if hi > n {
				hi = n
			}
			body, err := encryptShard(enc, sel, offset+lo, offset+hi, width)
			if err != nil {
				return nil, err
			}
			chunk := &wire.IndexChunk{Offset: uint64(lo), Ciphertexts: body, Width: width}
			payload := chunk.Encode()
			res.BytesUp += int64(wire.FrameOverhead + len(payload))
			decoded, err := wire.DecodeIndexChunk(payload, width)
			if err != nil {
				return nil, err
			}
			if err := session.Absorb(decoded); err != nil {
				return nil, fmt.Errorf("spfe: server %d absorb: %w", s, err)
			}
		}
		partial, err := session.Finalize(nil)
		if err != nil {
			return nil, fmt.Errorf("spfe: server %d finalize: %w", s, err)
		}
		if chain == nil {
			chain = partial
		} else {
			chain, err = pk.Add(chain, partial)
			if err != nil {
				return nil, fmt.Errorf("spfe: server %d chain add: %w", s, err)
			}
			res.ChainBytes += int64(width)
		}
		offset += n
	}

	sum, err := sk.Decrypt(chain)
	if err != nil {
		return nil, fmt.Errorf("spfe: decrypting chained total: %w", err)
	}
	res.Sum = sum
	return res, nil
}

// encryptShard encrypts selection bits for global positions [lo, hi).
func encryptShard(enc selectedsum.BitEncryptor, sel *database.Selection, lo, hi, width int) ([]byte, error) {
	return selectedsum.EncryptRange(enc, sel, lo, hi, width)
}
