// Package spfe generalizes the selected-sum protocol along the axes the
// paper sketches: selective private function evaluation (Canetti et al.,
// the paper's reference [5]) with integer weights instead of 0/1 indices
// ("integer weights in some larger range could be used to produce a
// weighted sum, which in turn could be used for a weighted average"),
// polynomial aggregates over the selection, and the multiple-distributed-
// databases extension ("this protocol … can easily be extended to work for
// multiple distributed databases").
//
// All variants keep the trust model of the base protocol: the server(s)
// see only semantically secure ciphertexts; the client learns only the
// final aggregate.
package spfe

import (
	"errors"
	"fmt"
	"math/big"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// ErrWeightRange is returned when a weight falls outside the allowed range.
var ErrWeightRange = errors.New("spfe: weight outside plaintext space")

// Weights is the client's private weight vector w_1..w_n; entry i
// contributes w_i·x_i to the sum. A 0/1 vector degenerates to the selected
// sum.
type Weights struct {
	w []*big.Int
}

// NewWeights validates and wraps a weight vector. Weights must be
// non-negative; they are reduced nowhere — the caller's cryptosystem must
// be able to represent Σ w_i·x_i without wrapping for the result to be
// meaningful over the integers.
func NewWeights(w []*big.Int) (*Weights, error) {
	for i, v := range w {
		if v == nil || v.Sign() < 0 {
			return nil, fmt.Errorf("spfe: weight %d is nil or negative", i)
		}
	}
	return &Weights{w: w}, nil
}

// UniformFromSelection converts a 0/1 selection to a weight vector.
func UniformFromSelection(sel *database.Selection) *Weights {
	w := make([]*big.Int, sel.Len())
	for i := range w {
		w[i] = big.NewInt(int64(sel.Bit(i)))
	}
	return &Weights{w: w}
}

// Len returns the vector length.
func (w *Weights) Len() int { return len(w.w) }

// At returns weight i.
func (w *Weights) At(i int) *big.Int { return w.w[i] }

// Total returns Σ w_i — the weighted-average denominator, known to the
// client.
func (w *Weights) Total() *big.Int {
	t := new(big.Int)
	for _, v := range w.w {
		t.Add(t, v)
	}
	return t
}

// encryptWeights produces the concatenated fixed-width encryptions of the
// weight vector for positions [lo, hi).
func encryptWeights(pk homomorphic.PublicKey, w *Weights, lo, hi, width int) ([]byte, error) {
	if lo < 0 || hi < lo || hi > w.Len() {
		return nil, fmt.Errorf("spfe: bad range [%d,%d) over %d", lo, hi, w.Len())
	}
	space := pk.PlaintextSpace()
	out := make([]byte, 0, (hi-lo)*width)
	for i := lo; i < hi; i++ {
		v := w.w[i]
		if v.Cmp(space) >= 0 {
			return nil, fmt.Errorf("%w: weight %d has %d bits", ErrWeightRange, i, v.BitLen())
		}
		ct, err := pk.Encrypt(v)
		if err != nil {
			return nil, fmt.Errorf("spfe: encrypting weight %d: %w", i, err)
		}
		out = append(out, ct.Bytes()...)
	}
	return out, nil
}

// Source adapts a weight vector to the transport client's
// selectedsum.VectorSource, so weighted queries run over real connections:
//
//	sum, err := selectedsum.QueryVector(conn, sk, spfe.Source{PK: pk, W: w}, 100)
type Source struct {
	PK homomorphic.PublicKey
	W  *Weights
}

// Len implements selectedsum.VectorSource.
func (s Source) Len() int { return s.W.Len() }

// EncryptAt implements selectedsum.VectorSource.
func (s Source) EncryptAt(i int) (homomorphic.Ciphertext, error) {
	v := s.W.At(i)
	if v.Cmp(s.PK.PlaintextSpace()) >= 0 {
		return nil, fmt.Errorf("%w: weight %d has %d bits", ErrWeightRange, i, v.BitLen())
	}
	return s.PK.Encrypt(v)
}

// WeightedSum privately computes Σ w_i·x_i over the column: the client
// sends E(w_i), the server folds Π E(w_i)^{x_i}. chunkSize batches the
// stream (0 = one chunk).
func WeightedSum(sk homomorphic.PrivateKey, col database.Column, w *Weights, chunkSize int) (*big.Int, error) {
	if sk == nil {
		return nil, errors.New("spfe: nil private key")
	}
	if w.Len() != col.Len() {
		return nil, fmt.Errorf("spfe: %d weights for %d rows", w.Len(), col.Len())
	}
	pk := sk.PublicKey()
	n := col.Len()
	if chunkSize <= 0 || chunkSize > n {
		chunkSize = n
	}
	session, err := selectedsum.NewColumnSession(pk, col, uint64(n))
	if err != nil {
		return nil, err
	}
	width := pk.CiphertextSize()
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		body, err := encryptWeights(pk, w, lo, hi, width)
		if err != nil {
			return nil, err
		}
		chunk := &wire.IndexChunk{Offset: uint64(lo), Ciphertexts: body, Width: width}
		decoded, err := wire.DecodeIndexChunk(chunk.Encode(), width)
		if err != nil {
			return nil, err
		}
		if err := session.Absorb(decoded); err != nil {
			return nil, err
		}
	}
	ct, err := session.Finalize(nil)
	if err != nil {
		return nil, err
	}
	sum, err := sk.Decrypt(ct)
	if err != nil {
		return nil, fmt.Errorf("spfe: decrypting weighted sum: %w", err)
	}
	return sum, nil
}

// WeightedAverage privately computes (Σ w_i·x_i) / (Σ w_i) as an exact
// rational. The denominator is the client's own weight total; no extra
// protocol round is needed.
func WeightedAverage(sk homomorphic.PrivateKey, col database.Column, w *Weights, chunkSize int) (*big.Rat, error) {
	total := w.Total()
	if total.Sign() == 0 {
		return nil, errors.New("spfe: weight vector sums to zero")
	}
	sum, err := WeightedSum(sk, col, w, chunkSize)
	if err != nil {
		return nil, err
	}
	return new(big.Rat).SetFrac(sum, total), nil
}
