package spfe

import (
	"math/big"
	"net"
	"testing"

	"privstats/internal/database"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// TestWeightedQueryOverWire runs a weighted sum against the REAL server
// over a pipe: the server is oblivious to whether the vector is 0/1 or
// arbitrary weights.
func TestWeightedQueryOverWire(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	table := database.New([]uint32{7, 11, 13, 17})
	w, err := NewWeights([]*big.Int{
		big.NewInt(2), big.NewInt(0), big.NewInt(1), big.NewInt(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2*7 + 0 + 13 + 5*17)

	a, b := net.Pipe()
	clientConn := wire.NewConn(a)
	serverConn := wire.NewConn(b)
	defer clientConn.Close()
	defer serverConn.Close()
	errc := make(chan error, 1)
	go func() { errc <- selectedsum.Serve(serverConn, table) }()

	sum, err := selectedsum.QueryVector(clientConn, sk, Source{PK: pk, W: w}, 2)
	if err != nil {
		t.Fatalf("QueryVector: %v", err)
	}
	if sum.Int64() != want {
		t.Errorf("weighted sum over wire = %v, want %d", sum, want)
	}
	if err := <-errc; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

func TestQueryVectorValidation(t *testing.T) {
	sk := testKey(t)
	if _, err := selectedsum.QueryVector(nil, sk, nil, 0); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := selectedsum.QueryVector(nil, nil, Source{}, 0); err == nil {
		t.Error("nil key should fail")
	}
}

func TestSourceRejectsOversizedWeight(t *testing.T) {
	sk := testKey(t)
	pk := sk.PublicKey()
	huge := new(big.Int).Lsh(big.NewInt(1), 400)
	w, _ := NewWeights([]*big.Int{huge})
	if _, err := (Source{PK: pk, W: w}).EncryptAt(0); err == nil {
		t.Error("oversized weight should fail")
	}
}
