package spfe

import (
	"errors"
	"fmt"
	"math/big"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// Polynomial aggregation: for public coefficients a_0..a_d, the client
// privately learns Σ_{i∈I} p(x_i) where p(x) = Σ_j a_j·x^j. The identity
//
//	Σ_{i∈I} p(x_i) = a_0·m + Σ_{j≥1} a_j · (Σ_{i∈I} x_i^j)
//
// reduces it to d selected sums against the server's power columns x^j,
// all folded from ONE encrypted index vector. Higher moments — skewness,
// kurtosis — of a selection come out of this directly.

// ErrPowerOverflow is returned when a power column would exceed uint64.
var ErrPowerOverflow = errors.New("spfe: value power overflows 64 bits")

// PowerColumn is column col raised element-wise to the j'th power,
// validated against uint64 overflow at construction.
type PowerColumn struct {
	pow []uint64
}

// NewPowerColumn builds the x^j column. j must be ≥ 1; every x^j must fit
// in 64 bits (e.g. j=2 needs x < 2³², j=3 needs x < 2²¹·⁳ ≈ 2.6M).
func NewPowerColumn(col database.Column, j int) (*PowerColumn, error) {
	if j < 1 {
		return nil, fmt.Errorf("spfe: power %d must be >= 1", j)
	}
	out := make([]uint64, col.Len())
	for i := range out {
		x := col.At(i)
		p := uint64(1)
		for e := 0; e < j; e++ {
			if x != 0 && p > (1<<64-1)/x {
				return nil, fmt.Errorf("%w: row %d value %d power %d", ErrPowerOverflow, i, x, j)
			}
			p *= x
		}
		out[i] = p
	}
	return &PowerColumn{pow: out}, nil
}

// Len implements database.Column.
func (p *PowerColumn) Len() int { return len(p.pow) }

// At implements database.Column.
func (p *PowerColumn) At(i int) uint64 { return p.pow[i] }

// PolynomialSum privately computes Σ_{i∈I} p(x_i) for the public
// polynomial with coefficients coeffs[j] = a_j (degree = len(coeffs)-1).
// Coefficients may be negative; the result is exact over the integers.
// The single encrypted index vector is folded against every power column.
func PolynomialSum(sk homomorphic.PrivateKey, col database.Column, sel *database.Selection, coeffs []*big.Int, chunkSize int) (*big.Int, error) {
	if sk == nil {
		return nil, errors.New("spfe: nil private key")
	}
	if len(coeffs) == 0 {
		return nil, errors.New("spfe: empty coefficient vector")
	}
	if sel.Len() != col.Len() {
		return nil, fmt.Errorf("spfe: selection %d vs column %d", sel.Len(), col.Len())
	}
	for j, c := range coeffs {
		if c == nil {
			return nil, fmt.Errorf("spfe: coefficient %d is nil", j)
		}
	}
	pk := sk.PublicKey()
	n := col.Len()
	if chunkSize <= 0 || chunkSize > n {
		chunkSize = n
	}

	// One session per power j ≥ 1 with non-zero coefficient.
	type fold struct {
		j       int
		session *selectedsum.ServerSession
	}
	var folds []fold
	for j := 1; j < len(coeffs); j++ {
		if coeffs[j].Sign() == 0 {
			continue
		}
		pc, err := NewPowerColumn(col, j)
		if err != nil {
			return nil, err
		}
		s, err := selectedsum.NewColumnSession(pk, pc, uint64(n))
		if err != nil {
			return nil, err
		}
		folds = append(folds, fold{j: j, session: s})
	}

	width := pk.CiphertextSize()
	enc := selectedsum.Online{PK: pk}
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		body, err := selectedsum.EncryptRange(enc, sel, lo, hi, width)
		if err != nil {
			return nil, err
		}
		chunk := &wire.IndexChunk{Offset: uint64(lo), Ciphertexts: body, Width: width}
		decoded, err := wire.DecodeIndexChunk(chunk.Encode(), width)
		if err != nil {
			return nil, err
		}
		for _, f := range folds {
			if err := f.session.Absorb(decoded); err != nil {
				return nil, err
			}
		}
	}

	// total = a_0·m + Σ_j a_j·S_j with S_j decrypted per fold.
	total := new(big.Int).Mul(coeffs[0], big.NewInt(int64(sel.Count())))
	for _, f := range folds {
		ct, err := f.session.Finalize(nil)
		if err != nil {
			return nil, err
		}
		sj, err := sk.Decrypt(ct)
		if err != nil {
			return nil, fmt.Errorf("spfe: decrypting power-%d sum: %w", f.j, err)
		}
		total.Add(total, new(big.Int).Mul(coeffs[f.j], sj))
	}
	return total, nil
}
