package stock

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privstats/internal/durable"
	"privstats/internal/metrics"
	"privstats/internal/paillier"
)

// Defaults for zero InventoryConfig fields.
const (
	// DefaultMaxKeys caps dynamically admitted public keys. Stock is
	// public-key-only material, so admitting a key costs privacy nothing —
	// the cap only bounds memory and generator work.
	DefaultMaxKeys = 16
	// DefaultRefillEvery is the idle poll interval of a key's refiller; the
	// serving path additionally wakes it immediately after every batch.
	DefaultRefillEvery = 250 * time.Millisecond
)

// ErrInventoryFull is returned when admitting one more key would exceed the
// configured cap.
var ErrInventoryFull = errors.New("stock: inventory at key capacity")

// Targets are the depths a key's refiller keeps each inventory topped up to.
type Targets struct {
	Zeros, Ones, Randomizers int
}

func (t Targets) validate() error {
	if t.Zeros < 0 || t.Ones < 0 || t.Randomizers < 0 {
		return fmt.Errorf("stock: negative targets %+v", t)
	}
	if t.Zeros == 0 && t.Ones == 0 && t.Randomizers == 0 {
		return errors.New("stock: all targets zero — the daemon would serve nothing")
	}
	return nil
}

// InventoryConfig tunes an Inventory.
type InventoryConfig struct {
	// Targets are the per-key refill depths.
	Targets Targets
	// MaxKeys caps dynamically admitted keys; zero means DefaultMaxKeys.
	MaxKeys int
	// Rate, when positive, bounds generation across all refillers to this
	// many items per second — the daemon is a shared service, and unbounded
	// modular exponentiation would starve the serving goroutines.
	Rate int
	// RefillEvery is the idle poll interval of each refiller; zero means
	// DefaultRefillEvery.
	RefillEvery time.Duration
	// StateDir, when non-empty, persists each key's stock to
	// <dir>/<fp16>.bits and <fp16>.rnd (plus the public key itself to
	// <fp16>.pk) on Close and on periodic snapshots, and restores them on
	// the key's next admission (or at startup via RestoreAll). Restores are
	// fingerprint-bound: files written for a rotated key fail the
	// storepersist key check and are discarded.
	StateDir string
	// SnapshotEvery, when positive (and StateDir is set), writes a
	// crash-safe snapshot of every inventory at this interval, so a SIGKILL
	// loses at most one interval of generated stock. Zero persists only on
	// Close.
	SnapshotEvery time.Duration
	// SnapshotDelta, when positive, additionally triggers a snapshot as
	// soon as this many items have been served since the last one — a
	// hard-drained daemon persists its (lower) depths promptly instead of
	// restoring a stale, optimistic picture after a crash.
	SnapshotDelta int
	// Metrics receives the daemon's counters; nil allocates a fresh set.
	Metrics *metrics.StockMetrics
	// Logf receives operational log lines; nil means log.Printf.
	Logf func(format string, args ...any)
}

// keyStock is one public key's inventories plus its refiller plumbing.
type keyStock struct {
	fp    [32]byte
	label string // fp's first 16 hex chars, the metrics label
	pk    *paillier.PublicKey
	bits  *paillier.BitStore
	rand  *paillier.RandomizerPool
	km    *metrics.KeyStockMetrics
	wake  chan struct{} // serving path → refiller, capacity 1
}

// Inventory is the daemon's state: per-key stock kept at target depths by
// background refillers. Safe for concurrent use by many serving sessions.
type Inventory struct {
	cfg InventoryConfig
	m   *metrics.StockMetrics

	mu   sync.Mutex
	keys map[[32]byte]*keyStock

	limiter *rateLimiter

	// restoredBits/restoredRnds/restoredStale accumulate restore outcomes
	// (under mu) for the startup recovery summary.
	restoredBits  int
	restoredRnds  int
	restoredStale int

	drained  atomic.Int64  // items served since the last snapshot
	snapWake chan struct{} // serving path → snapshotter, capacity 1

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	logf   func(format string, args ...any)
}

// NewInventory validates cfg and returns an empty inventory. Keys are
// admitted on first contact (Admit); each admission starts a refiller
// goroutine that runs until Close.
func NewInventory(cfg InventoryConfig) (*Inventory, error) {
	if err := cfg.Targets.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxKeys < 0 || cfg.Rate < 0 || cfg.RefillEvery < 0 {
		return nil, errors.New("stock: negative MaxKeys/Rate/RefillEvery")
	}
	if cfg.SnapshotEvery < 0 || cfg.SnapshotDelta < 0 {
		return nil, errors.New("stock: negative SnapshotEvery/SnapshotDelta")
	}
	if cfg.SnapshotEvery > 0 && cfg.StateDir == "" {
		return nil, errors.New("stock: SnapshotEvery needs a StateDir to snapshot into")
	}
	if cfg.MaxKeys == 0 {
		cfg.MaxKeys = DefaultMaxKeys
	}
	if cfg.RefillEvery == 0 {
		cfg.RefillEvery = DefaultRefillEvery
	}
	m := cfg.Metrics
	if m == nil {
		m = &metrics.StockMetrics{}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	ctx, cancel := context.WithCancel(context.Background())
	i := &Inventory{
		cfg:      cfg,
		m:        m,
		keys:     make(map[[32]byte]*keyStock),
		limiter:  newRateLimiter(cfg.Rate),
		snapWake: make(chan struct{}, 1),
		ctx:      ctx,
		cancel:   cancel,
		logf:     logf,
	}
	if cfg.SnapshotEvery > 0 {
		i.wg.Add(1)
		go i.snapshotLoop()
	}
	return i, nil
}

// Metrics returns the inventory's metrics set.
func (i *Inventory) Metrics() *metrics.StockMetrics { return i.m }

// Admit returns the inventory for pk, creating it (and starting its
// refiller) on first contact. A new key beyond the cap returns
// ErrInventoryFull. When a state directory is configured, a fresh admission
// first tries to restore persisted stock — files bound to a different
// (rotated) key fail the fingerprint check and are discarded.
func (i *Inventory) Admit(pk *paillier.PublicKey) (*keyStock, error) {
	fp, err := paillier.KeyFingerprint(pk)
	if err != nil {
		return nil, fmt.Errorf("stock: fingerprinting key: %w", err)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if k := i.keys[fp]; k != nil {
		return k, nil
	}
	if len(i.keys) >= i.cfg.MaxKeys {
		return nil, fmt.Errorf("%w (%d keys)", ErrInventoryFull, len(i.keys))
	}
	label := hex.EncodeToString(fp[:8])
	k := &keyStock{
		fp:    fp,
		label: label,
		pk:    pk,
		// The daemon preprocesses for foreign keys and never sees a private
		// key, so it cannot take the owner constructors' CRT fast path
		// (which needs the factorization of N): its fills stay on the
		// public r^N route by design. See DESIGN.md §16.
		bits: paillier.NewBitStore(pk),
		rand: paillier.NewRandomizerPool(pk),
		km:   i.m.Key(label),
		wake: make(chan struct{}, 1),
	}
	i.restore(k)
	i.keys[fp] = k
	k.noteDepths()
	i.wg.Add(1)
	go i.refillLoop(k)
	i.logf("stock: admitted key %s (%d/%d keys)", label, len(i.keys), i.cfg.MaxKeys)
	return k, nil
}

// lookup returns the already-admitted inventory for fp, or nil.
func (i *Inventory) lookup(fp [32]byte) *keyStock {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.keys[fp]
}

// Depths reports pk's current stock levels; ok is false when the key was
// never admitted.
func (i *Inventory) Depths(pk *paillier.PublicKey) (zeros, ones, randomizers int, ok bool) {
	fp, err := paillier.KeyFingerprint(pk)
	if err != nil {
		return 0, 0, 0, false
	}
	k := i.lookup(fp)
	if k == nil {
		return 0, 0, 0, false
	}
	zeros, ones = k.bits.Depth()
	return zeros, ones, k.rand.Depth(), true
}

// noteDepths publishes the stock levels as gauges.
func (k *keyStock) noteDepths() {
	zeros, ones := k.bits.Depth()
	k.km.DepthZeros.Set(int64(zeros))
	k.km.DepthOnes.Set(int64(ones))
	k.km.DepthRandomizers.Set(int64(k.rand.Depth()))
}

// statePaths returns the key's persistence file paths: stock, randomizers,
// and the public key itself (what lets RestoreAll re-admit the key at
// startup, before any client has said hello).
func (i *Inventory) statePaths(k *keyStock) (bits, rnd, pk string) {
	return filepath.Join(i.cfg.StateDir, k.label+".bits"),
		filepath.Join(i.cfg.StateDir, k.label+".rnd"),
		filepath.Join(i.cfg.StateDir, k.label+".pk")
}

// restore loads persisted stock for a freshly admitted key, best effort: a
// missing file is normal, a corrupt or key-mismatched file is logged and
// discarded (the refiller regenerates). Outcomes accumulate in the
// inventory's restored* counters (callers hold mu) for the recovery summary.
func (i *Inventory) restore(k *keyStock) {
	if i.cfg.StateDir == "" {
		return
	}
	bitsPath, rndPath, _ := i.statePaths(k)
	if st, err := paillier.LoadBitStore(bitsPath, k.pk); err == nil {
		zeros := st.Take(0, maxRestore)
		ones := st.Take(1, maxRestore)
		_ = k.bits.AddStock(0, zeros)
		_ = k.bits.AddStock(1, ones)
		i.restoredBits += len(zeros) + len(ones)
		i.logf("stock: restored %d zeros, %d ones for key %s", len(zeros), len(ones), k.label)
	} else if !errors.Is(err, os.ErrNotExist) {
		i.restoredStale++
		i.logf("stock: discarding bit store %s: %v", bitsPath, err)
	}
	if pool, err := paillier.LoadRandomizerPool(rndPath, k.pk); err == nil {
		rns := pool.Take(maxRestore)
		_ = k.rand.AddStock(rns)
		i.restoredRnds += len(rns)
		i.logf("stock: restored %d randomizers for key %s", len(rns), k.label)
	} else if !errors.Is(err, os.ErrNotExist) {
		i.restoredStale++
		i.logf("stock: discarding randomizer pool %s: %v", rndPath, err)
	}
}

// RestoreSummary reports what RestoreAll brought back at startup.
type RestoreSummary struct {
	// Keys is the number of keys re-admitted from persisted public keys.
	Keys int
	// Bits and Randomizers are the stock items restored across those keys.
	Bits, Randomizers int
	// Stale is the number of files discarded: corrupt, key-mismatched, or
	// unparsable.
	Stale int
}

// String renders the one-line structured recovery summary the daemon logs
// at startup.
func (s RestoreSummary) String() string {
	return fmt.Sprintf("keys_restored=%d bits_loaded=%d randomizers_loaded=%d stale_discarded=%d",
		s.Keys, s.Bits, s.Randomizers, s.Stale)
}

// RestoreAll scans the state directory for persisted public keys and
// re-admits each, restoring its stock — so a restarted daemon serves from
// its snapshots immediately instead of waiting for every client to say
// hello again. Best effort per file; only an unreadable state directory is
// an error.
func (i *Inventory) RestoreAll() (RestoreSummary, error) {
	var s RestoreSummary
	if i.cfg.StateDir == "" {
		return s, nil
	}
	entries, err := os.ReadDir(i.cfg.StateDir)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return s, fmt.Errorf("stock: reading state dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".pk") {
			continue
		}
		path := filepath.Join(i.cfg.StateDir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			s.Stale++
			i.logf("stock: reading %s: %v", path, err)
			continue
		}
		pk := new(paillier.PublicKey)
		if err := pk.UnmarshalBinary(data); err != nil {
			s.Stale++
			i.logf("stock: discarding %s: %v", path, err)
			continue
		}
		if _, err := i.Admit(pk); err != nil {
			s.Stale++
			i.logf("stock: restoring key from %s: %v", path, err)
			continue
		}
		s.Keys++
	}
	i.mu.Lock()
	s.Bits, s.Randomizers = i.restoredBits, i.restoredRnds
	s.Stale += i.restoredStale
	i.mu.Unlock()
	return s, nil
}

// maxRestore bounds one restore (matches the storepersist header cap).
const maxRestore = 1 << 28

// SaveAll persists every key's current stock to the state directory.
func (i *Inventory) SaveAll() error {
	if i.cfg.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(i.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("stock: creating state dir: %w", err)
	}
	i.mu.Lock()
	keys := make([]*keyStock, 0, len(i.keys))
	for _, k := range i.keys {
		keys = append(keys, k)
	}
	i.mu.Unlock()
	var first error
	for _, k := range keys {
		bitsPath, rndPath, pkPath := i.statePaths(k)
		// The public key goes first: RestoreAll discovers state via .pk
		// files, so a crash mid-pass must never leave stock files behind an
		// undiscoverable key.
		if err := i.savePK(k, pkPath); err != nil && first == nil {
			first = err
		}
		if err := k.bits.SaveFile(bitsPath); err != nil && first == nil {
			first = err
		}
		if err := k.rand.SaveFile(rndPath); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// savePK persists the key's public half so RestoreAll can re-admit it.
func (i *Inventory) savePK(k *keyStock, path string) error {
	raw, err := k.pk.MarshalBinary()
	if err != nil {
		return fmt.Errorf("stock: encoding public key %s: %w", k.label, err)
	}
	return durable.WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	})
}

// snapshotLoop periodically persists every inventory (and early, when the
// drain delta trips), so a SIGKILL loses at most one interval of stock.
func (i *Inventory) snapshotLoop() {
	defer i.wg.Done()
	timer := time.NewTimer(i.cfg.SnapshotEvery)
	defer timer.Stop()
	for {
		select {
		case <-i.ctx.Done():
			return
		case <-timer.C:
		case <-i.snapWake:
		}
		i.snapshot()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(i.cfg.SnapshotEvery)
	}
}

// snapshot runs one crash-safe SaveAll pass, resetting the drain counter.
func (i *Inventory) snapshot() {
	i.drained.Store(0)
	if err := i.SaveAll(); err != nil {
		i.m.SnapshotErrors.Inc()
		i.logf("stock: snapshot: %v", err)
		return
	}
	i.m.Snapshots.Inc()
}

// noteDrained accumulates served items toward the snapshot drain delta and
// wakes the snapshotter when it trips.
func (i *Inventory) noteDrained(n int) {
	if i.cfg.SnapshotDelta <= 0 || i.cfg.SnapshotEvery <= 0 || n <= 0 {
		return
	}
	if i.drained.Add(int64(n)) >= int64(i.cfg.SnapshotDelta) {
		select {
		case i.snapWake <- struct{}{}:
		default:
		}
	}
}

// Close stops every refiller (cancelling in-flight fills at their next chunk
// boundary), waits for them, and persists the surviving stock when a state
// directory is configured.
func (i *Inventory) Close() error {
	i.cancel()
	i.wg.Wait()
	return i.SaveAll()
}

// refillLoop keeps one key's inventories at their targets: it tops up when
// woken by the serving path and on a slow poll, until Close.
func (i *Inventory) refillLoop(k *keyStock) {
	defer i.wg.Done()
	timer := time.NewTimer(0) // first pass immediately
	defer timer.Stop()
	for {
		select {
		case <-i.ctx.Done():
			return
		case <-k.wake:
		case <-timer.C:
		}
		i.topUp(k)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(i.cfg.RefillEvery)
	}
}

// topUp runs one refill pass: generate whatever each inventory lacks, rate
// limited, publishing chunks as they land so concurrent serves see them.
func (i *Inventory) topUp(k *keyStock) {
	zeros, ones := k.bits.Depth()
	needZ, needO := i.cfg.Targets.Zeros-zeros, i.cfg.Targets.Ones-ones
	needR := i.cfg.Targets.Randomizers - k.rand.Depth()
	if needZ <= 0 && needO <= 0 && needR <= 0 {
		return
	}
	start := time.Now()
	defer func() {
		k.km.FillNanos.ObserveDuration(time.Since(start))
		k.noteDepths()
	}()
	// Generate in rate-limiter-sized slices so a huge deficit cannot pin the
	// limiter budget on one kind, and shutdown lands promptly.
	fill := func(need int, gen func(n int) error, generated *metrics.Counter) {
		for need > 0 && i.ctx.Err() == nil {
			n := need
			if n > 64 {
				n = 64
			}
			if err := i.limiter.wait(i.ctx, n); err != nil {
				return
			}
			if err := gen(n); err != nil {
				if i.ctx.Err() == nil {
					k.km.RefillErrors.Inc()
					i.logf("stock: refill for key %s: %v", k.label, err)
				}
				return
			}
			generated.Add(int64(n))
			k.noteDepths()
			need -= n
		}
	}
	fill(needZ, func(n int) error { return k.bits.FillContext(i.ctx, n, 0) }, &k.km.GeneratedBits)
	fill(needO, func(n int) error { return k.bits.FillContext(i.ctx, 0, n) }, &k.km.GeneratedBits)
	fill(needR, func(n int) error { return k.rand.FillContext(i.ctx, n) }, &k.km.GeneratedRandomizers)
}

// take serves one request from the key's stock: up to req.Count items of the
// kind, never blocking on generation (an empty batch tells the client to
// fall back online), and wakes the refiller.
func (i *Inventory) take(k *keyStock, req *Request) *Batch {
	width := k.pk.CiphertextSize()
	batch := &Batch{Kind: req.Kind, Width: width}
	switch req.Kind {
	case KindZeroBits, KindOneBits:
		cts := k.bits.Take(uint(req.Kind), int(req.Count))
		items := make([]byte, 0, len(cts)*width)
		for _, ct := range cts {
			items = append(items, ct.Bytes()...)
		}
		batch.Items = items
		k.km.ServedBits.Add(int64(len(cts)))
		i.noteDrained(len(cts))
	case KindRandomizers:
		rns := k.rand.Take(int(req.Count))
		items := make([]byte, len(rns)*width)
		for j, rn := range rns {
			rn.FillBytes(items[j*width : (j+1)*width])
		}
		batch.Items = items
		k.km.ServedRandomizers.Add(int64(len(rns)))
		i.noteDrained(len(rns))
	}
	k.km.ServedBatches.Inc()
	k.noteDepths()
	select {
	case k.wake <- struct{}{}:
	default:
	}
	return batch
}

// rateLimiter paces generation to a global items-per-second budget with a
// simple virtual-clock scheme: each item reserves one interval on a shared
// timeline, and a caller sleeps until its reservation starts.
type rateLimiter struct {
	mu       sync.Mutex
	interval time.Duration // per item; 0 = unlimited
	next     time.Time
}

func newRateLimiter(perSecond int) *rateLimiter {
	l := &rateLimiter{}
	if perSecond > 0 {
		l.interval = time.Second / time.Duration(perSecond)
	}
	return l
}

// wait blocks until n items may be generated (or ctx is cancelled).
func (l *rateLimiter) wait(ctx context.Context, n int) error {
	if l.interval == 0 {
		return ctx.Err()
	}
	l.mu.Lock()
	now := time.Now()
	if l.next.Before(now) {
		l.next = now
	}
	startAt := l.next
	l.next = l.next.Add(time.Duration(n) * l.interval)
	l.mu.Unlock()
	if d := time.Until(startAt); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return ctx.Err()
}
