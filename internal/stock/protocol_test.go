package stock

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"

	"privstats/internal/paillier"
)

func TestHelloRoundTrip(t *testing.T) {
	key := []byte("not-a-real-key-but-bytes-suffice")
	h := Hello{
		Version:     Version,
		Scheme:      paillier.SchemeID,
		PublicKey:   key,
		Fingerprint: sha256.Sum256(key),
		Flags:       0x80000001,
	}
	back, err := DecodeHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != h.Version || back.Scheme != h.Scheme ||
		!bytes.Equal(back.PublicKey, h.PublicKey) ||
		back.Fingerprint != h.Fingerprint || back.Flags != h.Flags {
		t.Fatalf("round trip: %+v != %+v", back, h)
	}
	if !back.CheckFingerprint() {
		t.Error("CheckFingerprint rejects a matching fingerprint")
	}
	back.PublicKey[0] ^= 1
	if back.CheckFingerprint() {
		t.Error("CheckFingerprint accepts tampered key bytes")
	}
}

func TestDecodeHelloRejectsMalformed(t *testing.T) {
	good := (&Hello{Version: 1, Scheme: "paillier", PublicKey: []byte("key"), Flags: 0}).Encode()
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:6],
		"truncated key":    good[:len(good)-37],
		"missing trailer":  good[:len(good)-1],
		"trailing garbage": append(append([]byte{}, good...), 0xFF),
	}
	// Scheme length far past the buffer.
	huge := append([]byte{}, good...)
	huge[4], huge[5], huge[6], huge[7] = 0xFF, 0xFF, 0xFF, 0xFF
	cases["absurd scheme length"] = huge

	for name, b := range cases {
		if _, err := DecodeHello(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	a := HelloAck{Version: Version, Fingerprint: sha256.Sum256([]byte("k"))}
	back, err := DecodeHelloAck(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != a.Version || back.Fingerprint != a.Fingerprint {
		t.Fatalf("round trip: %+v != %+v", back, a)
	}
	for _, b := range [][]byte{nil, a.Encode()[:35], append(a.Encode(), 0)} {
		if _, err := DecodeHelloAck(b); err == nil {
			t.Errorf("accepted %d-byte ack", len(b))
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindZeroBits, KindOneBits, KindRandomizers} {
		r := Request{Kind: k, Count: 17}
		back, err := DecodeRequest(r.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if back.Kind != k || back.Count != 17 {
			t.Fatalf("round trip: %+v", back)
		}
	}
	bad := map[string][]byte{
		"empty":        {},
		"short":        {0, 0, 0, 1},
		"long":         {0, 0, 0, 0, 1, 0},
		"unknown kind": (&Request{Kind: 9, Count: 1}).Encode(),
		"zero count":   (&Request{Kind: 0, Count: 0}).Encode(),
		"over cap":     (&Request{Kind: 0, Count: MaxBatchItems + 1}).Encode(),
	}
	for name, b := range bad {
		if _, err := DecodeRequest(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := &Batch{Kind: KindOneBits, Width: 4, Items: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	back, err := DecodeBatch(b.Encode(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != b.Kind || back.Count() != 2 ||
		!bytes.Equal(back.At(0), []byte{1, 2, 3, 4}) || !bytes.Equal(back.At(1), []byte{5, 6, 7, 8}) {
		t.Fatalf("round trip: %+v", back)
	}
	// Empty batches (daemon out of stock) round trip too.
	empty := &Batch{Kind: KindZeroBits, Width: 4}
	back, err = DecodeBatch(empty.Encode(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != 0 {
		t.Fatalf("empty batch has %d items", back.Count())
	}
}

func TestDecodeBatchRejectsMalformed(t *testing.T) {
	good := (&Batch{Kind: KindZeroBits, Width: 4, Items: make([]byte, 8)}).Encode()
	if _, err := DecodeBatch(good[:3], 4); err == nil {
		t.Error("short batch accepted")
	}
	if _, err := DecodeBatch(good, 8); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := DecodeBatch(good[:len(good)-1], 4); err == nil {
		t.Error("ragged body accepted")
	}
	badKind := append([]byte{}, good...)
	badKind[0] = 7
	if _, err := DecodeBatch(badKind, 4); err == nil {
		t.Error("unknown kind accepted")
	}
	over := (&Batch{Kind: KindZeroBits, Width: 1, Items: make([]byte, MaxBatchItems+1)}).Encode()
	if _, err := DecodeBatch(over, 1); err == nil {
		t.Error("over-cap batch accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindZeroBits: "zero-bits", KindOneBits: "one-bits", KindRandomizers: "randomizers",
	} {
		if k.String() != want || !k.Valid() {
			t.Errorf("kind %d: %q valid=%v", k, k.String(), k.Valid())
		}
	}
	if Kind(3).Valid() || !strings.Contains(Kind(3).String(), "unknown") {
		t.Error("kind 3 must be invalid")
	}
}
