package stock

import (
	"errors"
	"fmt"
	"io"
	"time"

	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// Handler answers stock sessions on the server runtime (internal/server):
// cmd/stockd mounts it via server.NewHandler and inherits admission control,
// deadlines, panic isolation, graceful shutdown, and /stats for free.
type Handler struct {
	Inv *Inventory
}

var _ interface {
	ServeSession(conn *wire.Conn, timings *selectedsum.PhaseTimings) error
} = (*Handler)(nil)

// ServeSession runs one stock session: hello, ack, then request/batch pairs
// until the client sends MsgDone or hangs up.
func (h *Handler) ServeSession(conn *wire.Conn, timings *selectedsum.PhaseTimings) error {
	if timings == nil {
		timings = &selectedsum.PhaseTimings{}
	}
	m := h.Inv.Metrics()
	m.Sessions.Inc()

	helloStart := time.Now()
	k, err := h.hello(conn)
	timings.Hello = time.Since(helloStart)
	if err != nil {
		m.HelloRejects.Inc()
		return err
	}

	for {
		f, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // client closed after its last batch
			}
			return fmt.Errorf("stock: reading request: %w", err)
		}
		switch f.Type {
		case wire.MsgDone:
			return nil
		case wire.MsgStockRequest:
			req, err := DecodeRequest(f.Payload)
			if err != nil {
				_ = conn.SendErrorCode(wire.CodeProtocol, err.Error())
				return err
			}
			serveStart := time.Now()
			batch := h.Inv.take(k, req)
			timings.Absorb += time.Since(serveStart)
			if err := conn.Send(wire.MsgStockBatch, batch.Encode()); err != nil {
				return fmt.Errorf("stock: sending batch: %w", err)
			}
		case wire.MsgError:
			return fmt.Errorf("stock: client reported: %w", wire.DecodeError(f.Payload))
		default:
			err := fmt.Errorf("stock: unexpected message %#x", byte(f.Type))
			_ = conn.SendErrorCode(wire.CodeProtocol, err.Error())
			return err
		}
	}
}

// hello validates the opening message and admits the session's key.
func (h *Handler) hello(conn *wire.Conn) (*keyStock, error) {
	f, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("stock: reading hello: %w", err)
	}
	if f.Type != wire.MsgStockHello {
		err := fmt.Errorf("stock: expected stock hello, got %#x", byte(f.Type))
		_ = conn.SendErrorCode(wire.CodeProtocol, err.Error())
		return nil, err
	}
	hello, err := DecodeHello(f.Payload)
	if err != nil {
		_ = conn.SendErrorCode(wire.CodeProtocol, err.Error())
		return nil, err
	}
	if hello.Version != Version {
		err := fmt.Errorf("stock: unsupported version %d", hello.Version)
		_ = conn.SendErrorCode(wire.CodeProtocol, err.Error())
		return nil, err
	}
	if hello.Scheme != paillier.SchemeID {
		err := fmt.Errorf("stock: unsupported scheme %q", hello.Scheme)
		_ = conn.SendErrorCode(wire.CodeProtocol, err.Error())
		return nil, err
	}
	if !hello.CheckFingerprint() {
		// A stale fingerprint means the client rotated its key (or the
		// hello was corrupted en route): refuse outright rather than mint
		// stock the client would reject.
		err := errors.New("stock: hello fingerprint does not match key bytes")
		_ = conn.SendErrorCode(wire.CodeProtocol, err.Error())
		return nil, err
	}
	var pk paillier.PublicKey
	if err := pk.UnmarshalBinary(hello.PublicKey); err != nil {
		err = fmt.Errorf("stock: parsing public key: %w", err)
		_ = conn.SendErrorCode(wire.CodeProtocol, err.Error())
		return nil, err
	}
	k, err := h.Inv.Admit(&pk)
	if err != nil {
		code := wire.CodeProtocol
		if errors.Is(err, ErrInventoryFull) {
			code = wire.CodeBusy // transient: keys may be evicted/restarted
		}
		_ = conn.SendErrorCode(code, err.Error())
		return nil, err
	}
	if hello.Flags&wire.HelloFlagFrameCRC != 0 {
		conn.EnableCRC()
	}
	ack := HelloAck{Version: Version, Fingerprint: k.fp}
	if err := conn.Send(wire.MsgStockHello, ack.Encode()); err != nil {
		return nil, fmt.Errorf("stock: sending hello ack: %w", err)
	}
	return k, nil
}
