package stock

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/database"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
	"privstats/internal/server"
	"privstats/internal/wire"
)

// startStockd runs a stock daemon on the server runtime over live TCP and
// returns its address plus the inventory (for depth assertions and
// mid-test shutdown).
func startStockd(t *testing.T, cfg InventoryConfig) (string, *Inventory, *server.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = discardLogf
	}
	inv, err := NewInventory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewHandler(&Handler{Inv: inv}, server.Config{Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	t.Cleanup(func() {
		_ = srv.Close()
		<-errc
		_ = inv.Close()
	})
	return ln.Addr().String(), inv, srv
}

func TestRemoteSourcePrimeAndDraw(t *testing.T) {
	sk, _ := testKeys(t)
	addr, _, _ := startStockd(t, InventoryConfig{
		Targets: Targets{Zeros: 64, Ones: 16, Randomizers: 8},
	})

	src, err := NewRemoteSource(RemoteSourceConfig{
		Addr:              addr,
		Key:               sk.Public(),
		TargetZeros:       32,
		TargetOnes:        8,
		TargetRandomizers: 4,
		Batch:             16,
		UseCRC:            true,
		Logf:              discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := src.Prime(ctx); err != nil {
		t.Fatal(err)
	}
	z, o, r := src.Depth()
	if z < 32 || o < 8 || r < 4 {
		t.Fatalf("primed depths = (%d,%d,%d)", z, o, r)
	}

	// Every prefetched item is genuine daemon-minted stock under our key.
	skk := paillier.SchemeKey{SK: sk}
	for i := 0; i < 32; i++ {
		ct, err := src.DrawBit(0)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := skk.Decrypt(ct); err != nil || v.Sign() != 0 {
			t.Fatalf("prefetched E(0) decrypts to %v (err %v)", v, err)
		}
	}
	for i := 0; i < 8; i++ {
		ct, err := src.DrawBit(1)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := skk.Decrypt(ct); err != nil || v.Int64() != 1 {
			t.Fatalf("prefetched E(1) decrypts to %v (err %v)", v, err)
		}
	}
	if _, err := src.Randomizer(); err != nil {
		t.Fatal(err)
	}
	if n := src.OnlineFallbacks(); n != 0 {
		t.Fatalf("%d online fallbacks while stocked", n)
	}
	if _, err := src.DrawBit(2); err == nil {
		t.Error("DrawBit(2) accepted")
	}
}

func TestRemoteSourceFallsBackWhenDaemonDown(t *testing.T) {
	sk, _ := testKeys(t)
	// A port nothing listens on: grab and release one.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	src, err := NewRemoteSource(RemoteSourceConfig{
		Addr:        addr,
		Key:         sk.Public(),
		TargetZeros: 8,
		TargetOnes:  8,
		DialTimeout: 200 * time.Millisecond,
		Cooldown:    time.Minute, // one dial attempt, then the circuit opens
		Logf:        discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	if err := src.Prime(context.Background()); !errors.Is(err, ErrDaemonDown) {
		t.Fatalf("Prime against dead daemon: err = %v, want ErrDaemonDown", err)
	}
	// Draws still work — online, counted, never wrong.
	skk := paillier.SchemeKey{SK: sk}
	for i := 0; i < 4; i++ {
		ct, err := src.DrawBit(1)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := skk.Decrypt(ct); err != nil || v.Int64() != 1 {
			t.Fatalf("fallback E(1) decrypts to %v (err %v)", v, err)
		}
	}
	if n := src.OnlineFallbacks(); n != 4 {
		t.Fatalf("OnlineFallbacks = %d, want 4", n)
	}
}

func TestRemoteSourceValidates(t *testing.T) {
	sk, _ := testKeys(t)
	bad := []RemoteSourceConfig{
		{Key: sk.Public(), TargetZeros: 1},                            // no addr
		{Addr: "x", TargetZeros: 1},                                   // no key
		{Addr: "x", Key: sk.Public()},                                 // all-zero targets
		{Addr: "x", Key: sk.Public(), TargetZeros: -1},                // negative target
		{Addr: "x", Key: sk.Public(), TargetZeros: 1, LowWater: -1},   // negative low water
		{Addr: "x", Key: sk.Public(), TargetZeros: 1, Batch: -3},      // negative batch
		{Addr: "x", Key: sk.Public(), TargetZeros: 1, Batch: 1 << 20}, // batch over cap
	}
	for i, cfg := range bad {
		if src, err := NewRemoteSource(cfg); err == nil {
			src.Close()
			t.Errorf("config %d accepted", i)
		}
	}
}

// rawStockConn dials the daemon and returns a framed conn for hand-rolled
// protocol tests.
func rawStockConn(t *testing.T, addr string) *wire.Conn {
	t.Helper()
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	return wire.NewConn(raw)
}

func TestHandlerRejectsBadHellos(t *testing.T) {
	sk, other := testKeys(t)
	addr, inv, _ := startStockd(t, InventoryConfig{
		Targets: Targets{Zeros: 4},
		MaxKeys: 1,
	})

	keyBytes, err := sk.Public().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := paillier.KeyFingerprint(sk.Public())
	if err != nil {
		t.Fatal(err)
	}

	expectReject := func(t *testing.T, typ wire.MsgType, payload []byte, wantSub string) {
		t.Helper()
		conn := rawStockConn(t, addr)
		if err := conn.Send(typ, payload); err != nil {
			t.Fatal(err)
		}
		f, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != wire.MsgError {
			t.Fatalf("got frame %#x, want MsgError", byte(f.Type))
		}
		if msg := wire.DecodeError(f.Payload).Error(); !strings.Contains(msg, wantSub) {
			t.Fatalf("error %q does not mention %q", msg, wantSub)
		}
	}

	t.Run("wrong message type", func(t *testing.T) {
		expectReject(t, wire.MsgStockRequest, (&Request{Kind: 0, Count: 1}).Encode(), "hello")
	})
	t.Run("garbage hello", func(t *testing.T) {
		expectReject(t, wire.MsgStockHello, []byte{1, 2, 3}, "")
	})
	t.Run("wrong version", func(t *testing.T) {
		h := Hello{Version: 99, Scheme: paillier.SchemeID, PublicKey: keyBytes, Fingerprint: fp}
		expectReject(t, wire.MsgStockHello, h.Encode(), "version")
	})
	t.Run("wrong scheme", func(t *testing.T) {
		h := Hello{Version: Version, Scheme: "rot13", PublicKey: keyBytes, Fingerprint: fp}
		expectReject(t, wire.MsgStockHello, h.Encode(), "scheme")
	})
	t.Run("stale fingerprint", func(t *testing.T) {
		// The fingerprint of a rotated (different) key with the old key's
		// bytes: the daemon must refuse rather than mint unusable stock.
		staleFP, err := paillier.KeyFingerprint(other.Public())
		if err != nil {
			t.Fatal(err)
		}
		h := Hello{Version: Version, Scheme: paillier.SchemeID, PublicKey: keyBytes, Fingerprint: staleFP}
		expectReject(t, wire.MsgStockHello, h.Encode(), "fingerprint")
	})
	t.Run("inventory full", func(t *testing.T) {
		if _, err := inv.Admit(sk.Public()); err != nil { // takes the only slot
			t.Fatal(err)
		}
		otherBytes, err := other.Public().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		otherFP, err := paillier.KeyFingerprint(other.Public())
		if err != nil {
			t.Fatal(err)
		}
		h := Hello{Version: Version, Scheme: paillier.SchemeID, PublicKey: otherBytes, Fingerprint: otherFP}
		expectReject(t, wire.MsgStockHello, h.Encode(), "busy")
	})

	if rejects := inv.Metrics().HelloRejects.Value(); rejects < 6 {
		t.Errorf("HelloRejects = %d, want >= 6", rejects)
	}
}

// TestEndToEndStockedQuery is the ISSUE's e2e acceptance check: a live
// cluster (sumserver-equivalent backend) plus a live stockd; the client
// primes a RemoteSource, runs the real protocol, and gets the exact sum
// with zero online fallbacks.
func TestEndToEndStockedQuery(t *testing.T) {
	sk, _ := testKeys(t)
	const n = 48

	table, err := database.Generate(n, database.DistUniform, 11)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := database.GenerateSelection(n, n/3, database.PatternRandom, 12)
	if err != nil {
		t.Fatal(err)
	}
	want, err := table.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}

	// Backend serving the table.
	backend, err := server.New(table, server.Config{Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	berrc := make(chan error, 1)
	go func() { berrc <- backend.Serve(bln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = backend.Shutdown(ctx)
		<-berrc
	})

	// Stock daemon with enough inventory for the whole index vector.
	stockAddr, _, stockSrv := startStockd(t, InventoryConfig{
		Targets: Targets{Zeros: n, Ones: n},
	})

	ones := sel.Count()
	src, err := NewRemoteSource(RemoteSourceConfig{
		Addr:        stockAddr,
		Key:         sk.Public(),
		TargetZeros: n - ones,
		TargetOnes:  ones,
		Logf:        discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := src.Prime(ctx); err != nil {
		t.Fatal(err)
	}

	runQuery := func(t *testing.T) {
		t.Helper()
		client := cluster.NewClient(cluster.ClientConfig{Retries: 1})
		_, err := client.Do(context.Background(), []string{bln.Addr().String()}, func(s *cluster.Session) error {
			sum, err := selectedsum.Query(s.Conn, paillier.SchemeKey{SK: sk}, sel, 0, src)
			if err != nil {
				return err
			}
			if sum.Cmp(want) != 0 {
				t.Errorf("sum = %v, want %v", sum, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	runQuery(t)
	if n := src.OnlineFallbacks(); n != 0 {
		t.Fatalf("stocked query fell back online %d times", n)
	}

	// Kill stockd mid-run (force-close, like a crash), then drain whatever
	// the background refill already prefetched locally: the next query must
	// still produce the exact sum, with fallbacks counted, never a wrong
	// result.
	if err := stockSrv.Close(); err != nil {
		t.Fatal(err)
	}
	z, o, _ := src.Depth()
	for i := 0; i < z; i++ {
		if _, err := src.DrawBit(0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < o; i++ {
		if _, err := src.DrawBit(1); err != nil {
			t.Fatal(err)
		}
	}
	runQuery(t)
	if n := src.OnlineFallbacks(); n == 0 {
		t.Fatal("daemon down and stock drained, yet no fallbacks counted")
	}
}
