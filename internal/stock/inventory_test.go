package stock

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"privstats/internal/paillier"
)

func discardLogf(string, ...any) {}

// Key generation dominates these tests; share one 128-bit key (and one
// distinct second key) across the package.
var (
	keyOnce  sync.Once
	sharedSK *paillier.PrivateKey
	otherSK  *paillier.PrivateKey
	keyErr   error
)

func testKeys(t testing.TB) (*paillier.PrivateKey, *paillier.PrivateKey) {
	t.Helper()
	keyOnce.Do(func() {
		sharedSK, keyErr = paillier.KeyGen(rand.Reader, 128)
		if keyErr != nil {
			return
		}
		otherSK, keyErr = paillier.KeyGen(rand.Reader, 128)
	})
	if keyErr != nil {
		t.Fatal(keyErr)
	}
	return sharedSK, otherSK
}

// waitForDepths polls until pk's inventories reach (zeros, ones, rands).
func waitForDepths(t *testing.T, inv *Inventory, pk *paillier.PublicKey, zeros, ones, rands int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		z, o, r, ok := inv.Depths(pk)
		if ok && z >= zeros && o >= ones && r >= rands {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	z, o, r, _ := inv.Depths(pk)
	t.Fatalf("inventory stuck at (%d,%d,%d), want (%d,%d,%d)", z, o, r, zeros, ones, rands)
}

func TestNewInventoryValidates(t *testing.T) {
	bad := []InventoryConfig{
		{},                            // all-zero targets
		{Targets: Targets{Zeros: -1}}, // negative target
		{Targets: Targets{Zeros: 1}, MaxKeys: -1},               // negative cap
		{Targets: Targets{Zeros: 1}, Rate: -5},                  // negative rate
		{Targets: Targets{Zeros: 1}, RefillEvery: -time.Second}, // negative poll
	}
	for i, cfg := range bad {
		if _, err := NewInventory(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestInventoryRefillsToTargetsAndServes(t *testing.T) {
	sk, _ := testKeys(t)
	inv, err := NewInventory(InventoryConfig{
		Targets: Targets{Zeros: 8, Ones: 4, Randomizers: 4},
		Logf:    discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()

	k, err := inv.Admit(sk.Public())
	if err != nil {
		t.Fatal(err)
	}
	// Admitting the same key again returns the same inventory, not a slot.
	again, err := inv.Admit(sk.Public())
	if err != nil || again != k {
		t.Fatalf("re-admit: %v, same=%v", err, again == k)
	}
	waitForDepths(t, inv, sk.Public(), 8, 4, 4)

	// Serving drains stock and every item decrypts to the right plaintext.
	batch := inv.take(k, &Request{Kind: KindOneBits, Count: 3})
	if batch.Count() != 3 || batch.Kind != KindOneBits {
		t.Fatalf("take returned %d of kind %v", batch.Count(), batch.Kind)
	}
	for i := 0; i < batch.Count(); i++ {
		ct, err := sk.Public().ParseCiphertext(batch.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if v, err := sk.Decrypt(ct); err != nil || v.Int64() != 1 {
			t.Fatalf("served bit decrypts to %v (err %v)", v, err)
		}
	}

	// An oversized request returns what's on hand, never blocks or generates.
	batch = inv.take(k, &Request{Kind: KindRandomizers, Count: MaxBatchItems})
	if batch.Count() > 4 {
		t.Fatalf("take returned %d randomizers, stocked only 4", batch.Count())
	}

	// The refiller notices the drain and tops back up.
	waitForDepths(t, inv, sk.Public(), 8, 4, 4)

	m := inv.Metrics().Snapshot()
	if len(m.Keys) != 1 {
		t.Fatalf("metrics rows = %d", len(m.Keys))
	}
	row := m.Keys[0]
	if row.GeneratedBits < 12 || row.GeneratedRandomizers < 4 {
		t.Errorf("generated counters = %+v", row)
	}
	if row.ServedBits != 3 || row.ServedBatches != 2 {
		t.Errorf("served counters = %+v", row)
	}
	if row.DepthZeros != 8 || row.DepthOnes != 4 {
		t.Errorf("depth gauges = %+v", row)
	}
}

func TestInventoryMaxKeys(t *testing.T) {
	sk, other := testKeys(t)
	inv, err := NewInventory(InventoryConfig{
		Targets: Targets{Zeros: 1},
		MaxKeys: 1,
		Logf:    discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()
	if _, err := inv.Admit(sk.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Admit(other.Public()); !errors.Is(err, ErrInventoryFull) {
		t.Fatalf("second key: err = %v, want ErrInventoryFull", err)
	}
	// The admitted key is unaffected.
	if _, err := inv.Admit(sk.Public()); err != nil {
		t.Fatalf("re-admit after full: %v", err)
	}
}

func TestInventoryPersistsAndRestores(t *testing.T) {
	sk, _ := testKeys(t)
	dir := t.TempDir()
	cfg := InventoryConfig{
		Targets:  Targets{Zeros: 6, Ones: 3, Randomizers: 2},
		StateDir: dir,
		Logf:     discardLogf,
	}

	inv, err := NewInventory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Admit(sk.Public()); err != nil {
		t.Fatal(err)
	}
	waitForDepths(t, inv, sk.Public(), 6, 3, 2)
	if err := inv.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh daemon restores the persisted stock synchronously on admission.
	inv2, err := NewInventory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer inv2.Close()
	k, err := inv2.Admit(sk.Public())
	if err != nil {
		t.Fatal(err)
	}
	if z, o := k.bits.Depth(); z != 6 || o != 3 {
		t.Errorf("restored bits = (%d,%d), want (6,3)", z, o)
	}
	if r := k.rand.Depth(); r != 2 {
		t.Errorf("restored randomizers = %d, want 2", r)
	}
}

func TestInventoryDiscardsRotatedKeyState(t *testing.T) {
	sk, other := testKeys(t)
	dir := t.TempDir()
	cfg := InventoryConfig{
		Targets:  Targets{Zeros: 4, Ones: 2},
		StateDir: dir,
		Logf:     discardLogf,
	}

	// Fill and persist under the old key.
	inv, err := NewInventory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Admit(sk.Public()); err != nil {
		t.Fatal(err)
	}
	waitForDepths(t, inv, sk.Public(), 4, 2, 0)
	if err := inv.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate an operator replaying the old state against a rotated key:
	// copy the old key's files onto the new key's label paths.
	oldFP, _ := paillier.KeyFingerprint(sk.Public())
	newFP, _ := paillier.KeyFingerprint(other.Public())
	oldLabel := hex.EncodeToString(oldFP[:8])
	newLabel := hex.EncodeToString(newFP[:8])
	for _, ext := range []string{".bits", ".rnd"} {
		data, err := os.ReadFile(filepath.Join(dir, oldLabel+ext))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, newLabel+ext), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	inv2, err := NewInventory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer inv2.Close()
	k, err := inv2.Admit(other.Public())
	if err != nil {
		t.Fatal(err)
	}
	// The stale files fail the fingerprint check and are discarded; the
	// refiller regenerates, and everything served decrypts under the NEW key.
	waitForDepths(t, inv2, other.Public(), 4, 2, 0)
	batch := inv2.take(k, &Request{Kind: KindZeroBits, Count: 4})
	if batch.Count() == 0 {
		t.Fatal("no stock after refill")
	}
	for i := 0; i < batch.Count(); i++ {
		ct, err := other.Public().ParseCiphertext(batch.At(i))
		if err != nil {
			t.Fatalf("served ciphertext does not parse under the new key: %v", err)
		}
		if v, err := other.Decrypt(ct); err != nil || v.Sign() != 0 {
			t.Fatalf("served bit decrypts to %v (err %v) — stale stock leaked", v, err)
		}
	}
}

// TestInventoryCloseCancelsLongRefill pins the satellite behavior the
// chunked FillContext exists for: a rate-limited refill that would take tens
// of seconds must not hold up daemon shutdown.
func TestInventoryCloseCancelsLongRefill(t *testing.T) {
	sk, _ := testKeys(t)
	inv, err := NewInventory(InventoryConfig{
		Targets: Targets{Zeros: 1000},
		Rate:    50, // 20s to reach target — shutdown must not wait for it
		Logf:    discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Admit(sk.Public()); err != nil {
		t.Fatal(err)
	}
	// Let the refiller get going, then close while mid-fill.
	time.Sleep(50 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- inv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a rate-limited refill")
	}
}

func TestRateLimiterPacesAndCancels(t *testing.T) {
	l := newRateLimiter(1000) // 1ms per item
	start := time.Now()
	ctx := context.Background()
	// First reservation is immediate; the next must wait ~64ms.
	if err := l.wait(ctx, 64); err != nil {
		t.Fatal(err)
	}
	if err := l.wait(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("second reservation returned after %v, want ~64ms", elapsed)
	}
	// Unlimited limiter never sleeps.
	if err := newRateLimiter(0).wait(ctx, 1<<20); err != nil {
		t.Fatal(err)
	}
}
