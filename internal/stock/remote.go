package stock

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/big"
	"net"
	"sync"
	"time"

	"privstats/internal/homomorphic"
	"privstats/internal/paillier"
	"privstats/internal/wire"
)

// Defaults for zero RemoteSourceConfig fields.
const (
	// DefaultBatch is the prefetch unit: big enough to amortize a round
	// trip, small enough that a short daemon inventory is shared fairly
	// across clients.
	DefaultBatch = 512
	// DefaultRemoteTimeout bounds dials and per-frame IO with the daemon.
	DefaultRemoteTimeout = 5 * time.Second
	// DefaultCooldown is how long a RemoteSource treats the daemon as down
	// after a failed fetch before trying again — the circuit that keeps an
	// unreachable daemon from adding a dial timeout to every draw.
	DefaultCooldown = time.Second
)

// ErrDaemonDown is wrapped by fetch failures (including cooldown refusals).
var ErrDaemonDown = errors.New("stock: daemon unreachable")

// RemoteSourceConfig tunes a RemoteSource.
type RemoteSourceConfig struct {
	// Addr is the stockd address.
	Addr string
	// Key is the client's public key; the daemon mints stock under it.
	Key *paillier.PublicKey
	// TargetZeros/TargetOnes/TargetRandomizers are the local depths the
	// prefetcher keeps stocked. At least one must be positive.
	TargetZeros, TargetOnes, TargetRandomizers int
	// LowWater triggers a background refill when a bit inventory drops to
	// it; zero means a quarter of that inventory's target.
	LowWater int
	// Batch caps one request's item count; zero means DefaultBatch.
	Batch int
	// DialTimeout and IOTimeout bound the daemon session; zero means
	// DefaultRemoteTimeout.
	DialTimeout, IOTimeout time.Duration
	// UseCRC requests CRC32 frame trailers on the daemon session.
	UseCRC bool
	// Cooldown is the down-daemon circuit window; zero means
	// DefaultCooldown.
	Cooldown time.Duration
	// Logf receives operational log lines; nil means log.Printf.
	Logf func(format string, args ...any)
}

// RemoteSource implements homomorphic.EncryptorPool by prefetching batches
// of daemon-minted stock into a local BitStore (and RandomizerPool), with
// low-watermark background refill. When the daemon is unreachable, draws
// fall back to online encryption — counted by the local store's
// OnlineFallbacks, never blocking and never wrong.
type RemoteSource struct {
	cfg   RemoteSourceConfig
	store *paillier.BitStore
	rpool *paillier.RandomizerPool

	// connMu serializes fetches (single-flight) and guards conn/downUntil.
	connMu    sync.Mutex
	conn      *wire.Conn
	downUntil time.Time

	refillCh  chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	logf      func(format string, args ...any)
}

var _ homomorphic.EncryptorPool = (*RemoteSource)(nil)

// NewRemoteSource validates cfg and starts the background refiller. The
// returned source is usable immediately; stock arrives as fetches complete
// (use Prime to block until full).
func NewRemoteSource(cfg RemoteSourceConfig) (*RemoteSource, error) {
	if cfg.Addr == "" {
		return nil, errors.New("stock: remote source needs a daemon address")
	}
	if cfg.Key == nil {
		return nil, errors.New("stock: remote source needs a public key")
	}
	if cfg.TargetZeros < 0 || cfg.TargetOnes < 0 || cfg.TargetRandomizers < 0 {
		return nil, fmt.Errorf("stock: negative remote targets (%d, %d, %d)",
			cfg.TargetZeros, cfg.TargetOnes, cfg.TargetRandomizers)
	}
	if cfg.TargetZeros == 0 && cfg.TargetOnes == 0 && cfg.TargetRandomizers == 0 {
		return nil, errors.New("stock: all remote targets zero")
	}
	if cfg.LowWater < 0 {
		return nil, fmt.Errorf("stock: negative low watermark %d", cfg.LowWater)
	}
	if cfg.Batch == 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.Batch < 0 || cfg.Batch > MaxBatchItems {
		return nil, fmt.Errorf("stock: batch %d outside [1, %d]", cfg.Batch, MaxBatchItems)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = DefaultRemoteTimeout
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = DefaultRemoteTimeout
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &RemoteSource{
		cfg:      cfg,
		store:    paillier.NewBitStore(cfg.Key),
		rpool:    paillier.NewRandomizerPool(cfg.Key),
		refillCh: make(chan struct{}, 1),
		done:     make(chan struct{}),
		logf:     cfg.Logf,
	}
	s.wg.Add(1)
	go s.refillLoop()
	return s, nil
}

// lowWater returns the refill trigger for an inventory with the given
// target.
func (s *RemoteSource) lowWater(target int) int {
	if s.cfg.LowWater > 0 {
		return s.cfg.LowWater
	}
	return target / 4
}

// DrawBit implements homomorphic.EncryptorPool: it serves from local stock,
// prefetching when the inventory runs low and fetching synchronously when it
// is empty; if the daemon is unreachable the local store encrypts online,
// counting the fallback.
func (s *RemoteSource) DrawBit(bit uint) (homomorphic.Ciphertext, error) {
	if bit > 1 {
		return nil, fmt.Errorf("stock: DrawBit(%d): bit must be 0 or 1", bit)
	}
	target := s.cfg.TargetZeros
	if bit == 1 {
		target = s.cfg.TargetOnes
	}
	switch rem := s.store.Remaining(bit); {
	case rem == 0 && target > 0:
		// Empty: one synchronous fetch attempt before falling back online.
		if _, err := s.fetchBits(bit); err != nil && !errors.Is(err, ErrDaemonDown) {
			s.logf("stock: fetch for bit %d: %v", bit, err)
		}
	case rem <= s.lowWater(target):
		s.triggerRefill()
	}
	return s.store.DrawBit(bit)
}

// Remaining implements homomorphic.EncryptorPool.
func (s *RemoteSource) Remaining(bit uint) int { return s.store.Remaining(bit) }

// Randomizer draws one precomputed r^N (fetching/falling back like DrawBit).
func (s *RemoteSource) Randomizer() (*big.Int, error) {
	switch rem := s.rpool.Depth(); {
	case rem == 0 && s.cfg.TargetRandomizers > 0:
		if _, err := s.fetchRandomizers(); err != nil && !errors.Is(err, ErrDaemonDown) {
			s.logf("stock: fetch randomizers: %v", err)
		}
	case rem <= s.lowWater(s.cfg.TargetRandomizers):
		s.triggerRefill()
	}
	return s.rpool.Draw()
}

// Depth reports the local stock levels.
func (s *RemoteSource) Depth() (zeros, ones, randomizers int) {
	zeros, ones = s.store.Depth()
	return zeros, ones, s.rpool.Depth()
}

// OnlineFallbacks reports draws served by online computation across both
// local pools — the steady-state SLO is zero.
func (s *RemoteSource) OnlineFallbacks() int {
	return s.store.OnlineFallbacks() + s.rpool.OnlineFallbacks()
}

// Prime fetches until every local inventory reaches its target (the bench
// and e2e setup path: a primed source proves OnlineFallbacks == 0 is
// attainable). It returns the first fetch error, with whatever stock already
// landed left in place.
func (s *RemoteSource) Prime(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		zeros, ones := s.store.Depth()
		needZ := s.cfg.TargetZeros - zeros
		needO := s.cfg.TargetOnes - ones
		needR := s.cfg.TargetRandomizers - s.rpool.Depth()
		switch {
		case needZ > 0:
			if err := s.primeStep(KindZeroBits, needZ); err != nil {
				return err
			}
		case needO > 0:
			if err := s.primeStep(KindOneBits, needO); err != nil {
				return err
			}
		case needR > 0:
			if err := s.primeStep(KindRandomizers, needR); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// primeStep fetches one batch toward a deficit, failing when the daemon had
// nothing (so Prime cannot spin on an empty inventory).
func (s *RemoteSource) primeStep(kind Kind, need int) error {
	count := need
	if count > s.cfg.Batch {
		count = s.cfg.Batch
	}
	got, err := s.fetch(kind, count)
	if err != nil {
		return err
	}
	if got == 0 {
		return fmt.Errorf("stock: daemon has no %v stock yet (%d still needed)", kind, need)
	}
	return nil
}

// Close stops the refiller and closes the daemon session.
func (s *RemoteSource) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.conn != nil {
		_ = s.conn.Send(wire.MsgDone, nil)
		_ = s.conn.Close()
		s.conn = nil
	}
	return nil
}

// triggerRefill nudges the background refiller without blocking.
func (s *RemoteSource) triggerRefill() {
	select {
	case s.refillCh <- struct{}{}:
	default:
	}
}

// refillLoop tops local inventories up to their targets whenever the draw
// path signals low water.
func (s *RemoteSource) refillLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.refillCh:
		}
		s.topUp()
	}
}

// topUp fetches until every inventory is at target or a fetch fails (the
// cooldown then silences the loop until the daemon recovers).
func (s *RemoteSource) topUp() {
	for {
		select {
		case <-s.done:
			return
		default:
		}
		zeros, ones := s.store.Depth()
		needZ := s.cfg.TargetZeros - zeros
		needO := s.cfg.TargetOnes - ones
		needR := s.cfg.TargetRandomizers - s.rpool.Depth()
		var (
			got int
			err error
		)
		switch {
		case needZ > 0:
			got, err = s.fetchBits(0)
		case needO > 0:
			got, err = s.fetchBits(1)
		case needR > 0:
			got, err = s.fetchRandomizers()
		default:
			return
		}
		if err != nil || got == 0 {
			return // cooldown (or an empty daemon) ends this refill round
		}
	}
}

func (s *RemoteSource) fetchBits(bit uint) (int, error) {
	return s.fetch(Kind(bit), s.cfg.Batch)
}

func (s *RemoteSource) fetchRandomizers() (int, error) {
	return s.fetch(KindRandomizers, s.cfg.Batch)
}

// fetch performs one request/batch exchange with the daemon, single-flight,
// parsing and stocking every returned item. It returns how many items
// landed.
func (s *RemoteSource) fetch(kind Kind, count int) (int, error) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if time.Now().Before(s.downUntil) {
		return 0, fmt.Errorf("%w (cooling down)", ErrDaemonDown)
	}
	got, err := s.fetchLocked(kind, count)
	if err != nil {
		if s.conn != nil {
			_ = s.conn.Close()
			s.conn = nil
		}
		s.downUntil = time.Now().Add(s.cfg.Cooldown)
		return 0, err
	}
	return got, nil
}

func (s *RemoteSource) fetchLocked(kind Kind, count int) (int, error) {
	if err := s.ensureConnLocked(); err != nil {
		return 0, err
	}
	req := Request{Kind: kind, Count: uint32(count)}
	if err := s.conn.Send(wire.MsgStockRequest, req.Encode()); err != nil {
		return 0, fmt.Errorf("%w: sending request: %v", ErrDaemonDown, err)
	}
	f, err := s.conn.Recv()
	if err != nil {
		return 0, fmt.Errorf("%w: reading batch: %v", ErrDaemonDown, err)
	}
	if f.Type == wire.MsgError {
		return 0, fmt.Errorf("stock: daemon rejected request: %w", wire.DecodeError(f.Payload))
	}
	if f.Type != wire.MsgStockBatch {
		return 0, fmt.Errorf("stock: expected batch, got %#x", byte(f.Type))
	}
	width := s.cfg.Key.CiphertextSize()
	batch, err := DecodeBatch(f.Payload, width)
	if err != nil {
		return 0, err
	}
	if batch.Kind != kind {
		return 0, fmt.Errorf("stock: asked for %v, daemon sent %v", kind, batch.Kind)
	}
	n := batch.Count()
	switch kind {
	case KindZeroBits, KindOneBits:
		cts := make([]*paillier.Ciphertext, n)
		for i := 0; i < n; i++ {
			ct, err := s.cfg.Key.ParseCiphertext(batch.At(i))
			if err != nil {
				return 0, fmt.Errorf("stock: daemon sent invalid ciphertext: %w", err)
			}
			cts[i] = ct
		}
		if err := s.store.AddStock(uint(kind), cts); err != nil {
			return 0, err
		}
	case KindRandomizers:
		rns := make([]*big.Int, n)
		for i := 0; i < n; i++ {
			rns[i] = new(big.Int).SetBytes(batch.At(i))
		}
		if err := s.rpool.AddStock(rns); err != nil {
			return 0, fmt.Errorf("stock: daemon sent invalid randomizer: %w", err)
		}
	}
	return n, nil
}

// ensureConnLocked dials and greets the daemon when no session is open.
func (s *RemoteSource) ensureConnLocked() error {
	if s.conn != nil {
		return nil
	}
	raw, err := net.DialTimeout("tcp", s.cfg.Addr, s.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("%w: dial %s: %v", ErrDaemonDown, s.cfg.Addr, err)
	}
	conn := wire.NewConn(raw)
	conn.SetIdleTimeout(s.cfg.IOTimeout)
	conn.SetWriteTimeout(s.cfg.IOTimeout)
	keyBytes, err := s.cfg.Key.MarshalBinary()
	if err != nil {
		raw.Close()
		return fmt.Errorf("stock: marshaling public key: %w", err)
	}
	fp, err := paillier.KeyFingerprint(s.cfg.Key)
	if err != nil {
		raw.Close()
		return err
	}
	hello := Hello{
		Version:     Version,
		Scheme:      paillier.SchemeID,
		PublicKey:   keyBytes,
		Fingerprint: fp,
	}
	if s.cfg.UseCRC {
		hello.Flags |= wire.HelloFlagFrameCRC
		conn.EnableCRC() // the hello itself travels CRC-framed
	}
	if err := conn.Send(wire.MsgStockHello, hello.Encode()); err != nil {
		raw.Close()
		return fmt.Errorf("%w: sending hello: %v", ErrDaemonDown, err)
	}
	f, err := conn.Recv()
	if err != nil {
		raw.Close()
		return fmt.Errorf("%w: reading hello ack: %v", ErrDaemonDown, err)
	}
	if f.Type == wire.MsgError {
		raw.Close()
		return fmt.Errorf("stock: daemon refused session: %w", wire.DecodeError(f.Payload))
	}
	if f.Type != wire.MsgStockHello {
		raw.Close()
		return fmt.Errorf("stock: expected hello ack, got %#x", byte(f.Type))
	}
	ack, err := DecodeHelloAck(f.Payload)
	if err != nil {
		raw.Close()
		return err
	}
	if ack.Fingerprint != fp {
		// The daemon admitted a different key than we sent — stale state on
		// one side; refuse the stock rather than draw unusable ciphertexts.
		raw.Close()
		return errors.New("stock: daemon acked a different key fingerprint")
	}
	s.conn = conn
	return nil
}
