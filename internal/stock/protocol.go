// Package stock implements preprocessing-as-a-service: the paper's §3.3
// optimization (pre-encrypted 0/1 bits and precomputed r^N randomizers)
// promoted from per-process pools into a standalone stock-generation daemon
// plus a prefetching client.
//
// The trust model is the reason this split is safe: stock is public-key-only
// material. The daemon sees a public key and mints encryptions of the
// constants 0 and 1 under it — it learns nothing about which rows any client
// will select, nothing about any database, and holds no secret. A client
// that distrusts the daemon's material loses nothing but privacy it never
// had (the ciphertexts are valid encryptions of 0/1 or they fail the
// server-side fold; correctness of the sum is checked end to end by tests).
//
// Wire protocol (framing, CRC trailers, and MsgError conventions shared with
// internal/wire):
//
//	client → MsgStockHello   {version, scheme, public key, fingerprint, flags}
//	daemon → MsgStockHello   {version, fingerprint}   (ack; or MsgError)
//	client → MsgStockRequest {kind, count}            (repeated)
//	daemon → MsgStockBatch   {kind, width, items}     (≤ count items, maybe 0)
//	client → MsgDone                                  (optional, then close)
//
// The fingerprint in the hello is the SHA-256 of the key encoding; the
// daemon verifies it against the key bytes it received and keys its
// inventories by it, so stock generated for a rotated key can never be
// served against the new one — restores from disk enforce the same binding
// through the storepersist format.
package stock

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"privstats/internal/wire"
)

// Version of the stock protocol.
const Version = 1

// Kind names one stock inventory.
type Kind uint8

// Stock kinds. KindZeroBits and KindOneBits deliberately equal the bit value
// they carry.
const (
	KindZeroBits    Kind = 0
	KindOneBits     Kind = 1
	KindRandomizers Kind = 2
)

// Valid reports whether k names a known stock kind.
func (k Kind) Valid() bool { return k <= KindRandomizers }

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case KindZeroBits:
		return "zero-bits"
	case KindOneBits:
		return "one-bits"
	case KindRandomizers:
		return "randomizers"
	}
	return fmt.Sprintf("unknown(%d)", uint8(k))
}

// MaxBatchItems caps one request's item count. 4096 ciphertexts of a
// 1024-bit modulus are 1 MB — far below wire.MaxFrame, and a sane prefetch
// unit; clients wanting more issue more requests.
const MaxBatchItems = 4096

// Hello opens a stock session.
type Hello struct {
	Version uint32
	// Scheme names the cryptosystem ("paillier").
	Scheme string
	// PublicKey is the scheme-specific key encoding the daemon mints under.
	PublicKey []byte
	// Fingerprint is the SHA-256 of PublicKey; the daemon recomputes and
	// compares, rejecting a mismatched (stale or corrupted) hello outright.
	Fingerprint [32]byte
	// Flags carries session options (wire.HelloFlag* bits; only
	// HelloFlagFrameCRC is meaningful here).
	Flags uint32
}

// Encode serializes h.
func (h *Hello) Encode() []byte {
	b := make([]byte, 0, 4+4+len(h.Scheme)+4+len(h.PublicKey)+32+4)
	b = binary.BigEndian.AppendUint32(b, h.Version)
	b = binary.BigEndian.AppendUint32(b, uint32(len(h.Scheme)))
	b = append(b, h.Scheme...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(h.PublicKey)))
	b = append(b, h.PublicKey...)
	b = append(b, h.Fingerprint[:]...)
	b = binary.BigEndian.AppendUint32(b, h.Flags)
	return b
}

// DecodeHello parses a MsgStockHello payload.
func DecodeHello(b []byte) (*Hello, error) {
	var h Hello
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: stock hello too short", wire.ErrBadMessage)
	}
	h.Version = binary.BigEndian.Uint32(b)
	b = b[4:]
	schemeLen := binary.BigEndian.Uint32(b)
	b = b[4:]
	if schemeLen > 255 || uint32(len(b)) < schemeLen {
		return nil, fmt.Errorf("%w: bad scheme length %d", wire.ErrBadMessage, schemeLen)
	}
	h.Scheme = string(b[:schemeLen])
	b = b[schemeLen:]
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: stock hello truncated before key", wire.ErrBadMessage)
	}
	keyLen := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < keyLen {
		return nil, fmt.Errorf("%w: stock hello truncated key", wire.ErrBadMessage)
	}
	h.PublicKey = append([]byte(nil), b[:keyLen]...)
	b = b[keyLen:]
	if len(b) != 32+4 {
		return nil, fmt.Errorf("%w: stock hello has %d trailing bytes, want 36", wire.ErrBadMessage, len(b))
	}
	copy(h.Fingerprint[:], b)
	h.Flags = binary.BigEndian.Uint32(b[32:])
	return &h, nil
}

// CheckFingerprint reports whether the hello's fingerprint matches its key
// bytes.
func (h *Hello) CheckFingerprint() bool {
	return sha256.Sum256(h.PublicKey) == h.Fingerprint
}

// HelloAck is the daemon's MsgStockHello reply.
type HelloAck struct {
	Version uint32
	// Fingerprint names the inventory the daemon admitted the session to.
	Fingerprint [32]byte
}

// Encode serializes a.
func (a *HelloAck) Encode() []byte {
	b := make([]byte, 0, 4+32)
	b = binary.BigEndian.AppendUint32(b, a.Version)
	return append(b, a.Fingerprint[:]...)
}

// DecodeHelloAck parses a daemon's MsgStockHello payload.
func DecodeHelloAck(b []byte) (*HelloAck, error) {
	if len(b) != 4+32 {
		return nil, fmt.Errorf("%w: stock hello ack is %d bytes, want 36", wire.ErrBadMessage, len(b))
	}
	var a HelloAck
	a.Version = binary.BigEndian.Uint32(b)
	copy(a.Fingerprint[:], b[4:])
	return &a, nil
}

// Request asks for up to Count items of one kind.
type Request struct {
	Kind  Kind
	Count uint32
}

// Encode serializes r.
func (r *Request) Encode() []byte {
	b := make([]byte, 5)
	b[0] = byte(r.Kind)
	binary.BigEndian.PutUint32(b[1:], r.Count)
	return b
}

// DecodeRequest parses a MsgStockRequest payload.
func DecodeRequest(b []byte) (*Request, error) {
	if len(b) != 5 {
		return nil, fmt.Errorf("%w: stock request is %d bytes, want 5", wire.ErrBadMessage, len(b))
	}
	r := &Request{Kind: Kind(b[0]), Count: binary.BigEndian.Uint32(b[1:])}
	if !r.Kind.Valid() {
		return nil, fmt.Errorf("%w: unknown stock kind %d", wire.ErrBadMessage, b[0])
	}
	if r.Count == 0 || r.Count > MaxBatchItems {
		return nil, fmt.Errorf("%w: stock request count %d outside [1, %d]", wire.ErrBadMessage, r.Count, MaxBatchItems)
	}
	return r, nil
}

// Batch is the daemon's reply to one Request: Count() fixed-width items.
type Batch struct {
	Kind Kind
	// Items is Count() encodings of Width bytes each, back to back. Bits are
	// canonical ciphertext encodings; randomizers are big-endian r^N values
	// zero-padded to Width.
	Items []byte
	Width int
}

// Count returns the number of items in the batch.
func (b *Batch) Count() int {
	if b.Width <= 0 {
		return 0
	}
	return len(b.Items) / b.Width
}

// At returns the encoding of the i'th item.
func (b *Batch) At(i int) []byte {
	return b.Items[i*b.Width : (i+1)*b.Width]
}

// Encode serializes b.
func (b *Batch) Encode() []byte {
	out := make([]byte, 0, 5+len(b.Items))
	out = append(out, byte(b.Kind))
	out = binary.BigEndian.AppendUint32(out, uint32(b.Width))
	return append(out, b.Items...)
}

// DecodeBatch parses a MsgStockBatch payload. width is the session's item
// width (from the public key) and must match the declared one exactly.
func DecodeBatch(b []byte, width int) (*Batch, error) {
	if len(b) < 5 {
		return nil, fmt.Errorf("%w: stock batch too short", wire.ErrBadMessage)
	}
	kind := Kind(b[0])
	if !kind.Valid() {
		return nil, fmt.Errorf("%w: unknown stock kind %d", wire.ErrBadMessage, b[0])
	}
	declared := binary.BigEndian.Uint32(b[1:])
	if width <= 0 || int(declared) != width {
		return nil, fmt.Errorf("%w: stock batch width %d, session needs %d", wire.ErrBadMessage, declared, width)
	}
	items := b[5:]
	if len(items)%width != 0 {
		return nil, fmt.Errorf("%w: stock batch body %d bytes not a multiple of width %d", wire.ErrBadMessage, len(items), width)
	}
	if len(items)/width > MaxBatchItems {
		return nil, fmt.Errorf("%w: stock batch carries %d items, cap %d", wire.ErrBadMessage, len(items)/width, MaxBatchItems)
	}
	return &Batch{Kind: kind, Items: items, Width: width}, nil
}
