package stock

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestNewInventoryValidatesSnapshotKnobs(t *testing.T) {
	bad := []InventoryConfig{
		{Targets: Targets{Zeros: 1}, StateDir: "x", SnapshotEvery: -time.Second},
		{Targets: Targets{Zeros: 1}, StateDir: "x", SnapshotDelta: -1},
		{Targets: Targets{Zeros: 1}, SnapshotEvery: time.Second}, // no StateDir to snapshot into
	}
	for i, cfg := range bad {
		if _, err := NewInventory(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// abandon stops an inventory's goroutines WITHOUT the graceful SaveAll —
// the closest an in-process test gets to a SIGKILL.
func abandon(i *Inventory) {
	i.cancel()
	i.wg.Wait()
}

func TestInventorySnapshotsOnInterval(t *testing.T) {
	sk, _ := testKeys(t)
	dir := t.TempDir()
	cfg := InventoryConfig{
		Targets:       Targets{Zeros: 6, Ones: 3, Randomizers: 2},
		StateDir:      dir,
		SnapshotEvery: 20 * time.Millisecond,
		Logf:          discardLogf,
	}
	inv, err := NewInventory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Admit(sk.Public()); err != nil {
		t.Fatal(err)
	}
	waitForDepths(t, inv, sk.Public(), 6, 3, 2)

	// Without any Close, a snapshot pass lands within a few intervals and
	// leaves the full file set (including the public key) behind.
	deadline := time.Now().Add(10 * time.Second)
	for inv.Metrics().Snapshot().Snapshots == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no snapshot written within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	abandon(inv) // crash: no graceful persist

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	exts := map[string]bool{}
	for _, e := range entries {
		exts[filepath.Ext(e.Name())] = true
	}
	for _, ext := range []string{".bits", ".rnd", ".pk"} {
		if !exts[ext] {
			t.Errorf("snapshot left no %s file (have %v)", ext, entries)
		}
	}

	// A fresh daemon restores everything from the snapshot alone, before any
	// client hello, and the summary accounts for it.
	inv2, err := NewInventory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer inv2.Close()
	summary, err := inv2.RestoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if summary.Keys != 1 || summary.Bits == 0 || summary.Stale != 0 {
		t.Errorf("summary = %+v, want 1 key, >0 bits, 0 stale", summary)
	}
	z, o, r, ok := inv2.Depths(sk.Public())
	if !ok || z == 0 {
		t.Errorf("depths after RestoreAll = (%d,%d,%d) ok=%v", z, o, r, ok)
	}
}

func TestInventorySnapshotOnDrainDelta(t *testing.T) {
	sk, _ := testKeys(t)
	cfg := InventoryConfig{
		Targets:       Targets{Zeros: 8, Ones: 2},
		StateDir:      t.TempDir(),
		SnapshotEvery: time.Hour, // the interval alone would never fire in-test
		SnapshotDelta: 3,
		Logf:          discardLogf,
	}
	inv, err := NewInventory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()
	k, err := inv.Admit(sk.Public())
	if err != nil {
		t.Fatal(err)
	}
	waitForDepths(t, inv, sk.Public(), 8, 2, 0)

	// Serving fewer items than the delta must not trigger a snapshot...
	inv.take(k, &Request{Kind: KindZeroBits, Count: 2})
	time.Sleep(50 * time.Millisecond)
	if n := inv.Metrics().Snapshot().Snapshots; n != 0 {
		t.Fatalf("snapshot after %d drained items (delta 3): %d passes", 2, n)
	}
	// ...but crossing it wakes the snapshotter promptly.
	inv.take(k, &Request{Kind: KindZeroBits, Count: 2})
	deadline := time.Now().Add(10 * time.Second)
	for inv.Metrics().Snapshot().Snapshots == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drain delta crossed but no snapshot")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRestoreAllCountsStaleFiles(t *testing.T) {
	sk, _ := testKeys(t)
	dir := t.TempDir()
	cfg := InventoryConfig{
		Targets:  Targets{Zeros: 4, Ones: 2, Randomizers: 1},
		StateDir: dir,
		Logf:     discardLogf,
	}
	inv, err := NewInventory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Admit(sk.Public()); err != nil {
		t.Fatal(err)
	}
	waitForDepths(t, inv, sk.Public(), 4, 2, 1)
	if err := inv.Close(); err != nil {
		t.Fatal(err)
	}

	// A garbage public-key file and an unrelated file land next to the real
	// snapshot; only the .pk garbage counts as stale, the rest is ignored.
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.pk"), []byte("not a key"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o600); err != nil {
		t.Fatal(err)
	}

	inv2, err := NewInventory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer inv2.Close()
	summary, err := inv2.RestoreAll()
	if err != nil {
		t.Fatal(err)
	}
	if summary.Keys != 1 || summary.Stale != 1 {
		t.Errorf("summary = %+v, want 1 key and 1 stale", summary)
	}
	if summary.Bits != 6 || summary.Randomizers != 1 {
		t.Errorf("summary = %+v, want 6 bits and 1 randomizer", summary)
	}
	// The summary renders as the structured one-liner the daemon logs.
	want := "keys_restored=1 bits_loaded=6 randomizers_loaded=1 stale_discarded=1"
	if got := summary.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRestoreAllNoStateDir(t *testing.T) {
	inv, err := NewInventory(InventoryConfig{Targets: Targets{Zeros: 1}, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer inv.Close()
	summary, err := inv.RestoreAll()
	if err != nil || summary != (RestoreSummary{}) {
		t.Fatalf("RestoreAll without StateDir: %+v, %v", summary, err)
	}
}

func TestRestoreAllUnreadableStateDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "flat-file")
	if err := os.WriteFile(file, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	inv, err := NewInventory(InventoryConfig{
		Targets:  Targets{Zeros: 1},
		StateDir: file,
		Logf:     discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = inv.Close() }() // Close will also fail to persist; ignore
	if _, err := inv.RestoreAll(); err == nil || !strings.Contains(err.Error(), "state dir") {
		t.Errorf("RestoreAll over a flat file: %v", err)
	}
}
