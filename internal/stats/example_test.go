package stats_test

import (
	"crypto/rand"
	"fmt"
	"log"

	"privstats/internal/database"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
	"privstats/internal/stats"
)

// ExampleAnalyst_MomentsQuery privately computes mean and variance of a
// selected cohort in one protocol round.
func ExampleAnalyst_MomentsQuery() {
	table := database.New([]uint32{2, 100, 4, 6}) // cohort: 2, 4, 6
	sel, err := database.NewSelection(4)
	if err != nil {
		log.Fatal(err)
	}
	sel.Set(0)
	sel.Set(2)
	sel.Set(3)

	key, err := paillier.KeyGen(rand.Reader, 128)
	if err != nil {
		log.Fatal(err)
	}
	analyst, err := stats.NewAnalyst(paillier.SchemeKey{SK: key}, stats.Config{
		Link: netsim.ShortDistance,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, _, err := analyst.MomentsQuery(table, sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("count:", m.Count)
	fmt.Println("mean:", m.Mean.RatString())
	fmt.Println("variance:", m.Variance.RatString())
	// Output:
	// count: 3
	// mean: 4
	// variance: 8/3
}

// ExampleAnalyst_GroupByQuery aggregates a private selection per public
// stratum: one uplink, per-group sums and counts back.
func ExampleAnalyst_GroupByQuery() {
	table := database.New([]uint32{10, 20, 30, 40})
	labels := []int{0, 1, 0, 1} // public group per row
	sel, err := database.NewSelection(4)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sel.Set(i)
	}
	key, err := paillier.KeyGen(rand.Reader, 128)
	if err != nil {
		log.Fatal(err)
	}
	analyst, err := stats.NewAnalyst(paillier.SchemeKey{SK: key}, stats.Config{
		Link: netsim.ShortDistance,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, _, err := analyst.GroupByQuery(table, sel, labels, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("group 0 sum:", g.Sums[0], "count:", g.Counts[0])
	fmt.Println("group 1 sum:", g.Sums[1], "count:", g.Counts[1])
	// Output:
	// group 0 sum: 40 count: 2
	// group 1 sum: 60 count: 2
}
