// Package stats computes statistics of selected rows in a remote database
// privately, on top of the selected-sum protocol. The paper's introduction
// motivates the selected sum exactly this way: "such protocols immediately
// yield private solutions for computing means, variances, and weighted
// averages".
//
// Everything the client learns is derivable from the sums it is entitled
// to: mean = S/m, variance = (m·Q − S²)/m², where S = Σ x_i and Q = Σ x_i²
// over the selection. The variance query folds the client's single
// encrypted index vector against the server's value column and square
// column in one round, so it costs one uplink and two response ciphertexts
// rather than two full protocol runs.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"time"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/netsim"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// ErrEmptySelection is returned for statistics undefined on zero rows.
var ErrEmptySelection = errors.New("stats: selection is empty")

// Analyst is a client that issues private statistical queries.
type Analyst struct {
	sk   homomorphic.PrivateKey
	link netsim.Link
	// chunkSize and pool configure the underlying protocol exactly as in
	// selectedsum.Options.
	chunkSize int
	pool      homomorphic.EncryptorPool
}

// Config carries the optional protocol knobs for an Analyst.
type Config struct {
	// Link is the communication environment (required).
	Link netsim.Link
	// ChunkSize batches the index stream; 0 sends one chunk.
	ChunkSize int
	// Pool supplies preprocessed bit encryptions; nil encrypts online.
	Pool homomorphic.EncryptorPool
}

// NewAnalyst builds an analyst over the given key.
func NewAnalyst(sk homomorphic.PrivateKey, cfg Config) (*Analyst, error) {
	if sk == nil {
		return nil, errors.New("stats: nil private key")
	}
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	return &Analyst{sk: sk, link: cfg.Link, chunkSize: cfg.ChunkSize, pool: cfg.Pool}, nil
}

// Cost summarizes what a query consumed.
type Cost struct {
	// Online is the end-to-end modelled online time.
	Online time.Duration
	// BytesUp and BytesDown are the exact wire byte counts.
	BytesUp, BytesDown int64
}

func (a *Analyst) options() selectedsum.Options {
	return selectedsum.Options{
		Link:      a.link,
		ChunkSize: a.chunkSize,
		Pipelined: a.chunkSize > 0,
		Pool:      a.pool,
	}
}

// Sum privately computes Σ x_i over the selection.
func (a *Analyst) Sum(table *database.Table, sel *database.Selection) (*big.Int, Cost, error) {
	res, err := selectedsum.Run(a.sk, table, sel, a.options())
	if err != nil {
		return nil, Cost{}, err
	}
	return res.Sum, Cost{Online: res.Timings.Total, BytesUp: res.BytesUp, BytesDown: res.BytesDown}, nil
}

// Mean privately computes the exact mean of the selected rows as a
// rational number.
func (a *Analyst) Mean(table *database.Table, sel *database.Selection) (*big.Rat, Cost, error) {
	if sel.Count() == 0 {
		return nil, Cost{}, ErrEmptySelection
	}
	sum, cost, err := a.Sum(table, sel)
	if err != nil {
		return nil, Cost{}, err
	}
	return new(big.Rat).SetFrac(sum, big.NewInt(int64(sel.Count()))), cost, nil
}

// Moments holds the first two selected moments and derived statistics.
type Moments struct {
	// Count is m, the number of selected rows (known to the client).
	Count int
	// Sum is Σ x_i and SumSquares is Σ x_i² over the selection.
	Sum, SumSquares *big.Int
	// Mean is Sum/Count.
	Mean *big.Rat
	// Variance is the exact population variance (m·Q − S²)/m².
	Variance *big.Rat
}

// StdDev returns the population standard deviation as a float64.
func (m *Moments) StdDev() float64 {
	v, _ := m.Variance.Float64()
	if v < 0 {
		// Exact arithmetic cannot go negative; guard against future edits.
		return 0
	}
	return math.Sqrt(v)
}

// MomentsQuery privately computes count, sum, mean, and variance of the
// selected rows in a single protocol round: the encrypted index vector is
// folded against both the value column and the square column.
func (a *Analyst) MomentsQuery(table *database.Table, sel *database.Selection) (*Moments, Cost, error) {
	if sel.Count() == 0 {
		return nil, Cost{}, ErrEmptySelection
	}
	if sel.Len() != table.Len() {
		return nil, Cost{}, fmt.Errorf("stats: selection length %d != table length %d", sel.Len(), table.Len())
	}
	pk := a.sk.PublicKey()
	n := table.Len()

	// Σx² over 32-bit values needs the plaintext space to hold n·(2³²−1)²
	// ≈ n·2⁶⁴; guard explicitly so a too-small key fails loudly.
	bound := new(big.Int).Lsh(big.NewInt(int64(n)), 64)
	if bound.Cmp(pk.PlaintextSpace()) >= 0 {
		return nil, Cost{}, fmt.Errorf("stats: plaintext space too small for Σx² over %d rows", n)
	}

	valSession, err := selectedsum.NewColumnSession(pk, table.Column(), uint64(n))
	if err != nil {
		return nil, Cost{}, err
	}
	sqSession, err := selectedsum.NewColumnSession(pk, table.SquareColumn(), uint64(n))
	if err != nil {
		return nil, Cost{}, err
	}

	var enc selectedsum.BitEncryptor = selectedsum.Online{PK: pk}
	if a.pool != nil {
		enc = selectedsum.Pooled{Pool: a.pool}
	}

	chunkSize := a.chunkSize
	if chunkSize <= 0 || chunkSize > n {
		chunkSize = n
	}
	width := pk.CiphertextSize()

	start := time.Now()
	var bytesUp int64
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		body, err := selectedsum.EncryptRange(enc, sel, lo, hi, width)
		if err != nil {
			return nil, Cost{}, err
		}
		chunk := &wire.IndexChunk{Offset: uint64(lo), Ciphertexts: body, Width: width}
		payload := chunk.Encode()
		bytesUp += int64(wire.FrameOverhead + len(payload))
		decoded, err := wire.DecodeIndexChunk(payload, width)
		if err != nil {
			return nil, Cost{}, err
		}
		// One uplink chunk feeds both folds.
		if err := valSession.Absorb(decoded); err != nil {
			return nil, Cost{}, err
		}
		if err := sqSession.Absorb(decoded); err != nil {
			return nil, Cost{}, err
		}
	}

	sumCt, err := valSession.Finalize(nil)
	if err != nil {
		return nil, Cost{}, err
	}
	sqCt, err := sqSession.Finalize(nil)
	if err != nil {
		return nil, Cost{}, err
	}
	sum, err := a.sk.Decrypt(sumCt)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("stats: decrypting Σx: %w", err)
	}
	sumSq, err := a.sk.Decrypt(sqCt)
	if err != nil {
		return nil, Cost{}, fmt.Errorf("stats: decrypting Σx²: %w", err)
	}
	elapsed := time.Since(start)

	m := int64(sel.Count())
	bm := big.NewInt(m)
	mean := new(big.Rat).SetFrac(sum, bm)
	// variance = (m·Q − S²) / m²
	num := new(big.Int).Mul(bm, sumSq)
	num.Sub(num, new(big.Int).Mul(sum, sum))
	variance := new(big.Rat).SetFrac(num, new(big.Int).Mul(bm, bm))

	bytesDown := int64(2 * (wire.FrameOverhead + width))
	cost := Cost{
		Online:    elapsed + a.link.OneWayTime(bytesUp) + a.link.OneWayTime(bytesDown),
		BytesUp:   bytesUp,
		BytesDown: bytesDown,
	}
	return &Moments{
		Count:      sel.Count(),
		Sum:        sum,
		SumSquares: sumSq,
		Mean:       mean,
		Variance:   variance,
	}, cost, nil
}

// Variance privately computes the exact population variance of the
// selected rows.
func (a *Analyst) Variance(table *database.Table, sel *database.Selection) (*big.Rat, Cost, error) {
	m, cost, err := a.MomentsQuery(table, sel)
	if err != nil {
		return nil, Cost{}, err
	}
	return m.Variance, cost, nil
}
