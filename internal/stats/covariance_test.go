package stats

import (
	"math"
	"math/big"
	"testing"

	"privstats/internal/database"
)

func TestCovarianceExactSmall(t *testing.T) {
	a := analyst(t)
	// Selected pairs: (1,2), (2,4), (3,6) — perfectly correlated, Y = 2X.
	// mean X = 2, mean Y = 4; cov = E[XY] - E[X]E[Y] = (2+8+18)/3 - 8 = 4/3.
	x := database.New([]uint32{1, 9, 2, 3})
	y := database.New([]uint32{2, 7, 4, 6})
	sel, _ := database.NewSelection(4)
	sel.Set(0)
	sel.Set(2)
	sel.Set(3)
	pm, cost, err := a.CovarianceQuery(x, y, sel)
	if err != nil {
		t.Fatal(err)
	}
	if pm.SumX.Int64() != 6 || pm.SumY.Int64() != 12 || pm.SumXY.Int64() != 2+8+18 {
		t.Errorf("sums = %v %v %v", pm.SumX, pm.SumY, pm.SumXY)
	}
	if pm.Covariance.Cmp(big.NewRat(4, 3)) != 0 {
		t.Errorf("cov = %v, want 4/3", pm.Covariance)
	}
	width := int64(a.sk.PublicKey().CiphertextSize())
	if cost.BytesDown != 3*(5+width) {
		t.Errorf("BytesDown = %d, want three ciphertext frames", cost.BytesDown)
	}
}

func TestCovarianceMatchesOracle(t *testing.T) {
	a := analyst(t)
	x, _ := database.Generate(90, database.DistSmall, 41)
	y, _ := database.Generate(90, database.DistSmall, 43)
	sel, _ := database.GenerateSelection(90, 40, database.PatternRandom, 44)
	pm, _, err := a.CovarianceQuery(x, y, sel)
	if err != nil {
		t.Fatal(err)
	}
	var sx, sy, sxy, m float64
	for _, i := range sel.Indices() {
		vx, vy := float64(x.Value(i)), float64(y.Value(i))
		sx += vx
		sy += vy
		sxy += vx * vy
		m++
	}
	want := sxy/m - (sx/m)*(sy/m)
	got, _ := pm.Covariance.Float64()
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Errorf("cov = %v, want %v", got, want)
	}
}

func TestCovarianceOfIndependentConstant(t *testing.T) {
	a := analyst(t)
	x, _ := database.Generate(30, database.DistSmall, 3)
	y, _ := database.Generate(30, database.DistConstant, 3) // constant Y
	sel, _ := database.GenerateSelection(30, 12, database.PatternRandom, 4)
	pm, _, err := a.CovarianceQuery(x, y, sel)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Covariance.Sign() != 0 {
		t.Errorf("cov with constant column = %v, want 0", pm.Covariance)
	}
}

func TestCovarianceValidation(t *testing.T) {
	a := analyst(t)
	x := database.New([]uint32{1, 2})
	y3 := database.New([]uint32{1, 2, 3})
	sel, _ := database.NewSelection(2)
	sel.Set(0)
	if _, _, err := a.CovarianceQuery(x, y3, sel); err == nil {
		t.Error("mismatched tables should fail")
	}
	y := database.New([]uint32{5, 6})
	badSel, _ := database.NewSelection(3)
	badSel.Set(0)
	if _, _, err := a.CovarianceQuery(x, y, badSel); err == nil {
		t.Error("selection length mismatch should fail")
	}
	empty, _ := database.NewSelection(2)
	if _, _, err := a.CovarianceQuery(x, y, empty); err != ErrEmptySelection {
		t.Errorf("err = %v, want ErrEmptySelection", err)
	}
}

func TestProductColumn(t *testing.T) {
	a := database.New([]uint32{2, 3, 1<<32 - 1})
	b := database.New([]uint32{5, 7, 1<<32 - 1})
	col, err := database.ProductColumn(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if col.At(0) != 10 || col.At(1) != 21 {
		t.Errorf("products = %d, %d", col.At(0), col.At(1))
	}
	// Max product must be exact in uint64.
	want := uint64(1<<32-1) * uint64(1<<32-1)
	if col.At(2) != want {
		t.Errorf("max product = %d, want %d", col.At(2), want)
	}
	short := database.New([]uint32{1})
	if _, err := database.ProductColumn(a, short); err == nil {
		t.Error("length mismatch should fail")
	}
}
