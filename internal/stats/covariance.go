package stats

import (
	"fmt"
	"math/big"
	"time"

	"privstats/internal/database"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// Private covariance over paired columns. The server holds two aligned
// columns X and Y (say, age and blood pressure per patient). The client
// privately selects a cohort and learns
//
//	cov(X, Y) = (m·Σxy − Σx·Σy) / m²
//
// over it. Three sums — Σx, Σy, Σxy — come from folding the SAME encrypted
// index vector against the X column, the Y column, and their element-wise
// product column, so the query costs one uplink and three response
// ciphertexts.

// PairedMoments holds the joint first moments of a selection over (X, Y).
type PairedMoments struct {
	// Count is m, the number of selected rows.
	Count int
	// SumX, SumY, SumXY are the selected Σx, Σy, Σx·y.
	SumX, SumY, SumXY *big.Int
	// Covariance is the exact population covariance.
	Covariance *big.Rat
}

// CovarianceQuery privately computes the joint moments of the selection
// over the paired tables. Both tables must have the selection's length.
func (a *Analyst) CovarianceQuery(x, y *database.Table, sel *database.Selection) (*PairedMoments, Cost, error) {
	if sel.Count() == 0 {
		return nil, Cost{}, ErrEmptySelection
	}
	if x.Len() != y.Len() {
		return nil, Cost{}, fmt.Errorf("stats: paired tables have %d and %d rows", x.Len(), y.Len())
	}
	if sel.Len() != x.Len() {
		return nil, Cost{}, fmt.Errorf("stats: selection length %d != table length %d", sel.Len(), x.Len())
	}
	pk := a.sk.PublicKey()
	n := x.Len()

	// Σxy over 32-bit pairs needs room for n·2⁶⁴, like Σx².
	bound := new(big.Int).Lsh(big.NewInt(int64(n)), 64)
	if bound.Cmp(pk.PlaintextSpace()) >= 0 {
		return nil, Cost{}, fmt.Errorf("stats: plaintext space too small for Σxy over %d rows", n)
	}

	prod, err := database.ProductColumn(x, y)
	if err != nil {
		return nil, Cost{}, err
	}
	sessions := make([]*selectedsum.ServerSession, 3)
	for i, col := range []database.Column{x.Column(), y.Column(), prod} {
		s, err := selectedsum.NewColumnSession(pk, col, uint64(n))
		if err != nil {
			return nil, Cost{}, err
		}
		sessions[i] = s
	}

	var enc selectedsum.BitEncryptor = selectedsum.Online{PK: pk}
	if a.pool != nil {
		enc = selectedsum.Pooled{Pool: a.pool}
	}
	chunkSize := a.chunkSize
	if chunkSize <= 0 || chunkSize > n {
		chunkSize = n
	}
	width := pk.CiphertextSize()

	start := time.Now()
	var bytesUp int64
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		body, err := selectedsum.EncryptRange(enc, sel, lo, hi, width)
		if err != nil {
			return nil, Cost{}, err
		}
		chunk := &wire.IndexChunk{Offset: uint64(lo), Ciphertexts: body, Width: width}
		payload := chunk.Encode()
		bytesUp += int64(wire.FrameOverhead + len(payload))
		decoded, err := wire.DecodeIndexChunk(payload, width)
		if err != nil {
			return nil, Cost{}, err
		}
		for _, s := range sessions {
			if err := s.Absorb(decoded); err != nil {
				return nil, Cost{}, err
			}
		}
	}

	sums := make([]*big.Int, 3)
	for i, s := range sessions {
		ct, err := s.Finalize(nil)
		if err != nil {
			return nil, Cost{}, err
		}
		v, err := a.sk.Decrypt(ct)
		if err != nil {
			return nil, Cost{}, fmt.Errorf("stats: decrypting paired sum %d: %w", i, err)
		}
		sums[i] = v
	}
	elapsed := time.Since(start)

	m := big.NewInt(int64(sel.Count()))
	// cov = (m·Σxy − Σx·Σy) / m²
	num := new(big.Int).Mul(m, sums[2])
	num.Sub(num, new(big.Int).Mul(sums[0], sums[1]))
	cov := new(big.Rat).SetFrac(num, new(big.Int).Mul(m, m))

	bytesDown := int64(3 * (wire.FrameOverhead + width))
	cost := Cost{
		Online:    elapsed + a.link.OneWayTime(bytesUp) + a.link.OneWayTime(bytesDown),
		BytesUp:   bytesUp,
		BytesDown: bytesDown,
	}
	return &PairedMoments{
		Count:      sel.Count(),
		SumX:       sums[0],
		SumY:       sums[1],
		SumXY:      sums[2],
		Covariance: cov,
	}, cost, nil
}
