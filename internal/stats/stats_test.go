package stats

import (
	"crypto/rand"
	"math"
	"math/big"
	"sync"
	"testing"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
)

var (
	tkOnce sync.Once
	tkKey  *paillier.PrivateKey
	tkErr  error
)

func testKey(t testing.TB) homomorphic.PrivateKey {
	t.Helper()
	tkOnce.Do(func() { tkKey, tkErr = paillier.KeyGen(rand.Reader, 256) })
	if tkErr != nil {
		t.Fatalf("KeyGen: %v", tkErr)
	}
	return paillier.SchemeKey{SK: tkKey}
}

func analyst(t *testing.T) *Analyst {
	t.Helper()
	a, err := NewAnalyst(testKey(t), Config{Link: netsim.ShortDistance})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// cleartextStats computes the oracle mean and variance of the selection.
func cleartextStats(table *database.Table, sel *database.Selection) (mean, variance float64) {
	var sum, sumSq, m float64
	for _, i := range sel.Indices() {
		v := float64(table.Value(i))
		sum += v
		sumSq += v * v
		m++
	}
	mean = sum / m
	variance = sumSq/m - mean*mean
	return mean, variance
}

func TestSumMatchesOracle(t *testing.T) {
	a := analyst(t)
	table, _ := database.Generate(80, database.DistSmall, 5)
	sel, _ := database.GenerateSelection(80, 33, database.PatternRandom, 6)
	want, _ := table.SelectedSum(sel)
	got, cost, err := a.Sum(table, sel)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if cost.BytesUp <= 0 || cost.BytesDown <= 0 || cost.Online <= 0 {
		t.Errorf("degenerate cost %+v", cost)
	}
}

func TestMeanExact(t *testing.T) {
	a := analyst(t)
	table := database.New([]uint32{10, 20, 30, 40})
	sel, _ := database.NewSelection(4)
	sel.Set(0)
	sel.Set(3) // mean (10+40)/2 = 25
	mean, _, err := a.Mean(table, sel)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Cmp(big.NewRat(25, 1)) != 0 {
		t.Errorf("mean = %v, want 25", mean)
	}
}

func TestMeanEmptySelection(t *testing.T) {
	a := analyst(t)
	table := database.New([]uint32{1, 2})
	sel, _ := database.NewSelection(2)
	if _, _, err := a.Mean(table, sel); err != ErrEmptySelection {
		t.Errorf("err = %v, want ErrEmptySelection", err)
	}
}

func TestMomentsExactSmall(t *testing.T) {
	a := analyst(t)
	// Values 2, 4, 6 selected: mean 4, variance (4+0+4)/3 = 8/3.
	table := database.New([]uint32{2, 99, 4, 6, 7})
	sel, _ := database.NewSelection(5)
	sel.Set(0)
	sel.Set(2)
	sel.Set(3)
	m, _, err := a.MomentsQuery(table, sel)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 3 {
		t.Errorf("count = %d", m.Count)
	}
	if m.Sum.Int64() != 12 || m.SumSquares.Int64() != 4+16+36 {
		t.Errorf("S=%v Q=%v", m.Sum, m.SumSquares)
	}
	if m.Mean.Cmp(big.NewRat(4, 1)) != 0 {
		t.Errorf("mean = %v", m.Mean)
	}
	if m.Variance.Cmp(big.NewRat(8, 3)) != 0 {
		t.Errorf("variance = %v, want 8/3", m.Variance)
	}
	want := math.Sqrt(8.0 / 3.0)
	if got := m.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", got, want)
	}
}

func TestMomentsMatchOracleRandom(t *testing.T) {
	a := analyst(t)
	table, _ := database.Generate(120, database.DistSmall, 21)
	sel, _ := database.GenerateSelection(120, 50, database.PatternRandom, 22)
	m, cost, err := a.MomentsQuery(table, sel)
	if err != nil {
		t.Fatal(err)
	}
	wantMean, wantVar := cleartextStats(table, sel)
	gotMean, _ := m.Mean.Float64()
	gotVar, _ := m.Variance.Float64()
	if math.Abs(gotMean-wantMean) > 1e-6*math.Max(1, wantMean) {
		t.Errorf("mean = %v, want %v", gotMean, wantMean)
	}
	if math.Abs(gotVar-wantVar) > 1e-6*math.Max(1, wantVar) {
		t.Errorf("variance = %v, want %v", gotVar, wantVar)
	}
	// One round: a single uplink, two response ciphertexts.
	width := int64(a.sk.PublicKey().CiphertextSize())
	if cost.BytesDown != 2*(5+width) {
		t.Errorf("BytesDown = %d, want %d", cost.BytesDown, 2*(5+width))
	}
}

func TestMomentsConstantValues(t *testing.T) {
	a := analyst(t)
	table, _ := database.Generate(30, database.DistConstant, 1)
	sel, _ := database.GenerateSelection(30, 10, database.PatternPrefix, 0)
	m, _, err := a.MomentsQuery(table, sel)
	if err != nil {
		t.Fatal(err)
	}
	if m.Variance.Sign() != 0 {
		t.Errorf("variance of constants = %v, want 0", m.Variance)
	}
	if m.StdDev() != 0 {
		t.Errorf("stddev = %v, want 0", m.StdDev())
	}
	if m.Mean.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("mean = %v, want 1", m.Mean)
	}
}

func TestMomentsSingleRow(t *testing.T) {
	a := analyst(t)
	table := database.New([]uint32{123456})
	sel, _ := database.NewSelection(1)
	sel.Set(0)
	m, _, err := a.MomentsQuery(table, sel)
	if err != nil {
		t.Fatal(err)
	}
	if m.Variance.Sign() != 0 {
		t.Errorf("variance of one row = %v", m.Variance)
	}
}

func TestMomentsMaxValuesNoOverflow(t *testing.T) {
	// Σx² with maximal 32-bit values must be exact.
	a := analyst(t)
	n := 20
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = 1<<32 - 1
	}
	table := database.New(vals)
	sel, _ := database.GenerateSelection(n, n, database.PatternPrefix, 0)
	m, _, err := a.MomentsQuery(table, sel)
	if err != nil {
		t.Fatal(err)
	}
	one := new(big.Int).SetUint64((1<<32 - 1))
	wantQ := new(big.Int).Mul(one, one)
	wantQ.Mul(wantQ, big.NewInt(int64(n)))
	if m.SumSquares.Cmp(wantQ) != 0 {
		t.Errorf("Q = %v, want %v", m.SumSquares, wantQ)
	}
	if m.Variance.Sign() != 0 {
		t.Errorf("variance = %v, want 0", m.Variance)
	}
}

func TestMomentsChunkedAndPooled(t *testing.T) {
	sk := testKey(t)
	store := paillier.NewBitStore(tkKey.Public())
	if err := store.Fill(100, 100); err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyst(sk, Config{
		Link:      netsim.LongDistance,
		ChunkSize: 16,
		Pool:      paillier.SchemeBitStore{Store: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	table, _ := database.Generate(100, database.DistSmall, 31)
	sel, _ := database.GenerateSelection(100, 40, database.PatternRandom, 32)
	m, _, err := a.MomentsQuery(table, sel)
	if err != nil {
		t.Fatal(err)
	}
	wantMean, _ := cleartextStats(table, sel)
	gotMean, _ := m.Mean.Float64()
	if math.Abs(gotMean-wantMean) > 1e-9*math.Max(1, wantMean) {
		t.Errorf("mean = %v, want %v", gotMean, wantMean)
	}
}

func TestAnalystValidation(t *testing.T) {
	if _, err := NewAnalyst(nil, Config{Link: netsim.ShortDistance}); err == nil {
		t.Error("nil key should fail")
	}
	if _, err := NewAnalyst(testKey(t), Config{}); err == nil {
		t.Error("zero link should fail")
	}
	a := analyst(t)
	table := database.New([]uint32{1, 2, 3})
	shortSel, _ := database.NewSelection(2)
	shortSel.Set(0)
	if _, _, err := a.MomentsQuery(table, shortSel); err == nil {
		t.Error("length mismatch should fail")
	}
	empty, _ := database.NewSelection(3)
	if _, _, err := a.MomentsQuery(table, empty); err != ErrEmptySelection {
		t.Errorf("err = %v, want ErrEmptySelection", err)
	}
	if _, _, err := a.Variance(table, empty); err != ErrEmptySelection {
		t.Errorf("Variance err = %v", err)
	}
}
