package stats

import (
	"math/big"
	"testing"

	"privstats/internal/database"
)

func TestGroupByExactSmall(t *testing.T) {
	a := analyst(t)
	// Rows:      0   1   2   3   4   5
	// Values:   10  20  30  40  50  60
	// Labels:    0   1   0   1   2   2
	// Selected:  x       x   x       x
	table := database.New([]uint32{10, 20, 30, 40, 50, 60})
	labels := []int{0, 1, 0, 1, 2, 2}
	sel, _ := database.NewSelection(6)
	for _, i := range []int{0, 2, 3, 5} {
		sel.Set(i)
	}
	g, cost, err := a.GroupByQuery(table, sel, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantSums := []int64{40, 40, 60}
	wantCounts := []int64{2, 1, 1}
	for i := range wantSums {
		if g.Sums[i].Int64() != wantSums[i] {
			t.Errorf("group %d sum = %v, want %d", i, g.Sums[i], wantSums[i])
		}
		if g.Counts[i].Int64() != wantCounts[i] {
			t.Errorf("group %d count = %v, want %d", i, g.Counts[i], wantCounts[i])
		}
	}
	if m := g.Mean(0); m.Cmp(big.NewRat(20, 1)) != 0 {
		t.Errorf("group 0 mean = %v, want 20", m)
	}
	if cost.BytesDown <= 0 || cost.BytesUp <= 0 {
		t.Errorf("degenerate cost %+v", cost)
	}
}

func TestGroupByEmptyGroupAndEmptySelection(t *testing.T) {
	a := analyst(t)
	table := database.New([]uint32{5, 6})
	labels := []int{0, 0} // group 1 exists but gets no rows at all
	sel, _ := database.NewSelection(2)
	g, _, err := a.GroupByQuery(table, sel, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if g.Sums[i].Sign() != 0 || g.Counts[i].Sign() != 0 {
			t.Errorf("group %d: sum=%v count=%v, want zeros", i, g.Sums[i], g.Counts[i])
		}
	}
	if g.Mean(0) != nil {
		t.Error("mean of empty group should be nil")
	}
	if g.Mean(5) != nil {
		t.Error("mean of out-of-range group should be nil")
	}
}

func TestGroupByMatchesOracle(t *testing.T) {
	a := analyst(t)
	const n, groups = 120, 5
	table, _ := database.Generate(n, database.DistSmall, 51)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % groups
	}
	sel, _ := database.GenerateSelection(n, 60, database.PatternRandom, 52)
	g, _, err := a.GroupByQuery(table, sel, labels, groups)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := make([]int64, groups)
	wantCount := make([]int64, groups)
	for _, i := range sel.Indices() {
		wantSum[labels[i]] += int64(table.Value(i))
		wantCount[labels[i]]++
	}
	for gi := 0; gi < groups; gi++ {
		if g.Sums[gi].Int64() != wantSum[gi] || g.Counts[gi].Int64() != wantCount[gi] {
			t.Errorf("group %d: (%v,%v), want (%d,%d)", gi, g.Sums[gi], g.Counts[gi], wantSum[gi], wantCount[gi])
		}
	}
}

func TestGroupByChunked(t *testing.T) {
	sk := testKey(t)
	a, err := NewAnalyst(sk, Config{Link: analyst(t).link, ChunkSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	table, _ := database.Generate(50, database.DistSmall, 61)
	labels := make([]int, 50)
	for i := range labels {
		labels[i] = i / 25
	}
	sel, _ := database.GenerateSelection(50, 20, database.PatternRandom, 62)
	g, _, err := a.GroupByQuery(table, sel, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := new(big.Int).Add(g.Sums[0], g.Sums[1])
	want, _ := table.SelectedSum(sel)
	if total.Cmp(want) != 0 {
		t.Errorf("group sums total %v != selected sum %v", total, want)
	}
}

func TestGroupByValidation(t *testing.T) {
	a := analyst(t)
	table := database.New([]uint32{1, 2})
	sel, _ := database.NewSelection(2)
	if _, _, err := a.GroupByQuery(table, sel, []int{0}, 1); err == nil {
		t.Error("short labels should fail")
	}
	if _, _, err := a.GroupByQuery(table, sel, []int{0, 5}, 2); err == nil {
		t.Error("out-of-range label should fail")
	}
	if _, _, err := a.GroupByQuery(table, sel, []int{0, 0}, 0); err == nil {
		t.Error("zero groups should fail")
	}
	badSel, _ := database.NewSelection(3)
	if _, _, err := a.GroupByQuery(table, badSel, []int{0, 0}, 1); err == nil {
		t.Error("selection mismatch should fail")
	}
}
