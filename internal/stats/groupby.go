package stats

import (
	"fmt"
	"math/big"
	"time"

	"privstats/internal/database"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// GroupedSums is a private GROUP BY: the client's secret selection is
// aggregated per public stratum (the server's group labels) in one protocol
// round. One uplink of the encrypted index vector produces both the
// per-group sums of the value column and the per-group selected counts (the
// count fold runs against a constant-1 column), so the client can derive
// per-group means too.
type GroupedSums struct {
	// Sums[g] is Σ x_i over selected rows with label g; Counts[g] the
	// number of selected rows in g.
	Sums   []*big.Int
	Counts []*big.Int
}

// Mean returns the exact mean of group g, or nil when the group has no
// selected rows.
func (g *GroupedSums) Mean(group int) *big.Rat {
	if group < 0 || group >= len(g.Sums) || g.Counts[group].Sign() == 0 {
		return nil
	}
	return new(big.Rat).SetFrac(g.Sums[group], g.Counts[group])
}

// GroupByQuery privately computes per-group sums and counts of the selected
// rows. labels[i] assigns row i to a group in [0, groups); the labels are
// the server's public schema.
func (a *Analyst) GroupByQuery(table *database.Table, sel *database.Selection, labels []int, groups int) (*GroupedSums, Cost, error) {
	if sel.Len() != table.Len() {
		return nil, Cost{}, fmt.Errorf("stats: selection length %d != table length %d", sel.Len(), table.Len())
	}
	pk := a.sk.PublicKey()
	n := table.Len()

	sumSession, err := selectedsum.NewGroupedSession(pk, table.Column(), labels, groups)
	if err != nil {
		return nil, Cost{}, err
	}
	countSession, err := selectedsum.NewGroupedSession(pk, database.Ones(n), labels, groups)
	if err != nil {
		return nil, Cost{}, err
	}

	var enc selectedsum.BitEncryptor = selectedsum.Online{PK: pk}
	if a.pool != nil {
		enc = selectedsum.Pooled{Pool: a.pool}
	}
	chunkSize := a.chunkSize
	if chunkSize <= 0 || chunkSize > n {
		chunkSize = n
	}
	width := pk.CiphertextSize()

	start := time.Now()
	var bytesUp int64
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		body, err := selectedsum.EncryptRange(enc, sel, lo, hi, width)
		if err != nil {
			return nil, Cost{}, err
		}
		chunk := &wire.IndexChunk{Offset: uint64(lo), Ciphertexts: body, Width: width}
		payload := chunk.Encode()
		bytesUp += int64(wire.FrameOverhead + len(payload))
		decoded, err := wire.DecodeIndexChunk(payload, width)
		if err != nil {
			return nil, Cost{}, err
		}
		if err := sumSession.Absorb(decoded); err != nil {
			return nil, Cost{}, err
		}
		if err := countSession.Absorb(decoded); err != nil {
			return nil, Cost{}, err
		}
	}

	sumCts, err := sumSession.Finalize()
	if err != nil {
		return nil, Cost{}, err
	}
	countCts, err := countSession.Finalize()
	if err != nil {
		return nil, Cost{}, err
	}
	out := &GroupedSums{
		Sums:   make([]*big.Int, groups),
		Counts: make([]*big.Int, groups),
	}
	for g := 0; g < groups; g++ {
		if out.Sums[g], err = a.sk.Decrypt(sumCts[g]); err != nil {
			return nil, Cost{}, fmt.Errorf("stats: decrypting group %d sum: %w", g, err)
		}
		if out.Counts[g], err = a.sk.Decrypt(countCts[g]); err != nil {
			return nil, Cost{}, fmt.Errorf("stats: decrypting group %d count: %w", g, err)
		}
	}
	elapsed := time.Since(start)

	bytesDown := int64(2 * groups * (wire.FrameOverhead + width))
	cost := Cost{
		Online:    elapsed + a.link.OneWayTime(bytesUp) + a.link.OneWayTime(bytesDown),
		BytesUp:   bytesUp,
		BytesDown: bytesDown,
	}
	return out, cost, nil
}
