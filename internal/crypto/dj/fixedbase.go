package dj

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"sync"

	"privstats/internal/homomorphic"
	"privstats/internal/mathx"
)

// Fixed-base acceleration of the Damgård–Jurik randomizer.
//
// The expensive half of an encryption is the randomizer r^(n^s) mod n^(s+1):
// a fresh base under a fixed exponent, which no fixed-base table can serve.
// Damgård & Jurik's own remark (§4.2 of the PKC 2001 paper) gives the dual
// form: fix a single unit h, publish γ = h^(n^s) mod n^(s+1), and randomize
// with γ^t for t drawn from an interval comfortably larger than ord(γ). Now
// the base is fixed and the per-encryption work is one table-driven
// mathx.FixedBaseExp walk — ~w-fold fewer multiplications than
// square-and-multiply.
//
// Correctness is unconditional: for ANY unit h, γ^(t·λ) = h^(t·n^s·λ) = 1
// mod n^(s+1), because n^s·λ(n) is an exponent of the whole group Z*_{n^(s+1)}
// (its order is n^s·φ(n) and its exponent divides n^s·λ(n)). So Decrypt's
// c^λ step erases the randomizer exactly as it erases r^(n^s), and fixed-base
// and naive ciphertexts interoperate freely under Add/ScalarMul.
//
// Distribution DOES change: γ^t ranges over the cyclic subgroup ⟨γ⟩ rather
// than the full group of n^s-th powers, so this is the scheme variant of the
// paper's §4.2, not a bit-identical drop-in. t carries randomizerSlack extra
// bits over |n| ≥ |ord(γ)| bits so its reduction mod ord(γ) is statistically
// close to uniform over the subgroup. h is pinned to the deterministic value
// n-4 (a unit: gcd(n-4, n) = gcd(4, n) = 1 for odd n), so marshalled keys
// need no new fields — both sides derive the same γ. DESIGN.md §16 records
// the trade-off; differential tests pin interop against the stripped oracle
// from WithoutFixedBase.

const (
	// fixedBaseWindow is the radix-2^w window of the randomizer table; 6 is
	// the sweet spot for the 512–1600 bit exponents the bench grid uses.
	fixedBaseWindow = 6
	// randomizerSlack is how many bits beyond |n| the exponent t carries so
	// that t mod ord(γ) is within 2^-64 statistical distance of uniform.
	randomizerSlack = 64
)

// djFixedBase is the lazily built table state. It hangs off PublicKey by
// pointer so copying the key struct (PrivateKey embeds PublicKey by value)
// shares the table and never copies the sync.Once.
type djFixedBase struct {
	once sync.Once
	tab  *mathx.FixedBaseExp
	// tLimit = 2^(|n| + randomizerSlack), the exclusive upper bound of t.
	tLimit *big.Int
	err    error
}

// build precomputes the γ table. Called at most once per key, on the first
// Encrypt/Rerandomize, so parse-only consumers (servers that just Add and
// fold) never pay for it.
func (pk *PublicKey) buildFixedBase() {
	fb := pk.fb
	tBits := pk.N.BitLen() + randomizerSlack
	fb.tLimit = new(big.Int).Lsh(mathx.One, uint(tBits))
	h := new(big.Int).Sub(pk.N, big.NewInt(4))
	gamma := new(big.Int).Exp(h, pk.PlaintextModulus(), pk.CiphertextModulus())
	fb.tab, fb.err = mathx.NewFixedBaseExp(gamma, pk.CiphertextModulus(), tBits, fixedBaseWindow)
}

// randomizer returns a fresh encryption randomizer: γ^t through the
// fixed-base table when available, r^(n^s) otherwise.
func (pk *PublicKey) randomizer() (*big.Int, error) {
	if pk.fb != nil {
		pk.fb.once.Do(pk.buildFixedBase)
		if pk.fb.err == nil {
			t, err := mathx.RandInt(rand.Reader, pk.fb.tLimit)
			if err != nil {
				return nil, fmt.Errorf("dj: sampling randomizer exponent: %w", err)
			}
			return pk.fb.tab.Exp(t)
		}
	}
	r, err := mathx.RandUnit(rand.Reader, pk.N)
	if err != nil {
		return nil, fmt.Errorf("dj: sampling nonce: %w", err)
	}
	return new(big.Int).Exp(r, pk.PlaintextModulus(), pk.CiphertextModulus()), nil
}

// WithoutFixedBase implements homomorphic.FixedBased: it returns an
// equivalent key whose Encrypt takes the naive r^(n^s) path — the oracle
// side of the fixed-base differential tests.
func (pk *PublicKey) WithoutFixedBase() homomorphic.PublicKey {
	stripped := *pk
	stripped.fb = nil
	return &stripped
}

var _ homomorphic.FixedBased = (*PublicKey)(nil)
