package dj

import (
	"crypto/rand"
	"math/big"
	"testing"

	"privstats/internal/homomorphic"
	"privstats/internal/mathx"
)

// The γ^t randomizer is not bit-compatible with r^(n^s) (it randomizes over
// a subgroup — see fixedbase.go), so the differential tests here pin what is
// guaranteed: exact decryption, free interop between fixed-base and stripped
// ciphertexts under the homomorphic operations, and acceleration surviving a
// marshal/parse round trip.

func TestFixedBaseRoundTripAllS(t *testing.T) {
	for _, s := range []int{1, 2, 3} {
		sk := keyFor(t, 128, s)
		pk := sk.Public()
		if pk.fb == nil {
			t.Fatalf("s=%d: generated key is missing the fixed-base state", s)
		}
		for i := 0; i < 10; i++ {
			m, err := mathx.RandInt(rand.Reader, pk.PlaintextModulus())
			if err != nil {
				t.Fatal(err)
			}
			ct, err := pk.Encrypt(m)
			if err != nil {
				t.Fatalf("s=%d: fixed-base Encrypt: %v", s, err)
			}
			got, err := sk.Decrypt(ct)
			if err != nil {
				t.Fatalf("s=%d: Decrypt: %v", s, err)
			}
			if got.Cmp(m) != 0 {
				t.Fatalf("s=%d: fixed-base round trip %v != %v", s, got, m)
			}
		}
	}
}

func TestFixedBaseInteropWithStripped(t *testing.T) {
	sk := keyFor(t, 128, 2)
	pk := sk.Public()
	naive := homomorphic.WithoutFixedBase(pk)
	if npk, ok := naive.(*PublicKey); !ok || npk.fb != nil {
		t.Fatalf("WithoutFixedBase did not strip the table state (%T)", naive)
	}
	fast, err := pk.Encrypt(big.NewInt(41))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := naive.Encrypt(big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := pk.Add(fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Fatalf("fixed-base × naive sum decrypts to %v, want 42", got)
	}
	// ScalarMul and Rerandomize must also act on fixed-base ciphertexts.
	tripled, err := pk.ScalarMul(fast, big.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	re, err := pk.Rerandomize(tripled)
	if err != nil {
		t.Fatal(err)
	}
	got, err = sk.Decrypt(re)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 123 {
		t.Fatalf("rerandomized triple decrypts to %v, want 123", got)
	}
}

func TestParsedKeyKeepsFixedBase(t *testing.T) {
	sk := keyFor(t, 128, 1)
	raw, err := sk.Public().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePublicKey(raw)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.fb == nil {
		t.Fatal("parsed key is missing the fixed-base state")
	}
	if _, ok := interface{}(parsed).(homomorphic.FixedBased); !ok {
		t.Fatal("parsed key does not expose the FixedBased capability")
	}
	ct, err := parsed.Encrypt(big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 7 {
		t.Fatalf("ciphertext from parsed key decrypts to %v, want 7", got)
	}
}
