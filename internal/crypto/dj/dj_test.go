package dj

import (
	"crypto/rand"
	"math/big"
	"testing"

	"privstats/internal/database"
	"privstats/internal/mathx"
	"privstats/internal/netsim"
	"privstats/internal/selectedsum"
)

func keyFor(t testing.TB, bits, s int) *PrivateKey {
	t.Helper()
	sk, err := KeyGen(rand.Reader, bits, s)
	if err != nil {
		t.Fatalf("KeyGen(%d,%d): %v", bits, s, err)
	}
	return sk
}

func TestKeyGenValidation(t *testing.T) {
	if _, err := KeyGen(rand.Reader, 128, 0); err == nil {
		t.Error("s=0 should fail")
	}
	if _, err := KeyGen(rand.Reader, 128, MaxS+1); err == nil {
		t.Error("s too large should fail")
	}
	if _, err := KeyGen(rand.Reader, 32, 1); err == nil {
		t.Error("tiny modulus should fail")
	}
	if _, err := KeyGen(rand.Reader, 127, 1); err == nil {
		t.Error("odd modulus bits should fail")
	}
}

func TestRoundTripAllS(t *testing.T) {
	for _, s := range []int{1, 2, 3} {
		sk := keyFor(t, 128, s)
		pk := sk.Public()
		for i := 0; i < 20; i++ {
			m, err := mathx.RandInt(rand.Reader, pk.PlaintextModulus())
			if err != nil {
				t.Fatal(err)
			}
			ct, err := pk.Encrypt(m)
			if err != nil {
				t.Fatalf("s=%d: Encrypt: %v", s, err)
			}
			got, err := sk.Decrypt(ct)
			if err != nil {
				t.Fatalf("s=%d: Decrypt: %v", s, err)
			}
			if got.Cmp(m) != 0 {
				t.Fatalf("s=%d: round trip %v != %v", s, got, m)
			}
		}
	}
}

func TestPlaintextSpaceGrowsWithS(t *testing.T) {
	sk1 := keyFor(t, 128, 1)
	sk3 := keyFor(t, 128, 3)
	if sk1.PlaintextModulus().BitLen() >= sk3.PlaintextModulus().BitLen() {
		t.Errorf("s=3 plaintext space (%d bits) should exceed s=1 (%d bits)",
			sk3.PlaintextModulus().BitLen(), sk1.PlaintextModulus().BitLen())
	}
	// A message that overflows s=1 fits s=3.
	big1 := new(big.Int).Lsh(mathx.One, 200)
	if _, err := sk1.Public().Encrypt(big1); err == nil {
		t.Error("200-bit message should not fit 128-bit s=1 plaintext space")
	}
	ct, err := sk3.Public().Encrypt(big1)
	if err != nil {
		t.Fatalf("200-bit message should fit s=3: %v", err)
	}
	got, err := sk3.Decrypt(ct)
	if err != nil || got.Cmp(big1) != 0 {
		t.Errorf("s=3 round trip of 2^200: %v (err %v)", got, err)
	}
}

func TestHomomorphism(t *testing.T) {
	sk := keyFor(t, 128, 2)
	pk := sk.Public()
	a, b := big.NewInt(123456789), big.NewInt(987654321)
	ca, err := pk.Encrypt(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := pk.Encrypt(b)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := pk.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 123456789+987654321 {
		t.Errorf("sum = %v", got)
	}
	scaled, err := pk.ScalarMul(ca, big.NewInt(1000))
	if err != nil {
		t.Fatal(err)
	}
	got, err = sk.Decrypt(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 123456789000 {
		t.Errorf("scaled = %v", got)
	}
}

func TestEncryptionRandomizedAndRerandomize(t *testing.T) {
	sk := keyFor(t, 128, 2)
	pk := sk.Public()
	m := big.NewInt(42)
	a, _ := pk.Encrypt(m)
	b, _ := pk.Encrypt(m)
	if string(a.Bytes()) == string(b.Bytes()) {
		t.Fatal("deterministic encryption")
	}
	fresh, err := pk.Rerandomize(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(fresh.Bytes()) == string(a.Bytes()) {
		t.Error("rerandomize returned the same bytes")
	}
	got, err := sk.Decrypt(fresh)
	if err != nil || got.Int64() != 42 {
		t.Errorf("rerandomized = %v (err %v)", got, err)
	}
}

func TestParseCiphertextValidation(t *testing.T) {
	sk := keyFor(t, 128, 1)
	pk := sk.Public()
	ct, _ := pk.Encrypt(big.NewInt(5))
	back, err := pk.ParseCiphertext(ct.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(back)
	if err != nil || got.Int64() != 5 {
		t.Errorf("parsed = %v (err %v)", got, err)
	}
	if _, err := pk.ParseCiphertext([]byte{1}); err == nil {
		t.Error("short ciphertext should fail")
	}
	if _, err := pk.ParseCiphertext(make([]byte, pk.CiphertextSize())); err == nil {
		t.Error("zero ciphertext should fail")
	}
}

func TestKeyMarshalRoundTrip(t *testing.T) {
	sk := keyFor(t, 128, 3)
	b, err := sk.Public().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := ParsePublicKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if pk2.S != 3 || pk2.N.Cmp(sk.N) != 0 {
		t.Fatal("key fields corrupted")
	}
	ct, err := pk2.Encrypt(big.NewInt(777))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil || got.Int64() != 777 {
		t.Errorf("cross decrypt = %v (err %v)", got, err)
	}
	if _, err := ParsePublicKey(b[:5]); err == nil {
		t.Error("truncated key should fail")
	}
	bad := append([]byte{}, b...)
	bad[0] ^= 0xFF
	if _, err := ParsePublicKey(bad); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestSelectedSumRunsOverDJ(t *testing.T) {
	// The whole protocol stack must work unchanged over Damgård–Jurik.
	sk := keyFor(t, 128, 2)
	table, err := database.Generate(40, database.DistSmall, 5)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := database.GenerateSelection(40, 17, database.PatternRandom, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := table.SelectedSum(sel)
	res, err := selectedsum.Run(PrivKey{SK: sk}, table, sel, selectedsum.Options{Link: netsim.ShortDistance})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Cmp(want) != 0 {
		t.Errorf("DJ selected sum = %v, want %v", res.Sum, want)
	}
}

func TestDecryptRejectsForeign(t *testing.T) {
	sk := keyFor(t, 128, 1)
	if _, err := sk.Decrypt(nil); err == nil {
		t.Error("nil ciphertext should fail")
	}
}
