package dj

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Public-key wire encoding: magic, version, s, then n.
const (
	keyMagic   = "PSDJ"
	keyVersion = 1
)

// MarshalBinary implements homomorphic.PublicKey.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	if pk.N == nil || pk.N.Sign() <= 0 {
		return nil, errors.New("dj: cannot marshal zero key")
	}
	raw := pk.N.Bytes()
	b := make([]byte, 0, 16+len(raw))
	b = append(b, keyMagic...)
	b = binary.BigEndian.AppendUint32(b, keyVersion)
	b = binary.BigEndian.AppendUint32(b, uint32(pk.S))
	b = binary.BigEndian.AppendUint32(b, uint32(len(raw)))
	return append(b, raw...), nil
}

// ParsePublicKey decodes a key written by MarshalBinary.
func ParsePublicKey(data []byte) (*PublicKey, error) {
	if len(data) < 16 {
		return nil, errors.New("dj: truncated public key")
	}
	if string(data[:4]) != keyMagic {
		return nil, fmt.Errorf("dj: bad key magic %q", data[:4])
	}
	if v := binary.BigEndian.Uint32(data[4:]); v != keyVersion {
		return nil, fmt.Errorf("dj: unsupported key version %d", v)
	}
	s := binary.BigEndian.Uint32(data[8:])
	nLen := binary.BigEndian.Uint32(data[12:])
	if uint32(len(data)-16) != nLen {
		return nil, errors.New("dj: key length mismatch")
	}
	n := new(big.Int).SetBytes(data[16:])
	if n.BitLen() < 64 {
		return nil, fmt.Errorf("dj: modulus too small (%d bits)", n.BitLen())
	}
	return newPublicKey(n, int(s))
}
