package dj

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// Per-operation costs across the expansion parameter s: the arithmetic
// lives in Z_{n^(s+1)}, so costs grow superlinearly in s while the
// plaintext capacity grows linearly — the trade the E9 ablation quantifies.

func benchKey(b *testing.B, s int) *PrivateKey {
	b.Helper()
	sk, err := KeyGen(rand.Reader, 512, s)
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

func BenchmarkEncryptS1(b *testing.B) { benchEncrypt(b, 1) }
func BenchmarkEncryptS2(b *testing.B) { benchEncrypt(b, 2) }
func BenchmarkEncryptS3(b *testing.B) { benchEncrypt(b, 3) }

func benchEncrypt(b *testing.B, s int) {
	sk := benchKey(b, s)
	m := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Public().Encrypt(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptS1(b *testing.B) { benchDecrypt(b, 1) }
func BenchmarkDecryptS2(b *testing.B) { benchDecrypt(b, 2) }

func benchDecrypt(b *testing.B, s int) {
	sk := benchKey(b, s)
	ct, err := sk.Public().Encrypt(big.NewInt(987654321))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarMul32BitS2(b *testing.B) {
	sk := benchKey(b, 2)
	pk := sk.Public()
	ct, err := pk.Encrypt(big.NewInt(1))
	if err != nil {
		b.Fatal(err)
	}
	x := big.NewInt(0xDEADBEEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.ScalarMul(ct, x); err != nil {
			b.Fatal(err)
		}
	}
}
