// Package dj implements the Damgård–Jurik generalization of the Paillier
// cryptosystem (Damgård & Jurik, PKC 2001): ciphertexts live in Z*_{n^(s+1)}
// and the plaintext space is Z_{n^s} for a chosen s ≥ 1. s = 1 is exactly
// Paillier.
//
// In this repository the scheme serves the design-space ablation
// (experiment E9 family in DESIGN.md): a larger plaintext space per
// ciphertext changes the bytes-per-plaintext-bit ratio of the selected-sum
// protocol, at the cost of arithmetic over a larger ring. It implements the
// same homomorphic.PublicKey/PrivateKey interfaces as Paillier, so the
// whole protocol stack runs unchanged on top of it.
package dj

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"privstats/internal/homomorphic"
	"privstats/internal/mathx"
)

// SchemeID is the registry name of this cryptosystem ("dj<s>" is announced
// per key; the registry entry covers the family).
const SchemeID = "damgard-jurik"

// MaxS bounds the ciphertext expansion; beyond a handful of levels the
// arithmetic cost grows cubically and nothing in this repository needs it.
const MaxS = 8

func init() {
	homomorphic.Register(SchemeID, func(keyBytes []byte) (homomorphic.PublicKey, error) {
		pk, err := ParsePublicKey(keyBytes)
		if err != nil {
			return nil, err
		}
		return pk, nil
	})
}

// PublicKey holds n and the precomputed powers n^1..n^(s+1).
type PublicKey struct {
	N *big.Int
	S int

	// npow[i] = N^(i+1); npow[S] is the ciphertext modulus n^(s+1) and
	// npow[S-1] is the plaintext modulus n^s.
	npow    []*big.Int
	byteLen int

	// fb holds the lazily built fixed-base randomizer table (fixedbase.go).
	// nil strips the acceleration; a pointer so key copies share one table.
	fb *djFixedBase
}

// PrivateKey adds the factorization and λ.
type PrivateKey struct {
	PublicKey
	P, Q   *big.Int
	Lambda *big.Int
	// lambdaInv = λ^-1 mod n^s.
	lambdaInv *big.Int
}

// KeyGen generates a key with a modulus of modulusBits bits and expansion
// parameter s.
func KeyGen(r io.Reader, modulusBits, s int) (*PrivateKey, error) {
	if s < 1 || s > MaxS {
		return nil, fmt.Errorf("dj: s must be in [1,%d], got %d", MaxS, s)
	}
	if modulusBits < 64 || modulusBits%2 != 0 {
		return nil, fmt.Errorf("dj: modulus bits must be even and >= 64, got %d", modulusBits)
	}
	p, q, err := mathx.GeneratePrimePair(r, modulusBits/2)
	if err != nil {
		return nil, fmt.Errorf("dj: generating primes: %w", err)
	}
	return newPrivateKey(p, q, s)
}

func newPrivateKey(p, q *big.Int, s int) (*PrivateKey, error) {
	n := new(big.Int).Mul(p, q)
	pk, err := newPublicKey(n, s)
	if err != nil {
		return nil, err
	}
	lambda := mathx.Lcm(new(big.Int).Sub(p, mathx.One), new(big.Int).Sub(q, mathx.One))
	lambdaInv, err := mathx.ModInverse(new(big.Int).Mod(lambda, pk.PlaintextModulus()), pk.PlaintextModulus())
	if err != nil {
		return nil, fmt.Errorf("dj: λ not invertible mod n^s: %w", err)
	}
	return &PrivateKey{
		PublicKey: *pk,
		P:         p,
		Q:         q,
		Lambda:    lambda,
		lambdaInv: lambdaInv,
	}, nil
}

func newPublicKey(n *big.Int, s int) (*PublicKey, error) {
	if s < 1 || s > MaxS {
		return nil, fmt.Errorf("dj: s must be in [1,%d], got %d", MaxS, s)
	}
	pk := &PublicKey{N: new(big.Int).Set(n), S: s, npow: make([]*big.Int, s+1)}
	acc := new(big.Int).Set(n)
	for i := 0; i <= s; i++ {
		if i > 0 {
			acc = new(big.Int).Mul(acc, n)
		}
		pk.npow[i] = acc
	}
	pk.byteLen = (pk.npow[s].BitLen() + 7) / 8
	pk.fb = &djFixedBase{}
	return pk, nil
}

// CiphertextModulus returns n^(s+1).
func (pk *PublicKey) CiphertextModulus() *big.Int { return pk.npow[pk.S] }

// PlaintextModulus returns n^s.
func (pk *PublicKey) PlaintextModulus() *big.Int { return pk.npow[pk.S-1] }

// Ciphertext is an element of Z*_{n^(s+1)}.
type Ciphertext struct {
	c       *big.Int
	byteLen int
}

// Bytes implements homomorphic.Ciphertext.
func (ct *Ciphertext) Bytes() []byte { return ct.c.FillBytes(make([]byte, ct.byteLen)) }

// onePlusNPow computes (1+n)^m mod n^(s+1) via the binomial theorem:
// Σ_{k=0..s} C(m,k)·n^k, since n^(s+1) kills all higher terms. This is
// much cheaper than a generic Exp for large s.
func (pk *PublicKey) onePlusNPow(m *big.Int) *big.Int {
	mod := pk.CiphertextModulus()
	result := big.NewInt(1)
	term := big.NewInt(1) // C(m,k)·n^k mod n^(s+1)
	mk := new(big.Int)
	for k := int64(1); k <= int64(pk.S); k++ {
		// term *= (m - k + 1) · n · k^-1, all mod n^(s+1). k is coprime to
		// n^(s+1) (n's prime factors are huge), so the inverse exists; a
		// plain integer division would be wrong once term has been reduced.
		mk.Sub(m, big.NewInt(k-1))
		mk.Mod(mk, mod)
		term.Mul(term, mk)
		term.Mod(term, mod)
		term.Mul(term, pk.N)
		term.Mod(term, mod)
		invK := new(big.Int).ModInverse(big.NewInt(k), mod)
		term.Mul(term, invK)
		term.Mod(term, mod)
		result.Add(result, term)
		result.Mod(result, mod)
	}
	return result
}

// Encrypt returns a randomized encryption of m ∈ [0, n^s).
func (pk *PublicKey) Encrypt(m *big.Int) (homomorphic.Ciphertext, error) {
	if m == nil || m.Sign() < 0 || m.Cmp(pk.PlaintextModulus()) >= 0 {
		return nil, fmt.Errorf("dj: message outside [0, n^%d)", pk.S)
	}
	// c = (1+n)^m · rand mod n^(s+1), where rand is γ^t through the
	// fixed-base table when built, and r^(n^s) on the stripped path.
	rs, err := pk.randomizer()
	if err != nil {
		return nil, err
	}
	mod := pk.CiphertextModulus()
	c := pk.onePlusNPow(m)
	c.Mul(c, rs)
	c.Mod(c, mod)
	return &Ciphertext{c: c, byteLen: pk.byteLen}, nil
}

// Decrypt recovers m.
func (sk *PrivateKey) Decrypt(c homomorphic.Ciphertext) (*big.Int, error) {
	ct, err := sk.asDJ(c)
	if err != nil {
		return nil, err
	}
	mod := sk.CiphertextModulus()
	// u = c^λ = (1+n)^(m·λ mod n^s)
	u := new(big.Int).Exp(ct.c, sk.Lambda, mod)
	e, err := sk.recoverExponent(u)
	if err != nil {
		return nil, err
	}
	m := e.Mul(e, sk.lambdaInv)
	return m.Mod(m, sk.PlaintextModulus()), nil
}

// recoverExponent solves u = (1+n)^x mod n^(s+1) for x mod n^s using the
// Damgård–Jurik extraction algorithm: peel one n-adic digit layer per
// iteration, subtracting the binomial cross terms contributed by the
// already-known lower part.
func (pk *PublicKey) recoverExponent(u *big.Int) (*big.Int, error) {
	n := pk.N
	x := new(big.Int) // known value of the exponent mod n^(j-1)
	for j := 1; j <= pk.S; j++ {
		nj := pk.npow[j-1] // n^j
		njp1 := pk.npow[j] // n^(j+1)
		uj := new(big.Int).Mod(u, njp1)
		t1, err := mathx.L(uj, n)
		if err != nil {
			return nil, fmt.Errorf("dj: extraction layer %d: %w", j, err)
		}
		t1.Mod(t1, nj)
		// Subtract Σ_{k=2..j} C(x,k)·n^(k-1) mod n^j.
		t2 := new(big.Int).Set(x) // falling factorial x(x-1)...(x-k+1)
		xi := new(big.Int).Set(x) // x - (k-1)
		kfact := big.NewInt(1)
		npow := big.NewInt(1) // n^(k-1)
		for k := int64(2); k <= int64(j); k++ {
			xi.Sub(xi, mathx.One)
			t2.Mul(t2, xi)
			t2.Mod(t2, nj)
			kfact.Mul(kfact, big.NewInt(k))
			npow.Mul(npow, n)
			invFact, err := mathx.ModInverse(new(big.Int).Mod(kfact, nj), nj)
			if err != nil {
				return nil, fmt.Errorf("dj: k! not invertible mod n^%d: %w", j, err)
			}
			term := new(big.Int).Mul(t2, npow)
			term.Mod(term, nj)
			term.Mul(term, invFact)
			term.Mod(term, nj)
			t1.Sub(t1, term)
			t1.Mod(t1, nj)
		}
		x = t1
	}
	return x, nil
}

func (pk *PublicKey) asDJ(c homomorphic.Ciphertext) (*Ciphertext, error) {
	ct, ok := c.(*Ciphertext)
	if !ok {
		return nil, fmt.Errorf("dj: foreign ciphertext type %T", c)
	}
	if ct.c == nil || ct.c.Sign() <= 0 || ct.c.Cmp(pk.CiphertextModulus()) >= 0 {
		return nil, errors.New("dj: ciphertext outside (0, n^(s+1))")
	}
	return ct, nil
}

// Add implements homomorphic.PublicKey.
func (pk *PublicKey) Add(a, b homomorphic.Ciphertext) (homomorphic.Ciphertext, error) {
	ca, err := pk.asDJ(a)
	if err != nil {
		return nil, err
	}
	cb, err := pk.asDJ(b)
	if err != nil {
		return nil, err
	}
	c := new(big.Int).Mul(ca.c, cb.c)
	c.Mod(c, pk.CiphertextModulus())
	return &Ciphertext{c: c, byteLen: pk.byteLen}, nil
}

// ScalarMul implements homomorphic.PublicKey.
func (pk *PublicKey) ScalarMul(c homomorphic.Ciphertext, k *big.Int) (homomorphic.Ciphertext, error) {
	ct, err := pk.asDJ(c)
	if err != nil {
		return nil, err
	}
	if k == nil {
		return nil, errors.New("dj: nil scalar")
	}
	km := new(big.Int).Mod(k, pk.PlaintextModulus())
	out := new(big.Int).Exp(ct.c, km, pk.CiphertextModulus())
	return &Ciphertext{c: out, byteLen: pk.byteLen}, nil
}

// Rerandomize implements homomorphic.PublicKey.
func (pk *PublicKey) Rerandomize(c homomorphic.Ciphertext) (homomorphic.Ciphertext, error) {
	zero, err := pk.Encrypt(new(big.Int))
	if err != nil {
		return nil, err
	}
	return pk.Add(c, zero)
}

// PlaintextSpace implements homomorphic.PublicKey.
func (pk *PublicKey) PlaintextSpace() *big.Int { return new(big.Int).Set(pk.PlaintextModulus()) }

// CiphertextSize implements homomorphic.PublicKey.
func (pk *PublicKey) CiphertextSize() int { return pk.byteLen }

// SchemeName implements homomorphic.PublicKey.
func (pk *PublicKey) SchemeName() string { return SchemeID }

// ParseCiphertext implements homomorphic.PublicKey.
func (pk *PublicKey) ParseCiphertext(b []byte) (homomorphic.Ciphertext, error) {
	if len(b) != pk.byteLen {
		return nil, fmt.Errorf("dj: ciphertext is %d bytes, want %d", len(b), pk.byteLen)
	}
	ct := &Ciphertext{c: new(big.Int).SetBytes(b), byteLen: pk.byteLen}
	return pk.asDJ(ct)
}

// PublicKey implements homomorphic.PrivateKey.
func (sk *PrivateKey) Public() *PublicKey { return &sk.PublicKey }

// PrivKey adapts *PrivateKey to homomorphic.PrivateKey.
type PrivKey struct{ SK *PrivateKey }

var (
	_ homomorphic.PublicKey  = (*PublicKey)(nil)
	_ homomorphic.PrivateKey = PrivKey{}
)

// PublicKey implements homomorphic.PrivateKey.
func (k PrivKey) PublicKey() homomorphic.PublicKey { return k.SK.Public() }

// Decrypt implements homomorphic.PrivateKey.
func (k PrivKey) Decrypt(c homomorphic.Ciphertext) (*big.Int, error) { return k.SK.Decrypt(c) }
