package elgamal

import (
	"sync"

	"math/big"

	"privstats/internal/homomorphic"
	"privstats/internal/mathx"
)

// Fixed-base acceleration of exponential-ElGamal encryption.
//
// Every encryption is three exponentiations over exactly two fixed bases —
// g^r, h^r and g^m — with exponents bounded by q. That is the textbook
// fixed-base workload, so the key carries two lazily built
// mathx.FixedBaseExp tables (one per base). Unlike the Damgård–Jurik
// variant, the accelerated path is bit-identical to the naive one for every
// (m, r): the table computes the very same g^r mod p, so the differential
// test can pin equal ciphertexts under a shared nonce rather than settle
// for decrypt-level equivalence.

// egFixedBaseWindow is the radix-2^w window of both tables; 6 suits the
// 160–256 bit exponents of the bench grid's subgroup orders.
const egFixedBaseWindow = 6

// egFixedBase is the lazily built table state. It hangs off PublicKey by
// pointer so key copies (PrivateKey embeds PublicKey by value) share the
// tables and never copy the sync.Once.
type egFixedBase struct {
	once sync.Once
	g, h *mathx.FixedBaseExp
	err  error
}

// tables returns the built table pair, or nil when the key was stripped
// (WithoutFixedBase) or the build failed — callers then take the naive path.
func (pk *PublicKey) tables() *egFixedBase {
	fb := pk.fb
	if fb == nil {
		return nil
	}
	fb.once.Do(func() {
		maxBits := pk.Q.BitLen()
		fb.g, fb.err = mathx.NewFixedBaseExp(pk.G, pk.P, maxBits, egFixedBaseWindow)
		if fb.err == nil {
			fb.h, fb.err = mathx.NewFixedBaseExp(pk.H, pk.P, maxBits, egFixedBaseWindow)
		}
	})
	if fb.err != nil {
		return nil
	}
	return fb
}

// gExp returns g^e mod p, table-accelerated when possible. e < q always
// holds on the encryption path, so the table rejects nothing there; the
// naive fallback keeps the function total regardless.
func (pk *PublicKey) gExp(e *big.Int) *big.Int {
	if t := pk.tables(); t != nil {
		if v, err := t.g.Exp(e); err == nil {
			return v
		}
	}
	return new(big.Int).Exp(pk.G, e, pk.P)
}

// hExp returns h^e mod p, table-accelerated when possible.
func (pk *PublicKey) hExp(e *big.Int) *big.Int {
	if t := pk.tables(); t != nil {
		if v, err := t.h.Exp(e); err == nil {
			return v
		}
	}
	return new(big.Int).Exp(pk.H, e, pk.P)
}

// WithoutFixedBase implements homomorphic.FixedBased: an equivalent key
// whose Encrypt runs the plain big.Int.Exp path — the oracle side of the
// fixed-base differential tests.
func (pk *PublicKey) WithoutFixedBase() homomorphic.PublicKey {
	stripped := *pk
	stripped.fb = nil
	return &stripped
}

var _ homomorphic.FixedBased = (*PublicKey)(nil)
