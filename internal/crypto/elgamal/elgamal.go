// Package elgamal implements additively homomorphic ("exponential")
// ElGamal: messages are encrypted in the exponent, E(m) = (g^r, h^r·g^m),
// so multiplying ciphertexts adds plaintexts. Decryption recovers g^m and
// then must solve a small discrete logarithm, done here with baby-step
// giant-step over a configured message bound.
//
// The scheme exists for the design-space ablation: compared with Paillier
// it halves neither computation nor bandwidth for the selected-sum workload
// (two group elements per ciphertext), and its decryption cost grows with
// the square root of the sum bound — exactly the trade-offs the benchmark
// ablation quantifies.
//
// The group is a prime-order-q subgroup of Z*_p with p = kq+1 (DSA-style
// parameter generation, much faster than hunting safe primes in pure Go).
package elgamal

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"privstats/internal/homomorphic"
	"privstats/internal/mathx"
)

// SchemeID is the registry name of this cryptosystem.
const SchemeID = "exponential-elgamal"

func init() {
	homomorphic.Register(SchemeID, func(keyBytes []byte) (homomorphic.PublicKey, error) {
		return ParsePublicKey(keyBytes)
	})
}

// PublicKey holds the group and the encryption key h = g^x.
type PublicKey struct {
	P, Q, G, H *big.Int

	// MaxPlaintext bounds decryptable plaintexts; Decrypt solves a discrete
	// log in [0, MaxPlaintext] by BSGS.
	MaxPlaintext uint64

	elemLen int

	// fb holds the lazily built fixed-base tables for G and H
	// (fixedbase.go). nil strips the acceleration; a pointer so key copies
	// share the tables.
	fb *egFixedBase
}

// PrivateKey holds the discrete log x and the lazily built BSGS table.
type PrivateKey struct {
	PublicKey
	X *big.Int

	baby      map[string]uint64 // g^j (0 ≤ j < babySteps) → j
	babySteps uint64
	giant     *big.Int // g^-babySteps
}

// KeyGen generates a key over a fresh group with a p of modulusBits bits, a
// q of qBits bits, and the given decryptable-plaintext bound.
func KeyGen(r io.Reader, modulusBits, qBits int, maxPlaintext uint64) (*PrivateKey, error) {
	if qBits < 32 || modulusBits < qBits+16 {
		return nil, fmt.Errorf("elgamal: need qBits >= 32 and modulusBits >= qBits+16, got %d/%d", modulusBits, qBits)
	}
	if maxPlaintext == 0 {
		return nil, errors.New("elgamal: max plaintext bound must be positive")
	}
	q, err := mathx.GeneratePrime(r, qBits)
	if err != nil {
		return nil, err
	}
	// Find k with p = kq+1 prime and p of the requested size.
	p := new(big.Int)
	k := new(big.Int)
	var g *big.Int
	for attempt := 0; ; attempt++ {
		if attempt > 100000 {
			return nil, errors.New("elgamal: no suitable p found")
		}
		kb, err := mathx.RandBits(r, modulusBits-qBits)
		if err != nil {
			return nil, err
		}
		k.Set(kb)
		if k.Bit(0) == 1 {
			k.Add(k, mathx.One) // keep k even so p = kq+1 can be odd
		}
		p.Mul(k, q)
		p.Add(p, mathx.One)
		if p.BitLen() != modulusBits || !p.ProbablyPrime(20) {
			continue
		}
		// Generator of the order-q subgroup: g = h0^k ≠ 1.
		h0, err := mathx.RandInt(r, p)
		if err != nil {
			return nil, err
		}
		g = new(big.Int).Exp(h0, k, p)
		if g.Cmp(mathx.One) > 0 {
			break
		}
	}
	x, err := mathx.RandInt(r, q)
	if err != nil {
		return nil, err
	}
	h := new(big.Int).Exp(g, x, p)
	pk := PublicKey{
		P: p, Q: q, G: g, H: h,
		MaxPlaintext: maxPlaintext,
		elemLen:      (p.BitLen() + 7) / 8,
		fb:           &egFixedBase{},
	}
	return &PrivateKey{PublicKey: pk, X: x}, nil
}

// Ciphertext is the pair (A, B) = (g^r, h^r·g^m).
type Ciphertext struct {
	A, B    *big.Int
	elemLen int
}

// Bytes implements homomorphic.Ciphertext: A and B back to back,
// fixed width each.
func (ct *Ciphertext) Bytes() []byte {
	out := make([]byte, 2*ct.elemLen)
	ct.A.FillBytes(out[:ct.elemLen])
	ct.B.FillBytes(out[ct.elemLen:])
	return out
}

// SchemeName implements homomorphic.PublicKey.
func (pk *PublicKey) SchemeName() string { return SchemeID }

// PlaintextSpace implements homomorphic.PublicKey: arithmetic is mod q.
func (pk *PublicKey) PlaintextSpace() *big.Int { return new(big.Int).Set(pk.Q) }

// CiphertextSize implements homomorphic.PublicKey.
func (pk *PublicKey) CiphertextSize() int { return 2 * pk.elemLen }

// Encrypt implements homomorphic.PublicKey.
func (pk *PublicKey) Encrypt(m *big.Int) (homomorphic.Ciphertext, error) {
	if m == nil || m.Sign() < 0 || m.Cmp(pk.Q) >= 0 {
		return nil, errors.New("elgamal: message outside [0, q)")
	}
	r, err := mathx.RandInt(rand.Reader, pk.Q)
	if err != nil {
		return nil, err
	}
	return pk.encryptWithNonce(m, r), nil
}

// encryptWithNonce is the deterministic encryption core: (g^r, h^r·g^m) for
// a caller-chosen nonce. All three exponentiations share the two fixed bases
// and route through the key's tables when present; the output is
// bit-identical whether or not the tables are built, which is what the
// fixed-base differential test pins.
func (pk *PublicKey) encryptWithNonce(m, r *big.Int) *Ciphertext {
	a := pk.gExp(r)
	b := pk.hExp(r)
	b.Mul(b, pk.gExp(m))
	b.Mod(b, pk.P)
	return &Ciphertext{A: a, B: b, elemLen: pk.elemLen}
}

func (pk *PublicKey) asEG(c homomorphic.Ciphertext) (*Ciphertext, error) {
	ct, ok := c.(*Ciphertext)
	if !ok {
		return nil, fmt.Errorf("elgamal: foreign ciphertext type %T", c)
	}
	for _, e := range []*big.Int{ct.A, ct.B} {
		if e == nil || e.Sign() <= 0 || e.Cmp(pk.P) >= 0 {
			return nil, errors.New("elgamal: ciphertext element outside (0, p)")
		}
	}
	return ct, nil
}

// Add implements homomorphic.PublicKey.
func (pk *PublicKey) Add(a, b homomorphic.Ciphertext) (homomorphic.Ciphertext, error) {
	ca, err := pk.asEG(a)
	if err != nil {
		return nil, err
	}
	cb, err := pk.asEG(b)
	if err != nil {
		return nil, err
	}
	na := new(big.Int).Mul(ca.A, cb.A)
	na.Mod(na, pk.P)
	nb := new(big.Int).Mul(ca.B, cb.B)
	nb.Mod(nb, pk.P)
	return &Ciphertext{A: na, B: nb, elemLen: pk.elemLen}, nil
}

// ScalarMul implements homomorphic.PublicKey.
func (pk *PublicKey) ScalarMul(c homomorphic.Ciphertext, k *big.Int) (homomorphic.Ciphertext, error) {
	ct, err := pk.asEG(c)
	if err != nil {
		return nil, err
	}
	if k == nil {
		return nil, errors.New("elgamal: nil scalar")
	}
	km := new(big.Int).Mod(k, pk.Q)
	na := new(big.Int).Exp(ct.A, km, pk.P)
	nb := new(big.Int).Exp(ct.B, km, pk.P)
	return &Ciphertext{A: na, B: nb, elemLen: pk.elemLen}, nil
}

// Rerandomize implements homomorphic.PublicKey.
func (pk *PublicKey) Rerandomize(c homomorphic.Ciphertext) (homomorphic.Ciphertext, error) {
	zero, err := pk.Encrypt(new(big.Int))
	if err != nil {
		return nil, err
	}
	return pk.Add(c, zero)
}

// ParseCiphertext implements homomorphic.PublicKey.
func (pk *PublicKey) ParseCiphertext(b []byte) (homomorphic.Ciphertext, error) {
	if len(b) != 2*pk.elemLen {
		return nil, fmt.Errorf("elgamal: ciphertext is %d bytes, want %d", len(b), 2*pk.elemLen)
	}
	ct := &Ciphertext{
		A:       new(big.Int).SetBytes(b[:pk.elemLen]),
		B:       new(big.Int).SetBytes(b[pk.elemLen:]),
		elemLen: pk.elemLen,
	}
	return pk.asEG(ct)
}

// Decrypt implements homomorphic.PrivateKey logic: recover g^m, then solve
// the discrete log with baby-step giant-step in O(√MaxPlaintext).
func (sk *PrivateKey) Decrypt(c homomorphic.Ciphertext) (*big.Int, error) {
	ct, err := sk.asEG(c)
	if err != nil {
		return nil, err
	}
	// g^m = B · A^-x
	ax := new(big.Int).Exp(ct.A, sk.X, sk.P)
	axInv, err := mathx.ModInverse(ax, sk.P)
	if err != nil {
		return nil, fmt.Errorf("elgamal: degenerate ciphertext: %w", err)
	}
	gm := new(big.Int).Mul(ct.B, axInv)
	gm.Mod(gm, sk.P)
	m, ok := sk.discreteLog(gm)
	if !ok {
		return nil, fmt.Errorf("elgamal: plaintext exceeds decryption bound %d", sk.MaxPlaintext)
	}
	return new(big.Int).SetUint64(m), nil
}

// discreteLog solves g^m = target for m in [0, MaxPlaintext] by BSGS.
func (sk *PrivateKey) discreteLog(target *big.Int) (uint64, bool) {
	sk.ensureTable()
	gamma := new(big.Int).Set(target)
	steps := (sk.MaxPlaintext / sk.babySteps) + 1
	for i := uint64(0); i <= steps; i++ {
		if j, ok := sk.baby[string(gamma.Bytes())]; ok {
			m := i*sk.babySteps + j
			if m <= sk.MaxPlaintext {
				return m, true
			}
			return 0, false
		}
		gamma.Mul(gamma, sk.giant)
		gamma.Mod(gamma, sk.P)
	}
	return 0, false
}

// ensureTable builds the baby-step table on first decryption.
func (sk *PrivateKey) ensureTable() {
	if sk.baby != nil {
		return
	}
	// babySteps = ceil(sqrt(MaxPlaintext+1)), at least 1.
	b := uint64(1)
	for b*b < sk.MaxPlaintext+1 {
		b++
	}
	sk.babySteps = b
	sk.baby = make(map[string]uint64, b)
	acc := big.NewInt(1)
	for j := uint64(0); j < b; j++ {
		if _, dup := sk.baby[string(acc.Bytes())]; !dup {
			sk.baby[string(acc.Bytes())] = j
		}
		acc = new(big.Int).Mul(acc, sk.G)
		acc.Mod(acc, sk.P)
	}
	// giant = g^-b
	gb := new(big.Int).Exp(sk.G, new(big.Int).SetUint64(b), sk.P)
	inv, err := mathx.ModInverse(gb, sk.P)
	if err != nil {
		// g is a group element of prime order; inversion cannot fail.
		panic("elgamal: generator power not invertible")
	}
	sk.giant = inv
}

// MarshalBinary implements homomorphic.PublicKey.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	var b []byte
	b = append(b, "PSEG"...)
	b = binary.BigEndian.AppendUint32(b, 1)
	b = binary.BigEndian.AppendUint64(b, pk.MaxPlaintext)
	for _, v := range []*big.Int{pk.P, pk.Q, pk.G, pk.H} {
		raw := v.Bytes()
		b = binary.BigEndian.AppendUint32(b, uint32(len(raw)))
		b = append(b, raw...)
	}
	return b, nil
}

// ParsePublicKey decodes a key written by MarshalBinary.
func ParsePublicKey(data []byte) (*PublicKey, error) {
	if len(data) < 16 || string(data[:4]) != "PSEG" {
		return nil, errors.New("elgamal: bad public key encoding")
	}
	if v := binary.BigEndian.Uint32(data[4:]); v != 1 {
		return nil, fmt.Errorf("elgamal: unsupported key version %d", v)
	}
	maxPt := binary.BigEndian.Uint64(data[8:])
	rest := data[16:]
	vals := make([]*big.Int, 4)
	for i := range vals {
		if len(rest) < 4 {
			return nil, errors.New("elgamal: truncated public key")
		}
		n := binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return nil, errors.New("elgamal: truncated public key")
		}
		vals[i] = new(big.Int).SetBytes(rest[:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, errors.New("elgamal: trailing bytes after public key")
	}
	pk := &PublicKey{
		P: vals[0], Q: vals[1], G: vals[2], H: vals[3],
		MaxPlaintext: maxPt,
		elemLen:      (vals[0].BitLen() + 7) / 8,
		fb:           &egFixedBase{},
	}
	if pk.P.BitLen() < 48 || pk.Q.Sign() <= 0 || maxPt == 0 {
		return nil, errors.New("elgamal: implausible key parameters")
	}
	return pk, nil
}

// PrivKey adapts *PrivateKey to homomorphic.PrivateKey.
type PrivKey struct{ SK *PrivateKey }

var (
	_ homomorphic.PublicKey  = (*PublicKey)(nil)
	_ homomorphic.PrivateKey = PrivKey{}
)

// PublicKey implements homomorphic.PrivateKey.
func (k PrivKey) PublicKey() homomorphic.PublicKey { return &k.SK.PublicKey }

// Decrypt implements homomorphic.PrivateKey.
func (k PrivKey) Decrypt(c homomorphic.Ciphertext) (*big.Int, error) { return k.SK.Decrypt(c) }
