package elgamal

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
)

var (
	benchOnce sync.Once
	benchSK   *PrivateKey
	benchErr  error
)

func benchKey(b *testing.B) *PrivateKey {
	b.Helper()
	benchOnce.Do(func() { benchSK, benchErr = KeyGen(rand.Reader, 512, 160, 1<<24) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSK
}

func BenchmarkEncrypt(b *testing.B) {
	sk := benchKey(b)
	m := big.NewInt(424242)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.PublicKey.Encrypt(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptBSGS(b *testing.B) {
	// Includes the baby-step giant-step discrete log — ElGamal's structural
	// cost that Paillier does not pay.
	sk := benchKey(b)
	ct, err := sk.PublicKey.Encrypt(big.NewInt(1<<24 - 7))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sk.Decrypt(ct); err != nil { // build the table outside the loop
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarMul32Bit(b *testing.B) {
	sk := benchKey(b)
	pk := &sk.PublicKey
	ct, err := pk.Encrypt(big.NewInt(1))
	if err != nil {
		b.Fatal(err)
	}
	x := big.NewInt(0xDEADBEEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.ScalarMul(ct, x); err != nil {
			b.Fatal(err)
		}
	}
}
