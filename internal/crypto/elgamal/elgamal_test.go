package elgamal

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"

	"privstats/internal/database"
	"privstats/internal/netsim"
	"privstats/internal/selectedsum"
)

var (
	egOnce sync.Once
	egKey  *PrivateKey
	egErr  error
)

func testKey(t testing.TB) *PrivateKey {
	t.Helper()
	egOnce.Do(func() { egKey, egErr = KeyGen(rand.Reader, 256, 160, 1<<20) })
	if egErr != nil {
		t.Fatalf("KeyGen: %v", egErr)
	}
	return egKey
}

func TestKeyGenValidation(t *testing.T) {
	if _, err := KeyGen(rand.Reader, 64, 60, 100); err == nil {
		t.Error("p too close to q should fail")
	}
	if _, err := KeyGen(rand.Reader, 128, 16, 100); err == nil {
		t.Error("tiny q should fail")
	}
	if _, err := KeyGen(rand.Reader, 128, 64, 0); err == nil {
		t.Error("zero plaintext bound should fail")
	}
}

func TestGroupStructure(t *testing.T) {
	sk := testKey(t)
	// p = kq+1: q divides p-1.
	pm1 := new(big.Int).Sub(sk.P, big.NewInt(1))
	if new(big.Int).Mod(pm1, sk.Q).Sign() != 0 {
		t.Error("q does not divide p-1")
	}
	// g has order q: g^q = 1, g ≠ 1.
	if new(big.Int).Exp(sk.G, sk.Q, sk.P).Cmp(big.NewInt(1)) != 0 {
		t.Error("g^q != 1")
	}
	if sk.G.Cmp(big.NewInt(1)) == 0 {
		t.Error("g == 1")
	}
}

func TestRoundTrip(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	for _, m := range []int64{0, 1, 2, 1000, 1 << 19} {
		ct, err := pk.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", m, err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d -> %v", m, got)
		}
	}
}

func TestDecryptBeyondBoundFails(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	// 2^20 + 1 exceeds the bound 2^20.
	ct, err := pk.Encrypt(big.NewInt(1<<20 + 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Decrypt(ct); err == nil {
		t.Error("plaintext beyond BSGS bound should fail loudly")
	}
}

func TestHomomorphism(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	ca, _ := pk.Encrypt(big.NewInt(300))
	cb, _ := pk.Encrypt(big.NewInt(45))
	sum, err := pk.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil || got.Int64() != 345 {
		t.Errorf("sum = %v (err %v)", got, err)
	}
	scaled, err := pk.ScalarMul(ca, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err = sk.Decrypt(scaled)
	if err != nil || got.Int64() != 2100 {
		t.Errorf("scaled = %v (err %v)", got, err)
	}
}

func TestEncryptionRandomized(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	a, _ := pk.Encrypt(big.NewInt(9))
	b, _ := pk.Encrypt(big.NewInt(9))
	if string(a.Bytes()) == string(b.Bytes()) {
		t.Fatal("deterministic encryption")
	}
	fresh, err := pk.Rerandomize(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(fresh)
	if err != nil || got.Int64() != 9 {
		t.Errorf("rerandomized = %v (err %v)", got, err)
	}
}

func TestParseCiphertext(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	ct, _ := pk.Encrypt(big.NewInt(77))
	b := ct.Bytes()
	if len(b) != pk.CiphertextSize() {
		t.Fatalf("encoded %d bytes, want %d", len(b), pk.CiphertextSize())
	}
	back, err := pk.ParseCiphertext(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(back)
	if err != nil || got.Int64() != 77 {
		t.Errorf("parsed = %v (err %v)", got, err)
	}
	if _, err := pk.ParseCiphertext(b[:3]); err == nil {
		t.Error("short encoding should fail")
	}
	if _, err := pk.ParseCiphertext(make([]byte, pk.CiphertextSize())); err == nil {
		t.Error("zero elements should fail")
	}
}

func TestKeyMarshalRoundTrip(t *testing.T) {
	sk := testKey(t)
	b, err := sk.PublicKey.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := ParsePublicKey(b)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := pk2.Encrypt(big.NewInt(1234))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil || got.Int64() != 1234 {
		t.Errorf("cross decrypt = %v (err %v)", got, err)
	}
	if _, err := ParsePublicKey(b[:7]); err == nil {
		t.Error("truncated key should fail")
	}
}

func TestSelectedSumRunsOverElGamal(t *testing.T) {
	// The protocol stack is scheme-generic; the sum must stay under the
	// BSGS bound (2^20), so use small values.
	sk := testKey(t)
	table, err := database.Generate(30, database.DistSmall, 5)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := database.GenerateSelection(30, 12, database.PatternRandom, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := table.SelectedSum(sel)
	res, err := selectedsum.Run(PrivKey{SK: sk}, table, sel, selectedsum.Options{Link: netsim.ShortDistance})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum.Cmp(want) != 0 {
		t.Errorf("ElGamal selected sum = %v, want %v", res.Sum, want)
	}
}
