package elgamal

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"

	"privstats/internal/homomorphic"
	"privstats/internal/mathx"
)

// TestFixedBaseMatchesNaiveWithSharedNonce is the strongest differential
// form: the table-accelerated encryption core must be bit-identical to the
// stripped key's for every shared (m, r), not merely decrypt-equivalent.
func TestFixedBaseMatchesNaiveWithSharedNonce(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	if pk.fb == nil {
		t.Fatal("generated key is missing the fixed-base state")
	}
	naive, ok := homomorphic.WithoutFixedBase(pk).(*PublicKey)
	if !ok || naive.fb != nil {
		t.Fatal("WithoutFixedBase did not strip the table state")
	}
	for i := 0; i < 20; i++ {
		m, err := mathx.RandInt(rand.Reader, big.NewInt(1<<20))
		if err != nil {
			t.Fatal(err)
		}
		r, err := mathx.RandInt(rand.Reader, pk.Q)
		if err != nil {
			t.Fatal(err)
		}
		fast := pk.encryptWithNonce(m, r)
		slow := naive.encryptWithNonce(m, r)
		if !bytes.Equal(fast.Bytes(), slow.Bytes()) {
			t.Fatalf("nonce-shared ciphertexts differ: fb=%x naive=%x", fast.Bytes(), slow.Bytes())
		}
		got, err := sk.Decrypt(fast)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("round trip %v != %v", got, m)
		}
	}
}

func TestFixedBaseInteropAndParsedKey(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	raw, err := pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePublicKey(raw)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.fb == nil {
		t.Fatal("parsed key is missing the fixed-base state")
	}
	a, err := parsed.Encrypt(big.NewInt(40))
	if err != nil {
		t.Fatal(err)
	}
	b, err := homomorphic.WithoutFixedBase(pk).Encrypt(big.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := pk.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Fatalf("parsed-fb × stripped sum decrypts to %v, want 42", got)
	}
}
