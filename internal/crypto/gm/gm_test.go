package gm

import (
	"crypto/rand"
	"sync"
	"testing"
	"testing/quick"
)

var (
	gmOnce sync.Once
	gmKey  *PrivateKey
	gmErr  error
)

func testKey(t testing.TB) *PrivateKey {
	t.Helper()
	gmOnce.Do(func() { gmKey, gmErr = KeyGen(rand.Reader, 128) })
	if gmErr != nil {
		t.Fatalf("KeyGen: %v", gmErr)
	}
	return gmKey
}

func TestKeyGenValidation(t *testing.T) {
	if _, err := KeyGen(rand.Reader, 32); err == nil {
		t.Error("tiny modulus should fail")
	}
	if _, err := KeyGen(rand.Reader, 127); err == nil {
		t.Error("odd bits should fail")
	}
}

func TestBitRoundTrip(t *testing.T) {
	sk := testKey(t)
	for b := uint(0); b <= 1; b++ {
		for i := 0; i < 20; i++ {
			ct, err := sk.EncryptBit(b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sk.DecryptBit(ct)
			if err != nil {
				t.Fatal(err)
			}
			if got != b {
				t.Fatalf("round trip %d -> %d", b, got)
			}
		}
	}
	if _, err := sk.EncryptBit(2); err == nil {
		t.Error("bit 2 should fail")
	}
}

func TestEncryptionRandomized(t *testing.T) {
	sk := testKey(t)
	a, _ := sk.EncryptBit(1)
	b, _ := sk.EncryptBit(1)
	if string(a.Bytes()) == string(b.Bytes()) {
		t.Fatal("deterministic encryption")
	}
}

func TestXorHomomorphism(t *testing.T) {
	sk := testKey(t)
	prop := func(x, y bool) bool {
		bx, by := uint(0), uint(0)
		if x {
			bx = 1
		}
		if y {
			by = 1
		}
		cx, err := sk.EncryptBit(bx)
		if err != nil {
			return false
		}
		cy, err := sk.EncryptBit(by)
		if err != nil {
			return false
		}
		cz, err := sk.Xor(cx, cy)
		if err != nil {
			return false
		}
		got, err := sk.DecryptBit(cz)
		if err != nil {
			return false
		}
		return got == bx^by
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEncryptBits(t *testing.T) {
	sk := testKey(t)
	bits := []uint{1, 0, 1, 1, 0, 0, 1}
	cts, err := sk.EncryptBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range cts {
		got, err := sk.DecryptBit(ct)
		if err != nil || got != bits[i] {
			t.Fatalf("bit %d: %d (err %v)", i, got, err)
		}
	}
	if _, err := sk.EncryptBits([]uint{3}); err == nil {
		t.Error("invalid bit should fail")
	}
}

func TestExpansionFactor(t *testing.T) {
	// One bit costs a full group element: the contrast with Paillier the
	// design benchmarks report.
	sk := testKey(t)
	if sk.CiphertextSize() != 16 { // 128-bit modulus
		t.Errorf("ciphertext size = %d bytes, want 16", sk.CiphertextSize())
	}
}

func TestMalformedCiphertext(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.DecryptBit(nil); err == nil {
		t.Error("nil ciphertext should fail")
	}
	if _, err := sk.Xor(nil, nil); err == nil {
		t.Error("nil xor should fail")
	}
}
