// Package gm implements the Goldwasser–Micali cryptosystem: semantically
// secure encryption of single bits, homomorphic under XOR. It predates
// Paillier and is the historical root of the "semantic security" property
// the paper requires of its encryption scheme (Section 2).
//
// GM cannot run the selected-sum protocol — XOR is not integer addition —
// and that contrast is exactly why it is here: the design-space benchmarks
// use it to show what the Paillier choice buys. A ciphertext encrypts ONE
// bit in a full group element, so encrypting a 32-bit value costs 32
// elements where Paillier needs a fraction of one.
package gm

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"privstats/internal/mathx"
)

// PublicKey holds the modulus and a quadratic non-residue with Jacobi
// symbol +1.
type PublicKey struct {
	N *big.Int
	// X is a non-residue mod N with (X/N) = 1; encryptions of 1 multiply
	// by it.
	X *big.Int

	byteLen int
}

// PrivateKey holds the factorization.
type PrivateKey struct {
	PublicKey
	P, Q *big.Int
}

// KeyGen generates a key with a modulus of modulusBits bits.
func KeyGen(r io.Reader, modulusBits int) (*PrivateKey, error) {
	if modulusBits < 64 || modulusBits%2 != 0 {
		return nil, fmt.Errorf("gm: modulus bits must be even and >= 64, got %d", modulusBits)
	}
	p, q, err := mathx.GeneratePrimePair(r, modulusBits/2)
	if err != nil {
		return nil, fmt.Errorf("gm: generating primes: %w", err)
	}
	n := new(big.Int).Mul(p, q)
	// Find x with (x/p) = (x/q) = -1: a non-residue with Jacobi (x/n) = +1.
	var x *big.Int
	for i := 0; i < 10000; i++ {
		cand, err := mathx.RandUnit(r, n)
		if err != nil {
			return nil, err
		}
		jp := big.Jacobi(cand, p)
		jq := big.Jacobi(cand, q)
		if jp == -1 && jq == -1 {
			x = cand
			break
		}
	}
	if x == nil {
		return nil, errors.New("gm: could not find a non-residue (should be ~1/4 of candidates)")
	}
	return &PrivateKey{
		PublicKey: PublicKey{N: n, X: x, byteLen: (n.BitLen() + 7) / 8},
		P:         p,
		Q:         q,
	}, nil
}

// Ciphertext encrypts one bit as an element of Z*_N.
type Ciphertext struct {
	c       *big.Int
	byteLen int
}

// Bytes returns the fixed-width encoding.
func (ct *Ciphertext) Bytes() []byte { return ct.c.FillBytes(make([]byte, ct.byteLen)) }

// EncryptBit encrypts b ∈ {0, 1} as r²·x^b mod N.
func (pk *PublicKey) EncryptBit(b uint) (*Ciphertext, error) {
	if b > 1 {
		return nil, fmt.Errorf("gm: bit must be 0 or 1, got %d", b)
	}
	r, err := mathx.RandUnit(rand.Reader, pk.N)
	if err != nil {
		return nil, err
	}
	c := new(big.Int).Mul(r, r)
	c.Mod(c, pk.N)
	if b == 1 {
		c.Mul(c, pk.X)
		c.Mod(c, pk.N)
	}
	return &Ciphertext{c: c, byteLen: pk.byteLen}, nil
}

// Xor homomorphically XORs two encrypted bits: multiplication mod N.
func (pk *PublicKey) Xor(a, b *Ciphertext) (*Ciphertext, error) {
	if err := pk.check(a); err != nil {
		return nil, err
	}
	if err := pk.check(b); err != nil {
		return nil, err
	}
	c := new(big.Int).Mul(a.c, b.c)
	c.Mod(c, pk.N)
	return &Ciphertext{c: c, byteLen: pk.byteLen}, nil
}

func (pk *PublicKey) check(ct *Ciphertext) error {
	if ct == nil || ct.c == nil || ct.c.Sign() <= 0 || ct.c.Cmp(pk.N) >= 0 {
		return errors.New("gm: malformed ciphertext")
	}
	return nil
}

// DecryptBit recovers the bit: residue → 0, non-residue → 1, decided by the
// Legendre symbol mod P.
func (sk *PrivateKey) DecryptBit(ct *Ciphertext) (uint, error) {
	if err := sk.check(ct); err != nil {
		return 0, err
	}
	switch big.Jacobi(ct.c, sk.P) {
	case 1:
		return 0, nil
	case -1:
		return 1, nil
	default:
		return 0, errors.New("gm: ciphertext shares a factor with the modulus")
	}
}

// EncryptBits encrypts a bit slice; the expansion factor (one group element
// per bit) is the number the design benchmarks report.
func (pk *PublicKey) EncryptBits(bits []uint) ([]*Ciphertext, error) {
	out := make([]*Ciphertext, len(bits))
	for i, b := range bits {
		ct, err := pk.EncryptBit(b)
		if err != nil {
			return nil, fmt.Errorf("gm: bit %d: %w", i, err)
		}
		out[i] = ct
	}
	return out, nil
}

// CiphertextSize returns the bytes one encrypted bit occupies.
func (pk *PublicKey) CiphertextSize() int { return pk.byteLen }
