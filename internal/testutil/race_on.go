//go:build race

package testutil

// RaceEnabled reports whether this test binary was built with the race
// detector, so helpers that compile child binaries can propagate -race and
// keep chaos runs race-detected end to end.
const RaceEnabled = true
