package testutil

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"testing"
	"time"
)

// Process harness for restart-chaos tests: build the repo's real daemon
// binaries, run them against scratch state directories, SIGKILL them
// mid-flight, and restart them on the same state — the only honest way to
// test crash recovery, since an in-process "crash" cannot lose what a real
// dead process loses.

var (
	binMu    sync.Mutex
	binDir   string
	binaries = map[string]string{}
)

// BuildBinary compiles ./cmd/<name> (with -race when the test binary itself
// is race-enabled, so daemon-side races fail chaos runs too) once per test
// process and returns the executable path. Subsequent calls reuse the build.
func BuildBinary(t testing.TB, name string) string {
	t.Helper()
	binMu.Lock()
	defer binMu.Unlock()
	if path, ok := binaries[name]; ok {
		return path
	}
	if binDir == "" {
		dir, err := os.MkdirTemp("", "privstats-bin-")
		if err != nil {
			t.Fatalf("testutil: bin dir: %v", err)
		}
		binDir = dir
	}
	out := filepath.Join(binDir, name)
	args := []string{"build"}
	if RaceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", out, "./cmd/"+name)
	cmd := exec.Command("go", args...)
	cmd.Dir = repoRoot(t)
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("testutil: building %s: %v\n%s", name, err, msg)
	}
	binaries[name] = out
	return out
}

// repoRoot walks up from the test's working directory to the go.mod.
func repoRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("testutil: no go.mod above test directory")
		}
		dir = parent
	}
}

// Daemon is one running child process with its combined output captured.
type Daemon struct {
	t   testing.TB
	cmd *exec.Cmd

	mu  sync.Mutex
	out bytes.Buffer

	done    chan struct{} // closed once Wait returns
	waitErr error
}

// daemonWriter funnels the child's stdout+stderr into the locked buffer.
type daemonWriter struct{ d *Daemon }

func (w daemonWriter) Write(p []byte) (int, error) {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	return w.d.out.Write(p)
}

// StartDaemon launches bin with args and begins capturing its output. The
// process is SIGKILLed at test cleanup if still running.
func StartDaemon(t testing.TB, bin string, args ...string) *Daemon {
	t.Helper()
	d := &Daemon{t: t, done: make(chan struct{})}
	d.cmd = exec.Command(bin, args...)
	d.cmd.Stdout = daemonWriter{d}
	d.cmd.Stderr = daemonWriter{d}
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("testutil: starting %s: %v", bin, err)
	}
	go func() {
		d.waitErr = d.cmd.Wait()
		close(d.done)
	}()
	t.Cleanup(func() {
		if !d.Exited() {
			d.Kill()
		}
	})
	return d
}

// Output returns everything the process has written so far.
func (d *Daemon) Output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.out.String()
}

// Exited reports whether the process has terminated.
func (d *Daemon) Exited() bool {
	select {
	case <-d.done:
		return true
	default:
		return false
	}
}

// WaitLog polls the captured output until pattern matches and returns the
// first capture group (or the whole match when the pattern has none). It
// fails the test on timeout or if the process exits without ever matching.
func (d *Daemon) WaitLog(pattern string, timeout time.Duration) string {
	d.t.Helper()
	re := regexp.MustCompile(pattern)
	deadline := time.Now().Add(timeout)
	for {
		if m := re.FindStringSubmatch(d.Output()); m != nil {
			if len(m) > 1 {
				return m[1]
			}
			return m[0]
		}
		if d.Exited() {
			// One last look: the line may have landed with the exit.
			if m := re.FindStringSubmatch(d.Output()); m != nil {
				if len(m) > 1 {
					return m[1]
				}
				return m[0]
			}
			d.t.Fatalf("testutil: process exited before log %q matched\n%s", pattern, d.Output())
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("testutil: no log match for %q within %v\n%s", pattern, timeout, d.Output())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Signal delivers sig to the process.
func (d *Daemon) Signal(sig os.Signal) {
	d.t.Helper()
	if err := d.cmd.Process.Signal(sig); err != nil && !d.Exited() {
		d.t.Fatalf("testutil: signalling: %v", err)
	}
}

// Kill SIGKILLs the process — the simulated crash — and waits for the
// corpse, so state on disk is final before a restart.
func (d *Daemon) Kill() {
	d.t.Helper()
	_ = d.cmd.Process.Signal(syscall.SIGKILL)
	select {
	case <-d.done:
	case <-time.After(10 * time.Second):
		d.t.Fatalf("testutil: process survived SIGKILL")
	}
}

// Wait blocks until the process exits on its own and returns its exit
// error, failing the test at the deadline.
func (d *Daemon) Wait(timeout time.Duration) error {
	d.t.Helper()
	select {
	case <-d.done:
		return d.waitErr
	case <-time.After(timeout):
		d.t.Fatalf("testutil: process still running after %v\n%s", timeout, d.Output())
		return fmt.Errorf("unreachable")
	}
}
