// Package testutil holds test helpers shared across packages: the
// goroutine-leak guard every lifecycle test should open with, and a minimal
// Prometheus text-exposition parser for round-tripping /metrics output.
// Production code must not import this package.
package testutil

import (
	"bufio"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// GuardGoroutines snapshots the goroutine count and, after every cleanup
// registered later (servers, listeners) has run, polls until the count
// settles back to the baseline. Register it FIRST: t.Cleanup is LIFO, so
// the guard's cleanup runs last, after the resources it is guarding have
// been torn down.
func GuardGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before+2 { // scheduler/netpoll jitter tolerance
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after settle window\n%s", before, now, buf[:n])
	})
}

// ParseProm parses Prometheus 0.0.4 text exposition into a map keyed by the
// full series identity — `name` or `name{label="v",...}` exactly as rendered.
// Comment and blank lines are skipped; any other malformed line is an error,
// so a format regression fails the round-trip test rather than vanishing.
func ParseProm(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the series identity is
		// everything before it. Label VALUES may contain spaces, so split
		// from the right.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("line %d: no value separator: %q", ln, line)
		}
		key, val := line[:i], line[i+1:]
		if key == "" {
			return nil, fmt.Errorf("line %d: empty series name: %q", ln, line)
		}
		if strings.Contains(key, "{") != strings.HasSuffix(key, "}") {
			return nil, fmt.Errorf("line %d: unbalanced label braces: %q", ln, line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", ln, val, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", ln, key)
		}
		out[key] = f
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
