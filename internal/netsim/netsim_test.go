package netsim

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestLinkValidate(t *testing.T) {
	good := Link{Name: "ok", BitsPerSecond: 1000, Latency: time.Millisecond, Efficiency: 0.9}
	if err := good.Validate(); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
	bad := []Link{
		{BitsPerSecond: 0, Efficiency: 0.5},
		{BitsPerSecond: -5, Efficiency: 0.5},
		{BitsPerSecond: 100, Efficiency: 0},
		{BitsPerSecond: 100, Efficiency: 1.5},
		{BitsPerSecond: 100, Efficiency: 0.5, Latency: -time.Second},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad link %d accepted", i)
		}
	}
}

func TestPresetLinksValid(t *testing.T) {
	for _, l := range []Link{ShortDistance, LongDistance, Wireless} {
		if err := l.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", l.Name, err)
		}
	}
}

func TestSerializationTime(t *testing.T) {
	l := Link{BitsPerSecond: 8000, Efficiency: 1} // 1000 bytes/sec
	if got := l.SerializationTime(1000); got != time.Second {
		t.Errorf("1000 bytes at 1000B/s = %v, want 1s", got)
	}
	if got := l.SerializationTime(0); got != 0 {
		t.Errorf("0 bytes = %v, want 0", got)
	}
	if got := l.SerializationTime(-10); got != 0 {
		t.Errorf("negative bytes = %v, want 0", got)
	}
	// Efficiency halves throughput.
	l.Efficiency = 0.5
	if got := l.SerializationTime(1000); got != 2*time.Second {
		t.Errorf("with eff 0.5 = %v, want 2s", got)
	}
}

func TestOneWayAndRoundTrip(t *testing.T) {
	l := Link{BitsPerSecond: 8000, Efficiency: 1, Latency: 100 * time.Millisecond}
	if got := l.OneWayTime(1000); got != time.Second+100*time.Millisecond {
		t.Errorf("one way = %v", got)
	}
	want := 200*time.Millisecond + time.Second + 500*time.Millisecond
	if got := l.RoundTripTime(1000, 500); got != want {
		t.Errorf("round trip = %v, want %v", got, want)
	}
}

func TestModemIsMuchSlowerThanLAN(t *testing.T) {
	// A 100k-element vector of 1024-bit ciphertexts is ~12.8 MB; over the
	// modem that is hours, over the LAN well under a second. This ordering
	// is the crux of Figures 2 vs 3.
	bytes := int64(100_000 * 128)
	lan := ShortDistance.OneWayTime(bytes)
	modem := LongDistance.OneWayTime(bytes)
	if lan >= time.Second {
		t.Errorf("LAN transfer of 12.8MB took %v, expected < 1s", lan)
	}
	if modem < time.Hour/2 {
		t.Errorf("modem transfer of 12.8MB took %v, expected >= 30min", modem)
	}
}

func TestSerializationMonotonicProperty(t *testing.T) {
	l := LongDistance
	prop := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return l.SerializationTime(x) <= l.SerializationTime(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPipelineSingleChunkMatchesSequential(t *testing.T) {
	link := Link{BitsPerSecond: 8000, Efficiency: 1, Latency: 10 * time.Millisecond}
	p, err := NewPipeline(link)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddChunk(2*time.Second, 1000, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	// enc 2s + ser 1s + lat 10ms + srv 3s
	want := 2*time.Second + time.Second + 10*time.Millisecond + 3*time.Second
	if got := p.Makespan(); got != want {
		t.Errorf("makespan = %v, want %v", got, want)
	}
	seq := SequentialTally{Enc: 2 * time.Second, WireBytes: 1000, Srv: 3 * time.Second}
	if got := seq.Total(link); got != want {
		t.Errorf("sequential = %v, want %v", got, want)
	}
}

func TestPipelineOverlapsStages(t *testing.T) {
	// Three equal chunks on a fast link: the pipeline should approach
	// max-stage-dominated time, strictly beating sequential.
	link := Link{BitsPerSecond: 1_000_000_000, Efficiency: 1, Latency: 0}
	p, err := NewPipeline(link)
	if err != nil {
		t.Fatal(err)
	}
	const chunks = 10
	for i := 0; i < chunks; i++ {
		if err := p.AddChunk(100*time.Millisecond, 0, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Makespan()
	// Pipelined: ~ (chunks+1)*100ms. Sequential: 2*chunks*100ms = 2s.
	if got >= 2*time.Second {
		t.Errorf("pipeline %v did not beat sequential 2s", got)
	}
	if got < chunks*100*time.Millisecond {
		t.Errorf("pipeline %v beat the busiest stage, impossible", got)
	}
	if p.Chunks() != chunks {
		t.Errorf("chunks = %d", p.Chunks())
	}
	if p.ClientBusy() != chunks*100*time.Millisecond {
		t.Errorf("client busy = %v", p.ClientBusy())
	}
}

func TestPipelineNeverBeatsAnySingleStageSum(t *testing.T) {
	link := Link{BitsPerSecond: 8000, Efficiency: 1, Latency: 5 * time.Millisecond}
	prop := func(stages []struct {
		Enc uint16
		B   uint16
		Srv uint16
	}) bool {
		p, err := NewPipeline(link)
		if err != nil {
			return false
		}
		var sumEnc, sumSer, sumSrv time.Duration
		for _, s := range stages {
			enc := time.Duration(s.Enc) * time.Microsecond
			srv := time.Duration(s.Srv) * time.Microsecond
			if err := p.AddChunk(enc, int64(s.B), srv); err != nil {
				return false
			}
			sumEnc += enc
			sumSer += link.SerializationTime(int64(s.B))
			sumSrv += srv
		}
		m := p.Makespan()
		if len(stages) == 0 {
			return m == 0
		}
		// Lower bounds: each stage's total busy time.
		if m < sumEnc || m < sumSer || m < sumSrv {
			return false
		}
		// Upper bound: full sequential execution.
		seq := sumEnc + sumSer + time.Duration(len(stages))*link.Latency + sumSrv
		return m <= seq
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPipelineRejectsNegative(t *testing.T) {
	p, err := NewPipeline(ShortDistance)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddChunk(-time.Second, 0, 0); err == nil {
		t.Error("negative enc should fail")
	}
	if err := p.AddChunk(0, -1, 0); err == nil {
		t.Error("negative bytes should fail")
	}
	if err := p.AddChunk(0, 0, -time.Second); err == nil {
		t.Error("negative srv should fail")
	}
}

func TestPipelineFinish(t *testing.T) {
	link := Link{BitsPerSecond: 8000, Efficiency: 1, Latency: 10 * time.Millisecond}
	p, _ := NewPipeline(link)
	_ = p.AddChunk(time.Second, 0, time.Second)
	total := p.Finish(1000, 50*time.Millisecond)
	want := p.Makespan() + link.OneWayTime(1000) + 50*time.Millisecond
	if total != want {
		t.Errorf("Finish = %v, want %v", total, want)
	}
}

func TestNewPipelineRejectsBadLink(t *testing.T) {
	if _, err := NewPipeline(Link{}); err == nil {
		t.Error("zero link should fail")
	}
}

func TestThrottlePacesWrites(t *testing.T) {
	var buf bytes.Buffer
	link := Link{BitsPerSecond: 8000, Efficiency: 1, Latency: 0} // 1000 B/s
	th, err := NewThrottle(&buf, link)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var slept time.Duration
	th.sleep = func(d time.Duration) {
		mu.Lock()
		slept += d
		mu.Unlock()
	}
	payload := make([]byte, 500)
	if _, err := th.Write(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Write(payload); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// 1000 bytes at 1000 B/s = 1s of pacing (allow the debt mechanism to
	// defer sub-millisecond remainders).
	if slept < 990*time.Millisecond || slept > 1010*time.Millisecond {
		t.Errorf("slept %v, want ~1s", slept)
	}
	if buf.Len() != 1000 {
		t.Errorf("wrote %d bytes", buf.Len())
	}
}

func TestThrottleReadPassesData(t *testing.T) {
	src := bytes.NewBufferString("hello throttled world")
	th, err := NewThrottle(src, Link{BitsPerSecond: 1 << 30, Efficiency: 1})
	if err != nil {
		t.Fatal(err)
	}
	th.sleep = func(time.Duration) {}
	got := make([]byte, 5)
	n, err := th.Read(got)
	if err != nil || n != 5 || string(got) != "hello" {
		t.Errorf("read %q (%d, %v)", got[:n], n, err)
	}
}

func TestNewThrottleRejectsBadLink(t *testing.T) {
	if _, err := NewThrottle(&bytes.Buffer{}, Link{}); err == nil {
		t.Error("bad link should fail")
	}
}
