// Package netsim models the two communication environments of the paper's
// evaluation and converts measured byte counts into communication time.
//
// The paper ran its short-distance experiments across a 64 Gbps switch
// inside one cluster and its long-distance experiments over a 56 Kbps
// dial-up modem between Chicago and Hoboken. Reproducing those physical
// media is impossible here, so the repository substitutes a deterministic
// link model (DESIGN.md §2): communication time for a one-way stream is
//
//	latency + transmitted_bytes · 8 / (bandwidth · efficiency)
//
// with an extra round-trip latency per request/response exchange. Because
// the wire package meters exact byte counts, the model's serialization term
// is exact; only propagation latency and framing efficiency are presets.
// This preserves precisely the comparison the paper makes — computation
// time versus communication time on a fast and on a very slow medium.
//
// For runs that want real wall-clock behaviour (the cmd/ tools), Throttle
// wraps an io.ReadWriter and enforces the link's bandwidth with sleeps.
package netsim

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Link describes a point-to-point communication medium.
type Link struct {
	// Name labels the environment in reports.
	Name string
	// BitsPerSecond is the raw signalling rate.
	BitsPerSecond int64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Efficiency is the fraction of raw bandwidth available to payload
	// after link framing (PPP/modem overhead, Ethernet headers…); in (0,1].
	Efficiency float64
}

// Validate checks the link parameters.
func (l Link) Validate() error {
	if l.BitsPerSecond <= 0 {
		return fmt.Errorf("netsim: link %q: bandwidth must be positive", l.Name)
	}
	if l.Efficiency <= 0 || l.Efficiency > 1 {
		return fmt.Errorf("netsim: link %q: efficiency must be in (0,1], got %v", l.Name, l.Efficiency)
	}
	if l.Latency < 0 {
		return fmt.Errorf("netsim: link %q: negative latency", l.Name)
	}
	return nil
}

// SerializationTime returns the time to clock bytes onto the medium,
// excluding propagation latency.
func (l Link) SerializationTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	bits := float64(bytes) * 8
	sec := bits / (float64(l.BitsPerSecond) * l.Efficiency)
	return time.Duration(sec * float64(time.Second))
}

// OneWayTime returns the time for a one-way stream of bytes: one
// propagation latency plus serialization.
func (l Link) OneWayTime(bytes int64) time.Duration {
	return l.Latency + l.SerializationTime(bytes)
}

// RoundTripTime returns the time for a request/response exchange carrying
// reqBytes up and respBytes back.
func (l Link) RoundTripTime(reqBytes, respBytes int64) time.Duration {
	return 2*l.Latency + l.SerializationTime(reqBytes) + l.SerializationTime(respBytes)
}

// The two environments of the paper's evaluation. See the package comment
// and DESIGN.md §2 for the substitution rationale.
var (
	// ShortDistance models the high-performance-cluster environment
	// (client and server connected by the Stevens HPC switch). The hosts'
	// gigabit NICs, not the 64 Gbps switch fabric, bound throughput.
	ShortDistance = Link{
		Name:          "short-distance (cluster switch)",
		BitsPerSecond: 1_000_000_000,
		Latency:       100 * time.Microsecond,
		Efficiency:    0.95,
	}

	// LongDistance models the Chicago–Hoboken 56 Kbps dial-up connection.
	// V.90 modems top out near 53 Kbps downstream with PPP overhead on
	// top; 0.85 efficiency over the nominal 56 Kbps approximates that.
	LongDistance = Link{
		Name:          "long-distance (56Kbps dial-up)",
		BitsPerSecond: 56_000,
		Latency:       60 * time.Millisecond,
		Efficiency:    0.85,
	}

	// Wireless models the decelerated multihop wireless medium the paper's
	// introduction motivates (WiNSeC funding); used by examples/wireless.
	Wireless = Link{
		Name:          "wireless multihop (1 Mbps, 25ms/hop x 4)",
		BitsPerSecond: 1_000_000,
		Latency:       100 * time.Millisecond,
		Efficiency:    0.7,
	}
)

// Throttle wraps rw so that reads and writes are paced to the link's
// bandwidth. It is intentionally coarse (sleep per call) — its purpose is
// letting the cmd/ tools demonstrate modem-speed behaviour for small runs,
// not packet-level fidelity.
type Throttle struct {
	rw   io.ReadWriter
	link Link

	mu sync.Mutex
	// debt accumulates fractional pacing time so many small writes are
	// paced as accurately as one large write.
	debt time.Duration
	// sleep is swapped out by tests.
	sleep func(time.Duration)
}

// NewThrottle wraps rw with bandwidth pacing. Latency is applied once per
// Write (coarse propagation model).
func NewThrottle(rw io.ReadWriter, link Link) (*Throttle, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	return &Throttle{rw: rw, link: link, sleep: time.Sleep}, nil
}

// Write paces then forwards.
func (t *Throttle) Write(p []byte) (int, error) {
	t.pace(int64(len(p)), t.link.Latency)
	return t.rw.Write(p)
}

// Read forwards then paces by the bytes actually read.
func (t *Throttle) Read(p []byte) (int, error) {
	n, err := t.rw.Read(p)
	if n > 0 {
		t.pace(int64(n), 0)
	}
	return n, err
}

// Close forwards when the wrapped stream is closable.
func (t *Throttle) Close() error {
	if c, ok := t.rw.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

func (t *Throttle) pace(bytes int64, latency time.Duration) {
	d := t.link.SerializationTime(bytes) + latency
	t.mu.Lock()
	t.debt += d
	var due time.Duration
	if t.debt >= time.Millisecond {
		due, t.debt = t.debt, 0
	}
	sleep := t.sleep
	t.mu.Unlock()
	if due > 0 {
		sleep(due)
	}
}
