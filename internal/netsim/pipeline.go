package netsim

import (
	"fmt"
	"time"
)

// Pipeline computes the makespan of the paper's Section 3.2 batched
// execution, in which three activities overlap: the client encrypting chunk
// i+1, the link carrying chunk i, and the server folding chunk i-1 into its
// partial product.
//
// The schedule follows the standard flow-shop recurrence for a 3-stage
// pipeline with in-order, non-overlapping stages:
//
//	encDone[i]  = encDone[i-1] + enc[i]                 (client is sequential)
//	txDone[i]   = max(encDone[i], txDone[i-1]) + ser[i] (link is sequential)
//	srvDone[i]  = max(txDone[i] + latency, srvDone[i-1]) + srv[i]
//
// Propagation latency delays each chunk's arrival but — unlike
// serialization — does not occupy the link, so it appears on the server
// side of the recurrence.
type Pipeline struct {
	link Link

	encDone time.Duration
	txDone  time.Duration
	srvDone time.Duration
	chunks  int
}

// NewPipeline starts an empty schedule over the given link.
func NewPipeline(link Link) (*Pipeline, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	return &Pipeline{link: link}, nil
}

// AddChunk appends one chunk with the measured client encryption time, the
// chunk's wire size in bytes, and the measured server processing time.
func (p *Pipeline) AddChunk(enc time.Duration, wireBytes int64, srv time.Duration) error {
	if enc < 0 || srv < 0 || wireBytes < 0 {
		return fmt.Errorf("netsim: negative pipeline stage (enc=%v bytes=%d srv=%v)", enc, wireBytes, srv)
	}
	p.encDone += enc
	tx := p.encDone
	if p.txDone > tx {
		tx = p.txDone
	}
	p.txDone = tx + p.link.SerializationTime(wireBytes)
	arrive := p.txDone + p.link.Latency
	if p.srvDone > arrive {
		arrive = p.srvDone
	}
	p.srvDone = arrive + srv
	p.chunks++
	return nil
}

// Chunks reports how many chunks have been scheduled.
func (p *Pipeline) Chunks() int { return p.chunks }

// ClientBusy returns the total client encryption time scheduled so far.
func (p *Pipeline) ClientBusy() time.Duration { return p.encDone }

// Makespan returns the time at which the server finishes its last chunk.
func (p *Pipeline) Makespan() time.Duration { return p.srvDone }

// Finish completes the protocol: the server's response of respBytes travels
// back and the client spends decrypt decrypting it. It returns the total
// end-to-end online time.
func (p *Pipeline) Finish(respBytes int64, decrypt time.Duration) time.Duration {
	return p.srvDone + p.link.OneWayTime(respBytes) + decrypt
}

// SequentialTime returns the non-pipelined baseline for the same chunks:
// all encryption, then all serialization plus one latency, then all server
// work. This is what the unbatched protocol costs, and the quantity
// Figure 4 compares against.
type SequentialTally struct {
	Enc       time.Duration
	WireBytes int64
	Srv       time.Duration
}

// Total returns the sequential makespan over the link, excluding the
// response leg (add link.OneWayTime(respBytes)+decrypt just as Finish does).
func (s SequentialTally) Total(link Link) time.Duration {
	return s.Enc + link.OneWayTime(s.WireBytes) + s.Srv
}
