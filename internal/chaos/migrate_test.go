package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	mrand "math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"privstats/internal/cluster"
	"privstats/internal/colstore"
	"privstats/internal/database"
	"privstats/internal/paillier"
	"privstats/internal/testutil"
	"privstats/internal/wire"
)

// migrationKillPoints enumerates where the chaos strikes during a live
// reshard: a freshly provisioned backend before the cut-over, a new backend
// right after the cut-over, or an old backend still draining pinned
// sessions.
const (
	killNewPreCutover = iota
	killNewPostCutover
	killOldPostCutover
	migrationKillPoints
)

// classifiedQueryErr reports whether a failed query died cleanly: a coded
// peer error (e.g. [shard-unavailable] from the aggregator) or a classified
// retry exhaustion — never a silent wrong answer or an unexplained fault.
func classifiedQueryErr(err error) bool {
	if wire.ErrorCodeOf(err) != wire.CodeNone {
		return true
	}
	var ex *cluster.ExhaustedError
	return errors.As(err, &ex)
}

// TestRestartChaosMigration is the resharding half of the chaos suite: a
// real sumproxy over two real sumserver -table-dir backends takes
// continuous queries while the test migrates the table to four shard
// directories (colstore.ExtractShard), spawns new backends, and cuts over
// via POST /reshard — and, at a seeded point, SIGKILLs a random backend
// mid-migration and restarts it on the same directory. Every query across
// the whole run must be exact against the plaintext oracle or cleanly
// classified, and the cluster must converge back to exact answers.
func TestRestartChaosMigration(t *testing.T) {
	serverBin := testutil.BuildBinary(t, "sumserver")
	proxyBin := testutil.BuildBinary(t, "sumproxy")

	const rows, blockRows = 240, 32
	table, err := database.Generate(rows, database.DistUniform, 461)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := database.GenerateSelection(rows, 100, database.PatternRandom, 462)
	if err != nil {
		t.Fatal(err)
	}
	want, err := table.SelectedSum(sel)
	if err != nil {
		t.Fatal(err)
	}
	sk := paillier.SchemeKey{SK: chaosKey(t)}

	// One master store on disk; halves extracted once (they are read-only
	// and every run serves them verbatim), quarters re-extracted per run so
	// the block-by-block migration copy runs under chaos every time.
	masterDir := t.TempDir()
	if s, err := colstore.BuildFrom(table, masterDir, colstore.Options{BlockRows: blockRows}); err != nil {
		t.Fatal(err)
	} else if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	master, err := colstore.Open(masterDir, colstore.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	halves := [][2]int{{0, 120}, {120, 240}}
	quarters := [][2]int{{0, 60}, {60, 120}, {120, 180}, {180, 240}}
	halfDirs := make([]string, len(halves))
	scratch := t.TempDir()
	for i, r := range halves {
		halfDirs[i] = filepath.Join(scratch, fmt.Sprintf("half%d", i))
		if err := colstore.ExtractShard(master, halfDirs[i], r[0], r[1], colstore.Options{}); err != nil {
			t.Fatal(err)
		}
	}

	startStore := func(t *testing.T, dir string) (*testutil.Daemon, string) {
		d := testutil.StartDaemon(t, serverBin, "-listen", "127.0.0.1:0", "-table-dir", dir)
		return d, d.WaitLog(`serving \d+ rows on (\S+) \(`, 15*time.Second)
	}
	mapSpec := func(ranges [][2]int, addrs []string) string {
		parts := make([]string, len(ranges))
		for i, r := range ranges {
			parts[i] = fmt.Sprintf("%d-%d=%s", r[0], r[1], addrs[i])
		}
		return strings.Join(parts, ";")
	}
	reshard := func(t *testing.T, statsAddr, spec string) uint64 {
		t.Helper()
		resp, err := http.Post("http://"+statsAddr+"/reshard", "text/plain", strings.NewReader(spec))
		if err != nil {
			t.Fatalf("POST /reshard: %v", err)
		}
		defer resp.Body.Close()
		var doc struct {
			Epoch uint64 `json:"epoch"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /reshard: status %d, decode err %v", resp.StatusCode, err)
		}
		return doc.Epoch
	}

	runs := chaosRuns(t)
	for run := 0; run < runs; run++ {
		t.Run(fmt.Sprintf("seed%d", run), func(t *testing.T) {
			rng := mrand.New(mrand.NewSource(int64(3000 + run)))

			oldD := make([]*testutil.Daemon, len(halves))
			oldAddrs := make([]string, len(halves))
			for i := range halves {
				oldD[i], oldAddrs[i] = startStore(t, halfDirs[i])
			}
			proxy := testutil.StartDaemon(t, proxyBin,
				"-listen", "127.0.0.1:0",
				"-stats-addr", "127.0.0.1:0",
				"-shards", mapSpec(halves, oldAddrs),
				"-retries", "2",
				"-backoff", "5ms",
				"-probe-after", "50ms",
			)
			proxyAddr := proxy.WaitLog(`aggregating \d+ rows over \d+ shards on (\S+)`, 15*time.Second)
			statsAddr := proxy.WaitLog(`stats endpoint on http://(\S+)/stats`, 15*time.Second)

			cl := cluster.NewClient(cluster.ClientConfig{Retries: 2, Backoff: 5 * time.Millisecond, ProbeAfter: 50 * time.Millisecond})
			query := func() error {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				defer cancel()
				got, err := cl.Query(ctx, []string{proxyAddr}, sk, sel, 16, nil)
				if err != nil {
					return err
				}
				if got.Cmp(want) != 0 {
					t.Errorf("WRONG RESULT: sum = %v, oracle %v", got, want)
				}
				return nil
			}

			// Continuous load across the whole migration. Failures are
			// tolerated only if cleanly classified.
			var loadMu sync.Mutex
			exact, coded := 0, 0
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					err := query()
					loadMu.Lock()
					if err == nil {
						exact++
					} else if classifiedQueryErr(err) {
						coded++
					} else {
						t.Errorf("unclassified query failure: %v", err)
					}
					loadMu.Unlock()
				}
			}()

			// Baseline on epoch 1 must be exact.
			if err := query(); err != nil {
				t.Fatalf("pre-migration query: %v", err)
			}

			// The migration copy: quarters extracted block-by-block (CRC
			// verified inside ExtractShard) onto fresh directories.
			runDir := t.TempDir()
			quarterDirs := make([]string, len(quarters))
			for i, r := range quarters {
				quarterDirs[i] = filepath.Join(runDir, fmt.Sprintf("q%d", i))
				if err := colstore.ExtractShard(master, quarterDirs[i], r[0], r[1], colstore.Options{}); err != nil {
					t.Fatalf("extracting quarter %d: %v", i, err)
				}
			}
			newD := make([]*testutil.Daemon, len(quarters))
			newAddrs := make([]string, len(quarters))
			for i := range quarters {
				newD[i], newAddrs[i] = startStore(t, quarterDirs[i])
			}

			killPoint := rng.Intn(migrationKillPoints)
			victim := rng.Intn(len(quarters))
			sleep := func() { time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond) }

			if killPoint == killNewPreCutover {
				// A provisioned backend crashes before the cut-over; the
				// restart reopens the same directory. The serving epoch never
				// saw it, so nothing may fail.
				sleep()
				newD[victim].Kill()
				newD[victim], newAddrs[victim] = startStore(t, quarterDirs[victim])
			}

			if epoch := reshard(t, statsAddr, mapSpec(quarters, newAddrs)); epoch != 2 {
				t.Fatalf("cut-over installed epoch %d, want 2", epoch)
			}

			switch killPoint {
			case killNewPostCutover:
				// A serving new backend crashes right after the cut-over.
				// Queries may fail classified until the operator restarts it
				// on the same directory and re-posts its address.
				sleep()
				newD[victim].Kill()
				sleep()
				newD[victim], newAddrs[victim] = startStore(t, quarterDirs[victim])
				if epoch := reshard(t, statsAddr, mapSpec(quarters, newAddrs)); epoch != 3 {
					t.Fatalf("repair cut-over installed epoch %d, want 3", epoch)
				}
			case killOldPostCutover:
				// An old backend dies while epoch-1 sessions may still be
				// draining against it — new-epoch queries must not notice.
				sleep()
				victim = rng.Intn(len(halves))
				oldD[victim].Kill()
				sleep()
			}

			// Convergence: with the final map posted and every serving
			// backend alive, queries must go back to exact — and stay there.
			deadline := time.Now().Add(60 * time.Second)
			for {
				if err := query(); err == nil {
					break
				} else if !classifiedQueryErr(err) {
					t.Fatalf("unclassified failure during convergence: %v", err)
				}
				if time.Now().After(deadline) {
					t.Fatalf("cluster did not converge to exact answers\nproxy:\n%s", proxy.Output())
				}
				time.Sleep(20 * time.Millisecond)
			}
			for i := 0; i < 2; i++ {
				if err := query(); err != nil {
					t.Fatalf("post-convergence query %d: %v", i, err)
				}
			}

			close(stop)
			wg.Wait()
			loadMu.Lock()
			defer loadMu.Unlock()
			if exact == 0 {
				t.Error("background load completed zero exact queries")
			}
			t.Logf("kill_point=%d victim=%d exact=%d classified=%d", killPoint, victim, exact, coded)
		})
	}
}
