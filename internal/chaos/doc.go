// Package chaos holds the restart-chaos suite: real sumjobd and stockd
// binaries are started against scratch state directories, SIGKILLed at a
// seeded random point mid-run, and restarted on the same state. The
// invariants are absolute — every job ends either exact against the
// plaintext oracle or cleanly classified with a "[code]" error (never a
// partial or wrong statistic), and a restarted stock daemon serves from its
// last crash-safe snapshot, losing at most one snapshot interval of stock.
//
// The suite lives in _test files; this package builds to nothing. Scale the
// seeded run count with CHAOS_RESTARTS (the `make chaos-restart` gate runs
// 100 per daemon under the race detector).
package chaos
