package chaos

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"privstats/internal/database"
	"privstats/internal/jobs"
	"privstats/internal/paillier"
	"privstats/internal/server"
	"privstats/internal/stock"
	"privstats/internal/testutil"
)

func discardLogf(string, ...any) {}

// chaosRuns is the seeded-run count: small by default so `go test ./...`
// stays fast, 100 under `make chaos-restart`.
func chaosRuns(t *testing.T) int {
	t.Helper()
	s := os.Getenv("CHAOS_RESTARTS")
	if s == "" {
		return 2
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		t.Fatalf("bad CHAOS_RESTARTS=%q", s)
	}
	return n
}

var (
	chaosKeyOnce sync.Once
	chaosSK      *paillier.PrivateKey
	chaosKeyErr  error
)

func chaosKey(t *testing.T) *paillier.PrivateKey {
	t.Helper()
	chaosKeyOnce.Do(func() { chaosSK, chaosKeyErr = paillier.KeyGen(rand.Reader, 256) })
	if chaosKeyErr != nil {
		t.Fatal(chaosKeyErr)
	}
	return chaosSK
}

// jobStatus is the slice of the job JSON the suite asserts on.
type jobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Result *struct {
		Count int    `json:"count"`
		Sum   string `json:"sum"`
	} `json:"result"`
}

func getJob(t *testing.T, base, id string) (jobStatus, bool) {
	t.Helper()
	resp, err := http.Get(base + "/" + id)
	if err != nil {
		return jobStatus{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return jobStatus{}, false
	}
	var job jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatalf("decoding job %s: %v", id, err)
	}
	return job, true
}

// TestRestartChaosSumjobd is the headline durability test: N jobs are
// submitted to a real sumjobd process over a live backend, the process is
// SIGKILLed at a seeded random point, and a restart on the same -store must
// finish every job either exact against the plaintext oracle or cleanly
// classified — zero wrong results, ever.
func TestRestartChaosSumjobd(t *testing.T) {
	bin := testutil.BuildBinary(t, "sumjobd")

	const rows = 120
	table, err := database.Generate(rows, database.DistUniform, 991)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(table, server.Config{Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	backend := ln.Addr().String()

	// The analyst key must survive restarts, exactly as in production.
	scratch := t.TempDir()
	raw, err := chaosKey(t).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	keyPath := filepath.Join(scratch, "analyst.key")
	if err := os.WriteFile(keyPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	tenantsPath := filepath.Join(scratch, "tenants.json")
	tenants := `[{"name":"acme","weight":1,"rate":1000,"burst":1000,"max_queued":64}]`
	if err := os.WriteFile(tenantsPath, []byte(tenants), 0o600); err != nil {
		t.Fatal(err)
	}

	startJobd := func(t *testing.T, store string) (*testutil.Daemon, string) {
		d := testutil.StartDaemon(t, bin,
			"-listen", "127.0.0.1:0",
			"-backends", backend,
			"-rows", strconv.Itoa(rows),
			"-tenants", tenantsPath,
			"-key", keyPath,
			"-store", store,
			"-slots", "1",
		)
		base := d.WaitLog(`job gateway on (http://\S+/jobs)`, 15*time.Second)
		return d, base
	}

	runs := chaosRuns(t)
	for run := 0; run < runs; run++ {
		t.Run(fmt.Sprintf("seed%d", run), func(t *testing.T) {
			rng := mrand.New(mrand.NewSource(int64(1000 + run)))
			store := t.TempDir()
			d, base := startJobd(t, store)

			const jobCount = 6
			type want struct {
				id    string
				count int
				sum   uint64
			}
			wants := make([]want, 0, jobCount)
			for j := 0; j < jobCount; j++ {
				n := 1 + rng.Intn(rows)
				sel := append([]int(nil), rng.Perm(rows)[:n]...)
				sort.Ints(sel)
				var sum uint64
				for _, r := range sel {
					sum += uint64(table.Value(r))
				}
				body, err := json.Marshal(jobs.JobSpec{
					Op:        "sum",
					Selection: jobs.SelectionSpec{Rows: sel},
				})
				if err != nil {
					t.Fatal(err)
				}
				req, err := http.NewRequest(http.MethodPost, base, bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				req.Header.Set(jobs.TenantHeader, "acme")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatalf("submit %d: %v", j, err)
				}
				var job jobStatus
				if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted || job.ID == "" {
					t.Fatalf("submit %d: status %d, job %+v", j, resp.StatusCode, job)
				}
				wants = append(wants, want{id: job.ID, count: n, sum: sum})
			}

			// The crash: a seeded random instant into execution.
			time.Sleep(time.Duration(rng.Intn(80)) * time.Millisecond)
			d.Kill()

			// Restart on the same store. Every submitted job must reach a
			// terminal state: done-and-exact or failed-and-classified.
			d2, base2 := startJobd(t, store)
			deadline := time.Now().Add(90 * time.Second)
			for _, w := range wants {
				var job jobStatus
				for {
					var ok bool
					job, ok = getJob(t, base2, w.id)
					if !ok {
						t.Fatalf("job %s lost across the crash", w.id)
					}
					if job.State == "done" || job.State == "failed" {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("job %s stuck in %s after restart\n%s", w.id, job.State, d2.Output())
					}
					time.Sleep(5 * time.Millisecond)
				}
				switch job.State {
				case "done":
					if job.Result == nil {
						t.Fatalf("job %s done with no result", w.id)
					}
					if job.Result.Sum != strconv.FormatUint(w.sum, 10) || job.Result.Count != w.count {
						t.Fatalf("WRONG RESULT: job %s = %+v, oracle sum %d over %d rows",
							w.id, *job.Result, w.sum, w.count)
					}
				case "failed":
					if !strings.HasPrefix(job.Error, "[") {
						t.Fatalf("job %s failed unclassified: %q", w.id, job.Error)
					}
				}
			}

			// Recovery counters joined the exposition.
			resp, err := http.Get(strings.TrimSuffix(base2, "/jobs") + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			prom, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			series, err := testutil.ParseProm(string(prom))
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := series["privstats_jobs_recovered_total"]; !ok || got < float64(jobCount) {
				t.Errorf("privstats_jobs_recovered_total = %v (present %v), want >= %d", got, ok, jobCount)
			}
			if _, ok := series["privstats_jobs_replayed_bytes"]; !ok {
				t.Error("privstats_jobs_replayed_bytes missing from exposition")
			}

			d2.Signal(syscall.SIGTERM)
			if err := d2.Wait(15 * time.Second); err != nil {
				t.Fatalf("graceful exit: %v\n%s", err, d2.Output())
			}
		})
	}
}

// TestRestartChaosStockd kills a snapshotting stock daemon mid-run and
// asserts the restart restores exactly the surviving snapshot — the daemon
// loses at most one snapshot interval of stock and serves the restored items
// without a single online fallback.
func TestRestartChaosStockd(t *testing.T) {
	bin := testutil.BuildBinary(t, "stockd")
	sk := chaosKey(t)
	pk := sk.Public()
	fp, err := paillier.KeyFingerprint(pk)
	if err != nil {
		t.Fatal(err)
	}
	label := hex.EncodeToString(fp[:8])

	start := func(t *testing.T, dir string) (*testutil.Daemon, string) {
		d := testutil.StartDaemon(t, bin,
			"-listen", "127.0.0.1:0",
			"-target-zeros", "32",
			"-target-ones", "8",
			"-state-dir", dir,
			"-snapshot-every", "25ms",
		)
		addr := d.WaitLog(`stock daemon on (\S+) `, 15*time.Second)
		return d, addr
	}
	prime := func(t *testing.T, addr string) *stock.RemoteSource {
		rs, err := stock.NewRemoteSource(stock.RemoteSourceConfig{
			Addr:        addr,
			Key:         pk,
			TargetZeros: 8,
			TargetOnes:  4,
			Logf:        discardLogf,
		})
		if err != nil {
			t.Fatal(err)
		}
		// A freshly (re)started daemon may not have refilled yet; priming
		// against a still-warming daemon is expected to fail and retry.
		deadline := time.Now().Add(30 * time.Second)
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := rs.Prime(ctx)
			cancel()
			if err == nil {
				return rs
			}
			if time.Now().After(deadline) {
				rs.Close()
				t.Fatalf("priming from stockd: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	runs := chaosRuns(t)
	for run := 0; run < runs; run++ {
		t.Run(fmt.Sprintf("seed%d", run), func(t *testing.T) {
			rng := mrand.New(mrand.NewSource(int64(2000 + run)))
			dir := t.TempDir()
			d, addr := start(t, dir)

			// Say hello (admitting the key) and draw real stock.
			rs := prime(t, addr)
			rs.Close()

			// Wait until at least one snapshot covers the key, then crash at
			// a seeded random point — possibly mid-snapshot, which the atomic
			// rename must make invisible.
			bitsPath := filepath.Join(dir, label+".bits")
			waitDeadline := time.Now().Add(15 * time.Second)
			for {
				if st, err := paillier.LoadBitStore(bitsPath, pk); err == nil {
					z, o := st.Depth()
					if z+o > 0 {
						break
					}
				}
				if time.Now().After(waitDeadline) {
					t.Fatalf("no usable snapshot appeared\n%s", d.Output())
				}
				time.Sleep(5 * time.Millisecond)
			}
			time.Sleep(time.Duration(rng.Intn(60)) * time.Millisecond)
			d.Kill()

			// The surviving snapshot is ground truth for the restart.
			st, err := paillier.LoadBitStore(bitsPath, pk)
			if err != nil {
				t.Fatalf("snapshot unreadable after SIGKILL: %v", err)
			}
			z, o := st.Depth()
			var rnds int
			if pool, err := paillier.LoadRandomizerPool(filepath.Join(dir, label+".rnd"), pk); err == nil {
				rnds = pool.Depth()
			}

			d2, addr2 := start(t, dir)
			line := d2.WaitLog(`stock: recovery: (keys_restored=\S+ \S+ \S+ \S+)`, 15*time.Second)
			want := fmt.Sprintf("keys_restored=1 bits_loaded=%d randomizers_loaded=%d stale_discarded=0", z+o, rnds)
			if line != want {
				t.Fatalf("recovery summary = %q, want %q", line, want)
			}

			// The restored stock serves: a full prime with zero online
			// fallbacks means every item came from the daemon.
			rs2 := prime(t, addr2)
			if n := rs2.OnlineFallbacks(); n != 0 {
				t.Errorf("%d online fallbacks drawing from restored daemon", n)
			}
			rs2.Close()

			// SIGHUP takes the same drain-then-persist exit as SIGTERM.
			d2.Signal(syscall.SIGHUP)
			if err := d2.Wait(15 * time.Second); err != nil {
				t.Fatalf("SIGHUP exit: %v\n%s", err, d2.Output())
			}
			if _, err := os.Stat(filepath.Join(dir, label+".pk")); err != nil {
				t.Errorf("no persisted key after SIGHUP drain: %v", err)
			}
		})
	}
}
