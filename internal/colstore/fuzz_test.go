package colstore

import (
	"testing"
)

// fuzzSlot encodes a slot for the corpus, panicking on bad fixture input.
func fuzzSlot(index uint64, blockRows int, vals []uint32) []byte {
	buf, err := EncodeBlock(index, blockRows, vals)
	if err != nil {
		panic(err)
	}
	return buf
}

// FuzzReadBlock feeds arbitrary slot bytes to ReadBlock: it must never
// panic, truncation at any byte boundary and foreign magic must reject, and
// any buffer it accepts must survive a canonical re-encode round trip in
// which every single-bit flip is caught by the CRC.
func FuzzReadBlock(f *testing.F) {
	good := fuzzSlot(3, 8, []uint32{1, 2, 3, 4, 5, 6, 7, 8})
	partial := fuzzSlot(0, 8, []uint32{42})
	f.Add([]byte{}, uint16(8), uint64(3))
	f.Add(good, uint16(8), uint64(3))
	f.Add(good, uint16(8), uint64(4)) // index mismatch
	f.Add(good[:len(good)-1], uint16(8), uint64(3))
	f.Add(good[:slotHeadSize], uint16(8), uint64(3))
	f.Add(partial, uint16(8), uint64(0))
	flipped := append([]byte(nil), good...)
	flipped[slotHeadSize+5] ^= 0x10
	f.Add(flipped, uint16(8), uint64(3))
	foreign := append([]byte(nil), good...)
	copy(foreign, "PSDB") // a bit-store file, not a column block
	f.Add(foreign, uint16(8), uint64(3))
	zeroCount := append([]byte(nil), good...)
	zeroCount[12], zeroCount[13], zeroCount[14], zeroCount[15] = 0, 0, 0, 0
	f.Add(zeroCount, uint16(8), uint64(3))

	f.Fuzz(func(t *testing.T, data []byte, brRaw uint16, index uint64) {
		blockRows := int(brRaw%1024) + 1
		vals, err := ReadBlock(data, blockRows, index)
		if err != nil {
			return
		}
		if len(vals) == 0 || len(vals) > blockRows {
			t.Fatalf("accepted %d rows in a %d-row block", len(vals), blockRows)
		}
		// Anything accepted must re-encode canonically and read back equal.
		enc, err := EncodeBlock(index, blockRows, vals)
		if err != nil {
			t.Fatalf("re-encode of accepted block: %v", err)
		}
		back, err := ReadBlock(enc, blockRows, index)
		if err != nil {
			t.Fatalf("re-read of re-encoded block: %v", err)
		}
		if len(back) != len(vals) || !equalU32(back, vals) {
			t.Fatalf("round trip changed rows: %v -> %v", vals, back)
		}
		// Every byte of a canonical slot is either under the CRC or is the
		// CRC, so any single-bit flip must reject.
		bit := int(index % uint64(len(enc)*8))
		mut := append([]byte(nil), enc...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := ReadBlock(mut, blockRows, index); err == nil {
			t.Fatalf("bit flip at %d accepted", bit)
		}
		// Truncation at any boundary short of a full slot must reject.
		cut := int(index % uint64(len(enc)))
		if _, err := ReadBlock(enc[:cut], blockRows, index); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	})
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
