package colstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"privstats/internal/database"
)

// BuildFrom materialises an in-memory table as a store at dir — the test
// and tooling bridge between the two substrates.
func BuildFrom(t *database.Table, dir string, opts Options) (*Store, error) {
	s, err := Create(dir, opts)
	if err != nil {
		return nil, err
	}
	if err := s.Append(t.Values()); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.Sync(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// ExtractShard copies visible rows [lo, hi) of src into a fresh store at
// dstDir — the block-by-block data move behind a shard migration. The copy
// streams (bounded memory at any table size), every source block's CRC is
// checked by the read path, and the destination is verified by re-opening
// it and comparing a full re-read against the source's row checksum before
// the function reports success. The destination's BaseRow is stamped
// src.BaseRow()+lo, so the shard directory knows its global range.
//
// Any existing table file at dstDir is removed first: a migration retry
// after a crash mid-copy starts over rather than trusting a partial copy.
func ExtractShard(src *Store, dstDir string, lo, hi int, opts Options) error {
	if n := src.Len(); lo < 0 || hi < lo || hi > n {
		return fmt.Errorf("colstore: bad shard range [%d,%d) of %d rows", lo, hi, n)
	}
	if err := os.Remove(filepath.Join(dstDir, TableFile)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("colstore: clearing stale shard copy: %w", err)
	}
	if opts.BlockRows == 0 {
		opts.BlockRows = src.BlockRows()
	}
	opts.BaseRow = src.BaseRow() + uint64(lo)
	opts.ReadOnly = false

	wantCRC, err := src.Checksum(lo, hi)
	if err != nil {
		return fmt.Errorf("colstore: checksumming source rows [%d,%d): %w", lo, hi, err)
	}
	dst, err := Create(dstDir, opts)
	if err != nil {
		return err
	}
	copyErr := src.Scan(lo, hi, func(vals []uint32) error { return dst.Append(vals) })
	if copyErr == nil {
		copyErr = dst.Sync()
	}
	if cerr := dst.Close(); copyErr == nil {
		copyErr = cerr
	}
	if copyErr != nil {
		return fmt.Errorf("colstore: copying rows [%d,%d) to %s: %w", lo, hi, dstDir, copyErr)
	}

	// Verify the bytes that actually landed on disk, not the write-side
	// buffers: reopen read-only, frame-check every block, and compare the
	// logical row stream against the source checksum.
	chk, err := Open(dstDir, Options{ReadOnly: true, CacheBlocks: -1})
	if err != nil {
		return fmt.Errorf("colstore: reopening shard copy %s: %w", dstDir, err)
	}
	defer chk.Close()
	if err := chk.Verify(); err != nil {
		return fmt.Errorf("colstore: verifying shard copy %s: %w", dstDir, err)
	}
	if got := chk.Len(); got != hi-lo {
		return fmt.Errorf("%w: shard copy %s holds %d rows, want %d", ErrCorruptStore, dstDir, got, hi-lo)
	}
	gotCRC, err := chk.Checksum(0, hi-lo)
	if err != nil {
		return fmt.Errorf("colstore: checksumming shard copy %s: %w", dstDir, err)
	}
	if gotCRC != wantCRC {
		return fmt.Errorf("%w: shard copy %s row checksum %#x, want %#x", ErrCorruptStore, dstDir, gotCRC, wantCRC)
	}
	return nil
}
