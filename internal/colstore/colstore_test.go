package colstore

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"privstats/internal/database"
)

// TestRoundTripProperty is the codec/store property test: across random
// block geometries and table lengths — including the empty and single-row
// stores, lengths on and around block boundaries — every row written comes
// back exactly, through point reads, a reopened store, and Scan.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		blockRows := 1 + rng.Intn(64)
		var n int
		switch trial {
		case 0:
			n = 0
		case 1:
			n = 1
		case 2:
			n = blockRows // exactly one full block
		case 3:
			n = blockRows + 1 // straddles the boundary
		default:
			n = rng.Intn(16 * blockRows)
		}
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = rng.Uint32()
		}

		dir := t.TempDir()
		s, err := Create(dir, Options{BlockRows: blockRows, CacheBlocks: 4})
		if err != nil {
			t.Fatalf("trial %d: Create: %v", trial, err)
		}
		// Append in random-size pieces to exercise tail handling.
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(3*blockRows)
			if hi > n {
				hi = n
			}
			if err := s.Append(vals[lo:hi]); err != nil {
				t.Fatalf("trial %d: Append: %v", trial, err)
			}
			lo = hi
		}
		if err := s.Sync(); err != nil {
			t.Fatalf("trial %d: Sync: %v", trial, err)
		}
		checkStore := func(s *Store, label string) {
			t.Helper()
			if s.Len() != n {
				t.Fatalf("trial %d %s: Len = %d, want %d", trial, label, s.Len(), n)
			}
			for _, i := range samples(rng, n, 20) {
				got, err := s.Value(i)
				if err != nil {
					t.Fatalf("trial %d %s: Value(%d): %v", trial, label, i, err)
				}
				if got != vals[i] {
					t.Fatalf("trial %d %s: row %d = %d, want %d", trial, label, i, got, vals[i])
				}
			}
			var scanned []uint32
			if err := s.Scan(0, n, func(v []uint32) error {
				scanned = append(scanned, v...)
				return nil
			}); err != nil {
				t.Fatalf("trial %d %s: Scan: %v", trial, label, err)
			}
			for i := range scanned {
				if scanned[i] != vals[i] {
					t.Fatalf("trial %d %s: scanned row %d = %d, want %d", trial, label, i, scanned[i], vals[i])
				}
			}
			if err := s.Verify(); err != nil {
				t.Fatalf("trial %d %s: Verify: %v", trial, label, err)
			}
		}
		checkStore(s, "fresh")
		if err := s.Close(); err != nil {
			t.Fatalf("trial %d: Close: %v", trial, err)
		}
		r, err := Open(dir, Options{ReadOnly: true, CacheBlocks: 4})
		if err != nil {
			t.Fatalf("trial %d: Open: %v", trial, err)
		}
		checkStore(r, "reopened")
		r.Close()
	}
}

// samples returns up to k indices in [0, n), always including the edges.
func samples(rng *rand.Rand, n, k int) []int {
	if n == 0 {
		return nil
	}
	idx := []int{0, n - 1}
	for len(idx) < k {
		idx = append(idx, rng.Intn(n))
	}
	return idx
}

// TestVisibilitySemantics pins the committed-length contract: appended rows
// are invisible until their block is complete or flushed.
func TestVisibilitySemantics(t *testing.T) {
	s, err := Create(t.TempDir(), Options{BlockRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append([]uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("unflushed tail visible: Len = %d, want 0", s.Len())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("after Flush: Len = %d, want 3", s.Len())
	}
	// A fourth row completes the block: visible without an explicit flush.
	if err := s.Append([]uint32{4, 5}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("after completing block: Len = %d, want 4", s.Len())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint32{1, 2, 3, 4, 5} {
		if got, err := s.Value(i); err != nil || got != want {
			t.Fatalf("row %d = %d (%v), want %d", i, got, err, want)
		}
	}
	// An already-issued column keeps its snapshot length.
	col := s.Column()
	if err := s.Append([]uint32{6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 5 {
		t.Fatalf("column grew with the store: Len = %d, want 5", col.Len())
	}
	if s.Len() != 8 {
		t.Fatalf("store Len = %d, want 8", s.Len())
	}
}

// TestOpenTornTail simulates the crash model: arbitrary truncation of the
// file must recover every full block before the damage and drop the rest —
// exactly like the journal's torn-tail replay.
func TestOpenTornTail(t *testing.T) {
	dir := t.TempDir()
	const blockRows, n = 8, 100
	table, _ := database.Generate(n, database.DistUniform, 9)
	s, err := BuildFrom(table, dir, Options{BlockRows: blockRows})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, TableFile)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	slot := slotSize(blockRows)
	for _, cut := range []int{1, slot / 2, slot - 1, slot, slot + 3} {
		if err := os.WriteFile(path, whole[:len(whole)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, Options{}) // writable: truncates the torn tail
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		// Cutting a whole number of slots leaves a clean, shorter table;
		// anything else must be reported as a torn tail.
		if st := r.Stats(); st.TornTail != (cut%slot != 0) {
			t.Fatalf("cut %d: TornTail = %v", cut, st.TornTail)
		}
		// Everything still visible must be exact.
		for i := 0; i < r.Len(); i++ {
			got, err := r.Value(i)
			if err != nil {
				t.Fatalf("cut %d: Value(%d): %v", cut, i, err)
			}
			if got != table.Value(i) {
				t.Fatalf("cut %d: row %d = %d, want %d", cut, i, got, table.Value(i))
			}
		}
		// Only whole trailing blocks may be lost.
		lost := n - r.Len()
		if lost <= 0 || lost > 2*blockRows {
			t.Fatalf("cut %d: lost %d rows, want a bounded trailing loss", cut, lost)
		}
		r.Close()
	}
}

// TestOpenRejectsForeignAndCorrupt pins the hard-reject envelope: foreign
// magic and interior bit flips are ErrCorruptStore, never a quiet misread.
func TestOpenRejectsForeignAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, TableFile)

	// Foreign file: a PSDB in-memory table dump must be rejected.
	if err := os.WriteFile(path, append([]byte("PSDB"), make([]byte, 64)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("foreign magic: err = %v, want ErrCorruptStore", err)
	}

	// A flipped bit inside an interior block: Open succeeds (it only frames
	// the tail), the read path must refuse the block.
	os.Remove(path)
	table, _ := database.Generate(64, database.DistUniform, 3)
	s, err := BuildFrom(table, dir, Options{BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	raw, _ := os.ReadFile(path)
	raw[headerSize+slotSize(8)+20] ^= 0x40 // inside block 1's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Value(10); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("bit flip: Value err = %v, want ErrCorruptStore", err)
	}
	if err := r.Verify(); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("bit flip: Verify err = %v, want ErrCorruptStore", err)
	}
	// And the serving column turns it into a panic for the runtime's
	// per-session isolation, not a wrong zero.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bit flip: column At did not panic")
			}
		}()
		r.Column().At(10)
	}()
}

// TestExtractShard checks the migration copy: exact rows, self-describing
// base row, verification catching a damaged copy.
func TestExtractShard(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	table, _ := database.Generate(1000, database.DistUniform, 5)
	src, err := BuildFrom(table, srcDir, Options{BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// Block-straddling range with a different destination geometry.
	if err := ExtractShard(src, dstDir, 250, 777, Options{BlockRows: 8}); err != nil {
		t.Fatal(err)
	}
	dst, err := Open(dstDir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if dst.BaseRow() != 250 {
		t.Fatalf("BaseRow = %d, want 250", dst.BaseRow())
	}
	if dst.Len() != 527 {
		t.Fatalf("Len = %d, want 527", dst.Len())
	}
	for i := 0; i < dst.Len(); i++ {
		got, err := dst.Value(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != table.Value(250+i) {
			t.Fatalf("row %d = %d, want %d", i, got, table.Value(250+i))
		}
	}
	dst.Close()

	// Re-extract over the same directory must succeed (migration retry).
	if err := ExtractShard(src, dstDir, 0, 100, Options{}); err != nil {
		t.Fatalf("re-extract: %v", err)
	}

	// A copy that lands damaged must fail verification: flip a byte via a
	// source with a corrupted file and check ExtractShard notices on read.
	raw, _ := os.ReadFile(filepath.Join(srcDir, TableFile))
	bad := bytes.Clone(raw)
	bad[headerSize+slotHeadSize+5] ^= 0x01
	badDir := t.TempDir()
	if err := os.MkdirAll(badDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(badDir, TableFile), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	badSrc, err := Open(badDir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer badSrc.Close()
	if err := ExtractShard(badSrc, t.TempDir(), 0, 100, Options{}); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("corrupt source: err = %v, want ErrCorruptStore", err)
	}
}

// TestIngestConcurrentWithReads races one appender against point readers
// and scanners; under -race this is the storage half of the "ingest
// concurrent with queries" target. Readers must only ever see committed
// prefixes, and every value they see must be correct.
func TestIngestConcurrentWithReads(t *testing.T) {
	const blockRows, total = 32, 10_000
	vals := make([]uint32, total)
	rng := rand.New(rand.NewSource(11))
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	s, err := Create(t.TempDir(), Options{BlockRows: blockRows, CacheBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for lo := 0; lo < total; lo += 100 {
			hi := lo + 100
			if hi > total {
				hi = total
			}
			if err := s.Append(vals[lo:hi]); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
		if err := s.Sync(); err != nil {
			t.Errorf("Sync: %v", err)
		}
	}()

	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		n := s.Len()
		if n == 0 {
			continue
		}
		i := rng.Intn(n)
		got, err := s.Value(i)
		if err != nil {
			t.Fatalf("Value(%d) of %d visible: %v", i, n, err)
		}
		if got != vals[i] {
			t.Fatalf("row %d = %d, want %d", i, got, vals[i])
		}
		if err := s.Scan(0, n, func([]uint32) error { return nil }); err != nil {
			t.Fatalf("Scan(0,%d): %v", n, err)
		}
	}
	if s.Len() != total {
		t.Fatalf("final Len = %d, want %d", s.Len(), total)
	}
}

// TestBoundedMemory serves the acceptance bound directly: a 10^7-row table
// (40 MB on disk) scanned and point-read through a small cache must not
// pull the table into memory — the live heap stays well below table size.
func TestBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10^7-row store build")
	}
	const n = 10_000_000
	dir := t.TempDir()
	s, err := Create(dir, Options{BlockRows: 1 << 16, CacheBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := database.NewValueStream(database.DistUniform, 21)
	batch := make([]uint32, 1<<16)
	var want uint64
	for done := 0; done < n; {
		b := batch
		if n-done < len(b) {
			b = b[:n-done]
		}
		stream.Fill(b)
		for _, v := range b {
			want += uint64(v)
		}
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
		done += len(b)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	batch = nil

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	var got uint64
	if err := s.Scan(0, n, func(vals []uint32) error {
		for _, v := range vals {
			got += uint64(v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("scan sum = %d, want %d", got, want)
	}
	rng := rand.New(rand.NewSource(1))
	col := s.Column()
	for i := 0; i < 10_000; i++ {
		col.At(rng.Intn(n))
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	s.Close()

	// 40 MB of rows on disk; the cache holds 8 blocks of 256 KiB. Allow
	// generous slack for the runtime, but far below the table itself.
	const limit = 16 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > limit {
		t.Fatalf("heap grew %d bytes serving a %d-byte table; want < %d", grew, 4*n, limit)
	}
}

// TestLRUCache pins the cache's bounded size and hit behavior.
func TestLRUCache(t *testing.T) {
	c := newBlockCache(2)
	c.put(1, []uint32{1})
	c.put(2, []uint32{2})
	c.put(3, []uint32{3}) // evicts 1
	if _, ok := c.get(1); ok {
		t.Fatal("block 1 not evicted")
	}
	if v, ok := c.get(2); !ok || v[0] != 2 {
		t.Fatal("block 2 lost")
	}
	c.put(4, []uint32{4}) // 2 was just used; evicts 3
	if _, ok := c.get(3); ok {
		t.Fatal("block 3 not evicted")
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
}

// TestRangeView checks the global-coordinate sub-range source.
func TestRangeView(t *testing.T) {
	table, _ := database.Generate(100, database.DistSmall, 2)
	s, err := BuildFrom(table, t.TempDir(), Options{BlockRows: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v, err := s.Range(30, 60)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 30 || v.Column().Len() != 30 || v.SquareColumn().Len() != 30 {
		t.Fatalf("view lens = %d/%d/%d, want 30", v.Len(), v.Column().Len(), v.SquareColumn().Len())
	}
	for i := 0; i < 30; i++ {
		want := uint64(table.Value(30 + i))
		if got := v.Column().At(i); got != want {
			t.Fatalf("view row %d = %d, want %d", i, got, want)
		}
		if got := v.SquareColumn().At(i); got != want*want {
			t.Fatalf("view square %d = %d, want %d", i, got, want*want)
		}
	}
	if _, err := s.Range(50, 101); err == nil {
		t.Fatal("out-of-bounds Range accepted")
	}
}
