// Package colstore is the out-of-core column engine: a chunked on-disk
// store of 32-bit rows, laid out as fixed-size CRC-framed blocks behind the
// same envelope discipline as the durable journal (magic, version, CRC-32
// IEEE, torn-tail tolerance, foreign-file hard reject). It exposes the
// database.Column interfaces, so the selected-sum fold, the cluster shards,
// and cmd/sumserver serve disk-resident tables exactly as they serve
// in-memory ones — the storage layer behind the 10^8-row north star.
//
// On-disk layout (<dir>/table.pscs), all integers big-endian:
//
//	header:  "PSCT" | version u32 | blockRows u32 | flags u32 | baseRow u64
//	slot i:  "PSCB" | index u64 | count u32 | payload blockRows*4 B | crc u32
//
// Every slot has the same size, so block i lives at a computable offset and
// a single pread serves any row. The CRC covers everything before it in the
// slot. All blocks are full (count == blockRows) except possibly the last;
// rows past count are zero padding. Full blocks are immutable — only the
// trailing partial slot is ever rewritten — which is the whole crash model:
// a torn write can damage at most the tail block, and Open drops it.
package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// TableFile is the single data file inside a table directory.
const TableFile = "table.pscs"

const (
	fileMagic  = "PSCT"
	blockMagic = "PSCB"
	version    = 1

	headerSize    = 24 // magic + version + blockRows + flags + baseRow
	slotHeadSize  = 16 // magic + index + count
	slotTrailSize = 4  // crc

	// MaxBlockRows bounds rows per block so a corrupted header cannot
	// drive slot-size arithmetic or allocations to absurd values.
	MaxBlockRows = 1 << 24
)

// ErrCorruptStore reports a structurally damaged table file: foreign magic,
// unsupported version, impossible geometry, or a CRC mismatch beyond the
// single torn tail slot the crash model allows.
var ErrCorruptStore = errors.New("colstore: corrupt table file")

// Header is the decoded table-file header.
type Header struct {
	// BlockRows is the fixed row capacity of every block.
	BlockRows int
	// BaseRow is the global row index of local row 0 — shard directories
	// produced by a migration are self-describing about their range.
	BaseRow uint64
}

// slotSize returns the byte size of one block slot for the given geometry.
func slotSize(blockRows int) int {
	return slotHeadSize + blockRows*4 + slotTrailSize
}

// EncodeHeader renders the file header.
func EncodeHeader(h Header) []byte {
	buf := make([]byte, headerSize)
	copy(buf, fileMagic)
	binary.BigEndian.PutUint32(buf[4:], version)
	binary.BigEndian.PutUint32(buf[8:], uint32(h.BlockRows))
	binary.BigEndian.PutUint32(buf[12:], 0)
	binary.BigEndian.PutUint64(buf[16:], h.BaseRow)
	return buf
}

// ParseHeader decodes and validates a file header. Foreign magic is a hard
// reject: a PSDB table, a journal, or arbitrary bytes must never be
// misread as an empty or tiny column store.
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < headerSize {
		return Header{}, fmt.Errorf("%w: header %d bytes, want %d", ErrCorruptStore, len(buf), headerSize)
	}
	if string(buf[:4]) != fileMagic {
		return Header{}, fmt.Errorf("%w: bad magic %q", ErrCorruptStore, buf[:4])
	}
	if v := binary.BigEndian.Uint32(buf[4:]); v != version {
		return Header{}, fmt.Errorf("%w: unsupported version %d", ErrCorruptStore, v)
	}
	br := binary.BigEndian.Uint32(buf[8:])
	if br == 0 || br > MaxBlockRows {
		return Header{}, fmt.Errorf("%w: block rows %d out of range [1,%d]", ErrCorruptStore, br, MaxBlockRows)
	}
	if flags := binary.BigEndian.Uint32(buf[12:]); flags != 0 {
		return Header{}, fmt.Errorf("%w: unknown header flags %#x", ErrCorruptStore, flags)
	}
	return Header{
		BlockRows: int(br),
		BaseRow:   binary.BigEndian.Uint64(buf[16:]),
	}, nil
}

// EncodeBlock renders one slot: block number index holding vals, padded to
// blockRows rows, CRC-trailed. len(vals) must be in [1, blockRows].
func EncodeBlock(index uint64, blockRows int, vals []uint32) ([]byte, error) {
	if blockRows <= 0 || blockRows > MaxBlockRows {
		return nil, fmt.Errorf("colstore: block rows %d out of range", blockRows)
	}
	if len(vals) == 0 || len(vals) > blockRows {
		return nil, fmt.Errorf("colstore: %d rows in a %d-row block", len(vals), blockRows)
	}
	buf := make([]byte, slotSize(blockRows))
	copy(buf, blockMagic)
	binary.BigEndian.PutUint64(buf[4:], index)
	binary.BigEndian.PutUint32(buf[12:], uint32(len(vals)))
	for i, v := range vals {
		binary.BigEndian.PutUint32(buf[slotHeadSize+4*i:], v)
	}
	crc := crc32.ChecksumIEEE(buf[:len(buf)-slotTrailSize])
	binary.BigEndian.PutUint32(buf[len(buf)-slotTrailSize:], crc)
	return buf, nil
}

// ReadBlock decodes one slot buffer for block number index under the given
// geometry. It returns the block's rows (count of them, padding stripped).
// Truncation, a flipped bit anywhere under the CRC, foreign magic, an index
// mismatch, or an impossible count all return ErrCorruptStore — never a
// panic, whatever the bytes (the fuzz target pins this).
func ReadBlock(buf []byte, blockRows int, index uint64) ([]uint32, error) {
	if blockRows <= 0 || blockRows > MaxBlockRows {
		return nil, fmt.Errorf("colstore: block rows %d out of range", blockRows)
	}
	want := slotSize(blockRows)
	if len(buf) < want {
		return nil, fmt.Errorf("%w: slot %d bytes, want %d", ErrCorruptStore, len(buf), want)
	}
	buf = buf[:want]
	if string(buf[:4]) != blockMagic {
		return nil, fmt.Errorf("%w: bad block magic %q", ErrCorruptStore, buf[:4])
	}
	crc := crc32.ChecksumIEEE(buf[:want-slotTrailSize])
	if got := binary.BigEndian.Uint32(buf[want-slotTrailSize:]); got != crc {
		return nil, fmt.Errorf("%w: block %d crc %#x, want %#x", ErrCorruptStore, index, got, crc)
	}
	if got := binary.BigEndian.Uint64(buf[4:]); got != index {
		return nil, fmt.Errorf("%w: block numbered %d at slot %d", ErrCorruptStore, got, index)
	}
	count := binary.BigEndian.Uint32(buf[12:])
	if count == 0 || int64(count) > int64(blockRows) {
		return nil, fmt.Errorf("%w: block %d holds %d rows of %d", ErrCorruptStore, index, count, blockRows)
	}
	vals := make([]uint32, count)
	for i := range vals {
		vals[i] = binary.BigEndian.Uint32(buf[slotHeadSize+4*i:])
	}
	return vals, nil
}
