package colstore

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"privstats/internal/database"
)

// Default geometry. 8192 rows per block is 32 KiB of payload — large enough
// that sequential scans run at disk bandwidth, small enough that a point
// read wastes little, and 64 cached blocks bound the resident decoded set
// to ~2 MiB regardless of table size.
const (
	DefaultBlockRows   = 8192
	DefaultCacheBlocks = 64
)

// Options configures Create and Open. The zero value means defaults.
type Options struct {
	// BlockRows fixes the rows-per-block geometry at Create; Open reads it
	// from the header and ignores this field.
	BlockRows int
	// BaseRow is the global row index of local row 0, stamped into the
	// header at Create (shard directories carry their own offset).
	BaseRow uint64
	// CacheBlocks caps the decoded-block LRU. 0 means DefaultCacheBlocks;
	// negative disables caching.
	CacheBlocks int
	// ReadOnly opens the store for serving only: Append/Flush/Sync are
	// rejected and a torn tail is tolerated in place rather than truncated.
	ReadOnly bool
}

func (o Options) cacheBlocks() int {
	switch {
	case o.CacheBlocks == 0:
		return DefaultCacheBlocks
	case o.CacheBlocks < 0:
		return 0
	default:
		return o.CacheBlocks
	}
}

// Store is one on-disk column of 32-bit rows. Reads (Value, Column views,
// Scan) are safe concurrently with each other and with a single appender:
// full blocks are immutable on disk, and the mutable tail block is served
// from memory. Rows become visible once their block is written — a full
// block immediately on Append, the partial tail on Flush/Sync/Close.
type Store struct {
	f    *os.File
	path string
	h    Header
	slot int // slot size in bytes for this geometry

	mu         sync.RWMutex
	fullBlocks int      // complete, immutable blocks on disk
	tail       []uint32 // rows of the trailing partial block
	tailOnDisk int      // prefix of tail already written (and thus visible)
	writable   bool
	closed     bool
	torn       bool // Open found and dropped/ignored a torn tail

	cacheMu sync.Mutex
	cache   *blockCache
}

// Create initialises a new table directory: the directory is created if
// missing, the data file must not already exist.
func Create(dir string, opts Options) (*Store, error) {
	br := opts.BlockRows
	if br == 0 {
		br = DefaultBlockRows
	}
	if br < 0 || br > MaxBlockRows {
		return nil, fmt.Errorf("colstore: block rows %d out of range", br)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("colstore: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, TableFile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("colstore: creating %s: %w", path, err)
	}
	h := Header{BlockRows: br, BaseRow: opts.BaseRow}
	if _, err := f.Write(EncodeHeader(h)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("colstore: writing header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("colstore: syncing header: %w", err)
	}
	syncDir(path)
	return &Store{
		f:        f,
		path:     path,
		h:        h,
		slot:     slotSize(br),
		writable: true,
		cache:    newBlockCache(opts.cacheBlocks()),
	}, nil
}

// Open loads an existing table directory. The crash model mirrors the
// durable journal: trailing bytes that do not form a CRC-valid slot are a
// torn tail — dropped (and truncated away when writable) — but anything
// structurally wrong before the tail, or a foreign file, is a hard
// ErrCorruptStore.
func Open(dir string, opts Options) (*Store, error) {
	path := filepath.Join(dir, TableFile)
	flag := os.O_RDWR
	if opts.ReadOnly {
		flag = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flag, 0)
	if err != nil {
		return nil, fmt.Errorf("colstore: opening %s: %w", path, err)
	}
	s, err := open(f, path, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func open(f *os.File, path string, opts Options) (*Store, error) {
	hbuf := make([]byte, headerSize)
	if _, err := f.ReadAt(hbuf, 0); err != nil {
		return nil, fmt.Errorf("%w: reading header of %s: %v", ErrCorruptStore, path, err)
	}
	h, err := ParseHeader(hbuf)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("colstore: stat %s: %w", path, err)
	}
	slot := slotSize(h.BlockRows)
	body := fi.Size() - headerSize
	nSlots := int(body / int64(slot))
	torn := body%int64(slot) != 0

	readSlot := func(i int) ([]uint32, error) {
		buf := make([]byte, slot)
		if _, err := f.ReadAt(buf, headerSize+int64(i)*int64(slot)); err != nil {
			return nil, fmt.Errorf("%w: reading slot %d: %v", ErrCorruptStore, i, err)
		}
		return ReadBlock(buf, h.BlockRows, uint64(i))
	}

	var last []uint32
	if nSlots > 0 {
		last, err = readSlot(nSlots - 1)
		if err != nil {
			// A crash can tear at most the slot being written — the tail.
			// Drop it; the slot before it must be intact or the file is
			// corrupt beyond the crash model.
			torn = true
			nSlots--
			last = nil
			if nSlots > 0 {
				last, err = readSlot(nSlots - 1)
				if err != nil {
					return nil, fmt.Errorf("%s: slot %d: %w", path, nSlots-1, err)
				}
			}
		}
	}

	s := &Store{
		f:        f,
		path:     path,
		h:        h,
		slot:     slot,
		writable: !opts.ReadOnly,
		torn:     torn,
		cache:    newBlockCache(opts.cacheBlocks()),
	}
	switch {
	case nSlots == 0:
	case len(last) == h.BlockRows:
		s.fullBlocks = nSlots
	default:
		s.fullBlocks = nSlots - 1
		s.tail = last
		s.tailOnDisk = len(last)
	}
	if torn && s.writable {
		if err := f.Truncate(headerSize + int64(nSlots)*int64(slot)); err != nil {
			return nil, fmt.Errorf("colstore: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("colstore: syncing %s: %w", path, err)
		}
	}
	return s, nil
}

// syncDir fsyncs path's parent so a freshly created file is itself durable.
// Refusal (some network mounts) is tolerated, as in the durable package.
func syncDir(path string) {
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// BlockRows returns the store's rows-per-block geometry.
func (s *Store) BlockRows() int { return s.h.BlockRows }

// BaseRow returns the global row index of local row 0.
func (s *Store) BaseRow() uint64 { return s.h.BaseRow }

// Len returns the number of visible rows: every row whose block has been
// written to the file. Rows appended but not yet flushed are excluded.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fullBlocks*s.h.BlockRows + s.tailOnDisk
}

// Append adds rows. Each time the in-memory tail fills a whole block the
// block is written out and becomes visible to readers; call Flush or Sync
// to make a trailing partial block visible too. Append never blocks behind
// readers of full blocks.
func (s *Store) Append(vals []uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("colstore: %s is closed", s.path)
	}
	if !s.writable {
		return fmt.Errorf("colstore: %s is read-only", s.path)
	}
	s.tail = append(s.tail, vals...)
	br := s.h.BlockRows
	for len(s.tail) >= br {
		if err := s.writeSlot(s.fullBlocks, s.tail[:br]); err != nil {
			return err
		}
		s.fullBlocks++
		s.tail = append(make([]uint32, 0, br), s.tail[br:]...)
		s.tailOnDisk = 0
	}
	return nil
}

// Flush writes the trailing partial block (if any rows are pending), making
// every appended row visible to readers. Durability needs Sync.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.closed {
		return fmt.Errorf("colstore: %s is closed", s.path)
	}
	if !s.writable {
		return fmt.Errorf("colstore: %s is read-only", s.path)
	}
	if len(s.tail) == 0 || s.tailOnDisk == len(s.tail) {
		return nil
	}
	if err := s.writeSlot(s.fullBlocks, s.tail); err != nil {
		return err
	}
	s.tailOnDisk = len(s.tail)
	return nil
}

// Sync flushes the tail and fsyncs the file: everything visible is durable.
// A later crash while the tail block grows can lose at most that one
// partial block — full blocks are never rewritten.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("colstore: syncing %s: %w", s.path, err)
	}
	return nil
}

// Close flushes and syncs (when writable) and releases the file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	if s.writable {
		if ferr := s.flushLocked(); ferr != nil {
			err = ferr
		} else if serr := s.f.Sync(); serr != nil {
			err = fmt.Errorf("colstore: syncing %s: %w", s.path, serr)
		}
	}
	if cerr := s.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("colstore: closing %s: %w", s.path, cerr)
	}
	s.closed = true
	return err
}

// writeSlot encodes and pwrites one slot. Callers hold s.mu.
func (s *Store) writeSlot(index int, vals []uint32) error {
	buf, err := EncodeBlock(uint64(index), s.h.BlockRows, vals)
	if err != nil {
		return err
	}
	if _, err := s.f.WriteAt(buf, headerSize+int64(index)*int64(s.slot)); err != nil {
		return fmt.Errorf("colstore: writing block %d of %s: %w", index, s.path, err)
	}
	return nil
}

// Value returns visible row i.
func (s *Store) Value(i int) (uint32, error) {
	s.mu.RLock()
	fb, tod := s.fullBlocks, s.tailOnDisk
	br := s.h.BlockRows
	if i < 0 || i >= fb*br+tod {
		s.mu.RUnlock()
		return 0, fmt.Errorf("colstore: row %d out of range [0,%d)", i, fb*br+tod)
	}
	b := i / br
	if b == fb {
		v := s.tail[i-fb*br]
		s.mu.RUnlock()
		return v, nil
	}
	s.mu.RUnlock()
	vals, err := s.block(b)
	if err != nil {
		return 0, err
	}
	return vals[i-b*br], nil
}

// block returns the decoded rows of full block b, via the LRU cache.
func (s *Store) block(b int) ([]uint32, error) {
	s.cacheMu.Lock()
	vals, ok := s.cache.get(b)
	s.cacheMu.Unlock()
	if ok {
		return vals, nil
	}
	vals, err := s.readFullBlock(b, make([]byte, s.slot))
	if err != nil {
		return nil, err
	}
	s.cacheMu.Lock()
	s.cache.put(b, vals)
	s.cacheMu.Unlock()
	return vals, nil
}

// readFullBlock preads and decodes full block b into buf, which must be one
// slot long. Full blocks are immutable, so no lock is needed.
func (s *Store) readFullBlock(b int, buf []byte) ([]uint32, error) {
	if _, err := s.f.ReadAt(buf, headerSize+int64(b)*int64(s.slot)); err != nil {
		return nil, fmt.Errorf("%w: reading block %d of %s: %v", ErrCorruptStore, b, s.path, err)
	}
	vals, err := ReadBlock(buf, s.h.BlockRows, uint64(b))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.path, err)
	}
	if len(vals) != s.h.BlockRows {
		return nil, fmt.Errorf("%w: interior block %d of %s holds %d rows of %d",
			ErrCorruptStore, b, s.path, len(vals), s.h.BlockRows)
	}
	return vals, nil
}

// column adapts rows [lo, lo+n) of a store to database.Column. At panics on
// I/O errors or on-disk corruption — the server runtime's per-session panic
// isolation turns that into one failed session, not a crashed process.
type column struct {
	s      *Store
	lo, n  int
	square bool
}

func (c column) Len() int { return c.n }

func (c column) At(i int) uint64 {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("colstore: column row %d out of range [0,%d)", i, c.n))
	}
	v, err := c.s.Value(c.lo + i)
	if err != nil {
		panic(err)
	}
	u := uint64(v)
	if c.square {
		return u * u
	}
	return u
}

// Column returns the value column over the rows visible now. Later appends
// do not grow an already-issued column, so a session folds against a
// consistent snapshot length.
func (s *Store) Column() database.Column { return column{s: s, n: s.Len()} }

// SquareColumn returns the column of squared values. Squares are computed
// on the fly from the cached 32-bit blocks — an on-disk squares column
// would double the file for one multiply per access.
func (s *Store) SquareColumn() database.Column { return column{s: s, n: s.Len(), square: true} }

// View is a fixed sub-range of a store, itself a database.Source — the
// disk-backed analogue of Table.Shard for serving one shard of a larger
// table out of a full-table directory.
type View struct {
	s      *Store
	lo, hi int
}

// Range returns the view of visible rows [lo, hi).
func (s *Store) Range(lo, hi int) (*View, error) {
	if n := s.Len(); lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("colstore: bad range [%d,%d) of %d rows", lo, hi, n)
	}
	return &View{s: s, lo: lo, hi: hi}, nil
}

// Len returns the view's row count.
func (v *View) Len() int { return v.hi - v.lo }

// Column returns the view's value column.
func (v *View) Column() database.Column { return column{s: v.s, lo: v.lo, n: v.hi - v.lo} }

// SquareColumn returns the view's squared-value column.
func (v *View) SquareColumn() database.Column {
	return column{s: v.s, lo: v.lo, n: v.hi - v.lo, square: true}
}

// Scan streams visible rows [lo, hi) to fn in block-sized slices, reading
// the file sequentially and bypassing the LRU (a full-table scan must not
// evict a serving session's working set). fn must not retain the slice.
func (s *Store) Scan(lo, hi int, fn func(vals []uint32) error) error {
	s.mu.RLock()
	fb, tod := s.fullBlocks, s.tailOnDisk
	br := s.h.BlockRows
	var tail []uint32
	if tod > 0 {
		tail = append([]uint32(nil), s.tail[:tod]...)
	}
	s.mu.RUnlock()
	n := fb*br + tod
	if lo < 0 || hi < lo || hi > n {
		return fmt.Errorf("colstore: bad scan range [%d,%d) of %d rows", lo, hi, n)
	}
	buf := make([]byte, s.slot)
	for b := lo / br; b*br < hi; b++ {
		var vals []uint32
		if b < fb {
			var err error
			if vals, err = s.readFullBlock(b, buf); err != nil {
				return err
			}
		} else {
			vals = tail
		}
		from, to := 0, len(vals)
		if lo > b*br {
			from = lo - b*br
		}
		if hi < b*br+len(vals) {
			to = hi - b*br
		}
		if from < to {
			if err := fn(vals[from:to]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Checksum returns the CRC-32 (IEEE) of rows [lo, hi) as a big-endian byte
// stream — a geometry-independent fingerprint of the logical row sequence,
// used to verify migrated shard copies against their source.
func (s *Store) Checksum(lo, hi int) (uint32, error) {
	var crc uint32
	var be [4]byte
	err := s.Scan(lo, hi, func(vals []uint32) error {
		for _, v := range vals {
			be[0], be[1], be[2], be[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
			crc = crc32.Update(crc, crc32.IEEETable, be[:])
		}
		return nil
	})
	return crc, err
}

// Stats describes the store for tools and logs.
type Stats struct {
	Rows      int
	Blocks    int
	BlockRows int
	BaseRow   uint64
	TornTail  bool // Open dropped (or, read-only, ignored) a torn tail
	FileBytes int64
}

// Stats returns a snapshot of the store's shape.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	blocks := s.fullBlocks
	if s.tailOnDisk > 0 {
		blocks++
	}
	return Stats{
		Rows:      s.fullBlocks*s.h.BlockRows + s.tailOnDisk,
		Blocks:    blocks,
		BlockRows: s.h.BlockRows,
		BaseRow:   s.h.BaseRow,
		TornTail:  s.torn,
		FileBytes: headerSize + int64(blocks)*int64(s.slot),
	}
}

// Verify re-reads every on-disk block and checks its frame: magic, CRC,
// index, and the all-full-but-last count invariant. It reads sequentially,
// bypassing the cache, and returns the first problem found.
func (s *Store) Verify() error {
	s.mu.RLock()
	fb, tod := s.fullBlocks, s.tailOnDisk
	s.mu.RUnlock()
	buf := make([]byte, s.slot)
	for b := 0; b < fb; b++ {
		if _, err := s.readFullBlock(b, buf); err != nil {
			return err
		}
	}
	if tod > 0 {
		if _, err := s.f.ReadAt(buf, headerSize+int64(fb)*int64(s.slot)); err != nil {
			return fmt.Errorf("%w: reading tail block of %s: %v", ErrCorruptStore, s.path, err)
		}
		vals, err := ReadBlock(buf, s.h.BlockRows, uint64(fb))
		if err != nil {
			return fmt.Errorf("%s: %w", s.path, err)
		}
		if len(vals) < tod {
			return fmt.Errorf("%w: tail block of %s holds %d rows, want >= %d",
				ErrCorruptStore, s.path, len(vals), tod)
		}
	}
	return nil
}
