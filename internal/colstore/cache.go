package colstore

import "container/list"

// blockCache is a small LRU over decoded blocks. Only immutable full blocks
// enter it (the mutable tail block is served from memory), so there is no
// invalidation protocol — an entry is correct forever.
type blockCache struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[int]*list.Element
}

type cacheEntry struct {
	block int
	vals  []uint32
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{cap: capacity, ll: list.New(), m: make(map[int]*list.Element, capacity)}
}

// get returns the cached rows of block b, promoting it to most recent.
func (c *blockCache) get(b int) ([]uint32, bool) {
	el, ok := c.m[b]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).vals, true
}

// put inserts block b, evicting the least recently used entry past capacity.
func (c *blockCache) put(b int, vals []uint32) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.m[b]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).vals = vals
		return
	}
	c.m[b] = c.ll.PushFront(&cacheEntry{block: b, vals: vals})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).block)
	}
}

func (c *blockCache) len() int { return c.ll.Len() }
