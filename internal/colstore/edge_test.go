package colstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"privstats/internal/database"
)

// TestParseHeaderRejects walks the header validation: every structurally
// wrong header is ErrCorruptStore, and a good one round-trips its geometry.
func TestParseHeaderRejects(t *testing.T) {
	good := EncodeHeader(Header{BlockRows: 512, BaseRow: 77})
	h, err := ParseHeader(good)
	if err != nil || h.BlockRows != 512 || h.BaseRow != 77 {
		t.Fatalf("good header: %+v, %v", h, err)
	}

	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"short":          good[:headerSize-1],
		"foreign magic":  mut(func(b []byte) { copy(b, "PSDB") }),
		"bad version":    mut(func(b []byte) { b[7] = 9 }),
		"zero blockRows": mut(func(b []byte) { b[8], b[9], b[10], b[11] = 0, 0, 0, 0 }),
		"huge blockRows": mut(func(b []byte) { b[8] = 0xff }),
		"unknown flags":  mut(func(b []byte) { b[15] = 1 }),
	}
	for name, buf := range cases {
		if _, err := ParseHeader(buf); !errors.Is(err, ErrCorruptStore) {
			t.Errorf("%s: err = %v, want ErrCorruptStore", name, err)
		}
	}
}

// TestBlockGeometryRejects pins the EncodeBlock/ReadBlock argument checks —
// the callers' bugs, not on-disk corruption, so plain errors.
func TestBlockGeometryRejects(t *testing.T) {
	if _, err := EncodeBlock(0, 0, []uint32{1}); err == nil {
		t.Error("EncodeBlock accepted zero blockRows")
	}
	if _, err := EncodeBlock(0, MaxBlockRows+1, []uint32{1}); err == nil {
		t.Error("EncodeBlock accepted oversized blockRows")
	}
	if _, err := EncodeBlock(0, 8, nil); err == nil {
		t.Error("EncodeBlock accepted an empty block")
	}
	if _, err := EncodeBlock(0, 8, make([]uint32, 9)); err == nil {
		t.Error("EncodeBlock accepted an overfull block")
	}
	buf, err := EncodeBlock(0, 8, []uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBlock(buf, 0, 0); err == nil {
		t.Error("ReadBlock accepted zero blockRows")
	}
	if _, err := ReadBlock(buf, MaxBlockRows+1, 0); err == nil {
		t.Error("ReadBlock accepted oversized blockRows")
	}
}

// TestCreateRejects covers the Create precondition paths: bad geometry, an
// existing table file, and an uncreatable directory.
func TestCreateRejects(t *testing.T) {
	if _, err := Create(t.TempDir(), Options{BlockRows: -1}); err == nil {
		t.Error("Create accepted negative blockRows")
	}
	if _, err := Create(t.TempDir(), Options{BlockRows: MaxBlockRows + 1}); err == nil {
		t.Error("Create accepted oversized blockRows")
	}

	dir := t.TempDir()
	s, err := Create(dir, Options{BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Create(dir, Options{BlockRows: 8}); err == nil {
		t.Error("Create overwrote an existing table file")
	}
	// BuildFrom funnels through Create, so it must refuse the same way.
	table, _ := database.Generate(16, database.DistUniform, 1)
	if _, err := BuildFrom(table, dir, Options{BlockRows: 8}); err == nil {
		t.Error("BuildFrom overwrote an existing table file")
	}

	// A directory path that collides with a regular file.
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(filepath.Join(file, "sub"), Options{}); err == nil {
		t.Error("Create succeeded under a regular file")
	}
}

// TestOpenRejectsBeyondCrashModel: damage past the single torn tail slot the
// crash model allows — two trailing slots unreadable — is a hard reject, and
// so are a missing or header-truncated file.
func TestOpenRejectsBeyondCrashModel(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Error("Open succeeded on an empty directory")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, TableFile)
	if err := os.WriteFile(path, []byte("PSCT\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptStore) {
		t.Errorf("truncated header: err = %v, want ErrCorruptStore", err)
	}

	os.Remove(path)
	table, _ := database.Generate(32, database.DistUniform, 2)
	s, err := BuildFrom(table, dir, Options{BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	slot := slotSize(8)
	raw[len(raw)-1] ^= 1      // tail slot CRC
	raw[len(raw)-slot-1] ^= 1 // and the slot before it
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptStore) {
		t.Errorf("two torn slots: err = %v, want ErrCorruptStore", err)
	}
}

// TestSquareColumns pins the on-the-fly squares against the in-memory
// oracle, for the whole store and for a windowed view.
func TestSquareColumns(t *testing.T) {
	table, _ := database.Generate(100, database.DistUniform, 11)
	dir := t.TempDir()
	s, err := BuildFrom(table, dir, Options{BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sq := s.SquareColumn()
	oracle := table.SquareColumn()
	if sq.Len() != oracle.Len() {
		t.Fatalf("square column length %d, want %d", sq.Len(), oracle.Len())
	}
	for i := 0; i < sq.Len(); i++ {
		if got, want := sq.At(i), oracle.At(i); got != want {
			t.Fatalf("square[%d] = %d, want %d", i, got, want)
		}
	}

	v, err := s.Range(25, 75)
	if err != nil {
		t.Fatal(err)
	}
	vsq := v.SquareColumn()
	for i := 0; i < vsq.Len(); i++ {
		if got, want := vsq.At(i), oracle.At(25+i); got != want {
			t.Fatalf("view square[%d] = %d, want %d", i, got, want)
		}
	}

	// Out-of-range column access is a panic (per-session isolation), not a
	// wrong zero.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("column At out of range did not panic")
			}
		}()
		sq.At(sq.Len())
	}()
}

// TestLifecycleRejects covers the writability state machine: read-only
// stores refuse mutation, closed stores refuse everything, Close is
// idempotent, and range checks on the read APIs.
func TestLifecycleRejects(t *testing.T) {
	dir := t.TempDir()
	table, _ := database.Generate(20, database.DistUniform, 4)
	s, err := BuildFrom(table, dir, Options{BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // nothing pending: a no-op, not an error
		t.Fatalf("idle Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Append([]uint32{1}); err == nil {
		t.Error("Append succeeded on a closed store")
	}
	if err := s.Flush(); err == nil {
		t.Error("Flush succeeded on a closed store")
	}

	r, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Append([]uint32{1}); err == nil {
		t.Error("Append succeeded on a read-only store")
	}
	if err := r.Sync(); err == nil {
		t.Error("Sync succeeded on a read-only store")
	}
	if _, err := r.Value(-1); err == nil {
		t.Error("Value(-1) succeeded")
	}
	if _, err := r.Value(r.Len()); err == nil {
		t.Error("Value past the end succeeded")
	}
	if _, err := r.Range(10, 5); err == nil {
		t.Error("Range(10,5) succeeded")
	}
	if err := r.Scan(0, r.Len()+1, func([]uint32) error { return nil }); err == nil {
		t.Error("Scan past the end succeeded")
	}
	if err := r.Scan(0, r.Len(), func([]uint32) error { return errors.New("stop") }); err == nil {
		t.Error("Scan swallowed the callback error")
	}
}

// TestVerifyCatchesTornTailWrittenUnderneath: a tail slot damaged after the
// store was opened (out-of-band disk trouble) fails Verify even though the
// open-time frame check passed.
func TestVerifyCatchesTailDamage(t *testing.T) {
	dir := t.TempDir()
	table, _ := database.Generate(20, database.DistUniform, 6) // 2 full + 4-row tail at blockRows 8
	s, err := BuildFrom(table, dir, Options{BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	r, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Verify(); err != nil {
		t.Fatalf("clean Verify: %v", err)
	}

	path := filepath.Join(dir, TableFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+2*slotSize(8)+slotHeadSize] ^= 0x10 // tail payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("damaged tail: Verify err = %v, want ErrCorruptStore", err)
	}
}

// TestExtractShardEdges covers the migration-copy guard rails: range
// validation and the retry-after-crash semantics (a stale partial copy at
// the destination is discarded, not trusted).
func TestExtractShardEdges(t *testing.T) {
	srcDir := t.TempDir()
	table, _ := database.Generate(100, database.DistUniform, 8)
	src, err := BuildFrom(table, srcDir, Options{BlockRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	for _, r := range [][2]int{{-1, 10}, {20, 10}, {0, 101}} {
		if err := ExtractShard(src, t.TempDir(), r[0], r[1], Options{}); err == nil {
			t.Errorf("ExtractShard accepted range [%d,%d)", r[0], r[1])
		}
	}

	// A garbage file from an interrupted earlier attempt must be replaced.
	dstDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dstDir, TableFile), []byte("half a copy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ExtractShard(src, dstDir, 10, 42, Options{}); err != nil {
		t.Fatalf("ExtractShard over a stale copy: %v", err)
	}
	chk, err := Open(dstDir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer chk.Close()
	if chk.Len() != 32 || chk.BaseRow() != 10 {
		t.Fatalf("shard copy: %d rows base %d, want 32 rows base 10", chk.Len(), chk.BaseRow())
	}
	for i := 0; i < chk.Len(); i++ {
		if got, _ := chk.Value(i); got != table.Value(10+i) {
			t.Fatalf("shard row %d = %d, want %d", i, got, table.Value(10+i))
		}
	}
}

// TestBlockCacheEviction unit-tests the LRU directly: replacement of an
// existing key, eviction order past capacity, and the disabled (cap<=0)
// cache.
func TestBlockCacheEviction(t *testing.T) {
	c := newBlockCache(2)
	c.put(1, []uint32{1})
	c.put(2, []uint32{2})
	c.put(1, []uint32{11}) // replace promotes 1 over 2
	c.put(3, []uint32{3})  // evicts 2, the LRU
	if _, ok := c.get(2); ok {
		t.Error("block 2 survived eviction")
	}
	if v, ok := c.get(1); !ok || v[0] != 11 {
		t.Errorf("block 1 = %v, %v; want replaced value", v, ok)
	}
	if _, ok := c.get(3); !ok {
		t.Error("block 3 missing")
	}
	if c.len() != 2 {
		t.Errorf("cache len %d, want 2", c.len())
	}

	off := newBlockCache(0)
	off.put(1, []uint32{1})
	if _, ok := off.get(1); ok || off.len() != 0 {
		t.Error("disabled cache retained an entry")
	}
}
