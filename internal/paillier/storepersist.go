package paillier

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Persistence for the preprocessed bit store — the paper's PDA scenario:
// "mobile devices … that have limited computing power but reasonable
// amounts of storage" precompute encryptions while docked and carry them as
// a file. Format:
//
//	"PSBS"              magic
//	uint32              version
//	32 bytes            SHA-256 of the public key encoding (binding)
//	uint32              ciphertext width
//	uint64 ×2           zero count, one count
//	ciphertexts         zeros then ones, fixed width each
//	uint32              CRC-32 (IEEE) of everything above
//
// The key binding means a store cannot silently be replayed against a
// different key (the draws would be garbage ciphertexts); the checksum
// catches truncation and rot.

const (
	storeMagic   = "PSBS"
	storeVersion = 1
)

// ErrStoreKeyMismatch is returned when a store file was preprocessed under
// a different public key.
var ErrStoreKeyMismatch = errors.New("paillier: bit store belongs to a different key")

// ErrCorruptStore is returned when a store file fails validation.
var ErrCorruptStore = errors.New("paillier: corrupt bit store file")

func keyFingerprint(pk *PublicKey) ([32]byte, error) {
	raw, err := pk.MarshalBinary()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(raw), nil
}

// WriteTo streams the store's current stock to w. The store is not drained;
// callers typically persist right after Fill.
func (s *BitStore) WriteTo(w io.Writer) (int64, error) {
	fp, err := keyFingerprint(s.pk)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	zeros := append([]*Ciphertext(nil), s.zeros...)
	ones := append([]*Ciphertext(nil), s.ones...)
	s.mu.Unlock()

	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	var written int64

	hdr := make([]byte, 0, 64)
	hdr = append(hdr, storeMagic...)
	hdr = binary.BigEndian.AppendUint32(hdr, storeVersion)
	hdr = append(hdr, fp[:]...)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(s.pk.CiphertextSize()))
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(zeros)))
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(ones)))
	n, err := mw.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("paillier: writing store header: %w", err)
	}
	for _, group := range [][]*Ciphertext{zeros, ones} {
		for _, ct := range group {
			n, err := mw.Write(ct.Bytes())
			written += int64(n)
			if err != nil {
				return written, fmt.Errorf("paillier: writing store body: %w", err)
			}
		}
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	n, err = w.Write(sum[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("paillier: writing store checksum: %w", err)
	}
	return written, nil
}

// ReadBitStore loads a store previously written with WriteTo, validating
// the key binding, every ciphertext, and the checksum.
func ReadBitStore(r io.Reader, pk *PublicKey) (*BitStore, error) {
	fp, err := keyFingerprint(pk)
	if err != nil {
		return nil, err
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	hdr := make([]byte, 4+4+32+4+8+8)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorruptStore, err)
	}
	if string(hdr[:4]) != storeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptStore, hdr[:4])
	}
	if v := binary.BigEndian.Uint32(hdr[4:]); v != storeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptStore, v)
	}
	var gotFP [32]byte
	copy(gotFP[:], hdr[8:40])
	if gotFP != fp {
		return nil, ErrStoreKeyMismatch
	}
	width := binary.BigEndian.Uint32(hdr[40:])
	if int(width) != pk.CiphertextSize() {
		return nil, fmt.Errorf("%w: width %d, key needs %d", ErrCorruptStore, width, pk.CiphertextSize())
	}
	nZeros := binary.BigEndian.Uint64(hdr[44:])
	nOnes := binary.BigEndian.Uint64(hdr[52:])
	const maxStock = 1 << 28
	if nZeros > maxStock || nOnes > maxStock {
		return nil, fmt.Errorf("%w: absurd stock counts (%d, %d)", ErrCorruptStore, nZeros, nOnes)
	}

	store := NewBitStore(pk)
	buf := make([]byte, width)
	load := func(count uint64, dst *[]*Ciphertext) error {
		for i := uint64(0); i < count; i++ {
			if _, err := io.ReadFull(tr, buf); err != nil {
				return fmt.Errorf("%w: ciphertext %d: %v", ErrCorruptStore, i, err)
			}
			ct, err := pk.ParseCiphertext(buf)
			if err != nil {
				return fmt.Errorf("%w: ciphertext %d: %v", ErrCorruptStore, i, err)
			}
			*dst = append(*dst, ct)
		}
		return nil
	}
	if err := load(nZeros, &store.zeros); err != nil {
		return nil, err
	}
	if err := load(nOnes, &store.ones); err != nil {
		return nil, err
	}

	wantSum := crc.Sum32()
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrCorruptStore, err)
	}
	if got := binary.BigEndian.Uint32(buf[:4]); got != wantSum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptStore)
	}
	return store, nil
}

// SaveFile writes the store to path atomically.
func (s *BitStore) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("paillier: creating %s: %w", tmp, err)
	}
	bw := bufio.NewWriter(f)
	if _, err := s.WriteTo(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("paillier: flushing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("paillier: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("paillier: renaming into place: %w", err)
	}
	return nil
}

// LoadBitStore reads a store saved by SaveFile.
func LoadBitStore(path string, pk *PublicKey) (*BitStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("paillier: opening %s: %w", path, err)
	}
	defer f.Close()
	store, err := ReadBitStore(bufio.NewReader(f), pk)
	if err != nil {
		return nil, fmt.Errorf("paillier: reading %s: %w", path, err)
	}
	return store, nil
}
