package paillier

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/big"
	"os"

	"privstats/internal/durable"
)

// Persistence for the preprocessed bit store — the paper's PDA scenario:
// "mobile devices … that have limited computing power but reasonable
// amounts of storage" precompute encryptions while docked and carry them as
// a file. Format:
//
//	"PSBS"              magic
//	uint32              version
//	32 bytes            SHA-256 of the public key encoding (binding)
//	uint32              ciphertext width
//	uint64 ×2           zero count, one count
//	ciphertexts         zeros then ones, fixed width each
//	uint32              CRC-32 (IEEE) of everything above
//
// The key binding means a store cannot silently be replayed against a
// different key (the draws would be garbage ciphertexts); the checksum
// catches truncation and rot.

const (
	storeMagic   = "PSBS"
	storeVersion = 1

	// randMagic marks a persisted RandomizerPool. Same header discipline as
	// the bit store — version, key fingerprint, width, count, CRC — but the
	// body is r^N values rather than whole ciphertexts.
	randMagic = "PSRP"
)

// maxStock bounds the counts a store header may declare, rejecting absurd
// values from a corrupt file before any allocation.
const maxStock = 1 << 28

// ErrStoreKeyMismatch is returned when a store file was preprocessed under
// a different public key.
var ErrStoreKeyMismatch = errors.New("paillier: bit store belongs to a different key")

// ErrCorruptStore is returned when a store file fails validation.
var ErrCorruptStore = errors.New("paillier: corrupt bit store file")

func keyFingerprint(pk *PublicKey) ([32]byte, error) {
	raw, err := pk.MarshalBinary()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(raw), nil
}

// KeyFingerprint returns the SHA-256 of the public key's canonical encoding
// — the identity that binds persisted stores and stock-daemon inventories to
// one key, so material for a rotated key is rejected rather than replayed.
func KeyFingerprint(pk *PublicKey) ([32]byte, error) { return keyFingerprint(pk) }

// WriteTo streams the store's current stock to w. The store is not drained;
// callers typically persist right after Fill.
func (s *BitStore) WriteTo(w io.Writer) (int64, error) {
	fp, err := keyFingerprint(s.pk)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	zeros := append([]*Ciphertext(nil), s.zeros...)
	ones := append([]*Ciphertext(nil), s.ones...)
	s.mu.Unlock()

	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	var written int64

	hdr := make([]byte, 0, 64)
	hdr = append(hdr, storeMagic...)
	hdr = binary.BigEndian.AppendUint32(hdr, storeVersion)
	hdr = append(hdr, fp[:]...)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(s.pk.CiphertextSize()))
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(zeros)))
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(ones)))
	n, err := mw.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("paillier: writing store header: %w", err)
	}
	for _, group := range [][]*Ciphertext{zeros, ones} {
		for _, ct := range group {
			n, err := mw.Write(ct.Bytes())
			written += int64(n)
			if err != nil {
				return written, fmt.Errorf("paillier: writing store body: %w", err)
			}
		}
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	n, err = w.Write(sum[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("paillier: writing store checksum: %w", err)
	}
	return written, nil
}

// ReadBitStore loads a store previously written with WriteTo, validating
// the key binding, every ciphertext, and the checksum.
func ReadBitStore(r io.Reader, pk *PublicKey) (*BitStore, error) {
	fp, err := keyFingerprint(pk)
	if err != nil {
		return nil, err
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	hdr := make([]byte, 4+4+32+4+8+8)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorruptStore, err)
	}
	if string(hdr[:4]) != storeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptStore, hdr[:4])
	}
	if v := binary.BigEndian.Uint32(hdr[4:]); v != storeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptStore, v)
	}
	var gotFP [32]byte
	copy(gotFP[:], hdr[8:40])
	if gotFP != fp {
		return nil, ErrStoreKeyMismatch
	}
	width := binary.BigEndian.Uint32(hdr[40:])
	if int(width) != pk.CiphertextSize() {
		return nil, fmt.Errorf("%w: width %d, key needs %d", ErrCorruptStore, width, pk.CiphertextSize())
	}
	nZeros := binary.BigEndian.Uint64(hdr[44:])
	nOnes := binary.BigEndian.Uint64(hdr[52:])
	if nZeros > maxStock || nOnes > maxStock {
		return nil, fmt.Errorf("%w: absurd stock counts (%d, %d)", ErrCorruptStore, nZeros, nOnes)
	}

	store := NewBitStore(pk)
	buf := make([]byte, width)
	load := func(count uint64, dst *[]*Ciphertext) error {
		for i := uint64(0); i < count; i++ {
			if _, err := io.ReadFull(tr, buf); err != nil {
				return fmt.Errorf("%w: ciphertext %d: %v", ErrCorruptStore, i, err)
			}
			ct, err := pk.ParseCiphertext(buf)
			if err != nil {
				return fmt.Errorf("%w: ciphertext %d: %v", ErrCorruptStore, i, err)
			}
			*dst = append(*dst, ct)
		}
		return nil
	}
	if err := load(nZeros, &store.zeros); err != nil {
		return nil, err
	}
	if err := load(nOnes, &store.ones); err != nil {
		return nil, err
	}

	wantSum := crc.Sum32()
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrCorruptStore, err)
	}
	if got := binary.BigEndian.Uint32(buf[:4]); got != wantSum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptStore)
	}
	return store, nil
}

// SaveFile writes the store to path atomically.
func (s *BitStore) SaveFile(path string) error {
	return saveFileAtomic(path, func(w io.Writer) error {
		_, err := s.WriteTo(w)
		return err
	})
}

// saveFileAtomic writes via a temp file and renames into place (with fsync
// on both the file and its directory), so a crash mid-write never leaves a
// truncated store behind — the shared durable.WriteFileAtomic discipline.
func saveFileAtomic(path string, write func(io.Writer) error) error {
	return durable.WriteFileAtomic(path, write)
}

// LoadBitStore reads a store saved by SaveFile.
func LoadBitStore(path string, pk *PublicKey) (*BitStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("paillier: opening %s: %w", path, err)
	}
	defer f.Close()
	store, err := ReadBitStore(bufio.NewReader(f), pk)
	if err != nil {
		return nil, fmt.Errorf("paillier: reading %s: %w", path, err)
	}
	return store, nil
}

// WriteTo streams the pool's current stock to w in the "PSRP" format: the
// PSBS header discipline (magic, version, key fingerprint, width, count)
// over fixed-width r^N values, closed by a CRC-32 trailer.
func (p *RandomizerPool) WriteTo(w io.Writer) (int64, error) {
	fp, err := keyFingerprint(p.pk)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	stock := append([]*big.Int(nil), p.stock...)
	p.mu.Unlock()

	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	var written int64

	width := p.pk.CiphertextSize() // r^N lives in [1, N²), same width
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, randMagic...)
	hdr = binary.BigEndian.AppendUint32(hdr, storeVersion)
	hdr = append(hdr, fp[:]...)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(width))
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(stock)))
	n, err := mw.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("paillier: writing randomizer header: %w", err)
	}
	buf := make([]byte, width)
	for _, rn := range stock {
		rn.FillBytes(buf)
		n, err := mw.Write(buf)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("paillier: writing randomizer body: %w", err)
		}
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	n, err = w.Write(sum[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("paillier: writing randomizer checksum: %w", err)
	}
	return written, nil
}

// ReadRandomizerPool loads a pool previously written with WriteTo,
// validating the key binding, every value's range, and the checksum.
func ReadRandomizerPool(r io.Reader, pk *PublicKey) (*RandomizerPool, error) {
	fp, err := keyFingerprint(pk)
	if err != nil {
		return nil, err
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	hdr := make([]byte, 4+4+32+4+8)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorruptStore, err)
	}
	if string(hdr[:4]) != randMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptStore, hdr[:4])
	}
	if v := binary.BigEndian.Uint32(hdr[4:]); v != storeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptStore, v)
	}
	var gotFP [32]byte
	copy(gotFP[:], hdr[8:40])
	if gotFP != fp {
		return nil, ErrStoreKeyMismatch
	}
	width := binary.BigEndian.Uint32(hdr[40:])
	if int(width) != pk.CiphertextSize() {
		return nil, fmt.Errorf("%w: width %d, key needs %d", ErrCorruptStore, width, pk.CiphertextSize())
	}
	count := binary.BigEndian.Uint64(hdr[44:])
	if count > maxStock {
		return nil, fmt.Errorf("%w: absurd stock count %d", ErrCorruptStore, count)
	}

	pool := NewRandomizerPool(pk)
	buf := make([]byte, width)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return nil, fmt.Errorf("%w: randomizer %d: %v", ErrCorruptStore, i, err)
		}
		rn := new(big.Int).SetBytes(buf)
		if rn.Sign() < 1 || rn.Cmp(pk.NSquared) >= 0 {
			return nil, fmt.Errorf("%w: randomizer %d outside [1, N²)", ErrCorruptStore, i)
		}
		pool.stock = append(pool.stock, rn)
	}

	wantSum := crc.Sum32()
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrCorruptStore, err)
	}
	if got := binary.BigEndian.Uint32(buf[:4]); got != wantSum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptStore)
	}
	return pool, nil
}

// SaveFile writes the pool to path atomically.
func (p *RandomizerPool) SaveFile(path string) error {
	return saveFileAtomic(path, func(w io.Writer) error {
		_, err := p.WriteTo(w)
		return err
	})
}

// LoadRandomizerPool reads a pool saved by SaveFile.
func LoadRandomizerPool(path string, pk *PublicKey) (*RandomizerPool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("paillier: opening %s: %w", path, err)
	}
	defer f.Close()
	pool, err := ReadRandomizerPool(bufio.NewReader(f), pk)
	if err != nil {
		return nil, fmt.Errorf("paillier: reading %s: %w", path, err)
	}
	return pool, nil
}
