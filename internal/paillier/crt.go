package paillier

import (
	"crypto/rand"
	"fmt"
	"math/big"
)

// CRT-accelerated encryption for key owners.
//
// The paper's central measurement (Fig. 2) is that the client's encryption
// work — one r^N mod N² per index bit — dominates end-to-end cost. A client
// that holds the private key (which the selected-sum client always does; it
// decrypts the final sum) can split that exponentiation over the secret
// factors, exactly as CRT decryption already does:
//
//	r^N mod p²  =  (r mod p²)^(N mod p·(p-1)) mod p²
//	r^N mod q²  =  (r mod q²)^(N mod q·(q-1)) mod q²
//
// since Z*_{p²} has order p·(p-1). Recombining with crt2 gives the exact
// r^N mod N² (RandomizerCRT / EncryptWithNonceCRT), at roughly half the
// naive cost: the modulus halves, though the reduced exponent stays ~|N|
// bits (N mod p(p-1) = p·(q mod (p-1))).
//
// Fresh encryptions (EncryptCRT) go further. They do not need the power of
// a *given* r — only a randomizer with the right distribution — so they
// sample it directly in the target subgroup. The randomizers of honest
// encryptions, {r^N mod N² : r ∈ Z*_N}, form the unique subgroup
// H = H_p × H_q of Z*_{N²} with |H_p| = p-1, |H_q| = q-1, and r uniform
// over Z*_N makes r^N uniform over H (r ↦ r^N is (a mod p) ↦ (a^p)^q on the
// p-side: a ↦ a^p mod p² is injective into H_p, and x ↦ x^q is a bijection
// of H_p since gcd(q, p-1) = 1 by key generation). The same H is hit by the
// "z^p shortcut": for z uniform over Z*_N,
//
//	(z mod p)^p mod p²   is uniform over H_p
//	(z mod q)^q mod q²   is uniform over H_q
//
// because (a+bp)^p ≡ a^p (mod p²), so a ↦ a^p maps Z*_p bijectively onto
// H_p. The shortcut's exponents are half-width (|p| bits instead of |N|),
// which with the halved modulus cuts the modular-multiplication count 4x
// against the public-key path. The wall-clock win is smaller — ~2.5x at
// 512-bit keys, ~3x at 1024-bit — because a modular multiplication at half
// width costs more than a quarter of full width (Montgomery per-operation
// overhead; see DESIGN.md §16). The online cost collapses a further two
// orders of magnitude once these randomizers come out of an owner-filled
// pool, which is the client path the ablation gates. Both speedups are
// measured decrypt-verified by bench.ClientEncryptAblation, and the CRT
// arithmetic itself is pinned bit-exact by FuzzEncryptCRTEquivalence.
//
// The stock daemon cannot take any of these paths: it holds only public
// keys (DESIGN.md §16), so its fills stay on the r^N route.

// RandomizerCRT computes the exact randomizer r^N mod N² through the
// factorization: separately mod p² and q² with the exponent reduced mod the
// subgroup orders, recombined by CRT. The result is bit-identical to
// new(big.Int).Exp(r, N, N²) for every valid nonce.
func (sk *PrivateKey) RandomizerCRT(r *big.Int) (*big.Int, error) {
	if err := sk.checkNonce(r); err != nil {
		return nil, err
	}
	rp := new(big.Int).Mod(r, sk.pSquared)
	rp.Exp(rp, sk.nModPOrd, sk.pSquared)
	rq := new(big.Int).Mod(r, sk.qSquared)
	rq.Exp(rq, sk.nModQOrd, sk.qSquared)
	return sk.crt2.Combine(rp, rq), nil
}

// FreshRandomizerCRT samples a fresh randomizer uniform over the N-th
// residues of Z*_{N²} — the exact distribution of r^N for uniform r ∈ Z*_N —
// via the half-width z^p shortcut (see the package comment above). This is
// the fast path behind EncryptCRT and the owner-filled randomizer pool.
func (sk *PrivateKey) FreshRandomizerCRT() (*big.Int, error) {
	// z uniform over Z*_N is, through the CRT isomorphism
	// Z*_N ≅ Z*_p × Z*_q, the same as independent zp uniform over [1,p)
	// and zq uniform over [1,q): the factors are prime, so every nonzero
	// residue is a unit and the rejection-sampling gcd loop a uniform
	// unit mod N would need disappears.
	zp, err := rand.Int(rand.Reader, sk.pMinus1)
	if err != nil {
		return nil, fmt.Errorf("paillier: sampling encryption randomness: %w", err)
	}
	zq, err := rand.Int(rand.Reader, sk.qMinus1)
	if err != nil {
		return nil, fmt.Errorf("paillier: sampling encryption randomness: %w", err)
	}
	one := big.NewInt(1)
	zp.Add(zp, one)
	zq.Add(zq, one)
	zp.Exp(zp, sk.P, sk.pSquared)
	zq.Exp(zq, sk.Q, sk.qSquared)
	return sk.crt2.Combine(zp, zq), nil
}

// EncryptCRT returns a randomized encryption of m computed through the
// factorization — the key owner's fast encryption path. Output ciphertexts
// are identically distributed to PublicKey.Encrypt's.
func (sk *PrivateKey) EncryptCRT(m *big.Int) (*Ciphertext, error) {
	if err := sk.checkMessage(m); err != nil {
		return nil, err
	}
	rn, err := sk.FreshRandomizerCRT()
	if err != nil {
		return nil, err
	}
	return sk.assembleCiphertext(m, rn), nil
}

// EncryptWithNonceCRT is EncryptWithNonce through the CRT randomizer path:
// for any valid (m, r) it returns a ciphertext bit-identical to
// EncryptWithNonce(m, r). FuzzEncryptCRTEquivalence pins this equality.
func (sk *PrivateKey) EncryptWithNonceCRT(m, r *big.Int) (*Ciphertext, error) {
	if err := sk.checkMessage(m); err != nil {
		return nil, err
	}
	rn, err := sk.RandomizerCRT(r)
	if err != nil {
		return nil, err
	}
	return sk.assembleCiphertext(m, rn), nil
}
