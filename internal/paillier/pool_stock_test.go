package paillier

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"math/big"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFillContextCancelledBeforeStart(t *testing.T) {
	sk := testKey(t, 128)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	pool := NewRandomizerPool(sk.Public())
	if err := pool.FillContext(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Errorf("pool fill on cancelled ctx: err = %v", err)
	}
	if pool.Depth() != 0 {
		t.Errorf("cancelled fill left %d randomizers", pool.Depth())
	}

	store := NewBitStore(sk.Public())
	if err := store.FillContext(ctx, 5, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("store fill on cancelled ctx: err = %v", err)
	}
	if z, o := store.Depth(); z != 0 || o != 0 {
		t.Errorf("cancelled fill left (%d,%d) bits", z, o)
	}
}

// TestFillContextPublishesChunks pins the chunked-fill behavior: a concurrent
// reader sees stock before the whole fill lands, and cancelling mid-fill
// keeps what already landed.
func TestFillContextPublishesChunks(t *testing.T) {
	sk := testKey(t, 128)
	store := NewBitStore(sk.Public())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const want = 10 * fillChunk
	done := make(chan error, 1)
	go func() { done <- store.FillContext(ctx, want, 0) }()

	// Wait for the first chunk, then cancel mid-fill.
	deadline := time.After(10 * time.Second)
	for {
		if z, _ := store.Depth(); z > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no stock visible while fill in flight")
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// The fill finished before we observed a partial chunk — the
			// machine is fast, not wrong. Depth must be complete.
			if z, _ := store.Depth(); z != want {
				t.Fatalf("finished fill left %d zeros, want %d", z, want)
			}
			return
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	cancel()
	err := <-done
	z, _ := store.Depth()
	if err == nil {
		if z != want {
			t.Fatalf("fill returned nil but left %d of %d zeros", z, want)
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-fill cancel: err = %v", err)
	}
	if z == 0 || z >= want {
		t.Errorf("cancelled fill kept %d zeros, want partial (0, %d)", z, want)
	}
	// Whatever landed is real stock: it decrypts to the right bit.
	ct, err := store.DrawBit(0)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sk.Decrypt(ct); err != nil || v.Sign() != 0 {
		t.Fatalf("partial stock decrypts to %v (err %v)", v, err)
	}
}

func TestBitStoreDepthTakeAddStock(t *testing.T) {
	sk := testKey(t, 128)
	store := NewBitStore(sk.Public())
	if err := store.Fill(5, 3); err != nil {
		t.Fatal(err)
	}
	if z, o := store.Depth(); z != 5 || o != 3 {
		t.Fatalf("Depth = (%d,%d), want (5,3)", z, o)
	}

	// Take never generates: it returns at most what is stocked.
	got := store.Take(0, 10)
	if len(got) != 5 {
		t.Fatalf("Take(0,10) returned %d, want 5", len(got))
	}
	if z, _ := store.Depth(); z != 0 {
		t.Fatalf("Take left %d zeros", z)
	}
	if store.OnlineFallbacks() != 0 {
		t.Error("Take must not count fallbacks")
	}

	// The taken stock transfers into another store and stays correct.
	other := NewBitStore(sk.Public())
	if err := other.AddStock(0, got); err != nil {
		t.Fatal(err)
	}
	ct, err := other.DrawBit(0)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sk.Decrypt(ct); err != nil || v.Sign() != 0 {
		t.Fatalf("transferred stock decrypts to %v (err %v)", v, err)
	}

	if err := other.AddStock(2, got); err == nil {
		t.Error("AddStock(2, ...) accepted a non-bit")
	}
	if err := other.AddStock(1, []*Ciphertext{nil}); err == nil {
		t.Error("AddStock accepted a nil ciphertext")
	}
}

func TestRandomizerPoolDepthTakeAddStock(t *testing.T) {
	sk := testKey(t, 128)
	pool := NewRandomizerPool(sk.Public())
	if err := pool.Fill(4); err != nil {
		t.Fatal(err)
	}
	if pool.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", pool.Depth())
	}
	got := pool.Take(10)
	if len(got) != 4 || pool.Depth() != 0 {
		t.Fatalf("Take(10) returned %d, left %d", len(got), pool.Depth())
	}
	if pool.OnlineFallbacks() != 0 {
		t.Error("Take must not count fallbacks")
	}

	other := NewRandomizerPool(sk.Public())
	if err := other.AddStock(got); err != nil {
		t.Fatal(err)
	}
	// A transferred r^N still produces a decryptable encryption.
	ct, err := other.Encrypt(big.NewInt(42))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sk.Decrypt(ct); err != nil || v.Int64() != 42 {
		t.Fatalf("encrypt with transferred randomizer: %v (err %v)", v, err)
	}

	for _, bad := range []*big.Int{nil, big.NewInt(0), new(big.Int).Set(sk.Public().NSquared)} {
		if err := other.AddStock([]*big.Int{bad}); err == nil {
			t.Errorf("AddStock accepted %v", bad)
		}
	}
}

func TestRandomizerPoolPersistRoundTrip(t *testing.T) {
	sk := testKey(t, 128)
	pool := NewRandomizerPool(sk.Public())
	if err := pool.Fill(6); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := pool.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRandomizerPool(bytes.NewReader(buf.Bytes()), sk.Public())
	if err != nil {
		t.Fatal(err)
	}
	if back.Depth() != 6 {
		t.Fatalf("restored depth = %d, want 6", back.Depth())
	}
	ct, err := back.Encrypt(big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sk.Decrypt(ct); err != nil || v.Int64() != 7 {
		t.Fatalf("restored randomizer encrypts to %v (err %v)", v, err)
	}

	// Key binding and corruption are rejected like the bit store's.
	sk2 := testKey(t, 256)
	if _, err := ReadRandomizerPool(bytes.NewReader(buf.Bytes()), sk2.Public()); !errors.Is(err, ErrStoreKeyMismatch) {
		t.Errorf("wrong key: err = %v, want ErrStoreKeyMismatch", err)
	}
	good := buf.Bytes()
	for _, pos := range []int{0, 5, 44, 60, len(good) - 1} {
		bad := append([]byte{}, good...)
		bad[pos] ^= 0x01
		if _, err := ReadRandomizerPool(bytes.NewReader(bad), sk.Public()); err == nil {
			t.Errorf("bit flip at %d accepted", pos)
		}
	}
	for _, cut := range []int{0, 20, len(good) / 2, len(good) - 1} {
		if _, err := ReadRandomizerPool(bytes.NewReader(good[:cut]), sk.Public()); !errors.Is(err, ErrCorruptStore) {
			t.Errorf("truncation at %d: err = %v, want ErrCorruptStore", cut, err)
		}
	}
}

func TestRandomizerPoolSaveLoadFile(t *testing.T) {
	sk := testKey(t, 128)
	pool := NewRandomizerPool(sk.Public())
	if err := pool.Fill(3); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pool.psrp")
	if err := pool.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRandomizerPool(path, sk.Public())
	if err != nil {
		t.Fatal(err)
	}
	if back.Depth() != 3 {
		t.Errorf("depth = %d, want 3", back.Depth())
	}
	if _, err := LoadRandomizerPool(filepath.Join(t.TempDir(), "missing"), sk.Public()); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err = %v, want ErrNotExist in chain", err)
	}
}

// The three storepersist error paths an operator actually hits: a file cut
// short by a crash or full disk, a file from before a key rotation, and a
// file whose ciphertext payload rotted.

func TestLoadBitStoreTruncatedFile(t *testing.T) {
	sk := testKey(t, 128)
	store := NewBitStore(sk.Public())
	if err := store.Fill(3, 3); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.psbs")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int64{0, 10, info.Size() / 2, info.Size() - 1} {
		if err := os.Truncate(path, size); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBitStore(path, sk.Public()); !errors.Is(err, ErrCorruptStore) {
			t.Errorf("truncated to %d bytes: err = %v, want ErrCorruptStore", size, err)
		}
	}
}

func TestLoadBitStoreWrongKeyFingerprint(t *testing.T) {
	oldKey := testKey(t, 128)
	// A freshly generated key of the same size: only the fingerprint differs
	// (testKey caches per size, so it would hand back the same key).
	newKey, err := KeyGen(rand.Reader, 128)
	if err != nil {
		t.Fatal(err)
	}
	store := NewBitStore(oldKey.Public())
	if err := store.Fill(2, 2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.psbs")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBitStore(path, newKey.Public()); !errors.Is(err, ErrStoreKeyMismatch) {
		t.Errorf("rotated key: err = %v, want ErrStoreKeyMismatch", err)
	}
}

func TestLoadBitStoreCorruptCiphertextPayload(t *testing.T) {
	sk := testKey(t, 128)
	store := NewBitStore(sk.Public())
	if err := store.Fill(2, 2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.psbs")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first ciphertext (the payload starts after the
	// 60-byte header). Whether the flipped value still parses as a
	// ciphertext or not, the checksum must catch it.
	raw[60+3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBitStore(path, sk.Public()); !errors.Is(err, ErrCorruptStore) {
		t.Errorf("corrupt payload: err = %v, want ErrCorruptStore", err)
	}
}
