package paillier

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func TestBitStorePersistRoundTrip(t *testing.T) {
	sk := testKey(t, 128)
	store := NewBitStore(sk.Public())
	if err := store.Fill(5, 7); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBitStore(&buf, sk.Public())
	if err != nil {
		t.Fatal(err)
	}
	if back.Remaining(0) != 5 || back.Remaining(1) != 7 {
		t.Fatalf("restored stock = (%d,%d)", back.Remaining(0), back.Remaining(1))
	}
	// Every restored ciphertext decrypts to the right bit.
	for i := 0; i < 5; i++ {
		ct, err := back.DrawBit(0)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := sk.Decrypt(ct); err != nil || v.Sign() != 0 {
			t.Fatalf("restored E(0) decrypts to %v (err %v)", v, err)
		}
	}
	for i := 0; i < 7; i++ {
		ct, err := back.DrawBit(1)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := sk.Decrypt(ct); err != nil || v.Int64() != 1 {
			t.Fatalf("restored E(1) decrypts to %v (err %v)", v, err)
		}
	}
}

func TestBitStorePersistKeyBinding(t *testing.T) {
	sk1 := testKey(t, 128)
	sk2 := testKey(t, 256)
	store := NewBitStore(sk1.Public())
	if err := store.Fill(2, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBitStore(&buf, sk2.Public()); !errors.Is(err, ErrStoreKeyMismatch) {
		t.Errorf("wrong key: err = %v, want ErrStoreKeyMismatch", err)
	}
}

func TestBitStorePersistRejectsCorruption(t *testing.T) {
	sk := testKey(t, 128)
	store := NewBitStore(sk.Public())
	if err := store.Fill(3, 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for _, pos := range []int{0, 6, 10, 45, 70, len(good) - 1} {
		bad := append([]byte{}, good...)
		bad[pos] ^= 0x20
		if _, err := ReadBitStore(bytes.NewReader(bad), sk.Public()); err == nil {
			t.Errorf("bit flip at %d accepted", pos)
		}
	}
	for _, cut := range []int{3, 30, len(good) / 2, len(good) - 2} {
		if _, err := ReadBitStore(bytes.NewReader(good[:cut]), sk.Public()); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestBitStoreSaveLoadFile(t *testing.T) {
	sk := testKey(t, 128)
	store := NewBitStore(sk.Public())
	if err := store.Fill(4, 4); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "preproc.psbs")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBitStore(path, sk.Public())
	if err != nil {
		t.Fatal(err)
	}
	if back.Remaining(0) != 4 || back.Remaining(1) != 4 {
		t.Errorf("stock = (%d,%d)", back.Remaining(0), back.Remaining(1))
	}
	if _, err := LoadBitStore(filepath.Join(t.TempDir(), "missing"), sk.Public()); err == nil {
		t.Error("missing file should fail")
	}
}

func TestBitStorePersistEmpty(t *testing.T) {
	sk := testKey(t, 128)
	store := NewBitStore(sk.Public())
	var buf bytes.Buffer
	if _, err := store.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBitStore(&buf, sk.Public())
	if err != nil {
		t.Fatal(err)
	}
	if back.Remaining(0) != 0 || back.Remaining(1) != 0 {
		t.Error("empty store round trip gained stock")
	}
}
