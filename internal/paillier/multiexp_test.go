package paillier

import (
	"math/big"
	"math/rand"
	"testing"
)

// foldFixture encrypts count random small messages and draws count random
// scalars with the given mask, returning the expected plaintext sum.
func foldFixture(t testing.TB, pk *PublicKey, count int, mask uint64, seed int64) ([]*Ciphertext, []uint64, *big.Int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cts := make([]*Ciphertext, count)
	ks := make([]uint64, count)
	want := new(big.Int)
	tmp := new(big.Int)
	for i := range cts {
		m := int64(rng.Intn(1000))
		ct, err := pk.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
		ks[i] = rng.Uint64() & mask
		tmp.SetUint64(ks[i])
		tmp.Mul(tmp, big.NewInt(m))
		want.Add(want, tmp)
	}
	return cts, ks, want.Mod(want, pk.N)
}

func TestFoldScalarMulMatchesNaive(t *testing.T) {
	sk := testKey(t, 256)
	pk := sk.Public()
	for _, count := range []int{1, 2, 17, 64} {
		for _, mask := range []uint64{1, 0xffffffff, ^uint64(0)} {
			cts, ks, want := foldFixture(t, pk, count, mask, int64(count)^int64(mask))
			for _, workers := range []int{1, 2, 4} {
				got, err := pk.FoldScalarMul(cts, ks, workers)
				if err != nil {
					t.Fatalf("FoldScalarMul(count=%d mask=%#x workers=%d): %v", count, mask, workers, err)
				}
				m, err := sk.Decrypt(got)
				if err != nil {
					t.Fatal(err)
				}
				if m.Cmp(want) != 0 {
					t.Fatalf("fold(count=%d mask=%#x workers=%d) decrypts to %v, want %v", count, mask, workers, m, want)
				}
			}
		}
	}
}

func TestFoldScalarMulAllZeroScalars(t *testing.T) {
	sk := testKey(t, 256)
	pk := sk.Public()
	cts, ks, _ := foldFixture(t, pk, 8, 0xffff, 9)
	for i := range ks {
		ks[i] = 0
	}
	got, err := pk.FoldScalarMul(cts, ks, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sk.Decrypt(got)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sign() != 0 {
		t.Errorf("all-zero fold decrypts to %v, want 0", m)
	}
	// The identity accumulator must still compose homomorphically.
	five, err := pk.Encrypt(big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := pk.Add(got, five)
	if err != nil {
		t.Fatal(err)
	}
	if m, err = sk.Decrypt(sum); err != nil || m.Int64() != 5 {
		t.Errorf("identity + E(5) decrypts to %v (%v), want 5", m, err)
	}
}

func TestFoldScalarMulValidation(t *testing.T) {
	sk := testKey(t, 256)
	pk := sk.Public()
	ct, err := pk.Encrypt(big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pk.FoldScalarMul([]*Ciphertext{ct}, []uint64{1, 2}, 1); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := pk.FoldScalarMul([]*Ciphertext{nil}, []uint64{1}, 1); err == nil {
		t.Error("nil ciphertext should fail")
	}
	bad := &Ciphertext{c: new(big.Int).Set(pk.NSquared), byteLen: pk.byteLen}
	if _, err := pk.FoldScalarMul([]*Ciphertext{bad}, []uint64{1}, 1); err == nil {
		t.Error("out-of-range ciphertext should fail")
	}
	// A zero-scalar ciphertext is still validated: the fold must not become
	// a channel for smuggling malformed ciphertexts past the checks.
	if _, err := pk.FoldScalarMul([]*Ciphertext{bad}, []uint64{0}, 1); err == nil {
		t.Error("out-of-range ciphertext with zero scalar should still fail")
	}
}
