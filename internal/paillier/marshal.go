package paillier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Wire formats for keys. Both encodings are sequences of length-prefixed
// big-endian integers behind a magic/version header, so files and network
// messages fail loudly on corruption or version skew.

const (
	pubKeyMagic  = "PSPK" // privstats Paillier public key
	privKeyMagic = "PSSK" // privstats Paillier secret key
	keyVersion   = 1
)

var errTruncatedKey = errors.New("paillier: truncated key encoding")

func appendBig(b []byte, v *big.Int) []byte {
	raw := v.Bytes()
	b = binary.BigEndian.AppendUint32(b, uint32(len(raw)))
	return append(b, raw...)
}

func readBig(b []byte) (*big.Int, []byte, error) {
	if len(b) < 4 {
		return nil, nil, errTruncatedKey
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, nil, errTruncatedKey
	}
	return new(big.Int).SetBytes(b[:n]), b[n:], nil
}

// MarshalBinary encodes the public key.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	if pk.N == nil || pk.N.Sign() <= 0 {
		return nil, errors.New("paillier: cannot marshal zero public key")
	}
	b := make([]byte, 0, 8+pk.N.BitLen()/8+8)
	b = append(b, pubKeyMagic...)
	b = binary.BigEndian.AppendUint32(b, keyVersion)
	b = appendBig(b, pk.N)
	return b, nil
}

// UnmarshalBinary decodes a public key produced by MarshalBinary and
// recomputes the cached values.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, pubKeyMagic)
	if err != nil {
		return err
	}
	n, rest, err := readBig(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("paillier: trailing bytes after public key")
	}
	if n.BitLen() < MinModulusBits {
		return fmt.Errorf("paillier: unmarshaled modulus too small (%d bits)", n.BitLen())
	}
	pk.N = n
	pk.NSquared = new(big.Int).Mul(n, n)
	pk.byteLen = (pk.NSquared.BitLen() + 7) / 8
	return nil
}

// MarshalBinary encodes the private key as (P, Q); everything else is
// rederived on load, so the encoding cannot go internally inconsistent.
func (sk *PrivateKey) MarshalBinary() ([]byte, error) {
	if sk.P == nil || sk.Q == nil {
		return nil, errors.New("paillier: cannot marshal incomplete private key")
	}
	b := make([]byte, 0, 8+sk.P.BitLen()/4)
	b = append(b, privKeyMagic...)
	b = binary.BigEndian.AppendUint32(b, keyVersion)
	b = appendBig(b, sk.P)
	b = appendBig(b, sk.Q)
	return b, nil
}

// UnmarshalBinary decodes a private key and rederives all cached values,
// validating primality of the factors.
func (sk *PrivateKey) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, privKeyMagic)
	if err != nil {
		return err
	}
	p, rest, err := readBig(rest)
	if err != nil {
		return err
	}
	q, rest, err := readBig(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("paillier: trailing bytes after private key")
	}
	if !p.ProbablyPrime(20) || !q.ProbablyPrime(20) {
		return errors.New("paillier: unmarshaled key factors are not prime")
	}
	fresh, err := newPrivateKey(p, q)
	if err != nil {
		return fmt.Errorf("paillier: rebuilding private key: %w", err)
	}
	*sk = *fresh
	return nil
}

func checkHeader(data []byte, magic string) ([]byte, error) {
	if len(data) < len(magic)+4 {
		return nil, errTruncatedKey
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("paillier: bad key magic %q", data[:len(magic)])
	}
	v := binary.BigEndian.Uint32(data[len(magic):])
	if v != keyVersion {
		return nil, fmt.Errorf("paillier: unsupported key version %d", v)
	}
	return data[len(magic)+4:], nil
}
