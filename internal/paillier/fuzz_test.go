package paillier

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

// FuzzParseCiphertext: hostile ciphertext bytes must either be rejected or
// decrypt without panicking — the server parses client-supplied ciphertexts
// on every protocol message, so this is its direct attack surface.
func FuzzParseCiphertext(f *testing.F) {
	sk, err := KeyGen(rand.Reader, 128)
	if err != nil {
		f.Fatal(err)
	}
	pk := sk.Public()
	good, err := pk.Encrypt(bigOne())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(make([]byte, pk.CiphertextSize()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := pk.ParseCiphertext(data)
		if err != nil {
			return
		}
		// Accepted ciphertexts must be byte-stable and safely usable.
		if !bytes.Equal(ct.Bytes(), data) {
			t.Fatal("accepted ciphertext re-encodes differently")
		}
		if _, err := sk.Decrypt(ct); err != nil {
			// Rejection during decryption is fine; panics are not, and
			// the fuzzer catches those by itself.
			return
		}
		if _, err := pk.Add(ct, ct); err != nil {
			t.Fatalf("accepted ciphertext unusable in Add: %v", err)
		}
	})
}

// FuzzPrivateKeyUnmarshal: arbitrary bytes must never panic the key parser.
func FuzzPrivateKeyUnmarshal(f *testing.F) {
	sk, err := KeyGen(rand.Reader, 128)
	if err != nil {
		f.Fatal(err)
	}
	raw, err := sk.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte("PSSK"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var k PrivateKey
		if err := k.UnmarshalBinary(data); err != nil {
			return
		}
		// A key that parses must at least round-trip one encryption.
		ct, err := k.Public().Encrypt(bigOne())
		if err != nil {
			t.Fatalf("parsed key cannot encrypt: %v", err)
		}
		if _, err := k.Decrypt(ct); err != nil {
			t.Fatalf("parsed key cannot decrypt its own ciphertext: %v", err)
		}
	})
}

// FuzzReadBitStore: hostile store files must either be rejected or load into
// a store whose every draw is a valid ciphertext — stockd restores these
// from disk and sumclient loads them via -store, so a rotted or crafted file
// is a real input.
func FuzzReadBitStore(f *testing.F) {
	sk, err := KeyGen(rand.Reader, 128)
	if err != nil {
		f.Fatal(err)
	}
	pk := sk.Public()
	store := NewBitStore(pk)
	if err := store.Fill(2, 2); err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if _, err := store.WriteTo(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())/2])
	f.Add([]byte(storeMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := ReadBitStore(bytes.NewReader(data), pk)
		if err != nil {
			return
		}
		// An accepted store must serve only decryptable ciphertexts (the
		// format cannot vouch for the plaintexts — that needs the secret
		// key — but every draw must be safely usable) and re-serialize
		// cleanly.
		for bit := uint(0); bit <= 1; bit++ {
			for back.Remaining(bit) > 0 {
				ct, err := back.DrawBit(bit)
				if err != nil {
					t.Fatalf("drawing from accepted store: %v", err)
				}
				if _, err := sk.Decrypt(ct); err != nil {
					t.Fatalf("accepted store holds undecryptable ciphertext: %v", err)
				}
			}
		}
		if _, err := back.WriteTo(new(bytes.Buffer)); err != nil {
			t.Fatalf("accepted store does not re-serialize: %v", err)
		}
	})
}

// FuzzEncryptCRTEquivalence: for every in-range (m, r) the owner's CRT
// encryption path must produce the byte-identical ciphertext to the public
// path, and both must decrypt back to m — the differential gate for the
// client-encrypt fast path. Out-of-range inputs must be rejected by both
// paths symmetrically.
func FuzzEncryptCRTEquivalence(f *testing.F) {
	sk, err := KeyGen(rand.Reader, 128)
	if err != nil {
		f.Fatal(err)
	}
	pk := sk.Public()
	f.Add([]byte{0}, []byte{2})
	f.Add([]byte{1}, []byte{3})
	f.Add(new(big.Int).Sub(pk.N, bigOne()).Bytes(), new(big.Int).Sub(pk.N, bigOne()).Bytes())
	f.Add(sk.P.Bytes(), sk.P.Bytes()) // message fine, nonce shares a factor
	f.Fuzz(func(t *testing.T, mRaw, rRaw []byte) {
		m := new(big.Int).SetBytes(mRaw)
		r := new(big.Int).SetBytes(rRaw)
		want, errPub := pk.EncryptWithNonce(m, r)
		got, errCRT := sk.EncryptWithNonceCRT(m, r)
		if (errPub == nil) != (errCRT == nil) {
			t.Fatalf("path disagreement: public err=%v, crt err=%v", errPub, errCRT)
		}
		if errPub != nil {
			return
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatal("CRT and public encryption paths produced different ciphertexts")
		}
		back, err := sk.Decrypt(got)
		if err != nil {
			t.Fatalf("decrypting CRT ciphertext: %v", err)
		}
		if back.Cmp(m) != 0 {
			t.Fatalf("round trip: got %v, want %v", back, m)
		}
	})
}

func bigOne() *big.Int { return big.NewInt(1) }
