package paillier

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"sync"

	"math/big"

	"privstats/internal/mathx"
)

// fillChunk is how many items a Fill generates before publishing them under
// the lock. Small enough that concurrent Draws see stock early in a long
// refill and a cancelled context stops promptly; large enough that the lock
// traffic is noise next to the modular exponentiations.
const fillChunk = 32

// This file implements the paper's Section 3.3 preprocessing optimization:
// "encrypt a large number of 0s and a large number of 1s [offline] to use
// later", so that the client's online work is only retrieving stored
// encryptions. Two layers are provided:
//
//   - RandomizerPool precomputes the expensive factor r^N mod N², turning a
//     later encryption of any message into two modular multiplications.
//   - BitStore precomputes whole ciphertexts of the bits 0 and 1, exactly as
//     the paper describes; drawing from it is a slice pop.

// RandomizerPool holds precomputed Paillier randomizers r^N mod N².
// It is safe for concurrent use.
type RandomizerPool struct {
	pk *PublicKey
	// sk, when non-nil, marks an owner-constructed pool: fills and online
	// fallbacks generate randomizers through the CRT fast path instead of
	// the public-key r^N exponentiation. Stock-daemon pools (public key
	// only) leave it nil.
	sk *PrivateKey
	// rnd overrides the randomness source (tests inject failing readers);
	// nil means crypto/rand.Reader.
	rnd io.Reader

	mu    sync.Mutex
	stock []*big.Int

	// onlineFallbacks counts draws served by an online r^N computation
	// because the pool ran dry, mirroring BitStore.OnlineFallbacks.
	onlineFallbacks int
}

// NewRandomizerPool creates an empty pool for pk.
func NewRandomizerPool(pk *PublicKey) *RandomizerPool {
	return &RandomizerPool{pk: pk}
}

// NewRandomizerPoolOwner creates an empty pool for the key owner: fills and
// fallbacks run through sk's CRT encryption path (~4x cheaper at 512-bit
// keys). This is the client-local pool of the -preprocess path; pools built
// from a bare public key (stock daemon, remote prefetch) use
// NewRandomizerPool and keep the r^N route.
func NewRandomizerPoolOwner(sk *PrivateKey) *RandomizerPool {
	return &RandomizerPool{pk: sk.Public(), sk: sk}
}

// reader returns the pool's randomness source.
func (p *RandomizerPool) reader() io.Reader {
	if p.rnd != nil {
		return p.rnd
	}
	return rand.Reader
}

// newRandomizer generates one fresh randomizer, CRT-fast for owners.
func (p *RandomizerPool) newRandomizer() (*big.Int, error) {
	if p.sk != nil && p.rnd == nil {
		return p.sk.FreshRandomizerCRT()
	}
	r, err := mathx.RandUnit(p.reader(), p.pk.N)
	if err != nil {
		return nil, err
	}
	return new(big.Int).Exp(r, p.pk.N, p.pk.NSquared), nil
}

// Fill precomputes count randomizers. It may be called repeatedly (e.g. from
// a background goroutine while the device is idle, the PDA scenario in the
// paper).
func (p *RandomizerPool) Fill(count int) error {
	return p.FillContext(context.Background(), count)
}

// FillContext is Fill with cancellation: generated randomizers are published
// in chunks of fillChunk, so concurrent Draws see stock while a long refill
// is still running, and a cancelled ctx stops the refill at the next chunk
// boundary (keeping everything already published).
func (p *RandomizerPool) FillContext(ctx context.Context, count int) error {
	if count < 0 {
		return fmt.Errorf("paillier: negative pool fill count %d", count)
	}
	for count > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := count
		if n > fillChunk {
			n = fillChunk
		}
		fresh := make([]*big.Int, 0, n)
		for i := 0; i < n; i++ {
			rn, err := p.newRandomizer()
			if err != nil {
				return fmt.Errorf("paillier: filling randomizer pool: %w", err)
			}
			fresh = append(fresh, rn)
		}
		p.mu.Lock()
		p.stock = append(p.stock, fresh...)
		p.mu.Unlock()
		count -= n
	}
	return nil
}

// Len reports how many randomizers are stocked.
func (p *RandomizerPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.stock)
}

// Depth reports the current stock level — the supply-side gauge matching the
// drain-side OnlineFallbacks counter.
func (p *RandomizerPool) Depth() int { return p.Len() }

// AddStock inserts externally produced randomizers (e.g. a batch fetched
// from a stock daemon) after validating each lies in [1, N²).
func (p *RandomizerPool) AddStock(rns []*big.Int) error {
	for i, rn := range rns {
		if rn == nil || rn.Sign() < 1 || rn.Cmp(p.pk.NSquared) >= 0 {
			return fmt.Errorf("paillier: stocked randomizer %d outside [1, N²)", i)
		}
	}
	p.mu.Lock()
	p.stock = append(p.stock, rns...)
	p.mu.Unlock()
	return nil
}

// Take pops up to max stocked randomizers without ever computing online —
// the serving side of a stock daemon, which returns what it has and leaves
// generation to its refiller.
func (p *RandomizerPool) Take(max int) []*big.Int {
	if max <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.stock)
	if max > n {
		max = n
	}
	out := make([]*big.Int, max)
	for i := 0; i < max; i++ {
		out[i] = p.stock[n-1-i]
		p.stock[n-1-i] = nil
	}
	p.stock = p.stock[:n-max]
	return out
}

// Draw pops one precomputed randomizer, or computes one online if the pool
// is empty. Each randomizer is returned exactly once.
func (p *RandomizerPool) Draw() (*big.Int, error) {
	p.mu.Lock()
	if n := len(p.stock); n > 0 {
		rn := p.stock[n-1]
		p.stock[n-1] = nil
		p.stock = p.stock[:n-1]
		p.mu.Unlock()
		return rn, nil
	}
	p.mu.Unlock()
	rn, err := p.newRandomizer()
	if err != nil {
		// Nothing was served: a failed online computation must not count
		// as a fallback, or the SLO metric stockd and the bench harness
		// report would overstate how many draws the fallback path covered.
		return nil, err
	}
	p.mu.Lock()
	p.onlineFallbacks++
	p.mu.Unlock()
	return rn, nil
}

// OnlineFallbacks reports how many draws were served by online computation.
func (p *RandomizerPool) OnlineFallbacks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.onlineFallbacks
}

// Encrypt encrypts m using a pooled randomizer when available.
func (p *RandomizerPool) Encrypt(m *big.Int) (*Ciphertext, error) {
	rn, err := p.Draw()
	if err != nil {
		return nil, err
	}
	return p.pk.EncryptWithRandomizer(m, rn)
}

// BitStore holds precomputed encryptions of the plaintext bits 0 and 1 —
// the paper's preprocessed index vector. It is safe for concurrent use.
type BitStore struct {
	pk *PublicKey
	// sk, when non-nil, marks an owner-constructed store: fills and online
	// fallbacks encrypt through the CRT fast path. The stock daemon holds
	// only public keys and necessarily leaves it nil.
	sk *PrivateKey

	mu    sync.Mutex
	zeros []*Ciphertext
	ones  []*Ciphertext

	// onlineFallbacks counts draws served by online encryption because the
	// store ran dry; the bench harness reports it so an experiment that
	// accidentally exhausts its preprocessing is visible.
	onlineFallbacks int
}

// NewBitStore creates an empty store for pk.
func NewBitStore(pk *PublicKey) *BitStore {
	return &BitStore{pk: pk}
}

// NewBitStoreOwner creates an empty store for the key owner: preprocessing
// and fallback encryptions run through sk's CRT path (~4x cheaper at
// 512-bit keys) instead of the public r^N exponentiation. This is the
// client-local -preprocess store; stores stocked from a daemon keep using
// NewBitStore with the bare public key.
func NewBitStoreOwner(sk *PrivateKey) *BitStore {
	return &BitStore{pk: sk.Public(), sk: sk}
}

// encryptBit produces one fresh encryption of m, CRT-fast for owners.
func (s *BitStore) encryptBit(m *big.Int) (*Ciphertext, error) {
	if s.sk != nil {
		return s.sk.EncryptCRT(m)
	}
	return s.pk.Encrypt(m)
}

// Fill precomputes zeros encryptions of 0 and ones encryptions of 1.
// This is the offline phase; its cost is deliberately not hidden — the
// bench harness measures it separately as "preprocessing time".
func (s *BitStore) Fill(zeros, ones int) error {
	return s.FillContext(context.Background(), zeros, ones)
}

// FillContext is Fill with cancellation: fresh encryptions are published in
// chunks of fillChunk, so concurrent DrawBits see stock while a long refill
// is still running, and a cancelled ctx stops the refill at the next chunk
// boundary (keeping everything already published).
func (s *BitStore) FillContext(ctx context.Context, zeros, ones int) error {
	if zeros < 0 || ones < 0 {
		return fmt.Errorf("paillier: negative BitStore fill (%d, %d)", zeros, ones)
	}
	fill := func(count int, m *big.Int, dst *[]*Ciphertext) error {
		for count > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			n := count
			if n > fillChunk {
				n = fillChunk
			}
			fresh := make([]*Ciphertext, 0, n)
			for i := 0; i < n; i++ {
				ct, err := s.encryptBit(m)
				if err != nil {
					return fmt.Errorf("paillier: preprocessing E(%v): %w", m, err)
				}
				fresh = append(fresh, ct)
			}
			s.mu.Lock()
			*dst = append(*dst, fresh...)
			s.mu.Unlock()
			count -= n
		}
		return nil
	}
	if err := fill(zeros, mathx.Zero, &s.zeros); err != nil {
		return err
	}
	return fill(ones, mathx.One, &s.ones)
}

// DrawBit returns a precomputed encryption of bit (0 or 1), encrypting
// online if the store is empty. Each stored ciphertext is returned exactly
// once: reusing one would let the server link two positions of the index
// vector and break client privacy.
func (s *BitStore) DrawBit(bit uint) (*Ciphertext, error) {
	if bit > 1 {
		return nil, fmt.Errorf("paillier: DrawBit(%d): bit must be 0 or 1", bit)
	}
	s.mu.Lock()
	var slot *[]*Ciphertext
	if bit == 0 {
		slot = &s.zeros
	} else {
		slot = &s.ones
	}
	if n := len(*slot); n > 0 {
		ct := (*slot)[n-1]
		(*slot)[n-1] = nil
		*slot = (*slot)[:n-1]
		s.mu.Unlock()
		return ct, nil
	}
	s.mu.Unlock()
	ct, err := s.encryptBit(big.NewInt(int64(bit)))
	if err != nil {
		// As in RandomizerPool.Draw: a failed online encryption served
		// nothing, so it must not count toward the fallback SLO metric.
		return nil, err
	}
	s.mu.Lock()
	s.onlineFallbacks++
	s.mu.Unlock()
	return ct, nil
}

// Remaining reports the stock of precomputed encryptions of bit.
func (s *BitStore) Remaining(bit uint) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bit == 0 {
		return len(s.zeros)
	}
	return len(s.ones)
}

// Depth reports both stock levels in one consistent snapshot — the
// supply-side gauges matching the drain-side OnlineFallbacks counter.
func (s *BitStore) Depth() (zeros, ones int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.zeros), len(s.ones)
}

// AddStock inserts externally produced encryptions of bit (e.g. a batch
// fetched from a stock daemon). Callers are responsible for having parsed
// the ciphertexts under this store's key.
func (s *BitStore) AddStock(bit uint, cts []*Ciphertext) error {
	if bit > 1 {
		return fmt.Errorf("paillier: AddStock(%d): bit must be 0 or 1", bit)
	}
	for i, ct := range cts {
		if ct == nil {
			return fmt.Errorf("paillier: stocked ciphertext %d is nil", i)
		}
	}
	s.mu.Lock()
	if bit == 0 {
		s.zeros = append(s.zeros, cts...)
	} else {
		s.ones = append(s.ones, cts...)
	}
	s.mu.Unlock()
	return nil
}

// Take pops up to max stocked encryptions of bit without ever encrypting
// online — the serving side of a stock daemon, which returns what it has and
// leaves generation to its refiller.
func (s *BitStore) Take(bit uint, max int) []*Ciphertext {
	if bit > 1 || max <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := &s.zeros
	if bit == 1 {
		slot = &s.ones
	}
	n := len(*slot)
	if max > n {
		max = n
	}
	out := make([]*Ciphertext, max)
	for i := 0; i < max; i++ {
		out[i] = (*slot)[n-1-i]
		(*slot)[n-1-i] = nil
	}
	*slot = (*slot)[:n-max]
	return out
}

// OnlineFallbacks reports how many draws were served by online encryption.
func (s *BitStore) OnlineFallbacks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.onlineFallbacks
}

// FillParallel is Fill using workers goroutines; preprocessing is trivially
// parallel and this keeps the offline phase short on multicore hosts.
func (s *BitStore) FillParallel(zeros, ones, workers int) error {
	return s.FillParallelContext(context.Background(), zeros, ones, workers)
}

// FillParallelContext is FillParallel with FillContext's cancellation
// semantics: each worker publishes in fillChunk batches and stops at the
// next chunk boundary once ctx is cancelled, keeping everything already
// published. This is what lets a daemon shut down mid-refill without either
// blocking on the fill or discarding finished stock.
func (s *BitStore) FillParallelContext(ctx context.Context, zeros, ones, workers int) error {
	if workers < 1 {
		workers = 1
	}
	type job struct{ zeros, ones int }
	jobs := make([]job, workers)
	for i := 0; i < zeros; i++ {
		jobs[i%workers].zeros++
	}
	for i := 0; i < ones; i++ {
		jobs[i%workers].ones++
	}
	errs := make(chan error, workers)
	for _, j := range jobs {
		go func(j job) { errs <- s.FillContext(ctx, j.zeros, j.ones) }(j)
	}
	var first error
	for range jobs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
