package paillier

import (
	"math/big"
	"sync"
	"testing"

	"privstats/internal/mathx"
)

func TestRandomizerPoolEncrypt(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	pool := NewRandomizerPool(pk)
	if err := pool.Fill(10); err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 10 {
		t.Fatalf("pool len = %d, want 10", pool.Len())
	}
	if pool.OnlineFallbacks() != 0 {
		t.Fatalf("fresh pool fallbacks = %d, want 0", pool.OnlineFallbacks())
	}
	for i := int64(0); i < 12; i++ { // 10 pooled + 2 online fallbacks
		ct, err := pool.Encrypt(big.NewInt(i))
		if err != nil {
			t.Fatalf("pool encrypt %d: %v", i, err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil || got.Int64() != i {
			t.Fatalf("pooled encryption of %d decrypts to %v (err %v)", i, got, err)
		}
	}
	if pool.Len() != 0 {
		t.Errorf("pool should be drained, has %d", pool.Len())
	}
	if pool.OnlineFallbacks() != 2 {
		t.Errorf("fallbacks = %d, want 2", pool.OnlineFallbacks())
	}
}

func TestRandomizerPoolRejectsNegativeFill(t *testing.T) {
	pool := NewRandomizerPool(testKey(t, 128).Public())
	if err := pool.Fill(-1); err == nil {
		t.Error("Fill(-1) should fail")
	}
}

func TestRandomizerPoolUniqueDraws(t *testing.T) {
	pool := NewRandomizerPool(testKey(t, 128).Public())
	if err := pool.Fill(20); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		rn, err := pool.Draw()
		if err != nil {
			t.Fatal(err)
		}
		k := rn.String()
		if seen[k] {
			t.Fatal("pool returned the same randomizer twice")
		}
		seen[k] = true
	}
}

func TestBitStoreDrawAndFallback(t *testing.T) {
	sk := testKey(t, 128)
	store := NewBitStore(sk.Public())
	if err := store.Fill(3, 2); err != nil {
		t.Fatal(err)
	}
	if store.Remaining(0) != 3 || store.Remaining(1) != 2 {
		t.Fatalf("remaining = (%d,%d), want (3,2)", store.Remaining(0), store.Remaining(1))
	}
	// Drain plus one extra of each: extras are online fallbacks.
	for i := 0; i < 4; i++ {
		ct, err := store.DrawBit(0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil || got.Sign() != 0 {
			t.Fatalf("E(0) draw decrypts to %v (err %v)", got, err)
		}
	}
	for i := 0; i < 3; i++ {
		ct, err := store.DrawBit(1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil || got.Cmp(mathx.One) != 0 {
			t.Fatalf("E(1) draw decrypts to %v (err %v)", got, err)
		}
	}
	if store.OnlineFallbacks() != 2 {
		t.Errorf("fallbacks = %d, want 2", store.OnlineFallbacks())
	}
	if store.Remaining(0) != 0 || store.Remaining(1) != 0 {
		t.Error("store should be empty")
	}
}

func TestBitStoreRejectsBadInput(t *testing.T) {
	store := NewBitStore(testKey(t, 128).Public())
	if _, err := store.DrawBit(2); err == nil {
		t.Error("DrawBit(2) should fail")
	}
	if err := store.Fill(-1, 0); err == nil {
		t.Error("negative fill should fail")
	}
}

func TestBitStoreDrawsAreDistinctCiphertexts(t *testing.T) {
	store := NewBitStore(testKey(t, 128).Public())
	if err := store.Fill(0, 10); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		ct, err := store.DrawBit(1)
		if err != nil {
			t.Fatal(err)
		}
		k := ct.Value().String()
		if seen[k] {
			t.Fatal("store returned the same ciphertext twice: index positions would be linkable")
		}
		seen[k] = true
	}
}

func TestBitStoreConcurrentDraw(t *testing.T) {
	sk := testKey(t, 128)
	store := NewBitStore(sk.Public())
	if err := store.FillParallel(64, 64, 4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(bit uint) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				ct, err := store.DrawBit(bit)
				if err != nil {
					errs <- err
					return
				}
				got, err := sk.Decrypt(ct)
				if err != nil {
					errs <- err
					return
				}
				if got.Uint64() != uint64(bit) {
					errs <- err
					return
				}
			}
		}(uint(g % 2))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func BenchmarkEncryptOnline(b *testing.B) {
	pk := testKey(b, 512).Public()
	m := big.NewInt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.Encrypt(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptPooled(b *testing.B) {
	pk := testKey(b, 512).Public()
	pool := NewRandomizerPool(pk)
	if err := pool.Fill(b.N); err != nil {
		b.Fatal(err)
	}
	m := big.NewInt(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Encrypt(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptCRT(b *testing.B) {
	sk := testKey(b, 512)
	ct, err := sk.Public().Encrypt(big.NewInt(123456))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptNaive(b *testing.B) {
	sk := testKey(b, 512)
	ct, err := sk.Public().Encrypt(big.NewInt(123456))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.DecryptNaive(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerScalarMul32Bit(b *testing.B) {
	// The server's per-element work in the selected-sum protocol:
	// one exponentiation by a 32-bit database value plus one multiply.
	sk := testKey(b, 512)
	pk := sk.Public()
	ct, err := pk.Encrypt(big.NewInt(1))
	if err != nil {
		b.Fatal(err)
	}
	x := big.NewInt(0xDEADBEEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.ScalarMul(ct, x); err != nil {
			b.Fatal(err)
		}
	}
}
