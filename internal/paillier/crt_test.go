package paillier

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"io"
	"math/big"
	"testing"
	"time"
)

// Tests for the key owner's CRT encryption path: exactness against the
// public-key formulas, distribution-surrogate checks (every randomizer is a
// valid encryption of zero), the nonce-unit validation, and the pool
// integration (owner fills, fallback counting, parallel-fill cancellation).

func TestRandomizerCRTMatchesDirectExp(t *testing.T) {
	sk := testKey(t, 128)
	for i := 0; i < 20; i++ {
		r, err := randomNonce(sk.Public())
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Exp(r, sk.N, sk.NSquared)
		got, err := sk.RandomizerCRT(r)
		if err != nil {
			t.Fatalf("RandomizerCRT: %v", err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("RandomizerCRT(%v) = %v, want %v", r, got, want)
		}
	}
}

func TestEncryptWithNonceCRTMatchesPublicPath(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	for i := 0; i < 20; i++ {
		m, err := randomMessage(pk)
		if err != nil {
			t.Fatal(err)
		}
		r, err := randomNonce(pk)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pk.EncryptWithNonce(m, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.EncryptWithNonceCRT(m, r)
		if err != nil {
			t.Fatalf("EncryptWithNonceCRT: %v", err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatal("CRT nonce path produced a different ciphertext")
		}
	}
}

func TestEncryptCRTRoundTrip(t *testing.T) {
	sk := testKey(t, 128)
	msgs := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(1 << 30),
		new(big.Int).Sub(sk.N, big.NewInt(1)),
	}
	for _, m := range msgs {
		ct, err := sk.EncryptCRT(m)
		if err != nil {
			t.Fatalf("EncryptCRT(%v): %v", m, err)
		}
		for name, dec := range map[string]func(*Ciphertext) (*big.Int, error){
			"crt":   sk.Decrypt,
			"naive": sk.DecryptNaive,
		} {
			got, err := dec(ct)
			if err != nil {
				t.Fatalf("%s decrypt of EncryptCRT(%v): %v", name, m, err)
			}
			if got.Cmp(m) != 0 {
				t.Fatalf("%s decrypt = %v, want %v", name, got, m)
			}
		}
	}
	if _, err := sk.EncryptCRT(sk.N); err == nil {
		t.Fatal("EncryptCRT accepted out-of-range message")
	}
}

// TestFreshRandomizerCRTIsEncryptionOfZero: the z^p-shortcut randomizer
// must be a valid N-th residue — i.e. usable as E(0)'s full ciphertext —
// and must mix homomorphically with public-path ciphertexts.
func TestFreshRandomizerCRTIsEncryptionOfZero(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	for i := 0; i < 10; i++ {
		rn, err := sk.FreshRandomizerCRT()
		if err != nil {
			t.Fatal(err)
		}
		ct, err := pk.EncryptWithRandomizer(big.NewInt(7), rn)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if m.Int64() != 7 {
			t.Fatalf("EncryptWithRandomizer(7, crt-rn) decrypts to %v", m)
		}
		pub, err := pk.Encrypt(big.NewInt(5))
		if err != nil {
			t.Fatal(err)
		}
		sum, err := pk.Add(ct, pub)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sk.Decrypt(sum)
		if err != nil {
			t.Fatal(err)
		}
		if s.Int64() != 12 {
			t.Fatalf("CRT + public ciphertext sum decrypts to %v, want 12", s)
		}
	}
}

// TestEncryptWithNonceRejectsNonUnit pins the satellite fix: a nonce
// sharing a factor with N (here r = p exactly) must be rejected with the
// structured error on every encryption path rather than silently producing
// a non-unit ciphertext.
func TestEncryptWithNonceRejectsNonUnit(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	m := big.NewInt(3)
	for name, encrypt := range map[string]func(m, r *big.Int) error{
		"public": func(m, r *big.Int) error { _, err := pk.EncryptWithNonce(m, r); return err },
		"crt":    func(m, r *big.Int) error { _, err := sk.EncryptWithNonceCRT(m, r); return err },
	} {
		if err := encrypt(m, sk.P); !errors.Is(err, ErrNonceNotUnit) {
			t.Errorf("%s: nonce r=p: got %v, want ErrNonceNotUnit", name, err)
		}
		twoP := new(big.Int).Lsh(sk.P, 1)
		if err := encrypt(m, twoP); !errors.Is(err, ErrNonceNotUnit) {
			t.Errorf("%s: nonce r=2p: got %v, want ErrNonceNotUnit", name, err)
		}
		for _, r := range []*big.Int{nil, big.NewInt(0), sk.N, new(big.Int).Neg(big.NewInt(5))} {
			if err := encrypt(m, r); !errors.Is(err, ErrNonceRange) {
				t.Errorf("%s: nonce %v: got %v, want ErrNonceRange", name, r, err)
			}
		}
	}
}

func TestAppendBytesMatchesBytes(t *testing.T) {
	sk := testKey(t, 128)
	ct, err := sk.EncryptCRT(big.NewInt(42))
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte{0xde, 0xad}
	got := ct.AppendBytes(append([]byte(nil), prefix...))
	want := append(append([]byte(nil), prefix...), ct.Bytes()...)
	if !bytes.Equal(got, want) {
		t.Fatal("AppendBytes disagrees with Bytes")
	}
	// Growth path: zero-capacity destination.
	if !bytes.Equal(ct.AppendBytes(nil), ct.Bytes()) {
		t.Fatal("AppendBytes(nil) disagrees with Bytes")
	}
}

// failingReader fails after a set number of reads — the regression harness
// for the fallback-counting fix.
type failingReader struct {
	reads int
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.reads <= 0 {
		return 0, errors.New("injected randomness failure")
	}
	f.reads--
	return rand.Read(p)
}

// TestDrawFailureNotCountedAsFallback pins the satellite fix: Draw used to
// increment onlineFallbacks before computing the online randomizer, so a
// failed RandUnit still counted as a served fallback and inflated the SLO
// metric.
func TestDrawFailureNotCountedAsFallback(t *testing.T) {
	sk := testKey(t, 128)
	pool := NewRandomizerPool(sk.Public())
	pool.rnd = &failingReader{reads: 0}
	if _, err := pool.Draw(); err == nil {
		t.Fatal("Draw with failing randomness succeeded")
	}
	if n := pool.OnlineFallbacks(); n != 0 {
		t.Fatalf("failed draw counted as fallback: OnlineFallbacks = %d, want 0", n)
	}
	pool.rnd = nil
	rn, err := pool.Draw()
	if err != nil {
		t.Fatalf("Draw after restoring randomness: %v", err)
	}
	if rn == nil || rn.Sign() <= 0 {
		t.Fatal("Draw returned invalid randomizer")
	}
	if n := pool.OnlineFallbacks(); n != 1 {
		t.Fatalf("successful online draw not counted: OnlineFallbacks = %d, want 1", n)
	}
}

func TestOwnerPoolAndStoreUseCRTAndStayCorrect(t *testing.T) {
	sk := testKey(t, 128)

	pool := NewRandomizerPoolOwner(sk)
	if err := pool.Fill(8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // 8 stocked + 2 online fallbacks
		ct, err := pool.Encrypt(big.NewInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		m, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if m.Int64() != int64(i) {
			t.Fatalf("owner pool encryption of %d decrypts to %v", i, m)
		}
	}
	if n := pool.OnlineFallbacks(); n != 2 {
		t.Fatalf("OnlineFallbacks = %d, want 2", n)
	}

	store := NewBitStoreOwner(sk)
	if err := store.Fill(3, 3); err != nil {
		t.Fatal(err)
	}
	for bit := uint(0); bit <= 1; bit++ {
		for i := 0; i < 4; i++ { // 3 stocked + 1 fallback per bit
			ct, err := store.DrawBit(bit)
			if err != nil {
				t.Fatal(err)
			}
			m, err := sk.Decrypt(ct)
			if err != nil {
				t.Fatal(err)
			}
			if m.Uint64() != uint64(bit) {
				t.Fatalf("owner store draw of bit %d decrypts to %v", bit, m)
			}
		}
	}
	if n := store.OnlineFallbacks(); n != 2 {
		t.Fatalf("store OnlineFallbacks = %d, want 2", n)
	}
}

// TestFillParallelContextCancelKeepsPartials: cancelling a parallel refill
// mid-run must stop the workers at the next chunk boundary while keeping
// everything already published.
func TestFillParallelContextCancelKeepsPartials(t *testing.T) {
	sk := testKey(t, 256)
	store := NewBitStore(sk.Public()) // public path: slow enough to cancel mid-fill
	const zeros, ones = 2000, 2000

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- store.FillParallelContext(ctx, zeros, ones, 4) }()

	deadline := time.After(30 * time.Second)
	for {
		z, o := store.Depth()
		if z+o > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no stock published within 30s")
		case err := <-done:
			t.Fatalf("fill finished before any stock was observed: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parallel fill returned %v, want context.Canceled", err)
	}
	z, o := store.Depth()
	if z+o == 0 {
		t.Fatal("cancellation discarded already-published stock")
	}
	if z >= zeros && o >= ones {
		t.Fatal("fill ran to completion despite cancellation")
	}
	// Published partials must be real, decryptable encryptions.
	ct, err := store.DrawBit(0)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := sk.Decrypt(ct); err != nil || m.Sign() != 0 {
		t.Fatalf("partial stock draw decrypts to (%v, %v), want 0", m, err)
	}
}

func randomMessage(pk *PublicKey) (*big.Int, error) {
	return rand.Int(rand.Reader, pk.N)
}

func randomNonce(pk *PublicKey) (*big.Int, error) {
	for {
		r, err := rand.Int(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(big.NewInt(1)) == 0 {
			return r, nil
		}
	}
}

var _ io.Reader = (*failingReader)(nil)
