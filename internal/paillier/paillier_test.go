package paillier

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"privstats/internal/mathx"
)

// testKey caches one key pair per bit size across the package's tests;
// key generation is by far the slowest step.
var (
	keyCache   = map[int]*PrivateKey{}
	keyCacheMu sync.Mutex
)

func testKey(t testing.TB, bits int) *PrivateKey {
	t.Helper()
	keyCacheMu.Lock()
	defer keyCacheMu.Unlock()
	if k, ok := keyCache[bits]; ok {
		return k
	}
	k, err := KeyGen(rand.Reader, bits)
	if err != nil {
		t.Fatalf("KeyGen(%d): %v", bits, err)
	}
	keyCache[bits] = k
	return k
}

func TestKeyGenRejectsBadSizes(t *testing.T) {
	if _, err := KeyGen(rand.Reader, 32); err == nil {
		t.Error("32-bit modulus should be rejected")
	}
	if _, err := KeyGen(rand.Reader, 65); err == nil {
		t.Error("odd bit length should be rejected")
	}
}

func TestKeyGenModulusSize(t *testing.T) {
	sk := testKey(t, 128)
	if sk.N.BitLen() != 128 {
		t.Errorf("modulus has %d bits, want 128", sk.N.BitLen())
	}
	if new(big.Int).Mul(sk.P, sk.Q).Cmp(sk.N) != 0 {
		t.Error("N != P*Q")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKey(t, 256)
	pk := sk.Public()
	for i := 0; i < 50; i++ {
		m, err := mathx.RandInt(rand.Reader, pk.N)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := pk.Encrypt(m)
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("round trip failed: got %v want %v", got, m)
		}
	}
}

func TestDecryptNaiveMatchesCRT(t *testing.T) {
	sk := testKey(t, 256)
	pk := sk.Public()
	for i := 0; i < 25; i++ {
		m, _ := mathx.RandInt(rand.Reader, pk.N)
		ct, err := pk.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := sk.DecryptNaive(ct)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cmp(slow) != 0 {
			t.Fatalf("CRT %v != naive %v", fast, slow)
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	m := big.NewInt(42)
	a, err := pk.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pk.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value().Cmp(b.Value()) == 0 {
		t.Fatal("two encryptions of the same plaintext are identical: semantic security broken")
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	for _, m := range []*big.Int{nil, big.NewInt(-1), new(big.Int).Set(pk.N), new(big.Int).Add(pk.N, mathx.One)} {
		if _, err := pk.Encrypt(m); err == nil {
			t.Errorf("Encrypt(%v) should fail", m)
		}
	}
	// Boundary: N-1 is valid.
	edge := new(big.Int).Sub(pk.N, mathx.One)
	ct, err := pk.Encrypt(edge)
	if err != nil {
		t.Fatalf("Encrypt(N-1): %v", err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil || got.Cmp(edge) != 0 {
		t.Fatalf("Decrypt(E(N-1)) = %v, %v", got, err)
	}
}

func TestEncryptWithNonceValidation(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	m := big.NewInt(7)
	for _, r := range []*big.Int{nil, big.NewInt(0), big.NewInt(-3), new(big.Int).Set(pk.N)} {
		if _, err := pk.EncryptWithNonce(m, r); err == nil {
			t.Errorf("EncryptWithNonce with r=%v should fail", r)
		}
	}
	// Deterministic: same m, same r => same ciphertext.
	r := big.NewInt(12345)
	a, err := pk.EncryptWithNonce(m, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pk.EncryptWithNonce(m, r)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value().Cmp(b.Value()) != 0 {
		t.Error("EncryptWithNonce is not deterministic for fixed nonce")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	sk := testKey(t, 256)
	pk := sk.Public()
	prop := func(a, b uint32) bool {
		ba, bb := new(big.Int).SetUint64(uint64(a)), new(big.Int).SetUint64(uint64(b))
		ca, err := pk.Encrypt(ba)
		if err != nil {
			return false
		}
		cb, err := pk.Encrypt(bb)
		if err != nil {
			return false
		}
		sum, err := pk.Add(ca, cb)
		if err != nil {
			return false
		}
		got, err := sk.Decrypt(sum)
		if err != nil {
			return false
		}
		want := new(big.Int).Add(ba, bb)
		want.Mod(want, pk.N)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHomomorphicScalarMul(t *testing.T) {
	sk := testKey(t, 256)
	pk := sk.Public()
	prop := func(m, k uint32) bool {
		bm := new(big.Int).SetUint64(uint64(m))
		bk := new(big.Int).SetUint64(uint64(k))
		cm, err := pk.Encrypt(bm)
		if err != nil {
			return false
		}
		ck, err := pk.ScalarMul(cm, bk)
		if err != nil {
			return false
		}
		got, err := sk.Decrypt(ck)
		if err != nil {
			return false
		}
		want := new(big.Int).Mul(bm, bk)
		want.Mod(want, pk.N)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddPlain(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	ct, err := pk.Encrypt(big.NewInt(100))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{0, 1, -1, 999999, -100} {
		shifted, err := pk.AddPlain(ct, big.NewInt(k))
		if err != nil {
			t.Fatalf("AddPlain(%d): %v", k, err)
		}
		got, err := sk.Decrypt(shifted)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Add(big.NewInt(100), big.NewInt(k))
		want.Mod(want, pk.N)
		if got.Cmp(want) != 0 {
			t.Errorf("AddPlain(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestNegAndSub(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	ca, _ := pk.Encrypt(big.NewInt(300))
	cb, _ := pk.Encrypt(big.NewInt(120))
	diff, err := pk.Sub(ca, cb)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	got, err := sk.Decrypt(diff)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 180 {
		t.Errorf("300-120 = %v, want 180", got)
	}
	// Negation of zero is zero.
	cz, _ := pk.Encrypt(mathx.Zero)
	nz, err := pk.Neg(cz)
	if err != nil {
		t.Fatal(err)
	}
	got, err = sk.Decrypt(nz)
	if err != nil || got.Sign() != 0 {
		t.Errorf("-0 = %v (err %v), want 0", got, err)
	}
}

func TestRerandomizePreservesPlaintextAndUnlinks(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	ct, _ := pk.Encrypt(big.NewInt(77))
	fresh, err := pk.Rerandomize(ct)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Value().Cmp(ct.Value()) == 0 {
		t.Error("rerandomized ciphertext equals original")
	}
	got, err := sk.Decrypt(fresh)
	if err != nil || got.Int64() != 77 {
		t.Errorf("rerandomized decrypts to %v (err %v), want 77", got, err)
	}
}

func TestWeightedSum(t *testing.T) {
	sk := testKey(t, 256)
	pk := sk.Public()
	msgs := []int64{3, 0, 7, 11, 1}
	weights := []int64{2, 100, 0, 5, 9}
	cts := make([]*Ciphertext, len(msgs))
	ws := make([]*big.Int, len(msgs))
	var want int64
	for i := range msgs {
		ct, err := pk.Encrypt(big.NewInt(msgs[i]))
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
		ws[i] = big.NewInt(weights[i])
		want += msgs[i] * weights[i]
	}
	sum, err := pk.WeightedSum(cts, ws)
	if err != nil {
		t.Fatalf("WeightedSum: %v", err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != want {
		t.Errorf("weighted sum = %v, want %d", got, want)
	}
}

func TestWeightedSumValidation(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	ct, _ := pk.Encrypt(mathx.One)
	if _, err := pk.WeightedSum([]*Ciphertext{ct}, nil); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := pk.WeightedSum([]*Ciphertext{ct}, []*big.Int{nil}); err == nil {
		t.Error("nil weight should fail")
	}
	// Empty input encrypts zero.
	sum, err := pk.WeightedSum(nil, nil)
	if err != nil {
		t.Fatalf("empty WeightedSum: %v", err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil || got.Sign() != 0 {
		t.Errorf("empty weighted sum = %v (err %v), want 0", got, err)
	}
}

func TestCiphertextParseRoundTrip(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	ct, _ := pk.Encrypt(big.NewInt(424242))
	b := ct.Bytes()
	if len(b) != pk.CiphertextSize() {
		t.Fatalf("encoded size %d != CiphertextSize %d", len(b), pk.CiphertextSize())
	}
	back, err := pk.ParseCiphertext(b)
	if err != nil {
		t.Fatalf("ParseCiphertext: %v", err)
	}
	got, err := sk.Decrypt(back)
	if err != nil || got.Int64() != 424242 {
		t.Fatalf("parsed ciphertext decrypts to %v (err %v)", got, err)
	}
}

func TestParseCiphertextRejectsGarbage(t *testing.T) {
	sk := testKey(t, 128)
	pk := sk.Public()
	if _, err := pk.ParseCiphertext([]byte{1, 2, 3}); err == nil {
		t.Error("wrong length should fail")
	}
	zero := make([]byte, pk.CiphertextSize())
	if _, err := pk.ParseCiphertext(zero); err == nil {
		t.Error("zero ciphertext should fail (not in (0,N²))")
	}
	tooBig := pk.NSquared.FillBytes(make([]byte, pk.CiphertextSize()))
	if _, err := pk.ParseCiphertext(tooBig); err == nil {
		t.Error("value == N² should fail")
	}
}

func TestDecryptRejectsForeignCiphertext(t *testing.T) {
	sk1 := testKey(t, 128)
	sk2 := testKey(t, 256)
	ct, _ := sk2.Public().Encrypt(big.NewInt(5))
	if _, err := sk1.Decrypt(ct); err == nil {
		t.Error("decrypting a ciphertext from a larger key should fail range checks")
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	sk := testKey(t, 128)
	b, err := sk.Public().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pk2 PublicKey
	if err := pk2.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !pk2.Equal(sk.Public()) {
		t.Fatal("unmarshaled key differs")
	}
	// Cross use: encrypt with restored key, decrypt with original secret.
	ct, err := pk2.Encrypt(big.NewInt(31337))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil || got.Int64() != 31337 {
		t.Fatalf("cross decrypt = %v (err %v)", got, err)
	}
}

func TestPrivateKeyMarshalRoundTrip(t *testing.T) {
	sk := testKey(t, 128)
	b, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var sk2 PrivateKey
	if err := sk2.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	ct, _ := sk.Public().Encrypt(big.NewInt(999))
	got, err := sk2.Decrypt(ct)
	if err != nil || got.Int64() != 999 {
		t.Fatalf("restored key decrypt = %v (err %v)", got, err)
	}
}

func TestKeyUnmarshalRejectsCorruption(t *testing.T) {
	sk := testKey(t, 128)
	pub, _ := sk.Public().MarshalBinary()
	priv, _ := sk.MarshalBinary()

	var pk PublicKey
	if err := pk.UnmarshalBinary(pub[:3]); err == nil {
		t.Error("truncated public key should fail")
	}
	bad := append([]byte{}, pub...)
	bad[0] ^= 0xFF
	if err := pk.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic should fail")
	}
	if err := pk.UnmarshalBinary(append(append([]byte{}, pub...), 0)); err == nil {
		t.Error("trailing bytes should fail")
	}

	var sk2 PrivateKey
	if err := sk2.UnmarshalBinary(priv[:8]); err == nil {
		t.Error("truncated private key should fail")
	}
	// Corrupt a factor: very likely no longer prime.
	badPriv := append([]byte{}, priv...)
	badPriv[len(badPriv)-1] ^= 0x01
	if err := sk2.UnmarshalBinary(badPriv); err == nil {
		// The flipped value could coincidentally be prime, but then
		// gcd/CRT rebuilding should still almost surely differ; accept
		// success only if decryption still works.
		ct, _ := sk.Public().Encrypt(big.NewInt(4))
		if got, err := sk2.Decrypt(ct); err == nil && got.Int64() == 4 {
			t.Skip("bit flip landed on an equivalent key (vanishingly unlikely)")
		}
	}
}
