// Package paillier implements the Paillier public-key cryptosystem
// (Paillier, EUROCRYPT '99), the additively homomorphic scheme used by the
// paper's private selected-sum protocol.
//
// The implementation uses the standard g = n+1 simplification, which makes
// encryption a single modular exponentiation:
//
//	E(m; r) = (1 + m·n) · r^n  mod n²
//
// Decryption uses the Chinese Remainder Theorem over p and q by default
// (roughly 3–4× faster than the textbook λ/μ path); the textbook path is
// retained as DecryptNaive for the implementation-constant ablation
// (experiment E9 in DESIGN.md).
//
// Key sizes: the paper uses 512-bit keys ("Cryptographic keys are 512
// bits"), i.e. a 512-bit modulus n. KeyGen takes the modulus bit length.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"privstats/internal/mathx"
)

// MinModulusBits is the smallest modulus KeyGen accepts. Far below any
// secure size — small keys are allowed so tests stay fast — but large enough
// that the arithmetic identities hold and 32-bit data sums do not overflow
// the plaintext space.
const MinModulusBits = 64

// Common errors.
var (
	ErrMessageRange   = errors.New("paillier: message outside plaintext space [0, n)")
	ErrCiphertextForm = errors.New("paillier: malformed ciphertext")
	ErrKeyMismatch    = errors.New("paillier: ciphertext does not belong to this key")
	ErrNonceRange     = errors.New("paillier: nonce must be in [1, N)")
	ErrNonceNotUnit   = errors.New("paillier: nonce shares a factor with N")
)

// PublicKey holds the Paillier public parameters.
type PublicKey struct {
	// N is the RSA-style modulus p·q; the plaintext space is Z_N.
	N *big.Int
	// NSquared is N², the ciphertext modulus (cached).
	NSquared *big.Int

	byteLen int // ceil(bits(N²)/8), fixed wire width of a ciphertext
}

// PrivateKey holds the Paillier private parameters along with the
// precomputed CRT values that make decryption fast.
type PrivateKey struct {
	PublicKey

	// P and Q are the prime factors of N.
	P, Q *big.Int
	// Lambda is lcm(P-1, Q-1) and Mu = L(g^Lambda mod N²)^-1 mod N;
	// these drive the textbook decryption path.
	Lambda, Mu *big.Int

	// CRT decryption state: for x = p or q,
	//   m_x = L_x(c^(x-1) mod x²) · h_x  mod x
	// with L_x(u) = (u-1)/x and h_x = L_x(g^(x-1) mod x²)^-1 mod x,
	// recombined with crt.
	pSquared, qSquared *big.Int
	pMinus1, qMinus1   *big.Int
	hp, hq             *big.Int
	crt                *mathx.CRT

	// CRT encryption state (the client-side mirror of the decryption
	// fields): crt2 recombines residues mod p² and q² into a residue mod
	// N², and nModPOrd/nModQOrd hold N reduced mod the group orders
	// p·(p-1) and q·(q-1) of Z*_{p²} and Z*_{q²}. See crt.go.
	crt2               *mathx.CRT
	nModPOrd, nModQOrd *big.Int
}

// KeyGen generates a Paillier key pair whose modulus N has exactly
// modulusBits bits, reading randomness from r (pass crypto/rand.Reader).
func KeyGen(r io.Reader, modulusBits int) (*PrivateKey, error) {
	if modulusBits < MinModulusBits {
		return nil, fmt.Errorf("paillier: modulus must be at least %d bits, got %d", MinModulusBits, modulusBits)
	}
	if modulusBits%2 != 0 {
		return nil, fmt.Errorf("paillier: modulus bit length must be even, got %d", modulusBits)
	}
	p, q, err := mathx.GeneratePrimePair(r, modulusBits/2)
	if err != nil {
		return nil, fmt.Errorf("paillier: generating primes: %w", err)
	}
	return newPrivateKey(p, q)
}

// newPrivateKey derives all cached values from the prime factors.
func newPrivateKey(p, q *big.Int) (*PrivateKey, error) {
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)

	pm1 := new(big.Int).Sub(p, mathx.One)
	qm1 := new(big.Int).Sub(q, mathx.One)
	lambda := mathx.Lcm(pm1, qm1)

	// With g = n+1: g^λ mod n² = 1 + λ·n, so L(g^λ) = λ mod n and
	// μ = λ^-1 mod n.
	mu, err := mathx.ModInverse(new(big.Int).Mod(lambda, n), n)
	if err != nil {
		return nil, fmt.Errorf("paillier: λ not invertible mod n (gcd(n,φ)≠1): %w", err)
	}

	crt, err := mathx.NewCRT(p, q)
	if err != nil {
		return nil, fmt.Errorf("paillier: building CRT state: %w", err)
	}

	pSquared := new(big.Int).Mul(p, p)
	qSquared := new(big.Int).Mul(q, q)
	crt2, err := mathx.NewCRT(pSquared, qSquared)
	if err != nil {
		return nil, fmt.Errorf("paillier: building CRT² state: %w", err)
	}

	priv := &PrivateKey{
		PublicKey: PublicKey{
			N:        n,
			NSquared: n2,
			byteLen:  (n2.BitLen() + 7) / 8,
		},
		P:        p,
		Q:        q,
		Lambda:   lambda,
		Mu:       mu,
		pSquared: pSquared,
		qSquared: qSquared,
		pMinus1:  pm1,
		qMinus1:  qm1,
		crt:      crt,
		crt2:     crt2,
		nModPOrd: new(big.Int).Mod(n, new(big.Int).Mul(p, pm1)),
		nModQOrd: new(big.Int).Mod(n, new(big.Int).Mul(q, qm1)),
	}

	// h_x = L_x((n+1)^(x-1) mod x²)^-1 mod x. With g = n+1,
	// (1+n)^(x-1) mod x² = 1 + (x-1)·n mod x², so
	// L_x = ((x-1)·n mod x²)/x — computed directly below for clarity.
	hp, err := decryptionConstant(n, p, priv.pSquared, pm1)
	if err != nil {
		return nil, fmt.Errorf("paillier: deriving hp: %w", err)
	}
	hq, err := decryptionConstant(n, q, priv.qSquared, qm1)
	if err != nil {
		return nil, fmt.Errorf("paillier: deriving hq: %w", err)
	}
	priv.hp, priv.hq = hp, hq
	return priv, nil
}

// decryptionConstant returns L_x(g^(x-1) mod x²)^-1 mod x for g = n+1.
func decryptionConstant(n, x, xSquared, xm1 *big.Int) (*big.Int, error) {
	g := new(big.Int).Add(n, mathx.One)
	u := new(big.Int).Exp(g, xm1, xSquared)
	lx, err := lFunc(u, x)
	if err != nil {
		return nil, err
	}
	return mathx.ModInverse(lx, x)
}

// lFunc is L_x(u) = (u-1)/x over the integers; u ≡ 1 (mod x) must hold.
func lFunc(u, x *big.Int) (*big.Int, error) {
	return mathx.L(u, x)
}

// Ciphertext is a Paillier ciphertext: an element of Z*_{N²}. Values are
// immutable after creation.
type Ciphertext struct {
	c       *big.Int
	byteLen int
}

// Value returns a copy of the underlying group element.
func (ct *Ciphertext) Value() *big.Int { return new(big.Int).Set(ct.c) }

// Bytes returns the fixed-width big-endian encoding of the ciphertext.
func (ct *Ciphertext) Bytes() []byte {
	return ct.c.FillBytes(make([]byte, ct.byteLen))
}

// AppendBytes appends the fixed-width encoding of ct to dst and returns the
// extended slice. The wire-encode hot path uses it to serialize a whole
// chunk of ciphertexts into one preallocated buffer instead of paying a
// fresh allocation per Bytes call.
func (ct *Ciphertext) AppendBytes(dst []byte) []byte {
	n := len(dst)
	if cap(dst) < n+ct.byteLen {
		grown := make([]byte, n, n+ct.byteLen)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:n+ct.byteLen]
	ct.c.FillBytes(dst[n:])
	return dst
}

// String implements fmt.Stringer without dumping kilobits of hex.
func (ct *Ciphertext) String() string {
	return fmt.Sprintf("paillier.Ciphertext(%d bits)", ct.c.BitLen())
}

// Encrypt returns a randomized encryption of m, which must be in [0, N).
func (pk *PublicKey) Encrypt(m *big.Int) (*Ciphertext, error) {
	r, err := mathx.RandUnit(rand.Reader, pk.N)
	if err != nil {
		return nil, fmt.Errorf("paillier: sampling encryption randomness: %w", err)
	}
	return pk.EncryptWithNonce(m, r)
}

// EncryptWithNonce encrypts m with caller-supplied randomness r ∈ Z*_N.
// It is exposed for deterministic tests and for protocol components that
// manage their own randomness pools; r must never be reused for different
// messages that an adversary could compare.
func (pk *PublicKey) EncryptWithNonce(m, r *big.Int) (*Ciphertext, error) {
	if err := pk.checkMessage(m); err != nil {
		return nil, err
	}
	if err := pk.checkNonce(r); err != nil {
		return nil, err
	}
	rn := new(big.Int).Exp(r, pk.N, pk.NSquared)
	return pk.assembleCiphertext(m, rn), nil
}

// checkNonce validates that r is a unit of Z*_N. A nonce sharing a factor
// with N would silently produce a non-unit ciphertext that Neg and
// decryption later reject with a confusing error — and that would hand a
// factor of N to anyone who saw it on the wire — so it is rejected here
// with a structured error.
func (pk *PublicKey) checkNonce(r *big.Int) error {
	if r == nil || r.Sign() <= 0 || r.Cmp(pk.N) >= 0 {
		return ErrNonceRange
	}
	if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(mathx.One) != 0 {
		return ErrNonceNotUnit
	}
	return nil
}

// EncryptWithRandomizer encrypts m using a precomputed randomizer
// rn = r^N mod N² (see RandomizerPool). This skips the exponentiation and
// reduces encryption to two modular multiplications.
func (pk *PublicKey) EncryptWithRandomizer(m, rn *big.Int) (*Ciphertext, error) {
	if err := pk.checkMessage(m); err != nil {
		return nil, err
	}
	if rn == nil || rn.Sign() <= 0 || rn.Cmp(pk.NSquared) >= 0 {
		return nil, errors.New("paillier: randomizer must be in [1, N²)")
	}
	return pk.assembleCiphertext(m, rn), nil
}

// assembleCiphertext computes (1 + m·N)·rn mod N². The pre-reduction
// product spans up to four key widths; it is built in pooled scratch so the
// wide buffer is recycled across encryptions instead of reallocated, and
// only the reduced result is copied into the (immutable, long-lived)
// ciphertext.
func (pk *PublicKey) assembleCiphertext(m, rn *big.Int) *Ciphertext {
	t := mathx.GetScratch()
	t.Mul(m, pk.N)
	t.Add(t, mathx.One) // 1 + m·N < N² always, no reduction needed
	t.Mul(t, rn)
	t.Mod(t, pk.NSquared)
	c := new(big.Int).Set(t)
	mathx.PutScratch(t)
	return &Ciphertext{c: c, byteLen: pk.byteLen}
}

func (pk *PublicKey) checkMessage(m *big.Int) error {
	if m == nil || m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return fmt.Errorf("%w: m=%v", ErrMessageRange, m)
	}
	return nil
}

// checkCiphertext validates that ct is a plausible ciphertext under pk.
func (pk *PublicKey) checkCiphertext(ct *Ciphertext) error {
	if ct == nil || ct.c == nil {
		return fmt.Errorf("%w: nil", ErrCiphertextForm)
	}
	if ct.c.Sign() <= 0 || ct.c.Cmp(pk.NSquared) >= 0 {
		return fmt.Errorf("%w: value outside (0, N²)", ErrCiphertextForm)
	}
	return nil
}

// Decrypt recovers the plaintext of ct using CRT-accelerated decryption.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) (*big.Int, error) {
	if err := sk.checkCiphertext(ct); err != nil {
		return nil, err
	}
	// m_p = L_p(c^(p-1) mod p²)·h_p mod p
	cp := new(big.Int).Mod(ct.c, sk.pSquared)
	cp.Exp(cp, sk.pMinus1, sk.pSquared)
	lp, err := lFunc(cp, sk.P)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrKeyMismatch, err)
	}
	mp := lp.Mul(lp, sk.hp)
	mp.Mod(mp, sk.P)

	cq := new(big.Int).Mod(ct.c, sk.qSquared)
	cq.Exp(cq, sk.qMinus1, sk.qSquared)
	lq, err := lFunc(cq, sk.Q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrKeyMismatch, err)
	}
	mq := lq.Mul(lq, sk.hq)
	mq.Mod(mq, sk.Q)

	return sk.crt.Combine(mp, mq), nil
}

// DecryptNaive recovers the plaintext with the textbook formula
// m = L(c^λ mod N²)·μ mod N. It is retained for the ablation experiment
// comparing implementation constants and as a cross-check oracle in tests.
func (sk *PrivateKey) DecryptNaive(ct *Ciphertext) (*big.Int, error) {
	if err := sk.checkCiphertext(ct); err != nil {
		return nil, err
	}
	u := new(big.Int).Exp(ct.c, sk.Lambda, sk.NSquared)
	l, err := mathx.L(u, sk.N)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrKeyMismatch, err)
	}
	m := l.Mul(l, sk.Mu)
	return m.Mod(m, sk.N), nil
}

// Public returns the public half of the key.
func (sk *PrivateKey) Public() *PublicKey { return &sk.PublicKey }

// Equal reports whether two public keys have the same modulus.
func (pk *PublicKey) Equal(other *PublicKey) bool {
	return other != nil && pk.N.Cmp(other.N) == 0
}
