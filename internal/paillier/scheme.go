package paillier

import (
	"fmt"
	"math/big"

	"privstats/internal/homomorphic"
)

// Adapters exposing Paillier through the scheme-agnostic
// homomorphic.PublicKey / homomorphic.PrivateKey interfaces, so the
// protocol layer and the ablation benchmarks can swap cryptosystems.

// Scheme wraps a *PublicKey as a homomorphic.PublicKey.
type Scheme struct{ PK *PublicKey }

// SchemeKey wraps a *PrivateKey as a homomorphic.PrivateKey.
type SchemeKey struct{ SK *PrivateKey }

var (
	_ homomorphic.PublicKey         = Scheme{}
	_ homomorphic.MultiScalarFolder = Scheme{}
	_ homomorphic.PrivateKey        = SchemeKey{}
	_ homomorphic.SelfEncryptor     = SchemeKey{}
	_ homomorphic.Ciphertext        = (*Ciphertext)(nil)
)

// SchemeID is the registry name of this cryptosystem.
const SchemeID = "paillier"

func init() {
	homomorphic.Register(SchemeID, func(keyBytes []byte) (homomorphic.PublicKey, error) {
		var pk PublicKey
		if err := pk.UnmarshalBinary(keyBytes); err != nil {
			return nil, err
		}
		return Scheme{PK: &pk}, nil
	})
}

// SchemeName implements homomorphic.PublicKey.
func (s Scheme) SchemeName() string { return SchemeID }

// MarshalBinary implements homomorphic.PublicKey.
func (s Scheme) MarshalBinary() ([]byte, error) { return s.PK.MarshalBinary() }

// Encrypt implements homomorphic.PublicKey.
func (s Scheme) Encrypt(m *big.Int) (homomorphic.Ciphertext, error) {
	return s.PK.Encrypt(m)
}

// Add implements homomorphic.PublicKey.
func (s Scheme) Add(a, b homomorphic.Ciphertext) (homomorphic.Ciphertext, error) {
	ca, cb, err := asPair(a, b)
	if err != nil {
		return nil, err
	}
	return s.PK.Add(ca, cb)
}

// ScalarMul implements homomorphic.PublicKey.
func (s Scheme) ScalarMul(c homomorphic.Ciphertext, k *big.Int) (homomorphic.Ciphertext, error) {
	cc, err := asPaillier(c)
	if err != nil {
		return nil, err
	}
	return s.PK.ScalarMul(cc, k)
}

// FoldScalarMul implements homomorphic.MultiScalarFolder, the optional
// fast-fold capability the selected-sum server probes for.
func (s Scheme) FoldScalarMul(cts []homomorphic.Ciphertext, ks []uint64, workers int) (homomorphic.Ciphertext, error) {
	own := make([]*Ciphertext, len(cts))
	for i, c := range cts {
		cc, err := asPaillier(c)
		if err != nil {
			return nil, err
		}
		own[i] = cc
	}
	return s.PK.FoldScalarMul(own, ks, workers)
}

// Rerandomize implements homomorphic.PublicKey.
func (s Scheme) Rerandomize(c homomorphic.Ciphertext) (homomorphic.Ciphertext, error) {
	cc, err := asPaillier(c)
	if err != nil {
		return nil, err
	}
	return s.PK.Rerandomize(cc)
}

// PlaintextSpace implements homomorphic.PublicKey.
func (s Scheme) PlaintextSpace() *big.Int { return new(big.Int).Set(s.PK.N) }

// CiphertextSize implements homomorphic.PublicKey.
func (s Scheme) CiphertextSize() int { return s.PK.CiphertextSize() }

// ParseCiphertext implements homomorphic.PublicKey.
func (s Scheme) ParseCiphertext(b []byte) (homomorphic.Ciphertext, error) {
	return s.PK.ParseCiphertext(b)
}

// PublicKey implements homomorphic.PrivateKey.
func (k SchemeKey) PublicKey() homomorphic.PublicKey { return Scheme{PK: k.SK.Public()} }

// Decrypt implements homomorphic.PrivateKey.
func (k SchemeKey) Decrypt(c homomorphic.Ciphertext) (*big.Int, error) {
	cc, err := asPaillier(c)
	if err != nil {
		return nil, err
	}
	return k.SK.Decrypt(cc)
}

// EncryptSelf implements homomorphic.SelfEncryptor, the optional fast
// own-key encryption capability the selected-sum client probes for: it
// routes through the CRT-split exponentiation over the secret factors.
func (k SchemeKey) EncryptSelf(m *big.Int) (homomorphic.Ciphertext, error) {
	return k.SK.EncryptCRT(m)
}

// SchemeBitStore adapts BitStore to homomorphic.EncryptorPool.
type SchemeBitStore struct{ Store *BitStore }

var _ homomorphic.EncryptorPool = SchemeBitStore{}

// DrawBit implements homomorphic.EncryptorPool.
func (s SchemeBitStore) DrawBit(bit uint) (homomorphic.Ciphertext, error) {
	return s.Store.DrawBit(bit)
}

// Remaining implements homomorphic.EncryptorPool.
func (s SchemeBitStore) Remaining(bit uint) int { return s.Store.Remaining(bit) }

func asPaillier(c homomorphic.Ciphertext) (*Ciphertext, error) {
	ct, ok := c.(*Ciphertext)
	if !ok {
		return nil, fmt.Errorf("paillier: foreign ciphertext type %T", c)
	}
	return ct, nil
}

func asPair(a, b homomorphic.Ciphertext) (*Ciphertext, *Ciphertext, error) {
	ca, err := asPaillier(a)
	if err != nil {
		return nil, nil, err
	}
	cb, err := asPaillier(b)
	if err != nil {
		return nil, nil, err
	}
	return ca, cb, nil
}
