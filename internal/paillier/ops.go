package paillier

import (
	"errors"
	"fmt"
	"math/big"

	"privstats/internal/mathx"
)

// This file implements the homomorphic operations the selected-sum protocol
// relies on (paper §2): ciphertext addition is multiplication mod N², and
// plaintext-scalar multiplication is exponentiation mod N².

// Add returns an encryption of a+b (mod N): E(a)·E(b) mod N².
func (pk *PublicKey) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := pk.checkCiphertext(a); err != nil {
		return nil, err
	}
	if err := pk.checkCiphertext(b); err != nil {
		return nil, err
	}
	c := new(big.Int).Mul(a.c, b.c)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{c: c, byteLen: pk.byteLen}, nil
}

// AddPlain returns an encryption of m(ct)+k (mod N) without decrypting:
// ct · g^k = ct · (1 + k·N) mod N².
func (pk *PublicKey) AddPlain(ct *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if err := pk.checkCiphertext(ct); err != nil {
		return nil, err
	}
	if k == nil {
		return nil, errors.New("paillier: nil scalar")
	}
	km := new(big.Int).Mod(k, pk.N) // accept any integer, reduce into Z_N
	gk := new(big.Int).Mul(km, pk.N)
	gk.Add(gk, mathx.One)
	c := gk.Mul(gk, ct.c)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{c: c, byteLen: pk.byteLen}, nil
}

// ScalarMul returns an encryption of k·m(ct) (mod N): ct^k mod N².
// This is the server's core operation in the selected-sum protocol, where k
// is a database value x_i. Negative k is mapped to N-|k| mod N (i.e. the
// additive inverse), enabling homomorphic subtraction.
func (pk *PublicKey) ScalarMul(ct *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if err := pk.checkCiphertext(ct); err != nil {
		return nil, err
	}
	if k == nil {
		return nil, errors.New("paillier: nil scalar")
	}
	km := new(big.Int).Mod(k, pk.N)
	c := new(big.Int).Exp(ct.c, km, pk.NSquared)
	return &Ciphertext{c: c, byteLen: pk.byteLen}, nil
}

// Neg returns an encryption of -m(ct) mod N.
func (pk *PublicKey) Neg(ct *Ciphertext) (*Ciphertext, error) {
	if err := pk.checkCiphertext(ct); err != nil {
		return nil, err
	}
	inv, err := mathx.ModInverse(ct.c, pk.NSquared)
	if err != nil {
		// A non-invertible ciphertext shares a factor with N — it would
		// factor the key. Treat as malformed input.
		return nil, fmt.Errorf("%w: not a unit mod N²", ErrCiphertextForm)
	}
	return &Ciphertext{c: inv, byteLen: pk.byteLen}, nil
}

// Sub returns an encryption of m(a) - m(b) mod N.
func (pk *PublicKey) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	nb, err := pk.Neg(b)
	if err != nil {
		return nil, err
	}
	return pk.Add(a, nb)
}

// Rerandomize returns a fresh encryption of the same plaintext,
// statistically unlinkable to ct: ct · E(0) mod N².
func (pk *PublicKey) Rerandomize(ct *Ciphertext) (*Ciphertext, error) {
	zero, err := pk.Encrypt(mathx.Zero)
	if err != nil {
		return nil, err
	}
	return pk.Add(ct, zero)
}

// WeightedSum folds a ciphertext vector against a plaintext weight vector:
// Π cts[i]^weights[i] = E(Σ weights[i]·m_i). It is the single-shot form of
// the server's selected-sum loop, used by the SPFE layer for weighted
// statistics. Vectors must have equal length.
func (pk *PublicKey) WeightedSum(cts []*Ciphertext, weights []*big.Int) (*Ciphertext, error) {
	if len(cts) != len(weights) {
		return nil, fmt.Errorf("paillier: %d ciphertexts vs %d weights", len(cts), len(weights))
	}
	acc := new(big.Int).Set(mathx.One) // E(0; r=1); rerandomized by the folds
	tmp := new(big.Int)
	for i, ct := range cts {
		if err := pk.checkCiphertext(ct); err != nil {
			return nil, fmt.Errorf("paillier: ciphertext %d: %w", i, err)
		}
		w := weights[i]
		if w == nil {
			return nil, fmt.Errorf("paillier: weight %d is nil", i)
		}
		if w.Sign() == 0 {
			continue
		}
		wm := tmp.Mod(w, pk.N)
		p := new(big.Int).Exp(ct.c, wm, pk.NSquared)
		acc.Mul(acc, p)
		acc.Mod(acc, pk.NSquared)
	}
	return &Ciphertext{c: acc, byteLen: pk.byteLen}, nil
}

// FoldScalarMul returns E(Σ ks[i]·m_i) = Π cts[i]^{ks[i]} mod N² via bucket
// multi-exponentiation (mathx.MultiExp) — the fast form of the server's
// selected-sum fold. Zero scalars are skipped; workers > 1 splits the fold
// across goroutines. When every scalar is zero the result is E(0) with unit
// randomness, the multiplicative identity — fine as a fold accumulator, but
// callers exposing it to a peer must rerandomize first.
func (pk *PublicKey) FoldScalarMul(cts []*Ciphertext, ks []uint64, workers int) (*Ciphertext, error) {
	if len(cts) != len(ks) {
		return nil, fmt.Errorf("paillier: %d ciphertexts vs %d scalars", len(cts), len(ks))
	}
	bases := make([]*big.Int, 0, len(cts))
	exps := make([]uint64, 0, len(ks))
	for i, ct := range cts {
		if err := pk.checkCiphertext(ct); err != nil {
			return nil, fmt.Errorf("paillier: ciphertext %d: %w", i, err)
		}
		if ks[i] == 0 {
			continue
		}
		bases = append(bases, ct.c)
		exps = append(exps, ks[i])
	}
	var acc *big.Int
	var err error
	if workers > 1 {
		acc, err = mathx.MultiExpParallel(bases, exps, pk.NSquared, 0, workers)
	} else {
		acc, err = mathx.MultiExp(bases, exps, pk.NSquared, 0)
	}
	if err != nil {
		return nil, fmt.Errorf("paillier: multi-exponentiation: %w", err)
	}
	return &Ciphertext{c: acc, byteLen: pk.byteLen}, nil
}

// ParseCiphertext decodes a fixed-width encoding produced by
// Ciphertext.Bytes, rejecting out-of-range values.
func (pk *PublicKey) ParseCiphertext(b []byte) (*Ciphertext, error) {
	if len(b) != pk.byteLen {
		return nil, fmt.Errorf("%w: got %d bytes, want %d", ErrCiphertextForm, len(b), pk.byteLen)
	}
	v := new(big.Int).SetBytes(b)
	ct := &Ciphertext{c: v, byteLen: pk.byteLen}
	if err := pk.checkCiphertext(ct); err != nil {
		return nil, err
	}
	return ct, nil
}

// CiphertextSize returns the fixed wire width of one encoded ciphertext.
func (pk *PublicKey) CiphertextSize() int { return pk.byteLen }
