package paillier

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"

	"privstats/internal/mathx"
)

// Microbenchmarks for the key owner's CRT encryption path against the public
// r^N route, across key sizes. bench.ClientEncryptAblation is the
// decrypt-verified protocol-level version of the same comparison; these pin
// the raw primitive costs.

var benchKeys = map[int]*PrivateKey{}

func benchKey(b *testing.B, bits int) *PrivateKey {
	b.Helper()
	if sk, ok := benchKeys[bits]; ok {
		return sk
	}
	sk, err := KeyGen(rand.Reader, bits)
	if err != nil {
		b.Fatal(err)
	}
	benchKeys[bits] = sk
	return sk
}

func benchBits(f func(b *testing.B, bits int)) func(*testing.B) {
	return func(b *testing.B) {
		for _, bits := range []int{512, 1024} {
			b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) { f(b, bits) })
		}
	}
}

func BenchmarkEncryptPublic(b *testing.B) {
	benchBits(func(b *testing.B, bits int) {
		pk := benchKey(b, bits).Public()
		m := big.NewInt(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pk.Encrypt(m); err != nil {
				b.Fatal(err)
			}
		}
	})(b)
}

func BenchmarkEncryptCRT(b *testing.B) {
	benchBits(func(b *testing.B, bits int) {
		sk := benchKey(b, bits)
		m := big.NewInt(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sk.EncryptCRT(m); err != nil {
				b.Fatal(err)
			}
		}
	})(b)
}

func BenchmarkFreshRandomizerCRT(b *testing.B) {
	benchBits(func(b *testing.B, bits int) {
		sk := benchKey(b, bits)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sk.FreshRandomizerCRT(); err != nil {
				b.Fatal(err)
			}
		}
	})(b)
}

func BenchmarkRandomizerNaive(b *testing.B) {
	benchBits(func(b *testing.B, bits int) {
		sk := benchKey(b, bits)
		r, err := mathx.RandUnit(rand.Reader, sk.N)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			new(big.Int).Exp(r, sk.N, sk.NSquared)
		}
	})(b)
}

func BenchmarkRandomizerCRT(b *testing.B) {
	benchBits(func(b *testing.B, bits int) {
		sk := benchKey(b, bits)
		r, err := mathx.RandUnit(rand.Reader, sk.N)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sk.RandomizerCRT(r); err != nil {
				b.Fatal(err)
			}
		}
	})(b)
}
