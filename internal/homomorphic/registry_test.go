package homomorphic

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
	"sync/atomic"
	"testing"
)

// uniqueName returns a fresh scheme name per call so tests stay valid when
// the package's tests run multiple times in one process (go test -count=N).
var nameCounter atomic.Int64

func uniqueName(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, nameCounter.Add(1))
}

// fakeKey is a minimal PublicKey for registry tests.
type fakeKey struct{ raw []byte }

func (fakeKey) SchemeName() string                      { return "fake" }
func (fakeKey) Encrypt(*big.Int) (Ciphertext, error)    { return nil, errors.New("fake") }
func (fakeKey) Add(_, _ Ciphertext) (Ciphertext, error) { return nil, errors.New("fake") }
func (fakeKey) ScalarMul(Ciphertext, *big.Int) (Ciphertext, error) {
	return nil, errors.New("fake")
}
func (fakeKey) Rerandomize(Ciphertext) (Ciphertext, error) { return nil, errors.New("fake") }
func (fakeKey) PlaintextSpace() *big.Int                   { return big.NewInt(2) }
func (fakeKey) CiphertextSize() int                        { return 1 }
func (fakeKey) ParseCiphertext([]byte) (Ciphertext, error) { return nil, errors.New("fake") }
func (f fakeKey) MarshalBinary() ([]byte, error)           { return f.raw, nil }

func TestRegisterAndParse(t *testing.T) {
	name := uniqueName("test-scheme-a")
	Register(name, func(b []byte) (PublicKey, error) {
		return fakeKey{raw: b}, nil
	})
	pk, err := ParsePublicKey(name, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := pk.MarshalBinary()
	if err != nil || string(raw) != "\x01\x02\x03" {
		t.Errorf("round trip lost bytes: %v %v", raw, err)
	}
}

func TestParseUnknownScheme(t *testing.T) {
	_, err := ParsePublicKey("never-registered", nil)
	if err == nil {
		t.Fatal("unknown scheme should fail")
	}
	if !strings.Contains(err.Error(), "never-registered") {
		t.Errorf("error should name the scheme: %v", err)
	}
}

func TestRegisterRejectsBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { Register("", func([]byte) (PublicKey, error) { return nil, nil }) },
		func() { Register(uniqueName("x-nil-parser"), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Register should panic")
				}
			}()
			f()
		}()
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	parser := func(b []byte) (PublicKey, error) { return fakeKey{}, nil }
	name := uniqueName("test-scheme-dup")
	Register(name, parser)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	Register(name, parser)
}

func TestSchemesSorted(t *testing.T) {
	za := uniqueName("test-zzz")
	aa := uniqueName("test-aaa")
	Register(za, func([]byte) (PublicKey, error) { return fakeKey{}, nil })
	Register(aa, func([]byte) (PublicKey, error) { return fakeKey{}, nil })
	names := Schemes()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("schemes not sorted: %v", names)
		}
	}
	found := 0
	for _, n := range names {
		if n == za || n == aa {
			found++
		}
	}
	if found != 2 {
		t.Errorf("registered schemes missing from %v", names)
	}
}
