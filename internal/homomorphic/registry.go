package homomorphic

import (
	"fmt"
	"sort"
	"sync"
)

// The scheme registry lets the transport-facing server reconstruct a public
// key from the scheme name and key bytes carried in the session Hello,
// without the wire layer depending on every cryptosystem package. Each
// cryptosystem registers a parser from its init function (the image-format
// registration pattern); programs import the schemes they accept for side
// effect.

// KeyParser decodes a public key previously produced by MarshalBinary.
type KeyParser func(keyBytes []byte) (PublicKey, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]KeyParser{}
)

// Register installs a parser for the named scheme. It panics when called
// twice for the same name — that is always a programmer error.
func Register(name string, parser KeyParser) {
	if name == "" || parser == nil {
		panic("homomorphic: Register with empty name or nil parser")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("homomorphic: scheme %q registered twice", name))
	}
	registry[name] = parser
}

// ParsePublicKey decodes keyBytes as a public key of the named scheme.
func ParsePublicKey(scheme string, keyBytes []byte) (PublicKey, error) {
	registryMu.RLock()
	parser, ok := registry[scheme]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("homomorphic: unknown scheme %q (registered: %v)", scheme, Schemes())
	}
	return parser(keyBytes)
}

// Schemes lists the registered scheme names in sorted order.
func Schemes() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
