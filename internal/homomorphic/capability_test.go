package homomorphic

import "testing"

// foldingFake is fakeKey plus the MultiScalarFolder capability.
type foldingFake struct{ fakeKey }

func (foldingFake) FoldScalarMul([]Ciphertext, []uint64, int) (Ciphertext, error) {
	return nil, nil
}

func TestWithoutMultiScalarFoldStripsCapability(t *testing.T) {
	var pk PublicKey = foldingFake{}
	if _, ok := pk.(MultiScalarFolder); !ok {
		t.Fatal("foldingFake should implement MultiScalarFolder")
	}
	stripped := WithoutMultiScalarFold(pk)
	if _, ok := stripped.(MultiScalarFolder); ok {
		t.Error("stripped key still exposes MultiScalarFolder")
	}
	// The base interface still works through the wrapper.
	if stripped.SchemeName() != pk.SchemeName() {
		t.Error("stripped key lost the base method set")
	}
}
