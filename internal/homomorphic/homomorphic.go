// Package homomorphic defines the additively homomorphic encryption
// interface that the selected-sum protocol layer is written against.
//
// The paper's protocol needs exactly the properties stated in its Section 2:
// semantically secure encryption where E(a)·E(b) = E(a+b) and E(a)^c =
// E(a·c). The Paillier cryptosystem (internal/paillier) is the instantiation
// the paper uses; Damgård–Jurik and exponential ElGamal (internal/crypto/…)
// implement the same interface and are used for ablation benchmarks.
package homomorphic

import "math/big"

// Ciphertext is an opaque encrypted value. Implementations are immutable:
// homomorphic operations return fresh ciphertexts and never mutate their
// operands, so ciphertexts may be shared freely across goroutines.
type Ciphertext interface {
	// Bytes returns the canonical fixed-width encoding of the ciphertext,
	// suitable for the wire. The width is the owning scheme's
	// CiphertextSize.
	Bytes() []byte
}

// PublicKey is the encrypting side of an additively homomorphic scheme.
// All plaintext arithmetic is modulo PlaintextSpace().
type PublicKey interface {
	// SchemeName identifies the scheme (e.g. "paillier") for wire
	// negotiation and reporting.
	SchemeName() string

	// Encrypt returns a fresh randomized encryption of m.
	// m must lie in [0, PlaintextSpace()).
	Encrypt(m *big.Int) (Ciphertext, error)

	// Add returns an encryption of the sum of the two plaintexts.
	Add(a, b Ciphertext) (Ciphertext, error)

	// ScalarMul returns an encryption of k times the plaintext of c.
	// k may be any non-negative integer.
	ScalarMul(c Ciphertext, k *big.Int) (Ciphertext, error)

	// Rerandomize returns a fresh encryption of the same plaintext,
	// unlinkable to c. The server uses this (composed with an encryption
	// of a blinding value) in the multi-client protocol.
	Rerandomize(c Ciphertext) (Ciphertext, error)

	// PlaintextSpace returns the modulus M of the plaintext ring Z_M.
	PlaintextSpace() *big.Int

	// CiphertextSize returns the fixed byte width of an encoded ciphertext.
	CiphertextSize() int

	// ParseCiphertext decodes and validates a ciphertext encoded by
	// Ciphertext.Bytes. It must reject values outside the ciphertext
	// space rather than produce undefined results.
	ParseCiphertext(b []byte) (Ciphertext, error)

	// MarshalBinary encodes the public key for the session Hello.
	MarshalBinary() ([]byte, error)
}

// PrivateKey is the decrypting side of a scheme.
type PrivateKey interface {
	// PublicKey returns the matching public key.
	PublicKey() PublicKey

	// Decrypt returns the plaintext of c in [0, PlaintextSpace()).
	Decrypt(c Ciphertext) (*big.Int, error)
}

// EncryptorPool is implemented by schemes that can hand out precomputed
// encryptions of fixed plaintexts — the paper's Section 3.3 preprocessing
// optimization. Implementations must be safe for concurrent use.
type EncryptorPool interface {
	// DrawBit returns a precomputed fresh encryption of bit (0 or 1),
	// falling back to online encryption when the pool is empty.
	DrawBit(bit uint) (Ciphertext, error)

	// Remaining reports how many precomputed encryptions of the given bit
	// are still stocked.
	Remaining(bit uint) int
}
