// Package homomorphic defines the additively homomorphic encryption
// interface that the selected-sum protocol layer is written against.
//
// The paper's protocol needs exactly the properties stated in its Section 2:
// semantically secure encryption where E(a)·E(b) = E(a+b) and E(a)^c =
// E(a·c). The Paillier cryptosystem (internal/paillier) is the instantiation
// the paper uses; Damgård–Jurik and exponential ElGamal (internal/crypto/…)
// implement the same interface and are used for ablation benchmarks.
package homomorphic

import "math/big"

// Ciphertext is an opaque encrypted value. Implementations are immutable:
// homomorphic operations return fresh ciphertexts and never mutate their
// operands, so ciphertexts may be shared freely across goroutines.
type Ciphertext interface {
	// Bytes returns the canonical fixed-width encoding of the ciphertext,
	// suitable for the wire. The width is the owning scheme's
	// CiphertextSize.
	Bytes() []byte
}

// PublicKey is the encrypting side of an additively homomorphic scheme.
// All plaintext arithmetic is modulo PlaintextSpace().
type PublicKey interface {
	// SchemeName identifies the scheme (e.g. "paillier") for wire
	// negotiation and reporting.
	SchemeName() string

	// Encrypt returns a fresh randomized encryption of m.
	// m must lie in [0, PlaintextSpace()).
	Encrypt(m *big.Int) (Ciphertext, error)

	// Add returns an encryption of the sum of the two plaintexts.
	Add(a, b Ciphertext) (Ciphertext, error)

	// ScalarMul returns an encryption of k times the plaintext of c.
	// k may be any non-negative integer.
	ScalarMul(c Ciphertext, k *big.Int) (Ciphertext, error)

	// Rerandomize returns a fresh encryption of the same plaintext,
	// unlinkable to c. The server uses this (composed with an encryption
	// of a blinding value) in the multi-client protocol.
	Rerandomize(c Ciphertext) (Ciphertext, error)

	// PlaintextSpace returns the modulus M of the plaintext ring Z_M.
	PlaintextSpace() *big.Int

	// CiphertextSize returns the fixed byte width of an encoded ciphertext.
	CiphertextSize() int

	// ParseCiphertext decodes and validates a ciphertext encoded by
	// Ciphertext.Bytes. It must reject values outside the ciphertext
	// space rather than produce undefined results.
	ParseCiphertext(b []byte) (Ciphertext, error)

	// MarshalBinary encodes the public key for the session Hello.
	MarshalBinary() ([]byte, error)
}

// PrivateKey is the decrypting side of a scheme.
type PrivateKey interface {
	// PublicKey returns the matching public key.
	PublicKey() PublicKey

	// Decrypt returns the plaintext of c in [0, PlaintextSpace()).
	Decrypt(c Ciphertext) (*big.Int, error)
}

// MultiScalarFolder is an optional capability: schemes that can compute the
// server fold Π cts[i]^{ks[i]} = E(Σ ks[i]·m_i) faster than the naive
// ScalarMul+Add loop implement it (Paillier uses bucket
// multi-exponentiation, see mathx.MultiExp). The protocol layer type-asserts
// for it and falls back to the loop when absent, so schemes without a fast
// path need no changes.
type MultiScalarFolder interface {
	// FoldScalarMul returns an encryption of Σ ks[i]·m_i where m_i is the
	// plaintext of cts[i]. Zero scalars contribute nothing and must be
	// skipped. workers > 1 may split the fold across goroutines; the result
	// must be identical at any worker count. If every scalar is zero the
	// result is a (possibly deterministic) encryption of 0 — callers that
	// return ciphertexts to untrusted peers must rerandomize, which the
	// selected-sum protocol already does at finalize.
	FoldScalarMul(cts []Ciphertext, ks []uint64, workers int) (Ciphertext, error)
}

// WithoutMultiScalarFold returns pk stripped of the MultiScalarFolder
// capability (and any other optional capability): the returned key exposes
// exactly the base PublicKey interface. Tests and benchmarks use it to pin
// the naive fold as the correctness oracle.
func WithoutMultiScalarFold(pk PublicKey) PublicKey {
	return baseKeyOnly{pk}
}

// baseKeyOnly promotes only the embedded interface's method set, so a type
// assertion for MultiScalarFolder (or any other capability) fails.
type baseKeyOnly struct{ PublicKey }

// SelfEncryptor is an optional capability on PrivateKey: key owners that
// can encrypt under their own key faster than the public path implement it
// (Paillier splits the randomizer exponentiation over the secret factors —
// see paillier.EncryptCRT). The protocol layer type-asserts for it when the
// encrypting party holds the private key and falls back to
// PublicKey().Encrypt when absent, so schemes without a fast path need no
// changes.
type SelfEncryptor interface {
	// EncryptSelf returns a fresh randomized encryption of m, identically
	// distributed to PublicKey().Encrypt(m).
	EncryptSelf(m *big.Int) (Ciphertext, error)
}

// WithoutSelfEncrypt returns sk stripped of the SelfEncryptor capability
// (and any other optional capability): the returned key exposes exactly the
// base PrivateKey interface. Tests and benchmarks use it to pin the
// public-key encryption path as the correctness oracle.
func WithoutSelfEncrypt(sk PrivateKey) PrivateKey {
	return basePrivOnly{sk}
}

// basePrivOnly promotes only the embedded interface's method set, so a type
// assertion for SelfEncryptor (or any other capability) fails.
type basePrivOnly struct{ PrivateKey }

// FixedBased is implemented by public keys whose Encrypt runs through
// lazily built fixed-base windowed tables (Damgård–Jurik, ElGamal).
// WithoutFixedBase returns an equivalent key with the acceleration
// stripped — the naive oracle for differential tests.
type FixedBased interface {
	WithoutFixedBase() PublicKey
}

// WithoutFixedBase strips the fixed-base acceleration from pk when the
// scheme supports stripping, and otherwise strips every optional capability
// the generic way.
func WithoutFixedBase(pk PublicKey) PublicKey {
	if f, ok := pk.(FixedBased); ok {
		return f.WithoutFixedBase()
	}
	return baseKeyOnly{pk}
}

// EncryptorPool is implemented by schemes that can hand out precomputed
// encryptions of fixed plaintexts — the paper's Section 3.3 preprocessing
// optimization. Implementations must be safe for concurrent use.
type EncryptorPool interface {
	// DrawBit returns a precomputed fresh encryption of bit (0 or 1),
	// falling back to online encryption when the pool is empty.
	DrawBit(bit uint) (Ciphertext, error)

	// Remaining reports how many precomputed encryptions of the given bit
	// are still stocked.
	Remaining(bit uint) int
}
