package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestGaugeSet(t *testing.T) {
	var g Gauge
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("Value = %d, want 7", g.Value())
	}
	g.Set(3)
	if g.Value() != 3 || g.Max() != 7 {
		t.Fatalf("after Set(3): value %d max %d, want 3 and 7", g.Value(), g.Max())
	}
	g.Set(11)
	if g.Max() != 11 {
		t.Fatalf("Max = %d, want 11", g.Max())
	}
}

func TestStockMetricsSnapshot(t *testing.T) {
	var m StockMetrics
	m.Sessions.Inc()
	k := m.Key("deadbeef00112233")
	k.DepthZeros.Set(40)
	k.DepthOnes.Set(8)
	k.GeneratedBits.Add(48)
	k.ServedBits.Add(16)
	k.ServedBatches.Inc()
	k.FillNanos.ObserveDuration(5 * time.Millisecond)

	s := m.Snapshot()
	if s.Sessions != 1 || len(s.Keys) != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	row := s.Keys[0]
	if row.Key != "deadbeef00112233" || row.DepthZeros != 40 || row.DepthOnes != 8 ||
		row.GeneratedBits != 48 || row.ServedBits != 16 || row.ServedBatches != 1 {
		t.Fatalf("row = %+v", row)
	}
	if row.FillP50Milli <= 0 {
		t.Errorf("fill p50 = %v, want > 0", row.FillP50Milli)
	}

	// Keys render in stable name order.
	m.Key("aaaa000000000000")
	s = m.Snapshot()
	if len(s.Keys) != 2 || s.Keys[0].Key != "aaaa000000000000" {
		t.Fatalf("keys not sorted: %+v", s.Keys)
	}
}

func TestStockMetricsHandlerEmpty(t *testing.T) {
	var m StockMetrics
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc struct {
		Keys []KeyStockSnapshot `json:"keys"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Keys == nil {
		t.Error("empty registry must render keys as [], not null")
	}
}

func TestWritePromStock(t *testing.T) {
	var m StockMetrics
	m.Sessions.Add(3)
	m.HelloRejects.Inc()
	k := m.Key("cafe")
	k.DepthZeros.Set(100)
	k.DepthRandomizers.Set(5)
	k.GeneratedRandomizers.Add(5)
	k.ServedBits.Add(60)
	k.RefillErrors.Inc()
	k.FillNanos.ObserveDuration(time.Millisecond)

	var b bytes.Buffer
	if err := WritePromStock(&b, &m); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"privstats_stock_sessions_total 3",
		"privstats_stock_hello_rejects_total 1",
		`privstats_stock_depth{key="cafe",kind="zeros"} 100`,
		`privstats_stock_depth{key="cafe",kind="randomizers"} 5`,
		`privstats_stock_generated_total{key="cafe",kind="randomizers"} 5`,
		`privstats_stock_served_total{key="cafe",kind="bits"} 60`,
		`privstats_stock_served_batches_total{key="cafe"} 0`,
		`privstats_stock_refill_errors_total{key="cafe"} 1`,
		"privstats_stock_fill_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestPromHandlerStock(t *testing.T) {
	var sm ServerMetrics
	sm.SessionsStarted.Inc()
	var stm StockMetrics
	stm.Sessions.Inc()

	rec := httptest.NewRecorder()
	PromHandlerStock(&sm, &stm).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "privstats_sessions_total") {
		t.Error("server families missing")
	}
	if !strings.Contains(body, "privstats_stock_sessions_total") {
		t.Error("stock families missing")
	}
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("content type %q", ct)
	}
}
