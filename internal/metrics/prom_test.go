package metrics

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"privstats/internal/testutil"
)

// promFixture builds metrics with fully deterministic contents: fixed
// counters, fixed histogram observations, and a pinned clock. Everything the
// exposition renders is a pure function of this fixture, which is what makes
// the golden file stable.
func promFixture() (*ServerMetrics, *ClusterMetrics, *JobMetrics, time.Time) {
	t0 := time.Unix(1700000000, 0)
	sm := &ServerMetrics{}
	sm.StartClock(t0)
	sm.SessionsStarted.Add(7)
	sm.SessionsCompleted.Add(5)
	sm.SessionsFailed.Add(1)
	sm.SessionsRejected.Add(2)
	sm.ActiveSessions.Inc() // active 1, peak 1
	sm.BytesIn.Add(4096)
	sm.BytesOut.Add(512)
	sm.AcceptErrors.Add(3)
	sm.SessionPanics.Add(1)
	for _, ns := range []int64{1000, 2000, 150000} {
		sm.HelloNanos.Observe(ns)
	}
	sm.AbsorbNanos.Observe(5_000_000)
	sm.FinalizeNanos.Observe(0) // bucket 0: the exactly-zero bucket
	// SessionNanos left empty on purpose: renders as bare +Inf/sum/count.

	cm := &ClusterMetrics{}
	cm.Queries.Add(4)
	cm.Retries.Add(2)
	cm.Failovers.Inc()
	cm.ShardFailures.Inc()
	cm.HedgedDials.Add(3)
	cm.ShardHedges.Add(2)
	cm.ShardHedgeWins.Inc()
	cm.CorruptFrames.Add(5)
	cm.Reshards.Inc()
	cm.Epoch.Set(2)
	cm.CombineNanos.Observe(250_000)
	b1 := cm.Backend("127.0.0.1:9001")
	b1.Sessions.Add(6)
	b1.Errors.Add(2)
	b1.Busy.Inc()
	b1.FanoutNanos.Observe(3_000_000)
	b2 := cm.Backend(`weird"addr\with spaces`)
	b2.Sessions.Inc()

	jm := &JobMetrics{}
	acme := jm.Tenant("acme")
	acme.Submitted.Add(9)
	acme.Admitted.Add(6)
	acme.Rejected.Add(3)
	acme.Completed.Add(5)
	acme.Failed.Inc()
	acme.Queued.Inc() // queued 1, peak 1
	acme.JobNanos.Observe(4_000_000)
	acme.JobNanos.Observe(12_000_000)
	beta := jm.Tenant("beta")
	beta.Submitted.Add(2)
	beta.Admitted.Add(2)
	beta.Completed.Add(2)
	jm.Recovered.Add(4)
	jm.ReplayedBytes.Add(2048)
	jm.TornTail.Inc()
	// beta.JobNanos left empty: renders as bare +Inf/sum/count.

	return sm, cm, jm, t0.Add(90 * time.Second)
}

func renderProm(t *testing.T, sm *ServerMetrics, cm *ClusterMetrics, jm *JobMetrics, now time.Time) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteProm(&b, sm, now); err != nil {
		t.Fatal(err)
	}
	if err := WritePromCluster(&b, cm); err != nil {
		t.Fatal(err)
	}
	if err := WritePromJobs(&b, jm); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestPromGolden pins the exact exposition bytes: metric names, types, HELP
// strings, label escaping, bucket bounds. These are a compatibility surface
// for dashboards and alerts — if a rename or format change is intentional,
// regenerate with UPDATE_GOLDEN=1 and review the diff like an API change.
func TestPromGolden(t *testing.T) {
	sm, cm, jm, now := promFixture()
	got := renderProm(t, sm, cm, jm, now)

	path := filepath.Join("testdata", "metrics.prom")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\nIf intentional: UPDATE_GOLDEN=1 go test ./internal/metrics/ and review the diff.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPromRoundTrip re-reads the rendered text through the shared parser and
// checks every value against the atomic counters it came from — the other
// half of the format contract: what we write must be machine-readable and
// numerically faithful.
func TestPromRoundTrip(t *testing.T) {
	sm, cm, jm, now := promFixture()
	vals, err := testutil.ParseProm(renderProm(t, sm, cm, jm, now))
	if err != nil {
		t.Fatal(err)
	}

	checks := map[string]float64{
		"privstats_uptime_seconds":                                                     90,
		`privstats_sessions_total{state="started"}`:                                    float64(sm.SessionsStarted.Value()),
		`privstats_sessions_total{state="completed"}`:                                  float64(sm.SessionsCompleted.Value()),
		`privstats_sessions_total{state="failed"}`:                                     float64(sm.SessionsFailed.Value()),
		`privstats_sessions_total{state="rejected"}`:                                   float64(sm.SessionsRejected.Value()),
		"privstats_active_sessions":                                                    float64(sm.ActiveSessions.Value()),
		"privstats_active_sessions_peak":                                               float64(sm.ActiveSessions.Max()),
		`privstats_transport_bytes_total{direction="in"}`:                              float64(sm.BytesIn.Value()),
		`privstats_transport_bytes_total{direction="out"}`:                             float64(sm.BytesOut.Value()),
		"privstats_accept_errors_total":                                                float64(sm.AcceptErrors.Value()),
		"privstats_session_panics_total":                                               float64(sm.SessionPanics.Value()),
		"privstats_cluster_queries_total":                                              float64(cm.Queries.Value()),
		"privstats_cluster_retries_total":                                              float64(cm.Retries.Value()),
		"privstats_cluster_failovers_total":                                            float64(cm.Failovers.Value()),
		"privstats_cluster_shard_failures_total":                                       float64(cm.ShardFailures.Value()),
		"privstats_cluster_hedged_dials_total":                                         float64(cm.HedgedDials.Value()),
		"privstats_cluster_shard_hedges_total":                                         float64(cm.ShardHedges.Value()),
		"privstats_cluster_shard_hedge_wins_total":                                     float64(cm.ShardHedgeWins.Value()),
		"privstats_cluster_corrupt_frames_total":                                       float64(cm.CorruptFrames.Value()),
		"privstats_cluster_reshards_total":                                             float64(cm.Reshards.Value()),
		"privstats_cluster_shardmap_epoch":                                             float64(cm.Epoch.Value()),
		`privstats_cluster_backend_sessions_total{backend="127.0.0.1:9001"}`:           6,
		`privstats_cluster_backend_errors_total{backend="127.0.0.1:9001"}`:             2,
		`privstats_cluster_backend_busy_total{backend="127.0.0.1:9001"}`:               1,
		`privstats_cluster_backend_sessions_total{backend="weird\"addr\\with spaces"}`: 1,
		`privstats_jobs_total{tenant="acme",state="submitted"}`:                        9,
		`privstats_jobs_total{tenant="acme",state="admitted"}`:                         6,
		`privstats_jobs_total{tenant="acme",state="rejected"}`:                         3,
		`privstats_jobs_total{tenant="acme",state="completed"}`:                        5,
		`privstats_jobs_total{tenant="acme",state="failed"}`:                           1,
		`privstats_jobs_total{tenant="beta",state="submitted"}`:                        2,
		`privstats_jobs_queued{tenant="acme"}`:                                         1,
		`privstats_jobs_queued_peak{tenant="acme"}`:                                    1,
		`privstats_jobs_queued{tenant="beta"}`:                                         0,
	}
	for k, want := range checks {
		got, ok := vals[k]
		if !ok {
			t.Errorf("series %q missing from exposition", k)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}

	// Histogram invariants per phase: _count matches the source histogram,
	// _sum is the nanosecond sum in seconds, buckets are cumulative and
	// monotone, and the +Inf bucket equals _count.
	for name, h := range map[string]*Histogram{
		`privstats_phase_seconds@phase="hello"`:    &sm.HelloNanos,
		`privstats_phase_seconds@phase="absorb"`:   &sm.AbsorbNanos,
		`privstats_phase_seconds@phase="finalize"`: &sm.FinalizeNanos,
		`privstats_phase_seconds@phase="session"`:  &sm.SessionNanos,
		`privstats_cluster_combine_seconds@`:       &cm.CombineNanos,
		`privstats_job_seconds@tenant="acme"`:      &jm.Tenant("acme").JobNanos,
		`privstats_job_seconds@tenant="beta"`:      &jm.Tenant("beta").JobNanos,
	} {
		fam, label, _ := strings.Cut(name, "@")
		_, count, sum := h.Buckets()
		sep := ""
		if label != "" {
			sep = ","
		}
		countKey := fam + "_count"
		sumKey := fam + "_sum"
		infKey := fmt.Sprintf("%s_bucket{%sle=\"+Inf\"}", fam, label+sep)
		if label != "" {
			countKey = fam + "_count{" + label + "}"
			sumKey = fam + "_sum{" + label + "}"
		}
		if got := vals[countKey]; got != float64(count) {
			t.Errorf("%s = %v, want %d", countKey, got, count)
		}
		if got := vals[sumKey]; got != float64(sum)/1e9 {
			t.Errorf("%s = %v, want %v", sumKey, got, float64(sum)/1e9)
		}
		if got := vals[infKey]; got != float64(count) {
			t.Errorf("%s = %v, want %d", infKey, got, count)
		}
		// Cumulative monotonicity across the le series.
		type bucket struct {
			le  string
			val float64
		}
		var series []bucket
		prefix := fam + "_bucket{" + label + sep + "le=\""
		for k, v := range vals {
			if strings.HasPrefix(k, prefix) && !strings.Contains(k, "+Inf") {
				series = append(series, bucket{strings.TrimSuffix(strings.TrimPrefix(k, prefix), "\"}"), v})
			}
		}
		sort.Slice(series, func(i, j int) bool { return parseLe(t, series[i].le) < parseLe(t, series[j].le) })
		last := float64(-1)
		for _, bk := range series {
			if bk.val < last {
				t.Errorf("%s buckets not cumulative at le=%s: %v < %v", fam, bk.le, bk.val, last)
			}
			last = bk.val
		}
		if last > float64(count) {
			t.Errorf("%s last finite bucket %v exceeds count %d", fam, last, count)
		}
	}
}

func parseLe(t *testing.T, s string) float64 {
	t.Helper()
	var f float64
	if _, err := fmt.Sscanf(s, "%g", &f); err != nil {
		t.Fatalf("bad le bound %q: %v", s, err)
	}
	return f
}

// TestPromHandler checks the mounted endpoint: content type and that the body
// parses. The nil-cluster form is what a plain backend mounts.
func TestPromHandler(t *testing.T) {
	sm, cm, _, _ := promFixture()
	for _, tc := range []struct {
		name string
		cm   *ClusterMetrics
	}{{"server-only", nil}, {"with-cluster", cm}} {
		t.Run(tc.name, func(t *testing.T) {
			rr := httptest.NewRecorder()
			PromHandler(sm, tc.cm).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
			if ct := rr.Header().Get("Content-Type"); ct != PromContentType {
				t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
			}
			body, _ := io.ReadAll(rr.Body)
			vals, err := testutil.ParseProm(string(body))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := vals[`privstats_sessions_total{state="started"}`]; !ok {
				t.Error("server families missing")
			}
			_, hasCluster := vals["privstats_cluster_queries_total"]
			if hasCluster != (tc.cm != nil) {
				t.Errorf("cluster families present=%v, want %v", hasCluster, tc.cm != nil)
			}
		})
	}
}

// TestPromHandlerJobs checks the gateway-flavored endpoint: all three metric
// groups present and parseable.
func TestPromHandlerJobs(t *testing.T) {
	sm, cm, jm, _ := promFixture()
	rr := httptest.NewRecorder()
	PromHandlerJobs(sm, cm, jm).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	body, _ := io.ReadAll(rr.Body)
	vals, err := testutil.ParseProm(string(body))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		`privstats_sessions_total{state="started"}`,
		"privstats_cluster_queries_total",
		`privstats_jobs_total{tenant="acme",state="submitted"}`,
	} {
		if _, ok := vals[k]; !ok {
			t.Errorf("series %q missing from exposition", k)
		}
	}
}
