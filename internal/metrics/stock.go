package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Stock-daemon metrics: one bundle of depth gauges and flow counters per
// public-key inventory, so an operator can see at a glance whether the
// refillers are keeping every key's stock above its clients' draw rate — the
// SLO is OnlineFallbacks == 0 on the client side, which holds exactly when
// the depths here never touch zero under load. Keys are labelled by a short
// fingerprint prefix; cardinality is bounded by the daemon's -max-keys cap.

// KeyStockMetrics holds one inventory's gauges and counters.
type KeyStockMetrics struct {
	// DepthZeros/DepthOnes/DepthRandomizers track the current stock levels
	// (Set by the refiller after every pass and by the serving path after
	// every batch). Their Max() is the high-water fill.
	DepthZeros       Gauge
	DepthOnes        Gauge
	DepthRandomizers Gauge

	// GeneratedBits / GeneratedRandomizers count items produced by the
	// background refillers; ServedBits / ServedRandomizers count items
	// shipped to clients. fill rate and draw rate are these counters'
	// derivatives.
	GeneratedBits        Counter
	GeneratedRandomizers Counter
	ServedBits           Counter
	ServedRandomizers    Counter

	// ServedBatches counts batch replies (including short and empty ones —
	// the daemon never blocks a client waiting for stock).
	ServedBatches Counter

	// RefillErrors counts background generation passes that failed.
	RefillErrors Counter

	// FillNanos is the per-refill-pass latency distribution.
	FillNanos Histogram
}

// StockMetrics is the per-key registry. The zero value is ready to use.
type StockMetrics struct {
	mu   sync.Mutex
	keys map[string]*KeyStockMetrics

	// Sessions counts stock-protocol sessions served; HelloRejects counts
	// sessions refused at the hello (bad key, inventory cap).
	Sessions     Counter
	HelloRejects Counter

	// Snapshots counts crash-safe inventory snapshots written (periodic or
	// drain-triggered SaveAll passes); SnapshotErrors the ones that failed.
	Snapshots      Counter
	SnapshotErrors Counter
}

// Key returns (creating on first use) the named key's bundle. name is the
// short fingerprint prefix the daemon labels inventories with.
func (m *StockMetrics) Key(name string) *KeyStockMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.keys == nil {
		m.keys = make(map[string]*KeyStockMetrics)
	}
	k := m.keys[name]
	if k == nil {
		k = &KeyStockMetrics{}
		m.keys[name] = k
	}
	return k
}

// sorted returns the keys in stable name order for rendering.
func (m *StockMetrics) sorted() (names []string, rows []*KeyStockMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names = make([]string, 0, len(m.keys))
	for n := range m.keys {
		names = append(names, n)
	}
	sort.Strings(names)
	rows = make([]*KeyStockMetrics, len(names))
	for i, n := range names {
		rows[i] = m.keys[n]
	}
	return names, rows
}

// KeyStockSnapshot is one key's row in the JSON stock document.
type KeyStockSnapshot struct {
	Key                  string  `json:"key"`
	DepthZeros           int64   `json:"depth_zeros"`
	DepthOnes            int64   `json:"depth_ones"`
	DepthRandomizers     int64   `json:"depth_randomizers"`
	GeneratedBits        int64   `json:"generated_bits"`
	GeneratedRandomizers int64   `json:"generated_randomizers"`
	ServedBits           int64   `json:"served_bits"`
	ServedRandomizers    int64   `json:"served_randomizers"`
	ServedBatches        int64   `json:"served_batches"`
	RefillErrors         int64   `json:"refill_errors"`
	FillP50Milli         float64 `json:"fill_p50_ms"`
	FillP99Milli         float64 `json:"fill_p99_ms"`
}

// StockSnapshot is the JSON document the daemon's /stats serves.
type StockSnapshot struct {
	Sessions       int64              `json:"sessions"`
	HelloRejects   int64              `json:"hello_rejects"`
	Snapshots      int64              `json:"snapshots"`
	SnapshotErrors int64              `json:"snapshot_errors"`
	Keys           []KeyStockSnapshot `json:"keys"`
}

// Snapshot returns every key's counters in name order.
func (m *StockMetrics) Snapshot() StockSnapshot {
	names, rows := m.sorted()
	s := StockSnapshot{
		Sessions:       m.Sessions.Value(),
		HelloRejects:   m.HelloRejects.Value(),
		Snapshots:      m.Snapshots.Value(),
		SnapshotErrors: m.SnapshotErrors.Value(),
		Keys:           make([]KeyStockSnapshot, len(names)),
	}
	for i, k := range rows {
		h := k.FillNanos.Snapshot()
		s.Keys[i] = KeyStockSnapshot{
			Key:                  names[i],
			DepthZeros:           k.DepthZeros.Value(),
			DepthOnes:            k.DepthOnes.Value(),
			DepthRandomizers:     k.DepthRandomizers.Value(),
			GeneratedBits:        k.GeneratedBits.Value(),
			GeneratedRandomizers: k.GeneratedRandomizers.Value(),
			ServedBits:           k.ServedBits.Value(),
			ServedRandomizers:    k.ServedRandomizers.Value(),
			ServedBatches:        k.ServedBatches.Value(),
			RefillErrors:         k.RefillErrors.Value(),
			FillP50Milli:         float64(h.P50) / 1e6,
			FillP99Milli:         float64(h.P99) / 1e6,
		}
	}
	return s
}

// Handler serves the per-key stock counters as JSON (the daemon's /stats
// document).
func (m *StockMetrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		doc := m.Snapshot()
		if doc.Keys == nil {
			doc.Keys = []KeyStockSnapshot{}
		}
		_ = enc.Encode(doc)
	})
}

// WritePromStock renders the stock-daemon families in exposition format,
// appended after WriteProm on the daemon's /metrics.
func WritePromStock(w io.Writer, m *StockMetrics) error {
	var b bytes.Buffer
	names, rows := m.sorted()

	promHeader(&b, "privstats_stock_sessions_total", "counter", "Stock protocol sessions served.")
	fmt.Fprintf(&b, "privstats_stock_sessions_total %d\n", m.Sessions.Value())
	promHeader(&b, "privstats_stock_hello_rejects_total", "counter", "Stock sessions refused at the hello (bad key, inventory cap).")
	fmt.Fprintf(&b, "privstats_stock_hello_rejects_total %d\n", m.HelloRejects.Value())
	promHeader(&b, "privstats_stock_snapshots_total", "counter", "Crash-safe inventory snapshots written.")
	fmt.Fprintf(&b, "privstats_stock_snapshots_total %d\n", m.Snapshots.Value())
	promHeader(&b, "privstats_stock_snapshot_errors_total", "counter", "Inventory snapshot passes that failed.")
	fmt.Fprintf(&b, "privstats_stock_snapshot_errors_total %d\n", m.SnapshotErrors.Value())

	promHeader(&b, "privstats_stock_depth", "gauge", "Current inventory depth per key and kind.")
	for i, n := range names {
		k := rows[i]
		for _, d := range []struct {
			kind string
			v    int64
		}{
			{"zeros", k.DepthZeros.Value()},
			{"ones", k.DepthOnes.Value()},
			{"randomizers", k.DepthRandomizers.Value()},
		} {
			fmt.Fprintf(&b, "privstats_stock_depth{key=\"%s\",kind=\"%s\"} %d\n", promEscape(n), d.kind, d.v)
		}
	}

	promHeader(&b, "privstats_stock_generated_total", "counter", "Items produced by the background refillers (fill rate).")
	for i, n := range names {
		k := rows[i]
		fmt.Fprintf(&b, "privstats_stock_generated_total{key=\"%s\",kind=\"bits\"} %d\n", promEscape(n), k.GeneratedBits.Value())
		fmt.Fprintf(&b, "privstats_stock_generated_total{key=\"%s\",kind=\"randomizers\"} %d\n", promEscape(n), k.GeneratedRandomizers.Value())
	}
	promHeader(&b, "privstats_stock_served_total", "counter", "Items shipped to clients (draw rate).")
	for i, n := range names {
		k := rows[i]
		fmt.Fprintf(&b, "privstats_stock_served_total{key=\"%s\",kind=\"bits\"} %d\n", promEscape(n), k.ServedBits.Value())
		fmt.Fprintf(&b, "privstats_stock_served_total{key=\"%s\",kind=\"randomizers\"} %d\n", promEscape(n), k.ServedRandomizers.Value())
	}
	promHeader(&b, "privstats_stock_served_batches_total", "counter", "Batch replies per key, including short and empty ones.")
	for i, n := range names {
		fmt.Fprintf(&b, "privstats_stock_served_batches_total{key=\"%s\"} %d\n", promEscape(n), rows[i].ServedBatches.Value())
	}
	promHeader(&b, "privstats_stock_refill_errors_total", "counter", "Background generation passes that failed.")
	for i, n := range names {
		fmt.Fprintf(&b, "privstats_stock_refill_errors_total{key=\"%s\"} %d\n", promEscape(n), rows[i].RefillErrors.Value())
	}

	promHeader(&b, "privstats_stock_fill_seconds", "histogram", "Refill-pass latency per key.")
	for i, n := range names {
		writePromHist(&b, "privstats_stock_fill_seconds", `key="`+promEscape(n)+`",`, &rows[i].FillNanos)
	}

	_, err := w.Write(b.Bytes())
	return err
}

// PromHandlerStock serves /metrics for a stock daemon: the server runtime
// families (when sm is non-nil) followed by the stock families.
func PromHandlerStock(sm *ServerMetrics, stm *StockMetrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		var b bytes.Buffer
		if sm != nil {
			_ = WriteProm(&b, sm, time.Now())
		}
		if stm != nil {
			_ = WritePromStock(&b, stm)
		}
		_, _ = w.Write(b.Bytes())
	})
}
