package metrics

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (format version 0.0.4), hand-rendered from the
// same atomic counters the JSON /stats document reads — the ROADMAP's
// no-external-dependency rule covers the metrics pipeline too. The metric
// names, types, and HELP strings below are a compatibility surface: dashboards
// and alerts key on them, so the golden-file test pins the exact rendering and
// any drift fails CI.

// PromContentType is the Content-Type of the 0.0.4 text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Buckets returns the raw power-of-two buckets with the total count and sum,
// for renderers that need the distribution rather than the interpolated
// quantile summary. Bucket 0 holds exactly the zero observations; bucket i>0
// holds v in [2^(i-1), 2^i).
func (h *Histogram) Buckets() (buckets [histBuckets]int64, count, sum int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buckets, h.count, h.sum
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promFloat renders a float the way Prometheus clients do: shortest exact
// representation, no exponent padding.
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// writePromHist renders one histogram series under name with the given label
// prefix (either empty or `k="v",`). The native power-of-two nanosecond
// buckets become cumulative le bounds in seconds: bucket i (values < 2^i ns)
// maps to le = 2^i / 1e9. Only buckets up to the highest populated one are
// emitted, then +Inf — empty histograms render as a bare +Inf/count/sum.
func writePromHist(b *bytes.Buffer, name, labels string, h *Histogram) {
	buckets, count, sum := h.Buckets()
	hi := -1
	for i, n := range buckets {
		if n > 0 {
			hi = i
		}
	}
	var cum int64
	for i := 0; i <= hi; i++ {
		cum += buckets[i]
		le := math.Exp2(float64(i)) / 1e9
		fmt.Fprintf(b, "%s_bucket{%sle=\"%s\"} %d\n", name, labels, promFloat(le), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, count)
	trim := strings.TrimSuffix(labels, ",")
	if trim != "" {
		trim = "{" + trim + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, trim, promFloat(float64(sum)/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, trim, count)
}

func promHeader(b *bytes.Buffer, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// WriteProm renders the server runtime's metrics in exposition format. The
// values are read from the same atomics as Snapshot, so /metrics and /stats
// agree up to scrape timing.
func WriteProm(w io.Writer, m *ServerMetrics, now time.Time) error {
	var b bytes.Buffer

	promHeader(&b, "privstats_uptime_seconds", "gauge", "Seconds since the server runtime started.")
	var up float64
	if since := m.since.Load(); since != 0 {
		up = now.Sub(time.Unix(0, since)).Seconds()
	}
	fmt.Fprintf(&b, "privstats_uptime_seconds %s\n", promFloat(up))

	promHeader(&b, "privstats_sessions_total", "counter", "Sessions by terminal state; started = completed + failed + active.")
	fmt.Fprintf(&b, "privstats_sessions_total{state=\"started\"} %d\n", m.SessionsStarted.Value())
	fmt.Fprintf(&b, "privstats_sessions_total{state=\"completed\"} %d\n", m.SessionsCompleted.Value())
	fmt.Fprintf(&b, "privstats_sessions_total{state=\"failed\"} %d\n", m.SessionsFailed.Value())
	fmt.Fprintf(&b, "privstats_sessions_total{state=\"rejected\"} %d\n", m.SessionsRejected.Value())

	promHeader(&b, "privstats_active_sessions", "gauge", "Sessions currently in flight.")
	fmt.Fprintf(&b, "privstats_active_sessions %d\n", m.ActiveSessions.Value())
	promHeader(&b, "privstats_active_sessions_peak", "gauge", "High-water mark of concurrent sessions.")
	fmt.Fprintf(&b, "privstats_active_sessions_peak %d\n", m.ActiveSessions.Max())

	promHeader(&b, "privstats_transport_bytes_total", "counter", "Wire bytes over finished sessions, by direction.")
	fmt.Fprintf(&b, "privstats_transport_bytes_total{direction=\"in\"} %d\n", m.BytesIn.Value())
	fmt.Fprintf(&b, "privstats_transport_bytes_total{direction=\"out\"} %d\n", m.BytesOut.Value())

	promHeader(&b, "privstats_accept_errors_total", "counter", "Transient accept failures survived via backoff.")
	fmt.Fprintf(&b, "privstats_accept_errors_total %d\n", m.AcceptErrors.Value())
	promHeader(&b, "privstats_session_panics_total", "counter", "Sessions that panicked (isolated, counted failed).")
	fmt.Fprintf(&b, "privstats_session_panics_total %d\n", m.SessionPanics.Value())

	promHeader(&b, "privstats_phase_seconds", "histogram", "Server-side compute time per protocol phase.")
	for _, p := range []struct {
		name string
		h    *Histogram
	}{
		{"hello", &m.HelloNanos},
		{"absorb", &m.AbsorbNanos},
		{"finalize", &m.FinalizeNanos},
		{"session", &m.SessionNanos},
	} {
		writePromHist(&b, "privstats_phase_seconds", `phase="`+p.name+`",`, p.h)
	}

	_, err := w.Write(b.Bytes())
	return err
}

// WritePromCluster renders the cluster fan-out metrics in exposition format,
// appended after WriteProm on a cluster daemon's /metrics.
func WritePromCluster(w io.Writer, m *ClusterMetrics) error {
	var b bytes.Buffer

	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"privstats_cluster_queries_total", "Logical fan-out queries.", m.Queries.Value()},
		{"privstats_cluster_retries_total", "Extra attempts on the same backend after a failure.", m.Retries.Value()},
		{"privstats_cluster_failovers_total", "Switches to a replica backend of the same shard.", m.Failovers.Value()},
		{"privstats_cluster_shard_failures_total", "Shards that exhausted every candidate backend.", m.ShardFailures.Value()},
		{"privstats_cluster_hedged_dials_total", "Secondary dials launched past the dial hedge delay.", m.HedgedDials.Value()},
		{"privstats_cluster_shard_hedges_total", "Hedged shard re-dispatches against stragglers.", m.ShardHedges.Value()},
		{"privstats_cluster_shard_hedge_wins_total", "Shard hedges that delivered the partial sum first.", m.ShardHedgeWins.Value()},
		{"privstats_cluster_corrupt_frames_total", "Frame CRC failures observed or reported by peers.", m.CorruptFrames.Value()},
		{"privstats_cluster_reshards_total", "Completed shard-map cut-overs.", m.Reshards.Value()},
	} {
		promHeader(&b, c.name, "counter", c.help)
		fmt.Fprintf(&b, "%s %d\n", c.name, c.v)
	}

	promHeader(&b, "privstats_cluster_shardmap_epoch", "gauge", "Shard-map epoch most recently served.")
	fmt.Fprintf(&b, "privstats_cluster_shardmap_epoch %d\n", m.Epoch.Value())

	promHeader(&b, "privstats_cluster_combine_seconds", "histogram", "Homomorphic combine + rerandomize time per query.")
	writePromHist(&b, "privstats_cluster_combine_seconds", "", &m.CombineNanos)

	m.mu.Lock()
	addrs := make([]string, 0, len(m.backends))
	for a := range m.backends {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	buckets := make([]*BackendMetrics, len(addrs))
	for i, a := range addrs {
		buckets[i] = m.backends[a]
	}
	m.mu.Unlock()

	if len(addrs) > 0 {
		promHeader(&b, "privstats_cluster_backend_sessions_total", "counter", "Shard sessions attempted per backend.")
		for i, a := range addrs {
			fmt.Fprintf(&b, "privstats_cluster_backend_sessions_total{backend=\"%s\"} %d\n", promEscape(a), buckets[i].Sessions.Value())
		}
		promHeader(&b, "privstats_cluster_backend_errors_total", "counter", "Failed shard attempts per backend.")
		for i, a := range addrs {
			fmt.Fprintf(&b, "privstats_cluster_backend_errors_total{backend=\"%s\"} %d\n", promEscape(a), buckets[i].Errors.Value())
		}
		promHeader(&b, "privstats_cluster_backend_busy_total", "counter", "Busy (admission-control) rejections per backend.")
		for i, a := range addrs {
			fmt.Fprintf(&b, "privstats_cluster_backend_busy_total{backend=\"%s\"} %d\n", promEscape(a), buckets[i].Busy.Value())
		}
		promHeader(&b, "privstats_cluster_backend_fanout_seconds", "histogram", "Complete shard session latency per backend, successes only.")
		for i, a := range addrs {
			writePromHist(&b, "privstats_cluster_backend_fanout_seconds", `backend="`+promEscape(a)+`",`, &buckets[i].FanoutNanos)
		}
	}

	_, err := w.Write(b.Bytes())
	return err
}

// PromHandler serves /metrics: the server families, then — when cm is
// non-nil — the cluster families. Mounted next to the JSON /stats handler.
func PromHandler(sm *ServerMetrics, cm *ClusterMetrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		var b bytes.Buffer
		_ = WriteProm(&b, sm, time.Now())
		if cm != nil {
			_ = WritePromCluster(&b, cm)
		}
		_, _ = w.Write(b.Bytes())
	})
}
