// Package metrics provides the lightweight observability substrate for the
// server runtime: lock-free counters and gauges, streaming histograms with
// exponential buckets, and a JSON snapshot the -stats-addr endpoint serves.
//
// The package deliberately has no external dependencies — the ROADMAP's
// production target is a pure-stdlib system — and every primitive is safe
// for concurrent use by many session goroutines. Histograms trade exactness
// for O(1) memory: observations land in power-of-two buckets, and quantiles
// are estimated by linear interpolation inside the winning bucket, which is
// plenty for a latency summary (the error is bounded by one bucket width).
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways. It also
// tracks the high-water mark, which the admission-control tests use to
// assert the concurrency cap was honored.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Inc increases the gauge by one and updates the high-water mark.
func (g *Gauge) Inc() {
	now := g.v.Add(1)
	for {
		m := g.max.Load()
		if now <= m || g.max.CompareAndSwap(m, now) {
			return
		}
	}
}

// Dec decreases the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the gauge's level (e.g. a sampled stock depth) and updates
// the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the highest level the gauge ever reached.
func (g *Gauge) Max() int64 { return g.max.Load() }

// histBuckets is the number of power-of-two buckets: bucket i holds
// observations v with bitlen(v) == i, i.e. v in [2^(i-1), 2^i). 64 buckets
// cover the full non-negative int64 range.
const histBuckets = 64

// Histogram is a streaming histogram over non-negative int64 observations
// (typically nanoseconds or bytes). It keeps count, sum, min, max, and
// power-of-two buckets; quantiles are interpolated. The zero value is ready
// to use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]int64
}

// Observe records one observation. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
	h.mu.Unlock()
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Snapshot returns the current summary. With zero observations every
// derived field (mean, quantiles, min, max) is exactly 0 — never NaN or
// ±Inf, which encoding/json refuses to marshal and which would therefore
// break the whole /stats document for any consumer the moment one
// histogram is still empty.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = finiteOrZero(float64(h.sum) / float64(h.count))
		s.P50 = h.quantileLocked(0.50)
		s.P95 = h.quantileLocked(0.95)
		s.P99 = h.quantileLocked(0.99)
	}
	return s
}

// finiteOrZero clamps non-finite float results to 0 so snapshots always
// JSON-encode.
func finiteOrZero(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// quantileLocked estimates the q-quantile by walking the buckets and
// interpolating linearly within the bucket where the target rank lands.
// Callers must hold h.mu.
func (h *Histogram) quantileLocked(q float64) int64 {
	rank := q * float64(h.count)
	var seen float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			// Bucket i spans [lo, hi): bucket 0 is exactly {0}.
			var lo, hi float64
			if i == 0 {
				return clampBucket(0, h.min, h.max)
			}
			lo = math.Exp2(float64(i - 1))
			hi = math.Exp2(float64(i))
			frac := (rank - seen) / float64(n)
			return clampBucket(int64(lo+(hi-lo)*frac), h.min, h.max)
		}
		seen += float64(n)
	}
	return h.max
}

// clampBucket keeps interpolated quantiles inside the observed range so a
// single observation reports p50 == p99 == the value itself.
func clampBucket(v, min, max int64) int64 {
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}

// ServerMetrics aggregates everything the server runtime records. All fields
// are safe for concurrent use; the server feeds them and the stats endpoint,
// periodic log summary, and tests read them.
type ServerMetrics struct {
	// Session lifecycle counters. The reconciliation invariant — checked by
	// tests and worth alerting on in production — is
	// Started == Completed + Failed + Active. Rejected sessions never start.
	SessionsStarted   Counter
	SessionsCompleted Counter
	SessionsFailed    Counter
	SessionsRejected  Counter
	ActiveSessions    Gauge

	// Transport volume, summed over finished sessions from the wire meter.
	BytesIn  Counter
	BytesOut Counter

	// Runtime health.
	AcceptErrors  Counter // transient accept failures survived via backoff
	SessionPanics Counter // sessions that panicked (isolated, counted failed)

	// Per-phase server-side compute durations (nanoseconds) and the
	// whole-session wall time.
	HelloNanos    Histogram
	AbsorbNanos   Histogram
	FinalizeNanos Histogram
	SessionNanos  Histogram

	start sync.Once
	since atomic.Int64 // unix nanos of first StartClock call
}

// StartClock records the server start time for the uptime field; the first
// call wins.
func (m *ServerMetrics) StartClock(now time.Time) {
	m.start.Do(func() { m.since.Store(now.UnixNano()) })
}

// Snapshot is the JSON document the /stats endpoint serves. The schema is
// documented in DESIGN.md §8.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Sessions      struct {
		Started   int64 `json:"started"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Rejected  int64 `json:"rejected"`
		Active    int64 `json:"active"`
		MaxActive int64 `json:"max_active"`
	} `json:"sessions"`
	Bytes struct {
		In  int64 `json:"in"`
		Out int64 `json:"out"`
	} `json:"bytes"`
	AcceptErrors  int64                        `json:"accept_errors"`
	SessionPanics int64                        `json:"session_panics"`
	PhaseNanos    map[string]HistogramSnapshot `json:"phase_nanos"`
}

// Snapshot captures the current state of every metric.
func (m *ServerMetrics) Snapshot(now time.Time) Snapshot {
	var s Snapshot
	if since := m.since.Load(); since != 0 {
		s.UptimeSeconds = now.Sub(time.Unix(0, since)).Seconds()
	}
	s.Sessions.Started = m.SessionsStarted.Value()
	s.Sessions.Completed = m.SessionsCompleted.Value()
	s.Sessions.Failed = m.SessionsFailed.Value()
	s.Sessions.Rejected = m.SessionsRejected.Value()
	s.Sessions.Active = m.ActiveSessions.Value()
	s.Sessions.MaxActive = m.ActiveSessions.Max()
	s.Bytes.In = m.BytesIn.Value()
	s.Bytes.Out = m.BytesOut.Value()
	s.AcceptErrors = m.AcceptErrors.Value()
	s.SessionPanics = m.SessionPanics.Value()
	s.PhaseNanos = map[string]HistogramSnapshot{
		"hello":    m.HelloNanos.Snapshot(),
		"absorb":   m.AbsorbNanos.Snapshot(),
		"finalize": m.FinalizeNanos.Snapshot(),
		"session":  m.SessionNanos.Snapshot(),
	}
	return s
}

// Summary returns a one-line human summary for the periodic log.
func (m *ServerMetrics) Summary() string {
	sess := m.SessionNanos.Snapshot()
	return fmt.Sprintf(
		"sessions: %d started, %d completed, %d failed, %d rejected, %d active (peak %d); bytes: %d in, %d out; session p50=%s p99=%s",
		m.SessionsStarted.Value(), m.SessionsCompleted.Value(),
		m.SessionsFailed.Value(), m.SessionsRejected.Value(),
		m.ActiveSessions.Value(), m.ActiveSessions.Max(),
		m.BytesIn.Value(), m.BytesOut.Value(),
		time.Duration(sess.P50), time.Duration(sess.P99),
	)
}

// Handler returns an http.Handler serving the JSON snapshot. Mounted by
// cmd/sumserver at /stats when -stats-addr is set.
func (m *ServerMetrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m.Snapshot(time.Now())); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
