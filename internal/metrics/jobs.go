package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Job-gateway metrics: one bundle of counters per tenant, so quota and
// fair-share policy decisions stay attributable. Tenant names are operator
// configuration (never analyst-supplied), so the label cardinality is
// bounded by the tenant config file.

// TenantJobs holds one tenant's job counters.
type TenantJobs struct {
	// Submitted counts every job the tenant offered; Admitted the ones that
	// passed quota + validation; Rejected the quota/validation refusals.
	// Admitted jobs end as exactly one of Completed or Failed.
	Submitted Counter
	Admitted  Counter
	Rejected  Counter
	Completed Counter
	Failed    Counter
	// Queued is the number of admitted jobs waiting for or holding an
	// execution slot.
	Queued Gauge
	// JobNanos is the admitted-to-finished latency distribution.
	JobNanos Histogram
}

// JobMetrics is the per-tenant registry. The zero value is ready to use.
type JobMetrics struct {
	// Crash-recovery counters, gateway-wide (startup is before any tenant
	// attribution exists): jobs rebuilt from the store journal, journal
	// bytes replayed, and torn or corrupt journal tails dropped.
	Recovered     Counter
	ReplayedBytes Counter
	TornTail      Counter

	mu      sync.Mutex
	tenants map[string]*TenantJobs
}

// Tenant returns (creating on first use) the named tenant's counters.
func (m *JobMetrics) Tenant(name string) *TenantJobs {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tenants == nil {
		m.tenants = make(map[string]*TenantJobs)
	}
	t := m.tenants[name]
	if t == nil {
		t = &TenantJobs{}
		m.tenants[name] = t
	}
	return t
}

// sorted returns the tenants in stable name order for rendering.
func (m *JobMetrics) sorted() (names []string, rows []*TenantJobs) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names = make([]string, 0, len(m.tenants))
	for n := range m.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	rows = make([]*TenantJobs, len(names))
	for i, n := range names {
		rows[i] = m.tenants[n]
	}
	return names, rows
}

// TenantSnapshot is one tenant's row in the JSON jobs document.
type TenantSnapshot struct {
	Tenant      string  `json:"tenant"`
	Submitted   int64   `json:"submitted"`
	Admitted    int64   `json:"admitted"`
	Rejected    int64   `json:"rejected"`
	Completed   int64   `json:"completed"`
	Failed      int64   `json:"failed"`
	Queued      int64   `json:"queued"`
	QueuedPeak  int64   `json:"queued_peak"`
	JobP50Milli float64 `json:"job_p50_ms"`
	JobP99Milli float64 `json:"job_p99_ms"`
}

// Snapshot returns every tenant's counters in name order.
func (m *JobMetrics) Snapshot() []TenantSnapshot {
	names, rows := m.sorted()
	out := make([]TenantSnapshot, len(names))
	for i, t := range rows {
		h := t.JobNanos.Snapshot()
		out[i] = TenantSnapshot{
			Tenant:      names[i],
			Submitted:   t.Submitted.Value(),
			Admitted:    t.Admitted.Value(),
			Rejected:    t.Rejected.Value(),
			Completed:   t.Completed.Value(),
			Failed:      t.Failed.Value(),
			Queued:      t.Queued.Value(),
			QueuedPeak:  t.Queued.Max(),
			JobP50Milli: float64(h.P50) / 1e6,
			JobP99Milli: float64(h.P99) / 1e6,
		}
	}
	return out
}

// Handler serves the per-tenant job counters as JSON (the gateway's
// /stats/jobs document).
func (m *JobMetrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		doc := struct {
			Tenants []TenantSnapshot `json:"tenants"`
		}{Tenants: m.Snapshot()}
		if doc.Tenants == nil {
			doc.Tenants = []TenantSnapshot{}
		}
		_ = enc.Encode(doc)
	})
}

// WritePromJobs renders the per-tenant job families in exposition format,
// appended after WriteProm on the gateway's /metrics.
func WritePromJobs(w io.Writer, m *JobMetrics) error {
	var b bytes.Buffer
	names, rows := m.sorted()

	promHeader(&b, "privstats_jobs_total", "counter", "Jobs per tenant by outcome; submitted = admitted + rejected.")
	for i, n := range names {
		t := rows[i]
		for _, s := range []struct {
			state string
			v     int64
		}{
			{"submitted", t.Submitted.Value()},
			{"admitted", t.Admitted.Value()},
			{"rejected", t.Rejected.Value()},
			{"completed", t.Completed.Value()},
			{"failed", t.Failed.Value()},
		} {
			fmt.Fprintf(&b, "privstats_jobs_total{tenant=\"%s\",state=\"%s\"} %d\n", promEscape(n), s.state, s.v)
		}
	}

	promHeader(&b, "privstats_jobs_queued", "gauge", "Admitted jobs waiting for or holding an execution slot.")
	for i, n := range names {
		fmt.Fprintf(&b, "privstats_jobs_queued{tenant=\"%s\"} %d\n", promEscape(n), rows[i].Queued.Value())
	}
	promHeader(&b, "privstats_jobs_queued_peak", "gauge", "High-water mark of queued jobs per tenant.")
	for i, n := range names {
		fmt.Fprintf(&b, "privstats_jobs_queued_peak{tenant=\"%s\"} %d\n", promEscape(n), rows[i].Queued.Max())
	}

	promHeader(&b, "privstats_job_seconds", "histogram", "Admitted-to-finished job latency per tenant.")
	for i, n := range names {
		writePromHist(&b, "privstats_job_seconds", `tenant="`+promEscape(n)+`",`, &rows[i].JobNanos)
	}

	promHeader(&b, "privstats_jobs_recovered_total", "counter", "Jobs rebuilt from the store journal at startup.")
	fmt.Fprintf(&b, "privstats_jobs_recovered_total %d\n", m.Recovered.Value())
	promHeader(&b, "privstats_jobs_replayed_bytes", "counter", "Store journal bytes replayed at startup.")
	fmt.Fprintf(&b, "privstats_jobs_replayed_bytes %d\n", m.ReplayedBytes.Value())
	promHeader(&b, "privstats_jobs_torn_tail_total", "counter", "Torn or corrupt journal tails dropped during replay.")
	fmt.Fprintf(&b, "privstats_jobs_torn_tail_total %d\n", m.TornTail.Value())

	_, err := w.Write(b.Bytes())
	return err
}

// PromHandlerJobs serves /metrics for a job gateway: the server families
// (when sm is non-nil), then the cluster families (when cm is non-nil), then
// the per-tenant job families (when jm is non-nil). PromHandler stays as-is
// for daemons without a job layer.
func PromHandlerJobs(sm *ServerMetrics, cm *ClusterMetrics, jm *JobMetrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		var b bytes.Buffer
		if sm != nil {
			_ = WriteProm(&b, sm, time.Now())
		}
		if cm != nil {
			_ = WritePromCluster(&b, cm)
		}
		if jm != nil {
			_ = WritePromJobs(&b, jm)
		}
		_, _ = w.Write(b.Bytes())
	})
}
