package metrics

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Errorf("value = %d, want 1", got)
	}
	if got := g.Max(); got != 3 {
		t.Errorf("max = %d, want 3", got)
	}
}

func TestGaugeConcurrentMax(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Inc()
			g.Dec()
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("value = %d, want 0", got)
	}
	if max := g.Max(); max < 1 || max > 16 {
		t.Errorf("max = %d, want in [1,16]", max)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(1500)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 1500 || s.Min != 1500 || s.Max != 1500 {
		t.Errorf("snapshot = %+v", s)
	}
	// With one observation, every quantile must clamp to the value.
	if s.P50 != 1500 || s.P95 != 1500 || s.P99 != 1500 {
		t.Errorf("quantiles = %d/%d/%d, want 1500", s.P50, s.P95, s.P99)
	}
}

func TestHistogramQuantilesBounded(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	// Power-of-two buckets: the estimate may be off by up to one bucket
	// width, but must stay ordered and inside the observed range.
	if s.P50 < s.Min || s.P99 > s.Max || s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("quantiles out of order: min=%d p50=%d p95=%d p99=%d max=%d",
			s.Min, s.P50, s.P95, s.P99, s.Max)
	}
	// p50 of uniform 1..1000 is ~500; bucket [512,1024) or [256,512)
	// neighbors are acceptable.
	if s.P50 < 250 || s.P50 > 1000 {
		t.Errorf("p50 = %d, want near 500", s.P50)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 0 || s.Count != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestServerMetricsSnapshotReconciles(t *testing.T) {
	var m ServerMetrics
	m.StartClock(time.Now().Add(-2 * time.Second))
	for i := 0; i < 5; i++ {
		m.SessionsStarted.Inc()
	}
	m.SessionsCompleted.Add(3)
	m.SessionsFailed.Add(1)
	m.ActiveSessions.Inc()
	m.SessionsRejected.Add(7)
	m.BytesIn.Add(100)
	m.BytesOut.Add(200)
	m.SessionNanos.ObserveDuration(3 * time.Millisecond)

	s := m.Snapshot(time.Now())
	if s.Sessions.Started != s.Sessions.Completed+s.Sessions.Failed+s.Sessions.Active {
		t.Errorf("counters do not reconcile: %+v", s.Sessions)
	}
	if s.Sessions.Rejected != 7 {
		t.Errorf("rejected = %d", s.Sessions.Rejected)
	}
	if s.UptimeSeconds < 1.5 {
		t.Errorf("uptime = %f, want >= 1.5s", s.UptimeSeconds)
	}
	if s.PhaseNanos["session"].Count != 1 {
		t.Errorf("session histogram count = %d", s.PhaseNanos["session"].Count)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	var m ServerMetrics
	m.SessionsStarted.Inc()
	m.SessionsCompleted.Inc()

	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if s.Sessions.Started != 1 || s.Sessions.Completed != 1 {
		t.Errorf("round-tripped snapshot = %+v", s.Sessions)
	}
}

func TestSummaryMentionsCounts(t *testing.T) {
	var m ServerMetrics
	m.SessionsStarted.Add(4)
	got := m.Summary()
	if got == "" {
		t.Fatal("empty summary")
	}
}

// Regression: a histogram with zero observations must snapshot to all-zero
// derived fields and survive a JSON round trip — NaN or Inf anywhere would
// make encoding/json error out and take the whole /stats document with it.
func TestHistogramZeroCountJSON(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 ||
		s.Mean != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Fatalf("zero-count snapshot has non-zero fields: %+v", s)
	}
	if s.Mean != s.Mean || s.Mean > 1e300 || s.Mean < -1e300 {
		t.Fatalf("zero-count mean is not a plain finite zero: %v", s.Mean)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("zero-count snapshot does not marshal: %v", err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("zero-count snapshot does not round trip: %v", err)
	}
	if back != s {
		t.Fatalf("round trip changed snapshot: %+v != %+v", back, s)
	}
}

func TestFiniteOrZero(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := finiteOrZero(bad); got != 0 {
			t.Errorf("finiteOrZero(%v) = %v, want 0", bad, got)
		}
	}
	if got := finiteOrZero(3.5); got != 3.5 {
		t.Errorf("finiteOrZero(3.5) = %v", got)
	}
}

func TestClusterMetricsSnapshot(t *testing.T) {
	var cm ClusterMetrics
	cm.Queries.Inc()
	cm.Retries.Add(2)
	cm.Failovers.Inc()
	b := cm.Backend("127.0.0.1:7001")
	b.Sessions.Inc()
	b.FanoutNanos.Observe(1_000_000)
	if cm.Backend("127.0.0.1:7001") != b {
		t.Fatal("Backend not idempotent")
	}

	s := cm.Snapshot()
	if s.Queries != 1 || s.Retries != 2 || s.Failovers != 1 {
		t.Fatalf("counter snapshot wrong: %+v", s)
	}
	bs, ok := s.Backends["127.0.0.1:7001"]
	if !ok || bs.Sessions != 1 || bs.FanoutNanos.Count != 1 {
		t.Fatalf("backend snapshot wrong: %+v", s.Backends)
	}
	// The whole cluster document must JSON-encode even with empty
	// histograms elsewhere.
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("cluster snapshot does not marshal: %v", err)
	}
}

func TestClusterStatsHandler(t *testing.T) {
	var sm ServerMetrics
	var cm ClusterMetrics
	cm.Failovers.Inc()
	rec := httptest.NewRecorder()
	ClusterStatsHandler(&sm, &cm).ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Server  Snapshot        `json:"server"`
		Cluster ClusterSnapshot `json:"cluster"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("stats not valid JSON: %v", err)
	}
	if doc.Cluster.Failovers != 1 {
		t.Fatalf("failovers not visible in /stats: %+v", doc.Cluster)
	}
}
