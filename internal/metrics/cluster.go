package metrics

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Cluster-layer metrics: the aggregator fans each client session out to
// sharded backends through the retrying cluster client, and these are the
// counters that make that path operable — how often backends failed, how
// often a retry or a failover to a replica saved the query, and what each
// backend's shard sessions cost end to end.

// BackendMetrics records one backend's view from the aggregator side.
type BackendMetrics struct {
	// Sessions counts shard sessions attempted against this backend
	// (including retries and replayed failovers).
	Sessions Counter
	// Errors counts attempts that failed for any reason: dial failure,
	// busy rejection, timeout, protocol error.
	Errors Counter
	// Busy counts the subset of Errors that were admission-control busy
	// rejections — load shedding, not breakage.
	Busy Counter
	// FanoutNanos is the latency of complete shard sessions against this
	// backend (dial through partial-sum receipt), successful attempts only.
	FanoutNanos Histogram
}

// ClusterMetrics aggregates the fan-out path. The zero value is ready to
// use; all methods are safe for concurrent use.
type ClusterMetrics struct {
	// Queries counts logical fan-out queries (one per aggregator client
	// session, or one per cluster-client call).
	Queries Counter
	// Retries counts extra attempts on the same backend after a failure.
	Retries Counter
	// Failovers counts switches to a different backend of the same shard
	// group after the current one was given up on.
	Failovers Counter
	// ShardFailures counts shards that exhausted every candidate backend —
	// each one failed a client query.
	ShardFailures Counter
	// HedgedDials counts secondary dials launched because the primary dial
	// was still pending after the hedge delay.
	HedgedDials Counter
	// ShardHedges counts hedged shard re-dispatches launched by the
	// aggregator after a straggling backend crossed its hedge threshold.
	ShardHedges Counter
	// ShardHedgeWins counts the subset of ShardHedges where the hedge (not
	// the original) delivered the partial sum.
	ShardHedgeWins Counter
	// CorruptFrames counts frame-level CRC failures observed (locally
	// detected or reported by the peer as a corrupt-frame error code).
	CorruptFrames Counter
	// Reshards counts shard-map advances (completed cut-overs) since start.
	Reshards Counter
	// Epoch is the shard-map epoch the aggregator most recently served
	// under — the live-resharding observability signal (queries in flight
	// during a cut-over finish under the epoch they pinned).
	Epoch Gauge
	// CombineNanos is the aggregator's homomorphic combine + rerandomize
	// phase.
	CombineNanos Histogram

	mu       sync.Mutex
	backends map[string]*BackendMetrics
}

// Backend returns (allocating on first use) the metrics bucket for addr.
func (m *ClusterMetrics) Backend(addr string) *BackendMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.backends == nil {
		m.backends = make(map[string]*BackendMetrics)
	}
	b := m.backends[addr]
	if b == nil {
		b = &BackendMetrics{}
		m.backends[addr] = b
	}
	return b
}

// BackendSnapshot is the JSON form of one backend's counters.
type BackendSnapshot struct {
	Sessions    int64             `json:"sessions"`
	Errors      int64             `json:"errors"`
	Busy        int64             `json:"busy"`
	FanoutNanos HistogramSnapshot `json:"fanout_nanos"`
}

// ClusterSnapshot is the JSON form of the cluster metrics.
type ClusterSnapshot struct {
	Queries        int64                      `json:"queries"`
	Retries        int64                      `json:"retries"`
	Failovers      int64                      `json:"failovers"`
	ShardFailures  int64                      `json:"shard_failures"`
	HedgedDials    int64                      `json:"hedged_dials"`
	ShardHedges    int64                      `json:"shard_hedges"`
	ShardHedgeWins int64                      `json:"shard_hedge_wins"`
	CorruptFrames  int64                      `json:"corrupt_frames"`
	Reshards       int64                      `json:"reshards"`
	Epoch          int64                      `json:"epoch"`
	CombineNanos   HistogramSnapshot          `json:"combine_nanos"`
	Backends       map[string]BackendSnapshot `json:"backends"`
}

// Snapshot captures the current state of every cluster metric.
func (m *ClusterMetrics) Snapshot() ClusterSnapshot {
	s := ClusterSnapshot{
		Queries:        m.Queries.Value(),
		Retries:        m.Retries.Value(),
		Failovers:      m.Failovers.Value(),
		ShardFailures:  m.ShardFailures.Value(),
		HedgedDials:    m.HedgedDials.Value(),
		ShardHedges:    m.ShardHedges.Value(),
		ShardHedgeWins: m.ShardHedgeWins.Value(),
		CorruptFrames:  m.CorruptFrames.Value(),
		Reshards:       m.Reshards.Value(),
		Epoch:          m.Epoch.Value(),
		CombineNanos:   m.CombineNanos.Snapshot(),
		Backends:       make(map[string]BackendSnapshot),
	}
	m.mu.Lock()
	addrs := make([]string, 0, len(m.backends))
	for a := range m.backends {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	buckets := make([]*BackendMetrics, len(addrs))
	for i, a := range addrs {
		buckets[i] = m.backends[a]
	}
	m.mu.Unlock()
	for i, a := range addrs {
		b := buckets[i]
		s.Backends[a] = BackendSnapshot{
			Sessions:    b.Sessions.Value(),
			Errors:      b.Errors.Value(),
			Busy:        b.Busy.Value(),
			FanoutNanos: b.FanoutNanos.Snapshot(),
		}
	}
	return s
}

// combinedSnapshot is the /stats document of a cluster daemon: the hosting
// server runtime's counters plus the fan-out path's.
type combinedSnapshot struct {
	Server  Snapshot        `json:"server"`
	Cluster ClusterSnapshot `json:"cluster"`
}

// ClusterStatsHandler serves the merged server+cluster JSON snapshot —
// what cmd/sumproxy mounts at /stats.
func ClusterStatsHandler(sm *ServerMetrics, cm *ClusterMetrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		doc := combinedSnapshot{Server: sm.Snapshot(time.Now()), Cluster: cm.Snapshot()}
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
