// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Section 3). Each RunFigN function executes the
// corresponding experiment — real cryptography, measured computation, exact
// wire bytes through the link models — and returns rows matching the
// figure's series. The cmd/psbench tool and the repository-root
// bench_test.go are thin wrappers around this package.
//
// The experiment ↔ module map lives in DESIGN.md §4.
package bench

import (
	"crypto/rand"
	"fmt"
	"io"
	"time"

	"privstats/internal/baseline"
	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
)

// Config fixes the experiment parameters.
type Config struct {
	// KeyBits is the Paillier modulus size; the paper uses 512.
	KeyBits int
	// Sizes is the database-size sweep. The paper sweeps 1,000–100,000.
	Sizes []int
	// SelectFraction is m/n, the fraction of rows selected.
	SelectFraction float64
	// ChunkSize is the batching chunk; the paper's §3.2 uses 100.
	ChunkSize int
	// Clients is k for the multi-client experiment; the paper's §3.5 uses 3.
	Clients int
	// Seed makes workloads reproducible.
	Seed int64
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer

	// ComputeScale multiplies measured computation times in the component
	// figures (2/3/5/6) before reporting; 0 means 1 (no scaling). The
	// paper ran on 2GHz Pentium-III-era hosts against the same physical
	// 56 Kbps link; setting this to ~30-50 reproduces the 2004
	// compute-to-communication ratio on modern CPUs (see EXPERIMENTS.md,
	// Figure 3 discussion). It intentionally does not affect the
	// comparison figures, whose both series scale together.
	ComputeScale float64
}

// DefaultConfig mirrors the paper's setup with a sweep that finishes in
// minutes on commodity hardware. Pass FullSizes for the paper's complete
// range.
func DefaultConfig() Config {
	return Config{
		KeyBits:        512,
		Sizes:          []int{1000, 2500, 5000, 10000},
		SelectFraction: 0.5,
		ChunkSize:      100,
		Clients:        3,
		Seed:           20040830, // the workshop's date
	}
}

// FullSizes is the paper's full sweep.
var FullSizes = []int{1000, 2500, 5000, 10000, 25000, 50000, 100000}

func (c Config) validate() error {
	if c.KeyBits < paillier.MinModulusBits {
		return fmt.Errorf("bench: key bits %d below minimum %d", c.KeyBits, paillier.MinModulusBits)
	}
	if len(c.Sizes) == 0 {
		return fmt.Errorf("bench: empty size sweep")
	}
	for _, n := range c.Sizes {
		if n < 1 {
			return fmt.Errorf("bench: bad database size %d", n)
		}
	}
	if c.SelectFraction <= 0 || c.SelectFraction > 1 {
		return fmt.Errorf("bench: select fraction %v outside (0,1]", c.SelectFraction)
	}
	if c.ChunkSize < 1 {
		return fmt.Errorf("bench: chunk size %d must be positive", c.ChunkSize)
	}
	if c.Clients < 1 {
		return fmt.Errorf("bench: client count %d must be positive", c.Clients)
	}
	if c.ComputeScale < 0 {
		return fmt.Errorf("bench: compute scale %v must be non-negative", c.ComputeScale)
	}
	return nil
}

// scale applies ComputeScale to a measured compute duration.
func (c Config) scale(d time.Duration) time.Duration {
	if c.ComputeScale <= 0 || c.ComputeScale == 1 {
		return d
	}
	return time.Duration(float64(d) * c.ComputeScale)
}

func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format, args...)
	}
}

// newKey generates a fresh Paillier key of the configured size.
func (c Config) newKey() (homomorphic.PrivateKey, *paillier.PrivateKey, error) {
	sk, err := paillier.KeyGen(rand.Reader, c.KeyBits)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: key generation: %w", err)
	}
	return paillier.SchemeKey{SK: sk}, sk, nil
}

// workload builds the deterministic table + selection for size n.
func (c Config) workload(n int) (*database.Table, *database.Selection, error) {
	table, err := database.Generate(n, database.DistUniform, c.Seed+int64(n))
	if err != nil {
		return nil, nil, err
	}
	m := int(float64(n) * c.SelectFraction)
	sel, err := database.GenerateSelection(n, m, database.PatternRandom, c.Seed-int64(n))
	if err != nil {
		return nil, nil, err
	}
	return table, sel, nil
}

// ComponentRow is one point of a runtime-components figure (Figs 2/3/5/6).
type ComponentRow struct {
	N                  int
	ClientEncrypt      time.Duration
	ServerCompute      time.Duration
	Communication      time.Duration
	ClientDecrypt      time.Duration
	Total              time.Duration
	Preprocess         time.Duration // offline time, preprocessed runs only
	BytesUp, BytesDown int64
	// OnlineFallbacks counts index bits the client had to encrypt online
	// because the preprocessing pool ran dry (preprocessed runs only). A
	// nonzero value means the row's ClientEncrypt mixes pooled and online
	// costs and the §3.3 figure is skewed; the report flags it.
	OnlineFallbacks int
}

// ComparisonRow is one point of an overall-runtime comparison figure
// (Figs 4/7/9).
type ComparisonRow struct {
	N        int
	Baseline time.Duration // "without optimization" series
	Variant  time.Duration // the optimized series
}

// Reduction returns the fractional runtime reduction of the variant.
func (r ComparisonRow) Reduction() float64 {
	if r.Baseline <= 0 {
		return 0
	}
	return 1 - float64(r.Variant)/float64(r.Baseline)
}

// Speedup returns Baseline/Variant.
func (r ComparisonRow) Speedup() float64 {
	if r.Variant <= 0 {
		return 0
	}
	return float64(r.Baseline) / float64(r.Variant)
}

// runComponents executes the single-client protocol for every sweep size
// and returns component rows. pool-building (preprocessing) happens per
// size when preprocess is true, and its offline cost is recorded.
func (c Config) runComponents(link netsim.Link, preprocess, pipelined bool, label string) ([]ComponentRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	sk, rawSK, err := c.newKey()
	if err != nil {
		return nil, err
	}
	rows := make([]ComponentRow, 0, len(c.Sizes))
	for _, n := range c.Sizes {
		table, sel, err := c.workload(n)
		if err != nil {
			return nil, err
		}
		opts := selectedsum.Options{Link: link}
		if pipelined {
			opts.ChunkSize = c.ChunkSize
			opts.Pipelined = true
		}
		var preprocessTime time.Duration
		var store *paillier.BitStore
		if preprocess {
			store = paillier.NewBitStore(rawSK.Public())
			start := time.Now()
			// Stock exactly what this query draws; a deployment would
			// overprovision, which only helps.
			ones := sel.Count()
			if err := store.Fill(n-ones, ones); err != nil {
				return nil, err
			}
			preprocessTime = time.Since(start)
			opts.Pool = paillier.SchemeBitStore{Store: store}
		}
		res, err := selectedsum.Run(sk, table, sel, opts)
		if err != nil {
			return nil, err
		}
		want, err := table.SelectedSum(sel)
		if err != nil {
			return nil, err
		}
		if res.Sum.Cmp(want) != 0 {
			return nil, fmt.Errorf("bench: %s n=%d: wrong sum %v, want %v", label, n, res.Sum, want)
		}
		row := ComponentRow{
			N:             n,
			ClientEncrypt: c.scale(res.Timings.ClientEncrypt),
			ServerCompute: c.scale(res.Timings.ServerCompute),
			Communication: res.Timings.Communication,
			ClientDecrypt: c.scale(res.Timings.ClientDecrypt),
			Total:         res.Timings.Total,
			Preprocess:    c.scale(preprocessTime),
			BytesUp:       res.BytesUp,
			BytesDown:     res.BytesDown,
		}
		if store != nil {
			row.OnlineFallbacks = store.OnlineFallbacks()
		}
		if c.ComputeScale > 0 && c.ComputeScale != 1 {
			// Scaling invalidates the measured pipeline makespan; report
			// the sequential total of the scaled components instead.
			row.Total = row.ClientEncrypt + row.ServerCompute + row.Communication + row.ClientDecrypt
		}
		rows = append(rows, row)
		c.progressf("%s n=%d total=%v\n", label, n, res.Timings.Total.Round(time.Millisecond))
	}
	return rows, nil
}

// Fig2 reproduces Figure 2: runtime components without optimizations over
// the short-distance (cluster switch) environment.
func (c Config) Fig2() ([]ComponentRow, error) {
	return c.runComponents(netsim.ShortDistance, false, false, "fig2")
}

// Fig3 reproduces Figure 3: the same experiment over the long-distance
// 56 Kbps dial-up environment.
func (c Config) Fig3() ([]ComponentRow, error) {
	return c.runComponents(netsim.LongDistance, false, false, "fig3")
}

// Fig5 reproduces Figure 5: components after preprocessing the index
// vector, short distance.
func (c Config) Fig5() ([]ComponentRow, error) {
	return c.runComponents(netsim.ShortDistance, true, false, "fig5")
}

// Fig6 reproduces Figure 6: components after preprocessing, long distance.
func (c Config) Fig6() ([]ComponentRow, error) {
	return c.runComponents(netsim.LongDistance, true, false, "fig6")
}

// Fig4 reproduces Figure 4: overall runtime with and without batching of
// the index vector (batch size ChunkSize), short distance.
func (c Config) Fig4() ([]ComparisonRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	sk, _, err := c.newKey()
	if err != nil {
		return nil, err
	}
	rows := make([]ComparisonRow, 0, len(c.Sizes))
	for _, n := range c.Sizes {
		table, sel, err := c.workload(n)
		if err != nil {
			return nil, err
		}
		plain, err := selectedsum.Run(sk, table, sel, selectedsum.Options{Link: netsim.ShortDistance})
		if err != nil {
			return nil, err
		}
		batched, err := selectedsum.Run(sk, table, sel, selectedsum.Options{
			Link: netsim.ShortDistance, ChunkSize: c.ChunkSize, Pipelined: true,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ComparisonRow{N: n, Baseline: plain.Timings.Total, Variant: batched.Timings.Total})
		c.progressf("fig4 n=%d plain=%v batched=%v\n", n,
			plain.Timings.Total.Round(time.Millisecond), batched.Timings.Total.Round(time.Millisecond))
	}
	return rows, nil
}

// Fig7 reproduces Figure 7: overall runtime with both preprocessing and
// batching versus no optimizations, short distance.
func (c Config) Fig7() ([]ComparisonRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	sk, rawSK, err := c.newKey()
	if err != nil {
		return nil, err
	}
	rows := make([]ComparisonRow, 0, len(c.Sizes))
	for _, n := range c.Sizes {
		table, sel, err := c.workload(n)
		if err != nil {
			return nil, err
		}
		plain, err := selectedsum.Run(sk, table, sel, selectedsum.Options{Link: netsim.ShortDistance})
		if err != nil {
			return nil, err
		}
		store := paillier.NewBitStore(rawSK.Public())
		ones := sel.Count()
		if err := store.Fill(n-ones, ones); err != nil {
			return nil, err
		}
		combined, err := selectedsum.Run(sk, table, sel, selectedsum.Options{
			Link:      netsim.ShortDistance,
			ChunkSize: c.ChunkSize,
			Pipelined: true,
			Pool:      paillier.SchemeBitStore{Store: store},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ComparisonRow{N: n, Baseline: plain.Timings.Total, Variant: combined.Timings.Total})
		c.progressf("fig7 n=%d plain=%v combined=%v\n", n,
			plain.Timings.Total.Round(time.Millisecond), combined.Timings.Total.Round(time.Millisecond))
	}
	return rows, nil
}

// Fig9 reproduces Figure 9: overall runtime with k cooperating clients
// (secret-shared blinding) versus a single client.
func (c Config) Fig9() ([]ComparisonRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	newKey := func() (homomorphic.PrivateKey, error) {
		k, _, err := c.newKey()
		return k, err
	}
	sk, _, err := c.newKey()
	if err != nil {
		return nil, err
	}
	rows := make([]ComparisonRow, 0, len(c.Sizes))
	for _, n := range c.Sizes {
		table, sel, err := c.workload(n)
		if err != nil {
			return nil, err
		}
		single, err := selectedsum.Run(sk, table, sel, selectedsum.Options{Link: netsim.ShortDistance})
		if err != nil {
			return nil, err
		}
		multi, err := selectedsum.RunMulti(newKey, table, sel, selectedsum.MultiOptions{
			Link:    netsim.ShortDistance,
			Clients: c.Clients,
		})
		if err != nil {
			return nil, err
		}
		if multi.Sum.Cmp(single.Sum) != 0 {
			return nil, fmt.Errorf("bench: fig9 n=%d: multi %v != single %v", n, multi.Sum, single.Sum)
		}
		rows = append(rows, ComparisonRow{N: n, Baseline: single.Timings.Total, Variant: multi.Total})
		c.progressf("fig9 n=%d single=%v multi(k=%d)=%v\n", n,
			single.Timings.Total.Round(time.Millisecond), c.Clients, multi.Total.Round(time.Millisecond))
	}
	return rows, nil
}

// BaselineRow places the non-private baselines next to the private
// protocol for one database size.
type BaselineRow struct {
	N                          int
	Private, SendIdx, Download time.Duration
	PrivateBytes, SendIdxBytes int64
	DownloadBytes              int64
}

// Baselines runs the private protocol against the two trivial protocols of
// the paper's Section 2 over the given link.
func (c Config) Baselines(link netsim.Link) ([]BaselineRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	sk, _, err := c.newKey()
	if err != nil {
		return nil, err
	}
	rows := make([]BaselineRow, 0, len(c.Sizes))
	for _, n := range c.Sizes {
		table, sel, err := c.workload(n)
		if err != nil {
			return nil, err
		}
		priv, err := selectedsum.Run(sk, table, sel, selectedsum.Options{Link: link})
		if err != nil {
			return nil, err
		}
		si, err := baseline.SendIndices(table, sel, link)
		if err != nil {
			return nil, err
		}
		dl, err := baseline.DownloadDatabase(table, sel, link)
		if err != nil {
			return nil, err
		}
		if si.Sum.Cmp(priv.Sum) != 0 || dl.Sum.Cmp(priv.Sum) != 0 {
			return nil, fmt.Errorf("bench: baseline disagreement at n=%d", n)
		}
		rows = append(rows, BaselineRow{
			N:             n,
			Private:       priv.Timings.Total,
			SendIdx:       si.Total,
			Download:      dl.Total,
			PrivateBytes:  priv.BytesUp + priv.BytesDown,
			SendIdxBytes:  si.BytesUp + si.BytesDown,
			DownloadBytes: dl.BytesUp + dl.BytesDown,
		})
	}
	return rows, nil
}
