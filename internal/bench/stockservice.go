package bench

import (
	"context"
	"fmt"
	"math/big"
	"net"
	"time"

	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
	"privstats/internal/server"
	"privstats/internal/stock"
)

// PreprocServiceRow is one point of the preprocessing-as-a-service
// experiment: the client's online encryption time with no preprocessing
// versus with a stockd-fed RemoteSource, plus the offline prime cost the
// service moved out of the query path.
type PreprocServiceRow struct {
	N int
	// BaselineEncrypt is ClientEncrypt with online encryption (no pool).
	BaselineEncrypt time.Duration
	// StockedEncrypt is ClientEncrypt drawing from a primed RemoteSource.
	StockedEncrypt time.Duration
	// ReductionPct is the relative saving, 100*(1 - stocked/baseline).
	ReductionPct float64
	// Prime is the offline time to prefetch the full index vector's stock
	// from the daemon (the cost that left the online path).
	Prime time.Duration
	// Fallbacks counts draws the stock could not cover (0 in a healthy run).
	Fallbacks int
}

// PreprocessService measures preprocessing-as-a-service end to end: for
// each size it spins a live-TCP stockd with per-size inventory targets,
// primes a RemoteSource over the real stock wire protocol, and compares
// the protocol's ClientEncrypt against the no-preprocessing baseline on
// the identical workload. Both runs must produce the exact selected sum.
//
// This is the service-shaped version of the paper's §3.3 measurement: the
// ~80% of client online time that preprocessing removes is here removed by
// a daemon another process could share.
func (c Config) PreprocessService() ([]PreprocServiceRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	sk, rawSK, err := c.newKey()
	if err != nil {
		return nil, err
	}

	rows := make([]PreprocServiceRow, 0, len(c.Sizes))
	for _, n := range c.Sizes {
		table, sel, err := c.workload(n)
		if err != nil {
			return nil, err
		}
		want, err := table.SelectedSum(sel)
		if err != nil {
			return nil, err
		}

		base, err := selectedsum.Run(sk, table, sel, selectedsum.Options{
			Link:      netsim.ShortDistance,
			ChunkSize: c.ChunkSize,
		})
		if err != nil {
			return nil, err
		}
		if base.Sum.Cmp(want) != 0 {
			return nil, fmt.Errorf("bench: preproc-service baseline n=%d: wrong sum", n)
		}

		row, err := c.stockedPoint(sk, rawSK, table, sel, want)
		if err != nil {
			return nil, err
		}
		row.BaselineEncrypt = base.Timings.ClientEncrypt
		if row.BaselineEncrypt > 0 {
			row.ReductionPct = 100 * (1 - float64(row.StockedEncrypt)/float64(row.BaselineEncrypt))
		}
		rows = append(rows, row)
		c.progressf("preproc-service n=%d baseline=%v stocked=%v (-%.1f%%) prime=%v fallbacks=%d\n",
			n, row.BaselineEncrypt.Round(time.Millisecond), row.StockedEncrypt.Round(time.Millisecond),
			row.ReductionPct, row.Prime.Round(time.Millisecond), row.Fallbacks)
	}
	return rows, nil
}

// stockedPoint runs one size's stockd-fed measurement against a fresh
// in-process daemon (live TCP, real stock wire protocol) whose inventory
// targets exactly cover the index vector.
func (c Config) stockedPoint(sk homomorphic.PrivateKey, rawSK *paillier.PrivateKey, table *database.Table, sel *database.Selection, want *big.Int) (PreprocServiceRow, error) {
	nolog := func(string, ...any) {}
	n := table.Len()
	ones := sel.Count()
	zeros := n - ones

	inv, err := stock.NewInventory(stock.InventoryConfig{
		Targets: stock.Targets{Zeros: zeros, Ones: ones},
		Logf:    nolog,
	})
	if err != nil {
		return PreprocServiceRow{}, err
	}
	defer inv.Close()
	srv, err := server.NewHandler(&stock.Handler{Inv: inv}, server.Config{Logf: nolog})
	if err != nil {
		return PreprocServiceRow{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return PreprocServiceRow{}, err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-errc
	}()

	// Let the daemon mint the full inventory before priming: generation is
	// the offline cost the service absorbs, and Prime should measure the
	// transfer, not race the refiller.
	if _, err := inv.Admit(rawSK.Public()); err != nil {
		return PreprocServiceRow{}, err
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		z, o, _, ok := inv.Depths(rawSK.Public())
		if ok && z >= zeros && o >= ones {
			break
		}
		if time.Now().After(deadline) {
			return PreprocServiceRow{}, fmt.Errorf("bench: stockd stuck at (%d,%d) of (%d,%d)", z, o, zeros, ones)
		}
		time.Sleep(5 * time.Millisecond)
	}

	src, err := stock.NewRemoteSource(stock.RemoteSourceConfig{
		Addr:        ln.Addr().String(),
		Key:         rawSK.Public(),
		TargetZeros: zeros,
		TargetOnes:  ones,
		Logf:        nolog,
	})
	if err != nil {
		return PreprocServiceRow{}, err
	}
	defer src.Close()

	primeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	primeStart := time.Now()
	if err := src.Prime(primeCtx); err != nil {
		return PreprocServiceRow{}, fmt.Errorf("bench: priming from stockd: %w", err)
	}
	prime := time.Since(primeStart)

	res, err := selectedsum.Run(sk, table, sel, selectedsum.Options{
		Link:      netsim.ShortDistance,
		ChunkSize: c.ChunkSize,
		Pool:      src,
	})
	if err != nil {
		return PreprocServiceRow{}, err
	}
	if res.Sum.Cmp(want) != 0 {
		return PreprocServiceRow{}, fmt.Errorf("bench: preproc-service stocked n=%d: wrong sum", n)
	}
	return PreprocServiceRow{
		N:              n,
		StockedEncrypt: res.Timings.ClientEncrypt,
		Prime:          prime,
		Fallbacks:      src.OnlineFallbacks(),
	}, nil
}
