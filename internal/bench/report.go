package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Plain-text rendering of experiment results: one aligned table per figure,
// in the same rows/series the paper's charts plot, plus CSV output for
// external plotting.

// fmtDur renders a duration with sensible rounding for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// WriteComponentTable renders component rows (Figs 2/3/5/6).
func WriteComponentTable(w io.Writer, title string, rows []ComponentRow) error {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tclient encrypt\tserver compute\tcommunication\tclient decrypt\ttotal\tpreproc (offline)\tbytes up\tbytes down")
	for _, r := range rows {
		pre := "-"
		if r.Preprocess > 0 {
			pre = fmtDur(r.Preprocess)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%d\n",
			r.N, fmtDur(r.ClientEncrypt), fmtDur(r.ServerCompute), fmtDur(r.Communication),
			fmtDur(r.ClientDecrypt), fmtDur(r.Total), pre, r.BytesUp, r.BytesDown)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, r := range rows {
		if r.OnlineFallbacks > 0 {
			fmt.Fprintf(w, "warning: n=%d drew %d index bits via online encryption — preprocessing pool drained, client-encrypt time mixes pooled and online costs\n",
				r.N, r.OnlineFallbacks)
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteComparisonTable renders comparison rows (Figs 4/7/9).
func WriteComparisonTable(w io.Writer, title, baselineName, variantName string, rows []ComparisonRow) error {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "n\t%s\t%s\treduction\tspeedup\n", baselineName, variantName)
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.1f%%\t%.2fx\n",
			r.N, fmtDur(r.Baseline), fmtDur(r.Variant), 100*r.Reduction(), r.Speedup())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteYaoTable renders the Section 2 general-SMC comparison.
func WriteYaoTable(w io.Writer, rows []YaoRow) error {
	title := "Selected sum vs. general SMC (Yao/Fairplay cost model), short distance"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tthis protocol\tYao (modern)\tYao (2004 Fairplay)\tgates\tYao wire bytes\tbandwidth ratio\tera time ratio")
	for _, r := range rows {
		bw := float64(r.YaoWireBytes) // vs the private protocol's n ciphertexts
		privBytes := float64(r.N) * 128
		era := float64(r.YaoEra) / float64(r.Private)
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%d\t%.0fx\t%.0fx\n",
			r.N, fmtDur(r.Private), fmtDur(r.YaoEstimate), fmtDur(r.YaoEra),
			r.YaoGates, r.YaoWireBytes, bw/privBytes, era)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteAblationTable renders the cryptosystem ablation.
func WriteAblationTable(w io.Writer, n int, rows []AblationRow) error {
	title := fmt.Sprintf("Cryptosystem ablation, n=%d (identical workload, small values)", n)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tclient encrypt\tserver compute\tclient decrypt\twire bytes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\n",
			r.Variant, fmtDur(r.Client), fmtDur(r.Server), fmtDur(r.Decrypt), r.Bytes)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteChunkTable renders the chunk-size sensitivity sweep.
func WriteChunkTable(w io.Writer, n int, link string, rows []ChunkRow) error {
	title := fmt.Sprintf("Chunk-size sensitivity, n=%d, %s", n, link)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "chunk size\tchunks\ttotal")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%s\n", r.ChunkSize, r.Chunks, fmtDur(r.Total))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteBaselineTable renders the private protocol against the two trivial
// non-private protocols.
func WriteBaselineTable(w io.Writer, link string, rows []BaselineRow) error {
	title := fmt.Sprintf("Privacy cost vs. trivial protocols, %s", link)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tprivate\tsend-indices (leaks query)\tdownload-db (leaks data)\tprivate bytes\tsend-idx bytes\tdownload bytes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%d\t%d\n",
			r.N, fmtDur(r.Private), fmtDur(r.SendIdx), fmtDur(r.Download),
			r.PrivateBytes, r.SendIdxBytes, r.DownloadBytes)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteDecryptTable renders the CRT-vs-naive decryption ablation.
func WriteDecryptTable(w io.Writer, d *DecryptAblation) error {
	title := fmt.Sprintf("Paillier decryption ablation, %d-bit keys, %d decryptions", d.KeyBits, d.Iterations)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	speedup := float64(d.Naive) / float64(d.CRT)
	_, err := fmt.Fprintf(w, "CRT: %s   textbook: %s   speedup: %.2fx\n\n",
		fmtDur(d.CRT), fmtDur(d.Naive), speedup)
	return err
}

// WriteScalingTable renders the server-parallelism ablation.
func WriteScalingTable(w io.Writer, n int, rows []ScalingRow) error {
	title := fmt.Sprintf("Server fold parallelism, n=%d", n)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\tserver compute\tspeedup")
	base := time.Duration(0)
	for i, r := range rows {
		if i == 0 {
			base = r.ServerCompute
		}
		speedup := float64(base) / float64(r.ServerCompute)
		fmt.Fprintf(tw, "%d\t%s\t%.2fx\n", r.Workers, fmtDur(r.ServerCompute), speedup)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteFoldTable renders the server-fold ablation: per chunk size, every
// variant's total and per-row time plus its speedup over the naive loop.
func WriteFoldTable(w io.Writer, rows []FoldRow) error {
	title := "Server fold ablation: naive ScalarMul+Add vs. bucket multi-exponentiation"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rows\tvariant\ttotal\tper row\tspeedup")
	naive := map[int]time.Duration{}
	for _, r := range rows {
		if r.Variant == "naive" {
			naive[r.Rows] = r.Time
		}
	}
	for _, r := range rows {
		speedup := "-"
		if base, ok := naive[r.Rows]; ok && r.Time > 0 && r.Variant != "naive" {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(r.Time))
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n",
			r.Rows, r.Variant, fmtDur(r.Time), fmtDur(r.PerRow()), speedup)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FoldCSV writes fold-ablation rows as CSV.
func FoldCSV(w io.Writer, rows []FoldRow) error {
	if _, err := fmt.Fprintln(w, "rows,variant,window,workers,total_ms,ns_per_row"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%.3f,%.0f\n",
			r.Rows, r.Variant, r.Window, r.Workers,
			float64(r.Time)/float64(time.Millisecond), float64(r.PerRow())); err != nil {
			return err
		}
	}
	return nil
}

// WriteClientEncryptTable renders the client-encrypt ablation: per count,
// every variant's total and per-encryption time plus its speedup over the
// public-key path.
func WriteClientEncryptTable(w io.Writer, rows []ClientEncryptRow) error {
	title := "Client encrypt ablation: public-key path vs. owner CRT vs. CRT-filled pool"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "count\tvariant\ttotal\tper enc\tspeedup")
	naive := map[int]time.Duration{}
	for _, r := range rows {
		if r.Variant == "naive" {
			naive[r.Count] = r.Time
		}
	}
	for _, r := range rows {
		speedup := "-"
		if base, ok := naive[r.Count]; ok && r.Time > 0 && r.Variant != "naive" {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(r.Time))
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n",
			r.Count, r.Variant, fmtDur(r.Time), fmtDur(r.PerOp()), speedup)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ClientEncryptCSV writes client-encrypt ablation rows as CSV.
func ClientEncryptCSV(w io.Writer, rows []ClientEncryptRow) error {
	if _, err := fmt.Fprintln(w, "count,variant,total_ms,ns_per_enc"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%s,%.3f,%.0f\n",
			r.Count, r.Variant,
			float64(r.Time)/float64(time.Millisecond), float64(r.PerOp())); err != nil {
			return err
		}
	}
	return nil
}

// WritePreprocTable renders the preprocessing drain-and-overrun ablation.
func WritePreprocTable(w io.Writer, rows []PreprocRow) error {
	title := "Preprocessing pools under overrun (§3.3): pooled vs. online draw cost"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pool\tstocked\tdraws\tfallbacks\tpooled phase\tonline phase\tper-draw pooled\tper-draw online")
	for _, r := range rows {
		perPooled, perOnline := time.Duration(0), time.Duration(0)
		if r.Stocked > 0 {
			perPooled = r.PooledTime / time.Duration(r.Stocked)
		}
		if r.Fallbacks > 0 {
			perOnline = r.OnlineTime / time.Duration(r.Fallbacks)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\t%s\t%s\n",
			r.Pool, r.Stocked, r.Draws, r.Fallbacks,
			fmtDur(r.PooledTime), fmtDur(r.OnlineTime), fmtDur(perPooled), fmtDur(perOnline))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ComponentCSV writes component rows as CSV (for external plotting).
func ComponentCSV(w io.Writer, rows []ComponentRow) error {
	if _, err := fmt.Fprintln(w, "n,client_encrypt_ms,server_compute_ms,communication_ms,client_decrypt_ms,total_ms,preprocess_ms,bytes_up,bytes_down,online_fallbacks"); err != nil {
		return err
	}
	for _, r := range rows {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		if _, err := fmt.Fprintf(w, "%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%d,%d\n",
			r.N, ms(r.ClientEncrypt), ms(r.ServerCompute), ms(r.Communication),
			ms(r.ClientDecrypt), ms(r.Total), ms(r.Preprocess), r.BytesUp, r.BytesDown, r.OnlineFallbacks); err != nil {
			return err
		}
	}
	return nil
}

// ComparisonCSV writes comparison rows as CSV.
func ComparisonCSV(w io.Writer, rows []ComparisonRow) error {
	if _, err := fmt.Fprintln(w, "n,baseline_ms,variant_ms,reduction,speedup"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%.3f,%.3f,%.4f,%.4f\n",
			r.N, float64(r.Baseline)/float64(time.Millisecond),
			float64(r.Variant)/float64(time.Millisecond), r.Reduction(), r.Speedup()); err != nil {
			return err
		}
	}
	return nil
}

// WritePreprocServiceTable renders the preprocessing-as-a-service
// comparison: online encryption with and without a stockd feed.
func WritePreprocServiceTable(w io.Writer, rows []PreprocServiceRow) error {
	title := "Preprocessing as a service (§3.3): client online encryption, stockd-fed vs. online"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tonline encrypt\tstockd-fed encrypt\treduction\tprime (offline)\tfallbacks")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.1f%%\t%s\t%d\n",
			r.N, fmtDur(r.BaselineEncrypt), fmtDur(r.StockedEncrypt),
			r.ReductionPct, fmtDur(r.Prime), r.Fallbacks)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
