package bench

import (
	"fmt"
	"math/big"
	"time"

	"privstats/internal/paillier"
)

// The client-encrypt ablation: the public-key encryption path versus the key
// owner's CRT fast path, alone and combined with an owner-filled randomizer
// pool. This is the microbenchmark behind the SelfEncryptor capability the
// selected-sum client takes (and the owner constructors of the preprocessing
// pools); results/client-encrypt.txt records a reference run.
//
// Correctness is pinned per cell: every ciphertext any variant produces is
// decrypted and compared against its plaintext, so a speedup from a broken
// encryption path cannot go unnoticed.

// clientEncryptReps is how many timed passes each variant runs; the fastest
// is reported.
const clientEncryptReps = 3

// ClientEncryptRow is one variant × count point of the client-encrypt
// ablation.
type ClientEncryptRow struct {
	Count   int
	Variant string // "naive", "crt", "crt+pool"
	Time    time.Duration
}

// PerOp returns the amortized per-encryption time.
func (r ClientEncryptRow) PerOp() time.Duration {
	if r.Count == 0 {
		return 0
	}
	return r.Time / time.Duration(r.Count)
}

// ClientEncryptAblation times count index-bit encryptions through each
// client-side variant under one shared key:
//
//   - naive:    PublicKey.Encrypt — what a client without the private key
//     (or a pre-CRT client) pays per bit.
//   - crt:      PrivateKey.EncryptCRT — the owner's factored path, exponent
//     and modulus both halved via the z^p shortcut.
//   - crt+pool: an owner-filled RandomizerPool drained by
//     EncryptWithRandomizer — the online cost once preprocessing already
//     paid for the randomizers (the fill itself is CRT-fast but offline,
//     so it is excluded from the timed phase).
func (c Config) ClientEncryptAblation(counts []int) ([]ClientEncryptRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(counts) == 0 {
		counts = []int{256, 1024}
	}
	_, rawSK, err := c.newKey()
	if err != nil {
		return nil, err
	}
	pk := rawSK.Public()

	var rows []ClientEncryptRow
	for _, n := range counts {
		if n < 1 {
			return nil, fmt.Errorf("bench: client-encrypt count %d must be positive", n)
		}
		// The selected-sum workload: alternating index bits.
		msgs := make([]*big.Int, n)
		for i := range msgs {
			msgs[i] = big.NewInt(int64(i % 2))
		}
		verify := func(variant string, cts []*paillier.Ciphertext) error {
			for i, ct := range cts {
				m, err := rawSK.Decrypt(ct)
				if err != nil {
					return fmt.Errorf("bench: client-encrypt %s at n=%d: decrypting cell %d: %w", variant, n, i, err)
				}
				if m.Cmp(msgs[i]) != 0 {
					return fmt.Errorf("bench: client-encrypt %s at n=%d: cell %d decrypts to %v, want %v", variant, n, i, m, msgs[i])
				}
			}
			return nil
		}

		pool := paillier.NewRandomizerPoolOwner(rawSK)
		if err := pool.Fill(n); err != nil {
			return nil, err
		}

		variants := []struct {
			name    string
			encrypt func(m *big.Int) (*paillier.Ciphertext, error)
		}{
			{"naive", pk.Encrypt},
			{"crt", rawSK.EncryptCRT},
			{"crt+pool", pool.Encrypt},
		}
		// Every variant runs clientEncryptReps timed passes and reports its
		// fastest. The rep loop is OUTSIDE the variant loop so the variants
		// interleave: frequency scaling or a noisy neighbour then degrades
		// all three roughly equally within a rep instead of skewing whole
		// variants, and the per-variant minimum is the standard low-variance
		// estimator on top. Every pass's ciphertexts are decrypt-verified,
		// not just the winning one.
		best := make(map[string]time.Duration, len(variants))
		for rep := 0; rep < clientEncryptReps; rep++ {
			for _, v := range variants {
				if v.name == "crt+pool" && pool.Len() < n {
					// The timed phase must drain stock only; refill between
					// passes (offline work, untimed).
					if err := pool.Fill(n - pool.Len()); err != nil {
						return nil, err
					}
				}
				cts := make([]*paillier.Ciphertext, n)
				start := time.Now()
				for i, m := range msgs {
					ct, err := v.encrypt(m)
					if err != nil {
						return nil, fmt.Errorf("bench: client-encrypt %s at n=%d: %w", v.name, n, err)
					}
					cts[i] = ct
				}
				d := time.Since(start)
				if err := verify(v.name, cts); err != nil {
					return nil, err
				}
				if cur, ok := best[v.name]; !ok || d < cur {
					best[v.name] = d
				}
			}
		}
		naive := best["naive"]
		for _, v := range variants {
			rows = append(rows, ClientEncryptRow{Count: n, Variant: v.name, Time: best[v.name]})
		}
		if fb := pool.OnlineFallbacks(); fb != 0 {
			return nil, fmt.Errorf("bench: client-encrypt pool ran dry at n=%d (%d fallbacks)", n, fb)
		}
		c.progressf("client-encrypt n=%d naive=%v crt=%v crt+pool=%v\n", n,
			naive.Round(time.Millisecond),
			rows[len(rows)-2].Time.Round(time.Millisecond),
			rows[len(rows)-1].Time.Round(time.Millisecond))
	}
	return rows, nil
}
