package bench

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"privstats/internal/crypto/dj"
	"privstats/internal/crypto/elgamal"
	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/mathx"
	"privstats/internal/netsim"
	"privstats/internal/paillier"
	"privstats/internal/selectedsum"
	"privstats/internal/yao"
)

// The experiments beyond the paper's numbered figures: the Section 2
// general-SMC (Fairplay/Yao) comparison, the implementation-constant
// ablations motivated by the paper's Java-vs-C++ remark, and the §3.2
// chunk-size sensitivity the paper discusses but does not plot.

// YaoRow compares our protocol against the Yao cost model at one size.
type YaoRow struct {
	N       int
	Private time.Duration
	// YaoEstimate uses per-gate constants calibrated from this machine's
	// real garbled-circuit runs — the matched-modern-constants comparison.
	YaoEstimate time.Duration
	// YaoEra uses 2004 Fairplay constants (see yao.FairplayEra), which is
	// the comparison the paper actually quotes.
	YaoEra       time.Duration
	YaoGates     int64
	YaoWireBytes int64
}

// YaoComparison reproduces the Section 2 comparison: the private selected
// sum versus a calibrated estimate of a garbled-circuit execution, over the
// short-distance link. The per-gate constants come from garbling and
// evaluating a real (small) circuit; the per-OT constant from running the
// yao package's real EGL oblivious transfer.
func (c Config) YaoComparison() ([]YaoRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	sk, _, err := c.newKey()
	if err != nil {
		return nil, err
	}
	// Measure the per-OT constant with the package's real EGL oblivious
	// transfer (a handful of round trips amortizes the RSA private op).
	otSample, err := measureOT(8)
	if err != nil {
		return nil, fmt.Errorf("bench: measuring OT constant: %w", err)
	}
	model, err := yao.Calibrate(otSample)
	if err != nil {
		return nil, fmt.Errorf("bench: calibrating Yao model: %w", err)
	}

	rows := make([]YaoRow, 0, len(c.Sizes))
	for _, n := range c.Sizes {
		table, sel, err := c.workload(n)
		if err != nil {
			return nil, err
		}
		priv, err := selectedsum.Run(sk, table, sel, selectedsum.Options{Link: netsim.ShortDistance})
		if err != nil {
			return nil, err
		}
		est, err := model.SelectedSum(n, 32, netsim.ShortDistance)
		if err != nil {
			return nil, err
		}
		era, err := yao.FairplayEra().SelectedSum(n, 32, netsim.ShortDistance)
		if err != nil {
			return nil, err
		}
		rows = append(rows, YaoRow{
			N:            n,
			Private:      priv.Timings.Total,
			YaoEstimate:  est.Total,
			YaoEra:       era.Total,
			YaoGates:     est.Gates,
			YaoWireBytes: est.WireBytes,
		})
		c.progressf("yao n=%d private=%v yao=%v era=%v (%d gates)\n", n,
			priv.Timings.Total.Round(time.Millisecond), est.Total.Round(time.Millisecond),
			era.Total.Round(time.Second), est.Gates)
	}
	return rows, nil
}

// measureOT times count full 1-of-2 oblivious transfers (512-bit RSA, the
// yao package's EGL implementation) and returns the per-OT constant.
func measureOT(count int) (time.Duration, error) {
	sender, err := yao.NewOTSender(512)
	if err != nil {
		return 0, err
	}
	n, e, x0, x1 := sender.PublicParams()
	var m0, m1 [yao.OTMessageSize]byte
	start := time.Now()
	for i := 0; i < count; i++ {
		recv, req, err := yao.NewOTRequest(n, e, x0, x1, uint(i%2))
		if err != nil {
			return 0, err
		}
		resp, err := sender.Respond(req, m0, m1)
		if err != nil {
			return 0, err
		}
		if _, err := recv.Open(resp); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(count), nil
}

// AblationRow is one variant's cost for the fixed-size ablation.
type AblationRow struct {
	Variant string
	// Client, Server, Decrypt are per-run totals at the ablation size.
	Client, Server, Decrypt time.Duration
	// Bytes is total protocol traffic.
	Bytes int64
}

// SchemeAblation runs the identical selected-sum workload over Paillier,
// Damgård–Jurik (s=2) and exponential ElGamal. It quantifies what the
// paper's choice of cryptosystem buys — the Go analogue of its Java-vs-C++
// implementation-constant remark. The size is fixed at Sizes[0]; ElGamal
// decryption is BSGS-bounded, so values come from the small distribution.
func (c Config) SchemeAblation() ([]AblationRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	n := c.Sizes[0]
	table, err := smallTable(n, c.Seed)
	if err != nil {
		return nil, err
	}
	sel, err := smallSelection(n, int(float64(n)*c.SelectFraction), c.Seed)
	if err != nil {
		return nil, err
	}

	type scheme struct {
		name string
		key  func() (homomorphic.PrivateKey, error)
	}
	schemes := []scheme{
		{"paillier-" + fmt.Sprint(c.KeyBits), func() (homomorphic.PrivateKey, error) {
			sk, err := paillier.KeyGen(rand.Reader, c.KeyBits)
			if err != nil {
				return nil, err
			}
			return paillier.SchemeKey{SK: sk}, nil
		}},
		{"damgard-jurik-s2-" + fmt.Sprint(c.KeyBits), func() (homomorphic.PrivateKey, error) {
			sk, err := dj.KeyGen(rand.Reader, c.KeyBits, 2)
			if err != nil {
				return nil, err
			}
			return dj.PrivKey{SK: sk}, nil
		}},
		{"exp-elgamal-" + fmt.Sprint(c.KeyBits), func() (homomorphic.PrivateKey, error) {
			// Subgroup order: 160 bits at production sizes, scaled down
			// with the modulus for small test keys. Sum bound: n small
			// values < n·1000.
			qBits := 160
			if c.KeyBits < qBits+16 {
				qBits = c.KeyBits / 2
			}
			sk, err := elgamal.KeyGen(rand.Reader, c.KeyBits, qBits, uint64(n)*1000)
			if err != nil {
				return nil, err
			}
			return elgamal.PrivKey{SK: sk}, nil
		}},
	}

	rows := make([]AblationRow, 0, len(schemes))
	var want *big.Int
	for _, s := range schemes {
		sk, err := s.key()
		if err != nil {
			return nil, fmt.Errorf("bench: %s keygen: %w", s.name, err)
		}
		res, err := selectedsum.Run(sk, table, sel, selectedsum.Options{Link: netsim.ShortDistance})
		if err != nil {
			return nil, fmt.Errorf("bench: %s run: %w", s.name, err)
		}
		if want == nil {
			want = res.Sum
		} else if res.Sum.Cmp(want) != 0 {
			return nil, fmt.Errorf("bench: %s disagrees: %v vs %v", s.name, res.Sum, want)
		}
		rows = append(rows, AblationRow{
			Variant: s.name,
			Client:  res.Timings.ClientEncrypt,
			Server:  res.Timings.ServerCompute,
			Decrypt: res.Timings.ClientDecrypt,
			Bytes:   res.BytesUp + res.BytesDown,
		})
		c.progressf("ablation %s client=%v server=%v\n", s.name,
			res.Timings.ClientEncrypt.Round(time.Millisecond), res.Timings.ServerCompute.Round(time.Millisecond))
	}
	return rows, nil
}

// DecryptAblation measures CRT versus textbook Paillier decryption — the
// kind of implementation constant behind the paper's "Java was around five
// times slower than C++" observation.
type DecryptAblation struct {
	KeyBits    int
	CRT, Naive time.Duration
	Iterations int
}

// DecryptComparison times both decryption paths over the same ciphertexts.
func (c Config) DecryptComparison(iterations int) (*DecryptAblation, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("bench: iterations %d must be positive", iterations)
	}
	_, rawSK, err := c.newKey()
	if err != nil {
		return nil, err
	}
	cts := make([]*paillier.Ciphertext, iterations)
	for i := range cts {
		m, err := mathx.RandInt(rand.Reader, rawSK.N)
		if err != nil {
			return nil, err
		}
		ct, err := rawSK.Public().Encrypt(m)
		if err != nil {
			return nil, err
		}
		cts[i] = ct
	}
	start := time.Now()
	for _, ct := range cts {
		if _, err := rawSK.Decrypt(ct); err != nil {
			return nil, err
		}
	}
	crt := time.Since(start)
	start = time.Now()
	for _, ct := range cts {
		if _, err := rawSK.DecryptNaive(ct); err != nil {
			return nil, err
		}
	}
	naive := time.Since(start)
	return &DecryptAblation{KeyBits: c.KeyBits, CRT: crt, Naive: naive, Iterations: iterations}, nil
}

// ChunkRow is one point of the chunk-size sensitivity sweep.
type ChunkRow struct {
	ChunkSize int
	Total     time.Duration
	Chunks    int
}

// ChunkSweep runs the batched protocol at the largest sweep size across
// chunk sizes,
// exploring the paper's observation that "the optimal chunk size will
// depend on the relative communication and computation speeds".
func (c Config) ChunkSweep(chunkSizes []int, link netsim.Link) ([]ChunkRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(chunkSizes) == 0 {
		chunkSizes = []int{10, 50, 100, 500, 1000, 5000}
	}
	sk, _, err := c.newKey()
	if err != nil {
		return nil, err
	}
	// The largest sweep size gives per-run times big enough that scheduler
	// noise does not swamp the chunk-size effect.
	n := c.Sizes[len(c.Sizes)-1]
	table, sel, err := c.workload(n)
	if err != nil {
		return nil, err
	}
	rows := make([]ChunkRow, 0, len(chunkSizes))
	for _, cs := range chunkSizes {
		if cs < 1 {
			return nil, fmt.Errorf("bench: chunk size %d must be positive", cs)
		}
		res, err := selectedsum.Run(sk, table, sel, selectedsum.Options{
			Link: link, ChunkSize: cs, Pipelined: true,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ChunkRow{ChunkSize: cs, Total: res.Timings.Total, Chunks: res.Chunks})
		c.progressf("chunk=%d total=%v\n", cs, res.Timings.Total.Round(time.Millisecond))
	}
	return rows, nil
}

// ScalingRow is one point of the server-parallelism ablation.
type ScalingRow struct {
	Workers int
	// ServerCompute is the wall-clock fold time with that worker count.
	ServerCompute time.Duration
}

// ServerScaling measures the server's fold time at Sizes[0] as the fold is
// split across 1..maxWorkers goroutines — the software analogue of the
// "special-purpose cryptographic hardware" the paper's future work proposes
// for the computation bottleneck.
func (c Config) ServerScaling(maxWorkers int) ([]ScalingRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if maxWorkers < 1 {
		return nil, fmt.Errorf("bench: max workers %d must be positive", maxWorkers)
	}
	sk, _, err := c.newKey()
	if err != nil {
		return nil, err
	}
	// Use the largest sweep size: at small n the fold lasts tens of
	// milliseconds and goroutine overhead hides the parallel speedup.
	n := c.Sizes[len(c.Sizes)-1]
	table, sel, err := c.workload(n)
	if err != nil {
		return nil, err
	}
	want, err := table.SelectedSum(sel)
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		res, err := selectedsum.Run(sk, table, sel, selectedsum.Options{
			Link:          netsim.ShortDistance,
			ServerWorkers: workers,
		})
		if err != nil {
			return nil, err
		}
		if res.Sum.Cmp(want) != 0 {
			return nil, fmt.Errorf("bench: scaling workers=%d: wrong sum", workers)
		}
		rows = append(rows, ScalingRow{Workers: workers, ServerCompute: res.Timings.ServerCompute})
		c.progressf("scaling workers=%d server=%v\n", workers, res.Timings.ServerCompute.Round(time.Millisecond))
	}
	return rows, nil
}

// PreprocRow reports one preprocessing pool's behavior when draws overrun
// its stock: the pooled phase cost, the online-fallback phase cost, and the
// fallback counter the pool recorded.
type PreprocRow struct {
	Pool      string
	Stocked   int
	Draws     int
	Fallbacks int
	// PooledTime covers the first Stocked draws, OnlineTime the overrun.
	PooledTime, OnlineTime time.Duration
}

// PreprocessDrain stocks both §3.3 pools (BitStore and RandomizerPool) with
// `stock` entries, then performs stock+overrun draws from each, separating
// the pooled-phase cost from the online-fallback cost. It demonstrates that
// the pools' OnlineFallbacks counters observe exactly the overrun — the
// signal that a §3.3 experiment exhausted its preprocessing.
func (c Config) PreprocessDrain(stock, overrun int) ([]PreprocRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if stock < 0 || overrun < 0 {
		return nil, fmt.Errorf("bench: negative preprocess drain (%d, %d)", stock, overrun)
	}
	_, rawSK, err := c.newKey()
	if err != nil {
		return nil, err
	}
	pk := rawSK.Public()

	store := paillier.NewBitStore(pk)
	if err := store.Fill(0, stock); err != nil {
		return nil, err
	}
	drawBits := func(count int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < count; i++ {
			if _, err := store.DrawBit(1); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	bitPooled, err := drawBits(stock)
	if err != nil {
		return nil, err
	}
	bitOnline, err := drawBits(overrun)
	if err != nil {
		return nil, err
	}

	pool := paillier.NewRandomizerPool(pk)
	if err := pool.Fill(stock); err != nil {
		return nil, err
	}
	one := big.NewInt(1)
	drawRandomizers := func(count int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < count; i++ {
			if _, err := pool.Encrypt(one); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	rndPooled, err := drawRandomizers(stock)
	if err != nil {
		return nil, err
	}
	rndOnline, err := drawRandomizers(overrun)
	if err != nil {
		return nil, err
	}

	rows := []PreprocRow{
		{Pool: "bit-store", Stocked: stock, Draws: stock + overrun,
			Fallbacks: store.OnlineFallbacks(), PooledTime: bitPooled, OnlineTime: bitOnline},
		{Pool: "randomizer-pool", Stocked: stock, Draws: stock + overrun,
			Fallbacks: pool.OnlineFallbacks(), PooledTime: rndPooled, OnlineTime: rndOnline},
	}
	for _, r := range rows {
		if r.Fallbacks != overrun {
			return nil, fmt.Errorf("bench: %s counted %d fallbacks, expected %d", r.Pool, r.Fallbacks, overrun)
		}
		c.progressf("preproc %s pooled=%v online=%v fallbacks=%d\n", r.Pool,
			r.PooledTime.Round(time.Microsecond), r.OnlineTime.Round(time.Microsecond), r.Fallbacks)
	}
	return rows, nil
}

// smallTable and smallSelection build the small-value workload the ElGamal
// ablation needs (its BSGS decryption bounds the sum).
func smallTable(n int, seed int64) (*database.Table, error) {
	return database.Generate(n, database.DistSmall, seed)
}

func smallSelection(n, m int, seed int64) (*database.Selection, error) {
	return database.GenerateSelection(n, m, database.PatternRandom, seed)
}
