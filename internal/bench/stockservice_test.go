package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestPreprocessService(t *testing.T) {
	rows, err := testConfig().PreprocessService()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Every draw was covered by daemon stock (the harness waits for the
		// inventory and primes the full vector), so the online path only
		// pops ciphertexts — it must be dramatically cheaper.
		if r.Fallbacks != 0 {
			t.Errorf("n=%d: %d fallbacks in a fully stocked run", r.N, r.Fallbacks)
		}
		if r.StockedEncrypt >= r.BaselineEncrypt {
			t.Errorf("n=%d: stocked %v not below baseline %v", r.N, r.StockedEncrypt, r.BaselineEncrypt)
		}
		if r.Prime <= 0 {
			t.Errorf("n=%d: prime time unrecorded", r.N)
		}
	}

	var b bytes.Buffer
	if err := WritePreprocServiceTable(&b, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stockd-fed", "reduction", "fallbacks"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestPreprocessServiceRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.ChunkSize = 0
	if _, err := cfg.PreprocessService(); err == nil {
		t.Fatal("invalid config accepted")
	}
}
