package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// ASCII rendering of the figures: the paper plots stacked component bars
// per database size; psbench -chart reproduces that visually in the
// terminal, one bar row per sweep point, scaled to the widest total.

// chartWidth is the bar area width in characters.
const chartWidth = 60

// componentGlyphs maps each runtime component to its bar glyph.
var componentGlyphs = []struct {
	name  string
	glyph rune
	pick  func(ComponentRow) time.Duration
}{
	{"client encrypt", '#', func(r ComponentRow) time.Duration { return r.ClientEncrypt }},
	{"server compute", '=', func(r ComponentRow) time.Duration { return r.ServerCompute }},
	{"communication", '~', func(r ComponentRow) time.Duration { return r.Communication }},
	{"client decrypt", '.', func(r ComponentRow) time.Duration { return r.ClientDecrypt }},
}

// WriteComponentChart renders component rows as horizontal stacked bars.
func WriteComponentChart(w io.Writer, title string, rows []ComponentRow) error {
	if len(rows) == 0 {
		return nil
	}
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	var max time.Duration
	for _, r := range rows {
		if r.Total > max {
			max = r.Total
		}
	}
	if max <= 0 {
		max = time.Nanosecond
	}
	for _, r := range rows {
		var bar strings.Builder
		for _, c := range componentGlyphs {
			segment := int(float64(c.pick(r)) / float64(max) * chartWidth)
			bar.WriteString(strings.Repeat(string(c.glyph), segment))
		}
		fmt.Fprintf(w, "%8d |%-*s| %s\n", r.N, chartWidth, bar.String(), fmtDur(r.Total))
	}
	fmt.Fprint(w, "legend: ")
	parts := make([]string, len(componentGlyphs))
	for i, c := range componentGlyphs {
		parts[i] = fmt.Sprintf("%c %s", c.glyph, c.name)
	}
	_, err := fmt.Fprintf(w, "%s\n\n", strings.Join(parts, "   "))
	return err
}

// WriteComparisonChart renders a comparison figure as paired bars.
func WriteComparisonChart(w io.Writer, title, baseName, varName string, rows []ComparisonRow) error {
	if len(rows) == 0 {
		return nil
	}
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	var max time.Duration
	for _, r := range rows {
		if r.Baseline > max {
			max = r.Baseline
		}
		if r.Variant > max {
			max = r.Variant
		}
	}
	if max <= 0 {
		max = time.Nanosecond
	}
	scale := func(d time.Duration) string {
		n := int(float64(d) / float64(max) * chartWidth)
		return strings.Repeat("#", n)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%8d a |%-*s| %s\n", r.N, chartWidth, scale(r.Baseline), fmtDur(r.Baseline))
		fmt.Fprintf(w, "%8s b |%-*s| %s\n", "", chartWidth, scale(r.Variant), fmtDur(r.Variant))
	}
	_, err := fmt.Fprintf(w, "a = %s   b = %s\n\n", baseName, varName)
	return err
}
