package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"privstats/internal/netsim"
)

// testConfig keeps the in-test experiments small and fast: tiny keys, tiny
// sweep. Correctness of every run is still verified against the cleartext
// oracle inside the harness itself.
func testConfig() Config {
	return Config{
		KeyBits:        128,
		Sizes:          []int{50, 120},
		SelectFraction: 0.5,
		ChunkSize:      16,
		Clients:        3,
		Seed:           1,
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{KeyBits: 16, Sizes: []int{10}, SelectFraction: 0.5, ChunkSize: 1, Clients: 1},
		{KeyBits: 128, Sizes: nil, SelectFraction: 0.5, ChunkSize: 1, Clients: 1},
		{KeyBits: 128, Sizes: []int{0}, SelectFraction: 0.5, ChunkSize: 1, Clients: 1},
		{KeyBits: 128, Sizes: []int{10}, SelectFraction: 0, ChunkSize: 1, Clients: 1},
		{KeyBits: 128, Sizes: []int{10}, SelectFraction: 1.5, ChunkSize: 1, Clients: 1},
		{KeyBits: 128, Sizes: []int{10}, SelectFraction: 0.5, ChunkSize: 0, Clients: 1},
		{KeyBits: 128, Sizes: []int{10}, SelectFraction: 0.5, ChunkSize: 1, Clients: 0},
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := testConfig().validate(); err != nil {
		t.Errorf("test config invalid: %v", err)
	}
	if err := DefaultConfig().validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestFig2Shape(t *testing.T) {
	rows, err := testConfig().Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The paper's headline: client encryption dominates on a LAN.
		if r.ClientEncrypt <= r.Communication {
			t.Errorf("n=%d: encrypt %v should dominate comm %v on LAN", r.N, r.ClientEncrypt, r.Communication)
		}
		if r.ClientEncrypt <= r.ClientDecrypt {
			t.Errorf("n=%d: encrypt %v should dwarf decrypt %v", r.N, r.ClientEncrypt, r.ClientDecrypt)
		}
		if r.Total != r.ClientEncrypt+r.ServerCompute+r.Communication+r.ClientDecrypt {
			t.Errorf("n=%d: total is not the component sum for the sequential protocol", r.N)
		}
	}
	// Linearity: doubling n should scale client time roughly linearly
	// (very loose bounds; timing noise on small inputs is large).
	ratio := float64(rows[1].ClientEncrypt) / float64(rows[0].ClientEncrypt)
	sizeRatio := float64(rows[1].N) / float64(rows[0].N)
	if ratio < sizeRatio/4 || ratio > sizeRatio*4 {
		t.Errorf("client encrypt scaling %.2f far from size ratio %.2f", ratio, sizeRatio)
	}
}

func TestFig3ModemCommDominatesLANComm(t *testing.T) {
	cfg := testConfig()
	lan, err := cfg.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	modem, err := cfg.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for i := range lan {
		if modem[i].Communication <= lan[i].Communication*100 {
			t.Errorf("n=%d: modem comm %v should be orders of magnitude above LAN %v",
				lan[i].N, modem[i].Communication, lan[i].Communication)
		}
	}
}

func TestFig4BatchingReducesTotal(t *testing.T) {
	// Strict "batched ≤ unbatched" holds at benchmark scale; test-size
	// runs last single-digit milliseconds where scheduler noise can flip
	// the ordering, so retry and require the shape to appear at least
	// once. Correctness of every run is checked inside the harness.
	const attempts = 3
	var lastBase, lastVar string
	for a := 0; a < attempts; a++ {
		rows, err := testConfig().Fig4()
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, r := range rows {
			if r.Variant > r.Baseline {
				ok = false
				lastBase, lastVar = r.Baseline.String(), r.Variant.String()
			}
		}
		if ok {
			return
		}
	}
	t.Errorf("batching never beat the plain run in %d attempts (last: batched %s vs plain %s)",
		attempts, lastVar, lastBase)
}

func TestFig5PreprocessingShiftsBottleneck(t *testing.T) {
	rows, err := testConfig().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// After preprocessing the client's online time collapses; the
		// server becomes the dominant compute component (paper §3.3).
		if r.ServerCompute <= r.ClientEncrypt {
			t.Errorf("n=%d: server %v should dominate preprocessed client %v", r.N, r.ServerCompute, r.ClientEncrypt)
		}
		if r.Preprocess <= 0 {
			t.Errorf("n=%d: preprocessing time unrecorded", r.N)
		}
	}
}

func TestFig6ModemCommDominates(t *testing.T) {
	rows, err := testConfig().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper §3.3 / Figure 6: over the modem, communication dominates
		// once encryption is preprocessed.
		if r.Communication <= r.ClientEncrypt+r.ServerCompute+r.ClientDecrypt {
			t.Errorf("n=%d: modem comm %v should dominate compute %v", r.N,
				r.Communication, r.ClientEncrypt+r.ServerCompute+r.ClientDecrypt)
		}
	}
}

func TestFig7CombinedBeatsPlainSubstantially(t *testing.T) {
	// At the paper's 512-bit keys the reduction is ~90% (client encryption
	// dominates 16:1). Test keys are 128-bit and runs last milliseconds,
	// so a GC pause can wreck any single measurement — retry a few times
	// and require the shape to appear at least once. The benchmarks check
	// the full-strength claim.
	const attempts = 3
	var last float64
	for a := 0; a < attempts; a++ {
		rows, err := testConfig().Fig7()
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, r := range rows {
			last = r.Reduction()
			if last < 0.25 {
				ok = false
			}
		}
		if ok {
			return
		}
	}
	t.Errorf("combined optimizations never reduced >= 25%% across %d attempts (last %.0f%%)",
		attempts, 100*last)
}

func TestFig9MultiClientSpeedup(t *testing.T) {
	rows, err := testConfig().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// The ~k-fold speedup claim is validated at benchmark scale
	// (BenchmarkFig9_MultiClient with 512-bit keys and n >= 1000, where it
	// measures ≈2.8-2.9x for k=3). At test sizes the per-client fixed
	// costs (finalize, decrypt, hello) rival the shard work and a GC pause
	// flips any single measurement — especially on single-CPU hosts — so
	// only the largest sweep point is checked, with a retry, and only
	// against outright collapse. The harness has already verified every
	// run's sum against the oracle.
	check := func(rows []ComparisonRow) bool {
		return rows[len(rows)-1].Speedup() >= 0.5
	}
	if check(rows) {
		return
	}
	for a := 0; a < 2; a++ {
		rows, err = testConfig().Fig9()
		if err != nil {
			t.Fatal(err)
		}
		if check(rows) {
			return
		}
	}
	t.Errorf("k=3 multi-client consistently slower than half the single client: %.2fx",
		rows[len(rows)-1].Speedup())
}

func TestBaselinesOrdersOfMagnitudeCheaper(t *testing.T) {
	rows, err := testConfig().Baselines(netsim.ShortDistance)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SendIdx >= r.Private || r.Download >= r.Private {
			t.Errorf("n=%d: non-private baselines (%v, %v) should be far below private %v",
				r.N, r.SendIdx, r.Download, r.Private)
		}
		if r.PrivateBytes <= r.SendIdxBytes {
			t.Errorf("n=%d: private traffic %d should exceed index traffic %d", r.N, r.PrivateBytes, r.SendIdxBytes)
		}
	}
}

func TestYaoComparisonGap(t *testing.T) {
	cfg := testConfig()
	cfg.Sizes = []int{200}
	rows, err := cfg.YaoComparison()
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.YaoEstimate <= r.Private {
		t.Errorf("Yao estimate %v should exceed the private protocol %v", r.YaoEstimate, r.Private)
	}
	if r.YaoGates < int64(200*32) {
		t.Errorf("gate count %d implausibly small", r.YaoGates)
	}
}

func TestSchemeAblationAgrees(t *testing.T) {
	cfg := testConfig()
	cfg.Sizes = []int{60}
	rows, err := cfg.SchemeAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d schemes", len(rows))
	}
	names := make([]string, len(rows))
	for i, r := range rows {
		names[i] = r.Variant
		if r.Client <= 0 || r.Bytes <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Variant, r)
		}
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"paillier", "damgard-jurik", "elgamal"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing scheme %q in %q", want, joined)
		}
	}
}

func TestDecryptComparison(t *testing.T) {
	// CRT beats the textbook path only once bignum arithmetic, not
	// per-operation overhead, dominates — use a realistic key size here.
	cfg := testConfig()
	cfg.KeyBits = 512
	// Warm caches/allocator so the measured pass reflects steady state.
	if _, err := cfg.DecryptComparison(10); err != nil {
		t.Fatal(err)
	}
	d, err := cfg.DecryptComparison(100)
	if err != nil {
		t.Fatal(err)
	}
	if d.CRT <= 0 || d.Naive <= 0 {
		t.Fatalf("degenerate ablation %+v", d)
	}
	// Steady state is ~5x; allow wide noise margins under parallel tests.
	if float64(d.CRT) > 1.2*float64(d.Naive) {
		t.Errorf("CRT %v slower than naive %v at 512-bit keys", d.CRT, d.Naive)
	}
	if _, err := cfg.DecryptComparison(0); err == nil {
		t.Error("zero iterations should fail")
	}
}

func TestChunkSweep(t *testing.T) {
	cfg := testConfig()
	rows, err := cfg.ChunkSweep([]int{5, 25, 120}, netsim.ShortDistance)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Chunks != 24 || rows[2].Chunks != 1 {
		t.Errorf("chunk counts = %d, %d", rows[0].Chunks, rows[2].Chunks)
	}
	if _, err := cfg.ChunkSweep([]int{0}, netsim.ShortDistance); err == nil {
		t.Error("zero chunk size should fail")
	}
}

func TestReportRendering(t *testing.T) {
	comp := []ComponentRow{{
		N: 1000, ClientEncrypt: 2 * time.Second, ServerCompute: time.Second,
		Communication: 100 * time.Millisecond, ClientDecrypt: time.Millisecond,
		Total: 3101 * time.Millisecond, BytesUp: 128000, BytesDown: 133,
	}}
	var buf bytes.Buffer
	if err := WriteComponentTable(&buf, "Figure 2", comp); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2", "1000", "client encrypt", "2s"} {
		if !strings.Contains(out, want) {
			t.Errorf("component table missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	cmp := []ComparisonRow{{N: 1000, Baseline: 10 * time.Second, Variant: time.Second}}
	if err := WriteComparisonTable(&buf, "Figure 7", "plain", "combined", cmp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "90.0%") || !strings.Contains(buf.String(), "10.00x") {
		t.Errorf("comparison table:\n%s", buf.String())
	}

	buf.Reset()
	if err := ComponentCSV(&buf, comp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n,client_encrypt_ms") || !strings.Contains(buf.String(), "1000,2000.000") {
		t.Errorf("CSV:\n%s", buf.String())
	}

	buf.Reset()
	if err := ComparisonCSV(&buf, cmp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.9000") {
		t.Errorf("comparison CSV:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteYaoTable(&buf, []YaoRow{{N: 5, Private: time.Second, YaoEstimate: time.Minute, YaoEra: time.Hour, YaoGates: 99, YaoWireBytes: 1 << 20}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3600x") {
		t.Errorf("yao table:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteDecryptTable(&buf, &DecryptAblation{KeyBits: 512, CRT: time.Second, Naive: 3 * time.Second, Iterations: 5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3.00x") {
		t.Errorf("decrypt table:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteAblationTable(&buf, 60, []AblationRow{{Variant: "paillier-128", Client: time.Second, Server: time.Second, Decrypt: time.Millisecond, Bytes: 42}}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteChunkTable(&buf, 60, "short", []ChunkRow{{ChunkSize: 5, Chunks: 12, Total: time.Second}}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteBaselineTable(&buf, "short", []BaselineRow{{N: 10, Private: time.Second, SendIdx: time.Millisecond, Download: time.Millisecond}}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSweepShape(t *testing.T) {
	cfg := testConfig()
	rows, err := cfg.ClusterSweep([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Shards != 1 || rows[1].Shards != 2 {
		t.Errorf("shard counts = %d, %d", rows[0].Shards, rows[1].Shards)
	}
	for _, r := range rows {
		if r.Total <= 0 || r.MaxShardFold <= 0 || r.SumShardFold < r.MaxShardFold {
			t.Errorf("k=%d: implausible timings %+v", r.Shards, r)
		}
	}
	var buf bytes.Buffer
	if err := WriteClusterTable(&buf, 120, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "shards") {
		t.Errorf("table missing header: %q", buf.String())
	}
	buf.Reset()
	if err := ClusterCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("csv lines = %d, want 3", got)
	}
}
