package bench

import (
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"privstats/internal/mathx"
	"privstats/internal/paillier"
)

// The server-fold ablation: the naive ScalarMul+Add loop versus bucket
// multi-exponentiation (mathx.MultiExp) across chunk sizes and window
// widths. This is the microbenchmark behind the MultiScalarFolder fast path
// the selected-sum server takes; results/multiexp.txt records a reference
// run.

// FoldRow is one variant × chunk-size point of the fold ablation.
type FoldRow struct {
	Rows    int
	Variant string // "naive", "bucket-w<N>", "bucket-auto", "bucket-auto-p<W>"
	Window  uint   // explicit window width; 0 = auto or not applicable
	Workers int    // 0 or 1 = sequential
	Time    time.Duration
}

// PerRow returns the amortized per-row fold time.
func (r FoldRow) PerRow() time.Duration {
	if r.Rows == 0 {
		return 0
	}
	return r.Time / time.Duration(r.Rows)
}

// FoldAblation times Π ct_i^{x_i} over identical inputs (encrypted index
// bits, nonzero 32-bit scalars) through every fold variant. Correctness is
// pinned exactly: the fold is a plain product in Z_{N²}, so every variant
// must produce the bit-identical group element, not merely the same
// decryption.
func (c Config) FoldAblation(chunkSizes []int, windows []uint, workers int) ([]FoldRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(chunkSizes) == 0 {
		chunkSizes = []int{256, 1024, 4096}
	}
	if len(windows) == 0 {
		windows = []uint{2, 4, 6, 8}
	}
	if workers < 2 {
		workers = 4
	}
	maxN := 0
	for _, n := range chunkSizes {
		if n < 1 {
			return nil, fmt.Errorf("bench: fold chunk size %d must be positive", n)
		}
		if n > maxN {
			maxN = n
		}
	}
	_, rawSK, err := c.newKey()
	if err != nil {
		return nil, err
	}
	pk := rawSK.Public()

	// One shared workload: index-bit ciphertexts and dense 32-bit scalars
	// (the server's worst case — no zero rows to skip).
	rng := rand.New(rand.NewSource(c.Seed))
	cts := make([]*paillier.Ciphertext, maxN)
	bases := make([]*big.Int, maxN)
	exps := make([]uint64, maxN)
	for i := range cts {
		ct, err := pk.Encrypt(big.NewInt(int64(i % 2)))
		if err != nil {
			return nil, err
		}
		cts[i] = ct
		bases[i] = ct.Value()
		exps[i] = uint64(rng.Uint32()) | 1
	}

	var rows []FoldRow
	scalar := new(big.Int)
	for _, n := range chunkSizes {
		start := time.Now()
		var acc *paillier.Ciphertext
		for i := 0; i < n; i++ {
			scalar.SetUint64(exps[i])
			term, err := pk.ScalarMul(cts[i], scalar)
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = term
				continue
			}
			if acc, err = pk.Add(acc, term); err != nil {
				return nil, err
			}
		}
		naive := FoldRow{Rows: n, Variant: "naive", Time: time.Since(start)}
		rows = append(rows, naive)
		want := acc.Value()

		check := func(variant string, got *big.Int) error {
			if got.Cmp(want) != 0 {
				return fmt.Errorf("bench: fold %s at n=%d produced a different group element", variant, n)
			}
			return nil
		}
		for _, w := range windows {
			start = time.Now()
			got, err := mathx.MultiExp(bases[:n], exps[:n], pk.NSquared, w)
			d := time.Since(start)
			if err != nil {
				return nil, err
			}
			variant := fmt.Sprintf("bucket-w%d", w)
			if err := check(variant, got); err != nil {
				return nil, err
			}
			rows = append(rows, FoldRow{Rows: n, Variant: variant, Window: w, Time: d})
		}
		start = time.Now()
		got, err := mathx.MultiExp(bases[:n], exps[:n], pk.NSquared, 0)
		d := time.Since(start)
		if err != nil {
			return nil, err
		}
		if err := check("bucket-auto", got); err != nil {
			return nil, err
		}
		rows = append(rows, FoldRow{Rows: n, Variant: "bucket-auto", Time: d})

		start = time.Now()
		got, err = mathx.MultiExpParallel(bases[:n], exps[:n], pk.NSquared, 0, workers)
		d = time.Since(start)
		if err != nil {
			return nil, err
		}
		variant := fmt.Sprintf("bucket-auto-p%d", workers)
		if err := check(variant, got); err != nil {
			return nil, err
		}
		rows = append(rows, FoldRow{Rows: n, Variant: variant, Workers: workers, Time: d})

		c.progressf("fold n=%d naive=%v bucket=%v parallel=%v\n", n,
			naive.Time.Round(time.Millisecond),
			rows[len(rows)-2].Time.Round(time.Millisecond),
			d.Round(time.Millisecond))
	}
	return rows, nil
}
