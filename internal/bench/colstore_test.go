package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestColstoreSweepShape runs the out-of-core ablation at test scale. The
// sweep itself decrypt-verifies every fold against the plaintext oracle, so
// the shape checks here are about the reported rows, not correctness.
func TestColstoreSweepShape(t *testing.T) {
	cfg := testConfig()
	rows, err := cfg.ColstoreSweep(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Sizes) {
		t.Fatalf("%d rows, want %d", len(rows), len(cfg.Sizes))
	}
	for i, r := range rows {
		if r.N != cfg.Sizes[i] {
			t.Errorf("row %d: n = %d, want %d", i, r.N, cfg.Sizes[i])
		}
		if r.Ingest <= 0 || r.Scan <= 0 || r.MemFold <= 0 || r.DiskFold <= 0 {
			t.Errorf("n=%d: non-positive timing %+v", r.N, r)
		}
		// 32-row blocks over n rows: header + ceil(n/32) slots, 4B rows.
		if r.FileBytes < int64(4*r.N) {
			t.Errorf("n=%d: file %d bytes cannot hold %d rows", r.N, r.FileBytes, r.N)
		}
		if r.IngestMrows() <= 0 || r.ScanMrows() <= 0 || r.Overhead() <= 0 {
			t.Errorf("n=%d: non-positive derived rates", r.N)
		}
	}
	if (ColstoreRow{}).Overhead() != 0 {
		t.Error("zero-row overhead should be 0")
	}
	if mrows(100, 0) != 0 {
		t.Error("mrows with zero duration should be 0")
	}
}

func TestColstoreRendering(t *testing.T) {
	rows := []ColstoreRow{
		{N: 1000, Ingest: time.Millisecond, Scan: time.Millisecond,
			MemFold: 20 * time.Millisecond, DiskFold: 21 * time.Millisecond, FileBytes: 4096},
	}
	var tbl bytes.Buffer
	if err := WriteColstoreTable(&tbl, 8192, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"8192-row blocks", "disk fold", "1.050x"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
	var csv bytes.Buffer
	if err := ColstoreCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "n,file_bytes,") {
		t.Fatalf("csv:\n%s", csv.String())
	}
	if !strings.HasPrefix(lines[1], "1000,4096,") {
		t.Errorf("csv row: %s", lines[1])
	}
}
