package bench

import (
	"fmt"
	"io"
	"math/big"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"privstats/internal/colstore"
	"privstats/internal/database"
	"privstats/internal/homomorphic"
	"privstats/internal/selectedsum"
	"privstats/internal/wire"
)

// The out-of-core ablation: the private selected-sum fold served from the
// chunked on-disk column store versus the in-memory table, plus the raw
// storage-engine rates (streaming ingest, sequential scan) that bound how
// fast tables can be (re)built and resharded. The point of the experiment
// is that the homomorphic fold dominates so completely that pread-backed
// columns cost nearly nothing — disk residency buys unbounded table size
// for free at protocol level; results/colstore.txt records a reference run.

// ColstoreRow is one database size of the colstore sweep.
type ColstoreRow struct {
	N         int
	Ingest    time.Duration // streaming BuildFrom, table -> disk blocks
	Scan      time.Duration // full sequential Scan over every block
	MemFold   time.Duration // server fold over in-memory columns
	DiskFold  time.Duration // identical fold over pread-backed columns
	FileBytes int64
}

// IngestMrows returns the ingest rate in millions of rows per second.
func (r ColstoreRow) IngestMrows() float64 { return mrows(r.N, r.Ingest) }

// ScanMrows returns the sequential scan rate in millions of rows per second.
func (r ColstoreRow) ScanMrows() float64 { return mrows(r.N, r.Scan) }

// Overhead returns DiskFold/MemFold — the out-of-core penalty on the
// protocol's dominant phase.
func (r ColstoreRow) Overhead() float64 {
	if r.MemFold == 0 {
		return 0
	}
	return float64(r.DiskFold) / float64(r.MemFold)
}

func mrows(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds() / 1e6
}

// ColstoreSweep builds each sweep size as an on-disk store and times the
// real server fold (encrypted index vector, shard session, finalize)
// against both substrates. Every fold is decrypted and checked against the
// plaintext oracle, so a wrong block read fails the bench rather than
// skewing it.
func (c Config) ColstoreSweep(blockRows int) ([]ColstoreRow, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if blockRows == 0 {
		blockRows = colstore.DefaultBlockRows
	}
	sk, _, err := c.newKey()
	if err != nil {
		return nil, err
	}
	pk := sk.PublicKey()

	scratch, err := os.MkdirTemp("", "psbench-colstore-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)

	rows := make([]ColstoreRow, 0, len(c.Sizes))
	for i, n := range c.Sizes {
		table, sel, err := c.workload(n)
		if err != nil {
			return nil, err
		}
		want, err := table.SelectedSum(sel)
		if err != nil {
			return nil, err
		}

		dir := fmt.Sprintf("%s/n%d-%d", scratch, n, i)
		start := time.Now()
		store, err := colstore.BuildFrom(table, dir, colstore.Options{BlockRows: blockRows})
		if err != nil {
			return nil, err
		}
		if err := store.Sync(); err != nil {
			store.Close()
			return nil, err
		}
		ingest := time.Since(start)
		fileBytes := store.Stats().FileBytes

		start = time.Now()
		var scanSum uint64
		if err := store.Scan(0, store.Len(), func(vals []uint32) error {
			for _, v := range vals {
				scanSum += uint64(v)
			}
			return nil
		}); err != nil {
			store.Close()
			return nil, err
		}
		scan := time.Since(start)

		// One encrypted selection serves both folds — the uplink is not
		// what this ablation measures.
		body, err := selectedsum.EncryptRange(selectedsum.Online{PK: pk}, sel, 0, n, pk.CiphertextSize())
		if err != nil {
			store.Close()
			return nil, err
		}

		memFold, err := timeFold(sk, table.Column(), body, n, want)
		if err != nil {
			store.Close()
			return nil, err
		}
		diskFold, err := timeFold(sk, store.Column(), body, n, want)
		store.Close()
		if err != nil {
			return nil, err
		}

		row := ColstoreRow{N: n, Ingest: ingest, Scan: scan, MemFold: memFold, DiskFold: diskFold, FileBytes: fileBytes}
		rows = append(rows, row)
		c.progressf("colstore n=%d ingest=%.1fMrows/s fold mem=%v disk=%v (%.2fx)\n",
			n, row.IngestMrows(), memFold.Round(time.Millisecond), diskFold.Round(time.Millisecond), row.Overhead())
	}
	return rows, nil
}

// timeFold runs one shard-session fold over col and pins the decrypted
// result to the oracle.
func timeFold(sk homomorphic.PrivateKey, col database.Column, body []byte, n int, want *big.Int) (time.Duration, error) {
	pk := sk.PublicKey()
	sess, err := selectedsum.NewShardSession(pk, col, uint64(n), 0)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := sess.Absorb(&wire.IndexChunk{Offset: 0, Ciphertexts: body, Width: pk.CiphertextSize()}); err != nil {
		return 0, err
	}
	ct, err := sess.Finalize(nil)
	if err != nil {
		return 0, err
	}
	d := time.Since(start)
	got, err := sk.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	if got.Cmp(want) != 0 {
		return 0, fmt.Errorf("bench: colstore fold decrypts to %v, oracle %v", got, want)
	}
	return d, nil
}

// WriteColstoreTable renders the sweep as an aligned table.
func WriteColstoreTable(w io.Writer, blockRows int, rows []ColstoreRow) error {
	title := fmt.Sprintf("Out-of-core column store vs in-memory table, %d-row blocks", blockRows)
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tfile KB\tingest\tscan\tmem fold\tdisk fold\toverhead")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.1f Mrows/s\t%.1f Mrows/s\t%s\t%s\t%.3fx\n",
			r.N, r.FileBytes/1024, r.IngestMrows(), r.ScanMrows(),
			fmtDur(r.MemFold), fmtDur(r.DiskFold), r.Overhead())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ColstoreCSV writes the sweep as CSV.
func ColstoreCSV(w io.Writer, rows []ColstoreRow) error {
	if _, err := fmt.Fprintln(w, "n,file_bytes,ingest_ms,scan_ms,mem_fold_ms,disk_fold_ms,overhead"); err != nil {
		return err
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%.3f,%.3f,%.3f,%.3f,%.4f\n",
			r.N, r.FileBytes, ms(r.Ingest), ms(r.Scan), ms(r.MemFold), ms(r.DiskFold), r.Overhead()); err != nil {
			return err
		}
	}
	return nil
}
